// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§V), plus micro-benchmarks of the kernels the simulation is
// built from. Run with:
//
//	go test -bench=. -benchmem
//
// Each artefact benchmark regenerates the full experiment through
// internal/experiments — the same code path as cmd/odinsim — so the
// reported time is the cost of reproducing that artefact from scratch.
// The artefacts themselves (rows/series) are printed once by the
// experiment CLI, not here; benchmarks report the regeneration cost.
package odin

import (
	"io"
	"testing"

	"odin/internal/clock"
	"odin/internal/core"
	"odin/internal/decache"
	"odin/internal/dnn"
	"odin/internal/experiments"
	"odin/internal/ou"
	"odin/internal/reram"
	"odin/internal/search"
	"odin/internal/serve"
)

// benchmarkExperiment regenerates one evaluation artefact per iteration.
func benchmarkExperiment(b *testing.B, id string) {
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI regenerates Table I (PIM tile specification).
func BenchmarkTableI(b *testing.B) { benchmarkExperiment(b, "tab1") }

// BenchmarkTableII regenerates Table II (ReRAM crossbar parameters).
func BenchmarkTableII(b *testing.B) { benchmarkExperiment(b, "tab2") }

// BenchmarkFig3 regenerates the layer-wise OU size / sparsity study
// (ResNet18, CIFAR-10, t = t₀).
func BenchmarkFig3(b *testing.B) { benchmarkExperiment(b, "fig3") }

// BenchmarkFig4 regenerates the OU-size distribution shift under drift.
func BenchmarkFig4(b *testing.B) { benchmarkExperiment(b, "fig4") }

// BenchmarkFig5 regenerates the offline vs online (RB/EX) comparison,
// including two policy bootstraps and the warm-up runs.
func BenchmarkFig5(b *testing.B) { benchmarkExperiment(b, "fig5") }

// BenchmarkFig6 regenerates the VGG11 energy/latency comparison over the
// full 10⁸ s horizon (5 configurations × 1000 decision epochs).
func BenchmarkFig6(b *testing.B) { benchmarkExperiment(b, "fig6") }

// BenchmarkFig7 regenerates the accuracy-over-runs study (5 curves).
func BenchmarkFig7(b *testing.B) { benchmarkExperiment(b, "fig7") }

// BenchmarkFig8 regenerates the full cross-workload EDP comparison:
// 9 DNNs × (4 baselines + Odin with leave-one-out bootstrap) × the full
// horizon. This is the heaviest artefact (~30 s per regeneration).
func BenchmarkFig8(b *testing.B) { benchmarkExperiment(b, "fig8") }

// BenchmarkFig9 regenerates the crossbar-size sensitivity study
// (ResNet34 on 128², 64², 32² arrays).
func BenchmarkFig9(b *testing.B) { benchmarkExperiment(b, "fig9") }

// BenchmarkOverhead regenerates the §V.E overhead analysis.
func BenchmarkOverhead(b *testing.B) { benchmarkExperiment(b, "overhead") }

// --- Kernel micro-benchmarks -------------------------------------------

// BenchmarkOUCycleModel measures one OU cycle-count evaluation — the inner
// loop of every search.
func BenchmarkOUCycleModel(b *testing.B) {
	sys := core.DefaultSystem()
	wl, err := sys.Prepare(dnn.NewVGG11())
	if err != nil {
		b.Fatal(err)
	}
	work := wl.Works[4]
	s := ou.Size{R: 16, C: 16}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = work.Cycles(s)
	}
}

// BenchmarkCostEvaluate measures a full energy/latency/EDP evaluation of
// one (layer, OU size) pair.
func BenchmarkCostEvaluate(b *testing.B) {
	sys := core.DefaultSystem()
	wl, err := sys.Prepare(dnn.NewVGG11())
	if err != nil {
		b.Fatal(err)
	}
	cm := sys.Arch.CostModel()
	work := wl.Works[4]
	s := ou.Size{R: 32, C: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = cm.Evaluate(work, s)
	}
}

// BenchmarkResourceBoundedSearch measures one RB search (K=3) — the per
// layer per inference-run online cost of Odin.
func BenchmarkResourceBoundedSearch(b *testing.B) {
	sys := core.DefaultSystem()
	wl, err := sys.Prepare(dnn.NewVGG11())
	if err != nil {
		b.Fatal(err)
	}
	grid := sys.Grid()
	obj := core.LayerObjective(sys, wl, 4, 1e4)
	start := grid.SizeAt(2, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = search.ResourceBounded(grid, obj, start, 3)
	}
}

// BenchmarkExhaustiveSearch measures one EX search (36 configurations) for
// the §V.B overhead comparison; compare with BenchmarkResourceBoundedSearch.
func BenchmarkExhaustiveSearch(b *testing.B) {
	sys := core.DefaultSystem()
	wl, err := sys.Prepare(dnn.NewVGG11())
	if err != nil {
		b.Fatal(err)
	}
	grid := sys.Grid()
	obj := core.LayerObjective(sys, wl, 4, 1e4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = search.Exhaustive(grid, obj)
	}
}

// BenchmarkPolicyPredict measures one OU-size prediction — the per-layer
// runtime cost §V.E quantifies at 0.14 mW / 0.9 % latency.
func BenchmarkPolicyPredict(b *testing.B) {
	sys := NewSystem()
	pol := NewPolicy(sys, 1)
	f := Features{LayerIndex: 4, LayerCount: 11, Sparsity: 0.6, KernelSize: 3, Time: 1e4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = pol.Predict(f)
	}
}

// BenchmarkPolicyUpdate measures one 100-epoch policy update on a full
// 50-example buffer — the event §V.E prices at 0.22 µJ of accelerator
// energy.
func BenchmarkPolicyUpdate(b *testing.B) {
	sys := NewSystem()
	grid := sys.Grid()
	var examples []PolicyExample
	for i := 0; i < 50; i++ {
		examples = append(examples, PolicyExample{
			F: Features{LayerIndex: i % 11, LayerCount: 11,
				Sparsity: 0.5, KernelSize: 3, Time: float64(i) * 100},
			Target: grid.SizeAt(i%6, (i+1)%6),
		})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pol := NewPolicy(sys, uint64(i)+1)
		if _, err := pol.Train(examples, TrainOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkControllerRun measures one full Algorithm 1 inference run on
// VGG11 (11 layer decisions: predict + RB search + bookkeeping).
func BenchmarkControllerRun(b *testing.B) {
	sys := core.DefaultSystem()
	wl, err := sys.Prepare(dnn.NewVGG11())
	if err != nil {
		b.Fatal(err)
	}
	pol := NewPolicy(sys, 1)
	ctrl, err := core.NewController(sys, wl, pol, core.DefaultControllerOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ctrl.RunInference(float64(i))
	}
}

// BenchmarkControllerLayerDecision measures the per-layer slice of the
// controller hot path — one policy prediction plus the clamp-and-RB-search
// refinement — isolated from per-run bookkeeping. Multiply by the layer
// count for the decision cost of one serving-path batch.
func BenchmarkControllerLayerDecision(b *testing.B) {
	sys := core.DefaultSystem()
	wl, err := sys.Prepare(dnn.NewVGG11())
	if err != nil {
		b.Fatal(err)
	}
	pol := NewPolicy(sys, 1)
	grid := sys.Grid()
	feat := wl.FeaturesAt(4, 1e4)
	obj := core.LayerObjective(sys, wl, 4, 1e4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		predicted := pol.Predict(feat)
		start := search.ClampFeasible(grid, obj, predicted)
		_ = search.ResourceBounded(grid, obj, start, 3)
	}
}

// BenchmarkControllerLayerDecisionCached measures the same per-layer
// decision slice replayed through the decision cache (internal/decache):
// the serving steady state once a (layer, age-bucket, prediction) decision
// has been memoized. The live-vs-cached ratio is the cache's headline win,
// recorded per strategy in BENCH_odinsim.json by `odinsim bench`.
func BenchmarkControllerLayerDecisionCached(b *testing.B) {
	sys := core.DefaultSystem()
	wl, err := sys.Prepare(dnn.NewVGG11())
	if err != nil {
		b.Fatal(err)
	}
	opts := core.DefaultControllerOptions()
	opts.Cache = decache.New()
	decide, err := core.DecisionBench(sys, wl, NewPolicy(sys, 1), opts, 4, 1e4)
	if err != nil {
		b.Fatal(err)
	}
	decide() // warm: the miss populates the entry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decide()
	}
}

// BenchmarkServeBatchDispatch measures the serving layer end to end on a
// virtual clock: routing, admission, batch coalescing, worker execution,
// and response delivery, amortised per request. Arrivals land faster than
// the service rate so batches coalesce (the steady-state serving regime).
func BenchmarkServeBatchDispatch(b *testing.B) {
	clk := clock.NewVirtual(0)
	srv, err := serve.NewServer(serve.Config{
		Chips:      []serve.ChipConfig{{Model: "VGG11"}, {Model: "VGG11"}},
		QueueDepth: 64,
		MaxBatch:   8,
		Clock:      clk,
	})
	if err != nil {
		b.Fatal(err)
	}
	srv.Start()
	probe := core.DefaultSystem()
	wl, err := probe.Prepare(dnn.NewVGG11())
	if err != nil {
		b.Fatal(err)
	}
	ctrl, err := core.NewController(probe, wl, NewPolicy(probe, 99), core.ControllerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	gap := ctrl.RunInference(0).Latency / 4 // ~4 arrivals per service time
	b.ReportAllocs()
	b.ResetTimer()
	chans := make([]<-chan serve.Response, b.N)
	for i := 0; i < b.N; i++ {
		clk.Set(float64(i) * gap)
		chans[i] = srv.Submit("VGG11")
	}
	srv.Close()
	for _, ch := range chans {
		<-ch
	}
}

// BenchmarkCrossbarMVM measures the reference non-ideal 128×128 MVM used
// by the device-level studies.
func BenchmarkCrossbarMVM(b *testing.B) {
	xbar := reram.NewCrossbar(128, reram.DefaultDeviceParams())
	xbar.Program(RandomWeights(128, 128, "bench-mvm"), 0)
	input := RandomWeights(1, 128, "bench-mvm-in").Row(0)
	opts := reram.MVMOptions{OURows: 16, OUCols: 16, SimTime: 1e4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = xbar.MVM(input, opts)
	}
}

// BenchmarkModelMapping measures placing a full DNN onto the platform's
// crossbars.
func BenchmarkModelMapping(b *testing.B) {
	sys := core.DefaultSystem()
	model := dnn.NewDenseNet121()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = sys.Arch.MapModel(model)
	}
}
