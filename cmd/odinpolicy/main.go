// Command odinpolicy manages offline OU-configuration policies as
// deployment artefacts: train one from known workload families, inspect a
// saved policy, or evaluate its agreement with the searched optimum on a
// held-out model.
//
// Usage:
//
//	odinpolicy train -leave-out VGG -o policy.json
//	odinpolicy show policy.json
//	odinpolicy eval -model VGG11 policy.json
package main

import (
	"flag"
	"fmt"
	"os"

	"odin"
	"odin/internal/core"
	"odin/internal/dnn"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "odinpolicy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: odinpolicy train|show|eval ...")
	}
	switch args[0] {
	case "train":
		return train(args[1:])
	case "show":
		return show(args[1:])
	case "eval":
		return eval(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want train, show, or eval)", args[0])
	}
}

func train(args []string) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	leaveOut := fs.String("leave-out", "", "workload family to exclude (the unseen family)")
	out := fs.String("o", "policy.json", "output file")
	seed := fs.Uint64("seed", 1, "initialisation/training seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sys := odin.NewSystem()
	known := dnn.AllWorkloads()
	if *leaveOut != "" {
		known = core.LeaveOut(known, *leaveOut)
	}
	cfg := odin.DefaultBootstrapConfig()
	cfg.Seed = *seed
	pol, n, err := odin.BootstrapPolicy(sys, known, cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := odin.SavePolicy(f, pol); err != nil {
		_ = f.Close()
		return err
	}
	// Close errors matter on the write path: the policy file is the
	// artefact.
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("trained on %d models (%d examples, %d parameters) -> %s\n",
		len(known), n, pol.NumParams(), *out)
	return nil
}

func loadPolicy(path string) (*odin.Policy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only; close errors carry no signal
	return odin.LoadPolicy(f)
}

func show(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: odinpolicy show <file>")
	}
	pol, err := loadPolicy(args[0])
	if err != nil {
		return err
	}
	g := pol.Grid()
	fmt.Printf("policy: %d parameters, OU grid 2^%d..2^%d (%d levels per axis)\n",
		pol.NumParams(), g.MinLevel, g.MaxLevel, g.Levels())
	// Show a slice of the decision surface: predictions across depth and
	// time for a representative 3×3-kernel, 60 %-sparse layer.
	ages := []float64{1, 1e3, 1e6, 5e7}
	fmt.Printf("%-12s", "depth \\ t(s)")
	for _, a := range ages {
		fmt.Printf("%10.0e", a)
	}
	fmt.Println()
	for _, pos := range []int{0, 5, 10, 15, 19} {
		fmt.Printf("layer %-6d", pos+1)
		for _, a := range ages {
			s := pol.Predict(odin.Features{
				LayerIndex: pos, LayerCount: 20,
				Sparsity: 0.6, KernelSize: 3, Time: a,
			})
			fmt.Printf("%10s", s.String())
		}
		fmt.Println()
	}
	return nil
}

func eval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ContinueOnError)
	modelName := fs.String("model", "VGG11", "held-out zoo model")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: odinpolicy eval -model <name> <file>")
	}
	pol, err := loadPolicy(fs.Arg(0))
	if err != nil {
		return err
	}
	sys := odin.NewSystem()
	model, err := dnn.ByName(*modelName)
	if err != nil {
		return err
	}
	examples, err := core.CollectExamples(sys, []*dnn.Model{model}, core.DefaultBootstrapConfig())
	if err != nil {
		return err
	}
	fmt.Printf("%s: agreement with the searched optimum on %d decisions: %.1f%%\n",
		model.Name, len(examples), pol.Agreement(examples)*100)
	return nil
}
