// Command odinsim regenerates the paper's evaluation artefacts.
//
// Usage:
//
//	odinsim list                 # list experiment ids
//	odinsim all                  # run every experiment
//	odinsim fig3 fig8 overhead   # run specific experiments
//
// Each experiment prints the rows/series of the corresponding table or
// figure of "Odin: Learning to Optimize Operation Unit Configuration for
// Energy-efficient DNN Inferencing" (DATE 2025). Output is deterministic.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"odin/internal/clock"
	"odin/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], clock.NewReal()); err != nil {
		fmt.Fprintln(os.Stderr, "odinsim:", err)
		os.Exit(1)
	}
}

func run(args []string, clk clock.Clock) error {
	asJSON := false
	if len(args) > 0 && (args[0] == "-json" || args[0] == "--json") {
		asJSON = true
		args = args[1:]
	}
	if len(args) == 0 {
		usage()
		return fmt.Errorf("no experiment selected")
	}
	if asJSON {
		return runJSON(args)
	}
	switch args[0] {
	case "list":
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return nil
	case "all":
		for _, e := range experiments.All() {
			if err := runOne(e, clk); err != nil {
				return err
			}
		}
		return nil
	case "help", "-h", "--help":
		usage()
		return nil
	}
	for _, id := range args {
		e, err := experiments.ByID(id)
		if err != nil {
			return err
		}
		if err := runOne(e, clk); err != nil {
			return err
		}
	}
	return nil
}

// runOne reports progress timing through the injected clock: real in the
// binary, virtual in tests, never read directly (the internal/clock package
// carries the project's single sanctioned wall-clock read).
func runOne(e experiments.Experiment, clk clock.Clock) error {
	fmt.Printf("==> %s (%s)\n", e.Title, e.ID)
	start := clk.Now()
	if err := e.Run(os.Stdout); err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	fmt.Printf("<== %s done in %.3fs\n\n", e.ID, clk.Now()-start)
	return nil
}

// runJSON emits a {"id": result, ...} object for the selected experiments.
func runJSON(ids []string) error {
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}
	out := make(map[string]any, len(ids))
	for _, id := range ids {
		e, err := experiments.ByID(id)
		if err != nil {
			return err
		}
		data, err := e.Data()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		out[id] = data
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func usage() {
	fmt.Println("usage: odinsim [-json] list | all | <experiment-id>...")
	fmt.Println("experiments:")
	for _, e := range experiments.All() {
		fmt.Printf("  %-10s %s\n", e.ID, e.Title)
	}
}
