// Command odinsim regenerates the paper's evaluation artefacts.
//
// Usage:
//
//	odinsim list                  # list experiment ids
//	odinsim all                   # run every experiment
//	odinsim -workers 8 all        # same, on an 8-worker pool (same bytes)
//	odinsim fig3 fig8 overhead    # run specific experiments
//	odinsim all -json             # machine-readable, keys in paper order
//	odinsim bench                 # time sequential vs parallel, write BENCH_odinsim.json
//	odinsim trace -model resnet18 # traced ageing sweep: decision audit + spans -> trace.json
//
// Flags (-json, -workers N, -metrics, -out FILE, and trace's -model NAME,
// -runs N, -horizon S) are recognised in any argument position. Each experiment prints the rows/series of the
// corresponding table or figure of "Odin: Learning to Optimize Operation
// Unit Configuration for Energy-efficient DNN Inferencing" (DATE 2025).
// Artefact output is deterministic and independent of the worker count;
// only the "done in" progress timings vary run to run.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"odin/internal/clock"
	"odin/internal/core"
	"odin/internal/decache"
	"odin/internal/dnn"
	"odin/internal/experiments"
	"odin/internal/par"
	"odin/internal/policy"
	"odin/internal/telemetry"
)

func main() {
	if err := run(os.Stdout, os.Stderr, os.Args[1:], clock.NewReal()); err != nil {
		fmt.Fprintln(os.Stderr, "odinsim:", err)
		os.Exit(1)
	}
}

// cliOptions are the flags accepted in any argument position.
type cliOptions struct {
	json    bool
	metrics bool
	workers int    // 0 = GOMAXPROCS
	out     string // bench report / chrome trace path
	outSet  bool   // -out given explicitly (trace defaults differ)
	help    bool

	// trace subcommand knobs
	model   string
	runs    int     // 0 = default
	horizon float64 // 0 = default

	// cacheOff disables the controller decision cache process-wide
	// (-cache=off), for byte-for-byte cached-vs-uncached comparisons.
	cacheOff bool
}

// parseArgs scans args for flags wherever they appear and returns the
// remaining positional arguments in order. This is the regression fix for
// "odinsim all -json": the old parser only honoured -json as the first
// argument and treated it as an experiment id anywhere else.
func parseArgs(args []string) (cliOptions, []string, error) {
	opts := cliOptions{out: "BENCH_odinsim.json"}
	var pos []string
	for i := 0; i < len(args); i++ {
		arg := args[i]
		name, val, hasVal := strings.Cut(arg, "=")
		takesValue := func(flag string) (string, error) {
			if hasVal {
				return val, nil
			}
			if i+1 >= len(args) {
				return "", fmt.Errorf("flag %s needs a value", flag)
			}
			i++
			return args[i], nil
		}
		switch name {
		case "-json", "--json":
			opts.json = true
		case "-metrics", "--metrics":
			opts.metrics = true
		case "-workers", "--workers":
			v, err := takesValue(name)
			if err != nil {
				return opts, nil, err
			}
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return opts, nil, fmt.Errorf("flag %s needs a positive integer, got %q", name, v)
			}
			opts.workers = n
		case "-out", "--out":
			v, err := takesValue(name)
			if err != nil {
				return opts, nil, err
			}
			opts.out = v
			opts.outSet = true
		case "-model", "--model":
			v, err := takesValue(name)
			if err != nil {
				return opts, nil, err
			}
			opts.model = v
		case "-runs", "--runs":
			v, err := takesValue(name)
			if err != nil {
				return opts, nil, err
			}
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return opts, nil, fmt.Errorf("flag %s needs a positive integer, got %q", name, v)
			}
			opts.runs = n
		case "-horizon", "--horizon":
			v, err := takesValue(name)
			if err != nil {
				return opts, nil, err
			}
			h, err := strconv.ParseFloat(v, 64)
			if err != nil || !(h > 0) {
				return opts, nil, fmt.Errorf("flag %s needs a positive duration in seconds, got %q", name, v)
			}
			opts.horizon = h
		case "-cache", "--cache":
			v, err := takesValue(name)
			if err != nil {
				return opts, nil, err
			}
			switch v {
			case "on":
				opts.cacheOff = false
			case "off":
				opts.cacheOff = true
			default:
				return opts, nil, fmt.Errorf("flag %s needs on or off, got %q", name, v)
			}
		case "-h", "-help", "--help":
			opts.help = true
		default:
			if strings.HasPrefix(arg, "-") {
				return opts, nil, fmt.Errorf("unknown flag %s (try -h)", arg)
			}
			pos = append(pos, arg)
		}
	}
	return opts, pos, nil
}

func run(stdout, stderr io.Writer, args []string, clk clock.Clock) error {
	opts, pos, err := parseArgs(args)
	if err != nil {
		return err
	}
	if opts.help || (len(pos) == 1 && pos[0] == "help") {
		usage(stdout)
		return nil
	}
	// The decision cache is deterministic by contract (artefacts are
	// byte-identical either way); the switch exists so that contract can be
	// checked from the command line (`make cachesmoke` diffs the two).
	core.SetDecisionCacheDefault(!opts.cacheOff)
	if len(pos) == 0 {
		usage(stdout)
		return fmt.Errorf("no experiment selected")
	}
	switch pos[0] {
	case "list":
		if len(pos) > 1 {
			return fmt.Errorf("list takes no further arguments")
		}
		return runList(stdout, opts)
	case "bench":
		return runBench(stdout, stderr, opts, pos[1:], clk)
	case "trace":
		return runTrace(stdout, opts, pos[1:])
	}
	ids := pos
	if len(pos) == 1 && pos[0] == "all" {
		ids = nil // every experiment, paper order
	} else {
		for _, id := range ids {
			if id == "all" {
				return fmt.Errorf("'all' cannot be combined with explicit experiment ids")
			}
		}
	}
	if opts.json {
		return experiments.RunAllJSON(stdout, experiments.RunOptions{Workers: opts.workers, IDs: ids})
	}
	var reg *telemetry.Registry
	if opts.metrics {
		reg = telemetry.NewRegistry()
	}
	_, err = experiments.RunAll(stdout, experiments.RunOptions{
		Workers:  opts.workers,
		IDs:      ids,
		Clock:    clk,
		Registry: reg,
	})
	if err != nil {
		return err
	}
	if reg != nil {
		if werr := reg.WritePrometheus(stderr); werr != nil {
			return werr
		}
	}
	return nil
}

// runList prints the experiment ids, as a table or (with -json) as a JSON
// array in paper order. The old CLI fell through to ByID("list") when -json
// preceded list and died with "unknown experiment".
func runList(stdout io.Writer, opts cliOptions) error {
	if opts.json {
		type entry struct {
			ID    string `json:"id"`
			Title string `json:"title"`
		}
		var out []entry
		for _, e := range experiments.All() {
			out = append(out, entry{ID: e.ID, Title: e.Title})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	for _, e := range experiments.All() {
		fmt.Fprintf(stdout, "%-10s %s\n", e.ID, e.Title)
	}
	return nil
}

// benchReport is the BENCH_odinsim.json schema: wall-clock of the
// sequential (workers=1) engine vs the parallel pool, per experiment and
// in aggregate. Milliseconds, like the serve bench trajectory.
type benchReport struct {
	Bench      string `json:"bench"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// Caveat is set when the host cannot exercise parallelism (one
	// schedulable CPU): the sequential/parallel comparison degenerates and
	// the speedup figure is meaningless. Readers of committed artefacts
	// must check it before quoting Speedup.
	Caveat       string  `json:"caveat,omitempty"`
	Workers      int     `json:"workers"`
	SequentialMS float64 `json:"sequential_ms"`
	ParallelMS   float64 `json:"parallel_ms"`
	Speedup      float64 `json:"speedup"`
	// DecisionNsPerOp is the per-layer controller decision cost (one policy
	// prediction plus clamp and line-6 refinement) in nanoseconds, per
	// line-6 strategy at its default budget — the serving-path hot slice,
	// measured on the same reference layer as
	// BenchmarkControllerLayerDecision. All zero when the injected clock
	// does not advance (virtual-clock runs).
	DecisionNsPerOp decisionBench    `json:"decision_ns_per_op"`
	Experiments     []benchExpReport `json:"experiments"`
}

// decisionBench holds the per-strategy decision cost (ns per decision):
// the paper's K=3 resource-bounded walk, the exhaustive scan, and the
// TPE-style Bayesian sampler at its half-grid default budget — each
// measured live (cache disabled) and replayed from a warm decision cache
// (internal/decache). The cached figures are the serving steady state:
// repeated (layer, age-bucket, prediction) decisions short-circuit to a
// map hit.
type decisionBench struct {
	RB       float64 `json:"rb"`
	EX       float64 `json:"ex"`
	BO       float64 `json:"bo"`
	RBCached float64 `json:"rb_cached"`
	EXCached float64 `json:"ex_cached"`
	BOCached float64 `json:"bo_cached"`
}

type benchExpReport struct {
	ID           string  `json:"id"`
	SequentialMS float64 `json:"sequential_ms"`
	ParallelMS   float64 `json:"parallel_ms"`
}

// runBench times the experiment engine sequentially (workers=1) and on the
// full pool, writes the comparison to opts.out, and prints a short summary.
// Rendered artefact output is discarded; only timings are kept.
func runBench(stdout, stderr io.Writer, opts cliOptions, ids []string, clk clock.Clock) error {
	workers := par.Workers(opts.workers)
	fmt.Fprintf(stderr, "bench: sequential pass (workers=1)\n")
	seq, err := experiments.RunAll(io.Discard, experiments.RunOptions{Workers: 1, IDs: ids, Clock: clk})
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "bench: parallel pass (workers=%d)\n", workers)
	var reg *telemetry.Registry
	if opts.metrics {
		reg = telemetry.NewRegistry()
	}
	parRep, err := experiments.RunAll(io.Discard, experiments.RunOptions{
		Workers: workers, IDs: ids, Clock: clk, Registry: reg,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(stderr, "bench: controller decision micro-pass\n")
	decNs, err := benchDecision(clk)
	if err != nil {
		return err
	}

	rep := benchReport{
		Bench:           "odinsim_all",
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		Workers:         workers,
		SequentialMS:    seq.WallSeconds * 1e3,
		ParallelMS:      parRep.WallSeconds * 1e3,
		DecisionNsPerOp: decNs,
	}
	if rep.GOMAXPROCS <= 1 || rep.NumCPU <= 1 {
		rep.Caveat = fmt.Sprintf(
			"single-core host (GOMAXPROCS=%d, NumCPU=%d): the parallel pass cannot overlap work, so speedup is meaningless here",
			rep.GOMAXPROCS, rep.NumCPU)
	}
	if parRep.WallSeconds > 0 {
		rep.Speedup = seq.WallSeconds / parRep.WallSeconds
	}
	parByID := map[string]float64{}
	for _, t := range parRep.Timings {
		parByID[t.ID] = t.Seconds
	}
	for _, t := range seq.Timings {
		rep.Experiments = append(rep.Experiments, benchExpReport{
			ID:           t.ID,
			SequentialMS: t.Seconds * 1e3,
			ParallelMS:   parByID[t.ID] * 1e3,
		})
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(opts.out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "odinsim bench: sequential %.0f ms, parallel %.0f ms (workers=%d, speedup %.2fx), decision rb %.0f / ex %.0f / bo %.0f ns/op (cached %.0f / %.0f / %.0f) -> %s\n",
		rep.SequentialMS, rep.ParallelMS, rep.Workers, rep.Speedup,
		rep.DecisionNsPerOp.RB, rep.DecisionNsPerOp.EX, rep.DecisionNsPerOp.BO,
		rep.DecisionNsPerOp.RBCached, rep.DecisionNsPerOp.EXCached, rep.DecisionNsPerOp.BOCached,
		opts.out)
	if rep.Caveat != "" {
		fmt.Fprintf(stdout, "odinsim bench: WARNING: %s\n", rep.Caveat)
	}
	if reg != nil {
		if err := reg.WritePrometheus(stderr); err != nil {
			return err
		}
	}
	return nil
}

// benchDecision times the per-layer controller decision slice — one policy
// prediction plus the clamp and the line-6 refinement at its default
// budget, the serving-path hot loop — on the reference layer
// BenchmarkControllerLayerDecision uses (VGG11 layer 4 at age 10⁴ s), once
// per timed strategy, live (cache disabled) and replayed from a warm
// decision cache. Both paths run the real controller slice via
// core.DecisionBench, so the numbers can't drift from production control
// flow. Time comes from the injected clock; if it does not advance
// (virtual clock in tests), each measurement stops after one batch and
// reports zero.
func benchDecision(clk clock.Clock) (decisionBench, error) {
	sys := core.DefaultSystem()
	wl, err := sys.Prepare(dnn.NewVGG11())
	if err != nil {
		return decisionBench{}, err
	}
	pol := policy.New(policy.Config{Grid: sys.Grid(), Seed: 1})
	measure := func(name string, cached bool) (float64, error) {
		opts := core.DefaultControllerOptions()
		opts.Strategy = name
		if cached {
			opts.Cache = decache.New()
		} else {
			opts.DisableDecisionCache = true
		}
		decide, err := core.DecisionBench(sys, wl, pol, opts, 4, 1e4)
		if err != nil {
			return 0, err
		}
		for i := 0; i < 100; i++ {
			decide() // warm-up; with a cache this also populates the entry
		}
		const batch = 256
		const maxIters = 1 << 17
		iters := 0
		start := clk.Now()
		elapsed := 0.0
		for iters < maxIters {
			for i := 0; i < batch; i++ {
				decide()
			}
			iters += batch
			elapsed = clk.Now() - start
			if elapsed == 0 { // frozen or sub-resolution clock: nothing to report
				return 0, nil
			}
			if elapsed >= 0.05 {
				break
			}
		}
		return elapsed * 1e9 / float64(iters), nil
	}
	var out decisionBench
	for _, m := range []struct {
		name   string
		cached bool
		dst    *float64
	}{
		{"rb", false, &out.RB}, {"ex", false, &out.EX}, {"bo", false, &out.BO},
		{"rb", true, &out.RBCached}, {"ex", true, &out.EXCached}, {"bo", true, &out.BOCached},
	} {
		if *m.dst, err = measure(m.name, m.cached); err != nil {
			return out, err
		}
	}
	return out, nil
}

// runTrace executes one fully-observed ageing sweep (odinsim trace): it
// prints the per-layer decision-audit table and the flame summary, and
// writes the span tree as Chrome trace-event JSON (default trace.json).
func runTrace(stdout io.Writer, opts cliOptions, rest []string) error {
	if len(rest) > 0 {
		return fmt.Errorf("trace takes flags only (-model NAME [-runs N] [-horizon S] [-out FILE]), got %q", rest[0])
	}
	if opts.model == "" {
		return fmt.Errorf("trace needs -model NAME (e.g. odinsim trace -model resnet18)")
	}
	res, err := experiments.RunTrace(experiments.TraceOptions{
		Model: opts.model, Runs: opts.runs, Horizon: opts.horizon,
	})
	if err != nil {
		return err
	}
	if err := res.Render(stdout); err != nil {
		return err
	}
	out := opts.out
	if !opts.outSet {
		out = "trace.json"
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := res.Tracer.WriteChromeTrace(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	_, err = fmt.Fprintf(stdout, "\nchrome trace: %d spans -> %s (load in chrome://tracing or Perfetto)\n",
		res.Tracer.Len(), out)
	return err
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: odinsim [-json] [-workers N] [-metrics] [-cache on|off] list | all | bench [-out FILE] | trace -model NAME | <experiment-id>...")
	fmt.Fprintln(w, "experiments:")
	for _, e := range experiments.All() {
		fmt.Fprintf(w, "  %-10s %s\n", e.ID, e.Title)
	}
}
