package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"odin/internal/clock"
	"odin/internal/core"
	"odin/internal/experiments"
)

func TestParseArgsFlagsInAnyPosition(t *testing.T) {
	t.Parallel()
	cases := []struct {
		args    []string
		json    bool
		workers int
		pos     []string
	}{
		{[]string{"-json", "all"}, true, 0, []string{"all"}},
		{[]string{"all", "-json"}, true, 0, []string{"all"}}, // the original bug report
		{[]string{"all", "--json"}, true, 0, []string{"all"}},
		{[]string{"-workers", "3", "fig3", "-json"}, true, 3, []string{"fig3"}},
		{[]string{"fig3", "-workers=5", "fig8"}, false, 5, []string{"fig3", "fig8"}},
		{[]string{"tab1", "tab2"}, false, 0, []string{"tab1", "tab2"}},
	}
	for _, c := range cases {
		opts, pos, err := parseArgs(c.args)
		if err != nil {
			t.Fatalf("parseArgs(%v): %v", c.args, err)
		}
		if opts.json != c.json || opts.workers != c.workers {
			t.Fatalf("parseArgs(%v) = json %v workers %d, want json %v workers %d",
				c.args, opts.json, opts.workers, c.json, c.workers)
		}
		if len(pos) != len(c.pos) {
			t.Fatalf("parseArgs(%v) positionals %v, want %v", c.args, pos, c.pos)
		}
		for i := range pos {
			if pos[i] != c.pos[i] {
				t.Fatalf("parseArgs(%v) positionals %v, want %v", c.args, pos, c.pos)
			}
		}
	}
}

func TestParseArgsRejectsBadFlags(t *testing.T) {
	t.Parallel()
	for _, args := range [][]string{
		{"-workers"},           // missing value
		{"-workers", "x"},      // non-numeric
		{"-workers", "0"},      // pool must be positive
		{"-workers=-2", "all"}, // negative
		{"-bogus", "all"},      // unknown flag
		{"-out"},               // missing value
		{"-cache"},             // missing value
		{"-cache", "maybe"},    // not on/off
	} {
		if _, _, err := parseArgs(args); err == nil {
			t.Fatalf("parseArgs(%v) accepted bad input", args)
		}
	}
}

// TestListJSONRegression pins the second half of the CLI bug: the old
// parser turned "odinsim -json list" into ByID("list") and died with
// "unknown experiment". It must now emit the id/title list as JSON in
// paper order.
func TestListJSONRegression(t *testing.T) {
	t.Parallel()
	for _, args := range [][]string{{"-json", "list"}, {"list", "-json"}} {
		var out, errs bytes.Buffer
		if err := run(&out, &errs, args, clock.NewVirtual(0)); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		var entries []struct{ ID, Title string }
		if err := json.Unmarshal(out.Bytes(), &entries); err != nil {
			t.Fatalf("run(%v) output is not a JSON array: %v\n%s", args, err, out.String())
		}
		all := experiments.All()
		if len(entries) != len(all) {
			t.Fatalf("listed %d experiments, want %d", len(entries), len(all))
		}
		for i, e := range all {
			if entries[i].ID != e.ID {
				t.Fatalf("entry %d is %s, want %s (paper order)", i, entries[i].ID, e.ID)
			}
		}
	}
}

func TestListRejectsExtraArguments(t *testing.T) {
	t.Parallel()
	err := run(io2(), io2(), []string{"list", "tab1"}, clock.NewVirtual(0))
	if err == nil {
		t.Fatal("list with extra arguments did not error")
	}
}

// TestJSONFlagAfterExperimentID is the headline regression: the old CLI
// treated a non-leading -json as an experiment id. The flag must work in
// trailing position and keys must come out in selection (paper) order,
// not encoding/json's alphabetical map order.
func TestJSONFlagAfterExperimentID(t *testing.T) {
	t.Parallel()
	var out, errs bytes.Buffer
	if err := run(&out, &errs, []string{"tab1", "abl-cluster", "-json"}, clock.NewVirtual(0)); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(out.Bytes()) {
		t.Fatalf("invalid JSON: %s", out.String())
	}
	at1 := bytes.Index(out.Bytes(), []byte(`"tab1":`))
	at2 := bytes.Index(out.Bytes(), []byte(`"abl-cluster":`))
	if at1 < 0 || at2 < 0 || at1 > at2 {
		t.Fatalf("keys missing or alphabetically reordered (tab1@%d, abl-cluster@%d):\n%s", at1, at2, out.String())
	}
}

// TestWorkersFlagOutputIdentical runs a subset at workers=1 and workers=4
// through the real CLI entry point and requires identical bytes.
func TestWorkersFlagOutputIdentical(t *testing.T) {
	t.Parallel()
	render := func(workers string) string {
		var out, errs bytes.Buffer
		if err := run(&out, &errs, []string{"-workers", workers, "tab1", "fig3", "overhead"}, clock.NewVirtual(0)); err != nil {
			t.Fatalf("workers=%s: %v", workers, err)
		}
		return out.String()
	}
	if a, b := render("1"), render("4"); a != b {
		t.Fatalf("-workers changed the rendered artefacts\nworkers=1: %q\nworkers=4: %q", a, b)
	}
}

// TestCacheFlagOutputIdentical is the CLI face of the decision-cache
// contract: -cache=off and -cache=on (the default) render byte-identical
// artefacts. Not parallel — the flag flips process-wide state, which this
// test restores on exit.
func TestCacheFlagOutputIdentical(t *testing.T) {
	defer core.SetDecisionCacheDefault(true)
	render := func(mode string) string {
		var out, errs bytes.Buffer
		if err := run(&out, &errs, []string{"-cache", mode, "tab1", "fig3", "overhead"}, clock.NewVirtual(0)); err != nil {
			t.Fatalf("-cache=%s: %v", mode, err)
		}
		return out.String()
	}
	if on, off := render("on"), render("off"); on != off {
		t.Fatalf("-cache changed the rendered artefacts\non:  %q\noff: %q", on, off)
	}
	if core.DecisionCacheDefault() {
		t.Fatal("-cache=off did not flip the process-wide default")
	}
}

func TestAllCannotCombineWithIDs(t *testing.T) {
	t.Parallel()
	if err := run(io2(), io2(), []string{"all", "tab1"}, clock.NewVirtual(0)); err == nil {
		t.Fatal("'all' combined with explicit ids did not error")
	}
}

func TestUnknownExperimentAndEmptySelection(t *testing.T) {
	t.Parallel()
	if err := run(io2(), io2(), []string{"nope"}, clock.NewVirtual(0)); err == nil {
		t.Fatal("unknown experiment id did not error")
	}
	if err := run(io2(), io2(), nil, clock.NewVirtual(0)); err == nil {
		t.Fatal("empty selection did not error")
	}
}

func TestHelpSucceeds(t *testing.T) {
	t.Parallel()
	for _, args := range [][]string{{"-h"}, {"help"}, {"--help", "all"}} {
		var out, errs bytes.Buffer
		if err := run(&out, &errs, args, clock.NewVirtual(0)); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		if !strings.Contains(out.String(), "usage:") {
			t.Fatalf("run(%v) printed no usage:\n%s", args, out.String())
		}
	}
}

// TestBenchWritesReport drives the bench subcommand over a cheap subset
// and checks the BENCH_odinsim.json schema.
func TestBenchWritesReport(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "BENCH_odinsim.json")
	var out, errs bytes.Buffer
	if err := run(&out, &errs, []string{"bench", "-workers", "2", "-out", path, "tab1", "tab2"}, clock.NewVirtual(0)); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("bench report is not valid JSON: %v\n%s", err, b)
	}
	if rep.Bench != "odinsim_all" || rep.Workers != 2 || len(rep.Experiments) != 2 {
		t.Fatalf("bench report schema off: %+v", rep)
	}
	if rep.GOMAXPROCS < 1 || rep.NumCPU < 1 {
		t.Fatalf("bench report missing host parallelism stamp: %+v", rep)
	}
	if (rep.GOMAXPROCS <= 1 || rep.NumCPU <= 1) != (rep.Caveat != "") {
		t.Fatalf("single-core caveat inconsistent with host stamp: %+v", rep)
	}
	if rep.Experiments[0].ID != "tab1" || rep.Experiments[1].ID != "tab2" {
		t.Fatalf("bench report experiment order off: %+v", rep.Experiments)
	}
	// The per-decision figures must be in the artefact schema, one per
	// timed line-6 strategy; on a virtual clock the timed loops cannot
	// advance, so every strategy reports exactly zero.
	if !strings.Contains(string(b), `"decision_ns_per_op"`) {
		t.Fatalf("bench report missing decision_ns_per_op:\n%s", b)
	}
	for _, k := range []string{`"rb"`, `"ex"`, `"bo"`, `"rb_cached"`, `"ex_cached"`, `"bo_cached"`} {
		if !strings.Contains(string(b), k) {
			t.Fatalf("bench report missing per-strategy decision key %s:\n%s", k, b)
		}
	}
	if (rep.DecisionNsPerOp != decisionBench{}) {
		t.Fatalf("virtual-clock decision bench = %+v ns/op, want zeros", rep.DecisionNsPerOp)
	}
}

// io2 returns a throwaway buffer (keeps the error-path call sites short).
func io2() *bytes.Buffer { return &bytes.Buffer{} }

// TestTraceSubcommand drives `odinsim trace` end to end: audit table and
// flame summary on stdout, valid Chrome trace-event JSON at -out.
func TestTraceSubcommand(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "trace.json")
	var out, errs bytes.Buffer
	args := []string{"trace", "-model", "resnet18", "-runs", "2", "-out", path}
	if err := run(&out, &errs, args, clock.NewVirtual(0)); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"trace: model ResNet18, 2 runs", "layer  predicted", "span", "chrome trace:"} {
		if !strings.Contains(text, want) {
			t.Fatalf("trace output missing %q:\n%s", want, text)
		}
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) == 0 {
		t.Fatalf("chrome trace schema off: unit %q, %d events", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
}

// TestTraceArgumentErrors pins the trace subcommand's validation: -model is
// mandatory, extra positionals are rejected, and the numeric flags insist
// on positive values.
func TestTraceArgumentErrors(t *testing.T) {
	t.Parallel()
	for _, args := range [][]string{
		{"trace"},
		{"trace", "spurious", "-model", "resnet18"},
		{"trace", "-model", "resnet18", "-runs", "0"},
		{"trace", "-model", "resnet18", "-horizon", "-3"},
		{"trace", "-model", "no-such-net"},
	} {
		if err := run(io2(), io2(), args, clock.NewVirtual(0)); err == nil {
			t.Fatalf("run(%v) succeeded, want error", args)
		}
	}
}
