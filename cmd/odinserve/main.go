// Command odinserve runs the concurrent inference-serving layer over a
// simulated fleet of ReRAM chips (internal/serve).
//
// Usage:
//
//	odinserve replay [flags]   # deterministic load replay on a virtual clock
//	odinserve serve  [flags]   # live HTTP serving on the real clock
//	odinserve watch  [flags]   # live terminal fleet dashboard over GET /events
//
// replay generates a Poisson arrival trace from internal/rng, drives it
// through a fresh fleet, and prints aggregate figures plus an FNV-1a
// checksum of the per-request OU decision log. With -verify it replays the
// same trace against a second fresh fleet and fails unless the two decision
// logs are byte-identical — the determinism contract `make loadsmoke`
// enforces in CI.
//
// replay -trace FILE additionally records the full span tree (batches,
// requests, controller runs/layers) and writes it as Chrome trace-event
// JSON, loadable in chrome://tracing or Perfetto. The dump is byte-identical
// for a given trace and seed regardless of -workers.
//
// replay -pulse-log FILE captures the streaming-telemetry event log
// (internal/pulse) of the replay: one canonical JSON object per line,
// ordered by (virtual time, chip, kind) — byte-identical for a given trace
// and seed regardless of -workers (`make pulsesmoke` pins this).
//
// serve exposes the fleet over HTTP via serve.NewHandlerOpts:
//
//	POST /infer              JSON body {"model":NAME,"count":N} or ?model=NAME
//	GET  /metrics            Prometheus text exposition
//	GET  /healthz            liveness probe (503 once draining)
//	GET  /debug/trace        Chrome trace-event span ring dump (-trace N)
//	GET  /events             live SSE telemetry stream (-pulse N, on by default)
//	GET  /statusz            JSON fleet series snapshot (-pulse N)
//	GET  /debug/pprof/       net/http/pprof suite (only with -debug)
//	/admin/...               fleet control plane (only with -admin):
//	                         GET /admin/fleet, POST /admin/chips,
//	                         DELETE /admin/chips/{id}
//
// Both subcommands share the fleet flags: -models picks the hosted zoo
// models, -fleet N cycles that list to build an N-chip fleet, -router
// selects the arrival policy (rr|least|drift), -drift-margin tunes drift
// steering, and -tenants configures admission classes
// (name=quota[:priority], comma-separated).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"odin/internal/clock"
	"odin/internal/core"
	"odin/internal/dnn"
	"odin/internal/obs"
	"odin/internal/policy"
	"odin/internal/pulse"
	"odin/internal/serve"
	"odin/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "odinserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("no subcommand selected")
	}
	switch args[0] {
	case "replay":
		return runReplay(args[1:])
	case "serve":
		return runServe(args[1:])
	case "watch":
		return runWatch(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	}
	usage()
	return fmt.Errorf("unknown subcommand %q", args[0])
}

func usage() {
	fmt.Println("usage: odinserve replay|serve|watch [flags]")
	fmt.Println("  replay  deterministic load replay on a virtual clock (-h for flags)")
	fmt.Println("  serve   live HTTP serving on the real clock (-h for flags)")
	fmt.Println("  watch   live terminal fleet dashboard over GET /events (-h for flags)")
}

// fleetFlags are the chip/queue knobs shared by both subcommands.
type fleetFlags struct {
	models  *string
	fleet   *int
	router  *string
	margin  *float64
	tenants *string
	queue   *int
	batch   *int
	workers *int
	budget  *int
}

func addFleetFlags(fs *flag.FlagSet) fleetFlags {
	return fleetFlags{
		models: fs.String("models", "VGG11,VGG11", "comma-separated zoo models, one chip each"),
		fleet: fs.Int("fleet", 0,
			"fleet size: cycle -models until this many chips exist (0 = one chip per -models entry)"),
		router: fs.String("router", "", "arrival router: "+strings.Join(serve.RouterNames(), "|")+
			" (default rr)"),
		margin: fs.Float64("drift-margin", 0,
			"drift router steering threshold as a fraction of the forced-reprogram deadline (0 = default)"),
		tenants: fs.String("tenants", "",
			"admission classes, comma-separated name=quota[:priority] (quota 0 = unlimited)"),
		queue:   fs.Int("queue", 16, "per-chip queue depth (admission bound)"),
		batch:   fs.Int("batch", 8, "max requests coalesced per decision pass"),
		workers: fs.Int("workers", 0, "worker-pool size (0 = one per chip)"),
		budget:  fs.Int("budget", 0, "per-chip reprogram budget (0 = unlimited)"),
	}
}

// parseTenants decodes the -tenants grammar: name=quota or name=quota:prio,
// comma-separated. The empty name configures the default class.
func parseTenants(spec string) ([]serve.TenantConfig, error) {
	var out []serve.TenantConfig
	for _, ent := range strings.Split(spec, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		name, rest, ok := strings.Cut(ent, "=")
		if !ok {
			return nil, fmt.Errorf("-tenants entry %q: want name=quota[:priority]", ent)
		}
		tc := serve.TenantConfig{Name: strings.TrimSpace(name)}
		quota, prio, hasPrio := strings.Cut(rest, ":")
		q, err := strconv.Atoi(quota)
		if err != nil {
			return nil, fmt.Errorf("-tenants entry %q: quota %q is not a number", ent, quota)
		}
		tc.Quota = q
		if hasPrio {
			p, err := strconv.Atoi(prio)
			if err != nil {
				return nil, fmt.Errorf("-tenants entry %q: priority %q is not a number", ent, prio)
			}
			tc.Priority = p
		}
		out = append(out, tc)
	}
	return out, nil
}

func (f fleetFlags) config(clk clock.Clock) (serve.Config, error) {
	cfg := serve.Config{
		Router:          *f.router,
		DriftMargin:     *f.margin,
		QueueDepth:      *f.queue,
		MaxBatch:        *f.batch,
		Workers:         *f.workers,
		ReprogramBudget: *f.budget,
		Clock:           clk,
	}
	var names []string
	for _, name := range strings.Split(*f.models, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return cfg, fmt.Errorf("-models selects no chips")
	}
	n := len(names)
	if *f.fleet > 0 {
		n = *f.fleet
	}
	for i := 0; i < n; i++ {
		cfg.Chips = append(cfg.Chips, serve.ChipConfig{Model: names[i%len(names)]})
	}
	if *f.tenants != "" {
		tenants, err := parseTenants(*f.tenants)
		if err != nil {
			return cfg, err
		}
		cfg.Tenants = tenants
	}
	return cfg, nil
}

// serviceLatency probes one inference on a fresh controller of the first
// chip's model — the service-time scale auto-rate calibration needs.
// Deterministic: the probe shares nothing with the serving fleet.
func serviceLatency(model string) (float64, error) {
	m, err := dnn.ByName(model)
	if err != nil {
		return 0, err
	}
	sys := core.DefaultSystem()
	wl, err := sys.Prepare(m)
	if err != nil {
		return 0, err
	}
	pol := policy.New(policy.Config{Grid: sys.Grid(), Seed: 1})
	ctrl, err := core.NewController(sys, wl, pol, core.ControllerOptions{})
	if err != nil {
		return 0, err
	}
	return ctrl.RunInference(0).Latency, nil
}

func runReplay(args []string) error {
	fs := flag.NewFlagSet("odinserve replay", flag.ContinueOnError)
	fleet := addFleetFlags(fs)
	seed := fs.Uint64("seed", 1, "trace rng seed")
	requests := fs.Int("requests", 200, "trace length")
	rate := fs.Float64("rate", 0, "arrival rate in requests/s (0 = auto: 30% of fleet capacity)")
	verify := fs.Bool("verify", false, "replay twice on fresh fleets; fail unless decision logs are byte-identical")
	maxShed := fs.Int("max-shed", -1, "fail when more than this many requests shed (-1 = no check)")
	dumpLog := fs.Bool("log", false, "print the per-request decision log")
	traceOut := fs.String("trace", "", "write a Chrome trace-event JSON span dump of the replay to this file")
	pulseOut := fs.String("pulse-log", "", "write the canonical pulse event log of the replay to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	clk := clock.NewVirtual(0)
	cfg, err := fleet.config(clk)
	if err != nil {
		return err
	}
	if *rate == 0 {
		lat, err := serviceLatency(cfg.Chips[0].Model)
		if err != nil {
			return err
		}
		*rate = 0.3 * float64(len(cfg.Chips)) / lat
	}
	var models []string
	for _, cc := range cfg.Chips {
		models = append(models, cc.Model)
	}
	tr, err := serve.GenTrace(serve.TraceConfig{
		Seed: *seed, Rate: *rate, Requests: *requests, Models: models,
	})
	if err != nil {
		return err
	}

	res, spans, bus, err := replayFresh(cfg, tr, *traceOut != "", *pulseOut != "")
	if err != nil {
		return err
	}
	router := cfg.Router
	if router == "" {
		router = "rr"
	}
	fmt.Printf("trace: %d requests, rate %.4g req/s, seed %d, %d chips, router=%s\n",
		len(tr), *rate, *seed, len(cfg.Chips), router)
	fmt.Printf("admitted=%d shed=%d errors=%d reprogram=%d\n",
		res.Admitted, res.Shed, res.Errors, res.Reprogram)
	fmt.Printf("energy=%.6g J  latency=%.6g s  wait=%.6g s\n", res.Energy, res.Latency, res.Wait)
	fmt.Printf("checksum=%#016x\n", res.Checksum)
	if *dumpLog {
		if err := res.WriteLog(os.Stdout); err != nil {
			return err
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := spans.WriteChromeTrace(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d spans written to %s\n", spans.Len(), *traceOut)
	}
	if *pulseOut != "" {
		f, err := os.Create(*pulseOut)
		if err != nil {
			return err
		}
		if err := bus.WriteLog(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("pulse: %d events written to %s\n", bus.LastSeq(), *pulseOut)
	}

	if *verify {
		again, _, _, err := replayFresh(cfg, tr, false, false)
		if err != nil {
			return err
		}
		if again.Checksum != res.Checksum {
			return fmt.Errorf("replay diverged: checksum %#016x vs %#016x", again.Checksum, res.Checksum)
		}
		fmt.Println("verify: second replay byte-identical")
	}
	if *maxShed >= 0 && res.Shed > *maxShed {
		return fmt.Errorf("shed %d requests, allowed %d", res.Shed, *maxShed)
	}
	return nil
}

// replayFresh builds a fresh fleet (its own virtual clock and registry) and
// replays the trace through it, optionally recording spans and pulse
// events (unbounded ring, so the whole log survives for WriteLog).
func replayFresh(cfg serve.Config, tr serve.Trace, traced, pulsed bool) (serve.ReplayResult, *obs.Tracer, *pulse.Bus, error) {
	clk := clock.NewVirtual(0)
	cfg.Clock = clk
	cfg.Registry = telemetry.NewRegistry()
	if traced {
		cfg.Tracer = obs.New(clk)
	}
	if pulsed {
		cfg.Pulse = pulse.New(pulse.Options{Registry: cfg.Registry})
	}
	s, err := serve.NewServer(cfg)
	if err != nil {
		return serve.ReplayResult{}, nil, nil, err
	}
	s.Start()
	return serve.Replay(s, clk, tr), cfg.Tracer, cfg.Pulse, nil
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("odinserve serve", flag.ContinueOnError)
	fleet := addFleetFlags(fs)
	addr := fs.String("addr", "localhost:8080", "HTTP listen address")
	admin := fs.Bool("admin", false,
		"expose the fleet control plane under /admin/ (hot add/remove; off by default)")
	debug := fs.Bool("debug", false, "expose net/http/pprof under /debug/pprof/ (off by default)")
	traceCap := fs.Int("trace", 4096, "span ring capacity behind GET /debug/trace (0 disables tracing)")
	pulseCap := fs.Int("pulse", 8192,
		"event ring capacity behind GET /events and /statusz (0 disables streaming telemetry)")
	pulseInterval := fs.Float64("pulse-interval", 1, "pulse series bucket width in seconds")
	verbose := fs.Bool("v", false, "log serve events (chip degradation, drain) to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	clk := clock.NewReal()
	cfg, err := fleet.config(clk)
	if err != nil {
		return err
	}
	cfg.Live = true
	cfg.Registry = telemetry.NewRegistry()
	var spans *obs.Tracer
	if *traceCap > 0 {
		spans = obs.NewRing(clk, *traceCap)
		cfg.Tracer = spans
	}
	if *pulseCap > 0 {
		// The bus shares the fleet's registry, so odin_pulse_* meters land
		// on GET /metrics next to the odinserve_* families.
		cfg.Pulse = pulse.New(pulse.Options{
			Ring: *pulseCap, Interval: *pulseInterval, Registry: cfg.Registry,
		})
	}
	if *verbose {
		cfg.Logger = slog.New(obs.NewLogHandler(os.Stderr, clk, slog.LevelInfo))
	}
	s, err := serve.NewServer(cfg)
	if err != nil {
		return err
	}
	s.Start()

	handler := serve.NewHandlerOpts(s, serve.HandlerOptions{Tracer: spans, Debug: *debug, Admin: *admin})
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("odinserve: listening on %s (%d chips, router=%s)\n",
		*addr, len(cfg.Chips), s.RouterName())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		s.Close()
		return err
	case sig := <-sigc:
		fmt.Printf("odinserve: %v, draining\n", sig)
	}
	if err := httpSrv.Shutdown(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, "odinserve: http shutdown:", err)
	}
	s.Close()
	for _, st := range s.Stats() {
		fmt.Printf("chip %d (%s): served=%d batches=%d reprograms=%d updates=%d energy=%.6g J\n",
			st.ID, st.Model, st.Served, st.Batches, st.Reprograms, st.PolicyUpdates, st.Energy)
	}
	return nil
}
