package main

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"odin/internal/clock"
	"odin/internal/pulse"
	"odin/internal/serve"
)

// watchTestServer starts a live single-chip fleet with a pulse bus and
// mounts its handler on an httptest server — the full stack `odinserve
// watch` talks to.
func watchTestServer(t *testing.T) (*serve.Server, *pulse.Bus, *httptest.Server) {
	t.Helper()
	bus := pulse.New(pulse.Options{Ring: 1024})
	s, err := serve.NewServer(serve.Config{
		Chips: []serve.ChipConfig{{Model: "VGG11"}},
		Live:  true,
		Clock: clock.NewReal(),
		Pulse: bus,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(serve.NewHandler(s))
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return s, bus, ts
}

// TestWatchStreamEndToEnd is the acceptance round-trip: serve traffic on a
// live fleet, then run the watch core against the real HTTP surface and
// require a rendered dashboard carrying the chip's row and fleet totals.
func TestWatchStreamEndToEnd(t *testing.T) {
	t.Parallel()
	s, bus, ts := watchTestServer(t)

	// Serve a little traffic so batch + decision events are in the ring
	// before the watcher connects (the SSE backfill then terminates the
	// stream via the -n budget without racing live publishes).
	for i := 0; i < 2; i++ {
		if resp := <-s.Submit("VGG11"); resp.Shed || resp.Err != "" {
			t.Fatalf("submit %d not served: %+v", i, resp)
		}
	}
	n := bus.LastSeq()
	if n < 3 {
		t.Fatalf("served traffic published only %d events", n)
	}

	var out bytes.Buffer
	if err := watchStream(ts.URL, "", 0, false, n, &out); err != nil {
		t.Fatalf("watchStream: %v", err)
	}
	frame := out.String()
	if !strings.Contains(frame, "odinserve fleet") || !strings.Contains(frame, "router=") {
		t.Fatalf("dashboard header missing:\n%s", frame)
	}
	if !strings.Contains(frame, "VGG11") {
		t.Fatalf("dashboard carries no chip row:\n%s", frame)
	}
	if !strings.Contains(frame, "fleet: served=2") {
		t.Fatalf("fleet totals wrong (want served=2):\n%s", frame)
	}
}

// TestWatchStreamRawAndFilter pins raw mode (JSON lines, no ANSI frames)
// and server-side kind filtering.
func TestWatchStreamRawAndFilter(t *testing.T) {
	t.Parallel()
	s, bus, ts := watchTestServer(t)
	if resp := <-s.Submit("VGG11"); resp.Shed || resp.Err != "" {
		t.Fatalf("submit not served: %+v", resp)
	}
	evs := bus.Since(0, pulse.AllKinds)
	batches := 0
	for _, e := range evs {
		if e.Kind == pulse.KindBatch {
			batches++
		}
	}
	if batches == 0 {
		t.Fatal("no batch events to filter on")
	}

	var out bytes.Buffer
	if err := watchStream(ts.URL, "batch", 0, true, uint64(batches), &out); err != nil {
		t.Fatalf("watchStream: %v", err)
	}
	raw := strings.TrimSuffix(out.String(), "\n")
	// Raw mode ends with one rendered dashboard after the event budget;
	// every line before that must be a batch event JSON object.
	lines := strings.Split(raw, "\n")
	jsonLines := 0
	for _, line := range lines {
		if !strings.HasPrefix(line, "{") {
			continue
		}
		jsonLines++
		if !strings.Contains(line, `"kind":"batch"`) {
			t.Fatalf("types=batch leaked a non-batch event: %s", line)
		}
	}
	if jsonLines != batches {
		t.Fatalf("raw mode printed %d events, want %d", jsonLines, batches)
	}
}

// TestWatchBadTypesRejected pins the client-side kind validation: an
// unknown kind fails before any connection is made.
func TestWatchBadTypesRejected(t *testing.T) {
	t.Parallel()
	if err := runWatch([]string{"-types", "bogus", "-addr", "http://127.0.0.1:0"}); err == nil {
		t.Fatal("runWatch with unknown kind succeeded")
	}
}

// TestReadSSE pins the frame parser against a hand-written stream:
// comments skipped, multi-field frames assembled, blank-line terminated.
func TestReadSSE(t *testing.T) {
	t.Parallel()
	stream := ": resume gap, 2 events evicted\n\n" +
		"id: 3\nevent: batch\ndata: {\"seq\":3}\n\n" +
		"id: 4\nevent: shed\ndata: {\"seq\":4}\n\n"
	var got []sseFrame
	err := readSSE(strings.NewReader(stream), func(f sseFrame) error {
		got = append(got, f)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d frames, want 2 (comment must not count)", len(got))
	}
	if got[0].id != 3 || got[0].event != "batch" || string(got[0].data) != `{"seq":3}` {
		t.Fatalf("frame 0 = %+v", got[0])
	}
	if got[1].id != 4 || got[1].event != "shed" {
		t.Fatalf("frame 1 = %+v", got[1])
	}
}

// TestInfFloatDecode pins the quoted non-finite convention the event JSON
// uses for deadline fields.
func TestInfFloatDecode(t *testing.T) {
	t.Parallel()
	var v struct {
		D infFloat `json:"deadline"`
	}
	if err := json.Unmarshal([]byte(`{"deadline":2.5}`), &v); err != nil {
		t.Fatal(err)
	}
	if float64(v.D) != 2.5 {
		t.Fatalf("plain float decoded to %g", float64(v.D))
	}
	if err := json.Unmarshal([]byte(`{"deadline":"+Inf"}`), &v); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(float64(v.D), 1) {
		t.Fatalf("quoted +Inf decoded to %g", float64(v.D))
	}
	if err := json.Unmarshal([]byte(`{"deadline":"nope"}`), &v); err == nil {
		t.Fatal("garbage quoted float decoded")
	}
}
