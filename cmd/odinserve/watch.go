package main

// odinserve watch: a live terminal fleet dashboard. It seeds its state
// from GET /statusz, then consumes the GET /events SSE stream and redraws
// per-chip rows (queue depth, latency quantiles, drift age and the router's
// near-deadline verdict, reprogram count) plus fleet totals. Redraws are
// throttled by wall-clock reads from clock.NewReal — the one clock source
// a live binary may construct — so the watcher never owns a timer: a quiet
// fleet simply leaves the last frame on screen.

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"odin/internal/clock"
	"odin/internal/pulse"
	"odin/internal/serve"
	"odin/internal/telemetry"
)

func runWatch(args []string) error {
	fs := flag.NewFlagSet("odinserve watch", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "odinserve base URL")
	types := fs.String("types", "", "comma-separated event kinds to stream (default all): "+
		"lifecycle|batch|reprogram|decision|shed")
	interval := fs.Float64("interval", 1, "minimum seconds between dashboard redraws")
	raw := fs.Bool("raw", false, "print raw event JSON lines instead of the dashboard")
	count := fs.Uint64("n", 0, "exit after this many events (0 = until the stream ends)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := pulse.ParseKinds(*types); err != nil {
		return err
	}
	return watchStream(*addr, *types, *interval, *raw, *count, os.Stdout)
}

// watchStream is the testable core of `odinserve watch`: it connects to
// base, seeds a dashboard from /statusz, consumes /events, and renders to
// out. maxEvents > 0 stops after that many events (smoke tests); otherwise
// the stream runs until the server closes it or the process is killed.
func watchStream(base, types string, interval float64, raw bool, maxEvents uint64, out io.Writer) error {
	base = strings.TrimSuffix(base, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	dash := newDashboard()
	if err := dash.seedFrom(base); err != nil {
		return err
	}

	target := base + "/events"
	if types != "" {
		target += "?types=" + types
	}
	resp, err := http.Get(target)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET /events: status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		return fmt.Errorf("GET /events: Content-Type %q, want text/event-stream", ct)
	}

	// Redraw throttle. clock.NewReal is the sanctioned wall-clock for live
	// binaries; the watcher reads it only on event arrival, never from a
	// timer, so an idle stream costs nothing.
	clk := clock.NewReal()
	lastDraw := math.Inf(-1)
	err = readSSE(resp.Body, func(f sseFrame) error {
		var e wireEvent
		if err := json.Unmarshal(f.data, &e); err != nil {
			return fmt.Errorf("event %d: %w", f.id, err)
		}
		dash.apply(e)
		if raw {
			fmt.Fprintf(out, "%s\n", f.data)
		} else if now := clk.Now(); now-lastDraw >= interval {
			lastDraw = now
			fmt.Fprint(out, "\x1b[H\x1b[2J")
			dash.render(out)
		}
		if maxEvents > 0 && dash.events >= maxEvents {
			return errWatchDone
		}
		return nil
	})
	if err != nil && err != errWatchDone {
		return err
	}
	if !raw {
		fmt.Fprint(out, "\x1b[H\x1b[2J")
	}
	dash.render(out)
	return nil
}

// errWatchDone stops the SSE read loop after -n events.
var errWatchDone = fmt.Errorf("watch: event budget reached")

// sseFrame is one parsed Server-Sent Events frame.
type sseFrame struct {
	id    uint64
	event string
	data  []byte
}

// readSSE parses an SSE byte stream and invokes fn per complete frame.
// Comment lines (": ...") are skipped. fn returning an error ends the
// read; io.EOF from the stream itself is a clean stop.
func readSSE(r io.Reader, fn func(sseFrame) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var cur sseFrame
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if len(cur.data) > 0 {
				if err := fn(cur); err != nil {
					return err
				}
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, ":"):
			// comment/keepalive
		case strings.HasPrefix(line, "id: "):
			if n, err := strconv.ParseUint(line[4:], 10, 64); err == nil {
				cur.id = n
			}
		case strings.HasPrefix(line, "event: "):
			cur.event = line[7:]
		case strings.HasPrefix(line, "data: "):
			cur.data = append(cur.data, line[6:]...)
		}
	}
	return sc.Err()
}

// infFloat decodes the pulse convention for non-finite floats: quoted
// strings ("+Inf") where JSON has no literal.
type infFloat float64

func (f *infFloat) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return err
		}
		*f = infFloat(v)
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = infFloat(v)
	return nil
}

// wireEvent mirrors the canonical pulse event JSON (union of all kinds).
type wireEvent struct {
	Seq       uint64   `json:"seq"`
	T         float64  `json:"t"`
	Kind      string   `json:"kind"`
	Chip      int      `json:"chip"`
	Model     string   `json:"model"`
	Action    string   `json:"action"`
	Fleet     int      `json:"fleet"`
	Size      int      `json:"size"`
	Queue     int      `json:"queue"`
	Lat       float64  `json:"lat"`
	Age       float64  `json:"age"`
	Deadline  infFloat `json:"deadline"`
	Reprogram bool     `json:"reprogram"`
	Count     int      `json:"count"`
	Evals     int      `json:"evals"`
	Disagree  int      `json:"disagree"`
	Strategy  string   `json:"strategy"`
	Reason    string   `json:"reason"`
}

// watchChip is one chip's dashboard row state.
type watchChip struct {
	model      string
	removed    bool
	queue      int
	age        float64
	deadline   float64 // +Inf when drift never forces
	served     uint64
	batches    uint64
	sheds      uint64
	reprograms uint64
	decisions  uint64
	evals      uint64
	disagree   uint64
	strategy   string
	hist       *telemetry.Histogram // batch latencies seen by this watcher
}

// dashboard accumulates event state for rendering.
type dashboard struct {
	router   string
	draining bool
	t        float64
	events   uint64
	rejects  uint64 // fleet-level sheds (quota, reject)
	chips    map[int]*watchChip
}

func newDashboard() *dashboard {
	return &dashboard{chips: make(map[int]*watchChip)}
}

func (d *dashboard) chip(id int, model string) *watchChip {
	c, ok := d.chips[id]
	if !ok {
		c = &watchChip{model: model, deadline: math.Inf(1),
			hist: telemetry.NewHistogram(pulse.LatencyBounds)}
		d.chips[id] = c
	}
	return c
}

// seedFrom primes the dashboard with the server's /statusz snapshot so the
// first frame shows the whole fleet, not just chips that happen to emit
// events after the watcher connects.
func (d *dashboard) seedFrom(base string) error {
	resp, err := http.Get(base + "/statusz")
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /statusz: status %d", resp.StatusCode)
	}
	var st struct {
		Router   string `json:"router"`
		Draining bool   `json:"draining"`
		pulse.Status
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("GET /statusz: %w", err)
	}
	d.router = st.Router
	d.draining = st.Draining
	d.t = st.Time
	for _, row := range st.Chips {
		c := d.chip(row.Chip, row.Model)
		c.removed = row.Removed
		c.queue = row.Queue
		c.age = row.Age
		if row.DriftFrac > 0 {
			c.deadline = row.Age / row.DriftFrac
		}
		c.served = row.Served
		c.batches = row.Batches
		c.sheds = row.Sheds
		c.reprograms = row.Reprograms
		c.decisions = row.Decisions
	}
	return nil
}

// apply folds one event into the dashboard.
func (d *dashboard) apply(e wireEvent) {
	d.events++
	if e.T > d.t {
		d.t = e.T
	}
	if e.Chip < 0 {
		if e.Kind == "shed" {
			d.rejects++
		}
		return
	}
	c := d.chip(e.Chip, e.Model)
	switch e.Kind {
	case "batch":
		c.queue = e.Queue
		c.age = e.Age
		c.deadline = float64(e.Deadline)
		c.served += uint64(e.Size)
		c.batches++
		c.hist.Observe(e.Lat)
	case "reprogram":
		c.reprograms = uint64(e.Count)
		c.age = e.Age
	case "decision":
		c.decisions++
		c.evals += uint64(e.Evals)
		c.disagree += uint64(e.Disagree)
		c.strategy = e.Strategy
	case "shed":
		c.sheds++
	case "lifecycle":
		if e.Action == "remove" {
			c.removed = true
			c.queue = 0
		}
	}
}

// render writes one dashboard frame: a header, one row per chip sorted by
// id, and fleet totals.
func (d *dashboard) render(w io.Writer) {
	ids := make([]int, 0, len(d.chips))
	live := 0
	for id, c := range d.chips {
		ids = append(ids, id)
		if !c.removed {
			live++
		}
	}
	sort.Ints(ids)
	state := "serving"
	if d.draining {
		state = "draining"
	}
	fmt.Fprintf(w, "odinserve fleet  t=%.3fs  router=%s  chips=%d live / %d total  events=%d  %s\n",
		d.t, d.router, live, len(d.chips), d.events, state)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "chip\tmodel\tq\tp50(ms)\tp99(ms)\tage(s)\tdrift\trp\tserved\tsheds\tevals\tstrat")
	var served, sheds, reprograms, evals uint64
	for _, id := range ids {
		c := d.chips[id]
		served += c.served
		sheds += c.sheds
		reprograms += c.reprograms
		evals += c.evals
		if c.removed {
			fmt.Fprintf(tw, "%d\t%s\t-\t-\t-\t-\t-\t%d\t%d\t%d\t%d\tremoved\n",
				id, c.model, c.reprograms, c.served, c.sheds, c.evals)
			continue
		}
		fmt.Fprintf(tw, "%d\t%s\t%d\t%s\t%s\t%.3f\t%s\t%d\t%d\t%d\t%d\t%s\n",
			id, c.model, c.queue,
			quantileMS(c.hist, 0.50), quantileMS(c.hist, 0.99),
			c.age, driftVerdict(c.age, c.deadline),
			c.reprograms, c.served, c.sheds, c.evals, c.strategy)
	}
	_ = tw.Flush()
	fmt.Fprintf(w, "fleet: served=%d sheds=%d rejects=%d reprograms=%d evals=%d\n",
		served, sheds, d.rejects, reprograms, evals)
}

// quantileMS renders a latency quantile in milliseconds, "-" before any
// sample arrived.
func quantileMS(h *telemetry.Histogram, q float64) string {
	v := h.Quantile(q)
	if math.IsNaN(v) {
		return "-"
	}
	return strconv.FormatFloat(v*1e3, 'f', 2, 64)
}

// driftVerdict renders the chip's position against its forced-reprogram
// deadline the way the drift router judges it: the filled fraction, with a
// "near" marker once past serve.DefaultDriftMargin.
func driftVerdict(age, deadline float64) string {
	if math.IsInf(deadline, 1) || deadline <= 0 {
		return "-"
	}
	frac := age / deadline
	v := strconv.FormatFloat(100*frac, 'f', 0, 64) + "%"
	if frac >= serve.DefaultDriftMargin {
		v += " near"
	}
	return v
}
