// Command ouexplore dumps the OU design-space landscape Odin searches
// over: for one layer of one zoo model at one device age, it prints the
// energy, latency, EDP and non-ideality of every OU size on the discrete
// grid, marks which sizes satisfy the η constraint, and highlights where
// each requested line-6 strategy lands (and, for the multi-objective
// strategy, which sizes sit on the non-dominated front).
//
// Usage:
//
//	ouexplore -model VGG11 -layer 4 -age 1e4
//	ouexplore -model VGG11 -layer 4 -strategy rb,ex,bo,pareto
//	ouexplore -model ResNet18 -summary -strategy bo   # per-layer picks at several ages
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"odin/internal/core"
	"odin/internal/dnn"
	"odin/internal/opt"
	"odin/internal/ou"
	"odin/internal/search"
)

func main() {
	var (
		modelName  = flag.String("model", "VGG11", "zoo model name")
		layer      = flag.Int("layer", 0, "layer index (0-based)")
		age        = flag.Float64("age", 1, "device age in seconds")
		summary    = flag.Bool("summary", false, "print per-layer picks at several ages instead of one landscape")
		strategies = flag.String("strategy", "ex", "comma-separated line-6 strategies to mark ("+strings.Join(opt.Names(), ", ")+")")
	)
	flag.Parse()
	if err := run(*modelName, *layer, *age, *summary, *strategies); err != nil {
		fmt.Fprintln(os.Stderr, "ouexplore:", err)
		os.Exit(1)
	}
}

func run(modelName string, layer int, age float64, summary bool, strategies string) error {
	sys := core.DefaultSystem()
	model, err := dnn.ByName(modelName)
	if err != nil {
		return err
	}
	wl, err := sys.Prepare(model)
	if err != nil {
		return err
	}
	opts, err := parseStrategies(strategies)
	if err != nil {
		return err
	}
	if summary {
		return printSummary(sys, wl, opts)
	}
	if layer < 0 || layer >= wl.Layers() {
		return fmt.Errorf("layer %d out of range [0,%d)", layer, wl.Layers())
	}
	return printLandscape(sys, wl, layer, age, opts)
}

func parseStrategies(list string) ([]opt.Optimizer, error) {
	var out []opt.Optimizer
	for _, name := range strings.Split(list, ",") {
		o, err := opt.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

// startFor seeds every strategy the way Algorithm 1 would seed a cold
// policy: the paper's 16×16 default clamped into the feasible region.
func startFor(g ou.Grid, obj search.Objective) ou.Size {
	return search.ClampFeasible(g, obj, ou.Size{R: 16, C: 16})
}

func printLandscape(sys core.System, wl *core.Workload, layer int, age float64, opts []opt.Optimizer) error {
	l := wl.Model.Layers[layer]
	fmt.Printf("%s layer %d (%s): kernel %dx%d, %d->%d ch, sparsity %.1f%%, %d crossbars\n",
		wl.Model.Name, layer, l.Name, l.KernelH, l.KernelW, l.InChannels, l.OutChannels,
		l.WeightSparsity*100, wl.Mappings[layer].Xbars)
	fmt.Printf("device age %.3g s (drift amplification %.2f×), η = %.2g\n\n",
		age, sys.Acc.Amplification(age), sys.Acc.Eta)

	grid := sys.Grid()
	obj := core.LayerObjective(sys, wl, layer, age)
	start := startFor(grid, obj)

	chosenBy := map[ou.Size][]string{}
	front := map[ou.Size]bool{}
	anyFound := false
	for _, o := range opts {
		res := o.Optimize(grid, obj, start, 0)
		if !res.Found {
			continue
		}
		anyFound = true
		chosenBy[res.Best] = append(chosenBy[res.Best], o.Name())
		for _, p := range res.Front {
			front[p.Size] = true
		}
	}

	fmt.Printf("%-9s %12s %12s %12s %10s %s\n", "OU", "energy (J)", "latency (s)", "EDP", "NF", "")
	for _, s := range grid.Sizes() {
		cost := obj.Cost.Evaluate(obj.Work, s)
		nf := obj.NF(s)
		mark := ""
		if !obj.Feasible(s) {
			mark = "  VIOLATES η"
		}
		if front[s] {
			mark += "  [front]"
		}
		if names := chosenBy[s]; len(names) > 0 {
			mark += "  <== " + strings.Join(names, ",")
		}
		fmt.Printf("%-9s %12.3e %12.3e %12.3e %10.2e%s\n",
			s.String(), cost.Energy, cost.Latency, cost.EDP(), nf, mark)
	}
	if !anyFound {
		fmt.Println("\nno OU size satisfies η at this age — the device must be reprogrammed")
	}
	return nil
}

func printSummary(sys core.System, wl *core.Workload, opts []opt.Optimizer) error {
	ages := []float64{1, 1e2, 1e4, 1e6, 5e7}
	grid := sys.Grid()
	fmt.Printf("%s: constrained per-layer OU pick per strategy and device age\n", wl.Model.Name)
	for oi, o := range opts {
		if oi > 0 {
			fmt.Println()
		}
		fmt.Printf("strategy %s\n", o.Name())
		fmt.Printf("%-5s %-22s", "layer", "name")
		for _, a := range ages {
			fmt.Printf("%12.0e", a)
		}
		fmt.Println()
		for j := 0; j < wl.Layers(); j++ {
			fmt.Printf("%-5d %-22s", j+1, wl.Model.Layers[j].Name)
			for _, a := range ages {
				obj := core.LayerObjective(sys, wl, j, a)
				res := o.Optimize(grid, obj, startFor(grid, obj), 0)
				switch {
				case !res.Found:
					fmt.Printf("%12s", "reprog!")
				case len(res.Front) > 1:
					// The scalarized pick plus how many other trade-off
					// points share the non-dominated front.
					fmt.Printf("%12s", fmt.Sprintf("%s+%d", res.Best, len(res.Front)-1))
				default:
					fmt.Printf("%12s", res.Best.String())
				}
			}
			fmt.Println()
		}
	}
	return nil
}
