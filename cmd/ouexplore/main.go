// Command ouexplore dumps the OU design-space landscape Odin searches
// over: for one layer of one zoo model at one device age, it prints the
// energy, latency, EDP and non-ideality of every OU size on the discrete
// grid, marks which sizes satisfy the η constraint, and highlights the
// constrained optimum.
//
// Usage:
//
//	ouexplore -model VGG11 -layer 4 -age 1e4
//	ouexplore -model ResNet18 -summary        # per-layer optima at several ages
package main

import (
	"flag"
	"fmt"
	"os"

	"odin/internal/core"
	"odin/internal/dnn"
	"odin/internal/search"
)

func main() {
	var (
		modelName = flag.String("model", "VGG11", "zoo model name")
		layer     = flag.Int("layer", 0, "layer index (0-based)")
		age       = flag.Float64("age", 1, "device age in seconds")
		summary   = flag.Bool("summary", false, "print per-layer optima at several ages instead of one landscape")
	)
	flag.Parse()
	if err := run(*modelName, *layer, *age, *summary); err != nil {
		fmt.Fprintln(os.Stderr, "ouexplore:", err)
		os.Exit(1)
	}
}

func run(modelName string, layer int, age float64, summary bool) error {
	sys := core.DefaultSystem()
	model, err := dnn.ByName(modelName)
	if err != nil {
		return err
	}
	wl, err := sys.Prepare(model)
	if err != nil {
		return err
	}
	if summary {
		return printSummary(sys, wl)
	}
	if layer < 0 || layer >= wl.Layers() {
		return fmt.Errorf("layer %d out of range [0,%d)", layer, wl.Layers())
	}
	return printLandscape(sys, wl, layer, age)
}

func printLandscape(sys core.System, wl *core.Workload, layer int, age float64) error {
	l := wl.Model.Layers[layer]
	fmt.Printf("%s layer %d (%s): kernel %dx%d, %d->%d ch, sparsity %.1f%%, %d crossbars\n",
		wl.Model.Name, layer, l.Name, l.KernelH, l.KernelW, l.InChannels, l.OutChannels,
		l.WeightSparsity*100, wl.Mappings[layer].Xbars)
	fmt.Printf("device age %.3g s (drift amplification %.2f×), η = %.2g\n\n",
		age, sys.Acc.Amplification(age), sys.Acc.Eta)

	grid := sys.Grid()
	obj := core.LayerObjective(sys, wl, layer, age)
	best := search.Exhaustive(grid, obj)

	fmt.Printf("%-9s %12s %12s %12s %10s %s\n", "OU", "energy (J)", "latency (s)", "EDP", "NF", "")
	for _, s := range grid.Sizes() {
		cost := obj.Cost.Evaluate(obj.Work, s)
		nf := obj.NF(s)
		mark := ""
		if !obj.Feasible(s) {
			mark = "  VIOLATES η"
		}
		if best.Found && s == best.Best {
			mark = "  <== optimum"
		}
		fmt.Printf("%-9s %12.3e %12.3e %12.3e %10.2e%s\n",
			s.String(), cost.Energy, cost.Latency, cost.EDP(), nf, mark)
	}
	if !best.Found {
		fmt.Println("\nno OU size satisfies η at this age — the device must be reprogrammed")
	}
	return nil
}

func printSummary(sys core.System, wl *core.Workload) error {
	ages := []float64{1, 1e2, 1e4, 1e6, 5e7}
	grid := sys.Grid()
	fmt.Printf("%s: constrained EDP-optimal OU size per layer and device age\n", wl.Model.Name)
	fmt.Printf("%-5s %-22s", "layer", "name")
	for _, a := range ages {
		fmt.Printf("%10.0e", a)
	}
	fmt.Println()
	for j := 0; j < wl.Layers(); j++ {
		fmt.Printf("%-5d %-22s", j+1, wl.Model.Layers[j].Name)
		for _, a := range ages {
			res := search.Exhaustive(grid, core.LayerObjective(sys, wl, j, a))
			if res.Found {
				fmt.Printf("%10s", res.Best.String())
			} else {
				fmt.Printf("%10s", "reprog!")
			}
		}
		fmt.Println()
	}
	return nil
}
