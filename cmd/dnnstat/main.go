// Command dnnstat inspects the DNN workload zoo: per-model layer counts,
// weights, MACs, post-pruning sparsity, and the crossbar mapping footprint
// on the default platform.
//
// Usage:
//
//	dnnstat               # summary of all nine workloads
//	dnnstat -model VGG16  # per-layer detail for one model
package main

import (
	"flag"
	"fmt"
	"os"

	"odin/internal/core"
	"odin/internal/dnn"
)

func main() {
	modelName := flag.String("model", "", "print per-layer detail for this zoo model")
	flag.Parse()
	if err := run(*modelName); err != nil {
		fmt.Fprintln(os.Stderr, "dnnstat:", err)
		os.Exit(1)
	}
}

func run(modelName string) error {
	sys := core.DefaultSystem()
	if modelName != "" {
		model, err := dnn.ByName(modelName)
		if err != nil {
			return err
		}
		return detail(sys, model)
	}
	return summary(sys)
}

func summary(sys core.System) error {
	fmt.Printf("%-14s %-13s %7s %12s %14s %10s %10s %12s\n",
		"Model", "Dataset", "layers", "weights", "MACs", "sparsity", "xbars", "utilization")
	for _, model := range dnn.AllWorkloads() {
		if _, err := sys.Prepare(model); err != nil {
			return err
		}
		mapping := sys.Arch.MapModel(model)
		fmt.Printf("%-14s %-13s %7d %12d %14d %9.1f%% %10d %11.2f%%\n",
			model.Name, model.Dataset.Name, len(model.Layers),
			model.TotalWeights(), model.TotalMACs(),
			model.MeanWeightSparsity()*100,
			mapping.TotalXbars, mapping.Utilization*100)
	}
	return nil
}

func detail(sys core.System, model *dnn.Model) error {
	wl, err := sys.Prepare(model)
	if err != nil {
		return err
	}
	fmt.Printf("%s on %s: %d layers, %d weights, ideal accuracy %.1f%%\n\n",
		model.Name, model.Dataset.Name, len(model.Layers),
		model.TotalWeights(), model.IdealAccuracy*100)
	fmt.Printf("%-4s %-24s %-5s %8s %10s %10s %7s %9s %9s\n",
		"#", "name", "type", "kernel", "channels", "weights", "xbars", "w-spars", "a-spars")
	for j, l := range model.Layers {
		m := wl.Mappings[j]
		fmt.Printf("%-4d %-24s %-5s %5dx%-2d %4d->%-4d %10d %7d %8.1f%% %8.1f%%\n",
			j+1, l.Name, l.Type.String(), l.KernelH, l.KernelW,
			l.InChannels, l.OutChannels, l.Weights(), m.Xbars,
			l.WeightSparsity*100, l.ActSparsity*100)
	}
	mapping := sys.Arch.MapModel(model)
	fmt.Printf("\ntotal crossbars: %d (%.2f%% of the %d-crossbar platform)\n",
		mapping.TotalXbars, mapping.Utilization*100, sys.Arch.TotalCrossbars())
	return nil
}
