package main

import (
	"go/token"
	"os"
	"strings"
	"testing"

	"odin/internal/lint"
)

// TestJSONOutputPinsKeyOrder locks the machine-readable schema: downstream
// tooling (CI annotations, the lintfix audit) keys on these names in this
// order, so a drive-by struct reorder must fail a test, not a pipeline.
func TestJSONOutputPinsKeyOrder(t *testing.T) {
	t.Parallel()
	var sb strings.Builder
	diags := []lint.Diagnostic{
		{
			Pos:     token.Position{Filename: "internal/serve/serve.go", Line: 381, Column: 2},
			Rule:    "lockflow",
			Message: "channel send while holding s.mu",
		},
	}
	if err := writeJSON(&sb, diags); err != nil {
		t.Fatal(err)
	}
	want := `[
  {
    "file": "internal/serve/serve.go",
    "line": 381,
    "col": 2,
    "rule": "lockflow",
    "message": "channel send while holding s.mu"
  }
]
`
	if sb.String() != want {
		t.Fatalf("JSON output drifted:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// A clean run must emit a JSON array, not null: consumers iterate it.
func TestJSONOutputEmptyIsArray(t *testing.T) {
	t.Parallel()
	var sb strings.Builder
	if err := writeJSON(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(sb.String()); got != "[]" {
		t.Fatalf("empty findings rendered %q, want []", got)
	}
}

// TestExemptUnknownRuleErrors is the regression for the silent-no-op bug
// shape: -exempt with a misspelled rule name used to never match anything
// and never complain. It must exit 2 with a loud message before any
// package is loaded.
func TestExemptUnknownRuleErrors(t *testing.T) {
	stderr := captureStderr(t)
	code := run([]string{"-exempt", "bogusrule=cmd/"})
	out := stderr()
	if code != 2 {
		t.Fatalf("run exited %d, want 2", code)
	}
	if !strings.Contains(out, `unknown analyzer "bogusrule"`) {
		t.Fatalf("stderr %q does not name the unknown analyzer", out)
	}
}

// The wildcard rule is not a registered analyzer but is valid exemption
// syntax; it must not trip the unknown-rule check. (The run still fails
// with exit 2 further down — the test cwd is not a module root — but with
// a load error, not an exempt error.)
func TestExemptWildcardRuleAccepted(t *testing.T) {
	stderr := captureStderr(t)
	run([]string{"-exempt", "*=cmd/"})
	if out := stderr(); strings.Contains(out, "unknown analyzer") {
		t.Fatalf("wildcard exemption rejected: %q", out)
	}
}

// TestFlowAnalyzersRegistered pins the CLI's analyzer surface: the blank
// import of internal/lint/flow must bring the four interprocedural rules
// into the registry alongside the five per-file built-ins.
func TestFlowAnalyzersRegistered(t *testing.T) {
	t.Parallel()
	have := map[string]bool{}
	for _, a := range lint.Analyzers() {
		have[a.Name] = true
	}
	for _, name := range []string{
		"clockonly", "detflow", "errcheck", "floateq", "leakcheck",
		"lockflow", "nondeterminism", "panicmsg", "unitmix",
	} {
		if !have[name] {
			t.Errorf("analyzer %q not registered", name)
		}
	}
	if len(have) != 9 {
		t.Errorf("registry has %d analyzers, want 9: %v", len(have), have)
	}
}

// captureStderr redirects os.Stderr until the returned function is called,
// which restores it and returns what was written.
func captureStderr(t *testing.T) func() string {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	done := make(chan string, 1)
	go func() {
		buf := make([]byte, 64<<10)
		n, _ := r.Read(buf)
		done <- string(buf[:n])
	}()
	return func() string {
		w.Close()
		os.Stderr = old
		out := <-done
		r.Close()
		return out
	}
}
