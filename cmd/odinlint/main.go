// Command odinlint runs the project's static-analysis suite
// (internal/lint) over the module: determinism (internal/rng is the only
// randomness source), float-equality hygiene, unit-family safety in the
// analytic cost models, panic-message prefixes, dropped-error checks, and
// the interprocedural flow analyzers (internal/lint/flow): detflow,
// clockonly, lockflow, leakcheck.
//
// Usage:
//
//	odinlint [-list] [-json] [-rules rule1,rule2] [-exempt rule=pathprefix] [packages]
//
// Packages default to ./... . Exit status: 0 clean, 1 findings, 2 usage or
// load error. With -json, findings are emitted as a JSON array of
// {file,line,col,rule,message} objects on stdout (an empty array when
// clean) for machine consumption. Suppress a single finding in source with
//
//	//lint:allow <rule>[,<rule>...] [-- reason]
//
// on the offending line or the line directly above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"odin/internal/lint"
	_ "odin/internal/lint/flow" // registers detflow, clockonly, lockflow, leakcheck
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("odinlint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	list := fs.Bool("list", false, "list registered analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array of {file,line,col,rule,message} objects")
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	var exempts multiFlag
	fs.Var(&exempts, "exempt", "rule=pathprefix exemption, repeatable (e.g. -exempt nondeterminism=cmd/)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: odinlint [-list] [-json] [-rules r1,r2] [-exempt rule=prefix] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.Analyzers()
	if *rules != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*rules, ",") {
			a, err := lint.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "odinlint:", err)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	cfg := lint.Config{Exempt: map[string][]string{}}
	for _, e := range exempts {
		rule, prefix, ok := strings.Cut(e, "=")
		if !ok || rule == "" || prefix == "" {
			fmt.Fprintf(os.Stderr, "odinlint: bad -exempt %q (want rule=pathprefix)\n", e)
			return 2
		}
		// An exemption for a rule that does not exist is a silent no-op at
		// best and a typo hiding real findings at worst; fail loudly.
		if rule != "*" {
			if _, err := lint.ByName(rule); err != nil {
				fmt.Fprintf(os.Stderr, "odinlint: bad -exempt %q: %v\n", e, err)
				return 2
			}
		}
		cfg.Exempt[rule] = append(cfg.Exempt[rule], prefix)
	}

	pkgs, err := lint.Load(".", fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "odinlint:", err)
		return 2
	}
	diags := lint.Run(pkgs, analyzers, cfg)
	if *jsonOut {
		if err := writeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "odinlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "odinlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// jsonDiag pins the machine-readable field order: file, line, col, rule,
// message. Downstream tooling (CI annotations, the lintfix audit) keys on
// these names.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// writeJSON emits diagnostics as an indented JSON array, [] when clean.
func writeJSON(w io.Writer, diags []lint.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Rule:    d.Rule,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// multiFlag collects repeated string flag values.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }
