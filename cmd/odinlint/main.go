// Command odinlint runs the project's static-analysis suite
// (internal/lint) over the module: determinism (internal/rng is the only
// randomness source), float-equality hygiene, unit-family safety in the
// analytic cost models, panic-message prefixes, and dropped-error checks.
//
// Usage:
//
//	odinlint [-list] [-rules rule1,rule2] [-exempt rule=pathprefix] [packages]
//
// Packages default to ./... . Exit status: 0 clean, 1 findings, 2 usage or
// load error. Suppress a single finding in source with
//
//	//lint:allow <rule>[,<rule>...] [-- reason]
//
// on the offending line or the line directly above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"odin/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("odinlint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	list := fs.Bool("list", false, "list registered analyzers and exit")
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	var exempts multiFlag
	fs.Var(&exempts, "exempt", "rule=pathprefix exemption, repeatable (e.g. -exempt nondeterminism=cmd/)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: odinlint [-list] [-rules r1,r2] [-exempt rule=prefix] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.Analyzers()
	if *rules != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*rules, ",") {
			a, err := lint.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "odinlint:", err)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	cfg := lint.Config{Exempt: map[string][]string{}}
	for _, e := range exempts {
		rule, prefix, ok := strings.Cut(e, "=")
		if !ok || rule == "" || prefix == "" {
			fmt.Fprintf(os.Stderr, "odinlint: bad -exempt %q (want rule=pathprefix)\n", e)
			return 2
		}
		cfg.Exempt[rule] = append(cfg.Exempt[rule], prefix)
	}

	pkgs, err := lint.Load(".", fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "odinlint:", err)
		return 2
	}
	diags := lint.Run(pkgs, analyzers, cfg)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "odinlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// multiFlag collects repeated string flag values.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }
