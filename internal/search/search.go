// Package search implements the OU-configuration searches of Algorithm 1,
// line 6: given a layer's workload, the analytical cost models, and the
// non-ideality constraint, find the OU size (R×C)* minimising EDP subject
// to ΔG < η.
//
// Two strategies are provided, matching the paper's §V.B comparison:
//
//   - Exhaustive (EX): evaluate every size on the discrete grid (36 configs
//     on a 128×128 crossbar). Highest quality, ~3× the comparator work.
//   - ResourceBounded (RB): greedy local search seeded at the policy's
//     prediction, taking at most K (paper: 3) ±1 steps in the level grid
//     and evaluating only the step neighbourhood — the low-overhead option
//     Odin uses online.
//
// Both report how many candidate evaluations they performed so the §V.B
// timing-overhead comparison can be reproduced.
package search

import (
	"math"

	"odin/internal/accuracy"
	"odin/internal/ou"
)

// Objective scores candidate OU sizes for one layer at one point in time.
type Objective struct {
	Cost  ou.CostModel
	Work  ou.LayerWork
	Acc   accuracy.Model
	Layer int     // layer index j
	Of    int     // total layer count
	Time  float64 // device age (s)

	// Probe, when non-nil, observes every candidate evaluation a search
	// performs (the decision-audit hook, internal/obs): the size, whether
	// it met the non-ideality constraint, and its EDP score (NaN for
	// infeasible candidates, which are never scored). The nil check is the
	// only cost when auditing is disabled — see
	// TestDisabledObsOverheadGuard at the repo root.
	Probe func(s ou.Size, feasible bool, edp float64)

	// Scratch, when non-nil, lends the search reusable buffers so the
	// candidate-evaluation hot path runs allocation-free (pinned by
	// TestSearchAllocFree / the opt alloc tests). Purely observational:
	// results are bit-identical with or without it. One Scratch must not be
	// shared by concurrent searches.
	Scratch *Scratch
}

// Scratch is a reusable per-searcher arena. The stateless strategies (RB,
// EX) need no buffers at all; allocating strategies (the TPE sampler)
// stash a strategy-private buffer set here via Priv so repeated decisions
// on one controller reuse it.
type Scratch struct {
	priv any
}

// NewScratch returns an empty arena.
func NewScratch() *Scratch { return &Scratch{} }

// Priv returns the strategy-private buffer set, creating it with mk on
// first use. Callers must type-assert the result and fall back to a fresh
// allocation on mismatch (a Scratch previously lent to a different
// strategy), so sharing one Scratch across strategies stays correct —
// merely less efficient.
func (sc *Scratch) Priv(mk func() any) any {
	if sc.priv == nil {
		sc.priv = mk()
	}
	return sc.priv
}

// SetPriv replaces the strategy-private buffer set (used on type mismatch).
func (sc *Scratch) SetPriv(v any) { sc.priv = v }

// probe reports one candidate evaluation to the audit hook, if any.
func (o Objective) probe(s ou.Size, feasible bool, edp float64) {
	if o.Probe != nil {
		o.Probe(s, feasible, edp)
	}
}

// EDP returns the energy-delay product of the layer at size s.
func (o Objective) EDP(s ou.Size) float64 { return o.Cost.EDP(o.Work, s) }

// Feasible reports whether s meets the non-ideality constraint at o.Time.
func (o Objective) Feasible(s ou.Size) bool {
	return o.Acc.Satisfies(o.Layer, o.Of, s, o.Time)
}

// NF returns the effective non-ideality of s (used to steer RB search out
// of infeasible regions).
func (o Objective) NF(s ou.Size) float64 {
	return o.Acc.NF(o.Layer, o.Of, s, o.Time)
}

// ClampFeasible shrinks a (possibly infeasible) starting size to the
// nearest feasible grid point by repeatedly lowering the larger dimension's
// level — the "reduce the OU size as the conductance drift increases" move
// of §III.B. It returns the start unchanged when already feasible, and the
// smallest grid size when nothing is feasible.
func ClampFeasible(g ou.Grid, o Objective, start ou.Size) ou.Size {
	rIdx, cIdx, ok := g.IndexOf(start)
	if !ok {
		rIdx, cIdx = g.NearestIndex(start.R), g.NearestIndex(start.C)
	}
	for {
		s := g.SizeAt(rIdx, cIdx)
		if o.Feasible(s) || (rIdx == 0 && cIdx == 0) {
			return s
		}
		if rIdx >= cIdx && rIdx > 0 {
			rIdx--
		} else if cIdx > 0 {
			cIdx--
		} else {
			rIdx--
		}
	}
}

// Result is the outcome of a search.
type Result struct {
	Best        ou.Size
	BestEDP     float64
	Found       bool // false when no evaluated size satisfies the constraint
	Evaluations int  // candidate evaluations performed (comparator work)
}

// Exhaustive scans the whole grid and returns the feasible size with the
// minimum EDP. It walks the grid by index (row-major, the same order
// ou.Grid.Sizes lists) rather than materialising the size slice, so the
// scan is allocation-free.
func Exhaustive(g ou.Grid, o Objective) Result {
	res := Result{BestEDP: math.Inf(1)}
	n := g.Levels()
	for ri := 0; ri < n; ri++ {
		for ci := 0; ci < n; ci++ {
			s := g.SizeAt(ri, ci)
			res.Evaluations++
			if !o.Feasible(s) {
				o.probe(s, false, math.NaN())
				continue
			}
			edp := o.EDP(s)
			o.probe(s, true, edp)
			if edp < res.BestEDP {
				res.Best, res.BestEDP, res.Found = s, edp, true
			}
		}
	}
	return res
}

// move is one ±1 step in the level grid; rbMoves is the fixed ±1
// neighbourhood RB explores each step (an array, so ranging it in the hot
// loop allocates nothing).
type move struct{ dr, dc int }

var rbMoves = [4]move{{-1, 0}, {1, 0}, {0, -1}, {0, 1}}

// ResourceBounded runs the paper's K-step local search from the policy's
// predicted size. Each step evaluates the four ±1 level neighbours of the
// current point and moves to the best feasible improvement; from an
// infeasible point it moves toward lower non-ideality (smaller OUs), the
// direction Algorithm 1 exploits as drift grows. The start point itself
// counts as one evaluation.
func ResourceBounded(g ou.Grid, o Objective, start ou.Size, k int) Result {
	rIdx, cIdx, ok := g.IndexOf(start)
	if !ok {
		// Snap off-grid predictions to the nearest grid point, one axis at
		// a time. The level set is shared by both axes (ou.Grid is square
		// by construction), so per-axis NearestIndex cannot cross R/C —
		// see the off-grid property test in props_test.go.
		rIdx, cIdx = g.NearestIndex(start.R), g.NearestIndex(start.C)
	}
	res := Result{BestEDP: math.Inf(1)}
	evaluate := func(ri, ci int) (edp float64, feasible bool) {
		s := g.SizeAt(ri, ci)
		res.Evaluations++
		if !o.Feasible(s) {
			o.probe(s, false, math.NaN())
			return math.Inf(1), false
		}
		edp = o.EDP(s)
		o.probe(s, true, edp)
		return edp, true
	}
	record := func(ri, ci int, edp float64) {
		if edp < res.BestEDP {
			res.Best, res.BestEDP, res.Found = g.SizeAt(ri, ci), edp, true
		}
	}

	curEDP, curFeasible := evaluate(rIdx, cIdx)
	if curFeasible {
		record(rIdx, cIdx, curEDP)
	}
	n := g.Levels()
	for step := 0; step < k; step++ {
		bestMove := move{}
		bestEDP := math.Inf(1)
		bestNF := math.Inf(1)
		improved := false
		for _, mv := range rbMoves {
			ri, ci := rIdx+mv.dr, cIdx+mv.dc
			if ri < 0 || ri >= n || ci < 0 || ci >= n {
				continue
			}
			edp, feasible := evaluate(ri, ci)
			if feasible {
				record(ri, ci, edp)
				if edp < bestEDP {
					bestEDP, bestMove, improved = edp, mv, true
				}
			} else if !curFeasible && !improved {
				// Infeasible region: head toward lower non-ideality.
				if nf := o.NF(g.SizeAt(ri, ci)); nf < bestNF {
					bestNF, bestMove = nf, mv
				}
			}
		}
		switch {
		case improved && (!curFeasible || bestEDP < curEDP):
			rIdx, cIdx = rIdx+bestMove.dr, cIdx+bestMove.dc
			curEDP, curFeasible = bestEDP, true
		case !curFeasible && !math.IsInf(bestNF, 1):
			rIdx, cIdx = rIdx+bestMove.dr, cIdx+bestMove.dc
			curEDP, curFeasible = math.Inf(1), false
		default:
			return res // local minimum (or stuck): stop early
		}
	}
	return res
}
