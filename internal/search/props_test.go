package search

import (
	"fmt"
	"math"
	"testing"

	"odin/internal/accuracy"
	"odin/internal/check"
	"odin/internal/ou"
	"odin/internal/pim"
	"odin/internal/reram"
)

// searchCase is one generated search problem: a workload, a layer position,
// a device age, a start point for the bounded walk, and a step budget.
type searchCase struct {
	Xbars, Rows, Cols int
	Layer, Total      int
	AgeExp            float64 // age = T0 · 10^AgeExp
	StartR, StartC    int     // level indices
	K                 int
}

func genSearchCase() check.Gen[searchCase] {
	return check.Gen[searchCase]{
		Generate: func(t *check.T) searchCase {
			total := 1 + t.Rng.Intn(12)
			return searchCase{
				Xbars: 1 + t.Rng.Intn(6),
				Rows:  1 + t.Rng.Intn(128),
				Cols:  1 + t.Rng.Intn(128),
				Layer: t.Rng.Intn(total), Total: total,
				AgeExp: t.Rng.Float64() * 8,
				StartR: t.Rng.Intn(6), StartC: t.Rng.Intn(6),
				K: 1 + t.Rng.Intn(5),
			}
		},
		Shrink: func(c searchCase) []searchCase {
			var out []searchCase
			mutInt := func(v, toward int, set func(*searchCase, int)) {
				for _, s := range check.ShrinkInt(v, toward) {
					m := c
					set(&m, s)
					out = append(out, m)
				}
			}
			mutInt(c.Xbars, 1, func(m *searchCase, v int) { m.Xbars = v })
			mutInt(c.Rows, 1, func(m *searchCase, v int) { m.Rows = v })
			mutInt(c.Cols, 1, func(m *searchCase, v int) { m.Cols = v })
			mutInt(c.StartR, 0, func(m *searchCase, v int) { m.StartR = v })
			mutInt(c.StartC, 0, func(m *searchCase, v int) { m.StartC = v })
			mutInt(c.K, 1, func(m *searchCase, v int) { m.K = v })
			if c.Total > 1 {
				m := c
				m.Total, m.Layer = 1, 0
				out = append(out, m)
			}
			for _, s := range check.ShrinkFloat(c.AgeExp, 0) {
				m := c
				m.AgeExp = s
				out = append(out, m)
			}
			return out
		},
	}
}

func (c searchCase) objective(acc accuracy.Model, cm ou.CostModel) Objective {
	return Objective{
		Cost:  cm,
		Work:  ou.LayerWork{Xbars: c.Xbars, RowsUsed: c.Rows, ColsUsed: c.Cols},
		Acc:   acc,
		Layer: c.Layer,
		Of:    c.Total,
		Time:  acc.Device.T0 * math.Pow(10, c.AgeExp),
	}
}

func propFixtures() (accuracy.Model, ou.CostModel, ou.Grid) {
	arch := pim.DefaultArch()
	return accuracy.Default(reram.DefaultDeviceParams()), arch.CostModel(), arch.Grid()
}

// TestPropExhaustiveOptimalOnGrid pins the EX search contract: it evaluates
// the whole grid exactly once per size, returns only legal grid sizes, and
// its answer matches a brute-force feasible-minimum recomputation.
func TestPropExhaustiveOptimalOnGrid(t *testing.T) {
	t.Parallel()
	acc, cm, grid := propFixtures()
	check.Run(t, genSearchCase(), func(c searchCase) error {
		o := c.objective(acc, cm)
		res := Exhaustive(grid, o)
		if want := grid.Levels() * grid.Levels(); res.Evaluations != want {
			return fmt.Errorf("EX evaluated %d candidates, want the full grid %d", res.Evaluations, want)
		}
		bestEDP, found := math.Inf(1), false
		for _, s := range grid.Sizes() {
			if !o.Feasible(s) {
				continue
			}
			found = true
			if edp := o.EDP(s); edp < bestEDP {
				bestEDP = edp
			}
		}
		if res.Found != found {
			return fmt.Errorf("EX Found=%v but brute force says %v", res.Found, found)
		}
		if !found {
			return nil
		}
		if _, _, ok := grid.IndexOf(res.Best); !ok {
			return fmt.Errorf("EX returned off-grid size %v", res.Best)
		}
		if !o.Feasible(res.Best) {
			return fmt.Errorf("EX returned infeasible size %v", res.Best)
		}
		if !(res.BestEDP <= bestEDP) || !(res.BestEDP >= bestEDP) {
			return fmt.Errorf("EX BestEDP %g != brute-force minimum %g", res.BestEDP, bestEDP)
		}
		return nil
	})
}

// TestPropResourceBoundedBudgetAndLegality pins the RB search contract: the
// evaluation count respects the 1+4K budget, any returned size is a legal,
// feasible grid point, and a feasible start is never made worse (the
// incumbent guarantee Algorithm 1 relies on).
func TestPropResourceBoundedBudgetAndLegality(t *testing.T) {
	t.Parallel()
	acc, cm, grid := propFixtures()
	check.Run(t, genSearchCase(), func(c searchCase) error {
		o := c.objective(acc, cm)
		start := grid.SizeAt(c.StartR, c.StartC)
		res := ResourceBounded(grid, o, start, c.K)
		if res.Evaluations < 1 || res.Evaluations > 1+4*c.K {
			return fmt.Errorf("RB evaluations %d outside [1, 1+4·%d]", res.Evaluations, c.K)
		}
		if res.Found {
			if _, _, ok := grid.IndexOf(res.Best); !ok {
				return fmt.Errorf("RB returned off-grid size %v", res.Best)
			}
			if !o.Feasible(res.Best) {
				return fmt.Errorf("RB returned infeasible size %v", res.Best)
			}
		}
		if o.Feasible(start) {
			if !res.Found {
				return fmt.Errorf("RB lost the feasible start %v", start)
			}
			if res.BestEDP > o.EDP(start)*(1+1e-12) {
				return fmt.Errorf("RB regressed below the incumbent: best %v EDP %g vs start %v EDP %g",
					res.Best, res.BestEDP, start, o.EDP(start))
			}
		}
		return nil
	})
}

// TestPropClampFeasibleContract pins the drift-shrink move: the result is
// always a grid point; it is feasible whenever any grid size is; a feasible
// on-grid start is returned unchanged; and the walk only ever shrinks.
func TestPropClampFeasibleContract(t *testing.T) {
	t.Parallel()
	acc, cm, grid := propFixtures()
	check.Run(t, genSearchCase(), func(c searchCase) error {
		o := c.objective(acc, cm)
		start := grid.SizeAt(c.StartR, c.StartC)
		got := ClampFeasible(grid, o, start)
		if _, _, ok := grid.IndexOf(got); !ok {
			return fmt.Errorf("ClampFeasible returned off-grid size %v", got)
		}
		if got.R > start.R || got.C > start.C {
			return fmt.Errorf("ClampFeasible grew the OU: %v from start %v", got, start)
		}
		if o.Feasible(start) {
			if got != start {
				return fmt.Errorf("feasible start %v moved to %v", start, got)
			}
			return nil
		}
		if o.Acc.AnySatisfiable(c.Layer, c.Total, grid, o.Time) && !o.Feasible(got) {
			return fmt.Errorf("ClampFeasible returned infeasible %v although the grid has feasible sizes", got)
		}
		return nil
	})
}
