package search

import (
	"fmt"
	"math"
	"testing"

	"odin/internal/accuracy"
	"odin/internal/check"
	"odin/internal/ou"
	"odin/internal/pim"
	"odin/internal/reram"
)

// searchCase is one generated search problem: a workload, a layer position,
// a device age, a start point for the bounded walk, and a step budget.
type searchCase struct {
	Xbars, Rows, Cols int
	Layer, Total      int
	AgeExp            float64 // age = T0 · 10^AgeExp
	StartR, StartC    int     // level indices
	K                 int
}

func genSearchCase() check.Gen[searchCase] {
	return check.Gen[searchCase]{
		Generate: func(t *check.T) searchCase {
			total := 1 + t.Rng.Intn(12)
			return searchCase{
				Xbars: 1 + t.Rng.Intn(6),
				Rows:  1 + t.Rng.Intn(128),
				Cols:  1 + t.Rng.Intn(128),
				Layer: t.Rng.Intn(total), Total: total,
				AgeExp: t.Rng.Float64() * 8,
				StartR: t.Rng.Intn(6), StartC: t.Rng.Intn(6),
				K: 1 + t.Rng.Intn(5),
			}
		},
		Shrink: func(c searchCase) []searchCase {
			var out []searchCase
			mutInt := func(v, toward int, set func(*searchCase, int)) {
				for _, s := range check.ShrinkInt(v, toward) {
					m := c
					set(&m, s)
					out = append(out, m)
				}
			}
			mutInt(c.Xbars, 1, func(m *searchCase, v int) { m.Xbars = v })
			mutInt(c.Rows, 1, func(m *searchCase, v int) { m.Rows = v })
			mutInt(c.Cols, 1, func(m *searchCase, v int) { m.Cols = v })
			mutInt(c.StartR, 0, func(m *searchCase, v int) { m.StartR = v })
			mutInt(c.StartC, 0, func(m *searchCase, v int) { m.StartC = v })
			mutInt(c.K, 1, func(m *searchCase, v int) { m.K = v })
			if c.Total > 1 {
				m := c
				m.Total, m.Layer = 1, 0
				out = append(out, m)
			}
			for _, s := range check.ShrinkFloat(c.AgeExp, 0) {
				m := c
				m.AgeExp = s
				out = append(out, m)
			}
			return out
		},
	}
}

func (c searchCase) objective(acc accuracy.Model, cm ou.CostModel) Objective {
	return Objective{
		Cost:  cm,
		Work:  ou.LayerWork{Xbars: c.Xbars, RowsUsed: c.Rows, ColsUsed: c.Cols},
		Acc:   acc,
		Layer: c.Layer,
		Of:    c.Total,
		Time:  acc.Device.T0 * math.Pow(10, c.AgeExp),
	}
}

func propFixtures() (accuracy.Model, ou.CostModel, ou.Grid) {
	arch := pim.DefaultArch()
	return accuracy.Default(reram.DefaultDeviceParams()), arch.CostModel(), arch.Grid()
}

// TestPropExhaustiveOptimalOnGrid pins the EX search contract: it evaluates
// the whole grid exactly once per size, returns only legal grid sizes, and
// its answer matches a brute-force feasible-minimum recomputation.
func TestPropExhaustiveOptimalOnGrid(t *testing.T) {
	t.Parallel()
	acc, cm, grid := propFixtures()
	check.Run(t, genSearchCase(), func(c searchCase) error {
		o := c.objective(acc, cm)
		res := Exhaustive(grid, o)
		if want := grid.Levels() * grid.Levels(); res.Evaluations != want {
			return fmt.Errorf("EX evaluated %d candidates, want the full grid %d", res.Evaluations, want)
		}
		bestEDP, found := math.Inf(1), false
		for _, s := range grid.Sizes() {
			if !o.Feasible(s) {
				continue
			}
			found = true
			if edp := o.EDP(s); edp < bestEDP {
				bestEDP = edp
			}
		}
		if res.Found != found {
			return fmt.Errorf("EX Found=%v but brute force says %v", res.Found, found)
		}
		if !found {
			return nil
		}
		if _, _, ok := grid.IndexOf(res.Best); !ok {
			return fmt.Errorf("EX returned off-grid size %v", res.Best)
		}
		if !o.Feasible(res.Best) {
			return fmt.Errorf("EX returned infeasible size %v", res.Best)
		}
		if !(res.BestEDP <= bestEDP) || !(res.BestEDP >= bestEDP) {
			return fmt.Errorf("EX BestEDP %g != brute-force minimum %g", res.BestEDP, bestEDP)
		}
		return nil
	})
}

// TestPropResourceBoundedBudgetAndLegality pins the RB search contract: the
// evaluation count respects the 1+4K budget, any returned size is a legal,
// feasible grid point, and a feasible start is never made worse (the
// incumbent guarantee Algorithm 1 relies on).
func TestPropResourceBoundedBudgetAndLegality(t *testing.T) {
	t.Parallel()
	acc, cm, grid := propFixtures()
	check.Run(t, genSearchCase(), func(c searchCase) error {
		o := c.objective(acc, cm)
		start := grid.SizeAt(c.StartR, c.StartC)
		res := ResourceBounded(grid, o, start, c.K)
		if res.Evaluations < 1 || res.Evaluations > 1+4*c.K {
			return fmt.Errorf("RB evaluations %d outside [1, 1+4·%d]", res.Evaluations, c.K)
		}
		if res.Found {
			if _, _, ok := grid.IndexOf(res.Best); !ok {
				return fmt.Errorf("RB returned off-grid size %v", res.Best)
			}
			if !o.Feasible(res.Best) {
				return fmt.Errorf("RB returned infeasible size %v", res.Best)
			}
		}
		if o.Feasible(start) {
			if !res.Found {
				return fmt.Errorf("RB lost the feasible start %v", start)
			}
			if res.BestEDP > o.EDP(start)*(1+1e-12) {
				return fmt.Errorf("RB regressed below the incumbent: best %v EDP %g vs start %v EDP %g",
					res.Best, res.BestEDP, start, o.EDP(start))
			}
		}
		return nil
	})
}

// offGridCase is a generated snap problem: a crossbar size (fixing the
// grid's level count: 32→4, 64→5, 128+→6 levels), an arbitrary —
// usually off-grid and asymmetric (R≠C) — start size, and a walk budget.
// It drives the audit of the NearestIndex call sites: ou.Grid is square
// by construction, so snapping per axis with the shared level set can
// never cross the R/C axes.
type offGridCase struct {
	Crossbar       int // index into offGridCrossbars
	StartR, StartC int // raw dimensions, NOT level indices
	Layer, Total   int
	AgeExp         float64
	K              int
}

var offGridCrossbars = []int{32, 64, 128, 256}

func genOffGridCase() check.Gen[offGridCase] {
	return check.Gen[offGridCase]{
		Generate: func(t *check.T) offGridCase {
			total := 1 + t.Rng.Intn(12)
			return offGridCase{
				Crossbar: t.Rng.Intn(len(offGridCrossbars)),
				StartR:   1 + t.Rng.Intn(300),
				StartC:   1 + t.Rng.Intn(300),
				Layer:    t.Rng.Intn(total), Total: total,
				AgeExp: t.Rng.Float64() * 8,
				K:      1 + t.Rng.Intn(5),
			}
		},
		Shrink: func(c offGridCase) []offGridCase {
			var out []offGridCase
			mutInt := func(v, toward int, set func(*offGridCase, int)) {
				for _, s := range check.ShrinkInt(v, toward) {
					m := c
					set(&m, s)
					out = append(out, m)
				}
			}
			mutInt(c.Crossbar, 0, func(m *offGridCase, v int) { m.Crossbar = v })
			mutInt(c.StartR, 1, func(m *offGridCase, v int) { m.StartR = v })
			mutInt(c.StartC, 1, func(m *offGridCase, v int) { m.StartC = v })
			mutInt(c.K, 1, func(m *offGridCase, v int) { m.K = v })
			if c.Total > 1 {
				m := c
				m.Total, m.Layer = 1, 0
				out = append(out, m)
			}
			for _, s := range check.ShrinkFloat(c.AgeExp, 0) {
				m := c
				m.AgeExp = s
				out = append(out, m)
			}
			return out
		},
	}
}

// TestPropOffGridStartSnapsPerAxis audits every NearestIndex call site
// against off-grid, asymmetric starts on grids of every level count:
//
//   - NearestIndex itself matches a brute-force per-axis nearest over the
//     grid's level values (the axes share one level set, so snapping R and
//     C independently cannot cross axes);
//   - ResourceBounded from any off-grid start stays on budget, returns
//     only legal feasible grid points, and honours the snapped incumbent
//     when the snap is feasible;
//   - ClampFeasible from an off-grid start never grows beyond the snapped
//     size on either axis.
func TestPropOffGridStartSnapsPerAxis(t *testing.T) {
	t.Parallel()
	acc, cm, _ := propFixtures()
	check.Run(t, genOffGridCase(), func(c offGridCase) error {
		grid := ou.DefaultGrid(offGridCrossbars[c.Crossbar])
		o := Objective{
			Cost:  cm,
			Work:  ou.LayerWork{Xbars: 2, RowsUsed: 100, ColsUsed: 80},
			Acc:   acc,
			Layer: c.Layer,
			Of:    c.Total,
			Time:  acc.Device.T0 * math.Pow(10, c.AgeExp),
		}
		// Brute-force per-axis nearest: the level values are 2^(MinLevel+i).
		nearest := func(dim int) int {
			best, bestDist := 0, math.MaxFloat64
			for idx := 0; idx < grid.Levels(); idx++ {
				if d := math.Abs(float64(dim - 1<<(grid.MinLevel+idx))); d < bestDist {
					best, bestDist = idx, d
				}
			}
			return best
		}
		for _, dim := range []int{c.StartR, c.StartC} {
			if got, want := grid.NearestIndex(dim), nearest(dim); got != want {
				return fmt.Errorf("NearestIndex(%d) = %d, want brute-force %d on %d-level grid",
					dim, got, want, grid.Levels())
			}
		}
		snap := grid.SizeAt(grid.NearestIndex(c.StartR), grid.NearestIndex(c.StartC))

		start := ou.Size{R: c.StartR, C: c.StartC}
		res := ResourceBounded(grid, o, start, c.K)
		if res.Evaluations < 1 || res.Evaluations > 1+4*c.K {
			return fmt.Errorf("RB evaluations %d outside [1, 1+4·%d] from off-grid start %v", res.Evaluations, c.K, start)
		}
		if res.Found {
			if _, _, ok := grid.IndexOf(res.Best); !ok {
				return fmt.Errorf("RB returned off-grid size %v from start %v", res.Best, start)
			}
			if !o.Feasible(res.Best) {
				return fmt.Errorf("RB returned infeasible size %v from start %v", res.Best, start)
			}
		}
		if o.Feasible(snap) {
			if !res.Found {
				return fmt.Errorf("RB lost the feasible snapped start %v (raw %v)", snap, start)
			}
			if res.BestEDP > o.EDP(snap)*(1+1e-12) {
				return fmt.Errorf("RB regressed below the snapped incumbent: best %v EDP %g vs snap %v EDP %g",
					res.Best, res.BestEDP, snap, o.EDP(snap))
			}
		}

		got := ClampFeasible(grid, o, start)
		if _, _, ok := grid.IndexOf(got); !ok {
			return fmt.Errorf("ClampFeasible returned off-grid size %v from start %v", got, start)
		}
		if got.R > snap.R || got.C > snap.C {
			return fmt.Errorf("ClampFeasible grew beyond the snap: %v from snap %v (raw start %v)", got, snap, start)
		}
		return nil
	})
}

// TestPropClampFeasibleContract pins the drift-shrink move: the result is
// always a grid point; it is feasible whenever any grid size is; a feasible
// on-grid start is returned unchanged; and the walk only ever shrinks.
func TestPropClampFeasibleContract(t *testing.T) {
	t.Parallel()
	acc, cm, grid := propFixtures()
	check.Run(t, genSearchCase(), func(c searchCase) error {
		o := c.objective(acc, cm)
		start := grid.SizeAt(c.StartR, c.StartC)
		got := ClampFeasible(grid, o, start)
		if _, _, ok := grid.IndexOf(got); !ok {
			return fmt.Errorf("ClampFeasible returned off-grid size %v", got)
		}
		if got.R > start.R || got.C > start.C {
			return fmt.Errorf("ClampFeasible grew the OU: %v from start %v", got, start)
		}
		if o.Feasible(start) {
			if got != start {
				return fmt.Errorf("feasible start %v moved to %v", start, got)
			}
			return nil
		}
		if o.Acc.AnySatisfiable(c.Layer, c.Total, grid, o.Time) && !o.Feasible(got) {
			return fmt.Errorf("ClampFeasible returned infeasible %v although the grid has feasible sizes", got)
		}
		return nil
	})
}
