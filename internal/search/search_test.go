package search

import (
	"math"
	"testing"

	"odin/internal/accuracy"
	"odin/internal/ou"
	"odin/internal/pim"
	"odin/internal/reram"
	"odin/internal/sparsity"
)

func testObjective(layer, of int, t float64) Objective {
	arch := pim.DefaultArch()
	work := ou.LayerWork{
		Xbars:    8,
		RowsUsed: 120,
		ColsUsed: 128,
		Sparsity: sparsity.Profile{Weight: 0.6, Cluster: 0.85},
	}
	return Objective{
		Cost:  arch.CostModel(),
		Work:  work,
		Acc:   accuracy.Default(reram.DefaultDeviceParams()),
		Layer: layer,
		Of:    of,
		Time:  t,
	}
}

func TestExhaustiveFindsGlobalOptimum(t *testing.T) {
	t.Parallel()
	g := ou.DefaultGrid(128)
	o := testObjective(5, 20, 1)
	res := Exhaustive(g, o)
	if !res.Found {
		t.Fatal("no feasible size at t0 — calibration broken")
	}
	if res.Evaluations != 36 {
		t.Fatalf("EX evaluated %d configs, want 36", res.Evaluations)
	}
	// Verify optimality by brute force.
	for _, s := range g.Sizes() {
		if o.Feasible(s) && o.EDP(s) < res.BestEDP-1e-30 {
			t.Fatalf("EX missed better size %v (%v < %v)", s, o.EDP(s), res.BestEDP)
		}
	}
	if math.Abs(o.EDP(res.Best)-res.BestEDP) > 1e-30 {
		t.Fatal("BestEDP inconsistent with Best")
	}
}

func TestExhaustiveRespectsConstraint(t *testing.T) {
	t.Parallel()
	g := ou.DefaultGrid(128)
	// Late enough that only small OUs pass for an early layer.
	o := testObjective(0, 20, 1e7)
	res := Exhaustive(g, o)
	if res.Found && !o.Feasible(res.Best) {
		t.Fatalf("EX returned infeasible size %v", res.Best)
	}
	if res.Found {
		nfBest := o.NF(res.Best)
		if nfBest >= o.Acc.Eta {
			t.Fatalf("returned size violates η: %v", nfBest)
		}
	}
}

func TestExhaustiveInfeasibleEverywhere(t *testing.T) {
	t.Parallel()
	g := ou.DefaultGrid(128)
	o := testObjective(0, 20, 1e13) // far past any deadline
	res := Exhaustive(g, o)
	if res.Found {
		t.Fatalf("found %v despite universal violation", res.Best)
	}
	if res.Evaluations != 36 {
		t.Fatalf("evaluations = %d", res.Evaluations)
	}
}

func TestResourceBoundedFromOptimumStaysThere(t *testing.T) {
	t.Parallel()
	g := ou.DefaultGrid(128)
	o := testObjective(5, 20, 1)
	ex := Exhaustive(g, o)
	rb := ResourceBounded(g, o, ex.Best, 3)
	if !rb.Found {
		t.Fatal("RB lost a feasible start")
	}
	if rb.BestEDP > ex.BestEDP*(1+1e-12) {
		t.Fatalf("RB from the optimum regressed: %v vs %v", rb.BestEDP, ex.BestEDP)
	}
}

func TestResourceBoundedCheaperThanExhaustive(t *testing.T) {
	t.Parallel()
	g := ou.DefaultGrid(128)
	o := testObjective(5, 20, 1)
	ex := Exhaustive(g, o)
	rb := ResourceBounded(g, o, g.SizeAt(2, 2), 3)
	if rb.Evaluations >= ex.Evaluations {
		t.Fatalf("RB (%d evals) not cheaper than EX (%d)", rb.Evaluations, ex.Evaluations)
	}
	// §V.B: EX ≈ 3× the comparator work of RB (K=3).
	ratio := float64(ex.Evaluations) / float64(rb.Evaluations)
	if ratio < 1.5 {
		t.Fatalf("EX/RB evaluation ratio %v implausibly low", ratio)
	}
}

func TestResourceBoundedImprovesOnBadStart(t *testing.T) {
	t.Parallel()
	g := ou.DefaultGrid(128)
	o := testObjective(5, 20, 1)
	start := g.SizeAt(5, 5) // 128×128 — likely far from optimal
	rb := ResourceBounded(g, o, start, 3)
	if !rb.Found {
		t.Fatal("RB found nothing from a feasible region")
	}
	if o.Feasible(start) && rb.BestEDP > o.EDP(start)*(1+1e-12) {
		t.Fatalf("RB did worse (%v) than its start (%v)", rb.BestEDP, o.EDP(start))
	}
}

func TestResourceBoundedEscapesInfeasibleStart(t *testing.T) {
	t.Parallel()
	g := ou.DefaultGrid(128)
	// Early layer at high drift: large OUs infeasible, small ones OK.
	o := testObjective(0, 20, 5e6)
	small := Exhaustive(g, o)
	if !small.Found {
		t.Skip("calibration leaves nothing feasible at this time")
	}
	// The feasible region may sit at the far corner of the 6×6 level grid;
	// give the walk enough budget to traverse it (Manhattan diameter 10).
	rb := ResourceBounded(g, o, g.SizeAt(5, 5), 12)
	if !rb.Found {
		t.Fatalf("RB failed to walk from 128×128 toward feasible %v", small.Best)
	}
	if !o.Feasible(rb.Best) {
		t.Fatalf("RB returned infeasible %v", rb.Best)
	}
}

func TestResourceBoundedOffGridStartSnaps(t *testing.T) {
	t.Parallel()
	g := ou.DefaultGrid(128)
	o := testObjective(5, 20, 1)
	rb := ResourceBounded(g, o, ou.Size{R: 9, C: 8}, 3) // the 9×8 baseline is off-grid
	if !rb.Found {
		t.Fatal("RB from off-grid start found nothing")
	}
	if _, _, ok := g.IndexOf(rb.Best); !ok {
		t.Fatalf("RB returned off-grid size %v", rb.Best)
	}
}

func TestResourceBoundedZeroStepsEvaluatesStartOnly(t *testing.T) {
	t.Parallel()
	g := ou.DefaultGrid(128)
	o := testObjective(5, 20, 1)
	rb := ResourceBounded(g, o, g.SizeAt(2, 2), 0)
	if rb.Evaluations != 1 {
		t.Fatalf("K=0 evaluated %d configs, want 1", rb.Evaluations)
	}
	if !rb.Found || rb.Best != g.SizeAt(2, 2) {
		t.Fatalf("K=0 should return the start when feasible, got %+v", rb)
	}
}

func TestResourceBoundedEvaluationBudget(t *testing.T) {
	t.Parallel()
	g := ou.DefaultGrid(128)
	o := testObjective(5, 20, 1)
	for _, k := range []int{1, 2, 3, 5} {
		rb := ResourceBounded(g, o, g.SizeAt(3, 3), k)
		if max := 1 + 4*k; rb.Evaluations > max {
			t.Fatalf("K=%d evaluated %d configs, budget %d", k, rb.Evaluations, max)
		}
	}
}

func TestSearchAgreementOverTimeSweep(t *testing.T) {
	t.Parallel()
	// RB (seeded with EX's previous answer, as the online loop effectively
	// does once the policy adapts) should track EX closely across the drift
	// sweep — the Fig. 5 observation.
	g := ou.DefaultGrid(128)
	prev := g.SizeAt(2, 2)
	for _, tt := range []float64{1, 1e2, 1e4, 1e6} {
		o := testObjective(3, 20, tt)
		ex := Exhaustive(g, o)
		rb := ResourceBounded(g, o, prev, 3)
		if ex.Found != rb.Found && ex.Found {
			// RB may need a couple of runs to walk far; allow one miss but
			// not a feasibility disagreement when seeded adjacent.
			t.Logf("t=%v: EX found %v, RB missed", tt, ex.Best)
		}
		if ex.Found && rb.Found {
			if rb.BestEDP > ex.BestEDP*4 {
				t.Fatalf("t=%v: RB EDP %v far from EX %v", tt, rb.BestEDP, ex.BestEDP)
			}
			prev = rb.Best
		}
	}
}

func TestClampFeasibleIdentityWhenFeasible(t *testing.T) {
	t.Parallel()
	g := ou.DefaultGrid(128)
	o := testObjective(5, 20, 1)
	s := g.SizeAt(2, 2)
	if got := ClampFeasible(g, o, s); got != s {
		t.Fatalf("feasible start %v clamped to %v", s, got)
	}
}

func TestClampFeasibleShrinksToFeasible(t *testing.T) {
	t.Parallel()
	g := ou.DefaultGrid(128)
	// Early layer at high drift: large sizes infeasible.
	o := testObjective(0, 20, 5e6)
	got := ClampFeasible(g, o, g.SizeAt(5, 5))
	if !o.Feasible(got) {
		t.Fatalf("clamp returned infeasible %v", got)
	}
	if _, _, ok := g.IndexOf(got); !ok {
		t.Fatalf("clamp returned off-grid %v", got)
	}
}

func TestClampFeasibleBottomsOutAtSmallest(t *testing.T) {
	t.Parallel()
	g := ou.DefaultGrid(128)
	o := testObjective(0, 20, 1e13) // nothing feasible
	if got := ClampFeasible(g, o, g.SizeAt(5, 5)); got != g.SizeAt(0, 0) {
		t.Fatalf("clamp should bottom out at 4×4, got %v", got)
	}
}

func TestClampFeasibleSnapsOffGrid(t *testing.T) {
	t.Parallel()
	g := ou.DefaultGrid(128)
	o := testObjective(5, 20, 1)
	got := ClampFeasible(g, o, ou.Size{R: 9, C: 8})
	if _, _, ok := g.IndexOf(got); !ok {
		t.Fatalf("off-grid start not snapped: %v", got)
	}
}

// Property: ClampFeasible's result is always on the grid, and feasible
// whenever anything is feasible.
func TestClampFeasibleProperty(t *testing.T) {
	t.Parallel()
	g := ou.DefaultGrid(128)
	for _, layer := range []int{0, 5, 19} {
		for _, tt := range []float64{1, 1e3, 1e6, 1e8} {
			o := testObjective(layer, 20, tt)
			anyFeasible := o.Feasible(g.SizeAt(0, 0))
			for r := 0; r < g.Levels(); r++ {
				for c := 0; c < g.Levels(); c++ {
					got := ClampFeasible(g, o, g.SizeAt(r, c))
					if _, _, ok := g.IndexOf(got); !ok {
						t.Fatalf("off-grid clamp result %v", got)
					}
					if anyFeasible && !o.Feasible(got) {
						t.Fatalf("layer %d t=%v start (%d,%d): clamp missed feasible region",
							layer, tt, r, c)
					}
				}
			}
		}
	}
}
