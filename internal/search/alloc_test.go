package search

import (
	"testing"

	"odin/internal/ou"
)

// TestSearchAllocFree pins the candidate-evaluation hot path at zero
// allocations per search: the exhaustive scan, the resource-bounded walk
// and the feasibility clamp run allocation-free when observability (Probe)
// is off. The decision cache's miss path relies on this — memoization only
// pays off if the live pass it wraps is itself garbage-free.
func TestSearchAllocFree(t *testing.T) {
	g := ou.DefaultGrid(128)
	o := testObjective(5, 20, 1e6)
	start := g.SizeAt(2, 2)
	infeasibleStart := g.SizeAt(g.Levels()-1, g.Levels()-1)
	cases := []struct {
		name string
		fn   func()
	}{
		{"Exhaustive", func() { _ = Exhaustive(g, o) }},
		{"ResourceBounded", func() { _ = ResourceBounded(g, o, start, 3) }},
		{"ClampFeasible", func() { _ = ClampFeasible(g, o, infeasibleStart) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if avg := testing.AllocsPerRun(500, c.fn); avg != 0 {
				t.Fatalf("%s allocates %v per op, want 0", c.name, avg)
			}
		})
	}
}
