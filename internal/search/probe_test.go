package search

import (
	"math"
	"testing"

	"odin/internal/ou"
)

// TestProbeObservesEveryEvaluation: the audit hook sees exactly
// Result.Evaluations candidates, with EDP scored iff feasible, and its
// presence never changes the search outcome.
func TestProbeObservesEveryEvaluation(t *testing.T) {
	t.Parallel()
	g := ou.DefaultGrid(128)
	for _, tc := range []struct {
		name string
		run  func(o Objective) Result
	}{
		{"exhaustive", func(o Objective) Result { return Exhaustive(g, o) }},
		{"rb-feasible-start", func(o Objective) Result {
			return ResourceBounded(g, o, g.SizeAt(2, 2), 3)
		}},
		{"rb-infeasible-start", func(o Objective) Result {
			return ResourceBounded(g, o, g.SizeAt(g.Levels()-1, g.Levels()-1), 3)
		}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			// Mid-life age: mixed feasible/infeasible grid.
			o := testObjective(2, 20, 1e6)
			base := tc.run(o)

			type seen struct {
				s        ou.Size
				feasible bool
				edp      float64
			}
			var got []seen
			probed := o
			probed.Probe = func(s ou.Size, feasible bool, edp float64) {
				got = append(got, seen{s, feasible, edp})
			}
			res := tc.run(probed)

			if res != base {
				t.Fatalf("probe changed the search result: %+v vs %+v", res, base)
			}
			if len(got) != res.Evaluations {
				t.Fatalf("probe saw %d candidates, Evaluations=%d", len(got), res.Evaluations)
			}
			feasibleSeen := false
			for _, c := range got {
				if c.feasible != o.Feasible(c.s) {
					t.Fatalf("candidate %v feasibility mismatch", c.s)
				}
				if c.feasible {
					feasibleSeen = true
					if math.Abs(c.edp-o.EDP(c.s)) > 0 {
						t.Fatalf("candidate %v edp %g, want %g", c.s, c.edp, o.EDP(c.s))
					}
				} else if !math.IsNaN(c.edp) {
					t.Fatalf("infeasible candidate %v scored edp %g, want NaN", c.s, c.edp)
				}
			}
			if res.Found && !feasibleSeen {
				t.Fatal("search found a size but probe saw no feasible candidate")
			}
		})
	}
}
