// Package clock abstracts the flow of time behind a minimal interface so
// that every time-dependent code path in the repository stays deterministic
// by construction. Simulation results must never depend on the machine's
// wall clock; the determinism contract (DESIGN.md §6) bans time.Now
// everywhere. Code that genuinely needs "now" — the serving layer's arrival
// stamps, odinsim's progress reports — takes a Clock instead: tests and
// deterministic replay inject a Virtual clock driven by trace timestamps,
// and only live binaries construct the Real clock (real.go, the single
// lint-exempted wall-clock read in the module).
//
// Time is expressed as float64 seconds since the clock's epoch, matching
// the simulation-time base used throughout internal/core (device ages,
// horizon timestamps) so serving arrival times feed the Odin controller
// without conversion.
package clock

import (
	"fmt"
	"sync"
)

// Clock yields the current time in seconds since the clock's epoch. The
// epoch is clock-defined: a Virtual clock starts wherever it was set, the
// Real clock starts at its construction instant.
type Clock interface {
	Now() float64
}

// Virtual is a manually driven clock for tests and deterministic replay.
// Time only moves when Set or Advance is called, so a trace replayed
// against a Virtual clock observes exactly the trace's timestamps. It is
// safe for concurrent use.
type Virtual struct {
	mu sync.Mutex
	t  float64
}

// NewVirtual returns a Virtual clock positioned at start seconds.
func NewVirtual(start float64) *Virtual {
	return &Virtual{t: start}
}

// Now returns the clock's current position.
func (v *Virtual) Now() float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.t
}

// Set moves the clock to t. Virtual time is monotone: moving backwards is
// a replay bug and panics.
func (v *Virtual) Set(t float64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t < v.t {
		panic(fmt.Sprintf("clock: virtual time moved backwards (%g -> %g)", v.t, t))
	}
	v.t = t
}

// Advance moves the clock forward by d seconds (d must be >= 0).
func (v *Virtual) Advance(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("clock: negative advance %g", d))
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.t += d
}
