package clock

import "time"

// Real reads the machine wall clock. It exists for live binaries only
// (cmd/odinserve's serving mode, cmd/odinsim's progress reports); tests and
// replay paths must inject a Virtual clock instead, so that no simulation
// result ever depends on real time.
//
// This file is the single sanctioned wall-clock read in the module: the
// odinlint nondeterminism rule is exempted for exactly this path
// (-exempt nondeterminism=internal/clock/real.go in the Makefile and CI).
type Real struct {
	epoch time.Time
}

// NewReal returns a wall clock whose epoch is the construction instant.
func NewReal() *Real {
	return &Real{epoch: time.Now()}
}

// Now returns wall-clock seconds elapsed since the clock was constructed.
// The underlying reading is monotonic (Go time.Time carries a monotonic
// component), so Now never goes backwards across NTP adjustments.
func (r *Real) Now() float64 {
	return time.Since(r.epoch).Seconds()
}
