package clock

import (
	"math"
	"sync"
	"testing"
)

// eq compares clock positions with a tolerance (floateq hygiene).
func eq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestVirtualStartsAtConstructionTime(t *testing.T) {
	t.Parallel()
	v := NewVirtual(42.5)
	if got := v.Now(); !eq(got, 42.5) {
		t.Fatalf("Now() = %g, want 42.5", got)
	}
}

func TestVirtualSetAndAdvance(t *testing.T) {
	t.Parallel()
	v := NewVirtual(0)
	v.Set(10)
	if got := v.Now(); !eq(got, 10) {
		t.Fatalf("after Set(10): Now() = %g", got)
	}
	v.Advance(2.5)
	if got := v.Now(); !eq(got, 12.5) {
		t.Fatalf("after Advance(2.5): Now() = %g", got)
	}
	// Setting to the current time is a no-op, not a panic.
	v.Set(12.5)
	if got := v.Now(); !eq(got, 12.5) {
		t.Fatalf("after Set(now): Now() = %g", got)
	}
}

func TestVirtualPanicsOnBackwardsTime(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Set backwards did not panic")
		}
	}()
	v := NewVirtual(5)
	v.Set(4)
}

func TestVirtualPanicsOnNegativeAdvance(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	NewVirtual(0).Advance(-1)
}

func TestVirtualConcurrentReads(t *testing.T) {
	t.Parallel()
	v := NewVirtual(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				_ = v.Now()
			}
		}()
	}
	for j := 0; j < 1000; j++ {
		v.Advance(0.001)
	}
	wg.Wait()
	if got := v.Now(); !eq(got, 1.0) {
		t.Fatalf("Now() = %g, want ~1.0", got)
	}
}

func TestRealIsMonotone(t *testing.T) {
	t.Parallel()
	r := NewReal()
	prev := r.Now()
	for i := 0; i < 100; i++ {
		cur := r.Now()
		if cur < prev {
			t.Fatalf("Real clock went backwards: %g -> %g", prev, cur)
		}
		prev = cur
	}
}
