package serve

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"odin/internal/clock"
	"odin/internal/core"
	"odin/internal/decache"
	"odin/internal/policy"
)

// replayCached is replayOnce with explicit decision-cache control: disable
// opts the whole fleet out; otherwise NewServer injects one shared cache.
func replayCached(t testing.TB, tr Trace, chips, workers int, disable bool) (ReplayResult, *Server) {
	t.Helper()
	clk := clock.NewVirtual(0)
	cfg := Config{
		Clock:      clk,
		QueueDepth: 4,
		MaxBatch:   4,
		Workers:    workers,
	}
	cfg.Controller.DisableDecisionCache = disable
	for i := 0; i < chips; i++ {
		cfg.Chips = append(cfg.Chips, ChipConfig{Custom: tinyModel("tiny"), Seed: uint64(i) + 1})
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	return Replay(s, clk, tr), s
}

// TestReplayCachedByteIdentical pins the serving-layer decision-cache
// contract: a fleet sharing one decision cache replays a trace to the very
// same bytes — response checksum, decision log, energy/latency totals — as
// an uncached fleet, at every worker count. The shared cache must actually
// be exercised (cross-chip and cross-run hits), or the comparison is
// vacuous.
func TestReplayCachedByteIdentical(t *testing.T) {
	t.Parallel()
	tr := overloadTrace(t, 200)

	base, bs := replayCached(t, tr, 2, 2, true)
	if bs.DecisionCache() != nil {
		t.Fatal("DisableDecisionCache fleet still built a shared cache")
	}
	var baseLog bytes.Buffer
	if err := base.WriteLog(&baseLog); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 3} {
		got, s := replayCached(t, tr, 2, workers, false)
		cache := s.DecisionCache()
		if cache == nil {
			t.Fatalf("workers=%d: fleet built no shared decision cache", workers)
		}
		if c := cache.Counters(); c.DecisionHits == 0 {
			t.Errorf("workers=%d: shared cache saw no decision hits", workers)
		}
		if got.Checksum != base.Checksum {
			t.Errorf("workers=%d cached checksum %#x, want uncached %#x", workers, got.Checksum, base.Checksum)
		}
		var log bytes.Buffer
		if err := got.WriteLog(&log); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(log.Bytes(), baseLog.Bytes()) {
			t.Errorf("workers=%d cached decision log differs from uncached baseline", workers)
		}
		if math.Float64bits(got.Energy) != math.Float64bits(base.Energy) {
			t.Errorf("workers=%d cached energy %g, want bit-identical %g", workers, got.Energy, base.Energy)
		}
		if math.Float64bits(got.Latency) != math.Float64bits(base.Latency) {
			t.Errorf("workers=%d cached latency %g, want bit-identical %g", workers, got.Latency, base.Latency)
		}
	}
}

// TestSharedCacheConcurrentChips hammers one decision cache from many
// chip-shaped goroutines at once — the serve worker-pool access pattern —
// and checks every chip still decides exactly what an isolated uncached
// controller decides. Run under -race this doubles as the data-race proof
// for concurrent Lookup/Store/PredictLookup on the shared maps.
func TestSharedCacheConcurrentChips(t *testing.T) {
	t.Parallel()
	sys := core.DefaultSystem()
	shared := decache.New()
	const chips = 8
	times := []float64{0, 1e5, 1e5, 3e6, 3e6, 1e7}

	// Reference: one uncached controller per distinct seed.
	refSizes := make(map[uint64][][]int, chips)
	for seed := uint64(1); seed <= 2; seed++ {
		wl, err := sys.Prepare(tinyModel("tiny"))
		if err != nil {
			t.Fatal(err)
		}
		opts := core.DefaultControllerOptions()
		opts.DisableDecisionCache = true
		opts.TrainSeed = seed
		ctrl, err := core.NewController(sys, wl,
			policy.New(policy.Config{Grid: sys.Grid(), Seed: seed}), opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, tm := range times {
			rep := ctrl.RunInference(tm)
			row := make([]int, len(rep.Sizes))
			for j, s := range rep.Sizes {
				row[j] = s.R<<16 | s.C
			}
			refSizes[seed] = append(refSizes[seed], row)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, chips)
	for i := 0; i < chips; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seed := uint64(i%2) + 1 // two policy cohorts → both fresh and shared key streams
			wl, err := sys.Prepare(tinyModel("tiny"))
			if err != nil {
				errs <- err
				return
			}
			opts := core.DefaultControllerOptions()
			opts.Cache = shared
			opts.TrainSeed = seed
			ctrl, err := core.NewController(sys, wl,
				policy.New(policy.Config{Grid: sys.Grid(), Seed: seed}), opts)
			if err != nil {
				errs <- err
				return
			}
			for k, tm := range times {
				rep := ctrl.RunInference(tm)
				for j, s := range rep.Sizes {
					if got, want := s.R<<16|s.C, refSizes[seed][k][j]; got != want {
						errs <- &chipDivergence{chip: i, run: k, layer: j, got: got, want: want}
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if c := shared.Counters(); c.DecisionHits == 0 {
		t.Fatal("concurrent chips never hit the shared cache")
	}
}

type chipDivergence struct{ chip, run, layer, got, want int }

func (e *chipDivergence) Error() string {
	return "chip decision diverged from uncached reference"
}
