package serve

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"odin/internal/accuracy"
	"odin/internal/clock"
	"odin/internal/core"
	"odin/internal/reram"
)

// fleetReplay builds a fresh fleet on a fresh virtual clock and replays tr
// through it with the given router and fleet-op schedule.
func fleetReplay(t testing.TB, tr Trace, chips, workers int, router string, ops []FleetOp) ReplayResult {
	t.Helper()
	clk := clock.NewVirtual(0)
	cfg := Config{
		Clock:      clk,
		QueueDepth: 4,
		MaxBatch:   4,
		Workers:    workers,
		Router:     router,
	}
	for i := 0; i < chips; i++ {
		cfg.Chips = append(cfg.Chips, ChipConfig{Custom: tinyModel("tiny"), Seed: uint64(i) + 1})
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	return ReplayOps(s, clk, tr, ops)
}

// driftSystem accelerates conductance drift so forced-reprogram deadlines
// land inside a microseconds-scale trace: Nu=2 steepens the power law and
// the small T0 shrinks the deadline to ~2.9e-5 s (~60 service latencies of
// the tiny model), while the faster write pulses shrink the reprogram
// stall from ~1000 service latencies to ~5. The stall must stay well
// under the steering window (1-margin)·deadline, or a chip entering the
// margin while its peer is mid-maintenance is forced over the deadline
// before its own idle window arrives.
func driftSystem() core.System {
	dev := reram.DefaultDeviceParams()
	dev.Nu = 2
	dev.T0 = 5e-6
	dev.WriteLatencyPerCell = 0.2e-9
	sys := core.DefaultSystem()
	sys.Device = dev
	sys.Acc = accuracy.Default(dev)
	return sys
}

// churnOps is the standard lifecycle schedule for a replayed trace of n
// arrivals over a fleet of `chips` seed chips: two hot adds a third of the
// way in, then chip 1 drained and removed at two thirds — while, under an
// overload trace, it still holds pending requests and an in-flight batch.
func churnOps(n, chips int) []FleetOp {
	return []FleetOp{
		{After: n / 3, Add: &ChipConfig{Custom: tinyModel("tiny"), Seed: uint64(chips) + 1}},
		{After: n / 3, Add: &ChipConfig{Custom: tinyModel("tiny"), Seed: uint64(chips) + 2}},
		{After: 2 * n / 3, Remove: 1},
	}
}

// TestPropFleetChurnDeterministic is the tentpole acceptance property:
// replay checksums are byte-identical across worker counts {1, 8} at fleet
// sizes {2, 64, 1024}, with chips hot-added and a loaded chip removed
// mid-trace, and request conservation (admitted + shed + errors + rejected
// = submitted) holds throughout the churn.
func TestPropFleetChurnDeterministic(t *testing.T) {
	t.Parallel()
	lat := probeLatency(t)
	for _, fleet := range []int{2, 64, 1024} {
		fleet := fleet
		t.Run(fmt.Sprintf("fleet%d", fleet), func(t *testing.T) {
			t.Parallel()
			// Round-robin spreads arrivals perfectly evenly, so overflowing a
			// depth-4 queue needs >5 near-simultaneous requests per chip:
			// 8 per chip at ~8x fleet capacity sheds on every fleet size.
			n := fleet * 8
			tr, err := GenTrace(TraceConfig{
				Seed:     uint64(fleet),
				Rate:     8 * float64(fleet) / lat,
				Requests: n,
				Models:   []string{"tiny"},
			})
			if err != nil {
				t.Fatal(err)
			}
			ops := churnOps(n, fleet)

			base := fleetReplay(t, tr, fleet, 1, "rr", ops)
			if got := base.Admitted + base.Shed + base.Errors + base.Rejected; got != n {
				t.Fatalf("conservation broken under churn: %d+%d+%d+%d = %d, submitted %d",
					base.Admitted, base.Shed, base.Errors, base.Rejected, got, n)
			}
			if base.Rejected != 0 || base.Errors != 0 {
				t.Fatalf("churn replay rejected %d, errored %d; want 0/0", base.Rejected, base.Errors)
			}
			if base.Shed == 0 {
				t.Error("overload churn trace shed nothing; admission under churn untested")
			}
			var baseLog bytes.Buffer
			if err := base.WriteLog(&baseLog); err != nil {
				t.Fatal(err)
			}

			got := fleetReplay(t, tr, fleet, 8, "rr", ops)
			if got.Checksum != base.Checksum {
				t.Errorf("workers=8 checksum %#x, want %#x", got.Checksum, base.Checksum)
			}
			var log bytes.Buffer
			if err := got.WriteLog(&log); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(log.Bytes(), baseLog.Bytes()) {
				t.Error("workers=8 decision log differs from workers=1 under fleet churn")
			}
			if math.Float64bits(got.Energy) != math.Float64bits(base.Energy) ||
				math.Float64bits(got.Latency) != math.Float64bits(base.Latency) ||
				math.Float64bits(got.Wait) != math.Float64bits(base.Wait) {
				t.Error("workers=8 aggregate figures not bit-identical under fleet churn")
			}
		})
	}
}

// TestPropExactRouterChurnDeterministic extends the churn property to the
// exact routers: occupancy- and drift-scored picks must also replay
// byte-identically at every worker count, because the dispatcher advances
// every candidate to the arrival time before scoring.
func TestPropExactRouterChurnDeterministic(t *testing.T) {
	t.Parallel()
	lat := probeLatency(t)
	const fleet, n = 8, 96
	tr, err := GenTrace(TraceConfig{
		Seed:     17,
		Rate:     2 * fleet / lat,
		Requests: n,
		Models:   []string{"tiny"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, router := range []string{"least", "drift"} {
		router := router
		t.Run(router, func(t *testing.T) {
			t.Parallel()
			ops := churnOps(n, fleet)
			base := fleetReplay(t, tr, fleet, 1, router, ops)
			for _, workers := range []int{4, 8} {
				got := fleetReplay(t, tr, fleet, workers, router, ops)
				if got.Checksum != base.Checksum {
					t.Errorf("router %s workers=%d checksum %#x, want %#x",
						router, workers, got.Checksum, base.Checksum)
				}
			}
			if got := base.Admitted + base.Shed + base.Errors; got != n {
				t.Errorf("router %s conservation: %d of %d accounted", router, got, n)
			}
		})
	}
}

// TestRemoveChipMidFlight pins the exactly-once drain contract through
// removal: a chip retired while it holds an in-flight batch and queued
// requests still answers every one of them, and removing the last host of a
// model turns later arrivals into routing errors (a simulated outage).
func TestRemoveChipMidFlight(t *testing.T) {
	t.Parallel()
	s, _ := tinyServer(t, 2, Config{QueueDepth: 4, MaxBatch: 2})

	// All at t=0: round-robin interleaves, so chip 0 owns requests 0,2,4 —
	// one dispatched immediately (in flight) and two queued behind it.
	var chans []<-chan Response
	for i := 0; i < 6; i++ {
		chans = append(chans, s.Submit("tiny"))
	}
	if err := s.RemoveChip(0); err != nil {
		t.Fatalf("RemoveChip(0): %v", err)
	}
	// The removed chip's requests are already answered (exactly once).
	answered := map[int]Response{}
	for _, i := range []int{0, 2, 4} {
		select {
		case r := <-chans[i]:
			answered[i] = r
			if r.Shed || r.Err != "" || r.Chip != 0 {
				t.Errorf("request %d on removed chip answered %+v, want served by chip 0", i, r)
			}
		default:
			t.Errorf("request %d not answered by the removal drain", i)
		}
	}
	if err := s.RemoveChip(0); err == nil {
		t.Error("double remove accepted")
	}
	if err := s.RemoveChip(9); err == nil {
		t.Error("remove of unknown chip accepted")
	}

	// Chip 1 still hosts the model; new arrivals route there.
	okCh := s.Submit("tiny")
	// Remove the last host: the model goes dark.
	if err := s.RemoveChip(1); err != nil {
		t.Fatalf("RemoveChip(1): %v", err)
	}
	darkCh := s.Submit("tiny")

	info, err := s.FleetInfo()
	if err != nil {
		t.Fatalf("FleetInfo: %v", err)
	}
	if len(info) != 2 || !info[0].Removed || !info[1].Removed {
		t.Fatalf("FleetInfo after removals = %+v, want both chips present and removed", info)
	}
	s.Close()

	for i, ch := range chans {
		if _, ok := answered[i]; ok {
			continue // consumed above; exactly-once means the channel is empty now
		}
		select {
		case r := <-ch:
			if r.Err != "" {
				t.Errorf("request %d errored: %q", i, r.Err)
			}
		default:
			t.Errorf("request %d never answered", i)
		}
	}
	if r := <-okCh; r.Shed || r.Err != "" || r.Chip != 1 {
		t.Errorf("post-removal request answered %+v, want served by chip 1", r)
	}
	if r := <-darkCh; r.Err == "" || !strings.Contains(r.Err, "unknown model") {
		t.Errorf("request after last host removed answered %+v, want unknown-model error", r)
	}

	stats := s.Stats()
	if len(stats) != 2 {
		t.Fatalf("Stats kept %d chips, want both removed chips", len(stats))
	}
	if stats[0].Served != 3 || !stats[0].Removed {
		t.Errorf("chip 0 stats %+v, want Served 3 and Removed", stats[0])
	}
}

// TestAddChipExpandsRouting pins hot add: a new model becomes routable the
// moment AddChip returns, and an added same-model chip joins the rotation.
func TestAddChipExpandsRouting(t *testing.T) {
	t.Parallel()
	s, _ := tinyServer(t, 1, Config{QueueDepth: 8})

	before := s.Submit("tiny2") // not hosted yet
	id, err := s.AddChip(ChipConfig{Custom: tinyModel("tiny2")})
	if err != nil {
		t.Fatalf("AddChip: %v", err)
	}
	if id != 1 {
		t.Fatalf("added chip id %d, want 1 (monotone, never reused)", id)
	}
	after := s.Submit("tiny2")

	// A same-model add joins the existing rotation.
	id2, err := s.AddChip(ChipConfig{Custom: tinyModel("tiny")})
	if err != nil {
		t.Fatalf("AddChip: %v", err)
	}
	var tinyChans []<-chan Response
	for i := 0; i < 4; i++ {
		tinyChans = append(tinyChans, s.Submit("tiny"))
	}
	s.Close()

	if r := <-before; r.Err == "" {
		t.Errorf("pre-add submission answered %+v, want unknown-model error", r)
	}
	if r := <-after; r.Err != "" || r.Shed || r.Chip != 1 {
		t.Errorf("post-add submission answered %+v, want served by chip 1", r)
	}
	seen := map[int]bool{}
	for i, ch := range tinyChans {
		r := <-ch
		if r.Err != "" || r.Shed {
			t.Fatalf("tiny request %d not served: %+v", i, r)
		}
		seen[r.Chip] = true
	}
	if !seen[0] || !seen[id2] {
		t.Errorf("tiny rotation used chips %v, want both 0 and %d", seen, id2)
	}
	if _, err := s.AddChip(ChipConfig{}); err == nil {
		t.Error("AddChip with no model accepted")
	}
}

// TestLiveHotAddFleetGrowthNoDeadlock regression-tests the Live-mode wake
// path against hot fleet growth. The completion signal used to be a
// channel sized to the seed fleet (one slot per NewServer chip); once
// AddChip grew the fleet past that, concurrently finishing workers could
// fill it and block on the wake send while the dispatcher blocked handing
// the next batch to the (also seed-sized) jobs channel — with nothing
// draining either channel, a permanent deadlock. The hint is now a
// mutex-guarded woken set plus a non-blocking 1-slot notify, so the worker
// side can never block at any fleet size. Grow a 1-chip seed fleet to 9
// chips under concurrent load and require Close to return with every
// submission answered.
func TestLiveHotAddFleetGrowthNoDeadlock(t *testing.T) {
	t.Parallel()
	for round := 0; round < 5; round++ {
		s, _ := tinyServer(t, 1, Config{QueueDepth: 64, MaxBatch: 2, Workers: 4, Live: true})
		var chans []<-chan Response
		for i := 0; i < 8; i++ {
			if _, err := s.AddChip(ChipConfig{Custom: tinyModel("tiny")}); err != nil {
				t.Fatal(err)
			}
			for j := 0; j < 16; j++ {
				chans = append(chans, s.Submit("tiny"))
			}
		}
		closed := make(chan struct{})
		go func() { s.Close(); close(closed) }()
		select {
		case <-closed:
		case <-time.After(30 * time.Second):
			t.Fatal("Close deadlocked after hot fleet growth in Live mode")
		}
		for i, ch := range chans {
			select {
			case r := <-ch:
				if r.Err != "" {
					t.Fatalf("round %d request %d errored: %q", round, i, r.Err)
				}
			default:
				t.Fatalf("round %d request %d has no response after drain", round, i)
			}
		}
	}
}

// TestFleetOpsAfterCloseFail pins the control plane's draining behavior.
func TestFleetOpsAfterCloseFail(t *testing.T) {
	t.Parallel()
	s, _ := tinyServer(t, 1, Config{})
	s.Close()
	if _, err := s.AddChip(ChipConfig{Custom: tinyModel("tiny")}); err == nil {
		t.Error("AddChip after Close accepted")
	}
	if err := s.RemoveChip(0); err == nil {
		t.Error("RemoveChip after Close accepted")
	}
	if _, err := s.FleetInfo(); err == nil {
		t.Error("FleetInfo after Close accepted")
	}
}

// TestLeastLoadedPrefersIdle pins the "least" policy against the round-robin
// baseline: with arrivals spaced wider than the service latency, chip 0 is
// always idle again by the next arrival, so least-loaded keeps serving
// everything on chip 0 while round-robin alternates.
func TestLeastLoadedPrefersIdle(t *testing.T) {
	t.Parallel()
	lat := probeLatency(t)
	run := func(router string) []Response {
		clk := clock.NewVirtual(0)
		cfg := Config{Clock: clk, QueueDepth: 8, Router: router,
			Chips: []ChipConfig{
				{Custom: tinyModel("tiny"), Seed: 1},
				{Custom: tinyModel("tiny"), Seed: 2},
			}}
		s, err := NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Start()
		var chans []<-chan Response
		for i := 0; i < 6; i++ {
			clk.Set(float64(i) * 2 * lat)
			chans = append(chans, s.Submit("tiny"))
		}
		s.Close()
		out := make([]Response, len(chans))
		for i, ch := range chans {
			out[i] = <-ch
		}
		return out
	}
	for i, r := range run("least") {
		if r.Shed || r.Err != "" || r.Chip != 0 {
			t.Errorf("least: spaced request %d answered %+v, want chip 0 (always idle)", i, r)
		}
	}
	for i, r := range run("rr") {
		if want := i % 2; r.Chip != want {
			t.Errorf("rr: spaced request %d on chip %d, want alternating %d", i, r.Chip, want)
		}
	}
}

// TestDriftRouterSteersAndMaintains is the drift policy's behavioral pin,
// on a drift-accelerated system where the forced-reprogram deadline is ~24
// service latencies. The two chips' drift phases are staggered half a
// deadline apart (ProgrammedAt — synchronized phases would stall both
// chips at once and the backlog would mask the next maintenance window),
// so at any moment one chip is fresh: the drift router steers arrivals to
// it and gives the aged one its write pass off-path while idle. Result:
// zero forced (on-path) reprograms, while the same schedule under
// round-robin carries reprogram stalls on live batches.
func TestDriftRouterSteersAndMaintains(t *testing.T) {
	t.Parallel()
	sys := driftSystem()
	run := func(router string) (*Server, []Response) {
		clk := clock.NewVirtual(0)
		cfg := Config{Clock: clk, QueueDepth: 8, Router: router, System: &sys,
			Chips: []ChipConfig{
				{Custom: tinyModel("tiny"), Seed: 1},
				{Custom: tinyModel("tiny"), Seed: 2, ProgrammedAt: -1.46e-5}, // half a deadline older
			}}
		s, err := NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Start()
		var chans []<-chan Response
		for i := 0; i < 120; i++ {
			clk.Set(float64(i) * 1e-6) // ~2 service latencies apart; 120 µs spans ~4 deadlines
			chans = append(chans, s.Submit("tiny"))
		}
		s.Close()
		out := make([]Response, len(chans))
		for i, ch := range chans {
			out[i] = <-ch
		}
		return s, out
	}

	s, responses := run("drift")
	for i, r := range responses {
		if r.Shed || r.Err != "" {
			t.Fatalf("drift: request %d not served: %+v", i, r)
		}
		if r.Reprogrammed {
			t.Errorf("drift: request %d carried an on-path reprogram stall; maintenance should have pre-empted it", i)
		}
	}
	var sb strings.Builder
	if err := s.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "odinserve_maintenance_reprograms_total 0\n") {
		t.Error("drift: no off-path maintenance pass ran across ~4 deadline crossings")
	}
	if !strings.Contains(out, "odinserve_reprogram_on_path_requests_total 0\n") {
		t.Errorf("drift: on-path reprogram counter not zero:\n%s", out)
	}

	_, rrResponses := run("rr")
	forced := 0
	for _, r := range rrResponses {
		if r.Reprogrammed {
			forced++
		}
	}
	if forced == 0 {
		t.Error("rr baseline never hit a forced reprogram on this schedule; drift comparison is vacuous")
	}
}

// TestDriftRouterSteersAwayFromLoadedNearChip pins the steering half of
// the drift policy: a chip that crosses the margin while it still holds
// queued work cannot take its maintenance pass (that would preempt live
// requests), so the router routes new arrivals to a fresher peer even
// though the near chip is less loaded — and the steered counter books it.
func TestDriftRouterSteersAwayFromLoadedNearChip(t *testing.T) {
	t.Parallel()
	sys := driftSystem()
	lat := probeLatency(t)

	// Forced deadline of the tiny model on this system (min over layers at
	// the smallest OU), to place chip 1's margin crossing mid-burst.
	smallest := sys.Grid().SizeAt(0, 0)
	deadline := math.Inf(1)
	for j := 0; j < 3; j++ {
		if d := sys.Acc.ReprogramDeadline(j, 3, smallest); d < deadline {
			deadline = d
		}
	}
	// Back-date chip 1 so its age hits margin·deadline at t = lat — after
	// the t=0 burst has loaded it, before the burst drains.
	programmedAt := -(DefaultDriftMargin*deadline - sys.Device.T0 - lat)

	clk := clock.NewVirtual(0)
	cfg := Config{Clock: clk, QueueDepth: 8, Router: "drift", System: &sys,
		Chips: []ChipConfig{
			{Custom: tinyModel("tiny"), Seed: 1},
			{Custom: tinyModel("tiny"), Seed: 2, ProgrammedAt: programmedAt},
		}}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	// Burst at t=0: least-loaded ties alternate the fleet, so chip 1 ends
	// up with ~3 requests ≈ 3 service latencies of committed work.
	for i := 0; i < 6; i++ {
		s.Submit("tiny")
	}
	// Probe arrival at 2·lat: chip 1 is past its margin but still working,
	// so it cannot be maintained and must be steered around.
	clk.Set(2 * lat)
	probe := s.Submit("tiny")
	s.Close()
	if r := <-probe; r.Shed || r.Err != "" || r.Chip != 0 {
		t.Errorf("probe arrival answered %+v, want served by fresh chip 0", r)
	}
	var sb strings.Builder
	if err := s.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "odinserve_steered_total 0\n") {
		t.Error("steered counter did not book the routed-around near chip")
	}
}

// TestProgrammedAtStaggersAges pins the fleet-staggering knob: a chip
// back-dated by ProgrammedAt starts the trace older, so its forced deadline
// arrives earlier than an identically configured fresh chip's.
func TestProgrammedAtStaggersAges(t *testing.T) {
	t.Parallel()
	clk := clock.NewVirtual(0)
	cfg := Config{Clock: clk, Router: "least",
		Chips: []ChipConfig{
			{Custom: tinyModel("tiny"), Seed: 1},
			{Custom: tinyModel("tiny"), Seed: 2, ProgrammedAt: -5},
		}}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	info, err := s.FleetInfo()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if len(info) != 2 {
		t.Fatalf("FleetInfo returned %d chips", len(info))
	}
	if got := info[1].Age - info[0].Age; math.Abs(got-5) > 1e-12 {
		t.Errorf("back-dated chip is %g older, want 5 (ages %g vs %g)", got, info[1].Age, info[0].Age)
	}
	if info[0].DeadlineAge != info[1].DeadlineAge {
		t.Errorf("identical chips disagree on deadline: %g vs %g", info[0].DeadlineAge, info[1].DeadlineAge)
	}
}

// TestTenantQuotaSheds pins fleet-wide quota admission: a tenant with quota
// 2 can hold at most two virtually outstanding requests; the rest shed with
// the quota counter, while another tenant is unaffected.
func TestTenantQuotaSheds(t *testing.T) {
	t.Parallel()
	s, _ := tinyServer(t, 1, Config{QueueDepth: 8, MaxBatch: 1,
		Tenants: []TenantConfig{{Name: "metered", Quota: 2}}})
	var metered, free []<-chan Response
	for i := 0; i < 5; i++ {
		metered = append(metered, s.SubmitAs("tiny", "metered"))
	}
	for i := 0; i < 2; i++ {
		free = append(free, s.SubmitAs("tiny", "unmetered"))
	}
	s.Close()

	var served, shed int
	for i, ch := range metered {
		r := <-ch
		switch {
		case r.Err != "":
			t.Fatalf("metered request %d errored: %q", i, r.Err)
		case r.Shed:
			shed++
		default:
			served++
		}
	}
	if served != 2 || shed != 3 {
		t.Errorf("metered tenant served %d, shed %d; want 2 served, 3 quota-shed", served, shed)
	}
	for i, ch := range free {
		if r := <-ch; r.Shed || r.Err != "" {
			t.Errorf("unmetered request %d answered %+v, want served", i, r)
		}
	}
	var sb strings.Builder
	if err := s.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"odinserve_quota_shed_total 3",
		`odinserve_tenant_shed_total{tenant="metered"} 3`,
		`odinserve_tenant_admitted_total{tenant="metered"} 2`,
		`odinserve_tenant_admitted_total{tenant="unmetered"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}

// TestTenantQuotaFreesOverTime pins that quota occupancy is virtual-time
// exact: once earlier requests virtually complete, the tenant's slots free
// up and later arrivals are admitted again.
func TestTenantQuotaFreesOverTime(t *testing.T) {
	t.Parallel()
	lat := probeLatency(t)
	clk := clock.NewVirtual(0)
	cfg := Config{Clock: clk, QueueDepth: 8, MaxBatch: 1,
		Tenants: []TenantConfig{{Name: "metered", Quota: 1}},
		Chips:   []ChipConfig{{Custom: tinyModel("tiny"), Seed: 1}}}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	a := s.SubmitAs("tiny", "metered") // t=0, admitted
	b := s.SubmitAs("tiny", "metered") // t=0, over quota
	clk.Set(10 * lat)
	c := s.SubmitAs("tiny", "metered") // a has virtually completed; admitted
	s.Close()
	if r := <-a; r.Shed || r.Err != "" {
		t.Errorf("first metered request answered %+v, want served", r)
	}
	if r := <-b; !r.Shed {
		t.Errorf("over-quota request answered %+v, want shed", r)
	}
	if r := <-c; r.Shed || r.Err != "" {
		t.Errorf("post-completion request answered %+v, want served (quota slot freed)", r)
	}
}

// TestTenantPriorityEviction pins queue preemption: at a full queue, a
// higher-priority arrival evicts the newest queued request of the lowest
// class below it; equal priorities never preempt.
func TestTenantPriorityEviction(t *testing.T) {
	t.Parallel()
	s, _ := tinyServer(t, 1, Config{QueueDepth: 2, MaxBatch: 1,
		Tenants: []TenantConfig{
			{Name: "low", Priority: 0},
			{Name: "high", Priority: 1},
		}})
	// t=0: r0 dispatches immediately; r1, r2 fill the depth-2 queue.
	var chans []<-chan Response
	for i := 0; i < 3; i++ {
		chans = append(chans, s.SubmitAs("tiny", "low"))
	}
	chans = append(chans, s.SubmitAs("tiny", "high")) // r3 evicts r2 (newest low)
	chans = append(chans, s.SubmitAs("tiny", "high")) // r4 evicts r1
	chans = append(chans, s.SubmitAs("tiny", "high")) // r5: only high queued; sheds itself
	s.Close()

	want := []struct {
		shed bool
		desc string
	}{
		{false, "dispatched before the queue filled"},
		{true, "evicted by the second high-priority arrival"},
		{true, "evicted by the first high-priority arrival"},
		{false, "admitted into the evicted slot"},
		{false, "admitted into the evicted slot"},
		{true, "shed: nothing below its class to evict"},
	}
	for i, ch := range chans {
		r := <-ch
		if r.Err != "" {
			t.Fatalf("request %d errored: %q", i, r.Err)
		}
		if r.Shed != want[i].shed {
			t.Errorf("request %d shed=%v, want %v (%s)", i, r.Shed, want[i].shed, want[i].desc)
		}
	}
	var sb strings.Builder
	if err := s.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "odinserve_evicted_total 2") {
		t.Errorf("eviction counter wrong:\n%s", sb.String())
	}
}

// TestTenantConfigValidation pins the constructor's tenant checks.
func TestTenantConfigValidation(t *testing.T) {
	t.Parallel()
	base := func() Config {
		return Config{Clock: clock.NewVirtual(0),
			Chips: []ChipConfig{{Custom: tinyModel("tiny")}}}
	}
	cfg := base()
	cfg.Tenants = []TenantConfig{{Name: "a"}, {Name: "a"}}
	if _, err := NewServer(cfg); err == nil {
		t.Error("duplicate tenant accepted")
	}
	cfg = base()
	cfg.Tenants = []TenantConfig{{Name: "a", Quota: -1}}
	if _, err := NewServer(cfg); err == nil {
		t.Error("negative quota accepted")
	}
	cfg = base()
	cfg.Router = "no-such-policy"
	if _, err := NewServer(cfg); err == nil {
		t.Error("unknown router accepted")
	}
}

// TestRejectedSentinel pins satellite 1: a submission rejected while
// draining carries the RejectedID sentinel — distinguishable from request 0
// by ID alone — plus the Rejected flag, and books the dedicated counter.
func TestRejectedSentinel(t *testing.T) {
	t.Parallel()
	s, _ := tinyServer(t, 1, Config{})
	served := s.Submit("tiny") // request 0, a real id
	s.Close()
	r := <-s.Submit("tiny")
	if r.ID != RejectedID || !r.Rejected {
		t.Errorf("draining rejection = %+v, want ID RejectedID and Rejected", r)
	}
	if r.Err == "" || !strings.Contains(r.Err, "draining") {
		t.Errorf("draining rejection error %q", r.Err)
	}
	if got := <-served; got.ID != 0 || got.Rejected {
		t.Errorf("request 0 answered %+v; sentinel must not collide with real ids", got)
	}
	var sb strings.Builder
	if err := s.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"odinserve_rejected_total 1",
		"odinserve_requests_total 2", // rejected submissions still count as requests
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}

// TestRouterRegistry pins the registry surface.
func TestRouterRegistry(t *testing.T) {
	t.Parallel()
	names := RouterNames()
	for _, want := range []string{"drift", "least", "rr"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("RouterNames() = %v, missing %q", names, want)
		}
	}
	s, _ := tinyServer(t, 1, Config{Router: "drift"})
	defer s.Close()
	if got := s.RouterName(); got != "drift" {
		t.Errorf("RouterName() = %q, want drift", got)
	}
}
