package serve

import (
	"bytes"
	"math"
	"testing"

	"odin/internal/clock"
)

// replayOnce builds a fresh fleet on a fresh virtual clock and replays tr
// through it with the given worker count.
func replayOnce(t testing.TB, tr Trace, chips, workers int) ReplayResult {
	t.Helper()
	clk := clock.NewVirtual(0)
	cfg := Config{
		Clock:      clk,
		QueueDepth: 4,
		MaxBatch:   4,
		Workers:    workers,
	}
	for i := 0; i < chips; i++ {
		cfg.Chips = append(cfg.Chips, ChipConfig{Custom: tinyModel("tiny"), Seed: uint64(i) + 1})
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	return Replay(s, clk, tr)
}

// overloadTrace generates an arrival trace hot enough (relative to the tiny
// model's service latency) to exercise queueing, coalescing, and shedding.
func overloadTrace(t testing.TB, n int) Trace {
	t.Helper()
	lat := probeLatency(t)
	if !(lat > 0) {
		t.Fatalf("probe latency %g not positive", lat)
	}
	tr, err := GenTrace(TraceConfig{
		Seed:     7,
		Rate:     3 / lat, // ~3 arrivals per service time on one chip
		Requests: n,
		Models:   []string{"tiny"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestGenTraceDeterministicAndMonotone(t *testing.T) {
	t.Parallel()
	cfg := TraceConfig{Seed: 3, Rate: 100, Requests: 200, Models: []string{"a", "b"}}
	a, err := GenTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	prev := 0.0
	for i := range a {
		if math.Float64bits(a[i].Time) != math.Float64bits(b[i].Time) || a[i].Model != b[i].Model {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Time < prev {
			t.Fatalf("arrival %d time %g before predecessor %g", i, a[i].Time, prev)
		}
		prev = a[i].Time
	}
	if _, err := GenTrace(TraceConfig{Seed: 1, Rate: 0, Requests: 1, Models: []string{"a"}}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := GenTrace(TraceConfig{Seed: 1, Rate: 1, Requests: 0, Models: []string{"a"}}); err == nil {
		t.Error("zero request count accepted")
	}
	if _, err := GenTrace(TraceConfig{Seed: 1, Rate: 1, Requests: 1}); err == nil {
		t.Error("empty model mix accepted")
	}
}

// TestReplayDeterministic is the acceptance check: the same trace replayed
// on two fresh fleets produces byte-identical decision logs and identical
// aggregate energy/latency — and the result must also be independent of the
// worker-pool size (1 worker vs one per chip plus slack), because batch
// composition depends only on virtual time.
func TestReplayDeterministic(t *testing.T) {
	t.Parallel()
	tr := overloadTrace(t, 300)

	base := replayOnce(t, tr, 2, 2)
	if base.Shed == 0 {
		t.Error("overload trace shed nothing; admission control untested")
	}
	if base.Admitted == 0 {
		t.Fatal("overload trace served nothing")
	}
	coalesced := false
	batchSize := map[int]map[uint64]int{0: {}, 1: {}}
	for _, r := range base.Responses {
		if r.Err == "" && !r.Shed {
			batchSize[r.Chip][r.Batch]++
			if batchSize[r.Chip][r.Batch] > 1 {
				coalesced = true
			}
		}
	}
	if !coalesced {
		t.Error("overload trace never coalesced a batch")
	}

	var baseLog bytes.Buffer
	if err := base.WriteLog(&baseLog); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 5} {
		got := replayOnce(t, tr, 2, workers)
		if got.Checksum != base.Checksum {
			t.Errorf("workers=%d checksum %#x, want %#x", workers, got.Checksum, base.Checksum)
		}
		var log bytes.Buffer
		if err := got.WriteLog(&log); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(log.Bytes(), baseLog.Bytes()) {
			t.Errorf("workers=%d decision log differs from baseline", workers)
		}
		if math.Float64bits(got.Energy) != math.Float64bits(base.Energy) {
			t.Errorf("workers=%d energy %g, want bit-identical %g", workers, got.Energy, base.Energy)
		}
		if math.Float64bits(got.Latency) != math.Float64bits(base.Latency) {
			t.Errorf("workers=%d latency %g, want bit-identical %g", workers, got.Latency, base.Latency)
		}
		if math.Float64bits(got.Wait) != math.Float64bits(base.Wait) {
			t.Errorf("workers=%d wait %g, want bit-identical %g", workers, got.Wait, base.Wait)
		}
		if got.Admitted != base.Admitted || got.Shed != base.Shed || got.Reprogram != base.Reprogram {
			t.Errorf("workers=%d counts (%d adm, %d shed, %d reprog), want (%d, %d, %d)",
				workers, got.Admitted, got.Shed, got.Reprogram,
				base.Admitted, base.Shed, base.Reprogram)
		}
	}
}

// TestReplayNominalRateNoShed is the loadsmoke property: well below fleet
// capacity, admission control never fires and every request is served.
func TestReplayNominalRateNoShed(t *testing.T) {
	t.Parallel()
	lat := probeLatency(t)
	tr, err := GenTrace(TraceConfig{
		Seed:     11,
		Rate:     0.2 / lat, // one arrival per five service times, two chips
		Requests: 60,
		Models:   []string{"tiny"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := replayOnce(t, tr, 2, 2)
	if res.Shed != 0 || res.Errors != 0 {
		t.Fatalf("nominal rate shed %d, errored %d; want 0/0", res.Shed, res.Errors)
	}
	if res.Admitted != len(tr) {
		t.Fatalf("admitted %d of %d", res.Admitted, len(tr))
	}
	if !(res.Energy > 0) {
		t.Fatalf("aggregate energy %g not positive", res.Energy)
	}
}
