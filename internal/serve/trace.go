package serve

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"strconv"
	"strings"

	"odin/internal/clock"
	"odin/internal/rng"
)

// Arrival is one entry of a synthetic load trace.
type Arrival struct {
	Time   float64 // seconds since trace start
	Model  string
	Tenant string // admission class ("" = default); see Config.Tenants
}

// Trace is an arrival sequence in nondecreasing time order.
type Trace []Arrival

// TraceConfig parameterises the deterministic load generator.
type TraceConfig struct {
	// Seed labels the rng stream; the same config always yields the same
	// trace.
	Seed uint64
	// Rate is the mean arrival rate in requests per second (Poisson
	// process: exponential interarrival gaps).
	Rate float64
	// Requests is the trace length.
	Requests int
	// Models is the request mix, drawn uniformly per arrival.
	Models []string
	// Tenants, when non-empty, stamps each arrival with a tenant drawn
	// uniformly (one extra rng draw per arrival; tenant-free configs are
	// bit-identical to traces generated before this field existed).
	Tenants []string
	// Start offsets the first arrival (default 0).
	Start float64
}

// GenTrace draws a Poisson arrival trace from internal/rng. Same config,
// same trace — bit for bit.
func GenTrace(cfg TraceConfig) (Trace, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("serve: trace rate %g must be positive", cfg.Rate)
	}
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("serve: trace needs a positive request count")
	}
	if len(cfg.Models) == 0 {
		return nil, fmt.Errorf("serve: trace needs at least one model")
	}
	src := rng.New(cfg.Seed)
	tr := make(Trace, 0, cfg.Requests)
	t := cfg.Start
	for i := 0; i < cfg.Requests; i++ {
		// Exponential gap; Float64 is in [0,1) so the argument is in (0,1].
		t += -math.Log(1-src.Float64()) / cfg.Rate
		model := cfg.Models[src.Intn(len(cfg.Models))]
		a := Arrival{Time: t, Model: model}
		if len(cfg.Tenants) > 0 {
			a.Tenant = cfg.Tenants[src.Intn(len(cfg.Tenants))]
		}
		tr = append(tr, a)
	}
	return tr, nil
}

// ReplayResult aggregates one deterministic replay. All float totals are
// accumulated in request-id order, so two replays of the same trace agree
// bit for bit.
type ReplayResult struct {
	Responses []Response // indexed by request id (= trace order)

	Admitted  int
	Shed      int
	Errors    int
	Rejected  int // submissions rejected while draining (RejectedID sentinel)
	Reprogram int // requests whose batch triggered a reprogramming pass

	Energy  float64 // Σ per-request inference energy (J)
	Latency float64 // Σ per-request service latency (s)
	Wait    float64 // Σ per-request queue wait (s)

	// Checksum fingerprints the decision log (FNV-1a over the exact bytes
	// WriteLog emits) — the replay-stability handle `make loadsmoke` checks.
	Checksum uint64
}

// Replay drives a trace through the server on its virtual clock and
// collects every response. The server must have been built with clk as its
// Clock and already started; Replay closes it when the trace is exhausted.
func Replay(s *Server, clk *clock.Virtual, tr Trace) ReplayResult {
	return ReplayOps(s, clk, tr, nil)
}

// FleetOp schedules one fleet mutation inside a replayed trace: before
// arrival index After is submitted, the op is applied (Add when non-nil,
// otherwise Remove). Interleaving ops with the arrival sequence this way
// pins their order exactly, so churned replays stay byte-identical at
// every worker count.
type FleetOp struct {
	After  int         // apply before submitting arrival After (0 = before the first)
	Add    *ChipConfig // add a chip when non-nil
	Remove int         // chip id to drain and remove when Add == nil
}

// ReplayOps is Replay with a fleet-op schedule (ops must be sorted by
// After; After past the end applies after the last arrival). A failing op
// panics: replay schedules are test/experiment infrastructure, and a
// misconstructed one is a programming error, not a runtime condition.
func ReplayOps(s *Server, clk *clock.Virtual, tr Trace, ops []FleetOp) ReplayResult {
	next := 0
	apply := func(i int) {
		for next < len(ops) && ops[next].After <= i {
			op := ops[next]
			next++
			var err error
			if op.Add != nil {
				_, err = s.AddChip(*op.Add)
			} else {
				err = s.RemoveChip(op.Remove)
			}
			if err != nil {
				panic(fmt.Sprintf("serve: replay fleet op %d: %v", next-1, err))
			}
		}
	}
	chans := make([]<-chan Response, len(tr))
	for i, a := range tr {
		apply(i)
		clk.Set(a.Time)
		chans[i] = s.SubmitAs(a.Model, a.Tenant)
	}
	apply(len(tr))
	s.Close()

	res := ReplayResult{Responses: make([]Response, len(tr))}
	for i := range chans {
		r := <-chans[i]
		res.Responses[i] = r
		switch {
		case r.Rejected:
			res.Rejected++
		case r.Err != "":
			res.Errors++
		case r.Shed:
			res.Shed++
		default:
			res.Admitted++
			res.Energy += r.Energy
			res.Latency += r.Latency
			res.Wait += r.Wait
			if r.Reprogrammed {
				res.Reprogram++
			}
		}
	}
	h := fnv.New64a()
	_ = res.WriteLog(h) // hash.Hash.Write never fails, so WriteLog cannot
	res.Checksum = h.Sum64()
	return res
}

// WriteLog renders the per-request OU decision log: one line per request in
// request-id order, byte-identical across replays of the same trace/seed.
func (r ReplayResult) WriteLog(w io.Writer) error {
	for i := range r.Responses {
		if err := writeLogLine(w, &r.Responses[i]); err != nil {
			return err
		}
	}
	return nil
}

func writeLogLine(w io.Writer, resp *Response) error {
	var sb strings.Builder
	sb.WriteString("req=")
	if resp.Rejected {
		sb.WriteString("rejected")
	} else {
		sb.WriteString(strconv.FormatUint(resp.ID, 10))
	}
	switch {
	case resp.Err != "":
		sb.WriteString(" err=")
		sb.WriteString(strconv.Quote(resp.Err))
	case resp.Shed:
		sb.WriteString(" chip=")
		sb.WriteString(strconv.Itoa(resp.Chip))
		sb.WriteString(" shed=true")
	default:
		sb.WriteString(" chip=")
		sb.WriteString(strconv.Itoa(resp.Chip))
		sb.WriteString(" batch=")
		sb.WriteString(strconv.FormatUint(resp.Batch, 10))
		sb.WriteString(" ou=")
		for j, sz := range resp.Sizes {
			if j > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Itoa(sz.R))
			sb.WriteByte('x')
			sb.WriteString(strconv.Itoa(sz.C))
		}
		sb.WriteString(" E=")
		sb.WriteString(strconv.FormatFloat(resp.Energy, 'g', -1, 64))
		sb.WriteString(" L=")
		sb.WriteString(strconv.FormatFloat(resp.Latency, 'g', -1, 64))
		sb.WriteString(" wait=")
		sb.WriteString(strconv.FormatFloat(resp.Wait, 'g', -1, 64))
		if resp.Reprogrammed {
			sb.WriteString(" reprogram=true")
		}
	}
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}
