package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"

	"odin/internal/obs"
	"odin/internal/pulse"
)

// maxInferBody bounds /infer request bodies. Inference submissions are a
// model name and a count; anything larger is a malformed client.
const maxInferBody = 1 << 16

// InferRequest is the JSON body of POST /infer. Count requests for Model
// are submitted together so the dispatcher can coalesce them into one
// decision pass. Count defaults to 1; the legacy ?model=NAME query form is
// accepted when the body is empty.
type InferRequest struct {
	Model  string `json:"model"`
	Count  int    `json:"count,omitempty"`
	Tenant string `json:"tenant,omitempty"` // admission class; see Config.Tenants
}

// InferReply is the JSON body of a successful POST /infer: one Response
// per submitted request, in submission order.
type InferReply struct {
	Responses []Response `json:"responses"`
}

// httpError is the JSON body of every non-2xx /infer response.
type httpError struct {
	Error string `json:"error"`
}

// HasModel reports whether any live chip of the fleet hosts the named
// model. Safe from any goroutine (the dispatcher maintains the index as
// chips are added and removed); necessarily advisory under churn — the
// authoritative check is the routing error on the submission itself.
func (s *Server) HasModel(name string) bool {
	s.modelsMu.RLock()
	defer s.modelsMu.RUnlock()
	return s.models[name] > 0
}

// Models lists the distinct models hosted by live chips, sorted.
func (s *Server) Models() []string {
	s.modelsMu.RLock()
	out := make([]string, 0, len(s.models))
	for name, n := range s.models {
		if n > 0 {
			out = append(out, name)
		}
	}
	s.modelsMu.RUnlock()
	sort.Strings(out)
	return out
}

// MaxBatch returns the per-pass coalescing cap the server was built with.
func (s *Server) MaxBatch() int { return s.cfg.MaxBatch }

// NewHandler exposes a started Server over HTTP:
//
//	POST /infer     submit 1..MaxBatch requests, JSON body or ?model=NAME
//	GET  /metrics   Prometheus text exposition
//	GET  /healthz   liveness probe
//
// Every /infer response, success or error, is JSON with Content-Type
// application/json. Error statuses: 405 (method), 400 (malformed body,
// missing model, non-positive count), 404 (model not hosted by the fleet),
// 413 (count exceeds MaxBatch), 429 (every submission shed by admission
// control), 503 (server draining).
//
// The server must be Live: non-live servers only retire batches on the
// dispatcher's arrival path, so a blocking handler would deadlock.
func NewHandler(s *Server) http.Handler {
	return NewHandlerOpts(s, HandlerOptions{})
}

// HandlerOptions extend NewHandler with the observability endpoints.
type HandlerOptions struct {
	// Tracer, when non-nil, exposes GET /debug/trace: a Chrome trace-event
	// JSON dump of the spans currently held (for a ring tracer, the most
	// recent window). Pass the same tracer as Config.Tracer.
	Tracer *obs.Tracer
	// Debug registers the net/http/pprof profiling handlers under /debug/
	// pprof/. Off by default: profiling endpoints leak operational detail
	// and cost CPU, so live deployments must opt in (odinserve -debug).
	Debug bool
	// Admin registers the fleet control plane:
	//
	//	GET    /admin/fleet       JSON ChipInfo snapshot of every chip
	//	POST   /admin/chips       hot-add a chip {"model":"NAME","seed":N}
	//	DELETE /admin/chips/{id}  drain and remove chip id
	//
	// Off by default: mutating the fleet is an operator capability, so
	// live deployments must opt in (odinserve -admin).
	Admin bool
}

// NewHandlerOpts is NewHandler plus opt-in observability endpoints:
//
//	GET /debug/trace    Chrome trace-event JSON span dump (opts.Tracer set)
//	GET /debug/pprof/   net/http/pprof profiling suite (opts.Debug set)
//	GET /events         live SSE telemetry stream (Config.Pulse set)
//	GET /statusz        JSON fleet series snapshot (Config.Pulse set)
//
// The pprof handlers are registered explicitly on the returned mux — the
// package's DefaultServeMux side-effect registrations are never served.
func NewHandlerOpts(s *Server, opts HandlerOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/infer", func(w http.ResponseWriter, r *http.Request) { s.handleInfer(w, r) })
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var sb strings.Builder
		if err := s.Registry().WritePrometheus(&sb); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprint(w, sb.String())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Explicit Content-Type before any write: the sniffing default is
		// what the PR-2 /infer fix removed, and it must be set before
		// WriteHeader on the 503 path or it is silently dropped.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// Fail readiness the moment Close flips draining: /infer already
		// answers 503, and a healthy-looking drainer would keep fleet
		// front-ends routing traffic at a server that rejects it.
		if s.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	if s.cfg.Pulse.Enabled() {
		registerPulse(mux, s)
	}
	if opts.Admin {
		registerAdmin(mux, s)
	}
	if opts.Tracer.Enabled() {
		mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
			var sb strings.Builder
			if err := opts.Tracer.WriteChromeTrace(&sb); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, sb.String())
		})
	}
	if opts.Debug {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// writeJSON emits one JSON response. Headers must be set before
// WriteHeader; mutations after it are silently ignored.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// An encode failure here means the client went away mid-write; nothing
	// sensible left to do.
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, httpError{Error: fmt.Sprintf(format, args...)})
}

// parseInfer decodes the submission from the body, falling back to the
// legacy ?model=NAME query form when the body is empty. It validates
// everything that does not require the fleet: syntax, model presence, and
// count positivity.
func parseInfer(r *http.Request) (InferRequest, int, error) {
	raw, err := io.ReadAll(io.LimitReader(r.Body, maxInferBody+1))
	if err != nil {
		return InferRequest{}, http.StatusBadRequest, fmt.Errorf("reading body: %w", err)
	}
	if len(raw) > maxInferBody {
		return InferRequest{}, http.StatusRequestEntityTooLarge,
			fmt.Errorf("body exceeds %d bytes", maxInferBody)
	}
	req := InferRequest{Model: r.URL.Query().Get("model")}
	if len(strings.TrimSpace(string(raw))) > 0 {
		if err := json.Unmarshal(raw, &req); err != nil {
			return InferRequest{}, http.StatusBadRequest, fmt.Errorf("malformed JSON body: %v", err)
		}
	}
	if req.Model == "" {
		return InferRequest{}, http.StatusBadRequest,
			fmt.Errorf(`missing model: POST /infer {"model":"NAME"} or /infer?model=NAME`)
	}
	if req.Count < 0 {
		return InferRequest{}, http.StatusBadRequest, fmt.Errorf("count %d must be positive", req.Count)
	}
	if req.Count == 0 {
		req.Count = 1
	}
	return req, 0, nil
}

// adminAddRequest is the JSON body of POST /admin/chips.
type adminAddRequest struct {
	Model string `json:"model"`
	Seed  uint64 `json:"seed,omitempty"`
}

// adminAddReply is the JSON body of a successful POST /admin/chips.
type adminAddReply struct {
	ID int `json:"id"`
}

// registerAdmin wires the fleet control plane. Handlers use Go 1.22
// method+wildcard mux patterns, so mismatched methods get the mux's own
// 405s. Errors returned by the Server (AddChip/RemoveChip/FleetInfo)
// already carry the "serve:" package prefix, so they are written through
// verbatim; only handler-originated errors get the "odinserve:" prefix —
// re-prefixing produced doubled messages like "odinserve: odinserve:
// server is draining".
func registerAdmin(mux *http.ServeMux, s *Server) {
	mux.HandleFunc("GET /admin/fleet", func(w http.ResponseWriter, r *http.Request) {
		info, err := s.FleetInfo()
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("POST /admin/chips", func(w http.ResponseWriter, r *http.Request) {
		var req adminAddRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, maxInferBody)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "odinserve: malformed JSON body: %v", err)
			return
		}
		if req.Model == "" {
			writeError(w, http.StatusBadRequest, `odinserve: missing model: POST /admin/chips {"model":"NAME"}`)
			return
		}
		id, err := s.AddChip(ChipConfig{Model: req.Model, Seed: req.Seed})
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, ErrDraining) {
				status = http.StatusServiceUnavailable
			}
			writeError(w, status, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, adminAddReply{ID: id})
	})
	mux.HandleFunc("DELETE /admin/chips/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusBadRequest, "odinserve: chip id %q is not a number", r.PathValue("id"))
			return
		}
		if err := s.RemoveChip(id); err != nil {
			status := http.StatusNotFound
			if errors.Is(err, ErrDraining) {
				status = http.StatusServiceUnavailable
			}
			writeError(w, status, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Removed int `json:"removed"`
		}{Removed: id})
	})
}

// registerPulse wires the streaming-telemetry surfaces, registered only
// when Config.Pulse carries a bus:
//
//	GET /events    Server-Sent Events stream of pulse events. ?types=a,b
//	               filters by kind; Last-Event-ID (or ?last_id=N) resumes
//	               from the bus's ring, best-effort — events older than
//	               the ring are gone, reported as a comment frame.
//	GET /statusz   one JSON snapshot of every chip's series tail.
//
// The stream carries no keepalive timer: serve code never reads a wall
// clock (the clockonly contract), so idle-connection hygiene belongs to
// proxies or the consumer, and `odinserve watch` simply blocks on read.
func registerPulse(mux *http.ServeMux, s *Server) {
	p := s.cfg.Pulse
	mux.HandleFunc("GET /statusz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Router   string `json:"router"`
			Draining bool   `json:"draining"`
			pulse.Status
		}{s.RouterName(), s.Draining(), p.Snapshot()})
	})
	mux.HandleFunc("GET /events", func(w http.ResponseWriter, r *http.Request) {
		kinds := pulse.AllKinds
		if spec := r.URL.Query().Get("types"); spec != "" {
			ks, err := pulse.ParseKinds(spec)
			if err != nil {
				writeError(w, http.StatusBadRequest, "odinserve: %v", err)
				return
			}
			kinds = ks
		}
		var last uint64
		if v := r.Header.Get("Last-Event-ID"); v == "" {
			v = r.URL.Query().Get("last_id")
			if v != "" {
				n, err := strconv.ParseUint(v, 10, 64)
				if err != nil {
					writeError(w, http.StatusBadRequest, "odinserve: last_id %q is not a number", v)
					return
				}
				last = n
			}
		} else {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, "odinserve: Last-Event-ID %q is not a number", v)
				return
			}
			last = n
		}
		fl, ok := w.(http.Flusher)
		if !ok {
			writeError(w, http.StatusInternalServerError, "odinserve: streaming unsupported by this connection")
			return
		}
		// Subscribe before the ring backfill, then dedup on sequence
		// numbers: an event published between the two shows up in both, and
		// the Seq <= last skip drops the channel copy.
		sub := p.Subscribe(256, kinds)
		defer sub.Close()
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)
		var buf []byte
		if oldest := p.Since(0, pulse.AllKinds); last > 0 && len(oldest) > 0 && oldest[0].Seq > last+1 {
			fmt.Fprintf(w, ": resume gap, %d events evicted\n\n", oldest[0].Seq-last-1)
		}
		for _, e := range p.Since(last, kinds) {
			buf = e.AppendSSE(buf[:0])
			if _, err := w.Write(buf); err != nil {
				return
			}
			last = e.Seq
		}
		fl.Flush()
		ctx := r.Context()
		for {
			select {
			case e := <-sub.C():
				if e.Seq <= last {
					continue
				}
				if n := sub.TakeDropped(); n > 0 {
					fmt.Fprintf(w, ": dropped %d events (slow consumer)\n\n", n)
				}
				buf = e.AppendSSE(buf[:0])
				if _, err := w.Write(buf); err != nil {
					return
				}
				last = e.Seq
				fl.Flush()
			case <-ctx.Done():
				return
			}
		}
	})
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST /infer")
		return
	}
	req, status, err := parseInfer(r)
	if err != nil {
		writeError(w, status, "odinserve: %v", err)
		return
	}
	if !s.HasModel(req.Model) {
		writeError(w, http.StatusNotFound, "odinserve: model %q not hosted (fleet serves %s)",
			req.Model, strings.Join(s.Models(), ", "))
		return
	}
	if req.Count > s.MaxBatch() {
		writeError(w, http.StatusRequestEntityTooLarge,
			"odinserve: count %d exceeds the batch cap %d", req.Count, s.MaxBatch())
		return
	}

	// Submit everything before reading any response so the dispatcher can
	// coalesce the submissions into one decision pass.
	chans := make([]<-chan Response, req.Count)
	for i := range chans {
		chans[i] = s.SubmitAs(req.Model, req.Tenant)
	}
	reply := InferReply{Responses: make([]Response, req.Count)}
	allShed := true
	for i, ch := range chans {
		resp := <-ch
		reply.Responses[i] = resp
		if resp.Rejected {
			writeError(w, http.StatusServiceUnavailable, "odinserve: %v", ErrDraining)
			return
		}
		allShed = allShed && resp.Shed
	}
	status = http.StatusOK
	if allShed {
		status = http.StatusTooManyRequests
	}
	writeJSON(w, status, reply)
}
