package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"odin/internal/clock"
	"odin/internal/obs"
)

// tracedReplay replays tr through a fresh traced fleet and returns the
// replay result plus the canonical Chrome trace dump.
func tracedReplay(t *testing.T, tr Trace, chips, workers int) (ReplayResult, []byte) {
	t.Helper()
	clk := clock.NewVirtual(0)
	cfg := Config{
		Clock:      clk,
		QueueDepth: 4,
		MaxBatch:   4,
		Workers:    workers,
		Tracer:     obs.New(clk),
	}
	for i := 0; i < chips; i++ {
		cfg.Chips = append(cfg.Chips, ChipConfig{Custom: tinyModel("tiny"), Seed: uint64(i) + 1})
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	res := Replay(s, clk, tr)
	var buf bytes.Buffer
	if err := cfg.Tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestReplayTraceByteIdenticalAcrossWorkers is the observability half of
// the serve determinism contract: the exported span dump — not just the
// decision checksum — must not depend on worker count or on when the
// dispatcher happened to observe completions.
func TestReplayTraceByteIdenticalAcrossWorkers(t *testing.T) {
	t.Parallel()
	tr := overloadTrace(t, 120)
	res1, dump1 := tracedReplay(t, tr, 2, 1)
	res8, dump8 := tracedReplay(t, tr, 2, 8)
	if res1.Checksum != res8.Checksum {
		t.Fatalf("decision checksums diverged: %#x vs %#x", res1.Checksum, res8.Checksum)
	}
	if !bytes.Equal(dump1, dump8) {
		t.Fatalf("span dumps diverged across worker counts (%d vs %d bytes)",
			len(dump1), len(dump8))
	}
	for _, name := range []string{`"batch"`, `"request"`, `"run"`, `"layer"`, `"noc"`} {
		if !bytes.Contains(dump1, []byte(name)) {
			t.Fatalf("trace dump misses %s spans", name)
		}
	}
}

// TestHandlerDebugEndpoints pins the opt-in contract: neither pprof nor the
// trace dump is reachable unless explicitly enabled.
func TestHandlerDebugEndpoints(t *testing.T) {
	t.Parallel()
	s, _ := tinyServer(t, 1, Config{})
	defer s.Close()

	get := func(h http.Handler, path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}

	plain := NewHandler(s)
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/trace"} {
		if rec := get(plain, path); rec.Code != http.StatusNotFound {
			t.Fatalf("%s exposed without opt-in: %d", path, rec.Code)
		}
	}

	spans := obs.NewRing(clock.NewVirtual(0), 16)
	spans.At("seedspan", 0, 0, 1, nil)
	debug := NewHandlerOpts(s, HandlerOptions{Tracer: spans, Debug: true})
	if rec := get(debug, "/debug/pprof/"); rec.Code != http.StatusOK {
		t.Fatalf("/debug/pprof/ with -debug: %d", rec.Code)
	}
	rec := get(debug, "/debug/trace")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/trace: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/debug/trace content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "seedspan") {
		t.Fatalf("/debug/trace misses recorded span:\n%s", rec.Body.String())
	}

	// Tracer without Debug: trace dump on, pprof still off.
	traceOnly := NewHandlerOpts(s, HandlerOptions{Tracer: spans})
	if rec := get(traceOnly, "/debug/pprof/"); rec.Code != http.StatusNotFound {
		t.Fatalf("pprof exposed by Tracer alone: %d", rec.Code)
	}
	if rec := get(traceOnly, "/debug/trace"); rec.Code != http.StatusOK {
		t.Fatalf("/debug/trace with tracer: %d", rec.Code)
	}
}
