package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"odin/internal/clock"
)

// postInfer drives one request through a fresh recorder.
func postInfer(s *Server, method, target, body string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	NewHandler(s).ServeHTTP(rec, httptest.NewRequest(method, target, strings.NewReader(body)))
	return rec
}

// decodeError asserts the JSON error contract every non-2xx /infer response
// follows: the declared status, Content-Type application/json, and a body
// of the form {"error": "..."} mentioning wantSubstr.
func decodeError(t *testing.T, rec *httptest.ResponseRecorder, wantStatus int, wantSubstr string) {
	t.Helper()
	if rec.Code != wantStatus {
		t.Fatalf("status %d, want %d (body %q)", rec.Code, wantStatus, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error response Content-Type %q, want application/json", ct)
	}
	var e httpError
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("error body is not JSON: %v (%q)", err, rec.Body.String())
	}
	if e.Error == "" || !strings.Contains(e.Error, wantSubstr) {
		t.Fatalf("error %q does not mention %q", e.Error, wantSubstr)
	}
}

// TestHTTPInferRejections pins every /infer error path that never reaches
// the fleet: wrong method, malformed JSON, missing model, negative count,
// unknown model, oversized batch, oversized body. Each must answer with the
// documented status and a JSON error body.
func TestHTTPInferRejections(t *testing.T) {
	t.Parallel()
	s, _ := tinyServer(t, 1, Config{MaxBatch: 4})
	defer s.Close()
	cases := []struct {
		name       string
		method     string
		target     string
		body       string
		wantStatus int
		wantSubstr string
	}{
		{"method-not-allowed", http.MethodGet, "/infer?model=tiny", "", http.StatusMethodNotAllowed, "POST"},
		{"malformed-json", http.MethodPost, "/infer", `{"model":`, http.StatusBadRequest, "malformed JSON"},
		{"json-wrong-type", http.MethodPost, "/infer", `{"model":42}`, http.StatusBadRequest, "malformed JSON"},
		{"missing-model", http.MethodPost, "/infer", "", http.StatusBadRequest, "missing model"},
		{"missing-model-empty-json", http.MethodPost, "/infer", `{}`, http.StatusBadRequest, "missing model"},
		{"negative-count", http.MethodPost, "/infer", `{"model":"tiny","count":-3}`, http.StatusBadRequest, "count -3"},
		{"unknown-model", http.MethodPost, "/infer", `{"model":"VGG999"}`, http.StatusNotFound, "tiny"},
		{"oversized-batch", http.MethodPost, "/infer", `{"model":"tiny","count":5}`, http.StatusRequestEntityTooLarge, "batch cap 4"},
		{"oversized-body", http.MethodPost, "/infer", `{"pad":"` + strings.Repeat("x", maxInferBody) + `"}`,
			http.StatusRequestEntityTooLarge, "bytes"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			rec := postInfer(s, tc.method, tc.target, tc.body)
			decodeError(t, rec, tc.wantStatus, tc.wantSubstr)
			if tc.wantStatus == http.StatusMethodNotAllowed {
				if allow := rec.Header().Get("Allow"); allow != http.MethodPost {
					t.Errorf("Allow header %q, want POST", allow)
				}
			}
		})
	}
}

// TestHTTPInferShed pins the 429 path: with the single chip busy and its
// queue full, a fresh submission is tail-dropped at admission, and the
// handler surfaces the all-shed batch as 429 with per-response shed flags.
func TestHTTPInferShed(t *testing.T) {
	t.Parallel()
	s, _ := tinyServer(t, 1, Config{QueueDepth: 1, MaxBatch: 1})
	// Occupy the chip (request 0 dispatches immediately) and fill the
	// depth-1 queue (request 1); the HTTP submission becomes request 2,
	// which admission control sheds synchronously — so the handler's
	// blocking read completes even on this non-live virtual-clock server.
	s.Submit("tiny")
	s.Submit("tiny")
	rec := postInfer(s, http.MethodPost, "/infer", `{"model":"tiny"}`)
	defer s.Close()
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %q)", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q, want application/json", ct)
	}
	var reply InferReply
	if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Responses) != 1 || !reply.Responses[0].Shed {
		t.Fatalf("shed reply %+v, want one shed response", reply)
	}
}

// TestHTTPInferDraining pins the 503 path: after Close, submissions are
// rejected immediately and the handler maps the draining error to 503.
func TestHTTPInferDraining(t *testing.T) {
	t.Parallel()
	s, _ := tinyServer(t, 1, Config{})
	s.Close()
	rec := postInfer(s, http.MethodPost, "/infer", `{"model":"tiny"}`)
	decodeError(t, rec, http.StatusServiceUnavailable, "draining")
}

// TestHTTPInferServes drives the success path end to end on a live fleet:
// JSON-body batch submission and the legacy query form both answer 200
// with served (non-shed, non-error) responses carrying legal decisions.
func TestHTTPInferServes(t *testing.T) {
	t.Parallel()
	cfg := Config{
		Chips: []ChipConfig{{Custom: tinyModel("tiny")}},
		Live:  true,
		Clock: clock.NewReal(),
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close()

	for _, tc := range []struct {
		name, target, body string
		want               int
	}{
		{"json-batch", "/infer", `{"model":"tiny","count":3}`, 3},
		{"query-form", "/infer?model=tiny", "", 1},
	} {
		rec := postInfer(s, http.MethodPost, tc.target, tc.body)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d, want 200 (body %q)", tc.name, rec.Code, rec.Body.String())
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s: Content-Type %q, want application/json", tc.name, ct)
		}
		var reply InferReply
		if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
			t.Fatal(err)
		}
		if len(reply.Responses) != tc.want {
			t.Fatalf("%s: %d responses, want %d", tc.name, len(reply.Responses), tc.want)
		}
		for i, r := range reply.Responses {
			if r.Shed || r.Err != "" {
				t.Fatalf("%s: response %d not served: %+v", tc.name, i, r)
			}
			if len(r.Sizes) == 0 || !(r.Energy > 0) || !(r.Latency > 0) {
				t.Fatalf("%s: response %d carries degenerate run figures: %+v", tc.name, i, r)
			}
		}
	}
}

// TestHTTPMetricsAndHealthz pins the observability endpoints the live
// binary mounts next to /infer.
func TestHTTPMetricsAndHealthz(t *testing.T) {
	t.Parallel()
	s, _ := tinyServer(t, 1, Config{})
	defer s.Close()
	h := NewHandler(s)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "odinserve_requests_total") {
		t.Fatalf("/metrics exposition misses serve counters:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "ok" {
		t.Fatalf("/healthz = %d %q", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Fatalf("/healthz Content-Type %q, want explicit text/plain; charset=utf-8", ct)
	}
}

// TestServerModelAccessors pins the fleet-introspection accessors the HTTP
// layer routes with.
func TestServerModelAccessors(t *testing.T) {
	t.Parallel()
	s, _ := tinyServer(t, 2, Config{MaxBatch: 4})
	defer s.Close()
	if !s.HasModel("tiny") {
		t.Error("HasModel(tiny) = false for a tiny fleet")
	}
	if s.HasModel("VGG999") {
		t.Error("HasModel(VGG999) = true")
	}
	if got := s.Models(); len(got) != 1 || got[0] != "tiny" {
		t.Errorf("Models() = %v, want [tiny]", got)
	}
	if got := s.MaxBatch(); got != 4 {
		t.Errorf("MaxBatch() = %d, want 4", got)
	}
}

// TestHTTPHealthzDraining is the satellite-2 regression: /healthz must
// fail readiness the moment Close flips draining — a healthy-looking
// drainer would keep front-ends routing at a server that rejects traffic.
func TestHTTPHealthzDraining(t *testing.T) {
	t.Parallel()
	s, _ := tinyServer(t, 1, Config{})
	h := NewHandler(s)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "ok" {
		t.Fatalf("pre-drain /healthz = %d %q, want 200 ok", rec.Code, rec.Body.String())
	}

	s.Close()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("draining /healthz body %q does not say draining", rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Fatalf("draining /healthz Content-Type %q, want explicit text/plain; charset=utf-8", ct)
	}
}

// TestHTTPAdminFleet exercises the opt-in control plane end to end:
// snapshot, hot add, remove, and the error paths.
func TestHTTPAdminFleet(t *testing.T) {
	t.Parallel()
	s, _ := tinyServer(t, 1, Config{})
	h := NewHandlerOpts(s, HandlerOptions{Admin: true})
	do := func(method, target, body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(method, target, strings.NewReader(body)))
		return rec
	}

	rec := do(http.MethodGet, "/admin/fleet", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /admin/fleet = %d (%s)", rec.Code, rec.Body.String())
	}
	var info []ChipInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if len(info) != 1 || info[0].Model != "tiny" || info[0].Removed {
		t.Fatalf("fleet snapshot %+v, want one live tiny chip", info)
	}

	// Hot add from the model zoo.
	rec = do(http.MethodPost, "/admin/chips", `{"model":"VGG11","seed":9}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /admin/chips = %d (%s)", rec.Code, rec.Body.String())
	}
	var added adminAddReply
	if err := json.Unmarshal(rec.Body.Bytes(), &added); err != nil {
		t.Fatal(err)
	}
	if added.ID != 1 {
		t.Fatalf("added chip id %d, want 1", added.ID)
	}
	if !s.HasModel("VGG11") {
		t.Fatal("HasModel(VGG11) = false after hot add")
	}

	rec = do(http.MethodDelete, "/admin/chips/1", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("DELETE /admin/chips/1 = %d (%s)", rec.Code, rec.Body.String())
	}
	if s.HasModel("VGG11") {
		t.Fatal("HasModel(VGG11) = true after its only host was removed")
	}

	for _, tc := range []struct {
		name, method, target, body string
		want                       int
	}{
		{"add-unknown-model", http.MethodPost, "/admin/chips", `{"model":"VGG999"}`, http.StatusBadRequest},
		{"add-missing-model", http.MethodPost, "/admin/chips", `{}`, http.StatusBadRequest},
		{"add-malformed", http.MethodPost, "/admin/chips", `{`, http.StatusBadRequest},
		{"remove-unknown-id", http.MethodDelete, "/admin/chips/99", "", http.StatusNotFound},
		{"remove-twice", http.MethodDelete, "/admin/chips/1", "", http.StatusNotFound},
		{"remove-non-numeric", http.MethodDelete, "/admin/chips/x", "", http.StatusBadRequest},
	} {
		if rec := do(tc.method, tc.target, tc.body); rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.want, rec.Body.String())
		}
	}

	// Without the opt-in the control plane does not exist.
	plain := NewHandler(s)
	rec = httptest.NewRecorder()
	plain.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/admin/fleet", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("GET /admin/fleet without Admin = %d, want 404", rec.Code)
	}

	s.Close()
	if rec := do(http.MethodPost, "/admin/chips", `{"model":"VGG11"}`); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("add while draining = %d, want 503", rec.Code)
	}
	if rec := do(http.MethodDelete, "/admin/chips/0", ""); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("remove while draining = %d, want 503", rec.Code)
	}
	if rec := do(http.MethodGet, "/admin/fleet", ""); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("fleet snapshot while draining = %d, want 503", rec.Code)
	}
}

// TestHTTPAdminMethodNotAllowed pins the 405 contract of the control
// plane: the admin routes are registered with Go 1.22 method patterns, so
// a wrong verb on a known path answers 405, not 404.
func TestHTTPAdminMethodNotAllowed(t *testing.T) {
	t.Parallel()
	s, _ := tinyServer(t, 1, Config{})
	defer s.Close()
	h := NewHandlerOpts(s, HandlerOptions{Admin: true})
	for _, tc := range []struct{ method, target string }{
		{http.MethodPost, "/admin/fleet"},
		{http.MethodDelete, "/admin/fleet"},
		{http.MethodGet, "/admin/chips"},
		{http.MethodDelete, "/admin/chips"},
		{http.MethodPost, "/admin/chips/0"},
		{http.MethodGet, "/admin/chips/0"},
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.target, strings.NewReader("{}")))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", tc.method, tc.target, rec.Code)
		}
	}
}
