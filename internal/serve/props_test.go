package serve

import (
	"fmt"
	"testing"

	"odin/internal/check"
	"odin/internal/core"
)

// fleetCase is one generated replay scenario: a trace shape plus a fleet
// shape.
type fleetCase struct {
	Seed           uint64
	Rate           float64
	Requests       int
	Chips, Workers int
}

func genFleetCase() check.Gen[fleetCase] {
	return check.Gen[fleetCase]{
		Generate: func(t *check.T) fleetCase {
			return fleetCase{
				Seed:     t.Rng.Uint64(),
				Rate:     100 + t.Rng.Float64()*1e6, // spans idle to heavily shedding fleets
				Requests: 1 + t.Rng.Intn(40),
				Chips:    1 + t.Rng.Intn(3),
				Workers:  1 + t.Rng.Intn(4),
			}
		},
		Shrink: func(c fleetCase) []fleetCase {
			var out []fleetCase
			mutInt := func(v, toward int, set func(*fleetCase, int)) {
				for _, s := range check.ShrinkInt(v, toward) {
					m := c
					set(&m, s)
					out = append(out, m)
				}
			}
			mutInt(c.Requests, 1, func(m *fleetCase, v int) { m.Requests = v })
			mutInt(c.Chips, 1, func(m *fleetCase, v int) { m.Chips = v })
			mutInt(c.Workers, 1, func(m *fleetCase, v int) { m.Workers = v })
			return out
		},
	}
}

func (c fleetCase) trace(t testing.TB) Trace {
	tr, err := GenTrace(TraceConfig{
		Seed:     c.Seed,
		Rate:     c.Rate,
		Requests: c.Requests,
		Models:   []string{"tiny"},
	})
	if err != nil {
		t.Fatalf("trace generation: %v", err)
	}
	return tr
}

// TestPropReplayConservation pins request conservation through the serving
// stack under arbitrary load: every submitted request is answered exactly
// once, in id order, as exactly one of admitted, shed, rejected, or
// errored; admitted responses carry legal OU decisions and non-negative
// costs. Rejections (Submit while draining) are counted explicitly — they
// carry the RejectedID sentinel, not a real id — and cannot occur under
// Replay, which finishes submitting before Close.
func TestPropReplayConservation(t *testing.T) {
	t.Parallel()
	grid := core.DefaultSystem().Grid()
	check.RunConfig(t, check.Config{Trials: 20}, genFleetCase(), func(c fleetCase) error {
		tr := c.trace(t)
		res := replayOnce(t, tr, c.Chips, c.Workers)
		if got := res.Admitted + res.Shed + res.Errors + res.Rejected; got != len(tr) {
			return fmt.Errorf("conservation broken: admitted %d + shed %d + errors %d + rejected %d = %d, submitted %d",
				res.Admitted, res.Shed, res.Errors, res.Rejected, got, len(tr))
		}
		if res.Rejected != 0 {
			return fmt.Errorf("%d rejections under Replay, which submits everything before Close", res.Rejected)
		}
		if len(res.Responses) != len(tr) {
			return fmt.Errorf("%d responses for %d requests", len(res.Responses), len(tr))
		}
		for i, r := range res.Responses {
			if r.ID != uint64(i) {
				return fmt.Errorf("response %d carries id %d (drain must deliver each id exactly once)", i, r.ID)
			}
			if r.Shed || r.Err != "" {
				continue
			}
			if r.Energy < 0 || r.Latency < 0 || r.Wait < 0 {
				return fmt.Errorf("request %d has negative cost: E=%g L=%g wait=%g", i, r.Energy, r.Latency, r.Wait)
			}
			for j, s := range r.Sizes {
				if _, _, ok := grid.IndexOf(s); !ok {
					return fmt.Errorf("request %d layer %d served with off-grid OU %v", i, j, s)
				}
			}
		}
		return nil
	})
}

// TestPropReplayDeterministic pins the serving layer's replay contract:
// two fresh fleets fed the same trace produce byte-identical decision logs
// (equal FNV-1a checksums), independent of worker-pool scheduling.
func TestPropReplayDeterministic(t *testing.T) {
	t.Parallel()
	check.RunConfig(t, check.Config{Trials: 10}, genFleetCase(), func(c fleetCase) error {
		tr := c.trace(t)
		a := replayOnce(t, tr, c.Chips, c.Workers)
		b := replayOnce(t, tr, c.Chips, c.Workers)
		if a.Checksum != b.Checksum {
			return fmt.Errorf("replay diverged: checksum %#016x vs %#016x (%d requests, %d chips, %d workers)",
				a.Checksum, b.Checksum, c.Requests, c.Chips, c.Workers)
		}
		if a.Admitted != b.Admitted || a.Shed != b.Shed || a.Errors != b.Errors {
			return fmt.Errorf("replay counts diverged: %d/%d/%d vs %d/%d/%d",
				a.Admitted, a.Shed, a.Errors, b.Admitted, b.Shed, b.Errors)
		}
		return nil
	})
}
