package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"odin/internal/check"
	"odin/internal/clock"
	"odin/internal/pulse"
)

// pulseReplay is fleetReplay with an unbounded pulse bus attached: it
// replays tr through a fresh fleet and returns the bus alongside the
// replay result so tests can inspect the canonical event log.
func pulseReplay(t testing.TB, tr Trace, chips, workers int, ops []FleetOp) (ReplayResult, *pulse.Bus) {
	t.Helper()
	clk := clock.NewVirtual(0)
	bus := pulse.New(pulse.Options{})
	cfg := Config{
		Clock:      clk,
		QueueDepth: 4,
		MaxBatch:   4,
		Workers:    workers,
		Router:     "rr",
		Pulse:      bus,
	}
	for i := 0; i < chips; i++ {
		cfg.Chips = append(cfg.Chips, ChipConfig{Custom: tinyModel("tiny"), Seed: uint64(i) + 1})
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	return ReplayOps(s, clk, tr, ops), bus
}

// pulseChurnTrace is the standard pulse workload: an overload trace across
// a 2-chip fleet with the usual churn schedule, sized to exercise every
// event kind (batches, decisions, queue sheds, hot add/remove lifecycle).
func pulseChurnTrace(t testing.TB) (Trace, []FleetOp) {
	t.Helper()
	lat := probeLatency(t)
	const chips, n = 2, 24
	tr, err := GenTrace(TraceConfig{
		Seed:     7,
		Rate:     8 * float64(chips) / lat,
		Requests: n,
		Models:   []string{"tiny"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr, churnOps(n, chips)
}

// TestPulseLogGolden pins the canonical event log of a small churned
// replay byte-for-byte: stable sequence numbering, per-kind key order,
// float formatting, and the (time, chip, kind) sort. Regenerate with
// `go test -run TestPulseLogGolden -update ./internal/serve/`.
func TestPulseLogGolden(t *testing.T) {
	t.Parallel()
	tr, ops := pulseChurnTrace(t)
	res, bus := pulseReplay(t, tr, 2, 1, ops)
	if res.Admitted == 0 || res.Shed == 0 {
		t.Fatalf("churn trace must both serve and shed (admitted %d, shed %d)",
			res.Admitted, res.Shed)
	}
	var log bytes.Buffer
	if err := bus.WriteLog(&log); err != nil {
		t.Fatal(err)
	}
	check.Golden(t, "testdata/pulse_log.golden", log.Bytes())
}

// TestPropPulseWorkerInvariance is the tentpole determinism property: the
// canonical pulse log of a churned overload replay is byte-identical at
// workers 1 and 8. Every published field must therefore be a pure function
// of virtual time and per-chip batch order — a scheduling-dependent value
// (live seq, dispatcher-observed queue depth, cache attribution) diffs
// here immediately.
func TestPropPulseWorkerInvariance(t *testing.T) {
	t.Parallel()
	tr, ops := pulseChurnTrace(t)

	base, baseBus := pulseReplay(t, tr, 2, 1, ops)
	var baseLog bytes.Buffer
	if err := baseBus.WriteLog(&baseLog); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"lifecycle", "batch", "decision", "shed"} {
		if !strings.Contains(baseLog.String(), `"kind":"`+kind+`"`) {
			t.Errorf("churn pulse log carries no %s events; property vacuous for that kind", kind)
		}
	}

	got, gotBus := pulseReplay(t, tr, 2, 8, ops)
	if got.Checksum != base.Checksum {
		t.Fatalf("replay checksum diverged: workers=8 %#x, workers=1 %#x", got.Checksum, base.Checksum)
	}
	var gotLog bytes.Buffer
	if err := gotBus.WriteLog(&gotLog); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotLog.Bytes(), baseLog.Bytes()) {
		t.Errorf("pulse log differs between workers 1 and 8:\n%s",
			check.DiffLines(baseLog.String(), gotLog.String()))
	}
}

// TestPulseSnapshotAfterReplay sanity-checks the series side under a real
// replay: every live chip accumulates batches, the removed chip is marked,
// and fleet totals line up with the replay result.
func TestPulseSnapshotAfterReplay(t *testing.T) {
	t.Parallel()
	tr, ops := pulseChurnTrace(t)
	res, bus := pulseReplay(t, tr, 2, 1, ops)
	st := bus.Snapshot()
	if len(st.Chips) != 4 { // 2 seed + 2 hot-added
		t.Fatalf("snapshot has %d chips, want 4", len(st.Chips))
	}
	var served uint64
	removed := 0
	for _, c := range st.Chips {
		served += c.Served
		if c.Removed {
			removed++
		}
	}
	if removed != 1 {
		t.Fatalf("snapshot marks %d chips removed, want 1", removed)
	}
	if served != uint64(res.Admitted) {
		t.Fatalf("snapshot served %d, replay admitted %d", served, res.Admitted)
	}
	if st.Seq == 0 || st.Time <= 0 {
		t.Fatalf("snapshot head = seq %d t %g", st.Seq, st.Time)
	}
}

// pulseServer builds a started tiny fleet with a pulse bus mounted, for
// HTTP-surface tests.
func pulseServer(t testing.TB, busOpts pulse.Options) (*Server, *pulse.Bus, *clock.Virtual) {
	t.Helper()
	bus := pulse.New(busOpts)
	s, clk := tinyServer(t, 1, Config{QueueDepth: 4, MaxBatch: 4, Pulse: bus})
	return s, bus, clk
}

// getEvents performs one GET /events round-trip whose streaming loop is
// terminated by a pre-cancelled request context: the handler writes the
// ring backfill, enters its select, sees ctx.Done, and returns.
func getEvents(t *testing.T, h http.Handler, target string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodGet, target, nil).WithContext(ctx)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestHTTPEventsStream pins the SSE surface: valid frames, kind filtering,
// Last-Event-ID resume (header and ?last_id), the resume-gap comment on
// ring eviction, and the 400 paths.
func TestHTTPEventsStream(t *testing.T) {
	t.Parallel()
	s, bus, _ := pulseServer(t, pulse.Options{Ring: 4})
	defer s.Close()
	h := NewHandler(s)

	// Publish a known event stream directly: 6 batches on one ring of 4
	// evicts the first two.
	for i := 1; i <= 6; i++ {
		bus.Publish(pulse.Event{Time: float64(i), Kind: pulse.KindBatch, Chip: 0,
			Model: "tiny", Batch: uint64(i), Size: 1, Latency: 0.01, Deadline: 10})
	}
	bus.Publish(pulse.Event{Time: 7, Kind: pulse.KindShed, Chip: -1, Model: "tiny",
		Request: 9, Reason: "queue"})

	rec := getEvents(t, h, "/events", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /events = %d (%s)", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	body := rec.Body.String()
	if got := strings.Count(body, "\nevent: "); got != 4 { // 5 ring events, first has no leading \n
		t.Fatalf("frame count wrong in:\n%s", body)
	}
	if !strings.HasPrefix(body, "id: 4\nevent: batch\ndata: {\"seq\":4,") {
		t.Fatalf("first frame not the oldest retained event:\n%s", body)
	}
	if !strings.Contains(body, "event: shed\ndata: {\"seq\":7,") {
		t.Fatalf("shed frame missing:\n%s", body)
	}

	// Kind filter.
	rec = getEvents(t, h, "/events?types=shed", nil)
	body = rec.Body.String()
	if strings.Contains(body, "event: batch") || !strings.Contains(body, "event: shed") {
		t.Fatalf("types=shed filter leaked:\n%s", body)
	}

	// Resume via Last-Event-ID skips already-seen events.
	rec = getEvents(t, h, "/events", map[string]string{"Last-Event-ID": "6"})
	body = rec.Body.String()
	if strings.Contains(body, "\"seq\":6,") || !strings.Contains(body, "\"seq\":7,") {
		t.Fatalf("Last-Event-ID resume wrong:\n%s", body)
	}

	// Resume from before the ring reports the gap as a comment.
	rec = getEvents(t, h, "/events?last_id=1", nil)
	body = rec.Body.String()
	if !strings.Contains(body, ": resume gap, 2 events evicted") {
		t.Fatalf("resume gap comment missing:\n%s", body)
	}

	// Error paths.
	if rec := getEvents(t, h, "/events?types=bogus", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("types=bogus = %d, want 400", rec.Code)
	}
	if rec := getEvents(t, h, "/events?last_id=x", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("last_id=x = %d, want 400", rec.Code)
	}
	if rec := getEvents(t, h, "/events", map[string]string{"Last-Event-ID": "x"}); rec.Code != http.StatusBadRequest {
		t.Errorf("Last-Event-ID=x = %d, want 400", rec.Code)
	}
}

// TestHTTPStatusz pins the snapshot surface: router identity, draining
// flag, and per-chip series rows.
func TestHTTPStatusz(t *testing.T) {
	t.Parallel()
	s, bus, _ := pulseServer(t, pulse.Options{})
	h := NewHandler(s)
	bus.Publish(pulse.Event{Time: 0.5, Kind: pulse.KindBatch, Chip: 0, Model: "tiny",
		Batch: 1, Size: 2, Latency: 0.01, Deadline: 10})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statusz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /statusz = %d (%s)", rec.Code, rec.Body.String())
	}
	var st struct {
		Router   string `json:"router"`
		Draining bool   `json:"draining"`
		pulse.Status
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("statusz not JSON: %v (%s)", err, rec.Body.String())
	}
	if st.Router == "" || st.Draining {
		t.Fatalf("statusz head = %+v", st)
	}
	if len(st.Chips) != 1 || st.Chips[0].Model != "tiny" || st.Chips[0].Served != 2 {
		t.Fatalf("statusz chips = %+v", st.Chips)
	}

	s.Close()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statusz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("draining /statusz = %d, want 200 (read-only surface stays up)", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Draining {
		t.Fatal("statusz does not report draining after Close")
	}
}

// TestPulseRejectEvent pins the draining shed: submissions rejected after
// Close publish a fleet-level reject event with no request id.
func TestPulseRejectEvent(t *testing.T) {
	t.Parallel()
	s, bus, _ := pulseServer(t, pulse.Options{})
	s.Close()
	resp := <-s.Submit("tiny")
	if !resp.Rejected {
		t.Fatalf("submit after Close = %+v, want rejected", resp)
	}
	evs := bus.Since(0, pulse.AllKinds)
	if len(evs) != 1 || evs[0].Kind != pulse.KindShed || evs[0].Reason != "reject" || evs[0].Chip != -1 {
		t.Fatalf("reject events = %+v, want one fleet-level reject shed", evs)
	}
	if got := string(evs[0].AppendJSON(nil)); !strings.Contains(got, `"request":null`) {
		t.Fatalf("reject event JSON %s must carry request:null", got)
	}
}

// TestPulseDisabledSurfaces pins that without a bus the pulse endpoints do
// not exist: /events and /statusz 404 on a plain server.
func TestPulseDisabledSurfaces(t *testing.T) {
	t.Parallel()
	s, _ := tinyServer(t, 1, Config{})
	defer s.Close()
	h := NewHandler(s)
	for _, target := range []string{"/events", "/statusz"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
		if rec.Code != http.StatusNotFound {
			t.Errorf("GET %s without Pulse = %d, want 404", target, rec.Code)
		}
	}
}

// TestErrDrainingSentinel is the satellite-1 regression: every draining
// rejection must satisfy errors.Is(err, ErrDraining) so handlers never
// string-match, while the wire bytes stay what clients already parse.
func TestErrDrainingSentinel(t *testing.T) {
	t.Parallel()
	s, _ := tinyServer(t, 1, Config{})
	s.Close()
	if _, err := s.AddChip(ChipConfig{Custom: tinyModel("tiny")}); err == nil {
		t.Fatal("AddChip after Close succeeded")
	} else if !isDraining(err) {
		t.Fatalf("AddChip draining error %v fails errors.Is(ErrDraining)", err)
	} else if want := "serve: server is draining"; err.Error() != want {
		t.Fatalf("draining error bytes %q, want %q", err.Error(), want)
	}
	if err := s.RemoveChip(0); err == nil {
		t.Fatal("RemoveChip after Close succeeded")
	} else if !isDraining(err) {
		t.Fatalf("RemoveChip draining error %v fails errors.Is(ErrDraining)", err)
	}
	if _, err := s.FleetInfo(); !isDraining(err) {
		t.Fatalf("FleetInfo draining error %v fails errors.Is(ErrDraining)", err)
	}
}

func isDraining(err error) bool { return errors.Is(err, ErrDraining) }
