// Package serve is the concurrent inference-serving layer over a simulated
// fleet of ReRAM chips. Each chip owns one prepared workload, one Odin
// controller (policy, training buffer, drift bookkeeping), and one
// reprogram budget; requests are routed to chips by a pluggable Router
// (round-robin, least-loaded, or drift-aware — see router.go), admitted
// through bounded per-chip queues (shed with a 429-style rejection when
// the queue is full) under optional per-tenant quotas and priority
// classes, coalesced into per-chip batches, and executed on a fixed worker
// pool. Chips can be added and removed while serving (AddChip/RemoveChip —
// scale-out, simulated failure, retirement); removal drains the chip's
// queue first, so the exactly-once response contract survives fleet
// churn. Shutdown drains: every admitted request receives its response
// exactly once.
//
// # Determinism
//
// All time flows through internal/clock. Replayed against a Virtual clock
// (see Trace, Replay and ReplayOps in trace.go), the layer is
// deterministic at the request level: the same trace, seed and fleet-op
// schedule produce byte-identical per-request OU decisions, reprogram
// events, and energy/latency figures, independent of worker count and
// goroutine scheduling. This holds because
//
//   - routing is decided in arrival order by the single dispatcher
//     goroutine; routers that score occupancy or drift age declare
//     Exact(), which makes the dispatcher synchronously advance every
//     candidate chip to the arrival time first, so the scores are pure
//     functions of virtual time (round-robin skips the advance and stays
//     byte-compatible with pre-router replays);
//   - fleet ops (add/remove) flow through the same event stream as
//     arrivals, so their order relative to the arrival sequence is fixed
//     by the submitter, not by scheduling;
//   - batch composition is a pure function of virtual time: when a chip
//     goes idle at time f with requests waiting, the next batch starts at
//     s = max(f, first waiting arrival) and contains the longest waiting
//     prefix with arrival <= s (capped at MaxBatch) — regardless of when
//     the dispatcher happens to observe the worker's result;
//   - a chip executes one batch at a time, so its controller state evolves
//     in a fixed order;
//   - admission decisions that need exact virtual queue occupancy (the
//     queue looks full) synchronously wait for the in-flight result; all
//     other completions are observed opportunistically.
//
// Telemetry counters and per-request figures are deterministic under
// replay; queue-depth *samples* are scheduling-dependent (they reflect how
// eagerly completions were observed) and are observability-only.
package serve

import (
	"errors"
	"fmt"
	"log/slog"
	"strconv"
	"sync"
	"sync/atomic"

	"odin/internal/clock"
	"odin/internal/core"
	"odin/internal/decache"
	"odin/internal/dnn"
	"odin/internal/obs"
	"odin/internal/ou"
	"odin/internal/policy"
	"odin/internal/pulse"
	"odin/internal/telemetry"
)

// ErrDraining is the sentinel inside every error returned for submissions
// and fleet operations refused because Close has begun. Check it with
// errors.Is — the HTTP layer maps it to 503 — instead of matching message
// text.
var ErrDraining = errors.New("server is draining")

// RejectedID is the sentinel Response.ID of a submission rejected before
// it ever entered the dispatcher (Submit after Close has flipped
// draining). Real ids are assigned by the dispatcher in arrival order
// starting at 0, so they can never collide with the sentinel — a rejected
// Response is distinguishable from request 0 by ID alone.
const RejectedID = ^uint64(0)

// Response is the outcome of one request. Exactly one Response is
// delivered per submitted request, on the channel Submit returns.
type Response struct {
	ID    uint64 // request sequence number (arrival order); RejectedID for rejections
	Chip  int    // serving chip id (the routed chip for sheds; -1 for routing errors)
	Batch uint64 // per-chip batch index the request rode in

	Shed     bool   // true when rejected by admission control (429-style)
	Rejected bool   // true when rejected at Submit while draining (never dispatched)
	Err      string // non-empty for routing errors (unknown model, draining)

	Sizes        []ou.Size // per-layer OU decisions of the batch's run
	Energy       float64   // per-request inference energy (J)
	Latency      float64   // per-request service latency (s)
	Wait         float64   // virtual queue wait before execution (s)
	Accuracy     float64   // estimated accuracy of the run
	Reprogrammed bool      // the batch triggered a reprogramming pass
}

// Request is one inference submission flowing through the dispatcher.
type Request struct {
	ID      uint64
	Model   string
	Tenant  string  // submitting tenant ("" = the default class)
	Arrival float64 // seconds on the server clock, stamped at Submit
	done    chan Response

	// ten is the resolved tenant state, stamped by the dispatcher when
	// tenant accounting is on (dispatcher-owned, like ID).
	ten *tenantState
}

// respond delivers the request's single response (channel has capacity 1).
func (r *Request) respond(resp Response) { r.done <- resp }

// ChipConfig describes one chip of the fleet.
type ChipConfig struct {
	// Model names the zoo workload the chip is programmed with.
	Model string
	// Custom overrides the zoo lookup with an explicit model (tests and
	// design studies). When set, Model defaults to Custom.Name.
	Custom *dnn.Model
	// Seed initialises the chip's policy (and, unless the controller
	// options pin one, its training stream). 0 derives a per-chip default.
	Seed uint64
	// ProgrammedAt back-dates the chip's last write pass (typically
	// negative; see core.ControllerOptions.ProgrammedAt). Staggering it
	// across a fleet desynchronizes drift phases, so forced reprograms
	// arrive as a steady trickle instead of a fleet-wide herd.
	ProgrammedAt float64
}

// TenantConfig is one admission class. Tenants partition the request
// stream for quota and priority purposes; requests name their tenant via
// SubmitAs (unnamed submissions ride the zero-value default class).
type TenantConfig struct {
	// Name identifies the tenant ("" configures the default class).
	Name string
	// Quota caps the tenant's outstanding admitted requests across the
	// fleet; arrivals beyond it are shed (429-style). 0 = unlimited.
	Quota int
	// Priority orders classes at a full chip queue: an arrival of a
	// higher-priority tenant evicts the newest queued request of the
	// lowest queued class below it (the evictee is shed) instead of being
	// shed itself. Equal priorities never preempt each other. Default 0.
	Priority int
}

// Config parameterises a Server.
type Config struct {
	// Chips is the initial fleet; at least one. Several chips may host the
	// same model — requests for that model rotate across them. Chips can
	// be added and removed later with AddChip/RemoveChip.
	Chips []ChipConfig
	// Router names the arrival-routing policy: "rr" (default, the
	// replay-compatible round-robin baseline), "least" (least-loaded), or
	// "drift" (least-loaded with steering away from chips near their
	// forced-reprogram deadline, plus off-path maintenance write passes).
	// See RouterNames and RegisterRouter.
	Router string
	// DriftMargin tunes the "drift" router: steering starts when a chip's
	// device age exceeds DriftMargin × its forced-reprogram deadline.
	// Must be in (0,1); 0 selects the default 0.85.
	DriftMargin float64
	// Tenants configures admission classes (quotas, priorities). Empty
	// disables tenant accounting entirely: SubmitAs still works, but no
	// quota is enforced and no per-tenant series are emitted.
	Tenants []TenantConfig
	// QueueDepth bounds each chip's wait queue (default 16).
	QueueDepth int
	// MaxBatch caps how many queued requests coalesce into one decision
	// pass (default 8).
	MaxBatch int
	// Workers sizes the execution pool (default: one per chip).
	Workers int
	// ReprogramBudget is the per-chip reprogramming allowance; once a
	// chip's controller exceeds it the chip is marked degraded in
	// telemetry. 0 means unlimited.
	ReprogramBudget int
	// Clock is the time source (required). Live binaries inject
	// clock.NewReal(); tests and replay inject a clock.Virtual.
	Clock clock.Clock
	// Live enables completion-driven dispatch: workers wake the dispatcher
	// when a batch finishes, so queued requests are answered without waiting
	// for the next arrival or for drain. Required for interactive serving
	// (cmd/odinserve serve); must stay false for deterministic replay, where
	// the wake signal's real-time interleaving with arrivals would make
	// batch composition scheduling-dependent.
	Live bool
	// Registry receives serve-path metrics; nil creates a private one.
	Registry *telemetry.Registry
	// Tracer, when non-nil, records serve-path spans — per-chip "batch"
	// spans with child "request" spans, zero-width "shed" markers, and the
	// controller's run/layer/noc/reprogram tree (each chip's controller is
	// given this tracer on track == chip id, superseding
	// Controller.Tracer/TraceTrack). All span timestamps are virtual
	// (Clock) times, so replayed traces export byte-identically regardless
	// of Workers — see WriteChromeTrace's canonical ordering.
	Tracer *obs.Tracer
	// Logger receives structured serve events (chip degradation, drain);
	// nil disables logging. Pair it with obs.NewLogHandler over the same
	// Clock for deterministic timestamps.
	Logger *slog.Logger
	// Pulse, when non-nil, receives streaming telemetry events (batch
	// retirements, decision summaries, reprogram passes, lifecycle, sheds)
	// and powers GET /events and GET /statusz. Every published field is a
	// pure function of virtual time and per-chip batch order, so replayed
	// event logs are byte-identical at any worker count — see
	// internal/pulse's package comment for the contract. nil disables
	// publishing at the cost of one pointer test per site.
	Pulse *pulse.Bus
	// System is the simulated platform; nil uses core.DefaultSystem.
	System *core.System
	// Controller tunes each chip's online-learning loop.
	Controller core.ControllerOptions
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.Workers <= 0 {
		c.Workers = len(c.Chips)
	}
	if c.Registry == nil {
		c.Registry = telemetry.NewRegistry()
	}
	return c
}

// chip is dispatcher-owned fleet state. Only the dispatcher goroutine
// touches it, except ctrl during an in-flight batch (handed to a worker and
// back through the results channel, which provides the happens-before
// edges).
type chip struct {
	id    int
	label string // id as string, for metric labels
	model string
	ctrl  *core.Controller

	pending  []*Request // admitted, waiting; FIFO in arrival order
	inflight *batch     // at most one dispatched batch
	freeAt   float64    // virtual time the chip last went idle
	results  chan *batch
	batches  uint64 // per-chip batch counter (deterministic batch ids)

	// wakePending dedups Live-mode completion hints: true while a hint for
	// this chip sits in s.woken (or is about to be appended). It bounds the
	// woken set to one entry per chip, so the set stays fleet-sized even
	// when batches retired through the arrival path leave their hints
	// unconsumed. Shared between workers and the dispatcher (the only
	// chip field touched outside the results-channel handoff).
	wakePending atomic.Bool

	// Deterministic per-chip accumulations (updated in batch order).
	energySum  float64
	latencySum float64
	served     uint64
	degraded   bool

	// removed marks a retired chip: it is out of byModel (receives no new
	// work), its queue was drained at removal, and only its historical
	// accumulators remain readable. Ids are never reused.
	removed bool
}

// tenantState is the dispatcher-owned accounting of one admission class.
type tenantState struct {
	label       string // metric label ("default" for the unnamed class)
	quota       int
	prio        int
	outstanding int // admitted, not yet responded (exact under quota enforcement)
}

// batch is one coalesced decision pass. Written by the dispatcher, handed
// to a worker (which fills rep), handed back.
type batch struct {
	chip  *chip
	id    uint64
	start float64 // virtual execution start
	reqs  []*Request

	rep    core.BatchReport
	done   bool    // dispatcher observed the result
	finish float64 // start + rep.BatchLatency(), valid once done

	// depth is the backlog left behind at the batch's start: pending
	// requests with arrival <= start that did not coalesce (beyond
	// MaxBatch). Captured in startBatch because it is a pure function of
	// virtual time there — unlike len(pending) at result observation,
	// which depends on how eagerly completions were observed — so the
	// pulse batch event stays worker-count invariant. Only computed when
	// a pulse bus is attached.
	depth int
}

// metrics bundles the serve-path instrumentation.
type metrics struct {
	requests  *telemetry.Counter
	admitted  *telemetry.Counter
	shed      *telemetry.Counter
	errors    *telemetry.Counter
	rejected  *telemetry.Counter
	evicted   *telemetry.Counter
	quotaShed *telemetry.Counter
	completed *telemetry.Counter
	batches   *telemetry.Counter

	steered         *telemetry.Counter
	maintenance     *telemetry.Counter
	reprogramOnPath *telemetry.Counter

	fleetChips   *telemetry.Gauge
	chipsAdded   *telemetry.Counter
	chipsRemoved *telemetry.Counter

	tenantRequests *telemetry.CounterVec
	tenantAdmitted *telemetry.CounterVec
	tenantShed     *telemetry.CounterVec

	batchSize  *telemetry.Histogram
	queueWait  *telemetry.Histogram
	queueDepth *telemetry.Histogram

	chipDepth     *telemetry.GaugeVec
	chipReprogram *telemetry.CounterVec
	chipUpdates   *telemetry.CounterVec
	chipBatches   *telemetry.CounterVec
	chipEnergy    *telemetry.GaugeVec
	chipDegraded  *telemetry.GaugeVec
}

func newMetrics(r *telemetry.Registry) metrics {
	return metrics{
		requests:  r.Counter("odinserve_requests_total", "requests submitted"),
		admitted:  r.Counter("odinserve_admitted_total", "requests admitted past admission control"),
		shed:      r.Counter("odinserve_shed_total", "requests shed by admission control (429)"),
		errors:    r.Counter("odinserve_errors_total", "requests rejected for routing errors"),
		rejected:  r.Counter("odinserve_rejected_total", "submissions rejected while draining (never dispatched)"),
		evicted:   r.Counter("odinserve_evicted_total", "queued requests evicted by higher-priority arrivals (subset of shed)"),
		quotaShed: r.Counter("odinserve_quota_shed_total", "requests shed by tenant quota enforcement (subset of shed)"),
		completed: r.Counter("odinserve_completed_total", "requests served to completion"),
		batches:   r.Counter("odinserve_batches_total", "decision-pass batches dispatched"),

		steered: r.Counter("odinserve_steered_total",
			"arrivals routed away from a chip near its forced-reprogram deadline"),
		maintenance: r.Counter("odinserve_maintenance_reprograms_total",
			"off-path reprogram passes taken on idle chips"),
		reprogramOnPath: r.Counter("odinserve_reprogram_on_path_requests_total",
			"requests whose batch carried a forced reprogram stall"),

		fleetChips:   r.Gauge("odinserve_fleet_chips", "live (non-removed) chips in the fleet"),
		chipsAdded:   r.Counter("odinserve_chips_added_total", "chips hot-added while serving"),
		chipsRemoved: r.Counter("odinserve_chips_removed_total", "chips drained and removed while serving"),

		tenantRequests: r.CounterVec("odinserve_tenant_requests_total", "requests submitted per tenant", "tenant"),
		tenantAdmitted: r.CounterVec("odinserve_tenant_admitted_total", "requests admitted per tenant", "tenant"),
		tenantShed:     r.CounterVec("odinserve_tenant_shed_total", "requests shed per tenant (quota, queue, or eviction)", "tenant"),

		batchSize: r.Histogram("odinserve_batch_size",
			"coalesced requests per batch", []float64{1, 2, 4, 8, 16, 32}),
		queueWait: r.Histogram("odinserve_queue_wait_seconds",
			"virtual queue wait per request", []float64{1e-4, 1e-3, 1e-2, 1e-1, 1, 10}),
		queueDepth: r.Histogram("odinserve_queue_depth",
			"chip queue depth sampled at admission", []float64{0, 1, 2, 4, 8, 16, 32, 64}),

		chipDepth:     r.GaugeVec("odinserve_chip_queue_depth", "current queue depth per chip", "chip"),
		chipReprogram: r.CounterVec("odinserve_chip_reprograms_total", "reprogramming passes per chip", "chip"),
		chipUpdates:   r.CounterVec("odinserve_chip_policy_updates_total", "online policy updates per chip", "chip"),
		chipBatches:   r.CounterVec("odinserve_chip_batches_total", "batches executed per chip", "chip"),
		chipEnergy:    r.GaugeVec("odinserve_chip_energy_joules", "cumulative served energy per chip", "chip"),
		chipDegraded:  r.GaugeVec("odinserve_chip_degraded", "1 when the chip exhausted its reprogram budget", "chip"),
	}
}

// event is one entry of the dispatcher's serialized input stream: an
// arrival or a fleet operation. Interleaving both through one channel is
// what fixes the order of fleet churn relative to the arrival sequence —
// an op submitted before arrival i is processed before arrival i,
// regardless of scheduling.
type event struct {
	req *Request
	op  *fleetOp
}

// fleetOp is one control-plane request (hot add, drain-and-remove, or
// fleet snapshot), answered synchronously on reply.
type fleetOp struct {
	add    *ChipConfig // add a chip when non-nil
	remove int         // chip id to drain and remove (when add == nil and !info)
	info   bool        // snapshot the fleet
	reply  chan fleetOpResult
}

type fleetOpResult struct {
	id   int
	info []ChipInfo
	err  error
}

// Server shards a fleet of simulated ReRAM chips behind bounded queues and
// a fixed worker pool. Create with NewServer, start with Start, submit with
// Submit, stop with Close.
type Server struct {
	cfg Config
	clk clock.Clock
	met metrics
	sys core.System

	chips   []*chip
	byModel map[string][]*chip
	router  Router

	// models mirrors byModel's live-host counts for HTTP-side lookups
	// (HasModel/Models run on handler goroutines while the dispatcher
	// mutates byModel during fleet churn).
	modelsMu sync.RWMutex
	models   map[string]int

	// tenants resolves admission classes; tenantsOn gates all tenant
	// bookkeeping (quota advance, eviction, per-tenant series) so the
	// tenant-free configuration costs one boolean test per arrival.
	// quotaOn is set when any class has a quota, which is what forces the
	// exact fleet-wide advance per arrival. Dispatcher-owned.
	tenants   map[string]*tenantState
	tenantsOn bool
	quotaOn   bool

	viewBuf []ChipView // router Pick scratch (dispatcher-owned)

	events chan event
	jobs   chan *batch
	drainc chan chan struct{}

	// Live-mode completion hints. Workers append the finished chip to
	// woken (deduplicated by chip.wakePending) and nudge the 1-slot wakec
	// with a non-blocking send; neither step can block, whatever the fleet
	// size, so hot fleet growth (AddChip past the seed sizing) and drain
	// (when the dispatcher stops sweeping hints) never wedge a worker.
	wakeMu sync.Mutex
	woken  []*chip
	wakec  chan struct{}

	mu       sync.RWMutex // guards draining against concurrent Submits
	draining bool
	started  bool
	closed   bool

	seq   uint64  // next request id (dispatcher-owned)
	lastT float64 // monotone arrival clamp (dispatcher-owned)

	workers    sync.WaitGroup
	dispatcher sync.WaitGroup
}

// NewServer builds the fleet: each chip prepares its own workload instance
// and a fresh policy. Chips share no mutable learning state; the one
// deliberately shared structure is the decision cache (internal/decache),
// whose entries are pure functions of their keys, so cross-chip reuse is
// safe and chips running the same model at the same age bucket replay each
// other's line-6 searches.
func NewServer(cfg Config) (*Server, error) {
	if len(cfg.Chips) == 0 {
		return nil, fmt.Errorf("serve: config needs at least one chip")
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("serve: config needs a clock (clock.NewReal for live, clock.NewVirtual for replay)")
	}
	cfg = cfg.withDefaults()
	var sys core.System
	if cfg.System != nil {
		sys = *cfg.System
	} else {
		sys = core.DefaultSystem()
	}

	// One decision cache for the whole fleet (unless the caller brought
	// their own or opted out): same-platform chips hit each other's
	// memoized decisions, and the cache's counters land on the fleet's
	// metrics registry. Gated on the process-wide default so `odinsim
	// -cache=off` style comparisons reach the serving layer too.
	if cfg.Controller.Cache == nil && !cfg.Controller.DisableDecisionCache &&
		core.DecisionCacheDefault() {
		cfg.Controller.Cache = decache.NewWith(decache.Options{Registry: cfg.Registry})
	}

	s := &Server{
		cfg:     cfg,
		clk:     cfg.Clock,
		met:     newMetrics(cfg.Registry),
		sys:     sys,
		byModel: make(map[string][]*chip),
		models:  make(map[string]int),
		events:  make(chan event, 64+len(cfg.Chips)*cfg.QueueDepth),
		jobs:    make(chan *batch, len(cfg.Chips)),
		wakec:   make(chan struct{}, 1),
		drainc:  make(chan chan struct{}),
	}
	router, err := newRouter(cfg)
	if err != nil {
		return nil, err
	}
	s.router = router
	if len(cfg.Tenants) > 0 {
		s.tenants = make(map[string]*tenantState, len(cfg.Tenants))
		s.tenantsOn = true
		for _, tc := range cfg.Tenants {
			if _, dup := s.tenants[tc.Name]; dup {
				return nil, fmt.Errorf("serve: tenant %q configured twice", tc.Name)
			}
			if tc.Quota < 0 {
				return nil, fmt.Errorf("serve: tenant %q quota %d is negative", tc.Name, tc.Quota)
			}
			s.tenants[tc.Name] = &tenantState{
				label: tenantLabel(tc.Name), quota: tc.Quota, prio: tc.Priority,
			}
			if tc.Quota > 0 {
				s.quotaOn = true
			}
		}
	}
	for i, cc := range cfg.Chips {
		c, err := s.newChip(i, cc)
		if err != nil {
			return nil, err
		}
		s.chips = append(s.chips, c)
		s.byModel[c.model] = append(s.byModel[c.model], c)
		s.models[c.model]++
		// Seed chips get a series row without a lifecycle event: they are
		// configuration, not churn, so they appear in /statusz from the
		// start while replay event logs stay free of construction noise.
		s.cfg.Pulse.Register(c.id, c.model)
	}
	s.met.fleetChips.Set(float64(len(s.chips)))
	return s, nil
}

// tenantLabel maps the unnamed class to a printable metric label.
func tenantLabel(name string) string {
	if name == "" {
		return "default"
	}
	return name
}

// tenant resolves (and lazily creates) the dispatcher-owned state of one
// admission class. Unconfigured names get a zero-quota, zero-priority
// class; labels come from caller input, so operators own the cardinality.
func (s *Server) tenant(name string) *tenantState {
	ts, ok := s.tenants[name]
	if !ok {
		ts = &tenantState{label: tenantLabel(name)}
		s.tenants[name] = ts
	}
	return ts
}

// newChip prepares one chip: its own workload instance, a fresh policy,
// and a controller wired to the fleet's shared cache/tracer. Used both by
// NewServer and by hot adds, so a chip joining mid-flight is constructed
// exactly like a seed chip with the same id would have been.
func (s *Server) newChip(id int, cc ChipConfig) (*chip, error) {
	model := cc.Custom
	name := cc.Model
	if model == nil {
		if name == "" {
			return nil, fmt.Errorf("serve: chip %d names no model", id)
		}
		m, err := dnn.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("serve: chip %d: %w", id, err)
		}
		model = m
	} else if name == "" {
		name = model.Name
	}
	wl, err := s.sys.Prepare(model)
	if err != nil {
		return nil, fmt.Errorf("serve: chip %d (%s): %w", id, name, err)
	}
	seed := cc.Seed
	if seed == 0 {
		seed = uint64(id) + 1
	}
	opts := s.cfg.Controller
	if opts.TrainSeed == 0 {
		opts.TrainSeed = seed
	}
	if cc.ProgrammedAt != 0 {
		opts.ProgrammedAt = cc.ProgrammedAt
	}
	if s.cfg.Tracer != nil {
		opts.Tracer, opts.TraceTrack = s.cfg.Tracer, id
	}
	if p := s.cfg.Pulse; p.Enabled() && opts.Audit == nil {
		// Lift per-run decision summaries onto the pulse bus via the
		// controller's existing audit hook. The tap runs on the worker
		// executing the batch; the published fields are byte-identical
		// cached or uncached (see pulse.DecisionEvent), so decision events
		// replay worker-count invariant. Callers who bring their own
		// AuditLog keep it — decision events are then absent rather than
		// double-recorded.
		chipID, chipModel := id, name
		opts.Audit = obs.NewAuditLogTap(1, func(r obs.RunAudit) {
			p.Publish(pulse.DecisionEvent(chipID, chipModel, r))
		})
	}
	pol := policy.New(policy.Config{Grid: s.sys.Grid(), Seed: seed})
	ctrl, err := core.NewController(s.sys, wl, pol, opts)
	if err != nil {
		return nil, fmt.Errorf("serve: chip %d (%s): %w", id, name, err)
	}
	return &chip{
		id:      id,
		label:   strconv.Itoa(id),
		model:   name,
		ctrl:    ctrl,
		results: make(chan *batch, 1),
	}, nil
}

// Start launches the dispatcher and the worker pool.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		panic("serve: Server started twice")
	}
	s.started = true
	for i := 0; i < s.cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	s.dispatcher.Add(1)
	go s.dispatch()
}

// Submit stamps an arrival from the server clock and enqueues the request
// under the default tenant class. The returned channel delivers exactly
// one Response (buffered: the caller may drop it without leaking). After
// Close, submissions are rejected immediately with a draining error and
// the RejectedID sentinel.
func (s *Server) Submit(model string) <-chan Response {
	return s.SubmitAs(model, "")
}

// SubmitAs is Submit with an explicit tenant class (see Config.Tenants).
func (s *Server) SubmitAs(model, tenant string) <-chan Response {
	done := make(chan Response, 1)
	req := &Request{Model: model, Tenant: tenant, Arrival: s.clk.Now(), done: done}
	s.mu.RLock()
	if !s.started || s.draining {
		s.mu.RUnlock()
		s.met.requests.Inc()
		s.met.rejected.Inc()
		if p := s.cfg.Pulse; p.Enabled() {
			// Live-only by construction: Replay finishes submitting before
			// Close, so rejection events never appear in replay logs.
			p.Publish(pulse.Event{Kind: pulse.KindShed, Time: req.Arrival,
				Chip: -1, Model: model, Tenant: tenant, Reason: "reject"})
		}
		req.respond(Response{ID: RejectedID, Chip: -1, Rejected: true,
			Err: "odinserve: " + ErrDraining.Error()})
		return done
	}
	// The send must complete under the read lock: Close takes the write lock
	// before flipping draining, so holding RLock here guarantees the
	// dispatcher is still draining events when the send parks — the send
	// cannot deadlock, and releasing the lock first would reopen the
	// admitted-but-dropped race this ordering exists to close.
	s.events <- event{req: req} //lint:allow lockflow -- send under RLock is the admission/drain handshake; dispatcher always drains events while any RLock holder can be admitting
	s.mu.RUnlock()
	return done
}

// sendOp runs one fleet operation through the dispatcher's event stream
// and waits for its reply. The same RLock handshake as SubmitAs keeps the
// send race-free against Close.
func (s *Server) sendOp(op *fleetOp) fleetOpResult {
	op.reply = make(chan fleetOpResult, 1)
	s.mu.RLock()
	if !s.started || s.draining {
		s.mu.RUnlock()
		return fleetOpResult{id: -1, err: fmt.Errorf("serve: %w", ErrDraining)}
	}
	s.events <- event{op: op} //lint:allow lockflow -- send under RLock is the same admission/drain handshake as SubmitAs; dispatcher always drains events while any RLock holder can be admitting
	s.mu.RUnlock()
	return <-op.reply
}

// AddChip hot-adds a chip to the serving fleet and returns its id (ids
// grow monotonically and are never reused). The chip is constructed on
// the dispatcher goroutine, becomes routable for its model immediately,
// and inherits the fleet's shared decision cache and tracer. Fails once
// draining has begun.
func (s *Server) AddChip(cc ChipConfig) (int, error) {
	res := s.sendOp(&fleetOp{add: &cc})
	return res.id, res.err
}

// RemoveChip drains and retires one chip: it stops receiving new work
// immediately, every already-admitted request on its queue (and any batch
// in flight) is executed and answered — the exactly-once contract holds
// through removal — and its historical accumulators stay visible in Stats
// and FleetInfo. Removing the last chip hosting a model makes later
// arrivals for it routing errors (a simulated model outage).
func (s *Server) RemoveChip(id int) error {
	return s.sendOp(&fleetOp{remove: id}).err
}

// FleetInfo snapshots every chip (including removed ones) at the
// dispatcher's current virtual time.
func (s *Server) FleetInfo() ([]ChipInfo, error) {
	res := s.sendOp(&fleetOp{info: true})
	return res.info, res.err
}

// ChipInfo is one chip's row in a FleetInfo snapshot.
type ChipInfo struct {
	ID          int
	Model       string
	Removed     bool
	Queue       int     // pending requests at snapshot time
	Busy        bool    // a batch was in flight
	Served      uint64  // requests served to completion
	Batches     uint64  // batches executed
	Reprograms  int     // write passes (forced + maintenance)
	Age         float64 // device age at snapshot time
	DeadlineAge float64 // forced-reprogram age (+Inf when drift never forces)
	Degraded    bool    // reprogram budget exhausted
}

// Close stops admissions, drains every admitted request to completion, and
// stops the worker pool. Safe to call once; later calls are no-ops.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.started || s.closed {
		s.mu.Unlock()
		return
	}
	s.draining = true
	s.closed = true
	s.mu.Unlock()

	ack := make(chan struct{})
	s.drainc <- ack
	<-ack
	s.dispatcher.Wait()
	close(s.jobs)
	s.workers.Wait()
}

// worker executes batches: one Algorithm 1 decision pass per batch on the
// owning chip's controller. Per-chip mutual exclusion is structural — a
// chip has at most one batch in flight.
func (s *Server) worker() {
	defer s.workers.Done()
	for b := range s.jobs {
		b.rep = b.chip.ctrl.RunBatch(b.start, len(b.reqs))
		b.chip.results <- b
		if s.cfg.Live {
			// Wakes are hints, deduplicated per chip (wakePending bounds the
			// woken set to one entry per chip). The append and the 1-slot
			// notify are both non-blocking — crucially independent of fleet
			// size, unlike the former per-chip-capacity wake channel, which a
			// hot-grown fleet could fill until workers blocked here while the
			// dispatcher blocked in startBatch's jobs send: deadlock. A full
			// wakec just means a sweep is already pending; the dispatcher
			// claims the whole woken set per notify.
			if b.chip.wakePending.CompareAndSwap(false, true) {
				s.wakeMu.Lock()
				s.woken = append(s.woken, b.chip)
				s.wakeMu.Unlock()
				select {
				case s.wakec <- struct{}{}:
				default:
				}
			}
		}
	}
}

// ChipStat is a post-drain snapshot of one chip.
type ChipStat struct {
	ID            int
	Model         string
	Served        uint64
	Batches       uint64
	Reprograms    int
	PolicyUpdates int
	Energy        float64 // cumulative served energy (J)
	Latency       float64 // cumulative chip-busy time (s)
	Degraded      bool
	Removed       bool // retired by RemoveChip before the drain
}

// Stats snapshots the fleet. Only safe after Close has returned (chip state
// is dispatcher-owned while running).
func (s *Server) Stats() []ChipStat {
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if !closed {
		panic("serve: Stats before Close; chip state is dispatcher-owned while serving")
	}
	out := make([]ChipStat, len(s.chips))
	for i, c := range s.chips {
		out[i] = ChipStat{
			ID:            c.id,
			Model:         c.model,
			Served:        c.served,
			Batches:       c.batches,
			Reprograms:    c.ctrl.Reprograms(),
			PolicyUpdates: c.ctrl.PolicyUpdates(),
			Energy:        c.energySum,
			Latency:       c.latencySum,
			Degraded:      c.degraded,
			Removed:       c.removed,
		}
	}
	return out
}

// Draining reports whether Close has begun. Health endpoints use it to
// fail readiness as soon as the server stops admitting.
func (s *Server) Draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}

// RouterName returns the routing policy the server was built with.
func (s *Server) RouterName() string { return s.router.Name() }

// Registry returns the metrics registry serving this fleet.
func (s *Server) Registry() *telemetry.Registry { return s.cfg.Registry }

// DecisionCache returns the fleet-shared decision cache (nil when caching
// is disabled).
func (s *Server) DecisionCache() *decache.Cache { return s.cfg.Controller.Cache }
