// Package serve is the concurrent inference-serving layer over a simulated
// fleet of ReRAM chips. Each chip owns one prepared workload, one Odin
// controller (policy, training buffer, drift bookkeeping), and one
// reprogram budget; requests are routed to chips round-robin per model,
// admitted through bounded per-chip queues (shed with a 429-style rejection
// when the queue is full), coalesced into per-chip batches, and executed on
// a fixed worker pool. Shutdown drains: every admitted request receives its
// response exactly once.
//
// # Determinism
//
// All time flows through internal/clock. Replayed against a Virtual clock
// (see Trace and Replay in trace.go), the layer is deterministic at the
// request level: the same trace and seed produce byte-identical per-request
// OU decisions, reprogram events, and energy/latency figures, independent
// of worker count and goroutine scheduling. This holds because
//
//   - routing is round-robin over config order, decided in arrival order
//     by the single dispatcher goroutine;
//   - batch composition is a pure function of virtual time: when a chip
//     goes idle at time f with requests waiting, the next batch starts at
//     s = max(f, first waiting arrival) and contains the longest waiting
//     prefix with arrival <= s (capped at MaxBatch) — regardless of when
//     the dispatcher happens to observe the worker's result;
//   - a chip executes one batch at a time, so its controller state evolves
//     in a fixed order;
//   - admission decisions that need exact virtual queue occupancy (the
//     queue looks full) synchronously wait for the in-flight result; all
//     other completions are observed opportunistically.
//
// Telemetry counters and per-request figures are deterministic under
// replay; queue-depth *samples* are scheduling-dependent (they reflect how
// eagerly completions were observed) and are observability-only.
package serve

import (
	"fmt"
	"log/slog"
	"strconv"
	"sync"
	"sync/atomic"

	"odin/internal/clock"
	"odin/internal/core"
	"odin/internal/decache"
	"odin/internal/dnn"
	"odin/internal/obs"
	"odin/internal/ou"
	"odin/internal/policy"
	"odin/internal/telemetry"
)

// Response is the outcome of one request. Exactly one Response is
// delivered per submitted request, on the channel Submit returns.
type Response struct {
	ID    uint64 // request sequence number (arrival order)
	Chip  int    // serving chip id (the routed chip for sheds; -1 for routing errors)
	Batch uint64 // per-chip batch index the request rode in

	Shed bool   // true when rejected by admission control (429-style)
	Err  string // non-empty for routing errors (unknown model, draining)

	Sizes        []ou.Size // per-layer OU decisions of the batch's run
	Energy       float64   // per-request inference energy (J)
	Latency      float64   // per-request service latency (s)
	Wait         float64   // virtual queue wait before execution (s)
	Accuracy     float64   // estimated accuracy of the run
	Reprogrammed bool      // the batch triggered a reprogramming pass
}

// Request is one inference submission flowing through the dispatcher.
type Request struct {
	ID      uint64
	Model   string
	Arrival float64 // seconds on the server clock, stamped at Submit
	done    chan Response
}

// respond delivers the request's single response (channel has capacity 1).
func (r *Request) respond(resp Response) { r.done <- resp }

// ChipConfig describes one chip of the fleet.
type ChipConfig struct {
	// Model names the zoo workload the chip is programmed with.
	Model string
	// Custom overrides the zoo lookup with an explicit model (tests and
	// design studies). When set, Model defaults to Custom.Name.
	Custom *dnn.Model
	// Seed initialises the chip's policy (and, unless the controller
	// options pin one, its training stream). 0 derives a per-chip default.
	Seed uint64
}

// Config parameterises a Server.
type Config struct {
	// Chips is the fleet; at least one. Several chips may host the same
	// model — requests for that model rotate across them.
	Chips []ChipConfig
	// QueueDepth bounds each chip's wait queue (default 16).
	QueueDepth int
	// MaxBatch caps how many queued requests coalesce into one decision
	// pass (default 8).
	MaxBatch int
	// Workers sizes the execution pool (default: one per chip).
	Workers int
	// ReprogramBudget is the per-chip reprogramming allowance; once a
	// chip's controller exceeds it the chip is marked degraded in
	// telemetry. 0 means unlimited.
	ReprogramBudget int
	// Clock is the time source (required). Live binaries inject
	// clock.NewReal(); tests and replay inject a clock.Virtual.
	Clock clock.Clock
	// Live enables completion-driven dispatch: workers wake the dispatcher
	// when a batch finishes, so queued requests are answered without waiting
	// for the next arrival or for drain. Required for interactive serving
	// (cmd/odinserve serve); must stay false for deterministic replay, where
	// the wake signal's real-time interleaving with arrivals would make
	// batch composition scheduling-dependent.
	Live bool
	// Registry receives serve-path metrics; nil creates a private one.
	Registry *telemetry.Registry
	// Tracer, when non-nil, records serve-path spans — per-chip "batch"
	// spans with child "request" spans, zero-width "shed" markers, and the
	// controller's run/layer/noc/reprogram tree (each chip's controller is
	// given this tracer on track == chip id, superseding
	// Controller.Tracer/TraceTrack). All span timestamps are virtual
	// (Clock) times, so replayed traces export byte-identically regardless
	// of Workers — see WriteChromeTrace's canonical ordering.
	Tracer *obs.Tracer
	// Logger receives structured serve events (chip degradation, drain);
	// nil disables logging. Pair it with obs.NewLogHandler over the same
	// Clock for deterministic timestamps.
	Logger *slog.Logger
	// System is the simulated platform; nil uses core.DefaultSystem.
	System *core.System
	// Controller tunes each chip's online-learning loop.
	Controller core.ControllerOptions
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.Workers <= 0 {
		c.Workers = len(c.Chips)
	}
	if c.Registry == nil {
		c.Registry = telemetry.NewRegistry()
	}
	return c
}

// chip is dispatcher-owned fleet state. Only the dispatcher goroutine
// touches it, except ctrl during an in-flight batch (handed to a worker and
// back through the results channel, which provides the happens-before
// edges).
type chip struct {
	id    int
	label string // id as string, for metric labels
	model string
	ctrl  *core.Controller

	pending  []*Request // admitted, waiting; FIFO in arrival order
	inflight *batch     // at most one dispatched batch
	freeAt   float64    // virtual time the chip last went idle
	results  chan *batch
	batches  uint64 // per-chip batch counter (deterministic batch ids)

	// wakePending dedups Live-mode completion hints: true while a wake for
	// this chip sits in s.wake (or is about to be sent). It bounds the wake
	// channel to one entry per chip, so the worker's send can never block —
	// in particular not during drain, when the dispatcher has stopped
	// reading wakes. Shared between workers and the dispatcher (the only
	// chip field touched outside the results-channel handoff).
	wakePending atomic.Bool

	// Deterministic per-chip accumulations (updated in batch order).
	energySum  float64
	latencySum float64
	served     uint64
	degraded   bool
}

// batch is one coalesced decision pass. Written by the dispatcher, handed
// to a worker (which fills rep), handed back.
type batch struct {
	chip  *chip
	id    uint64
	start float64 // virtual execution start
	reqs  []*Request

	rep    core.BatchReport
	done   bool    // dispatcher observed the result
	finish float64 // start + rep.BatchLatency(), valid once done
}

// metrics bundles the serve-path instrumentation.
type metrics struct {
	requests  *telemetry.Counter
	admitted  *telemetry.Counter
	shed      *telemetry.Counter
	errors    *telemetry.Counter
	completed *telemetry.Counter
	batches   *telemetry.Counter

	batchSize  *telemetry.Histogram
	queueWait  *telemetry.Histogram
	queueDepth *telemetry.Histogram

	chipDepth     *telemetry.GaugeVec
	chipReprogram *telemetry.CounterVec
	chipUpdates   *telemetry.CounterVec
	chipBatches   *telemetry.CounterVec
	chipEnergy    *telemetry.GaugeVec
	chipDegraded  *telemetry.GaugeVec
}

func newMetrics(r *telemetry.Registry) metrics {
	return metrics{
		requests:  r.Counter("odinserve_requests_total", "requests submitted"),
		admitted:  r.Counter("odinserve_admitted_total", "requests admitted past admission control"),
		shed:      r.Counter("odinserve_shed_total", "requests shed by admission control (429)"),
		errors:    r.Counter("odinserve_errors_total", "requests rejected for routing errors"),
		completed: r.Counter("odinserve_completed_total", "requests served to completion"),
		batches:   r.Counter("odinserve_batches_total", "decision-pass batches dispatched"),

		batchSize: r.Histogram("odinserve_batch_size",
			"coalesced requests per batch", []float64{1, 2, 4, 8, 16, 32}),
		queueWait: r.Histogram("odinserve_queue_wait_seconds",
			"virtual queue wait per request", []float64{1e-4, 1e-3, 1e-2, 1e-1, 1, 10}),
		queueDepth: r.Histogram("odinserve_queue_depth",
			"chip queue depth sampled at admission", []float64{0, 1, 2, 4, 8, 16, 32, 64}),

		chipDepth:     r.GaugeVec("odinserve_chip_queue_depth", "current queue depth per chip", "chip"),
		chipReprogram: r.CounterVec("odinserve_chip_reprograms_total", "reprogramming passes per chip", "chip"),
		chipUpdates:   r.CounterVec("odinserve_chip_policy_updates_total", "online policy updates per chip", "chip"),
		chipBatches:   r.CounterVec("odinserve_chip_batches_total", "batches executed per chip", "chip"),
		chipEnergy:    r.GaugeVec("odinserve_chip_energy_joules", "cumulative served energy per chip", "chip"),
		chipDegraded:  r.GaugeVec("odinserve_chip_degraded", "1 when the chip exhausted its reprogram budget", "chip"),
	}
}

// Server shards a fleet of simulated ReRAM chips behind bounded queues and
// a fixed worker pool. Create with NewServer, start with Start, submit with
// Submit, stop with Close.
type Server struct {
	cfg Config
	clk clock.Clock
	met metrics

	chips   []*chip
	byModel map[string][]*chip
	rr      map[string]int // round-robin cursor per model (dispatcher-owned)

	events chan *Request
	jobs   chan *batch
	wake   chan *chip // Live mode: completion signals (≤1 outstanding per chip)
	drainc chan chan struct{}

	mu       sync.RWMutex // guards draining against concurrent Submits
	draining bool
	started  bool
	closed   bool

	seq   uint64  // next request id (dispatcher-owned)
	lastT float64 // monotone arrival clamp (dispatcher-owned)

	workers    sync.WaitGroup
	dispatcher sync.WaitGroup
}

// NewServer builds the fleet: each chip prepares its own workload instance
// and a fresh policy. Chips share no mutable learning state; the one
// deliberately shared structure is the decision cache (internal/decache),
// whose entries are pure functions of their keys, so cross-chip reuse is
// safe and chips running the same model at the same age bucket replay each
// other's line-6 searches.
func NewServer(cfg Config) (*Server, error) {
	if len(cfg.Chips) == 0 {
		return nil, fmt.Errorf("serve: config needs at least one chip")
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("serve: config needs a clock (clock.NewReal for live, clock.NewVirtual for replay)")
	}
	cfg = cfg.withDefaults()
	var sys core.System
	if cfg.System != nil {
		sys = *cfg.System
	} else {
		sys = core.DefaultSystem()
	}

	// One decision cache for the whole fleet (unless the caller brought
	// their own or opted out): same-platform chips hit each other's
	// memoized decisions, and the cache's counters land on the fleet's
	// metrics registry. Gated on the process-wide default so `odinsim
	// -cache=off` style comparisons reach the serving layer too.
	if cfg.Controller.Cache == nil && !cfg.Controller.DisableDecisionCache &&
		core.DecisionCacheDefault() {
		cfg.Controller.Cache = decache.NewWith(decache.Options{Registry: cfg.Registry})
	}

	s := &Server{
		cfg:     cfg,
		clk:     cfg.Clock,
		met:     newMetrics(cfg.Registry),
		byModel: make(map[string][]*chip),
		rr:      make(map[string]int),
		events:  make(chan *Request, 64+len(cfg.Chips)*cfg.QueueDepth),
		jobs:    make(chan *batch, len(cfg.Chips)),
		wake:    make(chan *chip, len(cfg.Chips)),
		drainc:  make(chan chan struct{}),
	}
	for i, cc := range cfg.Chips {
		model := cc.Custom
		name := cc.Model
		if model == nil {
			if name == "" {
				return nil, fmt.Errorf("serve: chip %d names no model", i)
			}
			m, err := dnn.ByName(name)
			if err != nil {
				return nil, fmt.Errorf("serve: chip %d: %w", i, err)
			}
			model = m
		} else if name == "" {
			name = model.Name
		}
		wl, err := sys.Prepare(model)
		if err != nil {
			return nil, fmt.Errorf("serve: chip %d (%s): %w", i, name, err)
		}
		seed := cc.Seed
		if seed == 0 {
			seed = uint64(i) + 1
		}
		opts := cfg.Controller
		if opts.TrainSeed == 0 {
			opts.TrainSeed = seed
		}
		if cfg.Tracer != nil {
			opts.Tracer, opts.TraceTrack = cfg.Tracer, i
		}
		pol := policy.New(policy.Config{Grid: sys.Grid(), Seed: seed})
		ctrl, err := core.NewController(sys, wl, pol, opts)
		if err != nil {
			return nil, fmt.Errorf("serve: chip %d (%s): %w", i, name, err)
		}
		c := &chip{
			id:      i,
			label:   strconv.Itoa(i),
			model:   name,
			ctrl:    ctrl,
			results: make(chan *batch, 1),
		}
		s.chips = append(s.chips, c)
		s.byModel[name] = append(s.byModel[name], c)
	}
	return s, nil
}

// Start launches the dispatcher and the worker pool.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		panic("serve: Server started twice")
	}
	s.started = true
	for i := 0; i < s.cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	s.dispatcher.Add(1)
	go s.dispatch()
}

// Submit stamps an arrival from the server clock and enqueues the request.
// The returned channel delivers exactly one Response (buffered: the caller
// may drop it without leaking). After Close, submissions are rejected
// immediately with a draining error.
func (s *Server) Submit(model string) <-chan Response {
	done := make(chan Response, 1)
	req := &Request{Model: model, Arrival: s.clk.Now(), done: done}
	s.mu.RLock()
	if !s.started || s.draining {
		s.mu.RUnlock()
		s.met.requests.Inc()
		s.met.errors.Inc()
		req.respond(Response{Chip: -1, Err: "odinserve: server is draining"})
		return done
	}
	// The send must complete under the read lock: Close takes the write lock
	// before flipping draining, so holding RLock here guarantees the
	// dispatcher is still draining events when the send parks — the send
	// cannot deadlock, and releasing the lock first would reopen the
	// admitted-but-dropped race this ordering exists to close.
	s.events <- req //lint:allow lockflow -- send under RLock is the admission/drain handshake; dispatcher always drains events while any RLock holder can be admitting
	s.mu.RUnlock()
	return done
}

// Close stops admissions, drains every admitted request to completion, and
// stops the worker pool. Safe to call once; later calls are no-ops.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.started || s.closed {
		s.mu.Unlock()
		return
	}
	s.draining = true
	s.closed = true
	s.mu.Unlock()

	ack := make(chan struct{})
	s.drainc <- ack
	<-ack
	s.dispatcher.Wait()
	close(s.jobs)
	s.workers.Wait()
}

// worker executes batches: one Algorithm 1 decision pass per batch on the
// owning chip's controller. Per-chip mutual exclusion is structural — a
// chip has at most one batch in flight.
func (s *Server) worker() {
	defer s.workers.Done()
	for b := range s.jobs {
		b.rep = b.chip.ctrl.RunBatch(b.start, len(b.reqs))
		b.chip.results <- b
		if s.cfg.Live {
			// Wakes are hints, deduplicated per chip: batches retired through
			// the arrival path leave their wake unconsumed, so without dedup
			// stale wakes would fill the channel and this send would block —
			// fatal during drain, when the dispatcher reads results directly
			// and never drains wakes. The flag keeps at most one wake per
			// chip in the channel, so the send never blocks.
			if b.chip.wakePending.CompareAndSwap(false, true) {
				s.wake <- b.chip
			}
		}
	}
}

// ChipStat is a post-drain snapshot of one chip.
type ChipStat struct {
	ID            int
	Model         string
	Served        uint64
	Batches       uint64
	Reprograms    int
	PolicyUpdates int
	Energy        float64 // cumulative served energy (J)
	Latency       float64 // cumulative chip-busy time (s)
	Degraded      bool
}

// Stats snapshots the fleet. Only safe after Close has returned (chip state
// is dispatcher-owned while running).
func (s *Server) Stats() []ChipStat {
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if !closed {
		panic("serve: Stats before Close; chip state is dispatcher-owned while serving")
	}
	out := make([]ChipStat, len(s.chips))
	for i, c := range s.chips {
		out[i] = ChipStat{
			ID:            c.id,
			Model:         c.model,
			Served:        c.served,
			Batches:       c.batches,
			Reprograms:    c.ctrl.Reprograms(),
			PolicyUpdates: c.ctrl.PolicyUpdates(),
			Energy:        c.energySum,
			Latency:       c.latencySum,
			Degraded:      c.degraded,
		}
	}
	return out
}

// Registry returns the metrics registry serving this fleet.
func (s *Server) Registry() *telemetry.Registry { return s.cfg.Registry }

// DecisionCache returns the fleet-shared decision cache (nil when caching
// is disabled).
func (s *Server) DecisionCache() *decache.Cache { return s.cfg.Controller.Cache }
