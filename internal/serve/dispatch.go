package serve

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"odin/internal/obs"
	"odin/internal/pulse"
)

// dispatch is the single goroutine that owns all routing, admission,
// batching, fleet-lifecycle, and completion bookkeeping. Serialising these
// decisions is what makes replay deterministic; the heavy work (the
// controller's decision pass) still runs concurrently on the worker pool.
func (s *Server) dispatch() {
	defer s.dispatcher.Done()
	for {
		select {
		case ev := <-s.events:
			s.handle(ev)
		case <-s.wakec:
			// Live mode only (workers never signal otherwise): one or more
			// batches finished, so retire them and keep their chips busy with
			// whatever is queued, without waiting for the next arrival. Clear
			// each dedup flag before advancing, so a completion landing
			// mid-advance re-arms the hint instead of being lost (the worker
			// sends its result before the hint, so a CAS lost to the window
			// between takeWoken and the Store is observed by the advance).
			for _, c := range s.takeWoken() {
				c.wakePending.Store(false)
				s.onWake(c)
			}
		case ack := <-s.drainc:
			// Every Submit completed before Close flipped draining, so the
			// remaining admitted traffic is all buffered in events.
			for {
				select {
				case ev := <-s.events:
					s.handle(ev)
					continue
				default:
				}
				break
			}
			s.flush()
			close(ack)
			return
		}
	}
}

// takeWoken claims the current set of Live-mode completion hints. Chips
// appear at most once (wakePending), in worker completion order; that
// order only affects how eagerly queues refill, never batch composition,
// which is a pure function of virtual time (and Live mode is outside the
// replay determinism contract anyway).
func (s *Server) takeWoken() []*chip {
	s.wakeMu.Lock()
	w := s.woken
	s.woken = nil
	s.wakeMu.Unlock()
	return w
}

// handle demultiplexes one event-stream entry.
func (s *Server) handle(ev event) {
	if ev.op != nil {
		s.handleOp(ev.op)
		return
	}
	s.process(ev.req)
}

// handleOp executes one fleet operation on the dispatcher goroutine, where
// all chip state is owned.
func (s *Server) handleOp(op *fleetOp) {
	switch {
	case op.add != nil:
		id := len(s.chips)
		c, err := s.newChip(id, *op.add)
		if err != nil {
			op.reply <- fleetOpResult{id: -1, err: err}
			return
		}
		s.chips = append(s.chips, c)
		s.byModel[c.model] = append(s.byModel[c.model], c)
		s.modelsMu.Lock()
		s.models[c.model]++
		s.modelsMu.Unlock()
		s.met.chipsAdded.Inc()
		s.met.fleetChips.Set(float64(s.liveChips()))
		if p := s.cfg.Pulse; p.Enabled() {
			// Ops ride the dispatcher's event stream, so s.lastT (the last
			// arrival's time) is the op's deterministic virtual position.
			p.Publish(pulse.Event{Kind: pulse.KindLifecycle, Time: s.lastT,
				Chip: c.id, Model: c.model, Action: "add", Fleet: s.liveChips()})
		}
		if s.cfg.Logger != nil {
			s.cfg.Logger.Info("chip added", "chip", c.id, "model", c.model)
		}
		op.reply <- fleetOpResult{id: id}

	case op.info:
		op.reply <- fleetOpResult{id: -1, info: s.fleetInfo()}

	default:
		op.reply <- fleetOpResult{id: -1, err: s.removeChip(op.remove)}
	}
}

// liveChips counts the non-removed fleet.
func (s *Server) liveChips() int {
	n := 0
	for _, c := range s.chips {
		if !c.removed {
			n++
		}
	}
	return n
}

// removeChip drains and retires one chip. The synchronous advance to +Inf
// executes every admitted request (queued and in flight) at its natural
// virtual time, so responses are delivered exactly once and the chip's
// accumulators close out deterministically; only then does the chip leave
// the routing table.
func (s *Server) removeChip(id int) error {
	if id < 0 || id >= len(s.chips) {
		return fmt.Errorf("serve: no chip %d", id)
	}
	c := s.chips[id]
	if c.removed {
		return fmt.Errorf("serve: chip %d already removed", id)
	}
	s.advance(c, math.Inf(1), true)
	c.removed = true
	hosts := s.byModel[c.model]
	for i, h := range hosts {
		if h == c {
			s.byModel[c.model] = append(hosts[:i], hosts[i+1:]...)
			break
		}
	}
	if len(s.byModel[c.model]) == 0 {
		delete(s.byModel, c.model)
	}
	s.modelsMu.Lock()
	if s.models[c.model]--; s.models[c.model] == 0 {
		delete(s.models, c.model)
	}
	s.modelsMu.Unlock()
	s.met.chipsRemoved.Inc()
	s.met.fleetChips.Set(float64(s.liveChips()))
	s.met.chipDepth.With(c.label).Set(0)
	if p := s.cfg.Pulse; p.Enabled() {
		p.Publish(pulse.Event{Kind: pulse.KindLifecycle, Time: s.lastT,
			Chip: c.id, Model: c.model, Action: "remove", Fleet: s.liveChips()})
	}
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info("chip removed", "chip", c.id, "model", c.model,
			"served", c.served)
	}
	return nil
}

// fleetInfo snapshots every chip at the dispatcher's current virtual time.
// Observing a still-running batch result first (blocking) establishes the
// happens-before edge that makes the controller reads race-free.
func (s *Server) fleetInfo() []ChipInfo {
	t := s.lastT
	out := make([]ChipInfo, len(s.chips))
	for i, c := range s.chips {
		if b := c.inflight; b != nil && !b.done {
			s.finishBatch(<-c.results)
		}
		out[i] = ChipInfo{
			ID:          c.id,
			Model:       c.model,
			Removed:     c.removed,
			Queue:       len(c.pending),
			Busy:        c.inflight != nil,
			Served:      c.served,
			Batches:     c.batches,
			Reprograms:  c.ctrl.Reprograms(),
			Age:         c.ctrl.Age(t),
			DeadlineAge: c.ctrl.ForcedReprogramAge(),
			Degraded:    c.degraded,
		}
	}
	return out
}

// onWake handles a Live-mode completion signal. Advancing to +Inf retires
// the finished batch and dispatches the next one unconditionally — the
// formation rule (start at max(freeAt, first arrival), coalesce the prefix
// with arrival <= start) is unchanged; only the *when* is eager. Real time
// may lag the chip's virtual finish under overload, so gating on a clock
// read here could strand queued requests until the next arrival.
func (s *Server) onWake(c *chip) {
	s.advance(c, math.Inf(1), false)
	s.met.chipDepth.With(c.label).Set(float64(len(c.pending)))
}

// process handles one arrival: route, admission-control, enqueue (or shed),
// and kick the target chip's virtual-time machinery.
func (s *Server) process(req *Request) {
	req.ID = s.seq
	s.seq++
	// Live-mode submitters stamp arrivals concurrently; clamp them monotone
	// so per-chip virtual time never runs backwards. Replay's single
	// submitter is already monotone and is never clamped.
	if req.Arrival < s.lastT {
		req.Arrival = s.lastT
	}
	s.lastT = req.Arrival
	s.met.requests.Inc()
	if s.tenantsOn {
		req.ten = s.tenant(req.Tenant)
		s.met.tenantRequests.With(req.ten.label).Inc()
	}

	hosts := s.byModel[req.Model]
	if len(hosts) == 0 {
		s.met.errors.Inc()
		req.respond(Response{ID: req.ID, Chip: -1, Err: "odinserve: unknown model " + req.Model})
		return
	}
	t := req.Arrival

	// Tenant quotas gate on *outstanding* counts, which are only exact once
	// every chip has retired the batches whose virtual finish passed t —
	// without the fleet-wide advance, the counts would depend on how
	// eagerly worker results were observed and replay would diverge across
	// worker counts.
	if s.quotaOn {
		s.advanceAll(t)
		if ten := req.ten; ten.quota > 0 && ten.outstanding >= ten.quota {
			s.met.shed.Inc()
			s.met.quotaShed.Inc()
			s.met.tenantShed.With(ten.label).Inc()
			if tr := s.cfg.Tracer; tr.Enabled() {
				tr.At("quota-shed", hosts[0].id, t, t, nil,
					obs.Int64("request", int64(req.ID)),
					obs.String("tenant", ten.label))
			}
			if p := s.cfg.Pulse; p.Enabled() {
				p.Publish(pulse.Event{Kind: pulse.KindShed, Time: t, Chip: -1,
					Model: req.Model, Request: req.ID, Reason: "quota", Tenant: ten.label})
			}
			req.respond(Response{ID: req.ID, Chip: -1, Shed: true})
			return
		}
	}

	// Routers that score occupancy or drift age need exact virtual-time
	// state for every candidate (see the package determinism argument);
	// the quota path already advanced the whole fleet.
	exact := s.router.Exact()
	if exact && !s.quotaOn {
		for _, c := range hosts {
			s.advance(c, t, true)
		}
	}
	if exact {
		// Off-path maintenance: idle near-deadline chips take their write
		// pass now, while Pick steers arrivals elsewhere. Exact state only —
		// the decision must be a pure function of virtual time, and reading
		// controller drift state requires no worker mid-batch.
		s.maintainHosts(hosts, t)
	}
	views := s.viewBuf[:0]
	for _, c := range hosts {
		views = append(views, s.viewOf(c, t, exact))
	}
	s.viewBuf = views[:0] // keep the (possibly grown) backing array
	pick := s.router.Pick(req.Model, t, views)
	if pick < 0 || pick >= len(hosts) {
		panic(fmt.Sprintf("serve: router %s picked out of range", s.router.Name()))
	}
	c := hosts[pick]
	if na, ok := s.router.(nearAware); ok && !na.Near(views[pick]) {
		for i := range views {
			if na.Near(views[i]) {
				s.met.steered.Inc()
				break
			}
		}
	}

	// Observe any completions that are already available; this keeps queue
	// occupancy tight without stalling the accept path.
	s.advance(c, t, false)
	if len(c.pending) >= s.cfg.QueueDepth {
		// The queue looks full, but deferred completions may have virtually
		// freed it. Admission must be exact: synchronously advance to t.
		s.advance(c, t, true)
	}
	if len(c.pending) >= s.cfg.QueueDepth && s.tenantsOn {
		// Priority preemption: a higher-priority arrival evicts the newest
		// queued request of the lowest class below it. Queue state is exact
		// here (the blocking advance above), so the victim choice is a pure
		// function of virtual time.
		s.evictFor(c, req, t)
	}
	if len(c.pending) >= s.cfg.QueueDepth {
		s.met.shed.Inc()
		if s.tenantsOn {
			s.met.tenantShed.With(req.ten.label).Inc()
		}
		// Zero-width marker on the chip's track. Shed decisions are exact
		// under replay (the admission path synchronously advanced to t), so
		// the marker's content is deterministic.
		if tr := s.cfg.Tracer; tr.Enabled() {
			tr.At("shed", c.id, t, t, nil,
				obs.Int64("request", int64(req.ID)),
				obs.String("model", req.Model))
		}
		if p := s.cfg.Pulse; p.Enabled() {
			ev := pulse.Event{Kind: pulse.KindShed, Time: t, Chip: c.id,
				Model: req.Model, Request: req.ID, Reason: "queue"}
			if s.tenantsOn {
				ev.Tenant = req.ten.label
			}
			p.Publish(ev)
		}
		req.respond(Response{ID: req.ID, Chip: c.id, Shed: true})
		return
	}
	s.met.admitted.Inc()
	if s.tenantsOn {
		s.met.tenantAdmitted.With(req.ten.label).Inc()
		req.ten.outstanding++
	}
	s.met.queueDepth.Observe(float64(len(c.pending)))
	c.pending = append(c.pending, req)
	// If the chip is known-idle this dispatches immediately; otherwise the
	// request waits for the in-flight batch's virtual completion.
	s.advance(c, t, false)
	s.met.chipDepth.With(c.label).Set(float64(len(c.pending)))
}

// evictFor makes room on a full queue for a higher-priority arrival: the
// victim is the newest pending request of the lowest priority class
// strictly below the arrival's, and it is shed in the arrival's place.
// No-op when nothing outranks.
func (s *Server) evictFor(c *chip, req *Request, t float64) {
	prio := 0
	if req.ten != nil {
		prio = req.ten.prio
	}
	vi, vp := -1, prio
	for i, r := range c.pending {
		p := 0
		if r.ten != nil {
			p = r.ten.prio
		}
		if p < vp {
			vi, vp = i, p
		} else if vi >= 0 && p == vp {
			vi = i // newest within the lowest class
		}
	}
	if vi < 0 {
		return
	}
	victim := c.pending[vi]
	c.pending = append(c.pending[:vi], c.pending[vi+1:]...)
	s.met.shed.Inc()
	s.met.evicted.Inc()
	if victim.ten != nil {
		s.met.tenantShed.With(victim.ten.label).Inc()
		victim.ten.outstanding--
	}
	if tr := s.cfg.Tracer; tr.Enabled() {
		tr.At("evict", c.id, t, t, nil,
			obs.Int64("request", int64(victim.ID)),
			obs.Int64("by", int64(req.ID)))
	}
	if p := s.cfg.Pulse; p.Enabled() {
		ev := pulse.Event{Kind: pulse.KindShed, Time: t, Chip: c.id,
			Model: victim.Model, Request: victim.ID, Reason: "evict"}
		if victim.ten != nil {
			ev.Tenant = victim.ten.label
		}
		p.Publish(ev)
	}
	victim.respond(Response{ID: victim.ID, Chip: c.id, Shed: true})
}

// advanceAll synchronously advances every live chip to t (in id order, so
// any batch completions book deterministically).
func (s *Server) advanceAll(t float64) {
	for _, c := range s.chips {
		if !c.removed {
			s.advance(c, t, true)
		}
	}
}

// viewOf snapshots one chip for routing. Drift fields are populated only
// on the exact path: reading the controller requires that no worker is
// mid-batch, which the blocking advance guarantees (any remaining
// in-flight batch has its result observed, i.e. done).
func (s *Server) viewOf(c *chip, t float64, exact bool) ChipView {
	v := ChipView{
		Chip:   c.id,
		Queue:  len(c.pending),
		Busy:   c.inflight != nil,
		FreeAt: c.freeAt,
	}
	if exact {
		v.Age = c.ctrl.Age(t)
		v.DeadlineAge = c.ctrl.ForcedReprogramAge()
	}
	return v
}

// maintainHosts runs the router's off-path maintenance policy over the
// candidates: an idle, empty chip the router flags (drift-aware: inside
// the steering margin of its forced deadline) takes its reprogram pass
// immediately. The write stall occupies the chip's idle time — freeAt
// moves past the pass, so a batch formed later starts after it — instead
// of riding on a live batch. Chips are visited in id order on exact
// virtual-time state, so the maintenance schedule replays exactly.
func (s *Server) maintainHosts(hosts []*chip, t float64) {
	for _, c := range hosts {
		if c.inflight != nil || len(c.pending) != 0 || c.freeAt > t {
			continue
		}
		if !s.router.Maintain(s.viewOf(c, t, true)) {
			continue
		}
		energy, lat := c.ctrl.Reprogram(t)
		c.freeAt = t + lat
		c.energySum += energy
		c.latencySum += lat
		s.met.maintenance.Inc()
		s.met.chipReprogram.With(c.label).Inc()
		s.met.chipEnergy.With(c.label).Set(c.energySum)
		if p := s.cfg.Pulse; p.Enabled() {
			// Maintenance runs on the exact path (blocking advance done), so
			// controller reads here are deterministic and race-free.
			p.Publish(pulse.Event{Kind: pulse.KindReprogram, Time: t, Chip: c.id,
				Model: c.model, Pass: "maintenance", Count: c.ctrl.Reprograms(),
				Age: c.ctrl.Age(t)})
		}
		s.noteReprogram(c)
	}
}

// noteReprogram applies the reprogram-budget bookkeeping shared by forced
// (on-path) and maintenance passes.
func (s *Server) noteReprogram(c *chip) {
	if s.cfg.ReprogramBudget > 0 && !c.degraded && c.ctrl.Reprograms() >= s.cfg.ReprogramBudget {
		c.degraded = true
		s.met.chipDegraded.With(c.label).Set(1)
		if s.cfg.Logger != nil {
			s.cfg.Logger.Warn("chip degraded",
				"chip", c.id, "model", c.model,
				"reprograms", c.ctrl.Reprograms(),
				"budget", s.cfg.ReprogramBudget)
		}
	}
}

// advance moves chip c's virtual time forward to t: it observes worker
// results (blocking for the in-flight one when block is set), retires
// batches whose virtual finish has passed, and forms/dispatches successor
// batches. Batch composition depends only on virtual time (arrival
// timestamps and deterministic service times), never on when results
// happened to be observed — see the package comment's determinism argument.
func (s *Server) advance(c *chip, t float64, block bool) {
	for {
		if b := c.inflight; b != nil {
			if !b.done {
				if block {
					s.finishBatch(<-c.results)
				} else {
					select {
					case bb := <-c.results:
						s.finishBatch(bb)
					default:
						return
					}
				}
			}
			if b.finish > t {
				return
			}
			// The batch is virtually complete: retire it. Tenant outstanding
			// counts decrement here — at the virtual finish, not at result
			// observation — so quota checks see occupancy that is a pure
			// function of virtual time.
			if s.tenantsOn {
				for _, r := range b.reqs {
					if r.ten != nil {
						r.ten.outstanding--
					}
				}
			}
			c.freeAt = b.finish
			c.inflight = nil
			continue
		}
		if len(c.pending) == 0 {
			return
		}
		// Chip idle: the next batch starts when work and chip first
		// coincide, and coalesces the waiting prefix present at that
		// virtual instant.
		start := c.freeAt
		if first := c.pending[0].Arrival; first > start {
			start = first
		}
		if start > t {
			return
		}
		n := 0
		for n < len(c.pending) && n < s.cfg.MaxBatch && c.pending[n].Arrival <= start {
			n++
		}
		s.startBatch(c, start, n)
	}
}

// startBatch forms a batch from the first n pending requests and hands it
// to the worker pool. The jobs channel was sized one slot per seed chip;
// a fleet grown past that can make the send block briefly until a worker
// frees a slot — safe, because workers always drain: the per-chip results
// channel (capacity 1, at most one batch in flight per chip) and the
// woken-set wake hint (mutex append + non-blocking 1-slot notify) never
// block a worker, at any fleet size.
func (s *Server) startBatch(c *chip, start float64, n int) {
	reqs := make([]*Request, n)
	copy(reqs, c.pending[:n])
	copy(c.pending, c.pending[n:])
	c.pending = c.pending[:len(c.pending)-n]

	b := &batch{chip: c, id: c.batches, start: start, reqs: reqs}
	if s.cfg.Pulse.Enabled() {
		// Backlog left behind at the batch's start — the pending prefix
		// with arrival <= start (pending is FIFO in clamped arrival order,
		// so the first later arrival ends the count). A pure function of
		// virtual time, unlike len(pending) at result observation; see the
		// batch.depth comment.
		for _, r := range c.pending {
			if r.Arrival > start {
				break
			}
			b.depth++
		}
	}
	c.batches++
	c.inflight = b
	s.met.batches.Inc()
	s.met.batchSize.Observe(float64(n))
	s.met.chipBatches.With(c.label).Inc()
	s.jobs <- b
}

// finishBatch ingests a worker result: computes the batch's virtual finish,
// responds to every rider, and books the chip's deterministic accumulators
// and telemetry. Requests in a batch execute back-to-back, so rider i waits
// an extra i service times.
func (s *Server) finishBatch(b *batch) {
	c := b.chip
	rep := b.rep
	b.finish = b.start + rep.BatchLatency()
	b.done = true
	// Span content is a pure function of the batch (virtual start, riders,
	// deterministic report); only *when* finishBatch observes the result is
	// scheduling-dependent, and canonical export ordering hides that.
	var span *obs.Span
	if tr := s.cfg.Tracer; tr.Enabled() {
		span = tr.At("batch", c.id, b.start, b.finish, nil,
			obs.String("model", c.model),
			obs.Int64("batch", int64(b.id)),
			obs.Int("size", len(b.reqs)),
			obs.Float("energy", rep.BatchEnergy()),
			obs.Bool("reprogrammed", rep.Reprogrammed))
	}
	for i, r := range b.reqs {
		wait := b.start + float64(i)*rep.Latency - r.Arrival
		if span != nil {
			s.cfg.Tracer.At("request", c.id,
				r.Arrival, b.start+float64(i+1)*rep.Latency, span,
				obs.Int64("request", int64(r.ID)),
				obs.Float("wait", wait))
		}
		r.respond(Response{
			ID:           r.ID,
			Chip:         c.id,
			Batch:        b.id,
			Sizes:        rep.Sizes,
			Energy:       rep.Energy,
			Latency:      rep.Latency,
			Wait:         wait,
			Accuracy:     rep.Accuracy,
			Reprogrammed: rep.Reprogrammed,
		})
		s.met.completed.Inc()
		s.met.queueWait.Observe(wait)
	}
	c.served += uint64(len(b.reqs))
	c.energySum += rep.BatchEnergy()
	c.latencySum += rep.BatchLatency()
	s.met.chipEnergy.With(c.label).Set(c.energySum)
	if p := s.cfg.Pulse; p.Enabled() {
		// Everything on the event is a pure function of the batch: its
		// virtual start/finish, the deterministic report, the start-time
		// backlog (b.depth), and the controller's post-batch drift state —
		// the next batch cannot have run (one in flight per chip), and
		// maintenance passes require an idle chip, so Age/Reprograms here
		// are the chip's exact state after batch b regardless of when the
		// dispatcher observed the result.
		ev := pulse.Event{Kind: pulse.KindBatch, Time: b.finish, Chip: c.id,
			Model: c.model, Batch: b.id, Size: len(b.reqs), Queue: b.depth,
			Latency: rep.BatchLatency(), Energy: rep.BatchEnergy(),
			Age: c.ctrl.Age(b.finish), Deadline: c.ctrl.ForcedReprogramAge(),
			Reprogram: rep.Reprogrammed}
		if s.tenantsOn {
			ev.Tenant = batchTenants(b.reqs)
		}
		p.Publish(ev)
		if rep.Reprogrammed {
			p.Publish(pulse.Event{Kind: pulse.KindReprogram, Time: b.finish,
				Chip: c.id, Model: c.model, Pass: "forced",
				Count: c.ctrl.Reprograms(), Age: c.ctrl.Age(b.finish)})
		}
	}
	if rep.PolicyUpdated {
		s.met.chipUpdates.With(c.label).Inc()
	}
	if rep.Reprogrammed {
		s.met.chipReprogram.With(c.label).Add(uint64(rep.ReprogramPasses))
		s.met.reprogramOnPath.Add(uint64(len(b.reqs)))
		s.noteReprogram(c)
	}
}

// batchTenants renders the batch's distinct rider tenant labels, sorted —
// deterministic because it depends only on batch composition.
func batchTenants(reqs []*Request) string {
	var labels []string
	for _, r := range reqs {
		l := tenantLabel(r.Tenant)
		seen := false
		for _, s := range labels {
			if s == l {
				seen = true
				break
			}
		}
		if !seen {
			labels = append(labels, l)
		}
	}
	sort.Strings(labels)
	return strings.Join(labels, ",")
}

// flush drains the whole fleet: every admitted request is executed and
// answered. Chips flush in id order so post-drain accumulations are
// reproducible.
func (s *Server) flush() {
	for _, c := range s.chips {
		s.advance(c, math.Inf(1), true)
		s.met.chipDepth.With(c.label).Set(0)
	}
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info("fleet drained", "chips", len(s.chips))
	}
}
