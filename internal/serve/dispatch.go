package serve

import (
	"math"

	"odin/internal/obs"
)

// dispatch is the single goroutine that owns all routing, admission,
// batching, and completion bookkeeping. Serialising these decisions is what
// makes replay deterministic; the heavy work (the controller's decision
// pass) still runs concurrently on the worker pool.
func (s *Server) dispatch() {
	defer s.dispatcher.Done()
	for {
		select {
		case req := <-s.events:
			s.process(req)
		case c := <-s.wake:
			// Live mode only (workers never signal otherwise): a batch
			// finished, so retire it and keep the chip busy with whatever is
			// queued, without waiting for the next arrival. Clear the dedup
			// flag before advancing, so a completion landing mid-advance
			// re-arms the hint instead of being lost.
			c.wakePending.Store(false)
			s.onWake(c)
		case ack := <-s.drainc:
			// Every Submit completed before Close flipped draining, so the
			// remaining admitted traffic is all buffered in events.
			for {
				select {
				case req := <-s.events:
					s.process(req)
					continue
				default:
				}
				break
			}
			s.flush()
			close(ack)
			return
		}
	}
}

// onWake handles a Live-mode completion signal. Advancing to +Inf retires
// the finished batch and dispatches the next one unconditionally — the
// formation rule (start at max(freeAt, first arrival), coalesce the prefix
// with arrival <= start) is unchanged; only the *when* is eager. Real time
// may lag the chip's virtual finish under overload, so gating on a clock
// read here could strand queued requests until the next arrival.
func (s *Server) onWake(c *chip) {
	s.advance(c, math.Inf(1), false)
	s.met.chipDepth.With(c.label).Set(float64(len(c.pending)))
}

// process handles one arrival: route, admission-control, enqueue (or shed),
// and kick the target chip's virtual-time machinery.
func (s *Server) process(req *Request) {
	req.ID = s.seq
	s.seq++
	// Live-mode submitters stamp arrivals concurrently; clamp them monotone
	// so per-chip virtual time never runs backwards. Replay's single
	// submitter is already monotone and is never clamped.
	if req.Arrival < s.lastT {
		req.Arrival = s.lastT
	}
	s.lastT = req.Arrival
	s.met.requests.Inc()

	hosts := s.byModel[req.Model]
	if len(hosts) == 0 {
		s.met.errors.Inc()
		req.respond(Response{ID: req.ID, Chip: -1, Err: "odinserve: unknown model " + req.Model})
		return
	}
	// Round-robin over the chips hosting this model, advanced per arrival —
	// a deterministic function of the arrival sequence.
	cur := s.rr[req.Model]
	s.rr[req.Model] = cur + 1
	c := hosts[cur%len(hosts)]

	t := req.Arrival
	// Observe any completions that are already available; this keeps queue
	// occupancy tight without stalling the accept path.
	s.advance(c, t, false)
	if len(c.pending) >= s.cfg.QueueDepth {
		// The queue looks full, but deferred completions may have virtually
		// freed it. Admission must be exact: synchronously advance to t.
		s.advance(c, t, true)
	}
	if len(c.pending) >= s.cfg.QueueDepth {
		s.met.shed.Inc()
		// Zero-width marker on the chip's track. Shed decisions are exact
		// under replay (the admission path synchronously advanced to t), so
		// the marker's content is deterministic.
		if tr := s.cfg.Tracer; tr.Enabled() {
			tr.At("shed", c.id, t, t, nil,
				obs.Int64("request", int64(req.ID)),
				obs.String("model", req.Model))
		}
		req.respond(Response{ID: req.ID, Chip: c.id, Shed: true})
		return
	}
	s.met.admitted.Inc()
	s.met.queueDepth.Observe(float64(len(c.pending)))
	c.pending = append(c.pending, req)
	// If the chip is known-idle this dispatches immediately; otherwise the
	// request waits for the in-flight batch's virtual completion.
	s.advance(c, t, false)
	s.met.chipDepth.With(c.label).Set(float64(len(c.pending)))
}

// advance moves chip c's virtual time forward to t: it observes worker
// results (blocking for the in-flight one when block is set), retires
// batches whose virtual finish has passed, and forms/dispatches successor
// batches. Batch composition depends only on virtual time (arrival
// timestamps and deterministic service times), never on when results
// happened to be observed — see the package comment's determinism argument.
func (s *Server) advance(c *chip, t float64, block bool) {
	for {
		if b := c.inflight; b != nil {
			if !b.done {
				if block {
					s.finishBatch(<-c.results)
				} else {
					select {
					case bb := <-c.results:
						s.finishBatch(bb)
					default:
						return
					}
				}
			}
			if b.finish > t {
				return
			}
			c.freeAt = b.finish
			c.inflight = nil
			continue
		}
		if len(c.pending) == 0 {
			return
		}
		// Chip idle: the next batch starts when work and chip first
		// coincide, and coalesces the waiting prefix present at that
		// virtual instant.
		start := c.freeAt
		if first := c.pending[0].Arrival; first > start {
			start = first
		}
		if start > t {
			return
		}
		n := 0
		for n < len(c.pending) && n < s.cfg.MaxBatch && c.pending[n].Arrival <= start {
			n++
		}
		s.startBatch(c, start, n)
	}
}

// startBatch forms a batch from the first n pending requests and hands it
// to the worker pool. The jobs channel holds one slot per chip, so the send
// never blocks.
func (s *Server) startBatch(c *chip, start float64, n int) {
	reqs := make([]*Request, n)
	copy(reqs, c.pending[:n])
	copy(c.pending, c.pending[n:])
	c.pending = c.pending[:len(c.pending)-n]

	b := &batch{chip: c, id: c.batches, start: start, reqs: reqs}
	c.batches++
	c.inflight = b
	s.met.batches.Inc()
	s.met.batchSize.Observe(float64(n))
	s.met.chipBatches.With(c.label).Inc()
	s.jobs <- b
}

// finishBatch ingests a worker result: computes the batch's virtual finish,
// responds to every rider, and books the chip's deterministic accumulators
// and telemetry. Requests in a batch execute back-to-back, so rider i waits
// an extra i service times.
func (s *Server) finishBatch(b *batch) {
	c := b.chip
	rep := b.rep
	b.finish = b.start + rep.BatchLatency()
	b.done = true
	// Span content is a pure function of the batch (virtual start, riders,
	// deterministic report); only *when* finishBatch observes the result is
	// scheduling-dependent, and canonical export ordering hides that.
	var span *obs.Span
	if tr := s.cfg.Tracer; tr.Enabled() {
		span = tr.At("batch", c.id, b.start, b.finish, nil,
			obs.String("model", c.model),
			obs.Int64("batch", int64(b.id)),
			obs.Int("size", len(b.reqs)),
			obs.Float("energy", rep.BatchEnergy()),
			obs.Bool("reprogrammed", rep.Reprogrammed))
	}
	for i, r := range b.reqs {
		wait := b.start + float64(i)*rep.Latency - r.Arrival
		if span != nil {
			s.cfg.Tracer.At("request", c.id,
				r.Arrival, b.start+float64(i+1)*rep.Latency, span,
				obs.Int64("request", int64(r.ID)),
				obs.Float("wait", wait))
		}
		r.respond(Response{
			ID:           r.ID,
			Chip:         c.id,
			Batch:        b.id,
			Sizes:        rep.Sizes,
			Energy:       rep.Energy,
			Latency:      rep.Latency,
			Wait:         wait,
			Accuracy:     rep.Accuracy,
			Reprogrammed: rep.Reprogrammed,
		})
		s.met.completed.Inc()
		s.met.queueWait.Observe(wait)
	}
	c.served += uint64(len(b.reqs))
	c.energySum += rep.BatchEnergy()
	c.latencySum += rep.BatchLatency()
	s.met.chipEnergy.With(c.label).Set(c.energySum)
	if rep.PolicyUpdated {
		s.met.chipUpdates.With(c.label).Inc()
	}
	if rep.Reprogrammed {
		s.met.chipReprogram.With(c.label).Add(uint64(rep.ReprogramPasses))
		if s.cfg.ReprogramBudget > 0 && !c.degraded && c.ctrl.Reprograms() >= s.cfg.ReprogramBudget {
			c.degraded = true
			s.met.chipDegraded.With(c.label).Set(1)
			if s.cfg.Logger != nil {
				s.cfg.Logger.Warn("chip degraded",
					"chip", c.id, "model", c.model,
					"reprograms", c.ctrl.Reprograms(),
					"budget", s.cfg.ReprogramBudget)
			}
		}
	}
}

// flush drains the whole fleet: every admitted request is executed and
// answered. Chips flush in id order so post-drain accumulations are
// reproducible.
func (s *Server) flush() {
	for _, c := range s.chips {
		s.advance(c, math.Inf(1), true)
		s.met.chipDepth.With(c.label).Set(0)
	}
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info("fleet drained", "chips", len(s.chips))
	}
}
