package serve

import (
	"fmt"
	"math"
	"sort"
)

// ChipView is the dispatcher's snapshot of one candidate chip, handed to a
// Router's Pick in chip-id order. Queue/Busy/FreeAt reflect the chip's
// virtual-time state; for routers that declare Exact, the dispatcher has
// synchronously advanced every candidate to the arrival time first, so the
// occupancy numbers are exact (and Age/DeadlineAge are populated — reading
// controller drift state is only safe once no worker is mid-batch, which
// the exact advance guarantees). Non-exact routers see opportunistic
// occupancy and zero drift fields.
type ChipView struct {
	Chip        int     // chip id
	Queue       int     // pending (admitted, waiting) requests
	Busy        bool    // a batch is in flight
	FreeAt      float64 // virtual time the chip last went idle
	Age         float64 // device age at the arrival time (exact routers only)
	DeadlineAge float64 // forced-reprogram age; +Inf when drift never forces (exact routers only)
}

// Router is one pluggable arrival-routing policy. The dispatcher calls
// Pick once per admitted-model arrival with the views of every live chip
// hosting the model; the returned index selects the serving chip. Routers
// run on the dispatcher goroutine, so implementations may keep unguarded
// state (like round-robin cursors) but must be deterministic functions of
// the arrival sequence and the views — replay byte-identity at every
// worker count is the layer's acceptance gate.
type Router interface {
	// Name is the registry key ("rr", "least", "drift", ...).
	Name() string
	// Exact reports whether Pick needs exact virtual-time occupancy. When
	// true the dispatcher blocks on in-flight results to advance every
	// candidate chip to the arrival time before building views; when false
	// views carry whatever the dispatcher has opportunistically observed.
	Exact() bool
	// Pick selects views[i]'s chip for an arrival of the given model at
	// virtual time t. len(views) >= 1; views are in chip-id order.
	Pick(model string, t float64, views []ChipView) int
	// Maintain reports whether an idle, empty chip should take a
	// maintenance reprogram pass now — off the latency path, while Pick is
	// steering arrivals elsewhere. Only consulted for Exact routers, on
	// chips with no queue and no batch in flight.
	Maintain(v ChipView) bool
}

// RouterFactory builds a Router for one server. Factories see the full
// Config so policies can read their knobs (e.g. DriftMargin).
type RouterFactory func(cfg Config) Router

// routerFactories is the process-wide registry. The three built-ins are
// always present; RegisterRouter adds more (init-time, before any
// NewServer call).
var routerFactories = map[string]RouterFactory{
	"rr":    func(Config) Router { return &roundRobin{cur: make(map[string]int)} },
	"least": func(Config) Router { return leastLoaded{} },
	"drift": func(cfg Config) Router {
		m := cfg.DriftMargin
		if m <= 0 || m >= 1 {
			m = DefaultDriftMargin
		}
		return driftAware{margin: m}
	},
}

// DefaultDriftMargin is the fraction of a chip's forced-reprogram deadline
// at which the drift-aware router starts steering arrivals away from it
// (Config.DriftMargin overrides it). Exported so dashboards (`odinserve
// watch`) can compute the same near-deadline verdict client-side.
const DefaultDriftMargin = 0.85

// RegisterRouter adds a routing policy to the registry. Call from init;
// registering a taken name is a programming error.
func RegisterRouter(name string, f RouterFactory) {
	if name == "" || f == nil {
		panic("serve: RegisterRouter needs a name and a factory")
	}
	if _, dup := routerFactories[name]; dup {
		panic(fmt.Sprintf("serve: RegisterRouter called twice for %q", name))
	}
	routerFactories[name] = f
}

// RouterNames lists the registered routing policies, sorted.
func RouterNames() []string {
	out := make([]string, 0, len(routerFactories))
	for name := range routerFactories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// newRouter resolves cfg.Router ("" selects "rr", the replay-compatible
// baseline) against the registry.
func newRouter(cfg Config) (Router, error) {
	name := cfg.Router
	if name == "" {
		name = "rr"
	}
	f, ok := routerFactories[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown router %q (have %v)", name, RouterNames())
	}
	return f(cfg), nil
}

// roundRobin is the original routing policy: rotate over the chips hosting
// each model, advanced once per arrival. It ignores occupancy entirely, so
// it needs no exact state — and stays byte-compatible with every replay
// recorded before routers were pluggable.
type roundRobin struct {
	cur map[string]int // per-model cursor
}

func (r *roundRobin) Name() string { return "rr" }
func (r *roundRobin) Exact() bool  { return false }

func (r *roundRobin) Pick(model string, t float64, views []ChipView) int {
	cur := r.cur[model]
	r.cur[model] = cur + 1
	return cur % len(views)
}

func (r *roundRobin) Maintain(ChipView) bool { return false }

// leastLoaded routes each arrival to the candidate with the fewest
// outstanding requests (queue plus the in-flight batch), ties broken by
// chip id. Occupancy must be exact or the choice would depend on how
// eagerly worker results happened to be observed.
type leastLoaded struct{}

func (leastLoaded) Name() string { return "least" }
func (leastLoaded) Exact() bool  { return true }

func (leastLoaded) Pick(model string, t float64, views []ChipView) int {
	best, bestLoad := 0, viewLoad(views[0], t)
	for i := 1; i < len(views); i++ {
		if l := viewLoad(views[i], t); l < bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}

func (leastLoaded) Maintain(ChipView) bool { return false }

// viewLoad is a chip's outstanding-work score: queued requests plus one
// when a batch is in flight or the chip is committed (virtually busy)
// until after t — e.g. a maintenance write pass still in progress.
func viewLoad(v ChipView, t float64) int {
	load := v.Queue
	if v.Busy || v.FreeAt > t {
		load++
	}
	return load
}

// driftAware is least-loaded routing with a drift penalty: chips whose
// device age is within margin of their forced-reprogram deadline
// (accuracy.ReprogramDeadline at the smallest OU — the age where
// Algorithm 1 lines 7-8 *force* a write pass onto whatever batch is
// running) are avoided while any fresher candidate exists, and idle
// near-deadline chips take their write pass as off-path maintenance
// instead. The reprogram stall then overlaps steered-away idle time
// rather than landing on the latency path.
type driftAware struct {
	margin float64 // fraction of the deadline at which steering starts
}

func (driftAware) Name() string { return "drift" }
func (driftAware) Exact() bool  { return true }

// Near reports whether the chip is inside the steering margin of its
// forced-reprogram deadline.
func (d driftAware) Near(v ChipView) bool {
	return !math.IsInf(v.DeadlineAge, 1) && v.Age >= d.margin*v.DeadlineAge
}

func (d driftAware) Pick(model string, t float64, views []ChipView) int {
	best := 0
	bestNear, bestLoad := d.Near(views[0]), viewLoad(views[0], t)
	for i := 1; i < len(views); i++ {
		near, load := d.Near(views[i]), viewLoad(views[i], t)
		if near != bestNear {
			if bestNear {
				best, bestNear, bestLoad = i, near, load
			}
			continue
		}
		if load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

func (d driftAware) Maintain(v ChipView) bool { return d.Near(v) }

// nearAware lets the dispatcher count steered arrivals (a near-deadline
// candidate existed and the pick avoided it) without knowing the policy.
type nearAware interface {
	Near(v ChipView) bool
}
