package serve

import (
	"math"
	"strings"
	"testing"
	"time"

	"odin/internal/clock"
	"odin/internal/core"
	"odin/internal/dnn"
	"odin/internal/policy"
)

// tinyModel is a 3-layer conv stack small enough that one decision pass
// costs microseconds; serving behavior, not workload scale, is under test.
func tinyModel(name string) *dnn.Model {
	return &dnn.Model{
		Name:          name,
		Dataset:       dnn.Dataset{Name: "toy", InputH: 8, InputW: 8, Channels: 3, Classes: 10},
		IdealAccuracy: 0.9,
		Layers: []dnn.Layer{
			{Name: "c1", Type: dnn.Conv, KernelH: 3, KernelW: 3, InChannels: 3, OutChannels: 8, InH: 8, InW: 8, Stride: 1},
			{Name: "c2", Type: dnn.Conv, KernelH: 3, KernelW: 3, InChannels: 8, OutChannels: 8, InH: 8, InW: 8, Stride: 1},
			{Name: "c3", Type: dnn.Conv, KernelH: 3, KernelW: 3, InChannels: 8, OutChannels: 4, InH: 8, InW: 8, Stride: 1},
		},
	}
}

// tinyServer builds a started fleet of n tiny-model chips on a virtual
// clock.
func tinyServer(t testing.TB, n int, cfg Config) (*Server, *clock.Virtual) {
	t.Helper()
	clk := clock.NewVirtual(0)
	cfg.Clock = clk
	for i := 0; i < n; i++ {
		cfg.Chips = append(cfg.Chips, ChipConfig{Custom: tinyModel("tiny")})
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	return s, clk
}

// TestAdmissionControl drives arrivals that all land at t=0 on one chip:
// the first dispatches immediately (the chip is idle), the next QueueDepth
// fill the queue, and everything beyond sheds — newest arrivals first
// rejected (tail drop). The table pins the exact shed set.
func TestAdmissionControl(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name       string
		queueDepth int
		submit     int
		wantShed   []uint64 // request ids expected to shed
	}{
		{"fill-to-capacity-exact", 2, 3, nil},
		{"one-over", 2, 4, []uint64{3}},
		{"tail-drop-ordering", 2, 6, []uint64{3, 4, 5}},
		{"depth-one", 1, 4, []uint64{2, 3}},
		{"no-overflow-single", 4, 1, nil},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			s, _ := tinyServer(t, 1, Config{QueueDepth: tc.queueDepth, MaxBatch: 64})
			var chans []<-chan Response
			for i := 0; i < tc.submit; i++ {
				chans = append(chans, s.Submit("tiny"))
			}
			s.Close()
			var shed []uint64
			for i, ch := range chans {
				r := <-ch
				if r.ID != uint64(i) {
					t.Errorf("request %d answered with id %d", i, r.ID)
				}
				if r.Shed {
					shed = append(shed, r.ID)
				} else if r.Err != "" {
					t.Errorf("request %d unexpected error %q", i, r.Err)
				}
			}
			if len(shed) != len(tc.wantShed) {
				t.Fatalf("shed ids %v, want %v", shed, tc.wantShed)
			}
			for i := range shed {
				if shed[i] != tc.wantShed[i] {
					t.Fatalf("shed ids %v, want %v", shed, tc.wantShed)
				}
			}
		})
	}
}

// TestBatchCoalescing checks that requests queued behind a busy chip ride
// one coalesced decision pass: with all arrivals at t=0, request 0 runs
// alone and requests 1..Q share the second batch (same batch id, same OU
// sizes, same per-request energy).
func TestBatchCoalescing(t *testing.T) {
	t.Parallel()
	s, _ := tinyServer(t, 1, Config{QueueDepth: 4, MaxBatch: 8})
	var chans []<-chan Response
	for i := 0; i < 5; i++ {
		chans = append(chans, s.Submit("tiny"))
	}
	s.Close()
	first := <-chans[0]
	if first.Shed || first.Batch != 0 {
		t.Fatalf("request 0 = %+v, want batch 0", first)
	}
	var rest []Response
	for _, ch := range chans[1:] {
		rest = append(rest, <-ch)
	}
	for i, r := range rest {
		if r.Shed || r.Err != "" {
			t.Fatalf("request %d not served: %+v", i+1, r)
		}
		if r.Batch != 1 {
			t.Errorf("request %d rode batch %d, want coalesced batch 1", i+1, r.Batch)
		}
		// Batch-mates share one decision pass, so their energies must be
		// bit-identical, not merely close.
		if math.Float64bits(r.Energy) != math.Float64bits(rest[0].Energy) {
			t.Errorf("request %d energy %g differs from batch-mate %g", i+1, r.Energy, rest[0].Energy)
		}
	}
}

// TestRoundRobinRouting spreads same-model traffic across two chips in
// config order.
func TestRoundRobinRouting(t *testing.T) {
	t.Parallel()
	s, _ := tinyServer(t, 2, Config{QueueDepth: 8})
	var chans []<-chan Response
	for i := 0; i < 6; i++ {
		chans = append(chans, s.Submit("tiny"))
	}
	s.Close()
	for i, ch := range chans {
		r := <-ch
		if r.Shed || r.Err != "" {
			t.Fatalf("request %d not served: %+v", i, r)
		}
		if want := i % 2; r.Chip != want {
			t.Errorf("request %d served by chip %d, want %d", i, r.Chip, want)
		}
	}
}

// TestDrainDeliversEveryAdmittedRequestExactlyOnce floods a small fleet,
// closes mid-stream, and requires one response per submission: admitted
// requests complete with decisions, shed ones carry the rejection, and
// nothing is dropped or duplicated (the buffered channel would panic a
// second send... a missing one would hang the receive).
func TestDrainDeliversEveryAdmittedRequestExactlyOnce(t *testing.T) {
	t.Parallel()
	s, _ := tinyServer(t, 3, Config{QueueDepth: 2, MaxBatch: 4})
	const n = 40
	var chans []<-chan Response
	for i := 0; i < n; i++ {
		chans = append(chans, s.Submit("tiny"))
	}
	s.Close()
	served, shed := 0, 0
	for i, ch := range chans {
		r := <-ch
		switch {
		case r.Err != "":
			t.Fatalf("request %d errored: %q", i, r.Err)
		case r.Shed:
			shed++
		default:
			served++
			if len(r.Sizes) != 3 {
				t.Errorf("request %d served without per-layer decisions: %+v", i, r)
			}
			if !(r.Latency > 0) || !(r.Energy > 0) {
				t.Errorf("request %d has non-positive costs: %+v", i, r)
			}
		}
		// Exactly-once: a second receive must find the channel empty.
		select {
		case extra := <-ch:
			t.Fatalf("request %d received a second response: %+v", i, extra)
		default:
		}
	}
	if served+shed != n {
		t.Fatalf("served %d + shed %d != %d submitted", served, shed, n)
	}
	if served == 0 {
		t.Fatal("drain served nothing")
	}
}

// TestLiveDrainCompletes regression-tests Live-mode shutdown. Workers hint
// completions on the wake channel, which the dispatcher stops reading once
// drain begins; batches retired through the arrival path leave stale wakes
// behind. Without per-chip wake dedup those stale wakes fill the channel, a
// worker blocks sending its hint, and Close deadlocks with queued batches
// at flush (most easily with one chip and one worker). Close must return
// and every admitted request must hold its response.
func TestLiveDrainCompletes(t *testing.T) {
	t.Parallel()
	for round := 0; round < 10; round++ {
		s, _ := tinyServer(t, 1, Config{QueueDepth: 64, MaxBatch: 2, Workers: 1, Live: true})
		var chans []<-chan Response
		for i := 0; i < 32; i++ {
			chans = append(chans, s.Submit("tiny"))
		}
		closed := make(chan struct{})
		go func() { s.Close(); close(closed) }()
		select {
		case <-closed:
		case <-time.After(30 * time.Second):
			t.Fatal("Close deadlocked draining a Live-mode fleet")
		}
		for i, ch := range chans {
			select {
			case r := <-ch:
				if r.Err != "" {
					t.Fatalf("round %d request %d errored: %q", round, i, r.Err)
				}
			default:
				t.Fatalf("round %d request %d has no response after drain", round, i)
			}
		}
	}
}

func TestUnknownModelErrors(t *testing.T) {
	t.Parallel()
	s, _ := tinyServer(t, 1, Config{})
	ch := s.Submit("no-such-model")
	s.Close()
	r := <-ch
	if r.Err == "" || r.Shed {
		t.Fatalf("unknown model answered %+v, want routing error", r)
	}
}

func TestSubmitAfterCloseRejects(t *testing.T) {
	t.Parallel()
	s, _ := tinyServer(t, 1, Config{})
	s.Close()
	r := <-s.Submit("tiny")
	if r.Err == "" {
		t.Fatalf("post-close submit answered %+v, want draining error", r)
	}
}

func TestTelemetryCountsConsistent(t *testing.T) {
	t.Parallel()
	s, _ := tinyServer(t, 1, Config{QueueDepth: 2, MaxBatch: 8})
	var chans []<-chan Response
	for i := 0; i < 10; i++ {
		chans = append(chans, s.Submit("tiny"))
	}
	s.Close()
	for _, ch := range chans {
		<-ch
	}
	var sb strings.Builder
	if err := s.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"odinserve_requests_total 10",
		"odinserve_admitted_total 3", // 1 dispatched immediately + 2 queued
		"odinserve_shed_total 7",
		`odinserve_chip_batches_total{chip="0"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}

// TestChipStatsAndBudget exercises Stats and the reprogram-budget plumbing
// on a drained fleet.
func TestChipStatsAndBudget(t *testing.T) {
	t.Parallel()
	s, _ := tinyServer(t, 2, Config{QueueDepth: 8, ReprogramBudget: 1})
	var chans []<-chan Response
	for i := 0; i < 8; i++ {
		chans = append(chans, s.Submit("tiny"))
	}
	s.Close()
	for _, ch := range chans {
		<-ch
	}
	stats := s.Stats()
	if len(stats) != 2 {
		t.Fatalf("got %d chip stats, want 2", len(stats))
	}
	var total uint64
	for _, st := range stats {
		total += st.Served
		if st.Model != "tiny" {
			t.Errorf("chip %d model %q", st.ID, st.Model)
		}
		if st.Served > 0 && !(st.Energy > 0) {
			t.Errorf("chip %d served %d requests with zero energy", st.ID, st.Served)
		}
	}
	if total != 8 {
		t.Fatalf("fleet served %d, want 8", total)
	}
}

// probeLatency measures the tiny model's per-inference service latency on a
// fresh controller, for calibrating trace rates against service capacity.
func probeLatency(t testing.TB) float64 {
	t.Helper()
	sys := core.DefaultSystem()
	wl, err := sys.Prepare(tinyModel("probe"))
	if err != nil {
		t.Fatal(err)
	}
	pol := policy.New(policy.Config{Grid: sys.Grid(), Seed: 1})
	ctrl, err := core.NewController(sys, wl, pol, core.ControllerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return ctrl.RunInference(0).Latency
}
