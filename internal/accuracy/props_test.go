package accuracy

import (
	"fmt"
	"math"
	"testing"

	"odin/internal/check"
	"odin/internal/ou"
	"odin/internal/reram"
)

// accCase is one generated surrogate scenario: a layer position, two OU
// sizes ordered component-wise comparisons can use, and two device ages.
type accCase struct {
	Layer, Total     int     // 0 <= Layer < Total
	R1, C1, R2, C2   int     // level indices on DefaultGrid(128)
	AgeExp1, AgeExp2 float64 // age = T0 · 10^AgeExp
}

func genAccCase() check.Gen[accCase] {
	return check.Gen[accCase]{
		Generate: func(t *check.T) accCase {
			total := 1 + t.Rng.Intn(16)
			return accCase{
				Layer: t.Rng.Intn(total), Total: total,
				R1: t.Rng.Intn(6), C1: t.Rng.Intn(6),
				R2: t.Rng.Intn(6), C2: t.Rng.Intn(6),
				AgeExp1: t.Rng.Float64() * 8,
				AgeExp2: t.Rng.Float64() * 8,
			}
		},
		Shrink: func(c accCase) []accCase {
			var out []accCase
			mutInt := func(v, toward int, set func(*accCase, int)) {
				for _, s := range check.ShrinkInt(v, toward) {
					m := c
					set(&m, s)
					out = append(out, m)
				}
			}
			if c.Total > 1 {
				m := c
				m.Total, m.Layer = 1, 0
				out = append(out, m)
			}
			mutInt(c.Layer, 0, func(m *accCase, v int) { m.Layer = v })
			mutInt(c.R1, 0, func(m *accCase, v int) { m.R1 = v })
			mutInt(c.C1, 0, func(m *accCase, v int) { m.C1 = v })
			mutInt(c.R2, 0, func(m *accCase, v int) { m.R2 = v })
			mutInt(c.C2, 0, func(m *accCase, v int) { m.C2 = v })
			for _, s := range check.ShrinkFloat(c.AgeExp1, 0) {
				m := c
				m.AgeExp1 = s
				out = append(out, m)
			}
			for _, s := range check.ShrinkFloat(c.AgeExp2, 0) {
				m := c
				m.AgeExp2 = s
				out = append(out, m)
			}
			return out
		},
	}
}

func propModel() (Model, ou.Grid) {
	return Default(reram.DefaultDeviceParams()), ou.DefaultGrid(128)
}

func age(m Model, exp float64) float64 { return m.Device.T0 * math.Pow(10, exp) }

// TestPropNFMonotoneInSizeAndAge pins the surrogate's central metamorphic
// law: the non-ideality factor never decreases when either OU dimension
// grows (longer IR-drop paths, more aggregate current) or when the device
// ages (conductance drift only accumulates).
func TestPropNFMonotoneInSizeAndAge(t *testing.T) {
	t.Parallel()
	m, grid := propModel()
	check.Run(t, genAccCase(), func(c accCase) error {
		t1 := age(m, c.AgeExp1)
		rLo, rHi := c.R1, c.R2
		if rLo > rHi {
			rLo, rHi = rHi, rLo
		}
		cLo, cHi := c.C1, c.C2
		if cLo > cHi {
			cLo, cHi = cHi, cLo
		}
		small, big := grid.SizeAt(rLo, cLo), grid.SizeAt(rHi, cHi)
		nfS, nfB := m.NF(c.Layer, c.Total, small, t1), m.NF(c.Layer, c.Total, big, t1)
		if nfS > nfB*(1+1e-12) {
			return fmt.Errorf("NF dropped with OU size: %v→%g vs %v→%g (layer %d/%d, t=%g)",
				small, nfS, big, nfB, c.Layer, c.Total, t1)
		}
		tLo, tHi := t1, age(m, c.AgeExp2)
		if tLo > tHi {
			tLo, tHi = tHi, tLo
		}
		nfY, nfO := m.NF(c.Layer, c.Total, small, tLo), m.NF(c.Layer, c.Total, small, tHi)
		if nfY > nfO*(1+1e-12) {
			return fmt.Errorf("NF dropped with age: t=%g→%g vs t=%g→%g (%v, layer %d/%d)",
				tLo, nfY, tHi, nfO, small, c.Layer, c.Total)
		}
		return nil
	})
}

// TestPropIRFractionAndLossBounded pins the range contracts: the IR-drop
// fraction is a proper fraction, the loss stays within [0, MaxLoss] ⊆ [0,1]
// and never decreases with drift age, and accuracy stays within [0, ideal].
func TestPropIRFractionAndLossBounded(t *testing.T) {
	t.Parallel()
	m, grid := propModel()
	check.Run(t, genAccCase(), func(c accCase) error {
		s := grid.SizeAt(c.R1, c.C1)
		if ir := m.IRFraction(s); !(ir > 0) || !(ir < 1) {
			return fmt.Errorf("IRFraction(%v) = %g outside (0,1)", s, ir)
		}
		sizes := []ou.Size{s, grid.SizeAt(c.R2, c.C2)}
		tLo, tHi := age(m, c.AgeExp1), age(m, c.AgeExp2)
		if tLo > tHi {
			tLo, tHi = tHi, tLo
		}
		lossLo, lossHi := m.Loss(sizes, tLo), m.Loss(sizes, tHi)
		for _, loss := range []float64{lossLo, lossHi} {
			if loss < 0 || loss > m.MaxLoss || m.MaxLoss > 1 {
				return fmt.Errorf("loss %g outside [0, MaxLoss=%g] ⊆ [0,1]", loss, m.MaxLoss)
			}
		}
		if lossLo > lossHi*(1+1e-12) {
			return fmt.Errorf("loss dropped with age: %g at t=%g vs %g at t=%g", lossLo, tLo, lossHi, tHi)
		}
		const ideal = 0.91
		if acc := m.Accuracy(ideal, sizes, tHi); acc < 0 || acc > ideal {
			return fmt.Errorf("accuracy %g outside [0, %g]", acc, ideal)
		}
		return nil
	})
}

// TestPropLossMonotoneInOUSize pins that growing any layer's OU
// component-wise never reduces the estimated loss (the worst-layer NF can
// only rise).
func TestPropLossMonotoneInOUSize(t *testing.T) {
	t.Parallel()
	m, grid := propModel()
	check.Run(t, genAccCase(), func(c accCase) error {
		rLo, rHi := c.R1, c.R2
		if rLo > rHi {
			rLo, rHi = rHi, rLo
		}
		cLo, cHi := c.C1, c.C2
		if cLo > cHi {
			cLo, cHi = cHi, cLo
		}
		t1 := age(m, c.AgeExp1)
		other := grid.SizeAt(c.Layer%6, c.Total%6) // an arbitrary second layer, held fixed
		small := []ou.Size{other, grid.SizeAt(rLo, cLo)}
		big := []ou.Size{other, grid.SizeAt(rHi, cHi)}
		ls, lb := m.Loss(small, t1), m.Loss(big, t1)
		if ls > lb*(1+1e-12) {
			return fmt.Errorf("loss dropped when layer 1 grew %v→%v: %g vs %g (t=%g)",
				small[1], big[1], ls, lb, t1)
		}
		return nil
	})
}

// TestPropSatisfiesConsistency pins the internal consistency of the three
// constraint views: Satisfies ⟺ NF < η, the MaxAllowedIR prune bound agrees
// with Satisfies away from the float boundary, and AnySatisfiable matches a
// brute-force scan of the grid.
func TestPropSatisfiesConsistency(t *testing.T) {
	t.Parallel()
	m, grid := propModel()
	check.Run(t, genAccCase(), func(c accCase) error {
		s := grid.SizeAt(c.R1, c.C1)
		t1 := age(m, c.AgeExp1)
		sat := m.Satisfies(c.Layer, c.Total, s, t1)
		if nf := m.NF(c.Layer, c.Total, s, t1); sat != (nf < m.Eta) {
			return fmt.Errorf("Satisfies=%v but NF=%g vs eta=%g (%v, layer %d/%d, t=%g)",
				sat, nf, m.Eta, s, c.Layer, c.Total, t1)
		}
		// The prune bound divides where NF multiplies; skip assertions within
		// a few ulps of the boundary where the two roundings may disagree.
		bound := m.MaxAllowedIR(c.Layer, c.Total, t1)
		ir := m.IRFraction(s)
		if math.Abs(ir-bound) > 1e-9*bound && sat != (ir < bound) {
			return fmt.Errorf("MaxAllowedIR bound %g disagrees with Satisfies=%v at IR=%g (%v, layer %d/%d, t=%g)",
				bound, sat, ir, s, c.Layer, c.Total, t1)
		}
		any := m.AnySatisfiable(c.Layer, c.Total, grid, t1)
		brute := false
		for _, gs := range grid.Sizes() {
			if m.Satisfies(c.Layer, c.Total, gs, t1) {
				brute = true
				break
			}
		}
		if any != brute {
			return fmt.Errorf("AnySatisfiable=%v but brute-force scan says %v (layer %d/%d, t=%g)",
				any, brute, c.Layer, c.Total, t1)
		}
		return nil
	})
}

// TestPropReprogramDeadlineInverse pins that the analytic deadline really is
// the η crossing: the configuration satisfies η just before the deadline and
// violates it just after; a deadline of t₀ means the size is infeasible even
// on a fresh device.
func TestPropReprogramDeadlineInverse(t *testing.T) {
	t.Parallel()
	m, grid := propModel()
	check.Run(t, genAccCase(), func(c accCase) error {
		s := grid.SizeAt(c.R1, c.C1)
		d := m.ReprogramDeadline(c.Layer, c.Total, s)
		if math.IsInf(d, 1) {
			return nil // drift-free device; unreachable with Table II defaults
		}
		if d < m.Device.T0 {
			return fmt.Errorf("deadline %g before initial programming t0=%g", d, m.Device.T0)
		}
		if d <= m.Device.T0*(1+1e-12) {
			if m.Satisfies(c.Layer, c.Total, s, m.Device.T0) {
				return fmt.Errorf("deadline t0 but %v satisfies eta on a fresh device (layer %d/%d)",
					s, c.Layer, c.Total)
			}
			return nil
		}
		if !m.Satisfies(c.Layer, c.Total, s, d*(1-1e-6)) {
			return fmt.Errorf("%v violates eta before its deadline %g (layer %d/%d)", s, d, c.Layer, c.Total)
		}
		if m.Satisfies(c.Layer, c.Total, s, d*(1+1e-6)) {
			return fmt.Errorf("%v still satisfies eta after its deadline %g (layer %d/%d)", s, d, c.Layer, c.Total)
		}
		return nil
	})
}
