package accuracy

import (
	"math"
	"testing"
	"testing/quick"

	"odin/internal/ou"
	"odin/internal/reram"
)

func defaultModel() Model { return Default(reram.DefaultDeviceParams()) }

func TestDefaultValid(t *testing.T) {
	t.Parallel()
	if err := defaultModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	t.Parallel()
	mutations := []func(*Model){
		func(m *Model) { m.Eta = 0 },
		func(m *Model) { m.Eta = 1 },
		func(m *Model) { m.LossScale = 0 },
		func(m *Model) { m.LossPower = 0 },
		func(m *Model) { m.MaxLoss = 1.5 },
		func(m *Model) { m.Sens.WMin = m.Sens.WMax + 1 },
		func(m *Model) { m.Sens.WMax = 0 },
		func(m *Model) { m.Sens.Decay = -1 },
		func(m *Model) { m.Device.GOn = 0 },
	}
	for i, mutate := range mutations {
		m := defaultModel()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSensitivityWeightMonotoneDecreasing(t *testing.T) {
	t.Parallel()
	s := DefaultSensitivity()
	const total = 20
	prev := math.Inf(1)
	for j := 0; j < total; j++ {
		w := s.Weight(j, total)
		if w >= prev {
			t.Fatalf("weight not decreasing at layer %d: %v >= %v", j, w, prev)
		}
		if w < s.WMin || w > s.WMax {
			t.Fatalf("weight %v outside [%v,%v]", w, s.WMin, s.WMax)
		}
		prev = w
	}
	if s.Weight(0, total) != s.WMax {
		t.Fatalf("first layer weight %v, want WMax", s.Weight(0, total))
	}
}

func TestSensitivitySingleLayer(t *testing.T) {
	t.Parallel()
	s := DefaultSensitivity()
	if s.Weight(0, 1) != s.WMax {
		t.Fatal("single-layer network should use WMax")
	}
}

func TestSensitivityPanics(t *testing.T) {
	t.Parallel()
	s := DefaultSensitivity()
	for _, fn := range []func(){
		func() { s.Weight(-1, 5) },
		func() { s.Weight(5, 5) },
		func() { s.Weight(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestIRFractionMatchesEq4ForSmallOUs(t *testing.T) {
	t.Parallel()
	m := defaultModel()
	// For small OUs the area factor is negligible and IRFraction must track
	// ΔG/G_ON from reram's literal Eq. 4 closely.
	for _, s := range []ou.Size{{R: 4, C: 4}, {R: 8, C: 4}, {R: 16, C: 16}} {
		want := m.Device.NonIdealityFraction(s.R, s.C, m.Device.T0)
		if got := m.IRFraction(s); math.Abs(got-want)/want > 0.07 {
			t.Fatalf("IRFraction(%v) = %v, want ≈ Eq.4 value %v", s, got, want)
		}
	}
	// For the full crossbar the area term dominates: well above Eq. 4.
	eq4 := m.Device.NonIdealityFraction(128, 128, m.Device.T0)
	if got := m.IRFraction(ou.Size{R: 128, C: 128}); got < 2*eq4 {
		t.Fatalf("area term missing: IRFraction(128×128) = %v vs Eq.4 %v", got, eq4)
	}
}

func TestIRFractionMonotone(t *testing.T) {
	t.Parallel()
	m := defaultModel()
	prev := -1.0
	for _, sum := range []ou.Size{{R: 4, C: 4}, {R: 8, C: 4}, {R: 8, C: 8}, {R: 16, C: 16}, {R: 64, C: 64}, {R: 128, C: 128}} {
		f := m.IRFraction(sum)
		if f <= prev {
			t.Fatalf("IRFraction not increasing at %v", sum)
		}
		prev = f
	}
}

func TestAmplification(t *testing.T) {
	t.Parallel()
	m := defaultModel()
	if a := m.Amplification(0.5); a != 1 {
		t.Fatalf("amplification before t0 = %v, want 1", a)
	}
	if a := m.Amplification(1e5); math.Abs(a-10) > 1e-9 {
		t.Fatalf("A(1e5) = %v, want 10 (10^(5·0.2))", a)
	}
}

func TestNFComposition(t *testing.T) {
	t.Parallel()
	m := defaultModel()
	s := ou.Size{R: 16, C: 16}
	want := m.Sens.Weight(2, 10) * m.IRFraction(s) * m.Amplification(1e4)
	if got := m.NF(2, 10, s, 1e4); math.Abs(got-want) > 1e-15 {
		t.Fatalf("NF = %v, want %v", got, want)
	}
}

func TestSatisfiesThreshold(t *testing.T) {
	t.Parallel()
	m := defaultModel()
	// At t₀ every small-to-moderate grid size passes for a mid-depth layer,
	// while the largest-area OUs (full crossbar and its 64×128 neighbours)
	// are already infeasible — as in the paper's figures, where 128×128
	// never appears.
	g := ou.DefaultGrid(128)
	for _, s := range g.Sizes() {
		sat := m.Satisfies(10, 20, s, m.Device.T0)
		if s.Product() <= 2048 && !sat {
			t.Fatalf("size %v should satisfy η at t0 for mid layer", s)
		}
		if s.Product() >= 128*128 && sat {
			t.Fatalf("full-crossbar OU %v should violate η even at t0", s)
		}
	}
	// At large t even the smallest size eventually fails.
	if m.Satisfies(0, 20, g.SizeAt(0, 0), 1e12) {
		t.Fatal("4×4 should violate η far past the horizon")
	}
}

func TestEarlyLayersTighter(t *testing.T) {
	t.Parallel()
	m := defaultModel()
	s := ou.Size{R: 32, C: 32}
	const tt = 1e6
	if m.NF(0, 20, s, tt) <= m.NF(19, 20, s, tt) {
		t.Fatal("first layer must see higher non-ideality than last")
	}
}

func TestMaxAllowedIRConsistent(t *testing.T) {
	t.Parallel()
	m := defaultModel()
	g := ou.DefaultGrid(128)
	const j, total, tt = 3, 20, 1e5
	bound := m.MaxAllowedIR(j, total, tt)
	for _, s := range g.Sizes() {
		sat := m.Satisfies(j, total, s, tt)
		underBound := m.IRFraction(s) < bound
		if sat != underBound {
			t.Fatalf("bound inconsistent at %v: satisfies=%v bound=%v", s, sat, underBound)
		}
	}
}

func TestAnySatisfiableUsesSmallestSize(t *testing.T) {
	t.Parallel()
	m := defaultModel()
	g := ou.DefaultGrid(128)
	// Find a time where 4×4 passes but 8×8 fails for layer 0 — possible by
	// monotonicity; AnySatisfiable must still be true there.
	deadline44 := m.ReprogramDeadline(0, 20, g.SizeAt(0, 0))
	deadline88 := m.ReprogramDeadline(0, 20, ou.Size{R: 8, C: 8})
	if !(deadline88 < deadline44) {
		t.Fatal("larger OU should violate earlier")
	}
	mid := math.Sqrt(deadline88 * deadline44)
	if !m.AnySatisfiable(0, 20, g, mid) {
		t.Fatal("4×4 should still satisfy between the deadlines")
	}
	if m.AnySatisfiable(0, 20, g, deadline44*2) {
		t.Fatal("nothing should satisfy past the 4×4 deadline")
	}
}

func TestReprogramDeadlineInvertsNF(t *testing.T) {
	t.Parallel()
	m := defaultModel()
	s := ou.Size{R: 16, C: 16}
	const j, total = 0, 20
	d := m.ReprogramDeadline(j, total, s)
	if d <= m.Device.T0 || math.IsInf(d, 1) {
		t.Fatalf("deadline %v implausible", d)
	}
	// Just before: satisfied. Just after: violated.
	if !m.Satisfies(j, total, s, d*0.99) {
		t.Fatal("NF should satisfy just before the deadline")
	}
	if m.Satisfies(j, total, s, d*1.01) {
		t.Fatal("NF should violate just after the deadline")
	}
}

func TestReprogramDeadlineOrdering(t *testing.T) {
	t.Parallel()
	m := defaultModel()
	// Smaller OUs buy strictly more drift headroom (the paper's central
	// mechanism).
	d44 := m.ReprogramDeadline(5, 20, ou.Size{R: 4, C: 4})
	d88 := m.ReprogramDeadline(5, 20, ou.Size{R: 8, C: 8})
	d1616 := m.ReprogramDeadline(5, 20, ou.Size{R: 16, C: 16})
	if !(d44 > d88 && d88 > d1616) {
		t.Fatalf("deadlines not ordered: %v, %v, %v", d44, d88, d1616)
	}
}

func TestReprogramDeadlineEdgeCases(t *testing.T) {
	t.Parallel()
	m := defaultModel()
	m.Device.Nu = 0
	if !math.IsInf(m.ReprogramDeadline(0, 5, ou.Size{R: 4, C: 4}), 1) {
		t.Fatal("zero drift should never force reprogramming")
	}
	m = defaultModel()
	m.Eta = 1e-9 // impossible threshold
	if d := m.ReprogramDeadline(0, 5, ou.Size{R: 4, C: 4}); d != m.Device.T0 {
		t.Fatalf("already-violated config should return t0, got %v", d)
	}
}

func TestLossCalibration16x16(t *testing.T) {
	t.Parallel()
	// Headline: homogeneous 16×16 without reprogramming loses ≈22 points by
	// t = 10⁸ s (paper Fig. 7).
	m := defaultModel()
	sizes := make([]ou.Size, 11) // VGG11
	for i := range sizes {
		sizes[i] = ou.Size{R: 16, C: 16}
	}
	loss := m.Loss(sizes, 1e8)
	if loss < 0.17 || loss > 0.27 {
		t.Fatalf("16×16 loss at 1e8 s = %v, want ≈ 0.22", loss)
	}
	// At t₀ the loss is well under 1.5 points.
	if l0 := m.Loss(sizes, 1); l0 > 0.015 {
		t.Fatalf("t0 loss %v too high", l0)
	}
}

func TestLossOrderingAcrossOUSizes(t *testing.T) {
	t.Parallel()
	m := defaultModel()
	mk := func(r, c int) []ou.Size {
		s := make([]ou.Size, 11)
		for i := range s {
			s[i] = ou.Size{R: r, C: c}
		}
		return s
	}
	const tt = 1e8
	l1616 := m.Loss(mk(16, 16), tt)
	l164 := m.Loss(mk(16, 4), tt)
	l84 := m.Loss(mk(8, 4), tt)
	if !(l1616 > l164 && l164 > l84) {
		t.Fatalf("loss ordering wrong: %v, %v, %v", l1616, l164, l84)
	}
}

func TestLossMonotoneInTimeProperty(t *testing.T) {
	t.Parallel()
	m := defaultModel()
	sizes := []ou.Size{{R: 16, C: 8}, {R: 16, C: 16}, {R: 32, C: 32}, {R: 8, C: 4}}
	f := func(aRaw, bRaw uint32) bool {
		ta := 1 + float64(aRaw)
		tb := 1 + float64(bRaw)
		if ta > tb {
			ta, tb = tb, ta
		}
		return m.Loss(sizes, ta) <= m.Loss(sizes, tb)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLossEmptyAndBounds(t *testing.T) {
	t.Parallel()
	m := defaultModel()
	if m.Loss(nil, 1e8) != 0 {
		t.Fatal("empty size list should lose nothing")
	}
	sizes := make([]ou.Size, 30)
	for i := range sizes {
		sizes[i] = ou.Size{R: 128, C: 128}
	}
	if l := m.Loss(sizes, 1e30); l > m.MaxLoss {
		t.Fatalf("loss %v must saturate at MaxLoss %v", l, m.MaxLoss)
	}
	moderate := make([]ou.Size, 11)
	for i := range moderate {
		moderate[i] = ou.Size{R: 16, C: 16}
	}
	if l := m.Loss(moderate, 1e8); l >= m.MaxLoss {
		t.Fatalf("loss %v for a moderate configuration should stay below MaxLoss", l)
	}
}

func TestAccuracyClampsAtZero(t *testing.T) {
	t.Parallel()
	m := defaultModel()
	m.MaxLoss = 1
	sizes := []ou.Size{{R: 128, C: 128}}
	if a := m.Accuracy(0.1, sizes, 1e30); a < 0 {
		t.Fatalf("accuracy went negative: %v", a)
	}
}

func TestAccuracySubtractsLoss(t *testing.T) {
	t.Parallel()
	m := defaultModel()
	sizes := []ou.Size{{R: 16, C: 16}, {R: 16, C: 16}}
	loss := m.Loss(sizes, 1e6)
	acc := m.Accuracy(0.92, sizes, 1e6)
	if math.Abs(acc-(0.92-loss)) > 1e-12 {
		t.Fatalf("accuracy %v inconsistent with loss %v", acc, loss)
	}
}
