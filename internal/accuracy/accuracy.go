// Package accuracy is the predictive-accuracy surrogate (the role PytorX
// plays for the paper's authors): it turns OU sizes, device age and layer
// sensitivity into (a) the non-ideality factor Odin's η threshold is tested
// against and (b) an estimated inference accuracy for Fig. 7 style studies.
//
// # Model
//
// The paper's Eq. (4) gives the conductance error of an R×C OU. At t = t₀
// it reduces to the IR-drop fraction
//
//	NF_IR(R,C) = a/(1+a),  a = G_ON · R_wire · (R+C) · (1 + R·C/A_ref)
//
// The (R+C) path-length term is Eq. (4)'s; the area factor extends it with
// the aggregate-current contribution (IR-drop scales with the total current
// of all concurrently active cells, not just the wire length), which is
// what keeps full-crossbar OUs infeasible at t₀ as in the paper's figures
// while leaving small OUs essentially at Eq. (4)'s literal value
// (≤ 6 % deviation up to 16×16). Over time the paper states that "the
// severity of IR-drop increases with inferencing time" as conductance
// drifts (Eq. 3); we model that as a multiplicative amplification
//
//	A(t) = (t/t₀)^ν   (ν = the Table II drift coefficient)
//
// and a per-layer sensitivity weight w_j (the paper: "non-idealities of
// crossbars executing the initial neural layers have a higher impact on
// predictive accuracy"), giving the effective non-ideality
//
//	NF_j(R,C,t) = w_j · NF_IR(R,C) · A(t)   tested against η (0.5 %).
//
// Taking Eq. (3)+(4) at face value instead (ΔG/G_ON with the raw drift term)
// would exceed any sub-percent η for every OU size within seconds of t₀ and
// force reprogramming on every run for every configuration — contradicting
// the paper's own reprogramming counts (43× for 16×16 vs 2× for 8×4 over
// 10⁸ s). The separable form above preserves every qualitative property the
// paper relies on (monotone in R+C and t, early layers tighter, smaller OUs
// buy drift headroom) while keeping the figures reproducible; constants are
// calibrated so the Fig. 7 headline (≈22 % accuracy drop for 16×16 without
// reprogramming) matches. See DESIGN.md §1.
package accuracy

import (
	"fmt"
	"math"

	"odin/internal/ou"
	"odin/internal/reram"
)

// Sensitivity models the layer-position dependence of accuracy impact:
// w_j = WMin + (WMax−WMin)·exp(−Decay · j/(L−1)).
type Sensitivity struct {
	WMax  float64 // weight of the first layer
	WMin  float64 // asymptotic weight of the deepest layers
	Decay float64 // exponential decay rate across normalised depth
}

// DefaultSensitivity returns the calibrated profile (see package comment).
// WMax anchors the reprogramming cadence: with it, the smallest 4×4 OU
// first violates η for the most sensitive layer at ≈ 4.7·10⁷ s, so Odin —
// which shrinks OUs as drift grows — reprograms only a couple of times per
// 10⁸ s horizon (the paper: once), while a fixed 16×16 array violates within
// ≈ 4·10⁴ s and reprograms orders of magnitude more often (the paper: 43×
// more). The WMax/WMin spread staggers per-layer deadlines so the OU-size
// distribution shifts smoothly across the Fig. 4/5 time sweep.
func DefaultSensitivity() Sensitivity {
	return Sensitivity{WMax: 0.055, WMin: 0.025, Decay: 2.5}
}

// Validate reports whether the profile is usable.
func (s Sensitivity) Validate() error {
	switch {
	case s.WMax <= 0 || s.WMin <= 0:
		return fmt.Errorf("accuracy: sensitivity weights must be positive (%v, %v)", s.WMax, s.WMin)
	case s.WMin > s.WMax:
		return fmt.Errorf("accuracy: WMin %v exceeds WMax %v", s.WMin, s.WMax)
	case s.Decay < 0:
		return fmt.Errorf("accuracy: negative decay %v", s.Decay)
	case s.WMax > 1:
		return fmt.Errorf("accuracy: WMax %v exceeds 1", s.WMax)
	}
	return nil
}

// Weight returns w_j for layer index j of a network with `total` layers.
func (s Sensitivity) Weight(j, total int) float64 {
	if total <= 0 || j < 0 || j >= total {
		panic(fmt.Sprintf("accuracy: layer %d of %d out of range", j, total))
	}
	if total == 1 {
		return s.WMax
	}
	u := float64(j) / float64(total-1)
	return s.WMin + (s.WMax-s.WMin)*math.Exp(-s.Decay*u)
}

// Model bundles everything needed to score a configuration's accuracy
// impact.
type Model struct {
	Device reram.DeviceParams
	Sens   Sensitivity
	// Eta is the non-ideality threshold η (paper §V.A: 0.5 %).
	Eta float64
	// IRAreaRef is the OU cell count at which the aggregate-current term
	// doubles the IR-drop (see package comment). Default: 4096 (64×64).
	IRAreaRef float64
	// LossScale, LossPower and MaxLoss map the worst-layer non-ideality x
	// to an accuracy loss MaxLoss·(1−exp(−(x/LossScale)^LossPower)).
	// Calibrated so that x = η costs ≈ 0.5 accuracy points ("negligible")
	// while the unreprogrammed 16×16 configuration loses ≈ 22 points by
	// 10⁸ s — the two anchors the paper reports (§V.A, Fig. 7).
	LossScale float64
	LossPower float64
	MaxLoss   float64
}

// Default returns the calibrated model for the given device.
func Default(device reram.DeviceParams) Model {
	return Model{
		Device:    device,
		Sens:      DefaultSensitivity(),
		Eta:       0.005,
		IRAreaRef: 4096,
		LossScale: 0.0334,
		LossPower: 2.6,
		MaxLoss:   0.70,
	}
}

// Validate reports configuration errors.
func (m Model) Validate() error {
	if err := m.Device.Validate(); err != nil {
		return err
	}
	if err := m.Sens.Validate(); err != nil {
		return err
	}
	switch {
	case m.Eta <= 0 || m.Eta >= 1:
		return fmt.Errorf("accuracy: eta %v out of (0,1)", m.Eta)
	case m.IRAreaRef <= 0:
		return fmt.Errorf("accuracy: non-positive IR area reference %v", m.IRAreaRef)
	case m.LossScale <= 0:
		return fmt.Errorf("accuracy: non-positive loss scale %v", m.LossScale)
	case m.LossPower <= 0:
		return fmt.Errorf("accuracy: non-positive loss power %v", m.LossPower)
	case m.MaxLoss <= 0 || m.MaxLoss > 1:
		return fmt.Errorf("accuracy: max loss %v out of (0,1]", m.MaxLoss)
	}
	return nil
}

// Amplification returns A(t) = (t/t₀)^ν, clamped to 1 below t₀.
func (m Model) Amplification(t float64) float64 {
	if t < m.Device.T0 {
		return 1
	}
	return math.Pow(t/m.Device.T0, m.Device.Nu)
}

// IRFraction returns NF_IR(R,C) — Eq. (4) normalised by G_ON at t = t₀,
// extended with the aggregate-current area factor (see package comment).
func (m Model) IRFraction(s ou.Size) float64 {
	if !s.Valid() {
		panic(fmt.Sprintf("accuracy: invalid OU size %v", s))
	}
	areaFactor := 1 + float64(s.R)*float64(s.C)/m.IRAreaRef
	a := m.Device.GOn * m.Device.RWire * float64(s.R+s.C) * areaFactor
	return a / (1 + a)
}

// NF returns the effective non-ideality of layer j (of `total`) computed
// with OU size s at device age t.
func (m Model) NF(j, total int, s ou.Size, t float64) float64 {
	return m.Sens.Weight(j, total) * m.IRFraction(s) * m.Amplification(t)
}

// Satisfies reports whether the configuration meets the η constraint.
func (m Model) Satisfies(j, total int, s ou.Size, t float64) bool {
	return m.NF(j, total, s, t) < m.Eta
}

// MaxAllowedIR returns the largest NF_IR a layer may carry at age t and
// still satisfy η — a cheap bound that lets searches prune OU sizes without
// evaluating them.
func (m Model) MaxAllowedIR(j, total int, t float64) float64 {
	return m.Eta / (m.Sens.Weight(j, total) * m.Amplification(t))
}

// AnySatisfiable reports whether at least one size in the grid meets the η
// constraint for layer j at age t. Because NF is monotone in R+C, checking
// the smallest grid size suffices.
func (m Model) AnySatisfiable(j, total int, g ou.Grid, t float64) bool {
	return m.Satisfies(j, total, g.SizeAt(0, 0), t)
}

// ReprogramDeadline returns the device age at which OU size s stops
// satisfying η for layer j — the analytic inverse of NF(t) = η. It returns
// +Inf when the size never violates (ν = 0) and t₀ when it violates
// already at t₀.
func (m Model) ReprogramDeadline(j, total int, s ou.Size) float64 {
	base := m.Sens.Weight(j, total) * m.IRFraction(s)
	if base >= m.Eta {
		return m.Device.T0
	}
	if m.Device.Nu == 0 {
		return math.Inf(1)
	}
	return m.Device.T0 * math.Pow(m.Eta/base, 1/m.Device.Nu)
}

// Loss estimates the accuracy loss (fraction, e.g. 0.22 = 22 points) of
// running a network whose layer j uses sizes[j], at device age t. The
// worst (sensitivity-weighted) layer dominates: corruption in an early
// feature extractor propagates through everything downstream, so end-to-end
// accuracy tracks the most-affected layer rather than the average.
func (m Model) Loss(sizes []ou.Size, t float64) float64 {
	if len(sizes) == 0 {
		return 0
	}
	total := len(sizes)
	var worst float64
	for j, s := range sizes {
		if nf := m.NF(j, total, s, t); nf > worst {
			worst = nf
		}
	}
	return m.MaxLoss * (1 - math.Exp(-math.Pow(worst/m.LossScale, m.LossPower)))
}

// Accuracy estimates the inference accuracy of a model with the given ideal
// (fault-free) accuracy, layer OU sizes, and device age.
func (m Model) Accuracy(ideal float64, sizes []ou.Size, t float64) float64 {
	acc := ideal - m.Loss(sizes, t)
	if acc < 0 {
		return 0
	}
	return acc
}
