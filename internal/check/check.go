// Package check is the repository's property-based and metamorphic testing
// engine: a stdlib-only QuickCheck-style driver whose randomness flows
// exclusively through internal/rng, so every trial is reproducible bit for
// bit from one seed.
//
// # Model
//
// A property is a predicate over generated values: Run draws a value from a
// Gen, calls the property, and repeats for a configurable number of trials.
// When a trial fails (the property returns an error or panics), the engine
// shrinks the counterexample through the generator's Shrink candidates until
// no simpler value still fails, then reports the minimal counterexample
// together with a one-line replay command:
//
//	ODINCHECK_SEED=<seed> ODINCHECK_TRIALS=1 go test -run '^TestName$' ./internal/<pkg>
//
// Each trial owns an independent SplitMix64 stream whose seed is derived
// from the base seed and the trial index; trial 0 uses the base seed
// directly, which is what makes the replay line work: re-running with the
// failing trial's seed as base regenerates the failing value on the first
// trial.
//
// # Environment
//
//	ODINCHECK_SEED    overrides the base seed (default 1; fixed, so CI is
//	                  deterministic). `make check` also runs a short
//	                  randomized-seed smoke through this variable.
//	ODINCHECK_TRIALS  overrides the trial count (default 100).
//
// # Size
//
// Generators see a per-trial Size in [0, MaxSize] drawn from the trial
// stream before any value bits; collection generators scale their length
// with it. Because the size is part of the stream, replaying a seed
// reproduces it exactly.
package check

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"odin/internal/rng"
)

// MaxSize is the upper bound of the per-trial size budget.
const MaxSize = 100

const (
	defaultTrials    = 100
	defaultMaxShrink = 1000
	envSeed          = "ODINCHECK_SEED"
	envTrials        = "ODINCHECK_TRIALS"
)

// Config tunes a Run. The zero value takes every default (and the
// ODINCHECK_* environment overrides).
type Config struct {
	// Trials is the number of generated values to test (default 100,
	// overridden by ODINCHECK_TRIALS).
	Trials int
	// Seed is the base seed (default 1, overridden by ODINCHECK_SEED).
	// Trial i draws from a stream derived from (Seed, i); trial 0 uses Seed
	// itself so a reported trial seed replays as the base seed.
	Seed uint64
	// MaxShrink bounds the number of candidate evaluations spent shrinking
	// a counterexample (default 1000).
	MaxShrink int
}

// withDefaults resolves defaults and environment overrides. Parse errors in
// the environment are reported on t (a misconfigured harness must not pass
// silently).
func (c Config) withDefaults(t *testing.T) Config {
	if c.Trials == 0 {
		c.Trials = defaultTrials
		if v := os.Getenv(envTrials); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				t.Fatalf("check: invalid %s=%q: want a positive integer", envTrials, v)
			}
			c.Trials = n
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
		if v := os.Getenv(envSeed); v != "" {
			s, err := strconv.ParseUint(v, 0, 64)
			if err != nil {
				t.Fatalf("check: invalid %s=%q: want a uint64 seed", envSeed, v)
			}
			c.Seed = s
		}
	}
	if c.MaxShrink == 0 {
		c.MaxShrink = defaultMaxShrink
	}
	return c
}

// T is the per-trial generation context handed to Gen.Generate.
type T struct {
	// Rng is the trial's private SplitMix64 stream.
	Rng *rng.Source
	// Size is the trial's size budget in [0, MaxSize]; collection
	// generators scale with it.
	Size int
}

// Gen produces values of type V and knows how to simplify them.
type Gen[V any] struct {
	// Generate draws one value from the trial stream.
	Generate func(t *T) V
	// Shrink returns simpler candidate values, most aggressive first. It
	// may be nil (no shrinking) and must never include v itself.
	Shrink func(v V) []V
}

// Failure describes one falsified property after shrinking.
type Failure[V any] struct {
	Value   V      // minimal counterexample found
	Err     error  // the property's failure for Value
	Seed    uint64 // the failing trial's stream seed (replayable as base seed)
	Trial   int    // zero-based index of the failing trial
	Shrinks int    // successful shrink steps taken from the original value
}

// Run tests the property against cfg-or-default trials of generated values
// and fails t with a shrunk, replayable counterexample when it is
// falsified.
func Run[V any](t *testing.T, g Gen[V], prop func(V) error) {
	t.Helper()
	RunConfig(t, Config{}, g, prop)
}

// RunConfig is Run with an explicit configuration.
func RunConfig[V any](t *testing.T, cfg Config, g Gen[V], prop func(V) error) {
	t.Helper()
	cfg = cfg.withDefaults(t)
	if f := run(cfg, g, prop); f != nil {
		t.Fatalf("check: property falsified (trial %d, %d shrink steps)\n"+
			"  counterexample: %+v\n"+
			"  cause: %v\n"+
			"  replay: %s=%d %s=1 go test -run '^%s$' .",
			f.Trial, f.Shrinks, f.Value, f.Err, envSeed, f.Seed, envTrials, rootName(t))
	}
}

// run executes the trial loop and returns the first (shrunk) failure, or
// nil when every trial passes. It is the testing.T-free core, which the
// engine's own tests drive directly.
func run[V any](cfg Config, g Gen[V], prop func(V) error) *Failure[V] {
	for trial := 0; trial < cfg.Trials; trial++ {
		seed := trialSeed(cfg.Seed, trial)
		src := rng.New(seed)
		// The size draw is part of the stream so a seed replay reproduces
		// it.
		tt := &T{Rng: src, Size: src.Intn(MaxSize + 1)}
		v := g.Generate(tt)
		err := callProp(prop, v)
		if err == nil {
			continue
		}
		v, err, shrinks := shrink(g, v, err, prop, cfg.MaxShrink)
		return &Failure[V]{Value: v, Err: err, Seed: seed, Trial: trial, Shrinks: shrinks}
	}
	return nil
}

// trialSeed derives the stream seed of one trial. Trial 0 is the base seed
// itself, so replaying a reported seed regenerates the failure on the first
// trial.
func trialSeed(base uint64, trial int) uint64 {
	if trial == 0 {
		return base
	}
	return rng.New(base + uint64(trial)).Uint64()
}

// callProp invokes the property, converting a panic into a failure so the
// engine can still shrink and report the provoking value.
func callProp[V any](prop func(V) error, v V) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("check: property panicked: %v", r)
		}
	}()
	return prop(v)
}

// rootName returns the name of the top-level test owning t (subtest names
// cannot be passed to -run as-is, the replay line targets the root).
func rootName(t *testing.T) string {
	name := t.Name()
	for i := 0; i < len(name); i++ {
		if name[i] == '/' {
			return name[:i]
		}
	}
	return name
}
