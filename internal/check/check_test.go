package check

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
)

// TestPropDeterministicGeneration pins the engine's reproducibility
// contract: the same config generates the same value sequence, and a
// different seed a different one.
func TestPropDeterministicGeneration(t *testing.T) {
	t.Parallel()
	collect := func(seed uint64) []int {
		var vals []int
		cfg := Config{Trials: 50, Seed: seed, MaxShrink: 1}
		f := run(cfg, IntRange(0, 1<<30), func(v int) error {
			vals = append(vals, v)
			return nil
		})
		if f != nil {
			t.Fatalf("recording property failed: %+v", f)
		}
		return vals
	}
	a, b := collect(7), collect(7)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("trial counts %d, %d, want 50", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d: %d vs %d under the same seed", i, a[i], b[i])
		}
	}
	c := collect(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seeds 7 and 8 generated identical sequences")
	}
}

// TestPropSeedReplay verifies the replay contract: rebasing on a failing
// trial's reported seed regenerates the same counterexample on trial 0.
func TestPropSeedReplay(t *testing.T) {
	t.Parallel()
	// Record drawn values at the generator level (no Shrink) so the trace
	// holds only raw generations, never shrink-candidate evaluations.
	var drawn []int
	recording := func(sink *[]int) Gen[int] {
		return Gen[int]{Generate: func(tt *T) int {
			v := IntRange(0, 1<<20).Generate(tt)
			*sink = append(*sink, v)
			return v
		}}
	}
	prop := func(v int) error {
		if v%7 == 3 {
			return fmt.Errorf("hit %d", v)
		}
		return nil
	}
	f := run(Config{Trials: 1000, Seed: 1, MaxShrink: 1}, recording(&drawn), prop)
	if f == nil {
		t.Fatal("property unexpectedly held")
	}
	// Replay: base seed = reported trial seed, one trial — the exact failing
	// value must regenerate on trial 0.
	var replayed []int
	rf := run(Config{Trials: 1, Seed: f.Seed, MaxShrink: 1}, recording(&replayed), prop)
	if rf == nil || len(replayed) != 1 {
		t.Fatalf("replay did not fail on trial 0 (failure %+v, drew %v)", rf, replayed)
	}
	if rf.Trial != 0 {
		t.Fatalf("replay failed on trial %d, want 0", rf.Trial)
	}
	if replayed[0] != f.Value {
		t.Fatalf("replay drew %d, want the original counterexample %d", replayed[0], f.Value)
	}
}

// TestPropShrinkToBoundary verifies integrated shrinking reaches the
// minimal counterexample of a threshold property.
func TestPropShrinkToBoundary(t *testing.T) {
	t.Parallel()
	const threshold = 537
	f := run(Config{Trials: 200, Seed: 3, MaxShrink: 2000}, IntRange(0, 100000), func(v int) error {
		if v >= threshold {
			return fmt.Errorf("%d over threshold", v)
		}
		return nil
	})
	if f == nil {
		t.Fatal("property unexpectedly held")
	}
	if f.Value != threshold {
		t.Fatalf("shrunk to %d, want the minimal counterexample %d", f.Value, threshold)
	}
	if f.Shrinks == 0 {
		t.Fatal("no shrink steps recorded for a shrinkable failure")
	}
}

// TestPropShrinkPair verifies component-wise tuple shrinking: a sum
// threshold shrinks both coordinates to a minimal witness.
func TestPropShrinkPair(t *testing.T) {
	t.Parallel()
	g := PairOf(IntRange(0, 10000), IntRange(0, 10000))
	f := run(Config{Trials: 300, Seed: 5, MaxShrink: 4000}, g, func(p Pair[int, int]) error {
		if p.A+p.B >= 1000 {
			return fmt.Errorf("sum %d", p.A+p.B)
		}
		return nil
	})
	if f == nil {
		t.Fatal("property unexpectedly held")
	}
	if f.Value.A+f.Value.B != 1000 {
		t.Fatalf("shrunk to %+v (sum %d), want a boundary witness summing to 1000",
			f.Value, f.Value.A+f.Value.B)
	}
}

// TestPropPanicBecomesCounterexample verifies a panicking property is
// caught, shrunk, and reported rather than crashing the test binary.
func TestPropPanicBecomesCounterexample(t *testing.T) {
	t.Parallel()
	f := run(Config{Trials: 100, Seed: 2, MaxShrink: 500}, IntRange(0, 1000), func(v int) error {
		if v >= 100 {
			panic(fmt.Sprintf("boom at %d", v))
		}
		return nil
	})
	if f == nil {
		t.Fatal("property unexpectedly held")
	}
	if f.Value != 100 {
		t.Fatalf("shrunk panic witness %d, want 100", f.Value)
	}
	if !strings.Contains(f.Err.Error(), "panicked") {
		t.Fatalf("error %q does not mark the panic", f.Err)
	}
}

// TestPropSliceShrinkRemovesElements verifies slice shrinking drops
// irrelevant elements: a "contains an element ≥ k" failure shrinks to a
// single-element witness.
func TestPropSliceShrinkRemovesElements(t *testing.T) {
	t.Parallel()
	g := SliceOf(IntRange(0, 10000), 0, 40)
	f := run(Config{Trials: 300, Seed: 11, MaxShrink: 6000}, g, func(v []int) error {
		for _, x := range v {
			if x >= 5000 {
				return fmt.Errorf("element %d", x)
			}
		}
		return nil
	})
	if f == nil {
		t.Fatal("property unexpectedly held")
	}
	if len(f.Value) != 1 || f.Value[0] != 5000 {
		t.Fatalf("shrunk to %v, want the minimal witness [5000]", f.Value)
	}
}

// TestPropGeneratorRanges exercises the stock generators' contracts.
func TestPropGeneratorRanges(t *testing.T) {
	t.Parallel()
	intGen := IntRange(-3, 17)
	floatGen := Float64Range(2.5, 9.25)
	choiceGen := OneOf("a", "b", "c")
	sliceGen := SliceOf(IntRange(0, 9), 2, 12)
	boolGen := Bool()
	seenTrue, seenFalse := false, false
	f := run(Config{Trials: 300, Seed: 9, MaxShrink: 1},
		Gen[int]{Generate: func(tt *T) int {
			if v := intGen.Generate(tt); v < -3 || v > 17 {
				t.Errorf("IntRange drew %d", v)
			}
			if v := floatGen.Generate(tt); v < 2.5 || v >= 9.25 {
				t.Errorf("Float64Range drew %g", v)
			}
			if c := choiceGen.Generate(tt); c != "a" && c != "b" && c != "c" {
				t.Errorf("OneOf drew %q", c)
			}
			if s := sliceGen.Generate(tt); len(s) < 2 || len(s) > 12 {
				t.Errorf("SliceOf length %d", len(s))
			}
			if boolGen.Generate(tt) {
				seenTrue = true
			} else {
				seenFalse = true
			}
			if tt.Size < 0 || tt.Size > MaxSize {
				t.Errorf("trial size %d outside [0, %d]", tt.Size, MaxSize)
			}
			return 0
		}},
		func(int) error { return nil })
	if f != nil {
		t.Fatalf("generator sweep failed: %+v", f)
	}
	if !seenTrue || !seenFalse {
		t.Error("Bool never produced both values over 300 trials")
	}
}

// TestPropShrinkHelpers pins the shrink-candidate helpers: candidates move
// toward the target, never repeat the input, and terminate.
func TestPropShrinkHelpers(t *testing.T) {
	t.Parallel()
	for _, v := range []int{0, 1, 2, 100, -50} {
		for _, cand := range ShrinkInt(v, 0) {
			if cand == v {
				t.Fatalf("ShrinkInt(%d) repeats the input", v)
			}
			if abs(cand) > abs(v) {
				t.Fatalf("ShrinkInt(%d) candidate %d moves away from 0", v, cand)
			}
		}
	}
	if got := ShrinkInt(5, 5); got != nil {
		t.Fatalf("ShrinkInt at target = %v, want nil", got)
	}
	for _, v := range []float64{0.5, 123.75, -2.25} {
		for _, cand := range ShrinkFloat(v, 0) {
			if math.Float64bits(cand) == math.Float64bits(v) {
				t.Fatalf("ShrinkFloat(%g) repeats the input", v)
			}
			if math.Abs(cand) > math.Abs(v) {
				t.Fatalf("ShrinkFloat(%g) candidate %g moves away from 0", v, cand)
			}
		}
	}
	if got := ShrinkFloat(math.NaN(), 1); len(got) != 1 || math.Abs(got[0]-1) > 0 {
		t.Fatalf("ShrinkFloat(NaN) = %v, want [1]", got)
	}
}

// TestPropTrialSeedDerivation pins that trial 0 uses the base seed verbatim
// (the replay contract) and later trials decorrelate.
func TestPropTrialSeedDerivation(t *testing.T) {
	t.Parallel()
	if got := trialSeed(42, 0); got != 42 {
		t.Fatalf("trialSeed(42, 0) = %d, want 42", got)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[trialSeed(42, i)] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("only %d distinct seeds over 1000 trials", len(seen))
	}
}

// TestPropEnvOverrides verifies the ODINCHECK_* environment handling.
// t.Setenv forbids t.Parallel, so this test runs serial.
func TestPropEnvOverrides(t *testing.T) {
	t.Setenv(envSeed, "99")
	t.Setenv(envTrials, "7")
	cfg := Config{}.withDefaults(t)
	if cfg.Seed != 99 || cfg.Trials != 7 {
		t.Fatalf("env overrides gave seed=%d trials=%d, want 99/7", cfg.Seed, cfg.Trials)
	}
	// Explicit config wins over the environment.
	cfg = Config{Seed: 5, Trials: 3}.withDefaults(t)
	if cfg.Seed != 5 || cfg.Trials != 3 {
		t.Fatalf("explicit config overridden: seed=%d trials=%d", cfg.Seed, cfg.Trials)
	}
}

// TestPropOneOfShrinksTowardEarlier pins OneOf's shrink ordering.
func TestPropOneOfShrinksTowardEarlier(t *testing.T) {
	t.Parallel()
	g := OneOf(10, 20, 30, 40)
	got := g.Shrink(30)
	want := []int{20, 10}
	if len(got) != len(want) {
		t.Fatalf("Shrink(30) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Shrink(30) = %v, want %v", got, want)
		}
	}
	if got := g.Shrink(10); len(got) != 0 {
		t.Fatalf("Shrink(first) = %v, want empty", got)
	}
}

// TestPropShrinkBudgetTerminates guards against shrinker loops: an
// always-failing property with an aggressive shrinker must still return
// within the budget.
func TestPropShrinkBudgetTerminates(t *testing.T) {
	t.Parallel()
	f := run(Config{Trials: 1, Seed: 1, MaxShrink: 50}, IntRange(0, 1<<30), func(v int) error {
		return fmt.Errorf("always fails (%d)", v)
	})
	if f == nil {
		t.Fatal("property unexpectedly held")
	}
	if f.Value != 0 {
		// With everything failing, the greedy walk must land on the
		// smallest candidate.
		t.Fatalf("always-failing property shrunk to %d, want 0", f.Value)
	}
}

// TestPropSizesCoverRange verifies the per-trial size budget actually
// varies (collection generators rely on it for small-to-large coverage).
func TestPropSizesCoverRange(t *testing.T) {
	t.Parallel()
	var sizes []int
	f := run(Config{Trials: 200, Seed: 13, MaxShrink: 1},
		Gen[int]{Generate: func(tt *T) int { sizes = append(sizes, tt.Size); return 0 }},
		func(int) error { return nil })
	if f != nil {
		t.Fatalf("recording property failed: %+v", f)
	}
	sort.Ints(sizes)
	if sizes[0] > 20 || sizes[len(sizes)-1] < MaxSize-20 {
		t.Fatalf("size range [%d, %d] over 200 trials covers too little of [0, %d]",
			sizes[0], sizes[len(sizes)-1], MaxSize)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
