package check

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGoldenMatchAndMismatch(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "artefact.golden")
	if err := os.WriteFile(path, []byte("row 1\nrow 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := golden(path, []byte("row 1\nrow 2\n"), false, t.Name()); err != nil {
		t.Fatalf("identical output failed the golden comparison: %v", err)
	}
	_, err := golden(path, []byte("row 1\nrow 2 CHANGED\n"), false, t.Name())
	if err == nil {
		t.Fatal("divergent output passed the golden comparison")
	}
	// The mismatch message carries both the diff and the remediation hint.
	for _, frag := range []string{"-row 2", "+row 2 CHANGED", "-update", t.Name()} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("mismatch error missing %q:\n%v", frag, err)
		}
	}
	_, err = golden(filepath.Join(dir, "missing.golden"), []byte("x\n"), false, t.Name())
	if err == nil {
		t.Fatal("missing golden file passed the comparison")
	}
	if !strings.Contains(err.Error(), "missing") {
		t.Fatalf("missing-file error does not say so: %v", err)
	}
}

func TestGoldenUpdateWritesFile(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "sub", "new.golden")
	updated, err := golden(path, []byte("fresh content\n"), true, t.Name())
	if err != nil {
		t.Fatalf("update run failed: %v", err)
	}
	if !updated {
		t.Fatal("update run did not report a write")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file not written: %v", err)
	}
	if string(data) != "fresh content\n" {
		t.Fatalf("golden file holds %q", data)
	}
	// A second update pass against identical content still rewrites (the
	// flag means "trust current output"), and a compare pass now succeeds.
	if _, err := golden(path, []byte("fresh content\n"), false, t.Name()); err != nil {
		t.Fatalf("freshly updated file fails comparison: %v", err)
	}
}

func TestGoldenDiffLines(t *testing.T) {
	t.Parallel()
	want := "alpha\nbeta\ngamma\ndelta\n"
	got := "alpha\nbeta CHANGED\ngamma\ndelta\nextra\n"
	d := DiffLines(want, got)
	for _, frag := range []string{"-beta", "+beta CHANGED", "+extra", "matching line"} {
		if !strings.Contains(d, frag) {
			t.Fatalf("diff missing %q:\n%s", frag, d)
		}
	}
	if strings.Contains(d, "-alpha") || strings.Contains(d, "+alpha") {
		t.Fatalf("diff reports unchanged line:\n%s", d)
	}
	// Missing trailing newline is visible, not swallowed.
	d = DiffLines("x\n", "x")
	if !strings.Contains(d, `no newline`) {
		t.Fatalf("unterminated final line not marked:\n%s", d)
	}
	// Equal inputs diff to nothing but elision headers.
	d = DiffLines("a\nb\n", "a\nb\n")
	if strings.Contains(d, "-") || strings.Contains(d, "+a") {
		t.Fatalf("diff of equal inputs reports changes:\n%s", d)
	}
}

func TestGoldenDiffLargeInputFallback(t *testing.T) {
	t.Parallel()
	var w, g strings.Builder
	for i := 0; i < 3000; i++ {
		w.WriteString("line\n")
		g.WriteString("line\n")
	}
	g.WriteString("tail\n")
	d := DiffLines(w.String(), g.String())
	if !strings.Contains(d, "lengths differ") {
		t.Fatalf("large-input fallback not taken:\n%.200s", d)
	}
}
