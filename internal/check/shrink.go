package check

import "math"

// shrink greedily minimises a counterexample: as long as some Shrink
// candidate still falsifies the property, move to the first such candidate
// and restart from it. The budget bounds total candidate evaluations so a
// pathological shrinker cannot hang a test.
func shrink[V any](g Gen[V], v V, err error, prop func(V) error, budget int) (V, error, int) {
	if g.Shrink == nil {
		return v, err, 0
	}
	shrinks := 0
	for budget > 0 {
		improved := false
		for _, cand := range g.Shrink(v) {
			budget--
			if e := callProp(prop, cand); e != nil {
				v, err = cand, e
				shrinks++
				improved = true
				break
			}
			if budget <= 0 {
				break
			}
		}
		if !improved {
			break
		}
	}
	return v, err, shrinks
}

// ShrinkInt returns simpler int candidates between toward and v: the
// target itself, then v minus successively halved distances (v−d/2, v−d/4,
// …, v∓1). Interleaved with the engine's greedy restart this walk behaves
// like a binary search for the boundary, so counterexamples shrink to exact
// thresholds in O(log d) rounds. Candidates never include v.
func ShrinkInt(v, toward int) []int {
	if v == toward {
		return nil
	}
	var out []int
	seen := map[int]bool{v: true}
	add := func(c int) {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	add(toward)
	d := v - toward
	for d/2 != 0 {
		d /= 2
		add(v - d)
	}
	return out
}

// ShrinkFloat returns simpler float64 candidates between toward and v: the
// target, a few halved-distance points near v, and the integral truncation
// of v. Candidates never include v, NaN, or infinities.
func ShrinkFloat(v, toward float64) []float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []float64{toward}
	}
	var out []float64
	add := func(c float64) {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return
		}
		if math.Float64bits(c) == math.Float64bits(v) {
			return
		}
		for _, prev := range out {
			if math.Float64bits(prev) == math.Float64bits(c) {
				return
			}
		}
		out = append(out, c)
	}
	add(toward)
	d := v - toward
	for i := 0; i < 6; i++ {
		d /= 2
		add(v - d)
	}
	add(math.Trunc(v))
	return out
}
