package check

import "fmt"

// Const returns a generator that always yields v and never shrinks.
func Const[V any](v V) Gen[V] {
	return Gen[V]{Generate: func(*T) V { return v }}
}

// Bool generates fair booleans, shrinking true toward false.
func Bool() Gen[bool] {
	return Gen[bool]{
		Generate: func(t *T) bool { return t.Rng.Bernoulli(0.5) },
		Shrink: func(v bool) []bool {
			if v {
				return []bool{false}
			}
			return nil
		},
	}
}

// IntRange generates uniform ints in [lo, hi], shrinking toward lo. It
// panics when the range is empty (a generator-construction programming
// error).
func IntRange(lo, hi int) Gen[int] {
	if lo > hi {
		panic(fmt.Sprintf("check: IntRange [%d, %d] is empty", lo, hi))
	}
	return Gen[int]{
		Generate: func(t *T) int { return lo + t.Rng.Intn(hi-lo+1) },
		Shrink:   func(v int) []int { return ShrinkInt(v, lo) },
	}
}

// Float64Range generates uniform float64s in [lo, hi), shrinking toward lo.
// It panics when the range is empty or unordered.
func Float64Range(lo, hi float64) Gen[float64] {
	if !(lo < hi) {
		panic(fmt.Sprintf("check: Float64Range [%g, %g) is empty", lo, hi))
	}
	return Gen[float64]{
		Generate: func(t *T) float64 { return lo + t.Rng.Float64()*(hi-lo) },
		Shrink:   func(v float64) []float64 { return ShrinkFloat(v, lo) },
	}
}

// OneOf generates a uniform choice, shrinking toward earlier alternatives.
// It panics when no choices are given.
func OneOf[V comparable](choices ...V) Gen[V] {
	if len(choices) == 0 {
		panic("check: OneOf needs at least one choice")
	}
	return Gen[V]{
		Generate: func(t *T) V { return choices[t.Rng.Intn(len(choices))] },
		Shrink: func(v V) []V {
			for i, c := range choices {
				if c == v {
					// Earlier choices are simpler; nearest-first keeps the
					// shrink walk short.
					out := make([]V, 0, i)
					for j := i - 1; j >= 0; j-- {
						out = append(out, choices[j])
					}
					return out
				}
			}
			return nil
		},
	}
}

// SliceOf generates slices of elem with length in [minLen, maxLen] scaled
// by the trial size. Shrinking removes chunks and single elements first,
// then shrinks individual elements.
func SliceOf[V any](elem Gen[V], minLen, maxLen int) Gen[[]V] {
	if minLen < 0 || maxLen < minLen {
		panic(fmt.Sprintf("check: SliceOf length range [%d, %d] invalid", minLen, maxLen))
	}
	return Gen[[]V]{
		Generate: func(t *T) []V {
			// Scale the cap with the trial size so early/replayed small
			// trials stay small; always honour minLen.
			hi := minLen + (maxLen-minLen)*t.Size/MaxSize
			n := minLen
			if hi > minLen {
				n += t.Rng.Intn(hi - minLen + 1)
			}
			out := make([]V, n)
			for i := range out {
				out[i] = elem.Generate(t)
			}
			return out
		},
		Shrink: func(v []V) [][]V {
			var out [][]V
			// Structural shrinks: drop the second half, the first half,
			// then each single element (bounded for long slices).
			if len(v) > minLen {
				if half := len(v) / 2; half >= minLen && half < len(v) {
					out = append(out, append([]V(nil), v[:half]...))
					out = append(out, append([]V(nil), v[len(v)-half:]...))
				}
				limit := len(v)
				if limit > 16 {
					limit = 16
				}
				for i := 0; i < limit; i++ {
					c := make([]V, 0, len(v)-1)
					c = append(c, v[:i]...)
					c = append(c, v[i+1:]...)
					out = append(out, c)
				}
			}
			// Element-wise shrinks (every candidate, bounded positions).
			if elem.Shrink != nil {
				limit := len(v)
				if limit > 16 {
					limit = 16
				}
				for i := 0; i < limit; i++ {
					for _, ec := range elem.Shrink(v[i]) {
						c := append([]V(nil), v...)
						c[i] = ec
						out = append(out, c)
					}
				}
			}
			return out
		},
	}
}

// Pair is a generated 2-tuple.
type Pair[A, B any] struct {
	A A
	B B
}

// PairOf combines two generators, shrinking each component independently.
func PairOf[A, B any](ga Gen[A], gb Gen[B]) Gen[Pair[A, B]] {
	return Gen[Pair[A, B]]{
		Generate: func(t *T) Pair[A, B] {
			return Pair[A, B]{A: ga.Generate(t), B: gb.Generate(t)}
		},
		Shrink: func(v Pair[A, B]) []Pair[A, B] {
			var out []Pair[A, B]
			if ga.Shrink != nil {
				for _, a := range ga.Shrink(v.A) {
					out = append(out, Pair[A, B]{A: a, B: v.B})
				}
			}
			if gb.Shrink != nil {
				for _, b := range gb.Shrink(v.B) {
					out = append(out, Pair[A, B]{A: v.A, B: b})
				}
			}
			return out
		},
	}
}

// Triple is a generated 3-tuple.
type Triple[A, B, C any] struct {
	A A
	B B
	C C
}

// TripleOf combines three generators, shrinking each component
// independently.
func TripleOf[A, B, C any](ga Gen[A], gb Gen[B], gc Gen[C]) Gen[Triple[A, B, C]] {
	return Gen[Triple[A, B, C]]{
		Generate: func(t *T) Triple[A, B, C] {
			return Triple[A, B, C]{A: ga.Generate(t), B: gb.Generate(t), C: gc.Generate(t)}
		},
		Shrink: func(v Triple[A, B, C]) []Triple[A, B, C] {
			var out []Triple[A, B, C]
			if ga.Shrink != nil {
				for _, a := range ga.Shrink(v.A) {
					out = append(out, Triple[A, B, C]{A: a, B: v.B, C: v.C})
				}
			}
			if gb.Shrink != nil {
				for _, b := range gb.Shrink(v.B) {
					out = append(out, Triple[A, B, C]{A: v.A, B: b, C: v.C})
				}
			}
			if gc.Shrink != nil {
				for _, c := range gc.Shrink(v.C) {
					out = append(out, Triple[A, B, C]{A: v.A, B: v.B, C: c})
				}
			}
			return out
		},
	}
}
