package check

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// updateGolden is registered once per test binary; `go test -update ./...`
// rewrites every golden file touched by the run with the current output.
var updateGolden = flag.Bool("update", false, "rewrite check.Golden files with current output")

// Golden compares got against the golden file at path (conventionally
// under the package's testdata/). With -update the file is (re)written
// instead and the test passes; without it a missing file or a mismatch
// fails the test, the latter with a line diff. Snapshots freeze artefact
// byte streams — table/figure renderings — so hot-path refactors can prove
// output stability.
func Golden(t *testing.T, path string, got []byte) {
	t.Helper()
	updated, err := golden(path, got, *updateGolden, rootName(t))
	if err != nil {
		t.Fatal(err)
	}
	if updated {
		t.Logf("check: golden %s updated (%d bytes)", path, len(got))
	}
}

// golden is the testing-free core of Golden: it either rewrites the file
// (update mode) or compares, returning a ready-to-print error on any
// mismatch. testName only decorates the remediation hint.
func golden(path string, got []byte, update bool, testName string) (updated bool, err error) {
	if update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return false, fmt.Errorf("check: golden %s: %w", path, err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			return false, fmt.Errorf("check: golden %s: %w", path, err)
		}
		return true, nil
	}
	want, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return false, fmt.Errorf("check: golden file %s missing; create it with `go test -run '^%s$' -update`",
			path, testName)
	}
	if err != nil {
		return false, fmt.Errorf("check: golden %s: %w", path, err)
	}
	if string(want) == string(got) {
		return false, nil
	}
	return false, fmt.Errorf("check: output differs from golden %s (accept with `go test -run '^%s$' -update`):\n%s",
		path, testName, DiffLines(string(want), string(got)))
}

// DiffLines renders a line-level diff between want and got: an LCS-based
// "-want / +got" listing with unchanged lines elided to headers. Exposed so
// tests outside the golden harness can render readable byte-stream
// mismatches too.
func DiffLines(want, got string) string {
	w := splitLines(want)
	g := splitLines(got)
	const lcsCap = 2000 // O(n·m) table; beyond this fall back to first divergence
	if len(w) > lcsCap || len(g) > lcsCap {
		return firstDivergence(w, g)
	}

	// Standard LCS table on lines.
	lcs := make([][]int32, len(w)+1)
	for i := range lcs {
		lcs[i] = make([]int32, len(g)+1)
	}
	for i := len(w) - 1; i >= 0; i-- {
		for j := len(g) - 1; j >= 0; j-- {
			if w[i] == g[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}

	var sb strings.Builder
	i, j, same := 0, 0, 0
	flushSame := func() {
		if same > 0 {
			fmt.Fprintf(&sb, "  ... %d matching line(s)\n", same)
			same = 0
		}
	}
	for i < len(w) && j < len(g) {
		switch {
		case w[i] == g[j]:
			same++
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			flushSame()
			fmt.Fprintf(&sb, "-%s\n", w[i])
			i++
		default:
			flushSame()
			fmt.Fprintf(&sb, "+%s\n", g[j])
			j++
		}
	}
	for ; i < len(w); i++ {
		flushSame()
		fmt.Fprintf(&sb, "-%s\n", w[i])
	}
	for ; j < len(g); j++ {
		flushSame()
		fmt.Fprintf(&sb, "+%s\n", g[j])
	}
	flushSame()
	return sb.String()
}

// firstDivergence reports the first differing line with context — the
// large-input fallback for DiffLines.
func firstDivergence(w, g []string) string {
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("first divergence at line %d:\n-%s\n+%s\n(want %d lines, got %d)",
				i+1, w[i], g[i], len(w), len(g))
		}
	}
	return fmt.Sprintf("outputs agree on the first %d line(s) but lengths differ (want %d lines, got %d)",
		n, len(w), len(g))
}

// splitLines splits on '\n' without swallowing a missing trailing newline
// (a final unterminated line still diffs).
func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	lines := strings.Split(s, "\n")
	if lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	} else {
		lines[len(lines)-1] += `\ no newline`
	}
	return lines
}
