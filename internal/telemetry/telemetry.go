// Package telemetry is a small, stdlib-only metrics subsystem for the
// serving layer: atomic counters, gauges, and fixed-bucket histograms held
// in a Registry that renders the Prometheus text exposition format
// (text/plain; version=0.0.4).
//
// Design constraints, in order:
//
//   - lock-free on the hot path: every update (Inc, Add, Set, Observe) is
//     one or two atomic operations, safe under the race detector, so the
//     serve dispatcher and HTTP scrapes never contend on a mutex;
//   - deterministic exposition: WritePrometheus renders metrics sorted by
//     name and label value, so two identical runs produce byte-identical
//     scrapes (the replay tests rely on this);
//   - single-label vectors only: the serving layer's per-chip metrics need
//     exactly one label ("chip"); a full label-set model would be dead
//     weight.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float64 metric (stored as IEEE-754 bits in an atomic
// word).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Bucket bounds are
// upper-inclusive (Prometheus `le` semantics) with an implicit +Inf bucket.
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	n      atomic.Uint64
}

// NewHistogram builds a standalone histogram (not attached to any
// Registry) with the given ascending upper bucket bounds (+Inf implicit
// and must not be listed). Consumers that need local quantile estimation —
// per-bucket series in internal/pulse, client-side dashboards — use this
// instead of registering a throwaway family.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds not strictly ascending")
		}
	}
	if len(bounds) > 0 && math.IsInf(bounds[len(bounds)-1], 1) {
		panic("telemetry: histogram bounds list +Inf; it is implicit")
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is >= v; beyond the last bound the
	// sample lands in the implicit +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the sum of observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (q clamped to [0, 1]) from the bucket
// counts by linear interpolation within the owning bucket — the estimator
// PromQL's histogram_quantile uses, evaluated locally and deterministically
// from the bucket boundaries alone. The first bucket interpolates up from 0
// (or from its bound when that is negative); samples beyond the last finite
// bound clamp to that bound. Returns NaN when no samples were observed (or
// when the histogram has no finite buckets).
func (h *Histogram) Quantile(q float64) float64 {
	n := h.n.Load()
	if n == 0 || len(h.bounds) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	q = math.Min(math.Max(q, 0), 1)
	rank := q * float64(n)
	var cum float64
	for i, bound := range h.bounds {
		c := float64(h.counts[i].Load())
		if c > 0 && cum+c >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			} else if bound < 0 {
				lower = bound
			}
			return lower + (bound-lower)*((rank-cum)/c)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// kind discriminates registered metric families.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterVec
	kindGaugeVec
)

func (k kind) String() string {
	switch k {
	case kindCounter, kindCounterVec:
		return "counter"
	case kindGauge, kindGaugeVec:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// family is one registered metric name: a scalar metric or a single-label
// vector of children.
type family struct {
	name string
	help string
	kind kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram

	label string
	mu    sync.Mutex
	kidsC map[string]*Counter
	kidsG map[string]*Gauge
}

// CounterVec is a family of counters distinguished by one label value.
type CounterVec struct{ f *family }

// With returns (creating on first use) the child counter for the label
// value.
func (v *CounterVec) With(value string) *Counter {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	c := v.f.kidsC[value]
	if c == nil {
		c = &Counter{}
		v.f.kidsC[value] = c
	}
	return c
}

// GaugeVec is a family of gauges distinguished by one label value.
type GaugeVec struct{ f *family }

// With returns (creating on first use) the child gauge for the label value.
func (v *GaugeVec) With(value string) *Gauge {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	g := v.f.kidsG[value]
	if g == nil {
		g = &Gauge{}
		v.f.kidsG[value] = g
	}
	return g
}

// Registry holds named metric families. Metric registration is idempotent
// per (name, kind) — and, for vectors, per label name: registering an
// existing name with the same kind (and label) returns the existing metric;
// a kind or label mismatch panics (a programming error).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register installs (or retrieves) a family, enforcing name validity and
// kind consistency.
func (r *Registry) register(name, help string, k kind) *family {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, k, f.kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: k}
	r.families[name] = f
	return f
}

// Counter registers (or retrieves) a scalar counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter)
	if f.counter == nil {
		f.counter = &Counter{}
	}
	return f.counter
}

// Gauge registers (or retrieves) a scalar gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge)
	if f.gauge == nil {
		f.gauge = &Gauge{}
	}
	return f.gauge
}

// Histogram registers (or retrieves) a histogram with the given ascending
// upper bucket bounds (+Inf is implicit and must not be listed).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not strictly ascending", name))
		}
	}
	if len(bounds) > 0 && math.IsInf(bounds[len(bounds)-1], 1) {
		panic(fmt.Sprintf("telemetry: histogram %q lists +Inf; it is implicit", name))
	}
	f := r.register(name, help, kindHistogram)
	if f.hist == nil {
		f.hist = NewHistogram(bounds)
	}
	return f.hist
}

// CounterVec registers (or retrieves) a single-label counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if !validName(label) {
		panic(fmt.Sprintf("telemetry: invalid label name %q", label))
	}
	f := r.register(name, help, kindCounterVec)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.kidsC == nil {
		f.label = label
		f.kidsC = make(map[string]*Counter)
	} else if f.label != label {
		panic(fmt.Sprintf("telemetry: vector %q re-registered with label %q (was %q)", name, label, f.label))
	}
	return &CounterVec{f: f}
}

// GaugeVec registers (or retrieves) a single-label gauge family.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	if !validName(label) {
		panic(fmt.Sprintf("telemetry: invalid label name %q", label))
	}
	f := r.register(name, help, kindGaugeVec)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.kidsG == nil {
		f.label = label
		f.kidsG = make(map[string]*Gauge)
	} else if f.label != label {
		panic(fmt.Sprintf("telemetry: vector %q re-registered with label %q (was %q)", name, label, f.label))
	}
	return &GaugeVec{f: f}
}

// WritePrometheus renders every registered family in the Prometheus text
// exposition format, sorted by metric name then label value, so the output
// is deterministic for a given metric state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", f.name, f.counter.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.gauge.Value()))
		return err
	case kindHistogram:
		return f.writeHistogram(w)
	case kindCounterVec:
		f.mu.Lock()
		values := sortedKeysC(f.kidsC)
		kids := make([]*Counter, len(values))
		for i, v := range values {
			kids[i] = f.kidsC[v]
		}
		f.mu.Unlock()
		for i, v := range values {
			if _, err := fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", f.name, f.label, escapeLabel(v), kids[i].Value()); err != nil {
				return err
			}
		}
	case kindGaugeVec:
		f.mu.Lock()
		values := sortedKeysG(f.kidsG)
		kids := make([]*Gauge, len(values))
		for i, v := range values {
			kids[i] = f.kidsG[v]
		}
		f.mu.Unlock()
		for i, v := range values {
			if _, err := fmt.Fprintf(w, "%s{%s=\"%s\"} %s\n", f.name, f.label, escapeLabel(v), formatFloat(kids[i].Value())); err != nil {
				return err
			}
		}
	}
	return nil
}

func (f *family) writeHistogram(w io.Writer) error {
	h := f.hist
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", f.name, formatFloat(bound), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", f.name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", f.name, formatFloat(h.Sum())); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_count %d\n", f.name, h.Count()); err != nil {
		return err
	}
	// Deterministic bucket-interpolated quantile estimates, rendered as a
	// separate (untyped) series so strict histogram parsers are unaffected.
	for _, qe := range [...]struct {
		q     float64
		label string
	}{{0.5, "0.5"}, {0.9, "0.9"}, {0.99, "0.99"}} {
		if _, err := fmt.Fprintf(w, "%s_quantile{q=\"%s\"} %s\n",
			f.name, qe.label, formatFloat(h.Quantile(qe.q))); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeysC(m map[string]*Counter) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysG(m map[string]*Gauge) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// formatFloat renders a float in the shortest round-trippable decimal form.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the Prometheus text exposition
// format: backslash, double quote, and line feed — and nothing else. Go's
// %q was used here before, but it over-escapes (tabs, control bytes, and
// non-ASCII become Go escape sequences that Prometheus parsers read
// literally); the spec names exactly these three characters.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s) + 2)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

// validName checks the Prometheus metric/label name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}
