package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(3.5)
	if got := g.Value(); math.Abs(got-3.5) > 0 {
		t.Fatalf("gauge = %g, want 3.5", got)
	}
	// Re-registration returns the same metric.
	if r.Counter("reqs_total", "requests") != c {
		t.Fatal("re-registering a counter returned a new instance")
	}
}

func TestHistogramBuckets(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-106) > 1e-12 {
		t.Fatalf("sum = %g, want 106", got)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// le="1" catches 0.5 and the boundary value 1 (upper-inclusive).
	for _, want := range []string{
		`lat_bucket{le="1"} 2`,
		`lat_bucket{le="2"} 3`,
		`lat_bucket{le="4"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		`lat_sum 106`,
		`lat_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestVectorsRenderSortedByLabel(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	cv := r.CounterVec("chip_reprograms_total", "per-chip reprograms", "chip")
	cv.With("10").Add(2)
	cv.With("2").Inc()
	cv.With("1").Add(7)
	gv := r.GaugeVec("chip_queue_depth", "per-chip depth", "chip")
	gv.With("0").Set(3)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Lexicographic label order: "1" < "10" < "2".
	i1 := strings.Index(out, `chip_reprograms_total{chip="1"} 7`)
	i10 := strings.Index(out, `chip_reprograms_total{chip="10"} 2`)
	i2 := strings.Index(out, `chip_reprograms_total{chip="2"} 1`)
	if i1 < 0 || i10 < 0 || i2 < 0 || !(i1 < i10 && i10 < i2) {
		t.Fatalf("vector children missing or unsorted:\n%s", out)
	}
	if !strings.Contains(out, `chip_queue_depth{chip="0"} 3`) {
		t.Fatalf("gauge vec child missing:\n%s", out)
	}
}

func TestExpositionIsDeterministic(t *testing.T) {
	t.Parallel()
	build := func() string {
		r := NewRegistry()
		r.Counter("b_total", "b").Add(2)
		r.Counter("a_total", "a").Add(1)
		v := r.CounterVec("c_total", "c", "chip")
		v.With("3").Inc()
		v.With("1").Inc()
		h := r.Histogram("h", "h", []float64{1, 10})
		h.Observe(0.5)
		h.Observe(5)
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("two identical registries rendered differently:\n%s\n---\n%s", a, b)
	}
}

func TestConcurrentUpdatesRaceClean(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	c := r.Counter("n_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 2})
	cv := r.CounterVec("v_total", "", "chip")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Inc()
				g.Set(float64(j))
				h.Observe(float64(j % 3))
				cv.With("0").Inc()
			}
		}(i)
	}
	// Concurrent scrapes while updating.
	for k := 0; k < 20; k++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := c.Value(); got != 8*500 {
		t.Fatalf("counter = %d, want %d", got, 8*500)
	}
	if got := h.Count(); got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
}

func TestRegistryPanicsOnKindMismatch(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("m", "")
	r.Gauge("m", "")
}

func TestRegistryPanicsOnVecLabelMismatch(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("label mismatch did not panic")
		}
	}()
	r := NewRegistry()
	r.CounterVec("v", "", "chip")
	r.CounterVec("v", "", "core")
}

func TestRegistryPanicsOnGaugeVecLabelMismatch(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("label mismatch did not panic")
		}
	}()
	r := NewRegistry()
	r.GaugeVec("v", "", "chip")
	r.GaugeVec("v", "", "core")
}

func TestRegistryPanicsOnBadName(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("bad metric name did not panic")
		}
	}()
	NewRegistry().Counter("9bad name", "")
}

// TestNewHistogramStandalone pins the registry-free constructor pulse uses
// for its per-bucket series histograms: same bound validation as
// Registry.Histogram, NaN quantile before any sample, and the PromQL-style
// within-bucket interpolation.
func TestNewHistogramStandalone(t *testing.T) {
	t.Parallel()
	h := NewHistogram([]float64{1, 2, 4})
	if v := h.Quantile(0.5); !math.IsNaN(v) {
		t.Fatalf("empty histogram Quantile = %g, want NaN", v)
	}
	for _, v := range []float64{0.5, 1.5, 3} {
		h.Observe(v)
	}
	if got := h.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	// rank 1.5 of 3 falls halfway into the (1,2] bucket.
	if got := h.Quantile(0.5); got != 1.5 {
		t.Fatalf("Quantile(0.5) = %g, want 1.5", got)
	}

	for _, bounds := range [][]float64{
		{2, 1},
		{1, 1},
		{1, 2, math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}
