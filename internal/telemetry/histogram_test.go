package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"odin/internal/check"
)

// TestHistogramBucketEdges pins the upper-inclusive `le` semantics at every
// edge: a sample equal to a bound lands in that bound's bucket, a sample
// just above it lands in the next one.
func TestHistogramBucketEdges(t *testing.T) {
	t.Parallel()
	bounds := []float64{1, 2, 4}
	h := NewRegistry().Histogram("edge", "", bounds)
	for _, b := range bounds {
		h.Observe(b)
		h.Observe(math.Nextafter(b, math.Inf(1)))
	}
	// Raw (non-cumulative) occupancy: bucket i holds its own bound plus the
	// value just above bound i-1.
	want := []uint64{1, 2, 2, 1} // le=1: {1}; le=2: {1⁺,2}; le=4: {2⁺,4}; +Inf: {4⁺}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("raw bucket %d holds %d samples, want %d", i, got, w)
		}
	}
}

// TestHistogramPlusInfBucket pins the implicit overflow bucket: anything
// beyond the last bound — including literal +Inf — is counted there and
// still contributes to Count and the exposition totals.
func TestHistogramPlusInfBucket(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	h := r.Histogram("over", "", []float64{1})
	h.Observe(2)
	h.Observe(math.Inf(1))
	if got := h.counts[1].Load(); got != 2 {
		t.Fatalf("overflow bucket holds %d samples, want 2", got)
	}
	if got := h.Count(); got != 2 {
		t.Fatalf("Count() = %d, want 2", got)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`over_bucket{le="1"} 0`, `over_bucket{le="+Inf"} 2`, `over_count 2`} {
		if !strings.Contains(sb.String(), want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, sb.String())
		}
	}
}

// TestHistogramNegativeObservations pins that negative samples are ordinary
// observations: they land in the first finite bucket (its bound exceeds
// them), count toward _count, and drag _sum negative.
func TestHistogramNegativeObservations(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	h := r.Histogram("neg", "", []float64{0, 1})
	h.Observe(-3)
	h.Observe(-0.5)
	h.Observe(0.25)
	if got := h.counts[0].Load(); got != 2 {
		t.Fatalf("first bucket holds %d samples, want the 2 negatives", got)
	}
	if got := h.Sum(); math.Abs(got-(-3.25)) > 1e-12 {
		t.Fatalf("Sum() = %g, want -3.25", got)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`neg_bucket{le="0"} 2`, `neg_bucket{le="1"} 3`, `neg_sum -3.25`, `neg_count 3`} {
		if !strings.Contains(sb.String(), want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, sb.String())
		}
	}
}

// bucketLine matches one exposition bucket sample of the named histogram.
var bucketLine = regexp.MustCompile(`^(\w+)_bucket\{le="([^"]+)"\} (\d+)$`)

// parseBuckets extracts (le, cumulative) pairs for one histogram, in
// exposition order.
func parseBuckets(t testing.TB, exposition, name string) (les []float64, cums []uint64) {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		m := bucketLine.FindStringSubmatch(line)
		if m == nil || m[1] != name {
			continue
		}
		le := math.Inf(1)
		if m[2] != "+Inf" {
			v, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				t.Fatalf("unparseable le %q: %v", m[2], err)
			}
			le = v
		}
		c, err := strconv.ParseUint(m[3], 10, 64)
		if err != nil {
			t.Fatalf("unparseable cumulative count %q: %v", m[3], err)
		}
		les = append(les, le)
		cums = append(cums, c)
	}
	return les, cums
}

// TestHistogramExpositionOrdering pins the Prometheus exposition contract:
// bucket lines appear in strictly ascending `le` order ending at +Inf,
// their counts are cumulative (monotone nondecreasing), and the +Inf line
// equals _count.
func TestHistogramExpositionOrdering(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	h := r.Histogram("ord", "", []float64{0.001, 0.01, 0.1, 1, 10})
	for _, v := range []float64{-1, 0.0005, 0.005, 0.005, 0.5, 5, 50, 500} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	les, cums := parseBuckets(t, sb.String(), "ord")
	if len(les) != 6 {
		t.Fatalf("%d bucket lines, want 5 bounds + +Inf:\n%s", len(les), sb.String())
	}
	for i := 1; i < len(les); i++ {
		if les[i] <= les[i-1] {
			t.Errorf("le order violated: %g after %g", les[i], les[i-1])
		}
		if cums[i] < cums[i-1] {
			t.Errorf("cumulative count regressed: %d after %d at le=%g", cums[i], cums[i-1], les[i])
		}
	}
	if !math.IsInf(les[len(les)-1], 1) {
		t.Errorf("last bucket le=%g, want +Inf", les[len(les)-1])
	}
	if cums[len(cums)-1] != h.Count() {
		t.Errorf("+Inf cumulative %d != count %d", cums[len(cums)-1], h.Count())
	}
}

// histCase is one generated histogram workload.
type histCase struct {
	Bounds  []float64
	Samples []float64
}

func genHistCase() check.Gen[histCase] {
	return check.Gen[histCase]{
		Generate: func(t *check.T) histCase {
			nb := 1 + t.Rng.Intn(6)
			c := histCase{Bounds: make([]float64, nb)}
			edge := t.Rng.Float64()*10 - 5
			for i := range c.Bounds {
				c.Bounds[i] = edge
				edge += 0.1 + t.Rng.Float64()*5
			}
			ns := 1 + t.Rng.Intn(30)
			for i := 0; i < ns; i++ {
				if t.Rng.Bernoulli(0.25) {
					// Force edge-exact samples often: that is where
					// upper-inclusive vs exclusive bugs live.
					c.Samples = append(c.Samples, c.Bounds[t.Rng.Intn(nb)])
				} else {
					c.Samples = append(c.Samples, t.Rng.Float64()*40-20)
				}
			}
			return c
		},
		Shrink: func(c histCase) []histCase {
			var out []histCase
			if len(c.Samples) > 1 {
				m := c
				m.Samples = c.Samples[:len(c.Samples)/2]
				out = append(out, m)
			}
			if len(c.Bounds) > 1 {
				m := c
				m.Bounds = c.Bounds[:len(c.Bounds)-1]
				out = append(out, m)
			}
			return out
		},
	}
}

// TestPropHistogramConservation is the metamorphic form of the exposition
// contract: for arbitrary ascending bounds and samples (biased onto the
// edges), every cumulative bucket equals a brute-force recount with `v <=
// le`, and the +Inf bucket conserves all samples.
func TestPropHistogramConservation(t *testing.T) {
	t.Parallel()
	seq := 0
	check.Run(t, genHistCase(), func(c histCase) error {
		seq++
		r := NewRegistry()
		name := fmt.Sprintf("prop%d", seq)
		h := r.Histogram(name, "", c.Bounds)
		for _, v := range c.Samples {
			h.Observe(v)
		}
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			return err
		}
		les, cums := parseBuckets(t, sb.String(), name)
		if len(les) != len(c.Bounds)+1 {
			return fmt.Errorf("%d bucket lines for %d bounds", len(les), len(c.Bounds))
		}
		for i, le := range les {
			var want uint64
			for _, v := range c.Samples {
				if v <= le {
					want++
				}
			}
			if cums[i] != want {
				return fmt.Errorf("bucket le=%g holds %d cumulative samples, recount says %d", le, cums[i], want)
			}
		}
		if cums[len(cums)-1] != uint64(len(c.Samples)) {
			return fmt.Errorf("+Inf bucket %d loses samples out of %d", cums[len(cums)-1], len(c.Samples))
		}
		return nil
	})
}
