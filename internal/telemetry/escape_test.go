package telemetry

import (
	"math"
	"strings"
	"testing"
)

// TestLabelEscapingPerSpec is the regression for the %q rendering this
// package used before: the text exposition format escapes exactly
// backslash, double quote, and line feed in label values — everything
// else (tabs, control bytes, non-ASCII) passes through verbatim, where Go
// quoting would emit escape sequences Prometheus parsers read literally.
func TestLabelEscapingPerSpec(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	c := r.CounterVec("esc_total", "escaping fixture", "path")
	c.With(`back\slash`).Inc()
	c.With("quo\"te").Inc()
	c.With("new\nline").Add(2)
	c.With("tab\tand\x01ctrl and ünïcode").Inc()
	g := r.GaugeVec("esc_gauge", "", "path")
	g.With("a\\\"b\nc").Set(1.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`esc_total{path="back\\slash"} 1`,
		`esc_total{path="quo\"te"} 1`,
		`esc_total{path="new\nline"} 2`,
		"esc_total{path=\"tab\tand\x01ctrl and ünïcode\"} 1", // verbatim
		`esc_gauge{path="a\\\"b\nc"} 1.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, `\t`) || strings.Contains(out, `\x01`) || strings.Contains(out, `\u`) {
		t.Errorf("Go-style over-escaping leaked into the exposition:\n%s", out)
	}
}

func TestEscapeLabelCleanValuesUntouched(t *testing.T) {
	t.Parallel()
	for _, s := range []string{"", "0", "chip-7", "ResNet18", "a b c", "ünïcode"} {
		if got := escapeLabel(s); got != s {
			t.Errorf("escapeLabel(%q) = %q, want unchanged", s, got)
		}
	}
}

// TestHistogramQuantiles pins the deterministic bucket-interpolation
// estimator: exact interpolated values for a hand-built distribution,
// NaN on empty, and clamping to the last finite bound for +Inf mass.
func TestHistogramQuantiles(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	h := r.Histogram("lat", "quantile fixture", []float64{1, 2, 4})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile not NaN")
	}

	// 1 sample in (−∞,1], 1 in (1,2], 2 in (2,4]: n=4.
	for _, v := range []float64{0.5, 1.5, 3, 3} {
		h.Observe(v)
	}
	approx := func(got, want float64) bool { return math.Abs(got-want) <= 1e-12 }
	// p50: rank 2 lands at the end of bucket (1,2] → 2 exactly.
	if got := h.Quantile(0.5); !approx(got, 2) {
		t.Fatalf("p50 = %g, want 2", got)
	}
	// p99: rank 3.96 interpolates inside (2,4]: 2 + 2*(1.96/2).
	if got := h.Quantile(0.99); !approx(got, 3.96) {
		t.Fatalf("p99 = %g, want 3.96", got)
	}
	// q clamps.
	if got := h.Quantile(2); !approx(got, 4) {
		t.Fatalf("q>1 = %g, want 4", got)
	}

	// Mass beyond the last finite bound clamps the estimate to that bound.
	h.Observe(100)
	if got := h.Quantile(0.99); !approx(got, 4) {
		t.Fatalf("p99 with +Inf mass = %g, want 4", got)
	}

	// The exposition renders the estimates as a separate series.
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat_quantile{q="0.5"}`, `lat_quantile{q="0.9"}`, `lat_quantile{q="0.99"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestHistogramQuantileFirstAndNegativeBuckets pins the first-bucket lower
// bound rule: interpolate up from 0, or from the bound itself when the
// first bound is negative.
func TestHistogramQuantileFirstAndNegativeBuckets(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	h := r.Histogram("pos", "", []float64{10})
	h.Observe(3)
	h.Observe(7)
	// rank 1 of 2 in bucket (0,10] → 0 + 10*(1/2) = 5.
	if got := h.Quantile(0.5); got != 5 {
		t.Fatalf("first-bucket p50 = %g, want 5", got)
	}
	hn := r.Histogram("neg", "", []float64{-10, 0})
	hn.Observe(-15) // lands in the all-negative first bucket (le=-10)
	// A 0 lower bound would invert the interval, so the bound itself
	// anchors the (zero-width) estimate.
	if got := hn.Quantile(1); got != -10 {
		t.Fatalf("negative first-bucket p100 = %g, want -10", got)
	}
	hn.Observe(-5) // (−10,0] bucket: p100 interpolates to its upper bound
	if got := hn.Quantile(1); got != 0 {
		t.Fatalf("negative-bucket p100 = %g, want 0", got)
	}
}
