package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strconv"
	"strings"
	"sync"

	"odin/internal/clock"
)

// LogHandler is a deterministic slog.Handler: it renders logfmt-style
// lines stamped from an internal/clock Clock instead of the record's
// wall-clock time, so replayed runs produce reproducible logs (a Virtual
// clock yields byte-identical output; only live binaries see real
// timestamps). Safe for concurrent use; each Handle emits one line with a
// single Write.
//
//	t=12.5 level=INFO msg="chip degraded" chip=3 reprograms=8
type LogHandler struct {
	mu  *sync.Mutex
	w   io.Writer
	clk clock.Clock

	level  slog.Leveler
	prefix string // pre-rendered WithAttrs attributes
	groups []string
}

// NewLogHandler returns a handler writing to w, stamping times from clk,
// and dropping records below level (nil level means slog.LevelInfo).
func NewLogHandler(w io.Writer, clk clock.Clock, level slog.Leveler) *LogHandler {
	if level == nil {
		level = slog.LevelInfo
	}
	return &LogHandler{mu: &sync.Mutex{}, w: w, clk: clk, level: level}
}

// Enabled implements slog.Handler.
func (h *LogHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= h.level.Level()
}

// Handle implements slog.Handler: one deterministic logfmt line per
// record. The record's own Time (a wall-clock read taken by slog) is
// deliberately ignored.
func (h *LogHandler) Handle(_ context.Context, r slog.Record) error {
	var sb strings.Builder
	sb.WriteString("t=")
	sb.WriteString(strconv.FormatFloat(h.clk.Now(), 'g', -1, 64))
	sb.WriteString(" level=")
	sb.WriteString(r.Level.String())
	sb.WriteString(" msg=")
	sb.WriteString(logValue(r.Message))
	sb.WriteString(h.prefix)
	r.Attrs(func(a slog.Attr) bool {
		h.appendAttr(&sb, a)
		return true
	})
	sb.WriteByte('\n')
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := io.WriteString(h.w, sb.String())
	return err
}

// WithAttrs implements slog.Handler by pre-rendering the attributes.
func (h *LogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	var sb strings.Builder
	sb.WriteString(h.prefix)
	for _, a := range attrs {
		h.appendAttr(&sb, a)
	}
	nh.prefix = sb.String()
	return &nh
}

// WithGroup implements slog.Handler; group names dot-qualify later keys.
func (h *LogHandler) WithGroup(name string) slog.Handler {
	nh := *h
	nh.groups = append(append([]string(nil), h.groups...), name)
	return &nh
}

func (h *LogHandler) appendAttr(sb *strings.Builder, a slog.Attr) {
	if a.Equal(slog.Attr{}) {
		return
	}
	v := a.Value.Resolve()
	if v.Kind() == slog.KindGroup {
		sub := *h
		if a.Key != "" {
			sub.groups = append(append([]string(nil), h.groups...), a.Key)
		}
		for _, ga := range v.Group() {
			sub.appendAttr(sb, ga)
		}
		return
	}
	sb.WriteByte(' ')
	for _, g := range h.groups {
		sb.WriteString(g)
		sb.WriteByte('.')
	}
	sb.WriteString(a.Key)
	sb.WriteByte('=')
	switch v.Kind() {
	case slog.KindInt64:
		sb.WriteString(strconv.FormatInt(v.Int64(), 10))
	case slog.KindUint64:
		sb.WriteString(strconv.FormatUint(v.Uint64(), 10))
	case slog.KindFloat64:
		sb.WriteString(strconv.FormatFloat(v.Float64(), 'g', -1, 64))
	case slog.KindBool:
		sb.WriteString(strconv.FormatBool(v.Bool()))
	default:
		sb.WriteString(logValue(fmt.Sprintf("%v", v.Any())))
	}
}

// logValue quotes a string when it contains logfmt-breaking characters.
func logValue(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}
