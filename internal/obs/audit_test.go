package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"odin/internal/ou"
)

func sampleRun(t0 float64) RunAudit {
	return RunAudit{
		Time: t0, Age: t0 + 100,
		Layers: []LayerDecision{
			{
				Layer: 0, Predicted: ou.Size{R: 16, C: 16}, Start: ou.Size{R: 16, C: 16},
				Chosen: ou.Size{R: 16, C: 16}, Strategy: "rb", Evaluations: 5, PolicyWon: true,
				Candidates: []Candidate{
					{Size: ou.Size{R: 16, C: 16}, Energy: 1e-9, Latency: 2e-6, EDP: 2e-15, NF: 0.1, Feasible: true},
					{Size: ou.Size{R: 32, C: 16}, EDP: math.NaN(), NF: 0.9},
				},
			},
			{
				Layer: 1, Predicted: ou.Size{R: 64, C: 64}, Start: ou.Size{R: 32, C: 32},
				Chosen: ou.Size{R: 16, C: 32}, Strategy: "rb", Evaluations: 9,
				Candidates: []Candidate{
					{Size: ou.Size{R: 16, C: 32}, Energy: 2e-9, Latency: 1e-6, EDP: 2e-15, NF: 0.2, Feasible: true},
				},
			},
			{Layer: 2, Predicted: ou.Size{R: 8, C: 8}, Chosen: ou.Size{R: 4, C: 4}, Strategy: "degraded"},
		},
		Reprogrammed: true,
	}
}

func TestAuditLogNilSafeAndBounded(t *testing.T) {
	t.Parallel()
	var nilLog *AuditLog
	if nilLog.Enabled() {
		t.Fatal("nil audit log enabled")
	}
	nilLog.Add(sampleRun(0)) // no-op
	if got := nilLog.Runs(); got != nil {
		t.Fatalf("nil log runs: %v", got)
	}
	var buf bytes.Buffer
	if err := nilLog.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil log rendered: %q", buf.String())
	}

	l := NewAuditLog(2)
	for i := 0; i < 4; i++ {
		l.Add(sampleRun(float64(i)))
	}
	runs := l.Runs()
	if len(runs) != 2 || runs[0].Time != 2 || runs[1].Time != 3 {
		t.Fatalf("bounded log kept %+v", runs)
	}
}

func TestRunAuditAggregates(t *testing.T) {
	t.Parallel()
	r := sampleRun(0)
	if got := r.Evaluations(); got != 14 {
		t.Fatalf("evaluations %d, want 14", got)
	}
	// Layer 1 disagreed; layer 2 is degraded (not a disagreement).
	if got := r.Disagreements(); got != 1 {
		t.Fatalf("disagreements %d, want 1", got)
	}
}

func TestWriteTableRendersAttribution(t *testing.T) {
	t.Parallel()
	l := NewAuditLog(0)
	l.Add(sampleRun(0))
	l.Add(sampleRun(1000))
	var buf bytes.Buffer
	if err := l.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"run 0", "run 1", "layer", "predicted", "chosen",
		"16×16", "policy", "search", "degraded",
		"totals: evaluations=14 disagreements=1 reprogram=true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Deterministic: render twice, identical bytes.
	var again bytes.Buffer
	if err := l.WriteTable(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("table rendering not deterministic")
	}
}

// TestAuditLogTap pins the tap contract: every Add invokes the tap
// synchronously with the run, outside the log's lock (the tap can read the
// log), and the log itself still retains runs as usual.
func TestAuditLogTap(t *testing.T) {
	t.Parallel()
	var tapped []RunAudit
	var l *AuditLog
	l = NewAuditLogTap(1, func(r RunAudit) {
		// Reading the log from inside the tap must not deadlock.
		_ = l.Runs()
		tapped = append(tapped, r)
	})
	if !l.Enabled() {
		t.Fatal("tapped log not enabled")
	}
	l.Add(sampleRun(1))
	l.Add(sampleRun(2))
	if len(tapped) != 2 || tapped[0].Time != 1 || tapped[1].Time != 2 {
		t.Fatalf("tap saw %+v, want both runs in order", tapped)
	}
	if runs := l.Runs(); len(runs) != 1 || runs[0].Time != 2 {
		t.Fatalf("tapped log retention broken: %+v", runs)
	}
}
