package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteChromeTrace renders every held span as Chrome trace-event JSON —
// the "JSON Array with metadata" form chrome://tracing and Perfetto load
// directly. Each span becomes one complete ("ph":"X") event: timestamps in
// microseconds on the clock's virtual time base, the span's track as the
// thread id (one lane per track), and the typed attributes plus the
// canonical span/parent ids under "args". Output is byte-identical for a
// given span set regardless of recording interleaving (see snapshot).
//
// A nil Tracer writes an empty (but valid) trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	if t != nil {
		for i, r := range t.snapshot() {
			sep := ","
			if i == 0 {
				sep = ""
			}
			if _, err := io.WriteString(w, sep+chromeEvent(r)+"\n"); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

// chromeEvent renders one record as a trace-event object. Fields are
// hand-assembled (not map-marshalled) so key order — and therefore the
// byte stream — is deterministic.
func chromeEvent(r record) string {
	var sb strings.Builder
	sb.WriteString(`{"name":`)
	sb.WriteString(strconv.Quote(r.name))
	sb.WriteString(`,"cat":"odin","ph":"X","pid":0,"tid":`)
	sb.WriteString(strconv.Itoa(r.track))
	sb.WriteString(`,"ts":`)
	sb.WriteString(jsonFloat(r.start * 1e6)) // seconds -> microseconds
	sb.WriteString(`,"dur":`)
	sb.WriteString(jsonFloat((r.end - r.start) * 1e6))
	sb.WriteString(`,"args":{"span":`)
	sb.WriteString(strconv.FormatUint(r.id, 10))
	sb.WriteString(`,"parent":`)
	sb.WriteString(strconv.FormatUint(r.parent, 10))
	for _, a := range r.attrs {
		sb.WriteByte(',')
		sb.WriteString(strconv.Quote(a.Key))
		sb.WriteByte(':')
		sb.WriteString(a.jsonValue())
	}
	sb.WriteString("}}")
	return sb.String()
}

// FlameRow is the per-span-name aggregation of the flame summary.
type FlameRow struct {
	Name  string
	Count int

	Total float64 // Σ span durations (s)
	Self  float64 // Total minus time covered by direct children (s)

	P50, P90, P99 float64 // exact duration quantiles (s)
}

// FlameSummary aggregates the held spans by name: span count, total and
// self time, and exact p50/p90/p99 of the span durations (computed from
// the sorted duration list, not bucket-estimated — span sets are small
// enough to keep exactly; the telemetry histograms use bucket
// interpolation instead, see telemetry.Histogram.Quantile). Rows sort by
// total time descending, name ascending on ties. Self time subtracts the
// duration of *direct* children only, clamped at zero when children
// overlap their parent's window (virtual-time spans never do).
func (t *Tracer) FlameSummary() []FlameRow {
	if t == nil {
		return nil
	}
	recs := t.snapshot()
	childSum := make(map[uint64]float64) // parent id -> Σ direct child durations
	for _, r := range recs {
		if r.parent != 0 {
			childSum[r.parent] += r.end - r.start
		}
	}
	byName := make(map[string]*FlameRow)
	durs := make(map[string][]float64)
	var names []string
	for _, r := range recs {
		row := byName[r.name]
		if row == nil {
			row = &FlameRow{Name: r.name}
			byName[r.name] = row
			names = append(names, r.name)
		}
		d := r.end - r.start
		row.Count++
		row.Total += d
		self := d - childSum[r.id]
		if self < 0 {
			self = 0
		}
		row.Self += self
		durs[r.name] = append(durs[r.name], d)
	}
	out := make([]FlameRow, 0, len(names))
	for _, name := range names {
		row := byName[name]
		ds := durs[name]
		sort.Float64s(ds)
		row.P50 = exactQuantile(ds, 0.50)
		row.P90 = exactQuantile(ds, 0.90)
		row.P99 = exactQuantile(ds, 0.99)
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool {
		// Exact float ordering: equal totals fall through to the name
		// tie-breaker, so no tolerance is wanted here.
		if out[i].Total > out[j].Total {
			return true
		}
		if out[i].Total < out[j].Total {
			return false
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// exactQuantile returns the q-quantile of an ascending-sorted sample by
// the nearest-rank method (deterministic, no interpolation).
func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// WriteFlame renders the flame summary as a fixed-width text table —
// deterministic bytes for a given span set (golden-snapshot friendly).
func (t *Tracer) WriteFlame(w io.Writer) error {
	rows := t.FlameSummary()
	if _, err := fmt.Fprintf(w, "%-24s %7s %14s %14s %12s %12s %12s\n",
		"span", "count", "total(s)", "self(s)", "p50(s)", "p90(s)", "p99(s)"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-24s %7d %14.6e %14.6e %12.4e %12.4e %12.4e\n",
			r.Name, r.Count, r.Total, r.Self, r.P50, r.P90, r.P99); err != nil {
			return err
		}
	}
	return nil
}
