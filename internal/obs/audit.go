package obs

import (
	"fmt"
	"io"
	"math"
	"sync"

	"odin/internal/ou"
)

// Candidate is one OU size a search evaluated for one layer decision, with
// the scores that drove the comparison: the analytical energy/latency/EDP
// (Eq. 1/2) and the effective non-ideality against the constraint η.
type Candidate struct {
	Size     ou.Size
	Energy   float64 // J (analytical layer energy at this size)
	Latency  float64 // s
	EDP      float64 // J·s; NaN when the candidate was infeasible (not scored)
	NF       float64 // effective non-ideality at the decision's device age
	Feasible bool
}

// LayerDecision is the audit record of one RunInference layer decision:
// what the policy predicted, where the feasibility clamp moved it, which
// search strategy refined it, every candidate the search scored, and who
// won (policy prediction == final choice, or the search overrode it).
type LayerDecision struct {
	Layer     int
	Predicted ou.Size // policy output (Algorithm 1 line 5)
	Start     ou.Size // after the feasibility clamp (line 6 seed)
	Chosen    ou.Size // final decision

	// Strategy is "rb" (resource-bounded local walk), "ex" (exhaustive
	// grid scan) or "degraded" (no OU size satisfies η; smallest size used
	// and a reprogram scheduled).
	Strategy string

	Evaluations int  // candidate evaluations spent (comparator budget)
	PolicyWon   bool // Predicted == Chosen (no disagreement recorded)

	// Cached marks a decision served from the controller's decision cache
	// (internal/decache) instead of a live search. Candidates, Evaluations
	// and the choice itself are byte-identical either way (the cache
	// contract); Cached only attributes where the bytes came from, so
	// artefact renderings must not include it.
	Cached bool

	Candidates []Candidate

	// Front lists the non-dominated (energy, latency, NF) candidates when
	// a multi-objective strategy drove the decision (strategy "pareto"),
	// in grid order; nil for scalar strategies. Chosen is always EDP-tied
	// with a front member (the documented scalarization rule).
	Front []ou.Size
}

// RunAudit is the audit record of one full RunInference pass.
type RunAudit struct {
	Time float64 // simulation time of the run (s)
	Age  float64 // device age at the run (s)

	Layers []LayerDecision

	Reprogrammed bool // the run scheduled a reprogramming pass
}

// Evaluations sums the comparator budget spent across the run's layers.
func (r RunAudit) Evaluations() int {
	n := 0
	for _, l := range r.Layers {
		n += l.Evaluations
	}
	return n
}

// Disagreements counts layers where the search overrode the policy.
func (r RunAudit) Disagreements() int {
	n := 0
	for _, l := range r.Layers {
		if !l.PolicyWon && l.Strategy != "degraded" {
			n++
		}
	}
	return n
}

// AuditLog accumulates RunAudits. Bounded when built with NewAuditLog's
// positive cap (oldest runs evicted); nil-safe: Add on a nil log is a
// no-op and Enabled reports false, so the controller hot path pays one
// pointer test when auditing is off.
type AuditLog struct {
	mu   sync.Mutex
	cap  int
	runs []RunAudit
	tap  func(RunAudit)
}

// NewAuditLog returns an audit log keeping at most cap runs (cap <= 0
// means unbounded).
func NewAuditLog(cap int) *AuditLog { return &AuditLog{cap: cap} }

// NewAuditLogTap is NewAuditLog plus a per-run callback: tap is invoked
// synchronously from Add, outside the log's lock, with each recorded run.
// It is the audit→event adapter the serving layer uses to lift decision
// summaries onto the pulse bus without changing the controller's hook
// (core.ControllerOptions.Audit stays an *AuditLog). The callback runs on
// whichever goroutine called Add — the serve worker mid-batch — so it must
// be cheap and must not call back into the log.
func NewAuditLogTap(cap int, tap func(RunAudit)) *AuditLog {
	return &AuditLog{cap: cap, tap: tap}
}

// Enabled reports whether the log records anything.
func (l *AuditLog) Enabled() bool { return l != nil }

// Add appends one run's audit (evicting the oldest beyond the cap) and
// invokes the tap, when one was attached, after releasing the lock.
func (l *AuditLog) Add(r RunAudit) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.runs = append(l.runs, r)
	if l.cap > 0 && len(l.runs) > l.cap {
		l.runs = l.runs[len(l.runs)-l.cap:]
	}
	l.mu.Unlock()
	if l.tap != nil {
		l.tap(r)
	}
}

// Runs snapshots the recorded audits in record order.
func (l *AuditLog) Runs() []RunAudit {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]RunAudit, len(l.runs))
	copy(out, l.runs)
	return out
}

// WriteTable renders the per-layer decision-audit attribution table: one
// section per recorded run, one row per layer with the chosen OU size, the
// policy prediction, the winner, the candidates evaluated and the best
// scores, followed by the run's totals. Deterministic bytes for a given
// log (runs are recorded by a single controller in run order).
func (l *AuditLog) WriteTable(w io.Writer) error {
	for i, run := range l.Runs() {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "run %d  t=%.6g s  age=%.6g s\n", i, run.Time, run.Age); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%5s %10s %10s %10s %8s %8s %6s %12s %12s %10s\n",
			"layer", "predicted", "start", "chosen", "winner", "strat", "evals",
			"energy(J)", "latency(s)", "nf"); err != nil {
			return err
		}
		for _, d := range run.Layers {
			best, ok := d.chosenCandidate()
			e, lat, nf := math.NaN(), math.NaN(), math.NaN()
			if ok {
				e, lat, nf = best.Energy, best.Latency, best.NF
			}
			winner := "search"
			if d.PolicyWon {
				winner = "policy"
			}
			if d.Strategy == "degraded" {
				winner = "-"
			}
			frontNote := ""
			if len(d.Front) > 0 {
				frontNote = fmt.Sprintf("  front=%d", len(d.Front))
			}
			if _, err := fmt.Fprintf(w, "%5d %10s %10s %10s %8s %8s %6d %12.4e %12.4e %10.4e%s\n",
				d.Layer, d.Predicted, d.Start, d.Chosen, winner, d.Strategy,
				d.Evaluations, e, lat, nf, frontNote); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "totals: evaluations=%d disagreements=%d reprogram=%t\n",
			run.Evaluations(), run.Disagreements(), run.Reprogrammed); err != nil {
			return err
		}
	}
	return nil
}

// chosenCandidate finds the decision's chosen size among its scored
// candidates (the last evaluation of that size wins — RB can revisit).
func (d LayerDecision) chosenCandidate() (Candidate, bool) {
	var out Candidate
	found := false
	for _, c := range d.Candidates {
		if c.Size == d.Chosen {
			out, found = c, true
		}
	}
	return out, found
}
