package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"sync"
	"testing"

	"odin/internal/clock"
)

func TestLogHandlerDeterministicOutput(t *testing.T) {
	t.Parallel()
	render := func() string {
		var buf bytes.Buffer
		clk := clock.NewVirtual(2.5)
		log := slog.New(NewLogHandler(&buf, clk, nil))
		log.Info("chip degraded", "chip", 3, "energy", 0.125, "live", true)
		clk.Advance(1.5)
		log.Warn("queue full", "model", "VGG11")
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("log output not deterministic:\n%q\nvs\n%q", a, b)
	}
	want := "t=2.5 level=INFO msg=\"chip degraded\" chip=3 energy=0.125 live=true\n" +
		"t=4 level=WARN msg=\"queue full\" model=VGG11\n"
	if a != want {
		t.Fatalf("log output:\n%q\nwant:\n%q", a, want)
	}
}

func TestLogHandlerLevelFilter(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	log := slog.New(NewLogHandler(&buf, clock.NewVirtual(0), slog.LevelWarn))
	log.Info("dropped")
	log.Debug("dropped too")
	log.Error("kept")
	out := buf.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, "msg=kept") {
		t.Fatalf("level filter broken: %q", out)
	}
}

func TestLogHandlerAttrsAndGroups(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	base := slog.New(NewLogHandler(&buf, clock.NewVirtual(1), nil))
	log := base.With("chip", 7).WithGroup("batch")
	log.Info("dispatched", "id", 42, slog.Group("cost", "energy", 0.5))
	got := buf.String()
	want := "t=1 level=INFO msg=dispatched chip=7 batch.id=42 batch.cost.energy=0.5\n"
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestLogHandlerConcurrentWrites(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	log := slog.New(NewLogHandler(&buf, clock.NewVirtual(0), nil))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				log.Info("tick", "g", i, "j", j)
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 200 {
		t.Fatalf("got %d lines, want 200", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "t=0 level=INFO msg=tick g=") {
			t.Fatalf("malformed line %q", l)
		}
	}
}
