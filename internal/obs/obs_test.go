package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"

	"odin/internal/clock"
)

func TestNilTracerIsSafeAndFree(t *testing.T) {
	t.Parallel()
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	s := tr.Start("x", nil, Int("a", 1))
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	s.Annotate(Float("b", 2))
	s.SetTrack(3)
	s.End() // all no-ops
	if got := tr.At("y", 0, 1, 2, nil); got != nil {
		t.Fatal("nil tracer At returned a span")
	}
	if tr.Len() != 0 {
		t.Fatal("nil tracer holds spans")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil tracer chrome trace not valid JSON: %s", buf.String())
	}
	if rows := tr.FlameSummary(); rows != nil {
		t.Fatalf("nil tracer flame summary: %v", rows)
	}
}

func TestStartEndUsesClock(t *testing.T) {
	t.Parallel()
	clk := clock.NewVirtual(10)
	tr := New(clk)
	root := tr.Start("root", nil, String("kind", "test"))
	clk.Advance(5)
	child := tr.Start("child", root)
	clk.Advance(2)
	child.End()
	child.End() // double End records once
	clk.Advance(1)
	root.End()
	if tr.Len() != 2 {
		t.Fatalf("recorded %d spans, want 2", tr.Len())
	}
	recs := tr.snapshot()
	// Canonical order: root starts first.
	if recs[0].name != "root" || recs[0].start != 10 || recs[0].end != 18 {
		t.Fatalf("root record %+v", recs[0])
	}
	if recs[1].name != "child" || recs[1].start != 15 || recs[1].end != 17 {
		t.Fatalf("child record %+v", recs[1])
	}
	if recs[1].parent != recs[0].id {
		t.Fatalf("child parent %d, want root id %d", recs[1].parent, recs[0].id)
	}
}

func TestRingEvictsOldest(t *testing.T) {
	t.Parallel()
	tr := NewRing(nil, 3)
	for i := 0; i < 5; i++ {
		tr.At("s", 0, float64(i), float64(i)+1, nil, Int("i", i))
	}
	if tr.Len() != 3 {
		t.Fatalf("ring holds %d, want 3", tr.Len())
	}
	recs := tr.snapshot()
	if recs[0].start != 2 || recs[2].start != 4 {
		t.Fatalf("ring kept wrong spans: %+v", recs)
	}
}

// TestCanonicalExportOrderIndependence is the determinism core: two
// tracers recording the same span set in different interleavings export
// byte-identical Chrome traces and flame summaries.
func TestCanonicalExportOrderIndependence(t *testing.T) {
	t.Parallel()
	type spec struct {
		name       string
		track      int
		start, end float64
		attr       int
	}
	specs := []spec{
		{"batch", 1, 0, 2, 0},
		{"request", 1, 0, 1, 1},
		{"request", 1, 0, 2, 2},
		{"batch", 2, 0.5, 2.5, 3},
		{"request", 2, 0.5, 1.5, 4},
	}
	build := func(order []int) *Tracer {
		tr := New(nil)
		parents := make(map[int]*Span)
		// Record batches first within the given permutation so requests can
		// parent on them when they precede.
		for _, i := range order {
			s := specs[i]
			var parent *Span
			if s.name == "request" {
				parent = parents[s.track]
			}
			sp := tr.At(s.name, s.track, s.start, s.end, parent, Int("k", s.attr))
			if s.name == "batch" {
				parents[s.track] = sp
			}
		}
		return tr
	}
	a := build([]int{0, 1, 2, 3, 4})
	b := build([]int{3, 4, 0, 2, 1})

	var ja, jb, fa, fb bytes.Buffer
	if err := a.WriteChromeTrace(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteChromeTrace(&jb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Fatalf("chrome traces differ:\n%s\nvs\n%s", ja.String(), jb.String())
	}
	if !json.Valid(ja.Bytes()) {
		t.Fatalf("chrome trace not valid JSON: %s", ja.String())
	}
	if err := a.WriteFlame(&fa); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteFlame(&fb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fa.Bytes(), fb.Bytes()) {
		t.Fatalf("flame summaries differ:\n%s\nvs\n%s", fa.String(), fb.String())
	}
}

func TestChromeTraceShape(t *testing.T) {
	t.Parallel()
	tr := New(nil)
	tr.At("run", 0, 1.5, 2.5, nil, String("model", "VGG11"), Int("layers", 11), Bool("ok", true))
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("events: %d", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Name != "run" || ev.Ph != "X" || ev.Ts != 1.5e6 || ev.Dur != 1e6 {
		t.Fatalf("event %+v", ev)
	}
	if ev.Args["model"] != "VGG11" || ev.Args["layers"] != float64(11) || ev.Args["ok"] != true {
		t.Fatalf("args %+v", ev.Args)
	}
}

func TestFlameSelfTimeAndQuantiles(t *testing.T) {
	t.Parallel()
	tr := New(nil)
	run := tr.At("run", 0, 0, 10, nil)
	tr.At("layer", 0, 0, 3, run)
	tr.At("layer", 0, 3, 7, run)
	rows := tr.FlameSummary()
	if len(rows) != 2 {
		t.Fatalf("rows: %+v", rows)
	}
	if rows[0].Name != "run" || rows[0].Total != 10 || rows[0].Self != 3 {
		t.Fatalf("run row %+v", rows[0])
	}
	if rows[1].Name != "layer" || rows[1].Total != 7 || rows[1].Self != 7 || rows[1].Count != 2 {
		t.Fatalf("layer row %+v", rows[1])
	}
	// Nearest-rank quantiles over {3,4}: p50 -> 3, p90/p99 -> 4.
	if rows[1].P50 != 3 || rows[1].P90 != 4 || rows[1].P99 != 4 {
		t.Fatalf("layer quantiles %+v", rows[1])
	}
}

func TestConcurrentRecordingIsRaceFreeAndComplete(t *testing.T) {
	t.Parallel()
	tr := New(nil)
	var wg sync.WaitGroup
	const g, per = 8, 50
	for w := 0; w < g; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.At("op", w, float64(i), float64(i)+1, nil, Int("worker", w), Int("i", i))
			}
		}()
	}
	wg.Wait()
	if tr.Len() != g*per {
		t.Fatalf("recorded %d, want %d", tr.Len(), g*per)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("concurrent trace not valid JSON")
	}
}

func TestAttrRendering(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		a    Attr
		text string
		js   string
	}{
		{String("k", `a"b`), `a"b`, `"a\"b"`},
		{Int("k", -3), "-3", "-3"},
		{Int64("k", 1<<40), "1099511627776", "1099511627776"},
		{Float("k", 0.25), "0.25", "0.25"},
		{Bool("k", true), "true", "true"},
	} {
		if got := tc.a.value(); got != tc.text {
			t.Errorf("value(%+v) = %q, want %q", tc.a, got, tc.text)
		}
		if got := tc.a.jsonValue(); got != tc.js {
			t.Errorf("jsonValue(%+v) = %q, want %q", tc.a, got, tc.js)
		}
	}
	// NaN must not corrupt the JSON document.
	tr := New(nil)
	tr.At("x", 0, 0, 1, nil, Float("edp", math.NaN()))
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("NaN attr broke JSON: %s", buf.String())
	}
	if !strings.Contains(buf.String(), `"NaN"`) {
		t.Fatalf("NaN not rendered as quoted string: %s", buf.String())
	}
}
