// Package obs is the repository's stdlib-only observability layer: span
// tracing, controller decision auditing, and deterministic structured
// logging across the full inference path (serve → core → search → pim).
//
// # Span model
//
// A Span is a named time interval with typed attributes, an optional
// parent, and a track (the horizontal lane it renders on — one per chip in
// the serving layer). Spans are collected by a Tracer and exported two
// ways (export.go): Chrome trace-event JSON, loadable in chrome://tracing
// and Perfetto, and a deterministic text flame summary (self/total time
// plus exact p50/p90/p99 per span name).
//
// # Determinism
//
// All span timestamps are float64 seconds on the internal/clock time base:
// replay and simulation record *virtual* times, so a trace is a function
// of the workload, never of the wall clock or goroutine scheduling. Spans
// may be recorded concurrently (the serve worker pool); the collection
// order is scheduling-dependent, so both exporters first sort spans into a
// canonical order (start, end, track, name, attributes) and renumber span
// ids — two runs that record the same span *set* export byte-identical
// artefacts regardless of worker count.
//
// # Disabled fast path
//
// Every entry point is nil-safe: a nil *Tracer returns a nil *Span, and
// every Span method on nil is a no-op. Hot paths guard with a single
// pointer test (or none at all — calling through nil is legal), so
// disabled tracing costs one predictable branch. The guard
// TestDisabledObsOverheadGuard (repo root, `make obssmoke`) keeps the
// disabled controller decision path within noise of the pre-obs reference.
package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"odin/internal/clock"
)

// Attr is one typed span attribute. Construct with String, Int, Float or
// Bool; the zero Attr renders as an empty string value.
type Attr struct {
	Key string

	kind  byte // 's', 'i', 'f', 'b'
	str   string
	num   float64
	inum  int64
	truth bool
}

// String returns a string-valued attribute.
func String(key, value string) Attr { return Attr{Key: key, kind: 's', str: value} }

// Int returns an integer-valued attribute.
func Int(key string, value int) Attr { return Attr{Key: key, kind: 'i', inum: int64(value)} }

// Int64 returns an integer-valued attribute from an int64.
func Int64(key string, value int64) Attr { return Attr{Key: key, kind: 'i', inum: value} }

// Float returns a float-valued attribute.
func Float(key string, value float64) Attr { return Attr{Key: key, kind: 'f', num: value} }

// Bool returns a boolean-valued attribute.
func Bool(key string, value bool) Attr { return Attr{Key: key, kind: 'b', truth: value} }

// value renders the attribute value in its canonical text form (floats in
// shortest round-trippable decimal, like the telemetry exposition).
func (a Attr) value() string {
	switch a.kind {
	case 's':
		return a.str
	case 'i':
		return strconv.FormatInt(a.inum, 10)
	case 'f':
		return strconv.FormatFloat(a.num, 'g', -1, 64)
	case 'b':
		return strconv.FormatBool(a.truth)
	}
	return ""
}

// jsonValue renders the attribute value as a JSON literal.
func (a Attr) jsonValue() string {
	switch a.kind {
	case 'i':
		return strconv.FormatInt(a.inum, 10)
	case 'f':
		return jsonFloat(a.num)
	case 'b':
		return strconv.FormatBool(a.truth)
	}
	return strconv.Quote(a.str)
}

// Span is a handle to one recorded (or in-flight) interval. Handles exist
// so children can reference their parent; all state lives in the Tracer.
// A nil *Span is a valid no-op handle.
type Span struct {
	t  *Tracer
	id uint64

	name   string
	track  int
	parent uint64
	start  float64
	attrs  []Attr
	ended  bool
}

// record is one finished span as stored by the Tracer.
type record struct {
	id, parent uint64
	name       string
	track      int
	start, end float64
	attrs      []Attr
}

// Tracer collects spans. Create with New (unbounded) or NewRing (keep the
// last cap spans — the /debug/trace ring). A nil *Tracer is a disabled
// tracer: every method is a cheap no-op.
type Tracer struct {
	clk clock.Clock

	mu     sync.Mutex
	nextID uint64
	cap    int // 0 = unbounded
	recs   []record
	head   int // ring start when len(recs) == cap
}

// New returns an unbounded Tracer stamping spans from clk. A nil clk is
// allowed when every span is recorded with explicit times (At).
func New(clk clock.Clock) *Tracer {
	return &Tracer{clk: clk, nextID: 1}
}

// NewRing returns a Tracer that keeps only the most recent cap spans
// (eviction in record order) — bounded memory for long-lived live serving.
func NewRing(clk clock.Clock, cap int) *Tracer {
	if cap < 1 {
		panic(fmt.Sprintf("obs: ring capacity %d must be positive", cap))
	}
	t := New(clk)
	t.cap = cap
	return t
}

// Enabled reports whether the tracer records anything. Useful to skip
// attribute construction on hot paths.
func (t *Tracer) Enabled() bool { return t != nil }

// now reads the tracer clock (0 when none was provided).
func (t *Tracer) now() float64 {
	if t.clk == nil {
		return 0
	}
	return t.clk.Now()
}

// Start opens a span at the tracer clock's current time. parent may be nil
// (a root span); the child inherits the parent's track. End the returned
// span to record it. On a nil Tracer, Start returns nil.
func (t *Tracer) Start(name string, parent *Span, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{t: t, name: name, start: t.now(), attrs: attrs}
	s.id, s.track, s.parent = t.allocID(), 0, 0
	if parent != nil {
		s.track, s.parent = parent.track, parent.id
	}
	return s
}

// At records an already-finished span with explicit virtual timestamps —
// the replay/simulation path, where the interval is known after the fact
// (a batch's virtual execution window, a layer's share of a run's
// latency). It returns a handle usable as a parent for later children. On
// a nil Tracer, At returns nil.
func (t *Tracer) At(name string, track int, start, end float64, parent *Span, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{t: t, name: name, track: track, start: start, attrs: attrs, ended: true}
	s.id = t.allocID()
	if parent != nil {
		s.parent = parent.id
	}
	t.add(record{id: s.id, parent: s.parent, name: name, track: track,
		start: start, end: end, attrs: attrs})
	return s
}

func (t *Tracer) allocID() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.nextID
	t.nextID++
	return id
}

// SetTrack moves an in-flight span onto a track (no-op after End or on a
// nil span).
func (s *Span) SetTrack(track int) {
	if s == nil || s.ended {
		return
	}
	s.track = track
}

// Annotate appends attributes to an in-flight span (no-op after End or on
// a nil span).
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil || s.ended {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// End closes the span at the tracer clock's current time and records it.
// No-op on a nil span; ending twice records once.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.t.add(record{id: s.id, parent: s.parent, name: s.name, track: s.track,
		start: s.start, end: s.t.now(), attrs: s.attrs})
}

// add appends one finished record, evicting the oldest when ring-bounded.
func (t *Tracer) add(r record) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cap > 0 && len(t.recs) == t.cap {
		t.recs[t.head] = r
		t.head = (t.head + 1) % t.cap
		return
	}
	t.recs = append(t.recs, r)
}

// Len returns the number of recorded spans currently held.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.recs)
}

// snapshot returns the held records in canonical order with ids renumbered
// 1..n (0 = no parent). Parents evicted from a ring — or never ended —
// remap to 0. The canonical order makes every export byte-identical across
// recording interleavings: spans sort by (start, end, track, name,
// rendered attributes), a total order for any span set whose attribute
// sets distinguish otherwise-identical spans.
func (t *Tracer) snapshot() []record {
	t.mu.Lock()
	out := make([]record, 0, len(t.recs))
	out = append(out, t.recs[t.head:]...)
	out = append(out, t.recs[:t.head]...)
	t.mu.Unlock()

	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		// Exact float ordering is deliberate: equal keys fall through to
		// the next tie-breaker, so no tolerance is wanted here.
		if a.start < b.start {
			return true
		}
		if a.start > b.start {
			return false
		}
		if a.end < b.end {
			return true
		}
		if a.end > b.end {
			return false
		}
		if a.track != b.track {
			return a.track < b.track
		}
		if a.name != b.name {
			return a.name < b.name
		}
		return attrsKey(a.attrs) < attrsKey(b.attrs)
	})
	renumber := make(map[uint64]uint64, len(out))
	for i := range out {
		renumber[out[i].id] = uint64(i + 1)
	}
	for i := range out {
		out[i].id = uint64(i + 1)
		out[i].parent = renumber[out[i].parent] // 0 when absent
	}
	return out
}

// attrsKey renders attributes as a compact sort key.
func attrsKey(attrs []Attr) string {
	var sb strings.Builder
	for _, a := range attrs {
		sb.WriteString(a.Key)
		sb.WriteByte('=')
		sb.WriteString(a.value())
		sb.WriteByte(';')
	}
	return sb.String()
}

// jsonFloat renders a float as a JSON literal (shortest round-trippable
// decimal; JSON has no Inf/NaN, so those render as quoted strings).
func jsonFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if strings.ContainsAny(s, "IN") { // +Inf, -Inf, NaN
		return strconv.Quote(s)
	}
	// Ensure the literal is valid JSON (FormatFloat may emit e.g. "1e+06",
	// which JSON accepts; bare integers are fine too).
	return s
}
