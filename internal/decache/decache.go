// Package decache memoizes the controller's per-layer line-6 decision —
// the predict → clamp → search pass of Algorithm 1 — so repeated decisions
// on the same layer at equivalent drift ages cost a map lookup instead of
// a search.
//
// # Why memoization preserves byte-identity
//
// A line-6 decision is a pure function of the layer workload, the OU grid,
// the cost model, the accuracy model, the search strategy and budget, the
// policy's predicted start size, and the device age t. The age enters the
// decision only through the feasibility predicate
//
//	NF(j,s,t) = (w_j · NF_IR(s)) · A(t) < η
//
// and through NF-order comparisons between candidate sizes. Both collapse
// onto an age-free structure:
//
//   - NF_IR is age-free and EDP is age-free, so the feasible set at age t
//     is the lower level set {s : NF_IR(s) < η/(w_j·A(t))} of the fixed
//     NF_IR ordering. Counting the feasible sizes therefore identifies the
//     set exactly — that count is the "age bucket". Sizes with equal NF_IR
//     (e.g. 4×8 and 8×4) enter or leave feasibility together, so the count
//     is unambiguous.
//   - NF-order comparisons (RB's infeasible descent, the TPE infeasible
//     ranking, the Pareto dominance test) compare (w·NF_IR(s_a))·A against
//     (w·NF_IR(s_b))·A: multiplying both sides by the same positive scalar
//     is weakly monotone under IEEE-754 rounding, so the ordering is
//     age-invariant. (A strict inequality can in principle collapse to a
//     tie when the two products land within one ulp; grid NF_IR values are
//     structurally far apart, and the odincheck byte-identity properties
//     over random ages machine-check the assumption.)
//
// Hence every decision is a pure function of (context, key) where the
// context is (grid, cost model, accuracy model, strategy, budget) and the
// key is (layer workload, layer position, predicted size, age bucket).
// The cached and uncached controllers produce byte-identical artefacts —
// asserted end to end by `make cachesmoke`.
//
// The bucket predicate reuses accuracy.Model.Satisfies' exact expression
// shape ((w·ir)·A < η with ir precomputed per grid size), so bucketing is
// bit-identical to the checks the uncached path performs, including the
// bucket==0 ⇔ !AnySatisfiable degenerate case.
//
// # Invalidation contract
//
//   - Reprogram resets the device age, which moves decisions to the fresh
//     age bucket; pre-reprogram entries become unreachable by key, never
//     stale-served (metamorphic tests in internal/core inject poisoned
//     entries to prove it).
//   - A policy weight update (Train) or hot-swap bumps the policy's
//     (ID, Version) identity, which keys the prediction memo; decision
//     entries are keyed by the predicted size itself, so they stay valid
//     and simply stop being reached when predictions move.
//   - A strategy or budget change lands in a different Context; Contexts
//     never alias across strategies.
//   - Flush drops everything (serving-layer policy rollout hook).
//
// A Cache may be shared across controllers (the serving layer shares one
// per fleet): all methods are safe for concurrent use, and because every
// value is a pure function of its key, races between lookup and store are
// benign — any interleaving yields the same bytes.
package decache

import (
	"sort"
	"sync"
	"sync/atomic"

	"odin/internal/accuracy"
	"odin/internal/ou"
	"odin/internal/policy"
	"odin/internal/telemetry"
)

// Options tune a Cache.
type Options struct {
	// MaxDecisions caps the decision entries per context; exceeding it
	// flushes that context wholesale (deterministically: the flush depends
	// only on insertion count, never on map order). 0 means 4096.
	MaxDecisions int
	// MaxPredictions caps the prediction-memo entries; exceeding it flushes
	// the memo wholesale. 0 means 65536.
	MaxPredictions int
	// Registry, when non-nil, exports the hit/miss/flush counters as
	// odin_decache_* Prometheus series.
	Registry *telemetry.Registry
}

func (o Options) withDefaults() Options {
	if o.MaxDecisions <= 0 {
		o.MaxDecisions = 4096
	}
	if o.MaxPredictions <= 0 {
		o.MaxPredictions = 65536
	}
	return o
}

// Counters is a point-in-time snapshot of cache activity. Counter values
// depend on scheduling when a Cache is shared across goroutines (who
// populates first); they feed observability only and must never be
// rendered into deterministic artefacts.
type Counters struct {
	DecisionHits, DecisionMisses uint64
	PredictHits, PredictMisses   uint64
	Flushes                      uint64
}

// Cache memoizes line-6 decisions and policy predictions.
type Cache struct {
	opts Options

	mu   sync.RWMutex
	ctxs map[ctxKey]*Context
	pred map[predKey]ou.Size

	decHits, decMisses   atomic.Uint64
	predHits, predMisses atomic.Uint64
	flushes              atomic.Uint64

	// Optional telemetry mirrors of the atomic counters.
	tDecHits, tDecMisses   *telemetry.Counter
	tPredHits, tPredMisses *telemetry.Counter
	tFlushes               *telemetry.Counter
}

// New creates a cache with default limits and no telemetry.
func New() *Cache { return NewWith(Options{}) }

// NewWith creates a cache with explicit options.
func NewWith(opts Options) *Cache {
	c := &Cache{
		opts: opts.withDefaults(),
		ctxs: make(map[ctxKey]*Context),
		pred: make(map[predKey]ou.Size),
	}
	if r := opts.Registry; r != nil {
		c.tDecHits = r.Counter("odin_decache_decision_hits_total",
			"line-6 decisions served from the decision cache")
		c.tDecMisses = r.Counter("odin_decache_decision_misses_total",
			"line-6 decisions computed and stored by the decision cache")
		c.tPredHits = r.Counter("odin_decache_predict_hits_total",
			"policy predictions served from the prediction memo")
		c.tPredMisses = r.Counter("odin_decache_predict_misses_total",
			"policy predictions computed and stored by the prediction memo")
		c.tFlushes = r.Counter("odin_decache_flushes_total",
			"wholesale cache flushes (explicit or capacity-triggered)")
	}
	return c
}

// Counters returns a snapshot of cache activity.
func (c *Cache) Counters() Counters {
	return Counters{
		DecisionHits:   c.decHits.Load(),
		DecisionMisses: c.decMisses.Load(),
		PredictHits:    c.predHits.Load(),
		PredictMisses:  c.predMisses.Load(),
		Flushes:        c.flushes.Load(),
	}
}

// Flush drops every decision entry and memoized prediction. Contexts stay
// interned (their precomputed NF_IR tables are immutable).
func (c *Cache) Flush() {
	c.mu.Lock()
	for _, x := range c.ctxs {
		x.mu.Lock()
		x.entries = make(map[Key]*Entry)
		x.mu.Unlock()
	}
	c.pred = make(map[predKey]ou.Size)
	c.mu.Unlock()
	c.countFlush()
}

func (c *Cache) countFlush() {
	c.flushes.Add(1)
	if c.tFlushes != nil {
		c.tFlushes.Inc()
	}
}

// ctxKey identifies a decision context: everything a line-6 decision
// depends on besides the per-layer key. All fields are comparable value
// types, so two controllers with identical platforms share a context.
type ctxKey struct {
	Grid     ou.Grid
	Cost     ou.CostModel
	Acc      accuracy.Model
	Strategy string
	Budget   int
}

// predKey identifies one memoized policy prediction. The policy's
// process-unique ID and weight version make stale reuse impossible: Train
// bumps the version, a hot-swapped or deserialized policy has a fresh ID.
type predKey struct {
	ID, Version uint64
	F           policy.Features
}

// Key addresses one memoized decision within a Context.
type Key struct {
	// Work is the canonical per-crossbar workload of the layer (the
	// feature vector of the decision); its sparsity profile must be a
	// comparable value type, which every in-tree profile is.
	Work ou.LayerWork
	// Layer/Of locate the layer (the sensitivity weight input).
	Layer, Of int
	// Predicted is the policy's line-5 output, the search start seed.
	Predicted ou.Size
	// Bucket is the age bucket: the count of feasible grid sizes at the
	// decision's device age (Context.Bucket).
	Bucket int
}

// Probe is one recorded candidate evaluation, in search order. EDP is NaN
// for infeasible candidates (never scored). Age-dependent scores (energy,
// latency, NF) are deliberately absent: audit replay recomputes them at
// the current age, bit-identical to what the live search would have
// reported.
type Probe struct {
	Size     ou.Size
	Feasible bool
	EDP      float64
}

// Entry is one memoized decision: the clamped start, the final choice
// (after the not-found fallback to the start), and everything needed to
// replay the run report and audit record byte-identically.
type Entry struct {
	Start, Chosen ou.Size
	BestEDP       float64
	Found         bool
	Evaluations   int
	Probes        []Probe
	Front         []ou.Size
}

// Context is the per-(platform, strategy, budget) decision table. It
// precomputes the sorted NF_IR values of the grid so age buckets resolve
// with one exp, one pow and a binary search.
type Context struct {
	cache *Cache
	acc   accuracy.Model
	grid  ou.Grid

	// irs holds NF_IR for every grid size, ascending (duplicates kept):
	// the lower level sets of this ordering are exactly the feasible sets.
	irs []float64

	mu      sync.RWMutex
	entries map[Key]*Entry
	inserts int
}

// Context interns and returns the decision context for one platform +
// strategy + budget combination. Call it once per controller, not per
// decision.
func (c *Cache) Context(g ou.Grid, cost ou.CostModel, acc accuracy.Model, strategy string, budget int) *Context {
	k := ctxKey{Grid: g, Cost: cost, Acc: acc, Strategy: strategy, Budget: budget}
	c.mu.RLock()
	x := c.ctxs[k]
	c.mu.RUnlock()
	if x != nil {
		return x
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if x = c.ctxs[k]; x != nil {
		return x
	}
	n := g.Levels()
	x = &Context{
		cache:   c,
		acc:     acc,
		grid:    g,
		irs:     make([]float64, 0, n*n),
		entries: make(map[Key]*Entry),
	}
	for ri := 0; ri < n; ri++ {
		for ci := 0; ci < n; ci++ {
			x.irs = append(x.irs, acc.IRFraction(g.SizeAt(ri, ci)))
		}
	}
	sort.Float64s(x.irs)
	c.ctxs[k] = x
	return x
}

// Bucket returns the age bucket of layer j (of total) at device age t: the
// number of grid sizes satisfying the η constraint. The predicate is the
// exact expression accuracy.Model.Satisfies evaluates — (w·ir)·A < η with
// ir precomputed — so bucket membership is bit-identical to the checks the
// uncached search performs; in particular Bucket == 0 exactly when
// accuracy.Model.AnySatisfiable reports false.
func (x *Context) Bucket(j, total int, t float64) int {
	w := x.acc.Sens.Weight(j, total)
	amp := x.acc.Amplification(t)
	eta := x.acc.Eta
	// Feasibility is non-increasing along the ascending NF_IR order
	// (multiplying by positive w then amp is weakly monotone in IEEE-754),
	// so the first infeasible index is the feasible count.
	return sort.Search(len(x.irs), func(i int) bool {
		return !((w*x.irs[i])*amp < eta)
	})
}

// Lookup returns the memoized decision for k, if present.
func (x *Context) Lookup(k Key) (*Entry, bool) {
	x.mu.RLock()
	e, ok := x.entries[k]
	x.mu.RUnlock()
	if ok {
		x.cache.decHits.Add(1)
		if x.cache.tDecHits != nil {
			x.cache.tDecHits.Inc()
		}
		return e, true
	}
	x.cache.decMisses.Add(1)
	if x.cache.tDecMisses != nil {
		x.cache.tDecMisses.Inc()
	}
	return nil, false
}

// Store memoizes a decision. The entry (including its slices) must not be
// mutated afterwards. Exceeding the decision cap flushes this context
// wholesale; the trigger depends only on the insertion count, so shared
// caches stay deterministic.
func (x *Context) Store(k Key, e *Entry) {
	x.mu.Lock()
	if x.inserts >= x.cache.opts.MaxDecisions {
		x.entries = make(map[Key]*Entry)
		x.inserts = 0
		x.mu.Unlock()
		x.cache.countFlush()
		x.mu.Lock()
	}
	x.entries[k] = e
	x.inserts++
	x.mu.Unlock()
}

// Len returns the number of memoized decisions in this context.
func (x *Context) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.entries)
}

// PredictLookup returns the memoized prediction of pol for f, if present.
// The memo is exact — keyed by the policy's (ID, Version) and the full
// feature struct — so a hit is bit-identical to calling Predict.
func (c *Cache) PredictLookup(pol *policy.Policy, f policy.Features) (ou.Size, bool) {
	k := predKey{ID: pol.ID(), Version: pol.Version(), F: f}
	c.mu.RLock()
	s, ok := c.pred[k]
	c.mu.RUnlock()
	if ok {
		c.predHits.Add(1)
		if c.tPredHits != nil {
			c.tPredHits.Inc()
		}
		return s, true
	}
	c.predMisses.Add(1)
	if c.tPredMisses != nil {
		c.tPredMisses.Inc()
	}
	return ou.Size{}, false
}

// PredictStore memoizes one prediction. Exceeding the prediction cap
// flushes the memo wholesale.
func (c *Cache) PredictStore(pol *policy.Policy, f policy.Features, s ou.Size) {
	k := predKey{ID: pol.ID(), Version: pol.Version(), F: f}
	c.mu.Lock()
	if len(c.pred) >= c.opts.MaxPredictions {
		c.pred = make(map[predKey]ou.Size)
		c.mu.Unlock()
		c.countFlush()
		c.mu.Lock()
	}
	c.pred[k] = s
	c.mu.Unlock()
}
