package decache

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"odin/internal/accuracy"
	"odin/internal/check"
	"odin/internal/mlp"
	"odin/internal/ou"
	"odin/internal/pim"
	"odin/internal/policy"
	"odin/internal/reram"
	"odin/internal/sparsity"
	"odin/internal/telemetry"
)

func testPlatform() (ou.Grid, ou.CostModel, accuracy.Model) {
	arch := pim.DefaultArch()
	return arch.Grid(), arch.CostModel(), accuracy.Default(reram.DefaultDeviceParams())
}

func testWork() ou.LayerWork {
	return ou.LayerWork{Xbars: 4, RowsUsed: 128, ColsUsed: 96,
		Sparsity: sparsity.Profile{Weight: 0.3, Cluster: 0.5, ClusterWidth: 4}}
}

// bucketCase is one random (layer, age) bucket probe.
type bucketCase struct {
	J, Total int
	AgeExp   float64 // age = 10^AgeExp seconds
}

func genBucketCase() check.Gen[bucketCase] {
	return check.Gen[bucketCase]{
		Generate: func(t *check.T) bucketCase {
			total := 1 + t.Rng.Intn(24)
			return bucketCase{
				J:      t.Rng.Intn(total),
				Total:  total,
				AgeExp: t.Rng.Float64() * 8.5, // past the 10^8 s horizon
			}
		},
		Shrink: func(c bucketCase) []bucketCase {
			var out []bucketCase
			for _, v := range check.ShrinkInt(c.Total, 1) {
				m := c
				m.Total = v
				if m.J >= m.Total {
					m.J = m.Total - 1
				}
				out = append(out, m)
			}
			for _, v := range check.ShrinkFloat(c.AgeExp, 0) {
				m := c
				m.AgeExp = v
				out = append(out, m)
			}
			return out
		},
	}
}

// TestPropBucketMatchesSatisfies pins the age-bucket contract: the bucket
// is exactly the number of grid sizes accuracy.Model.Satisfies accepts at
// that age, and bucket 0 coincides with AnySatisfiable reporting false —
// the bit-identity the cached controller's degraded check relies on.
func TestPropBucketMatchesSatisfies(t *testing.T) {
	t.Parallel()
	grid, cost, acc := testPlatform()
	x := New().Context(grid, cost, acc, "rb", 3)
	check.RunConfig(t, check.Config{Trials: 200}, genBucketCase(), func(c bucketCase) error {
		age := math.Pow(10, c.AgeExp)
		want := 0
		n := grid.Levels()
		for ri := 0; ri < n; ri++ {
			for ci := 0; ci < n; ci++ {
				if acc.Satisfies(c.J, c.Total, grid.SizeAt(ri, ci), age) {
					want++
				}
			}
		}
		got := x.Bucket(c.J, c.Total, age)
		if got != want {
			return fmt.Errorf("bucket %d, brute-force feasible count %d (layer %d/%d age 1e%.3f)",
				got, want, c.J, c.Total, c.AgeExp)
		}
		if (got == 0) != !acc.AnySatisfiable(c.J, c.Total, grid, age) {
			return fmt.Errorf("bucket %d disagrees with AnySatisfiable=%v",
				got, acc.AnySatisfiable(c.J, c.Total, grid, age))
		}
		return nil
	})
}

// TestPropBucketMonotoneInAge: drift only shrinks the feasible set, so the
// bucket must be non-increasing in age — the property that makes "bucket"
// an age quantisation rather than an arbitrary hash.
func TestPropBucketMonotoneInAge(t *testing.T) {
	t.Parallel()
	grid, cost, acc := testPlatform()
	x := New().Context(grid, cost, acc, "rb", 3)
	check.RunConfig(t, check.Config{Trials: 100},
		check.PairOf(genBucketCase(), check.Float64Range(0, 8.5)),
		func(p check.Pair[bucketCase, float64]) error {
			c := p.A
			a1, a2 := math.Pow(10, c.AgeExp), math.Pow(10, p.B)
			if a1 > a2 {
				a1, a2 = a2, a1
			}
			b1 := x.Bucket(c.J, c.Total, a1)
			b2 := x.Bucket(c.J, c.Total, a2)
			if b2 > b1 {
				return fmt.Errorf("bucket grew with age: %d at %g s -> %d at %g s", b1, a1, b2, a2)
			}
			return nil
		})
}

func TestContextInterning(t *testing.T) {
	t.Parallel()
	grid, cost, acc := testPlatform()
	c := New()
	a := c.Context(grid, cost, acc, "rb", 3)
	if b := c.Context(grid, cost, acc, "rb", 3); b != a {
		t.Fatalf("identical platform+strategy+budget returned distinct contexts")
	}
	if b := c.Context(grid, cost, acc, "ex", 3); b == a {
		t.Fatalf("strategy change aliased the decision context")
	}
	if b := c.Context(grid, cost, acc, "rb", 5); b == a {
		t.Fatalf("budget change aliased the decision context")
	}
	acc2 := acc
	acc2.Eta *= 2
	if b := c.Context(grid, cost, acc2, "rb", 3); b == a {
		t.Fatalf("accuracy-model change aliased the decision context")
	}
}

func TestLookupStoreCounters(t *testing.T) {
	t.Parallel()
	grid, cost, acc := testPlatform()
	c := New()
	x := c.Context(grid, cost, acc, "rb", 3)
	k := Key{Work: testWork(), Layer: 1, Of: 8, Predicted: grid.SizeAt(1, 1), Bucket: 7}
	if _, ok := x.Lookup(k); ok {
		t.Fatalf("lookup hit on empty cache")
	}
	e := &Entry{Start: grid.SizeAt(1, 1), Chosen: grid.SizeAt(0, 1), Found: true,
		BestEDP: 1e-9, Evaluations: 9,
		Probes: []Probe{{Size: grid.SizeAt(1, 1), Feasible: true, EDP: 2e-9}}}
	x.Store(k, e)
	got, ok := x.Lookup(k)
	if !ok || got != e {
		t.Fatalf("stored entry not returned: ok=%v", ok)
	}
	if _, ok := x.Lookup(Key{Work: testWork(), Layer: 1, Of: 8,
		Predicted: grid.SizeAt(1, 1), Bucket: 6}); ok {
		t.Fatalf("bucket change must miss")
	}
	cs := c.Counters()
	if cs.DecisionHits != 1 || cs.DecisionMisses != 2 {
		t.Fatalf("counters %+v, want 1 hit / 2 misses", cs)
	}
}

func TestFlushDropsEntriesKeepsContexts(t *testing.T) {
	t.Parallel()
	grid, cost, acc := testPlatform()
	c := New()
	x := c.Context(grid, cost, acc, "rb", 3)
	k := Key{Work: testWork(), Layer: 0, Of: 4, Predicted: grid.SizeAt(0, 0), Bucket: 3}
	x.Store(k, &Entry{Chosen: grid.SizeAt(0, 0)})
	pol := policy.New(policy.Config{Grid: grid, Seed: 1})
	f := policy.Features{LayerIndex: 0, LayerCount: 4, KernelSize: 3, Time: 10}
	c.PredictStore(pol, f, grid.SizeAt(2, 2))
	c.Flush()
	if x.Len() != 0 {
		t.Fatalf("flush left %d decision entries", x.Len())
	}
	if _, ok := c.PredictLookup(pol, f); ok {
		t.Fatalf("flush left a memoized prediction")
	}
	if c.Context(grid, cost, acc, "rb", 3) != x {
		t.Fatalf("flush dropped the interned context")
	}
	if c.Counters().Flushes != 1 {
		t.Fatalf("flushes = %d, want 1", c.Counters().Flushes)
	}
}

// TestDecisionCapFlushesWholesale: overflowing MaxDecisions must flush the
// context deterministically (insertion-count trigger) rather than evicting
// a map-order-dependent victim.
func TestDecisionCapFlushesWholesale(t *testing.T) {
	t.Parallel()
	grid, cost, acc := testPlatform()
	c := NewWith(Options{MaxDecisions: 4})
	x := c.Context(grid, cost, acc, "rb", 3)
	w := testWork()
	for i := 0; i < 4; i++ {
		x.Store(Key{Work: w, Layer: i, Of: 8, Predicted: grid.SizeAt(0, 0), Bucket: 3},
			&Entry{Chosen: grid.SizeAt(0, 0)})
	}
	if x.Len() != 4 || c.Counters().Flushes != 0 {
		t.Fatalf("pre-overflow: len %d flushes %d", x.Len(), c.Counters().Flushes)
	}
	x.Store(Key{Work: w, Layer: 4, Of: 8, Predicted: grid.SizeAt(0, 0), Bucket: 3},
		&Entry{Chosen: grid.SizeAt(0, 0)})
	if x.Len() != 1 {
		t.Fatalf("overflow kept %d entries, want 1 (the new one)", x.Len())
	}
	if c.Counters().Flushes != 1 {
		t.Fatalf("overflow flushes = %d, want 1", c.Counters().Flushes)
	}
}

func TestPredictMemoInvalidation(t *testing.T) {
	t.Parallel()
	grid, _, _ := testPlatform()
	c := New()
	pol := policy.New(policy.Config{Grid: grid, Seed: 1})
	f := policy.Features{LayerIndex: 2, LayerCount: 11, Sparsity: 0.4, KernelSize: 3, Time: 1e4}
	if _, ok := c.PredictLookup(pol, f); ok {
		t.Fatalf("hit on empty memo")
	}
	c.PredictStore(pol, f, grid.SizeAt(3, 2))
	if s, ok := c.PredictLookup(pol, f); !ok || s != grid.SizeAt(3, 2) {
		t.Fatalf("memo miss after store: %v %v", s, ok)
	}
	// A weight update bumps the version: the memo must miss.
	target := grid.SizeAt(0, 0)
	if _, err := pol.Train([]policy.Example{{F: f, Target: target}},
		mlp.TrainOptions{Epochs: 1, Seed: 1}); err != nil {
		t.Fatalf("train: %v", err)
	}
	if _, ok := c.PredictLookup(pol, f); ok {
		t.Fatalf("stale prediction served after Train bumped the version")
	}
	// A clone is a different policy identity: the memo must miss.
	if _, ok := c.PredictLookup(pol.Clone(), f); ok {
		t.Fatalf("stale prediction served for a cloned policy")
	}
}

func TestTelemetryCounters(t *testing.T) {
	t.Parallel()
	grid, cost, acc := testPlatform()
	reg := telemetry.NewRegistry()
	c := NewWith(Options{Registry: reg})
	x := c.Context(grid, cost, acc, "rb", 3)
	k := Key{Work: testWork(), Layer: 0, Of: 2, Predicted: grid.SizeAt(0, 0), Bucket: 1}
	x.Lookup(k)
	x.Store(k, &Entry{Chosen: grid.SizeAt(0, 0)})
	x.Lookup(k)
	c.Flush()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("write prometheus: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"odin_decache_decision_hits_total 1",
		"odin_decache_decision_misses_total 1",
		"odin_decache_flushes_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("telemetry output missing %q:\n%s", want, out)
		}
	}
}

// TestHitPathAllocFree pins the cached decision hot path at zero
// allocations: bucket resolution, decision lookup and prediction lookup.
func TestHitPathAllocFree(t *testing.T) {
	grid, cost, acc := testPlatform()
	c := New()
	x := c.Context(grid, cost, acc, "rb", 3)
	k := Key{Work: testWork(), Layer: 3, Of: 11, Predicted: grid.SizeAt(2, 2), Bucket: 9}
	x.Store(k, &Entry{Start: grid.SizeAt(2, 2), Chosen: grid.SizeAt(2, 2), Found: true})
	pol := policy.New(policy.Config{Grid: grid, Seed: 1})
	f := policy.Features{LayerIndex: 3, LayerCount: 11, Sparsity: 0.2, KernelSize: 3, Time: 1e4}
	c.PredictStore(pol, f, grid.SizeAt(2, 2))
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := c.PredictLookup(pol, f); !ok {
			t.Fatalf("predict miss")
		}
		kk := k
		kk.Bucket = x.Bucket(3, 11, 1e4)
		kk.Bucket = 9
		if _, ok := x.Lookup(kk); !ok {
			t.Fatalf("decision miss")
		}
	})
	if allocs != 0 {
		t.Fatalf("cached hit path allocates %.1f/op, want 0", allocs)
	}
}
