package policy

import (
	"encoding/json"
	"fmt"

	"odin/internal/mlp"
	"odin/internal/ou"
)

// policyJSON is the stable on-disk representation of a Policy: the grid it
// predicts over plus the full network. Offline-trained policies are
// design-time artefacts (paper §III: "created offline using known DNNs at
// the design time"), so they need a deployment format.
type policyJSON struct {
	Grid    ou.Grid         `json:"grid"`
	Network json.RawMessage `json:"network"`
}

// MarshalJSON encodes the policy (grid + all parameters).
func (p *Policy) MarshalJSON() ([]byte, error) {
	net, err := json.Marshal(p.net)
	if err != nil {
		return nil, err
	}
	return json.Marshal(policyJSON{Grid: p.grid, Network: net})
}

// UnmarshalJSON decodes a policy produced by MarshalJSON and validates that
// the network's heads match the grid's level count.
func (p *Policy) UnmarshalJSON(data []byte) error {
	var in policyJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("policy: decoding: %w", err)
	}
	if in.Grid.MinLevel < 0 || in.Grid.MaxLevel < in.Grid.MinLevel {
		return fmt.Errorf("policy: invalid grid %+v", in.Grid)
	}
	var net mlp.Network
	if err := json.Unmarshal(in.Network, &net); err != nil {
		return err
	}
	cfg := net.Config()
	if len(cfg.Heads) != 2 || cfg.Heads[0] != in.Grid.Levels() || cfg.Heads[1] != in.Grid.Levels() {
		return fmt.Errorf("policy: network heads %v do not match grid with %d levels",
			cfg.Heads, in.Grid.Levels())
	}
	if cfg.InputDim != 4 {
		return fmt.Errorf("policy: network expects %d inputs, the OU policy uses 4", cfg.InputDim)
	}
	p.grid = in.Grid
	p.net = &net
	// The weights were replaced wholesale: give the policy a fresh identity
	// so any memoized predictions keyed on the old (id, version) die.
	p.id = policyIDs.Add(1)
	p.version = 0
	return nil
}
