// Package policy implements Odin's OU-configuration policy π(Φ, Θ): a tiny
// multi-output MLP classifier that maps neural-layer features and elapsed
// inference time to a layer-wise OU size (paper §III.A).
//
// The four input features Φ are the layer identifier (Φ₁), weight sparsity
// (Φ₂), kernel size (Φ₃) and the inference time elapsed since device
// programming (Φ₄). The network has two independent softmax heads, one for
// the OU-height level R and one for the width level C, each over the grid's
// discrete 2^L values (6 classes on a 128×128 crossbar).
//
// The package also provides the fixed-capacity training buffer of
// Algorithm 1 (lines 10–11): disagreements between the policy and the
// searched optimum accumulate until the buffer is full, then one supervised
// update runs and the buffer resets.
package policy

import (
	"fmt"
	"math"
	"sync/atomic"

	"odin/internal/mlp"
	"odin/internal/ou"
)

// Features is the input Φ of the OU policy for one layer decision.
type Features struct {
	LayerIndex int     // Φ₁: position of the layer in the network (0-based)
	LayerCount int     // network depth, used to normalise Φ₁
	Sparsity   float64 // Φ₂: weight sparsity in [0,1)
	KernelSize int     // Φ₃: convolution kernel edge (1 for FC layers)
	Time       float64 // Φ₄: seconds since device programming (≥ 0)
}

// maxLogTime normalises Φ₄: the paper's horizon is 10⁸ s, so log10(t) ≤ 8.
const maxLogTime = 8.0

// Vector encodes the features for the network: all components in ≈[0,1].
func (f Features) Vector() []float64 {
	if err := f.Validate(); err != nil {
		panic(fmt.Sprintf("policy: %v", err))
	}
	pos := 0.0
	if f.LayerCount > 1 {
		pos = float64(f.LayerIndex) / float64(f.LayerCount-1)
	}
	logT := 0.0
	if f.Time > 1 {
		logT = math.Log10(f.Time) / maxLogTime
	}
	if logT > 1.25 {
		logT = 1.25
	}
	return []float64{
		pos,
		f.Sparsity,
		float64(f.KernelSize) / 7.0,
		logT,
	}
}

// Validate reports malformed feature values.
func (f Features) Validate() error {
	switch {
	case f.LayerCount < 1:
		return fmt.Errorf("policy: layer count %d must be positive", f.LayerCount)
	case f.LayerIndex < 0 || f.LayerIndex >= f.LayerCount:
		return fmt.Errorf("policy: layer index %d out of [0,%d)", f.LayerIndex, f.LayerCount)
	case f.Sparsity < 0 || f.Sparsity >= 1:
		return fmt.Errorf("policy: sparsity %v out of [0,1)", f.Sparsity)
	case f.KernelSize < 1:
		return fmt.Errorf("policy: kernel size %d must be positive", f.KernelSize)
	case f.Time < 0 || math.IsNaN(f.Time):
		return fmt.Errorf("policy: invalid time %v", f.Time)
	}
	return nil
}

// Config parameterises a Policy.
type Config struct {
	Grid   ou.Grid
	Hidden []int  // MLP trunk; nil defaults to one 16-neuron ReLU layer
	Seed   uint64 // weight initialisation seed
}

// Policy is the trainable OU-configuration policy.
type Policy struct {
	grid ou.Grid
	net  *mlp.Network

	// id is a process-unique identity and version counts weight updates.
	// Together they give memoization layers (internal/decache) a sound
	// invalidation key: two policies never share an id (so a freed pointer
	// being reused cannot resurrect stale entries), and every Train or
	// deserialize bumps version so cached Predict results die with the
	// weights that produced them. Neither value is ever serialized or
	// rendered — allocation order may differ across runs.
	id      uint64
	version uint64
}

// policyIDs hands out process-unique policy identities.
var policyIDs atomic.Uint64

// ID returns the process-unique identity of this policy instance.
func (p *Policy) ID() uint64 { return p.id }

// Version returns the number of weight updates applied to this policy.
// Predict is a pure function of (ID, Version, Features).
func (p *Policy) Version() uint64 { return p.version }

// New creates a policy for the given grid.
func New(cfg Config) *Policy {
	hidden := cfg.Hidden
	if hidden == nil {
		hidden = []int{16}
	}
	levels := cfg.Grid.Levels()
	return &Policy{
		grid: cfg.Grid,
		id:   policyIDs.Add(1),
		net: mlp.New(mlp.Config{
			InputDim: 4,
			Hidden:   hidden,
			Heads:    []int{levels, levels},
			Seed:     cfg.Seed,
		}),
	}
}

// Grid returns the discrete OU space the policy predicts over.
func (p *Policy) Grid() ou.Grid { return p.grid }

// NumParams returns the trainable parameter count (overhead analysis input).
func (p *Policy) NumParams() int { return p.net.NumParams() }

// Clone returns an independent copy (e.g. to snapshot the offline policy
// before online adaptation).
func (p *Policy) Clone() *Policy {
	return &Policy{grid: p.grid, net: p.net.Clone(), id: policyIDs.Add(1)}
}

// Predict returns the policy's OU size decision (R_j × C_j) for Φ.
func (p *Policy) Predict(f Features) ou.Size {
	cls := p.net.Classify(f.Vector())
	return p.grid.SizeAt(cls[0], cls[1])
}

// Probabilities returns the two heads' softmax distributions over the grid
// levels (R head first).
func (p *Policy) Probabilities(f Features) (r, c []float64) {
	probs := p.net.Predict(f.Vector())
	return probs[0], probs[1]
}

// Confidence returns the policy's confidence in its decision for Φ: the
// product of the two heads' maximum class probabilities, in (0, 1]. Low
// values mark inputs the policy has not learnt yet — useful for routing
// hard decisions to a stronger (exhaustive) search.
func (p *Policy) Confidence(f Features) float64 {
	r, c := p.Probabilities(f)
	return maxOf(r) * maxOf(c)
}

func maxOf(v []float64) float64 {
	best := v[0]
	for _, x := range v[1:] {
		if x > best {
			best = x
		}
	}
	return best
}

// Example is one supervised pair: features and the searched best size.
type Example struct {
	F      Features
	Target ou.Size
}

// toMLP converts an example, validating that the target lies on the grid.
func (p *Policy) toMLP(e Example) (mlp.Example, error) {
	r, c, ok := p.grid.IndexOf(e.Target)
	if !ok {
		return mlp.Example{}, fmt.Errorf("policy: target %v off the OU grid", e.Target)
	}
	return mlp.Example{Input: e.F.Vector(), Targets: []int{r, c}}, nil
}

// Train runs supervised learning on the examples (Algorithm 1, line 11).
// The paper trains for 100 epochs per update; opts.Epochs = 0 uses that
// default.
func (p *Policy) Train(examples []Example, opts mlp.TrainOptions) (mlp.TrainStats, error) {
	converted := make([]mlp.Example, 0, len(examples))
	for _, e := range examples {
		me, err := p.toMLP(e)
		if err != nil {
			return mlp.TrainStats{}, err
		}
		converted = append(converted, me)
	}
	stats := p.net.Train(converted, opts)
	p.version++ // weights changed: invalidate memoized predictions
	return stats, nil
}

// Agreement returns the fraction of examples where the policy's prediction
// matches the target exactly — the adaptation progress metric of Fig. 5.
func (p *Policy) Agreement(examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	hits := 0
	for _, e := range examples {
		if p.Predict(e.F) == e.Target {
			hits++
		}
	}
	return float64(hits) / float64(len(examples))
}

// Buffer is the fixed-capacity training-example store of Algorithm 1. The
// paper uses 50 examples (0.35 KB).
type Buffer struct {
	capacity int
	examples []Example
}

// NewBuffer creates a buffer holding up to capacity examples.
func NewBuffer(capacity int) *Buffer {
	if capacity < 1 {
		panic(fmt.Sprintf("policy: buffer capacity %d must be positive", capacity))
	}
	return &Buffer{capacity: capacity}
}

// Add stores an example and reports whether the buffer is now full.
// Examples beyond capacity are dropped (the buffer should be drained when
// full).
func (b *Buffer) Add(e Example) bool {
	if len(b.examples) < b.capacity {
		b.examples = append(b.examples, e)
	}
	return b.Full()
}

// Full reports whether the buffer reached capacity.
func (b *Buffer) Full() bool { return len(b.examples) >= b.capacity }

// Len returns the number of stored examples.
func (b *Buffer) Len() int { return len(b.examples) }

// Cap returns the buffer capacity.
func (b *Buffer) Cap() int { return b.capacity }

// Drain returns the stored examples and resets the buffer (Algorithm 1,
// line 11: "If buffer is full; reset the buffer").
func (b *Buffer) Drain() []Example {
	out := b.examples
	b.examples = nil
	return out
}
