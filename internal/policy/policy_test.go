package policy

import (
	"math"
	"testing"

	"odin/internal/mlp"
	"odin/internal/ou"
	"odin/internal/rng"
)

func newTestPolicy(seed uint64) *Policy {
	return New(Config{Grid: ou.DefaultGrid(128), Seed: seed})
}

func validFeatures(idx int, t float64) Features {
	return Features{LayerIndex: idx, LayerCount: 20, Sparsity: 0.5, KernelSize: 3, Time: t}
}

func TestFeatureVectorNormalisation(t *testing.T) {
	t.Parallel()
	f := Features{LayerIndex: 19, LayerCount: 20, Sparsity: 0.6, KernelSize: 7, Time: 1e8}
	v := f.Vector()
	if len(v) != 4 {
		t.Fatalf("vector length %d, want 4", len(v))
	}
	if v[0] != 1 || v[1] != 0.6 || v[2] != 1 {
		t.Fatalf("unexpected normalisation: %v", v)
	}
	if math.Abs(v[3]-1) > 1e-12 {
		t.Fatalf("log-time at horizon should be 1, got %v", v[3])
	}
}

func TestFeatureVectorEdges(t *testing.T) {
	t.Parallel()
	f := Features{LayerIndex: 0, LayerCount: 1, Sparsity: 0, KernelSize: 1, Time: 0}
	v := f.Vector()
	if v[0] != 0 || v[3] != 0 {
		t.Fatalf("single-layer / t=0 encoding wrong: %v", v)
	}
	// Time past the horizon clamps.
	f.Time = 1e20
	if v := f.Vector(); v[3] > 1.25 {
		t.Fatalf("log-time not clamped: %v", v[3])
	}
}

func TestFeatureValidation(t *testing.T) {
	t.Parallel()
	bad := []Features{
		{LayerIndex: 0, LayerCount: 0, KernelSize: 1},
		{LayerIndex: 5, LayerCount: 5, KernelSize: 1},
		{LayerIndex: -1, LayerCount: 5, KernelSize: 1},
		{LayerIndex: 0, LayerCount: 5, Sparsity: 1, KernelSize: 1},
		{LayerIndex: 0, LayerCount: 5, KernelSize: 0},
		{LayerIndex: 0, LayerCount: 5, KernelSize: 1, Time: -1},
		{LayerIndex: 0, LayerCount: 5, KernelSize: 1, Time: math.NaN()},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("bad features %d accepted: %+v", i, f)
		}
	}
	if err := validFeatures(3, 100).Validate(); err != nil {
		t.Fatalf("good features rejected: %v", err)
	}
}

func TestVectorPanicsOnInvalid(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Vector on invalid features did not panic")
		}
	}()
	Features{LayerCount: 0, KernelSize: 1}.Vector()
}

func TestPredictOnGrid(t *testing.T) {
	t.Parallel()
	p := newTestPolicy(1)
	g := p.Grid()
	for _, tt := range []float64{0, 1e2, 1e6} {
		s := p.Predict(validFeatures(4, tt))
		if _, _, ok := g.IndexOf(s); !ok {
			t.Fatalf("prediction %v off grid", s)
		}
	}
}

func TestProbabilitiesNormalised(t *testing.T) {
	t.Parallel()
	p := newTestPolicy(2)
	r, c := p.Probabilities(validFeatures(2, 50))
	if len(r) != 6 || len(c) != 6 {
		t.Fatalf("head sizes %d/%d, want 6", len(r), len(c))
	}
	var sr, sc float64
	for i := range r {
		sr += r[i]
		sc += c[i]
	}
	if math.Abs(sr-1) > 1e-9 || math.Abs(sc-1) > 1e-9 {
		t.Fatalf("probabilities not normalised: %v %v", sr, sc)
	}
}

func TestTrainLearnsMapping(t *testing.T) {
	t.Parallel()
	p := newTestPolicy(3)
	g := p.Grid()
	// Synthetic ground truth: early layers → 16×8, late layers → 32×32.
	var examples []Example
	for idx := 0; idx < 20; idx++ {
		target := g.SizeAt(2, 1) // 16×8
		if idx >= 10 {
			target = g.SizeAt(3, 3) // 32×32
		}
		examples = append(examples, Example{F: validFeatures(idx, 10), Target: target})
	}
	if before := p.Agreement(examples); before > 0.9 {
		t.Fatalf("untrained policy suspiciously good: %v", before)
	}
	if _, err := p.Train(examples, mlp.TrainOptions{Epochs: 300, LearningRate: 0.2}); err != nil {
		t.Fatal(err)
	}
	if after := p.Agreement(examples); after < 0.9 {
		t.Fatalf("policy failed to learn synthetic mapping: agreement %v", after)
	}
}

func TestTrainDefaultEpochsIs100(t *testing.T) {
	t.Parallel()
	p := newTestPolicy(4)
	examples := []Example{{F: validFeatures(1, 1), Target: p.Grid().SizeAt(1, 1)}}
	stats, err := p.Train(examples, mlp.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Epochs != 100 {
		t.Fatalf("default epochs %d, want the paper's 100", stats.Epochs)
	}
}

func TestTrainRejectsOffGridTarget(t *testing.T) {
	t.Parallel()
	p := newTestPolicy(5)
	_, err := p.Train([]Example{{F: validFeatures(0, 0), Target: ou.Size{R: 9, C: 8}}}, mlp.TrainOptions{})
	if err == nil {
		t.Fatal("off-grid target accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	t.Parallel()
	p := newTestPolicy(6)
	c := p.Clone()
	examples := []Example{
		{F: validFeatures(0, 1), Target: p.Grid().SizeAt(0, 0)},
		{F: validFeatures(10, 1), Target: p.Grid().SizeAt(5, 5)},
	}
	if _, err := c.Train(examples, mlp.TrainOptions{Epochs: 200, LearningRate: 0.3}); err != nil {
		t.Fatal(err)
	}
	// Training the clone must not change the original's predictions.
	f := validFeatures(10, 1)
	if p.Predict(f) != newTestPolicy(6).Predict(f) {
		t.Fatal("training a clone mutated the original policy")
	}
}

func TestTimeFeatureInfluencesPrediction(t *testing.T) {
	t.Parallel()
	// A policy trained to shrink OUs over time must produce different
	// predictions at t0 vs the horizon — i.e. Φ₄ is actually wired in.
	p := newTestPolicy(7)
	g := p.Grid()
	var examples []Example
	src := rng.New(11)
	for i := 0; i < 200; i++ {
		idx := src.Intn(20)
		early := src.Bernoulli(0.5)
		tt := 1.0
		target := g.SizeAt(3, 3)
		if !early {
			tt = 1e7
			target = g.SizeAt(0, 0)
		}
		examples = append(examples, Example{F: validFeatures(idx, tt), Target: target})
	}
	if _, err := p.Train(examples, mlp.TrainOptions{Epochs: 200, LearningRate: 0.2}); err != nil {
		t.Fatal(err)
	}
	if p.Predict(validFeatures(5, 1)) == p.Predict(validFeatures(5, 1e7)) {
		t.Fatal("time feature ignored by trained policy")
	}
}

func TestNumParamsSmall(t *testing.T) {
	t.Parallel()
	p := newTestPolicy(8)
	// Tiny policy: 4→16 trunk + two 6-way heads = (64+16) + 2·(96+6) = 284.
	if got := p.NumParams(); got != 284 {
		t.Fatalf("NumParams = %d, want 284", got)
	}
}

func TestBufferLifecycle(t *testing.T) {
	t.Parallel()
	b := NewBuffer(3)
	e := Example{F: validFeatures(0, 1), Target: ou.Size{R: 4, C: 4}}
	if b.Add(e) || b.Add(e) {
		t.Fatal("buffer reported full too early")
	}
	if !b.Add(e) {
		t.Fatal("buffer should be full at capacity")
	}
	if b.Len() != 3 || !b.Full() || b.Cap() != 3 {
		t.Fatalf("buffer state wrong: len=%d", b.Len())
	}
	// Overflow is dropped.
	b.Add(e)
	if b.Len() != 3 {
		t.Fatalf("overflow grew the buffer to %d", b.Len())
	}
	drained := b.Drain()
	if len(drained) != 3 || b.Len() != 0 || b.Full() {
		t.Fatal("drain did not reset the buffer")
	}
}

func TestBufferPanicsOnBadCapacity(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 did not panic")
		}
	}()
	NewBuffer(0)
}

func TestAgreementEmpty(t *testing.T) {
	t.Parallel()
	if newTestPolicy(9).Agreement(nil) != 0 {
		t.Fatal("agreement on empty set should be 0")
	}
}

func TestConfidenceBounds(t *testing.T) {
	t.Parallel()
	p := newTestPolicy(21)
	f := validFeatures(3, 100)
	c := p.Confidence(f)
	// Two 6-way heads: confidence ∈ [1/36, 1].
	if c < 1.0/36-1e-12 || c > 1 {
		t.Fatalf("confidence %v out of [1/36, 1]", c)
	}
}

func TestConfidenceRisesWithTraining(t *testing.T) {
	t.Parallel()
	p := newTestPolicy(22)
	g := p.Grid()
	f := validFeatures(3, 100)
	before := p.Confidence(f)
	// Hammer one consistent mapping.
	examples := make([]Example, 40)
	for i := range examples {
		examples[i] = Example{F: f, Target: g.SizeAt(2, 1)}
	}
	if _, err := p.Train(examples, mlp.TrainOptions{Epochs: 300, LearningRate: 0.2}); err != nil {
		t.Fatal(err)
	}
	after := p.Confidence(f)
	if after <= before {
		t.Fatalf("confidence did not rise with training: %v -> %v", before, after)
	}
	if after < 0.8 {
		t.Fatalf("confidence %v too low after consistent training", after)
	}
}
