package policy

import (
	"encoding/json"
	"strings"
	"testing"

	"odin/internal/mlp"
	"odin/internal/ou"
)

func TestPolicyJSONRoundTrip(t *testing.T) {
	t.Parallel()
	p := New(Config{Grid: ou.DefaultGrid(128), Seed: 11})
	// Give the policy some learned structure first.
	g := p.Grid()
	var examples []Example
	for i := 0; i < 30; i++ {
		examples = append(examples, Example{
			F: Features{LayerIndex: i % 10, LayerCount: 10, Sparsity: 0.4,
				KernelSize: 3, Time: float64(i * 100)},
			Target: g.SizeAt(i%6, (i*2)%6),
		})
	}
	if _, err := p.Train(examples, mlp.TrainOptions{Epochs: 50}); err != nil {
		t.Fatal(err)
	}

	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Policy
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Grid() != p.Grid() {
		t.Fatalf("grid changed: %+v vs %+v", back.Grid(), p.Grid())
	}
	for _, e := range examples {
		if back.Predict(e.F) != p.Predict(e.F) {
			t.Fatal("round-tripped policy predicts differently")
		}
	}
	if back.NumParams() != p.NumParams() {
		t.Fatal("parameter count changed")
	}
}

func TestPolicyJSONSmallGrid(t *testing.T) {
	t.Parallel()
	p := New(Config{Grid: ou.DefaultGrid(32), Seed: 2})
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Policy
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Grid().Levels() != 4 {
		t.Fatalf("grid levels = %d, want 4", back.Grid().Levels())
	}
}

func TestPolicyUnmarshalRejectsGridMismatch(t *testing.T) {
	t.Parallel()
	p := New(Config{Grid: ou.DefaultGrid(128), Seed: 3})
	data, _ := json.Marshal(p)
	// Claim a smaller grid than the network's 6-way heads support.
	tampered := strings.Replace(string(data), `"MaxLevel":7`, `"MaxLevel":5`, 1)
	var back Policy
	if err := json.Unmarshal([]byte(tampered), &back); err == nil {
		t.Fatal("grid/head mismatch accepted")
	}
}

func TestPolicyUnmarshalRejectsGarbage(t *testing.T) {
	t.Parallel()
	var back Policy
	if err := json.Unmarshal([]byte(`{"grid":{"MinLevel":5,"MaxLevel":2}}`), &back); err == nil {
		t.Fatal("inverted grid accepted")
	}
	if err := json.Unmarshal([]byte(`nope`), &back); err == nil {
		t.Fatal("non-JSON accepted")
	}
}
