package opt

import (
	"fmt"
	"math"

	"odin/internal/ou"
	"odin/internal/rng"
	"odin/internal/search"
)

// Bayesian is a TPE-style (tree-structured Parzen estimator) surrogate
// optimizer over the discrete OU grid, the stdlib-only analogue of the
// crossbar design-space Bayesian optimization of arXiv 2605.08461.
//
// Instead of modelling EDP(x) directly, TPE splits the evaluated
// candidates into a good set (the lowest-EDP γ fraction) and a bad set,
// estimates a per-axis kernel density for each (a triangular kernel over
// the discrete R/C level axes with Laplace smoothing), and evaluates next
// the unseen grid point maximising the density
// ratio good(x)/bad(x). Candidates are drawn from the good density, so
// search effort concentrates where low-EDP evidence accumulates while the
// smoothing keeps every cell reachable.
//
// Budget is the maximum number of candidate evaluations; budget <= 0 uses
// half the grid (18 on the paper's 6×6 grid — half the EX comparator
// work). The start point (the controller's feasibility-clamped seed) is
// always evaluated first, so a feasible start is never lost: on failure to
// improve, the incumbent is returned (the same guarantee RB gives
// Algorithm 1).
//
// Determinism: every random draw flows through an internal/rng SplitMix64
// stream whose label is derived from the objective itself (workload shape,
// layer position, device age), so Optimize is a pure function of its
// arguments — replays, worker pools and odinlint's detflow analysis all
// see identical candidate sequences.
type Bayesian struct{}

// Name returns "bo".
func (Bayesian) Name() string { return "bo" }

// TPE constants: γ is the good-set fraction, boCandidates the number of
// draws from the good density per iteration, boInit the quasi-random
// warm-up evaluations (including the start), and the kernel/smoothing
// shape of the per-level densities.
const (
	boGamma      = 0.3
	boCandidates = 8
	boInit       = 4
	boKernelSide = 0.4  // triangular kernel mass at ±1 level
	boSmoothing  = 0.25 // Laplace smoothing added to every level
)

// boObservation is one evaluated cell with the scores the good/bad split
// ranks on.
type boObservation struct {
	rIdx, cIdx int
	edp        float64 // NaN when infeasible (never scored)
	nf         float64
	feasible   bool
}

// boSeed derives the deterministic stream label of one Optimize call from
// the objective identity: the per-crossbar workload shape, the layer
// position, and the device age bits. Two decisions with the same inputs
// share a stream (replay); any input change decorrelates it.
func boSeed(o search.Objective) *rng.Source {
	return rng.NewFromString(fmt.Sprintf("opt/bo/%d/%d/%d/%d/%d/%016x",
		o.Work.Xbars, o.Work.RowsUsed, o.Work.ColsUsed,
		o.Layer, o.Of, math.Float64bits(o.Time)))
}

// Optimize runs the TPE loop for at most budget candidate evaluations.
func (Bayesian) Optimize(g ou.Grid, o search.Objective, start ou.Size, budget int) Result {
	n := g.Levels()
	total := n * n
	if budget <= 0 {
		budget = (total + 1) / 2
	}
	if budget > total {
		budget = total
	}
	src := boSeed(o)

	res := Result{Result: search.Result{BestEDP: math.Inf(1)}}
	evaluated := make([]bool, total)
	obs := make([]boObservation, 0, budget)
	evaluate := func(ri, ci int) {
		s := g.SizeAt(ri, ci)
		evaluated[ri*n+ci] = true
		res.Evaluations++
		ob := boObservation{rIdx: ri, cIdx: ci, nf: o.NF(s)}
		if !o.Feasible(s) {
			ob.edp = math.NaN()
			probe(o, s, false, math.NaN())
		} else {
			ob.edp, ob.feasible = o.EDP(s), true
			probe(o, s, true, ob.edp)
			if ob.edp < res.BestEDP {
				res.Best, res.BestEDP, res.Found = s, ob.edp, true
			}
		}
		obs = append(obs, ob)
	}

	// Warm-up: the clamped start first (incumbent guarantee), then
	// quasi-random probes; a collision advances row-major to the next
	// unseen cell so the warm-up never wastes budget.
	rIdx, cIdx, ok := g.IndexOf(start)
	if !ok {
		rIdx, cIdx = g.NearestIndex(start.R), g.NearestIndex(start.C)
	}
	evaluate(rIdx, cIdx)
	for res.Evaluations < budget && res.Evaluations < boInit {
		idx := src.Intn(total)
		for evaluated[idx] {
			idx = (idx + 1) % total
		}
		evaluate(idx/n, idx%n)
	}

	// TPE loop: split → per-axis densities → draw from good → evaluate the
	// best-ratio unseen draw.
	for res.Evaluations < budget {
		goodR, goodC, badR, badC := boDensities(obs, n)
		score := func(idx int) float64 {
			ri, ci := idx/n, idx%n
			return (goodR[ri] * goodC[ci]) / (badR[ri] * badC[ci])
		}
		pick := -1
		for d := 0; d < boCandidates; d++ {
			idx := boSampleLevel(src, goodR)*n + boSampleLevel(src, goodC)
			if evaluated[idx] || idx == pick {
				continue
			}
			if pick < 0 {
				pick = idx
				continue
			}
			// Higher ratio wins; an exact tie goes to the lower grid index
			// so the pick never depends on draw order.
			si, sp := score(idx), score(pick)
			if si > sp || (si >= sp && idx < pick) {
				pick = idx
			}
		}
		if pick < 0 {
			// Every draw landed on seen cells: fall back to the best-ratio
			// unseen cell, scanned row-major for a deterministic tie-break.
			for idx := 0; idx < total; idx++ {
				if evaluated[idx] {
					continue
				}
				if pick < 0 || score(idx) > score(pick) {
					pick = idx
				}
			}
		}
		if pick < 0 {
			break // grid exhausted below budget
		}
		evaluate(pick/n, pick%n)
	}
	return res
}

// boDensities builds the per-axis good/bad kernel densities of the TPE
// split. Feasible observations rank by EDP; when nothing feasible has been
// seen yet the split ranks by non-ideality instead, steering the search
// toward the feasible (small-OU) region exactly as RB's infeasible-descent
// move does. Every density is Laplace-smoothed so unseen levels keep
// non-zero mass (and the ratio stays finite).
func boDensities(obs []boObservation, n int) (goodR, goodC, badR, badC []float64) {
	ranked := make([]boObservation, len(obs))
	copy(ranked, obs)
	feasible := 0
	for _, ob := range ranked {
		if ob.feasible {
			feasible++
		}
	}
	// Deterministic ranking: good candidates first. Feasible beats
	// infeasible; among feasible, lower EDP; among infeasible, lower NF;
	// final tie-break on grid index keeps the sort total.
	boSortRanked(ranked)
	nGood := int(math.Ceil(boGamma * float64(len(ranked))))
	if feasible > 0 && nGood > feasible {
		nGood = feasible // never let infeasible cells into the good set
	}
	if nGood < 1 {
		nGood = 1
	}
	goodR, goodC = boAxisDensity(ranked[:nGood], n)
	badR, badC = boAxisDensity(ranked[nGood:], n)
	return goodR, goodC, badR, badC
}

// boSortRanked orders observations best-first with a total, deterministic
// comparator (insertion sort: the slices are at most one budget long).
func boSortRanked(obs []boObservation) {
	less := func(a, b boObservation) bool {
		if a.feasible != b.feasible {
			return a.feasible
		}
		if a.feasible { // both feasible: EDP decides
			if a.edp < b.edp {
				return true
			}
			if a.edp > b.edp {
				return false
			}
		} else { // both infeasible: NF decides
			if a.nf < b.nf {
				return true
			}
			if a.nf > b.nf {
				return false
			}
		}
		if a.rIdx != b.rIdx {
			return a.rIdx < b.rIdx
		}
		return a.cIdx < b.cIdx
	}
	for i := 1; i < len(obs); i++ {
		for j := i; j > 0 && less(obs[j], obs[j-1]); j-- {
			obs[j], obs[j-1] = obs[j-1], obs[j]
		}
	}
}

// boAxisDensity accumulates the triangular-kernel level densities of one
// observation set on both axes.
func boAxisDensity(obs []boObservation, n int) (dR, dC []float64) {
	dR = make([]float64, n)
	dC = make([]float64, n)
	for l := 0; l < n; l++ {
		dR[l], dC[l] = boSmoothing, boSmoothing
	}
	deposit := func(d []float64, level int) {
		d[level] += 1
		if level > 0 {
			d[level-1] += boKernelSide
		}
		if level+1 < n {
			d[level+1] += boKernelSide
		}
	}
	for _, ob := range obs {
		deposit(dR, ob.rIdx)
		deposit(dC, ob.cIdx)
	}
	return dR, dC
}

// boSampleLevel draws one level index from an (unnormalised) density.
func boSampleLevel(src *rng.Source, d []float64) int {
	var sum float64
	for _, w := range d {
		sum += w
	}
	u := src.Float64() * sum
	for l := 0; l < len(d); l++ {
		u -= d[l]
		if u < 0 {
			return l
		}
	}
	return len(d) - 1
}
