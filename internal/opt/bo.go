package opt

import (
	"math"
	"strconv"

	"odin/internal/ou"
	"odin/internal/rng"
	"odin/internal/search"
)

// Bayesian is a TPE-style (tree-structured Parzen estimator) surrogate
// optimizer over the discrete OU grid, the stdlib-only analogue of the
// crossbar design-space Bayesian optimization of arXiv 2605.08461.
//
// Instead of modelling EDP(x) directly, TPE splits the evaluated
// candidates into a good set (the lowest-EDP γ fraction) and a bad set,
// estimates a per-axis kernel density for each (a triangular kernel over
// the discrete R/C level axes with Laplace smoothing), and evaluates next
// the unseen grid point maximising the density
// ratio good(x)/bad(x). Candidates are drawn from the good density, so
// search effort concentrates where low-EDP evidence accumulates while the
// smoothing keeps every cell reachable.
//
// Budget is the maximum number of candidate evaluations; budget <= 0 uses
// half the grid (18 on the paper's 6×6 grid — half the EX comparator
// work). The start point (the controller's feasibility-clamped seed) is
// always evaluated first, so a feasible start is never lost: on failure to
// improve, the incumbent is returned (the same guarantee RB gives
// Algorithm 1).
//
// Determinism: every random draw flows through an internal/rng SplitMix64
// stream whose label is derived from the objective identity (workload
// shape, layer position, start and budget), so Optimize is a pure function
// of its arguments — replays, worker pools and odinlint's detflow analysis
// all see identical candidate sequences. The label deliberately excludes
// the device age: EDP is age-free and the feasibility ordering is
// age-invariant, so an age-free stream makes the whole decision a function
// of the *feasible set* rather than the raw age — the invariant the
// decision cache (internal/decache) memoizes on.
type Bayesian struct{}

// Name returns "bo".
func (Bayesian) Name() string { return "bo" }

// TPE constants: γ is the good-set fraction, boCandidates the number of
// draws from the good density per iteration, boInit the quasi-random
// warm-up evaluations (including the start), and the kernel/smoothing
// shape of the per-level densities.
const (
	boGamma      = 0.3
	boCandidates = 8
	boInit       = 4
	boKernelSide = 0.4  // triangular kernel mass at ±1 level
	boSmoothing  = 0.25 // Laplace smoothing added to every level
)

// boObservation is one evaluated cell with the scores the good/bad split
// ranks on.
type boObservation struct {
	rIdx, cIdx int
	edp        float64 // NaN when infeasible (never scored)
	nf         float64
	feasible   bool
}

// boScratch is the strategy-private buffer set stashed in
// search.Scratch.Priv so repeated decisions reuse every working slice and
// the stream generator. With a scratch attached, the TPE loop runs
// allocation-free in steady state (pinned by TestBOAllocBudget).
type boScratch struct {
	evaluated    []bool
	obs, ranked  []boObservation
	goodR, goodC []float64
	badR, badC   []float64
	label        []byte
	src          rng.Source
}

// boLabel appends the deterministic stream label of one Optimize call to
// dst. Two decisions with the same workload shape, layer position, start
// and budget share a stream; the device age is deliberately absent (see
// the determinism note on Bayesian).
func boLabel(dst []byte, o search.Objective, start ou.Size, budget int) []byte {
	dst = append(dst, "opt/bo/"...)
	dst = strconv.AppendInt(dst, int64(o.Work.Xbars), 10)
	dst = append(dst, '/')
	dst = strconv.AppendInt(dst, int64(o.Work.RowsUsed), 10)
	dst = append(dst, '/')
	dst = strconv.AppendInt(dst, int64(o.Work.ColsUsed), 10)
	dst = append(dst, '/')
	dst = strconv.AppendInt(dst, int64(o.Layer), 10)
	dst = append(dst, '/')
	dst = strconv.AppendInt(dst, int64(o.Of), 10)
	dst = append(dst, '/')
	dst = strconv.AppendInt(dst, int64(start.R), 10)
	dst = append(dst, 'x')
	dst = strconv.AppendInt(dst, int64(start.C), 10)
	dst = append(dst, '/')
	dst = strconv.AppendInt(dst, int64(budget), 10)
	return dst
}

// scratchFor returns the reusable buffer set, from o.Scratch when one is
// attached (creating or replacing the strategy-private arena as needed) or
// freshly allocated otherwise. Results are identical either way.
func scratchFor(o search.Objective) *boScratch {
	if o.Scratch == nil {
		return new(boScratch)
	}
	if bs, ok := o.Scratch.Priv(func() any { return new(boScratch) }).(*boScratch); ok {
		return bs
	}
	bs := new(boScratch)
	o.Scratch.SetPriv(bs)
	return bs
}

// reset sizes the working buffers for one Optimize call, reusing capacity.
func (bs *boScratch) reset(total, budget, n int) {
	if cap(bs.evaluated) < total {
		bs.evaluated = make([]bool, total)
	}
	bs.evaluated = bs.evaluated[:total]
	for i := range bs.evaluated {
		bs.evaluated[i] = false
	}
	if cap(bs.obs) < budget {
		bs.obs = make([]boObservation, 0, budget)
		bs.ranked = make([]boObservation, 0, budget)
	}
	bs.obs = bs.obs[:0]
	if cap(bs.goodR) < n {
		bs.goodR = make([]float64, n)
		bs.goodC = make([]float64, n)
		bs.badR = make([]float64, n)
		bs.badC = make([]float64, n)
	}
	bs.goodR, bs.goodC = bs.goodR[:n], bs.goodC[:n]
	bs.badR, bs.badC = bs.badR[:n], bs.badC[:n]
}

// Optimize runs the TPE loop for at most budget candidate evaluations.
func (Bayesian) Optimize(g ou.Grid, o search.Objective, start ou.Size, budget int) Result {
	n := g.Levels()
	total := n * n
	if budget <= 0 {
		budget = (total + 1) / 2
	}
	if budget > total {
		budget = total
	}
	bs := scratchFor(o)
	bs.reset(total, budget, n)
	bs.label = boLabel(bs.label[:0], o, start, budget)
	src := &bs.src
	src.Reseed(rng.HashBytes(bs.label))

	res := Result{Result: search.Result{BestEDP: math.Inf(1)}}
	evaluate := func(ri, ci int) {
		s := g.SizeAt(ri, ci)
		bs.evaluated[ri*n+ci] = true
		res.Evaluations++
		ob := boObservation{rIdx: ri, cIdx: ci, nf: o.NF(s)}
		if !o.Feasible(s) {
			ob.edp = math.NaN()
			probe(o, s, false, math.NaN())
		} else {
			ob.edp, ob.feasible = o.EDP(s), true
			probe(o, s, true, ob.edp)
			if ob.edp < res.BestEDP {
				res.Best, res.BestEDP, res.Found = s, ob.edp, true
			}
		}
		bs.obs = append(bs.obs, ob)
	}

	// Warm-up: the clamped start first (incumbent guarantee), then
	// quasi-random probes; a collision advances row-major to the next
	// unseen cell so the warm-up never wastes budget.
	rIdx, cIdx, ok := g.IndexOf(start)
	if !ok {
		rIdx, cIdx = g.NearestIndex(start.R), g.NearestIndex(start.C)
	}
	evaluate(rIdx, cIdx)
	for res.Evaluations < budget && res.Evaluations < boInit {
		idx := src.Intn(total)
		for bs.evaluated[idx] {
			idx = (idx + 1) % total
		}
		evaluate(idx/n, idx%n)
	}

	// TPE loop: split → per-axis densities → draw from good → evaluate the
	// best-ratio unseen draw.
	for res.Evaluations < budget {
		boDensities(bs, n)
		goodR, goodC, badR, badC := bs.goodR, bs.goodC, bs.badR, bs.badC
		score := func(idx int) float64 {
			ri, ci := idx/n, idx%n
			return (goodR[ri] * goodC[ci]) / (badR[ri] * badC[ci])
		}
		pick := -1
		for d := 0; d < boCandidates; d++ {
			idx := boSampleLevel(src, goodR)*n + boSampleLevel(src, goodC)
			if bs.evaluated[idx] || idx == pick {
				continue
			}
			if pick < 0 {
				pick = idx
				continue
			}
			// Higher ratio wins; an exact tie goes to the lower grid index
			// so the pick never depends on draw order.
			si, sp := score(idx), score(pick)
			if si > sp || (si >= sp && idx < pick) {
				pick = idx
			}
		}
		if pick < 0 {
			// Every draw landed on seen cells: fall back to the best-ratio
			// unseen cell, scanned row-major for a deterministic tie-break.
			for idx := 0; idx < total; idx++ {
				if bs.evaluated[idx] {
					continue
				}
				if pick < 0 || score(idx) > score(pick) {
					pick = idx
				}
			}
		}
		if pick < 0 {
			break // grid exhausted below budget
		}
		evaluate(pick/n, pick%n)
	}
	return res
}

// boDensities builds the per-axis good/bad kernel densities of the TPE
// split into the scratch buffers. Feasible observations rank by EDP; when
// nothing feasible has been seen yet the split ranks by non-ideality
// instead, steering the search toward the feasible (small-OU) region
// exactly as RB's infeasible-descent move does. Every density is
// Laplace-smoothed so unseen levels keep non-zero mass (and the ratio
// stays finite).
func boDensities(bs *boScratch, n int) {
	bs.ranked = append(bs.ranked[:0], bs.obs...)
	ranked := bs.ranked
	feasible := 0
	for _, ob := range ranked {
		if ob.feasible {
			feasible++
		}
	}
	// Deterministic ranking: good candidates first. Feasible beats
	// infeasible; among feasible, lower EDP; among infeasible, lower NF;
	// final tie-break on grid index keeps the sort total.
	boSortRanked(ranked)
	nGood := int(math.Ceil(boGamma * float64(len(ranked))))
	if feasible > 0 && nGood > feasible {
		nGood = feasible // never let infeasible cells into the good set
	}
	if nGood < 1 {
		nGood = 1
	}
	boAxisDensity(ranked[:nGood], n, bs.goodR, bs.goodC)
	boAxisDensity(ranked[nGood:], n, bs.badR, bs.badC)
}

// boSortRanked orders observations best-first with a total, deterministic
// comparator (insertion sort: the slices are at most one budget long).
func boSortRanked(obs []boObservation) {
	less := func(a, b boObservation) bool {
		if a.feasible != b.feasible {
			return a.feasible
		}
		if a.feasible { // both feasible: EDP decides
			if a.edp < b.edp {
				return true
			}
			if a.edp > b.edp {
				return false
			}
		} else { // both infeasible: NF decides
			if a.nf < b.nf {
				return true
			}
			if a.nf > b.nf {
				return false
			}
		}
		if a.rIdx != b.rIdx {
			return a.rIdx < b.rIdx
		}
		return a.cIdx < b.cIdx
	}
	for i := 1; i < len(obs); i++ {
		for j := i; j > 0 && less(obs[j], obs[j-1]); j-- {
			obs[j], obs[j-1] = obs[j-1], obs[j]
		}
	}
}

// boAxisDensity accumulates the triangular-kernel level densities of one
// observation set on both axes, writing into the provided buffers.
func boAxisDensity(obs []boObservation, n int, dR, dC []float64) {
	for l := 0; l < n; l++ {
		dR[l], dC[l] = boSmoothing, boSmoothing
	}
	deposit := func(d []float64, level int) {
		d[level] += 1
		if level > 0 {
			d[level-1] += boKernelSide
		}
		if level+1 < n {
			d[level+1] += boKernelSide
		}
	}
	for _, ob := range obs {
		deposit(dR, ob.rIdx)
		deposit(dC, ob.cIdx)
	}
}

// boSampleLevel draws one level index from an (unnormalised) density.
func boSampleLevel(src *rng.Source, d []float64) int {
	var sum float64
	for _, w := range d {
		sum += w
	}
	u := src.Float64() * sum
	for l := 0; l < len(d); l++ {
		u -= d[l]
		if u < 0 {
			return l
		}
	}
	return len(d) - 1
}
