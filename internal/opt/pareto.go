package opt

import (
	"math"

	"odin/internal/ou"
	"odin/internal/search"
)

// Pareto is the multi-objective strategy: instead of collapsing a layer
// decision to scalar EDP, it scans the full grid and returns the
// non-dominated front over (energy, latency, non-ideality) — the
// trade-off surface arXiv 2109.05437 shows a scalar objective hides on
// exactly this class of crossbar design spaces. Budget and start are
// ignored; like EX the full grid is always evaluated (Levels² candidate
// evaluations), so the front is exact, not sampled.
//
// Scalarization contract: the single pick handed to the controller
// (Result.Best) is the scalar-EDP minimum over the feasible set, scanned
// in row-major grid order with strict improvement — byte-for-byte the
// same pick EX makes, so switching the controller between "ex" and
// "pareto" changes only the audit front, never the decision. Because
// energy and latency are both positive, the EDP minimum is always
// EDP-tied with a front member (any dominator would have EDP at most as
// low), which makes the pick a canonical representative of the front.
type Pareto struct{}

// Name returns "pareto".
func (Pareto) Name() string { return "pareto" }

// Optimize scans the grid, reporting every candidate through the probe
// hook, and returns the EX-identical scalar pick plus the non-dominated
// front in row-major grid order.
func (Pareto) Optimize(g ou.Grid, o search.Objective, _ ou.Size, _ int) Result {
	res := Result{Result: search.Result{BestEDP: math.Inf(1)}}
	n := g.Levels()
	feasible := make([]Point, 0, n*n)
	for ri := 0; ri < n; ri++ {
		for ci := 0; ci < n; ci++ {
			s := g.SizeAt(ri, ci)
			res.Evaluations++
			if !o.Feasible(s) {
				probe(o, s, false, math.NaN())
				continue
			}
			cost := o.Cost.Evaluate(o.Work, s)
			p := Point{Size: s, Energy: cost.Energy, Latency: cost.Latency,
				NF: o.NF(s), EDP: cost.EDP()}
			probe(o, s, true, p.EDP)
			if p.EDP < res.BestEDP {
				res.Best, res.BestEDP, res.Found = s, p.EDP, true
			}
			feasible = append(feasible, p)
		}
	}
	res.Front = front(feasible)
	return res
}

// front filters a feasible candidate set down to its non-dominated
// members, preserving the input (row-major grid) order. O(m²) on m ≤
// Levels² points.
func front(points []Point) []Point {
	if len(points) == 0 {
		return nil
	}
	out := make([]Point, 0, len(points))
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i != j && q.Dominates(p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	return out
}
