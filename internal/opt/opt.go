// Package opt is the pluggable optimizer subsystem behind Algorithm 1
// line 6: every strategy that can turn a layer objective into an OU-size
// decision implements one interface, and the controller, the experiment
// drivers and the CLIs select strategies by registry name instead of
// hardcoding the paper's two searches.
//
// Four strategies are registered:
//
//   - "rb"     — the paper's resource-bounded K-step local walk
//     (search.ResourceBounded re-homed; budget = step count K).
//   - "ex"     — the paper's exhaustive grid scan (search.Exhaustive
//     re-homed; budget ignored, always the full grid).
//   - "bo"     — a TPE-style Bayesian optimizer over the discrete grid
//     (bo.go; budget = max candidate evaluations, default half the grid),
//     following the surrogate-search line of arXiv 2605.08461.
//   - "pareto" — a multi-objective optimizer returning the non-dominated
//     (energy, latency, NF) front (pareto.go; budget ignored), following
//     arXiv 2109.05437; the single pick handed to the controller is the
//     scalar-EDP minimum over the feasible set (see Pareto for the
//     scalarization contract).
//
// Every strategy reports its candidate-evaluation count and feeds each
// evaluation through search.Objective.Probe, so the decision-audit log and
// the §V.B-style overhead comparisons work identically for all of them.
package opt

import (
	"fmt"
	"sort"

	"odin/internal/ou"
	"odin/internal/search"
)

// StrategyDegraded is the audit/trace strategy string the controller uses
// when no OU size satisfies η and the layer runs degraded at the smallest
// grid size. It is a controller condition, not an optimizer, so it lives
// here as the one non-registry strategy name.
const StrategyDegraded = "degraded"

// Point is one feasible candidate with the scores the multi-objective
// front is computed over (the analytical Eq. 1/2 costs and the effective
// non-ideality at the decision's device age).
type Point struct {
	Size    ou.Size
	Energy  float64 // J
	Latency float64 // s
	NF      float64 // effective non-ideality
	EDP     float64 // J·s (Energy·Latency)
}

// Dominates reports strict Pareto dominance: p is no worse than q on every
// objective (energy, latency, NF — all minimised) and strictly better on
// at least one.
func (p Point) Dominates(q Point) bool {
	if p.Energy > q.Energy || p.Latency > q.Latency || p.NF > q.NF {
		return false
	}
	return p.Energy < q.Energy || p.Latency < q.Latency || p.NF < q.NF
}

// Result is the outcome of one Optimize call. The embedded search.Result
// carries the single pick (Best/BestEDP/Found) and the candidate
// evaluations spent; Front is non-nil only for multi-objective strategies
// and lists the non-dominated candidates in grid (row-major) order.
type Result struct {
	search.Result
	Front []Point
}

// Optimizer is one line-6 search strategy. Optimize finds an OU size for
// the layer objective o on grid g, seeded at start (already feasibility-
// clamped by the controller) and bounded by budget.
//
// The budget is the strategy's effort knob and is interpreted per
// strategy — rb: ±1 steps K (paper: 3); bo: max candidate evaluations
// (default: half the grid); ex/pareto: ignored, the full grid is always
// scanned. budget <= 0 selects the strategy default. Implementations must
// be pure functions of their arguments (no hidden state, randomness only
// via internal/rng streams labelled from the objective) so that replays
// are byte-identical at any worker count.
//
// Name returns the registry name; the controller stamps it into
// decision-audit records and trace spans verbatim.
type Optimizer interface {
	Optimize(g ou.Grid, o search.Objective, start ou.Size, budget int) Result
	Name() string
}

// ResourceBounded re-homes the paper's K-step local walk (§V.B "RB"): the
// low-overhead strategy Odin uses online. Budget is the step count K;
// budget <= 0 uses the paper's K = 3.
type ResourceBounded struct{}

// Name returns "rb".
func (ResourceBounded) Name() string { return "rb" }

// Optimize runs search.ResourceBounded from start with K = budget steps.
func (ResourceBounded) Optimize(g ou.Grid, o search.Objective, start ou.Size, budget int) Result {
	if budget <= 0 {
		budget = 3
	}
	return Result{Result: search.ResourceBounded(g, o, start, budget)}
}

// Exhaustive re-homes the paper's full grid scan (§V.B "EX"): highest
// quality at Levels² comparator evaluations. Start and budget are ignored.
type Exhaustive struct{}

// Name returns "ex".
func (Exhaustive) Name() string { return "ex" }

// Optimize runs search.Exhaustive over the whole grid.
func (Exhaustive) Optimize(g ou.Grid, o search.Objective, _ ou.Size, _ int) Result {
	return Result{Result: search.Exhaustive(g, o)}
}

// registry lists every strategy in presentation order (the order tables
// and CLIs enumerate them in).
var registry = []Optimizer{ResourceBounded{}, Exhaustive{}, Bayesian{}, Pareto{}}

// All returns every registered optimizer in presentation order.
func All() []Optimizer {
	out := make([]Optimizer, len(registry))
	copy(out, registry)
	return out
}

// Names returns the registered strategy names in presentation order.
func Names() []string {
	out := make([]string, len(registry))
	for i, o := range registry {
		out[i] = o.Name()
	}
	return out
}

// ByName returns the registered optimizer with the given name, or an error
// listing the valid names (sorted, for a stable message).
func ByName(name string) (Optimizer, error) {
	for _, o := range registry {
		if o.Name() == name {
			return o, nil
		}
	}
	names := Names()
	sort.Strings(names)
	return nil, fmt.Errorf("opt: unknown optimizer %q (have %v)", name, names)
}

// probe reports one candidate evaluation to the objective's audit hook, if
// any — the same contract search.Exhaustive/ResourceBounded honour, kept
// here for the strategies this package implements itself.
func probe(o search.Objective, s ou.Size, feasible bool, edp float64) {
	if o.Probe != nil {
		o.Probe(s, feasible, edp)
	}
}
