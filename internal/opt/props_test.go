package opt

import (
	"fmt"
	"math"
	"testing"

	"odin/internal/accuracy"
	"odin/internal/check"
	"odin/internal/ou"
	"odin/internal/search"
)

// optCase is one generated optimizer problem: a per-crossbar workload, a
// layer position, a device age, a start point and an effort budget —
// the same shape the search package's suites generate, extended with the
// budget range the new strategies interpret.
type optCase struct {
	Xbars, Rows, Cols int
	Layer, Total      int
	AgeExp            float64 // age = T0 · 10^AgeExp
	StartR, StartC    int     // level indices
	Budget            int
}

func genOptCase() check.Gen[optCase] {
	return check.Gen[optCase]{
		Generate: func(t *check.T) optCase {
			total := 1 + t.Rng.Intn(12)
			return optCase{
				Xbars: 1 + t.Rng.Intn(6),
				Rows:  1 + t.Rng.Intn(128),
				Cols:  1 + t.Rng.Intn(128),
				Layer: t.Rng.Intn(total), Total: total,
				AgeExp: t.Rng.Float64() * 8,
				StartR: t.Rng.Intn(6), StartC: t.Rng.Intn(6),
				Budget: 1 + t.Rng.Intn(40),
			}
		},
		Shrink: func(c optCase) []optCase {
			var out []optCase
			mutInt := func(v, toward int, set func(*optCase, int)) {
				for _, s := range check.ShrinkInt(v, toward) {
					m := c
					set(&m, s)
					out = append(out, m)
				}
			}
			mutInt(c.Xbars, 1, func(m *optCase, v int) { m.Xbars = v })
			mutInt(c.Rows, 1, func(m *optCase, v int) { m.Rows = v })
			mutInt(c.Cols, 1, func(m *optCase, v int) { m.Cols = v })
			mutInt(c.StartR, 0, func(m *optCase, v int) { m.StartR = v })
			mutInt(c.StartC, 0, func(m *optCase, v int) { m.StartC = v })
			mutInt(c.Budget, 1, func(m *optCase, v int) { m.Budget = v })
			if c.Total > 1 {
				m := c
				m.Total, m.Layer = 1, 0
				out = append(out, m)
			}
			for _, s := range check.ShrinkFloat(c.AgeExp, 0) {
				m := c
				m.AgeExp = s
				out = append(out, m)
			}
			return out
		},
	}
}

func (c optCase) objective(acc accuracy.Model, cm ou.CostModel) search.Objective {
	return search.Objective{
		Cost:  cm,
		Work:  ou.LayerWork{Xbars: c.Xbars, RowsUsed: c.Rows, ColsUsed: c.Cols},
		Acc:   acc,
		Layer: c.Layer,
		Of:    c.Total,
		Time:  acc.Device.T0 * math.Pow(10, c.AgeExp),
	}
}

// TestPropBOBudgetAndIncumbent pins the Bayesian optimizer's Algorithm 1
// contract: it never exceeds its evaluation budget (nor the grid), any
// returned size is a legal feasible grid point, and a feasible start is
// never lost — on failure to improve, the incumbent comes back (the same
// guarantee RB gives line 6).
func TestPropBOBudgetAndIncumbent(t *testing.T) {
	t.Parallel()
	acc, cm, grid := fixtures()
	check.Run(t, genOptCase(), func(c optCase) error {
		o := c.objective(acc, cm)
		start := grid.SizeAt(c.StartR, c.StartC)
		res := (Bayesian{}).Optimize(grid, o, start, c.Budget)
		maxEvals := c.Budget
		if total := grid.Levels() * grid.Levels(); maxEvals > total {
			maxEvals = total
		}
		if res.Evaluations < 1 || res.Evaluations > maxEvals {
			return fmt.Errorf("bo evaluations %d outside [1, %d]", res.Evaluations, maxEvals)
		}
		if res.Found {
			if _, _, ok := grid.IndexOf(res.Best); !ok {
				return fmt.Errorf("bo returned off-grid size %v", res.Best)
			}
			if !o.Feasible(res.Best) {
				return fmt.Errorf("bo returned infeasible size %v", res.Best)
			}
		}
		if o.Feasible(start) {
			if !res.Found {
				return fmt.Errorf("bo lost the feasible start %v", start)
			}
			if res.BestEDP > o.EDP(start)*(1+1e-12) {
				return fmt.Errorf("bo regressed below the incumbent: best %v EDP %g vs start %v EDP %g",
					res.Best, res.BestEDP, start, o.EDP(start))
			}
		}
		return nil
	})
}

// TestPropBOSeedReplayable pins determinism: Optimize is a pure function
// of its arguments (randomness flows only through the objective-labelled
// internal/rng stream), so two calls with the same inputs — and the probe
// sequences they emit — are identical. This is what keeps serve-layer
// replays and odinlint's detflow contract clean, and it is what makes an
// odincheck trial-0 seed line replay a BO decision exactly.
func TestPropBOSeedReplayable(t *testing.T) {
	t.Parallel()
	acc, cm, grid := fixtures()
	check.Run(t, genOptCase(), func(c optCase) error {
		o := c.objective(acc, cm)
		start := grid.SizeAt(c.StartR, c.StartC)
		type ev struct {
			s        ou.Size
			feasible bool
			edpBits  uint64
		}
		var seqA, seqB []ev
		var resA, resB Result
		{
			oo := o
			oo.Probe = func(s ou.Size, feasible bool, edp float64) {
				seqA = append(seqA, ev{s, feasible, math.Float64bits(edp)})
			}
			resA = (Bayesian{}).Optimize(grid, oo, start, c.Budget)
		}
		{
			oo := o
			oo.Probe = func(s ou.Size, feasible bool, edp float64) {
				seqB = append(seqB, ev{s, feasible, math.Float64bits(edp)})
			}
			resB = (Bayesian{}).Optimize(grid, oo, start, c.Budget)
		}
		if resA.Best != resB.Best || resA.Found != resB.Found ||
			resA.Evaluations != resB.Evaluations ||
			math.Float64bits(resA.BestEDP) != math.Float64bits(resB.BestEDP) {
			return fmt.Errorf("bo replay diverged: %+v vs %+v", resA.Result, resB.Result)
		}
		if len(seqA) != len(seqB) {
			return fmt.Errorf("bo replay probe counts diverged: %d vs %d", len(seqA), len(seqB))
		}
		for i := range seqA {
			if seqA[i] != seqB[i] {
				return fmt.Errorf("bo replay candidate %d diverged: %+v vs %+v", i, seqA[i], seqB[i])
			}
		}
		return nil
	})
}

// TestPropParetoFrontContract pins the multi-objective strategy:
//
//   - the scalar pick is byte-identical to EX's (the documented min-EDP
//     scalarization over the same row-major scan);
//   - the front is mutually non-dominated;
//   - the front is complete — every feasible grid point outside it is
//     dominated by a member;
//   - the front contains the EX scalar-EDP optimum;
//   - like EX it always evaluates the full grid.
func TestPropParetoFrontContract(t *testing.T) {
	t.Parallel()
	acc, cm, grid := fixtures()
	check.Run(t, genOptCase(), func(c optCase) error {
		o := c.objective(acc, cm)
		res := (Pareto{}).Optimize(grid, o, grid.SizeAt(c.StartR, c.StartC), c.Budget)
		ex := search.Exhaustive(grid, o)
		if res.Evaluations != ex.Evaluations {
			return fmt.Errorf("pareto evaluated %d candidates, want the full grid %d", res.Evaluations, ex.Evaluations)
		}
		if res.Found != ex.Found || res.Best != ex.Best ||
			math.Float64bits(res.BestEDP) != math.Float64bits(ex.BestEDP) {
			return fmt.Errorf("pareto scalar pick %+v diverges from EX %+v", res.Result, ex)
		}
		for i, p := range res.Front {
			for j, q := range res.Front {
				if i != j && q.Dominates(p) {
					return fmt.Errorf("front member %v dominated by member %v", p.Size, q.Size)
				}
			}
		}
		inFront := func(s ou.Size) bool {
			for _, p := range res.Front {
				if p.Size == s {
					return true
				}
			}
			return false
		}
		if ex.Found && !inFront(ex.Best) {
			return fmt.Errorf("front %d members does not contain the EX optimum %v", len(res.Front), ex.Best)
		}
		for _, s := range grid.Sizes() {
			if !o.Feasible(s) || inFront(s) {
				continue
			}
			cost := o.Cost.Evaluate(o.Work, s)
			p := Point{Size: s, Energy: cost.Energy, Latency: cost.Latency, NF: o.NF(s), EDP: cost.EDP()}
			dominated := false
			for _, q := range res.Front {
				if q.Dominates(p) {
					dominated = true
					break
				}
			}
			if !dominated {
				return fmt.Errorf("feasible size %v is non-dominated but missing from the front", s)
			}
		}
		if !res.Found && len(res.Front) != 0 {
			return fmt.Errorf("no feasible size but front has %d members", len(res.Front))
		}
		return nil
	})
}

// TestPropProbeCountsEveryCandidate pins the audit contract for all four
// registered strategies: the decision-audit Probe hook fires exactly once
// per reported candidate evaluation, with infeasible candidates carrying
// NaN scores — what core.Controller's audit log relies on to reconcile
// candidates against budgets regardless of strategy.
func TestPropProbeCountsEveryCandidate(t *testing.T) {
	t.Parallel()
	acc, cm, grid := fixtures()
	check.Run(t, genOptCase(), func(c optCase) error {
		o := c.objective(acc, cm)
		start := grid.SizeAt(c.StartR, c.StartC)
		for _, strat := range All() {
			probes := 0
			bad := false
			oo := o
			oo.Probe = func(s ou.Size, feasible bool, edp float64) {
				probes++
				if feasible == math.IsNaN(edp) {
					bad = true
				}
			}
			res := strat.Optimize(grid, oo, start, c.Budget)
			if probes != res.Evaluations {
				return fmt.Errorf("%s probed %d candidates for %d evaluations", strat.Name(), probes, res.Evaluations)
			}
			if bad {
				return fmt.Errorf("%s probed a candidate whose feasibility disagrees with its score", strat.Name())
			}
		}
		return nil
	})
}
