package opt

import (
	"math"
	"strings"
	"testing"

	"odin/internal/accuracy"
	"odin/internal/ou"
	"odin/internal/pim"
	"odin/internal/reram"
	"odin/internal/search"
)

// fixtures returns the default platform models the optimizer tests score
// against (the same ones the search package's suites use).
func fixtures() (accuracy.Model, ou.CostModel, ou.Grid) {
	arch := pim.DefaultArch()
	return accuracy.Default(reram.DefaultDeviceParams()), arch.CostModel(), arch.Grid()
}

func testObjective(layer, of int, age float64) search.Objective {
	acc, cm, _ := fixtures()
	return search.Objective{
		Cost:  cm,
		Work:  ou.LayerWork{Xbars: 2, RowsUsed: 100, ColsUsed: 80},
		Acc:   acc,
		Layer: layer,
		Of:    of,
		Time:  age,
	}
}

func TestRegistryNamesAndByName(t *testing.T) {
	t.Parallel()
	want := []string{"rb", "ex", "bo", "pareto"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i, name := range want {
		if got[i] != name {
			t.Fatalf("Names()[%d] = %q, want %q", i, got[i], name)
		}
		o, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if o.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, o.Name())
		}
	}
	if _, err := ByName("gradient"); err == nil {
		t.Fatal("ByName accepted an unknown strategy")
	} else if !strings.Contains(err.Error(), "bo") {
		t.Fatalf("unknown-strategy error %q does not list the valid names", err)
	}
}

// TestReHomedStrategiesMatchSearch pins the re-homing contract: the "rb"
// and "ex" registry entries produce byte-identical results to the search
// package functions they wrap, including the degenerate budget default.
func TestReHomedStrategiesMatchSearch(t *testing.T) {
	t.Parallel()
	_, _, grid := fixtures()
	o := testObjective(2, 8, 1e4)
	start := grid.SizeAt(2, 2)

	for _, k := range []int{1, 3, 5} {
		got := (ResourceBounded{}).Optimize(grid, o, start, k)
		want := search.ResourceBounded(grid, o, start, k)
		if got.Best != want.Best || got.Found != want.Found ||
			got.Evaluations != want.Evaluations ||
			math.Float64bits(got.BestEDP) != math.Float64bits(want.BestEDP) {
			t.Fatalf("rb(k=%d) = %+v, search.ResourceBounded = %+v", k, got.Result, want)
		}
	}
	if got, want := (ResourceBounded{}).Optimize(grid, o, start, 0),
		search.ResourceBounded(grid, o, start, 3); got.Evaluations != want.Evaluations {
		t.Fatalf("rb default budget: %d evaluations, want the paper K=3's %d",
			got.Evaluations, want.Evaluations)
	}

	got := (Exhaustive{}).Optimize(grid, o, start, 7)
	want := search.Exhaustive(grid, o)
	if got.Best != want.Best || got.Found != want.Found ||
		got.Evaluations != want.Evaluations ||
		math.Float64bits(got.BestEDP) != math.Float64bits(want.BestEDP) {
		t.Fatalf("ex = %+v, search.Exhaustive = %+v", got.Result, want)
	}
}

// TestBODefaultBudgetIsHalfGrid pins the headline overhead contract: with
// budget <= 0 the Bayesian optimizer spends at most half of EX's
// comparator work.
func TestBODefaultBudgetIsHalfGrid(t *testing.T) {
	t.Parallel()
	_, _, grid := fixtures()
	o := testObjective(0, 4, 1)
	res := (Bayesian{}).Optimize(grid, o, grid.SizeAt(2, 2), 0)
	half := (grid.Levels()*grid.Levels() + 1) / 2
	if res.Evaluations > half {
		t.Fatalf("bo default spent %d evaluations, want <= %d (half the grid)", res.Evaluations, half)
	}
	ex := (Exhaustive{}).Optimize(grid, o, grid.SizeAt(2, 2), 0)
	if 2*res.Evaluations > ex.Evaluations+1 {
		t.Fatalf("bo spent %d evaluations vs EX %d — more than half", res.Evaluations, ex.Evaluations)
	}
}

// TestDominates pins the strict-dominance definition the front is built
// on: better-or-equal everywhere and strictly better somewhere.
func TestDominates(t *testing.T) {
	t.Parallel()
	base := Point{Energy: 1, Latency: 1, NF: 1}
	better := Point{Energy: 0.5, Latency: 1, NF: 1}
	mixed := Point{Energy: 0.5, Latency: 2, NF: 1}
	if !better.Dominates(base) {
		t.Fatal("strictly better point does not dominate")
	}
	if base.Dominates(base) {
		t.Fatal("a point dominates itself")
	}
	if mixed.Dominates(base) || base.Dominates(mixed) {
		t.Fatal("trade-off points must be mutually non-dominated")
	}
}
