package opt

import (
	"testing"

	"odin/internal/search"
)

// TestOptAllocFree pins the re-homed scalar strategies at zero allocations
// per Optimize call: "rb" and "ex" are thin wrappers over the search
// package's allocation-free walks, and the wrapper itself must not add
// garbage (Result embeds no slices for scalar strategies). "pareto" is
// deliberately exempt — its Result carries the non-dominated front, whose
// allocation is the strategy's documented output, not overhead.
func TestOptAllocFree(t *testing.T) {
	_, _, grid := fixtures()
	o := testObjective(2, 8, 1e4)
	start := grid.SizeAt(2, 2)
	cases := []struct {
		name string
		fn   func()
	}{
		{"rb", func() { _ = (ResourceBounded{}).Optimize(grid, o, start, 3) }},
		{"ex", func() { _ = (Exhaustive{}).Optimize(grid, o, start, 0) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if avg := testing.AllocsPerRun(500, c.fn); avg != 0 {
				t.Fatalf("%s allocates %v per op, want 0", c.name, avg)
			}
		})
	}
}

// TestBOAllocBudget pins the Bayesian optimizer's steady-state allocation
// profile: with a search.Scratch attached (the controller configuration)
// the TPE loop reuses its observation, ranking and density buffers across
// calls and allocates nothing after the first warm-up call; without a
// scratch every call pays the full buffer setup, which is the documented
// fallback, not a regression.
func TestBOAllocBudget(t *testing.T) {
	_, _, grid := fixtures()
	o := testObjective(2, 8, 1e4)
	o.Scratch = search.NewScratch()
	start := grid.SizeAt(2, 2)
	bo := Bayesian{}
	warm := bo.Optimize(grid, o, start, 0) // first call allocates the scratch buffers
	if avg := testing.AllocsPerRun(200, func() {
		got := bo.Optimize(grid, o, start, 0)
		if got.Best != warm.Best {
			t.Fatalf("steady-state bo diverged: %v != %v", got.Best, warm.Best)
		}
	}); avg != 0 {
		t.Fatalf("bo with scratch allocates %v per op in steady state, want 0", avg)
	}
}
