package rng

import (
	"math/bits"
	"testing"
)

// These known-answer tests pin the determinism contract that the odinlint
// nondeterminism rule enforces structurally: internal/rng is the module's
// only randomness source, so its exact output for a fixed seed IS the
// reproducibility guarantee for every table and figure. If any of these
// vectors change, every published number changes with them — that must
// never happen silently.

// TestSplitMix64KnownAnswerVectors checks the generator against the
// reference SplitMix64 sequence (Steele, Lea & Flood, OOPSLA 2014; same
// vectors as the C reference implementation distributed with xoshiro).
func TestSplitMix64KnownAnswerVectors(t *testing.T) {
	t.Parallel()
	vectors := []struct {
		seed uint64
		want []uint64
	}{
		// Canonical published test vector for seed 0.
		{0, []uint64{
			0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
			0xf88bb8a8724c81ec, 0x1b39896a51a8749b,
		}},
		{1, []uint64{
			0x910a2dec89025cc1, 0xbeeb8da1658eec67, 0xf893a2eefb32555e,
			0x71c18690ee42c90b, 0x71bb54d8d101b5b9,
		}},
		// Seeding with the golden-ratio increment shifts the seed-0
		// stream by exactly one position — a structural property of
		// SplitMix64 worth pinning.
		{0x9e3779b97f4a7c15, []uint64{
			0x6e789e6aa1b965f4, 0x06c45d188009454f, 0xf88bb8a8724c81ec,
			0x1b39896a51a8749b, 0x53cb9f0c747ea2ea,
		}},
	}
	for _, v := range vectors {
		s := New(v.seed)
		for i, want := range v.want {
			if got := s.Uint64(); got != want {
				t.Errorf("seed %#x draw %d = %#016x, want %#016x", v.seed, i, got, want)
			}
		}
	}
}

// TestNewFromStringKnownSeeds pins the FNV-1a label→seed mapping. A label
// renaming that silently re-seeds a subsystem would shift its entire
// stream; these vectors make that loud.
func TestNewFromStringKnownSeeds(t *testing.T) {
	t.Parallel()
	vectors := []struct {
		label string
		state uint64 // FNV-1a 64-bit of the label
		first uint64 // first Uint64 draw from that seed
	}{
		{"", 0xcbf29ce484222325, 0},
		{"weights", 0xb1494b6ef08a411e, 0},
		{"noise/layer0", 0xdce1e8897c3b55a5, 0},
		{"odin", 0x5d8b63b49bc83131, 0},
	}
	for i := range vectors {
		vectors[i].first = New(vectors[i].state).Uint64()
	}
	for _, v := range vectors {
		if got := NewFromString(v.label).Uint64(); got != v.first {
			t.Errorf("NewFromString(%q) first draw = %#016x, want %#016x (seed %#x)", v.label, got, v.first, v.state)
		}
		// Same label, fresh source: bit-identical stream.
		a, b := NewFromString(v.label), NewFromString(v.label)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				t.Fatalf("NewFromString(%q) is not stable at draw %d", v.label, i)
			}
		}
	}
}

// TestLabelledStreamsDecorrelate checks that two differently-labelled
// streams agree on ~50% of output bits (as independent uniform bit
// streams must), so subsystems seeded by label really are decorrelated.
func TestLabelledStreamsDecorrelate(t *testing.T) {
	t.Parallel()
	const draws = 4096
	pairs := [][2]string{
		{"weights", "noise"},
		{"weights/layer0", "weights/layer1"},
		{"a", "b"},
	}
	for _, pair := range pairs {
		a, b := NewFromString(pair[0]), NewFromString(pair[1])
		agree := 0
		for i := 0; i < draws; i++ {
			agree += 64 - bits.OnesCount64(a.Uint64()^b.Uint64())
		}
		total := draws * 64
		frac := float64(agree) / float64(total)
		// ±4σ band around 0.5 for a binomial with n = draws*64.
		if frac < 0.496 || frac > 0.504 {
			t.Errorf("streams %q/%q agree on %.4f of bits; want ~0.5 (decorrelated)", pair[0], pair[1], frac)
		}
	}
}
