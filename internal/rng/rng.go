// Package rng provides a small, deterministic pseudo-random number
// generator used throughout the simulator.
//
// Every stochastic quantity in the reproduction (synthetic weights, sparsity
// draws, MLP initialisation, noise samples) is derived from an rng.Source so
// that experiments are reproducible bit-for-bit across runs and platforms.
// The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): tiny,
// fast, full 64-bit period, and trivially seedable from a string label so
// that independent subsystems get decorrelated streams without coordination.
package rng

import (
	"hash/fnv"
	"math"
)

// Source is a deterministic SplitMix64 stream. The zero value is a valid
// generator seeded with 0; prefer New or NewFromString for labelled streams.
type Source struct {
	state uint64
}

// New returns a Source seeded with the given value.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// NewFromString returns a Source whose seed is derived from label via FNV-1a.
// Two different labels yield decorrelated streams; the same label always
// yields the same stream.
func NewFromString(label string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label)) // hash.Hash.Write is documented to never fail
	return &Source{state: h.Sum64()}
}

// FNV-1a 64-bit constants, identical to hash/fnv. HashBytes re-implements
// the digest inline so hot paths can derive labelled seeds without the
// hash.Hash allocation.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashBytes returns the FNV-1a hash of label, bit-identical to the seed
// NewFromString derives from the equivalent string. It performs no
// allocations, so callers can build labels into a reusable byte buffer and
// reseed a long-lived Source on a hot path.
func HashBytes(label []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, b := range label {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return h
}

// Reseed resets the stream to the given seed, as if freshly constructed by
// New(seed). Together with HashBytes it lets hot paths reuse one Source
// across labelled streams without allocating a new generator per label.
func (s *Source) Reseed(seed uint64) { s.state = seed }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	// Use the top 53 bits for a dyadic rational in [0,1).
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal sample using the Box-Muller
// transform. Two uniforms are consumed per call; no state is cached so the
// stream position is easy to reason about.
func (s *Source) NormFloat64() float64 {
	// Guard against log(0).
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a pseudo-random permutation of [0, n) via Fisher-Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Fork returns a new Source derived from this one and the label, without
// disturbing determinism of the parent stream beyond one draw. Useful for
// giving each layer / crossbar / trial its own stream.
func (s *Source) Fork(label string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label)) // hash.Hash.Write is documented to never fail
	return &Source{state: s.Uint64() ^ h.Sum64()}
}
