package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	t.Parallel()
	a, b := New(123), New(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	t.Parallel()
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/64 identical draws from different seeds", same)
	}
}

func TestNewFromStringStable(t *testing.T) {
	t.Parallel()
	a, b := NewFromString("layer-3"), NewFromString("layer-3")
	if a.Uint64() != b.Uint64() {
		t.Fatal("same label produced different streams")
	}
	c := NewFromString("layer-4")
	if NewFromString("layer-3").Uint64() == c.Uint64() {
		t.Fatal("different labels produced identical first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	t.Parallel()
	s := New(99)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	t.Parallel()
	s := New(7)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	t.Parallel()
	s := New(5)
	for i := 0; i < 1000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	s.Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	t.Parallel()
	s := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	t.Parallel()
	s := New(3)
	for n := 1; n <= 20; n++ {
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	t.Parallel()
	s := New(13)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	t.Parallel()
	s := New(17)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate %v", rate)
	}
}

func TestForkDecorrelates(t *testing.T) {
	t.Parallel()
	parent := New(21)
	a := parent.Fork("a")
	parent2 := New(21)
	b := parent2.Fork("b")
	if a.Uint64() == b.Uint64() {
		t.Fatal("forks with different labels produced identical first draw")
	}
	// Same parent state + same label must reproduce.
	x := New(21).Fork("a")
	y := New(21).Fork("a")
	if x.Uint64() != y.Uint64() {
		t.Fatal("fork not deterministic")
	}
}

func TestZeroValueUsable(t *testing.T) {
	t.Parallel()
	var s Source
	_ = s.Uint64() // must not panic
}
