package mat

import (
	"math"
	"testing"
	"testing/quick"

	"odin/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewDenseZeroed(t *testing.T) {
	t.Parallel()
	m := NewDense(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d not zero: %v", i, v)
		}
	}
}

func TestNewDensePanicsOnBadDims(t *testing.T) {
	t.Parallel()
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-2, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDense(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			NewDense(dims[0], dims[1])
		}()
	}
}

func TestFromRowsAndAt(t *testing.T) {
	t.Parallel()
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if m.At(0, 2) != 3 || m.At(1, 0) != 4 {
		t.Fatalf("At returned wrong values: %v %v", m.At(0, 2), m.At(1, 0))
	}
	m.Set(1, 1, 9)
	if m.At(1, 1) != 9 {
		t.Fatalf("Set did not stick")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMulVec(t *testing.T) {
	t.Parallel()
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	y := m.MulVec([]float64{1, -1}, nil)
	want := []float64{-1, -1, -1}
	for i := range want {
		if !almostEq(y[i], want[i], 1e-12) {
			t.Fatalf("MulVec[%d] = %v want %v", i, y[i], want[i])
		}
	}
}

func TestMulVecReusesDst(t *testing.T) {
	t.Parallel()
	m := FromRows([][]float64{{2, 0}, {0, 2}})
	dst := make([]float64, 2)
	got := m.MulVec([]float64{3, 4}, dst)
	if &got[0] != &dst[0] {
		t.Fatal("MulVec did not reuse correctly sized dst")
	}
	if got[0] != 6 || got[1] != 8 {
		t.Fatalf("wrong result %v", got)
	}
}

func TestMulVecTMatchesExplicitTranspose(t *testing.T) {
	t.Parallel()
	src := rng.New(7)
	m := NewDense(5, 3)
	for i := range m.Data {
		m.Data[i] = src.NormFloat64()
	}
	x := []float64{0.5, -1.5, 2, 0, 1}
	got := m.MulVecT(x, nil)
	// Explicit transpose multiply.
	want := make([]float64, m.Cols)
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			want[j] += m.At(i, j) * x[i]
		}
	}
	for j := range want {
		if !almostEq(got[j], want[j], 1e-12) {
			t.Fatalf("MulVecT[%d] = %v want %v", j, got[j], want[j])
		}
	}
}

func TestAddOuterScaled(t *testing.T) {
	t.Parallel()
	m := NewDense(2, 3)
	m.AddOuterScaled(2, []float64{1, -1}, []float64{1, 2, 3})
	want := [][]float64{{2, 4, 6}, {-2, -4, -6}}
	for i := range want {
		for j := range want[i] {
			if !almostEq(m.At(i, j), want[i][j], 1e-12) {
				t.Fatalf("(%d,%d)=%v want %v", i, j, m.At(i, j), want[i][j])
			}
		}
	}
}

func TestAddScaledAndScaleAndZero(t *testing.T) {
	t.Parallel()
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{10, 20}})
	a.AddScaled(0.5, b)
	if a.At(0, 0) != 6 || a.At(0, 1) != 12 {
		t.Fatalf("AddScaled wrong: %v", a.Data)
	}
	a.Scale(2)
	if a.At(0, 0) != 12 || a.At(0, 1) != 24 {
		t.Fatalf("Scale wrong: %v", a.Data)
	}
	a.Zero()
	if a.At(0, 0) != 0 || a.At(0, 1) != 0 {
		t.Fatalf("Zero wrong: %v", a.Data)
	}
}

func TestCloneIsDeep(t *testing.T) {
	t.Parallel()
	a := FromRows([][]float64{{1, 2}})
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone aliases original data")
	}
}

func TestMaxAbs(t *testing.T) {
	t.Parallel()
	a := FromRows([][]float64{{1, -7}, {3, 2}})
	if a.MaxAbs() != 7 {
		t.Fatalf("MaxAbs = %v want 7", a.MaxAbs())
	}
	if NewDense(2, 2).MaxAbs() != 0 {
		t.Fatal("MaxAbs of zero matrix not 0")
	}
}

func TestDot(t *testing.T) {
	t.Parallel()
	if d := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); d != 32 {
		t.Fatalf("Dot = %v want 32", d)
	}
}

func TestAxpyTo(t *testing.T) {
	t.Parallel()
	dst := make([]float64, 2)
	AxpyTo(dst, []float64{1, 2}, 3, []float64{10, 20})
	if dst[0] != 31 || dst[1] != 62 {
		t.Fatalf("AxpyTo = %v", dst)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	t.Parallel()
	f := func(a, b, c float64) bool {
		// Clamp wild quick inputs to something finite.
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Mod(x, 50)
		}
		in := []float64{clamp(a), clamp(b), clamp(c)}
		out := Softmax(in, nil)
		var sum float64
		for _, v := range out {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return almostEq(sum, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	t.Parallel()
	in := []float64{1, 2, 3}
	shifted := []float64{101, 102, 103}
	a := Softmax(in, nil)
	b := Softmax(shifted, nil)
	for i := range a {
		if !almostEq(a[i], b[i], 1e-12) {
			t.Fatalf("softmax not shift invariant at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSoftmaxExtremeValuesStable(t *testing.T) {
	t.Parallel()
	out := Softmax([]float64{1000, -1000, 0}, nil)
	if math.IsNaN(out[0]) || !almostEq(out[0], 1, 1e-9) {
		t.Fatalf("softmax overflow not handled: %v", out)
	}
}

func TestArgMax(t *testing.T) {
	t.Parallel()
	if ArgMax([]float64{1, 5, 3}) != 1 {
		t.Fatal("ArgMax wrong")
	}
	if ArgMax([]float64{2, 2, 2}) != 0 {
		t.Fatal("ArgMax tie should pick first")
	}
}

func TestNorm2(t *testing.T) {
	t.Parallel()
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2 wrong")
	}
}

// Property: MulVec is linear — m·(αx+βy) = α·m·x + β·m·y.
func TestMulVecLinearityProperty(t *testing.T) {
	t.Parallel()
	src := rng.New(42)
	for trial := 0; trial < 50; trial++ {
		rows, cols := 1+src.Intn(8), 1+src.Intn(8)
		m := NewDense(rows, cols)
		for i := range m.Data {
			m.Data[i] = src.NormFloat64()
		}
		x := make([]float64, cols)
		y := make([]float64, cols)
		for i := range x {
			x[i], y[i] = src.NormFloat64(), src.NormFloat64()
		}
		alpha, beta := src.NormFloat64(), src.NormFloat64()
		combo := make([]float64, cols)
		for i := range combo {
			combo[i] = alpha*x[i] + beta*y[i]
		}
		lhs := m.MulVec(combo, nil)
		mx := m.MulVec(x, nil)
		my := m.MulVec(y, nil)
		for i := range lhs {
			want := alpha*mx[i] + beta*my[i]
			if !almostEq(lhs[i], want, 1e-9*(1+math.Abs(want))) {
				t.Fatalf("linearity violated at trial %d idx %d: %v vs %v", trial, i, lhs[i], want)
			}
		}
	}
}

func TestMulVecDimensionPanic(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("MulVec with wrong-length x did not panic")
		}
	}()
	NewDense(2, 3).MulVec([]float64{1, 2}, nil)
}
