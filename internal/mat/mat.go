// Package mat implements the small dense linear-algebra kernels used by the
// from-scratch MLP (internal/mlp) and the reference non-ideal crossbar MVM
// (internal/reram). It is deliberately minimal: row-major dense matrices,
// vectors as []float64, and the handful of BLAS-1/2 operations the project
// needs. All operations check dimensions and panic on mismatch — a dimension
// mismatch is a programming error, not a runtime condition.
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewDense allocates a zeroed rows×cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: non-positive dimensions %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a Dense from a slice of equal-length rows.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: FromRows with empty input")
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("mat: ragged row %d: len %d want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes y = m·x. If dst is non-nil and correctly sized it is
// reused, otherwise a new slice is allocated; the result is returned either
// way.
func (m *Dense) MulVec(x, dst []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch: %d cols vs %d vec", m.Cols, len(x)))
	}
	if len(dst) != m.Rows {
		dst = make([]float64, m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, w := range row {
			s += w * x[j]
		}
		dst[i] = s
	}
	return dst
}

// MulVecT computes y = mᵀ·x (x has length Rows, result length Cols).
func (m *Dense) MulVecT(x, dst []float64) []float64 {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("mat: MulVecT dimension mismatch: %d rows vs %d vec", m.Rows, len(x)))
	}
	if len(dst) != m.Cols {
		dst = make([]float64, m.Cols)
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, w := range row {
			dst[j] += w * xi
		}
	}
	return dst
}

// AddOuterScaled performs m += scale · a·bᵀ, the rank-1 gradient update used
// by backprop (a has length Rows, b length Cols).
func (m *Dense) AddOuterScaled(scale float64, a, b []float64) {
	if len(a) != m.Rows || len(b) != m.Cols {
		panic(fmt.Sprintf("mat: AddOuterScaled mismatch: %dx%d vs %dx%d", m.Rows, m.Cols, len(a), len(b)))
	}
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		f := scale * ai
		for j, bj := range b {
			row[j] += f * bj
		}
	}
}

// AddScaled performs m += scale·other element-wise.
func (m *Dense) AddScaled(scale float64, other *Dense) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("mat: AddScaled shape mismatch")
	}
	for i, v := range other.Data {
		m.Data[i] += scale * v
	}
}

// Scale multiplies every element by f.
func (m *Dense) Scale(f float64) {
	for i := range m.Data {
		m.Data[i] *= f
	}
}

// Zero resets all elements to 0.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MaxAbs returns the largest absolute element value (0 for the zero matrix).
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Vector helpers ------------------------------------------------------------

// Dot returns aᵀ·b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AxpyTo computes dst = a + scale·b element-wise.
func AxpyTo(dst, a []float64, scale float64, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("mat: AxpyTo length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] + scale*b[i]
	}
}

// Softmax writes the softmax of src into dst (may alias) and returns dst.
// It is numerically stabilised by max-subtraction.
func Softmax(src, dst []float64) []float64 {
	if len(dst) != len(src) {
		dst = make([]float64, len(src))
	}
	mx := math.Inf(-1)
	for _, v := range src {
		if v > mx {
			mx = v
		}
	}
	var sum float64
	for i, v := range src {
		e := math.Exp(v - mx)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
	return dst
}

// ArgMax returns the index of the largest element (first on ties).
func ArgMax(v []float64) int {
	if len(v) == 0 {
		panic("mat: ArgMax of empty vector")
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
