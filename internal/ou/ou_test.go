package ou

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSizeStringAndProduct(t *testing.T) {
	t.Parallel()
	s := Size{R: 16, C: 8}
	if s.String() != "16×8" {
		t.Fatalf("String = %q", s.String())
	}
	if s.Product() != 128 {
		t.Fatalf("Product = %d", s.Product())
	}
	if !s.Valid() || (Size{R: 0, C: 4}).Valid() {
		t.Fatal("Valid wrong")
	}
}

func TestDefaultGrid128(t *testing.T) {
	t.Parallel()
	g := DefaultGrid(128)
	if g.Levels() != 6 {
		t.Fatalf("128-crossbar grid has %d levels, want 6", g.Levels())
	}
	if s := g.SizeAt(0, 0); s != (Size{4, 4}) {
		t.Fatalf("smallest size %v, want 4×4", s)
	}
	if s := g.SizeAt(5, 5); s != (Size{128, 128}) {
		t.Fatalf("largest size %v, want 128×128", s)
	}
	if n := len(g.Sizes()); n != 36 {
		t.Fatalf("grid enumerates %d sizes, want 36", n)
	}
}

func TestDefaultGridSmallerCrossbars(t *testing.T) {
	t.Parallel()
	if g := DefaultGrid(64); g.Levels() != 5 {
		t.Fatalf("64-crossbar levels = %d, want 5", g.Levels())
	}
	if g := DefaultGrid(32); g.Levels() != 4 {
		t.Fatalf("32-crossbar levels = %d, want 4", g.Levels())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("crossbar size 2 should panic")
		}
	}()
	DefaultGrid(2)
}

func TestGridIndexRoundTrip(t *testing.T) {
	t.Parallel()
	g := DefaultGrid(128)
	for r := 0; r < g.Levels(); r++ {
		for c := 0; c < g.Levels(); c++ {
			s := g.SizeAt(r, c)
			ri, ci, ok := g.IndexOf(s)
			if !ok || ri != r || ci != c {
				t.Fatalf("round trip failed for %v: got (%d,%d,%v)", s, ri, ci, ok)
			}
		}
	}
}

func TestGridIndexOfRejectsOffGrid(t *testing.T) {
	t.Parallel()
	g := DefaultGrid(128)
	if _, _, ok := g.IndexOf(Size{9, 8}); ok {
		t.Fatal("9×8 should not be on the power-of-two grid")
	}
	if _, _, ok := g.IndexOf(Size{2, 4}); ok {
		t.Fatal("R=2 is below the minimum level")
	}
}

func TestGridSizeAtPanics(t *testing.T) {
	t.Parallel()
	g := DefaultGrid(128)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range SizeAt did not panic")
		}
	}()
	g.SizeAt(6, 0)
}

func TestNearestIndex(t *testing.T) {
	t.Parallel()
	g := DefaultGrid(128)
	// 9 is closest to 8 (level 1); 100 closest to 128 (level 5).
	if idx := g.NearestIndex(9); idx != 1 {
		t.Fatalf("NearestIndex(9) = %d, want 1", idx)
	}
	if idx := g.NearestIndex(100); idx != 5 {
		t.Fatalf("NearestIndex(100) = %d, want 5", idx)
	}
}

// constProfile returns a fixed zero-segment fraction regardless of width.
type constProfile float64

func (p constProfile) SegmentZeroFraction(int) float64 { return float64(p) }

func denseWork() LayerWork {
	return LayerWork{Xbars: 4, RowsUsed: 128, ColsUsed: 128}
}

func TestCyclesDenseFullCrossbar(t *testing.T) {
	t.Parallel()
	w := denseWork()
	// 128 rows / 16 per step × 128 cols / 16 per group = 8×8 = 64.
	if got := w.Cycles(Size{16, 16}); got != 64 {
		t.Fatalf("dense 16×16 cycles = %d, want 64", got)
	}
	// Full-crossbar OU = 1 cycle.
	if got := w.Cycles(Size{128, 128}); got != 1 {
		t.Fatalf("dense 128×128 cycles = %d, want 1", got)
	}
	if got := w.TotalCycles(Size{128, 128}); got != 4 {
		t.Fatalf("TotalCycles = %d, want 4 (Xbars)", got)
	}
}

func TestCyclesSparsitySkipsRows(t *testing.T) {
	t.Parallel()
	w := denseWork()
	w.Sparsity = constProfile(0.5)
	// Half the row segments skip: 64 active rows → 4 row steps × 8 col groups.
	if got := w.Cycles(Size{16, 16}); got != 32 {
		t.Fatalf("sparse 16×16 cycles = %d, want 32", got)
	}
}

func TestCyclesAllZeroStillOneCycle(t *testing.T) {
	t.Parallel()
	w := denseWork()
	w.Sparsity = constProfile(1.0)
	if got := w.Cycles(Size{16, 16}); got != 8 {
		// 1 active segment → 1 row step × 8 column groups.
		t.Fatalf("fully sparse cycles = %d, want 8", got)
	}
}

func TestCyclesPartialOccupancy(t *testing.T) {
	t.Parallel()
	w := LayerWork{Xbars: 1, RowsUsed: 20, ColsUsed: 10}
	// ceil(20/16)=2 row steps × ceil(10/16)=1 col group.
	if got := w.Cycles(Size{16, 16}); got != 2 {
		t.Fatalf("partial occupancy cycles = %d, want 2", got)
	}
}

func TestCyclesMonotoneNonIncreasingInOUDims(t *testing.T) {
	t.Parallel()
	w := denseWork()
	w.Sparsity = constProfile(0.3)
	g := DefaultGrid(128)
	for r := 0; r < g.Levels(); r++ {
		for c := 0; c < g.Levels(); c++ {
			s := g.SizeAt(r, c)
			if r+1 < g.Levels() {
				if w.Cycles(g.SizeAt(r+1, c)) > w.Cycles(s) {
					t.Fatalf("cycles increased when growing R from %v", s)
				}
			}
			if c+1 < g.Levels() {
				if w.Cycles(g.SizeAt(r, c+1)) > w.Cycles(s) {
					t.Fatalf("cycles increased when growing C from %v", s)
				}
			}
		}
	}
}

func TestCyclesPanicsOnBadInput(t *testing.T) {
	t.Parallel()
	w := denseWork()
	for _, fn := range []func(){
		func() { w.Cycles(Size{0, 4}) },
		func() { (LayerWork{Xbars: 0, RowsUsed: 1, ColsUsed: 1}).Cycles(Size{4, 4}) },
		func() { (LayerWork{Xbars: 1, RowsUsed: 0, ColsUsed: 1}).Cycles(Size{4, 4}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestLatencyMatchesEquationOne(t *testing.T) {
	t.Parallel()
	m := CostModel{LatencyUnit: 1, EnergyUnit: 1} // unit constants expose the raw formula
	w := denseWork()
	s := Size{16, 8}
	cycles := float64(w.Cycles(s))
	want := 8 * math.Log2(16) * cycles
	if got := m.Latency(w, s); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Latency = %v, want %v", got, want)
	}
}

func TestEnergyMatchesEquationTwo(t *testing.T) {
	t.Parallel()
	m := CostModel{LatencyUnit: 1, EnergyUnit: 1}
	w := denseWork()
	s := Size{32, 16}
	cycles := float64(w.Cycles(s))
	want := 4 * math.Log2(32) * 32 * 16 * cycles
	if got := m.Energy(w, s); math.Abs(got-want) > 1e-6 {
		t.Fatalf("Energy = %v, want %v", got, want)
	}
}

func TestEvaluateConsistentWithSeparateCalls(t *testing.T) {
	t.Parallel()
	m := DefaultCostModel()
	w := denseWork()
	w.Sparsity = constProfile(0.4)
	for _, s := range DefaultGrid(128).Sizes() {
		c := m.Evaluate(w, s)
		if math.Abs(c.Energy-m.Energy(w, s)) > 1e-18 ||
			math.Abs(c.Latency-m.Latency(w, s)) > 1e-18 {
			t.Fatalf("Evaluate disagrees with Energy/Latency at %v", s)
		}
		if math.Abs(c.EDP()-m.EDP(w, s)) > 1e-30 {
			t.Fatalf("EDP disagrees at %v", s)
		}
	}
}

func TestCostsPositiveProperty(t *testing.T) {
	t.Parallel()
	m := DefaultCostModel()
	f := func(xbars, rows, cols uint8, rIdx, cIdx uint8, sparsity uint8) bool {
		w := LayerWork{
			Xbars:    int(xbars%32) + 1,
			RowsUsed: int(rows%128) + 1,
			ColsUsed: int(cols%128) + 1,
			Sparsity: constProfile(float64(sparsity%101) / 100),
		}
		g := DefaultGrid(128)
		s := g.SizeAt(int(rIdx)%g.Levels(), int(cIdx)%g.Levels())
		c := m.Evaluate(w, s)
		return c.Energy > 0 && c.Latency > 0 && c.Cycles >= 1 && c.EDP() > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyDecreasesWithLargerR(t *testing.T) {
	t.Parallel()
	// Eq. 1: growing R shrinks cycles faster than log2(R) grows, so latency
	// should not increase when R doubles on a large dense layer.
	m := DefaultCostModel()
	w := denseWork()
	g := DefaultGrid(128)
	for c := 0; c < g.Levels(); c++ {
		prev := math.Inf(1)
		for r := 0; r < g.Levels(); r++ {
			lat := m.Latency(w, g.SizeAt(r, c))
			if lat > prev*1.26 { // log2 growth bound: log2(2R)/log2(R) ≤ 1.5 at R=4; allow slack only above exact halving
				t.Fatalf("latency grew anomalously at %v: %v -> %v", g.SizeAt(r, c), prev, lat)
			}
			prev = lat
		}
	}
}

func TestEnergyIndependentOfCOnDenseAlignedLayer(t *testing.T) {
	t.Parallel()
	// For a dense 128×128 layer, Eq. 2 energy is invariant in C (cycles halve
	// as C doubles): a structural identity of the paper's model worth pinning.
	// Uses a zero-overhead model — the per-cycle control term deliberately
	// breaks this degeneracy in the default model.
	m := CostModel{LatencyUnit: 1, EnergyUnit: 1}
	w := denseWork()
	g := DefaultGrid(128)
	base := m.Energy(w, g.SizeAt(2, 0))
	for c := 1; c < g.Levels(); c++ {
		e := m.Energy(w, g.SizeAt(2, c))
		if math.Abs(e-base)/base > 1e-9 {
			t.Fatalf("dense energy varies with C: %v vs %v", e, base)
		}
	}
}

func TestDenseProfileZero(t *testing.T) {
	t.Parallel()
	if (DenseProfile{}).SegmentZeroFraction(16) != 0 {
		t.Fatal("DenseProfile must report zero skippable segments")
	}
}

func TestNilSparsityTreatedAsDense(t *testing.T) {
	t.Parallel()
	w := LayerWork{Xbars: 1, RowsUsed: 64, ColsUsed: 64}
	wDense := LayerWork{Xbars: 1, RowsUsed: 64, ColsUsed: 64, Sparsity: DenseProfile{}}
	if w.Cycles(Size{8, 8}) != wDense.Cycles(Size{8, 8}) {
		t.Fatal("nil profile should behave as dense")
	}
}
