// Package ou implements Operation-Unit level modelling: the discrete OU size
// grid Odin's policy chooses from, the OU compute-cycle counting that turns
// layer shape + sparsity into work, and the paper's analytical latency and
// energy models (Eq. 1 and Eq. 2) with their energy-delay product.
//
// An Operation Unit is the R×C sub-array of a crossbar activated in one
// compute cycle. The paper constrains R, C to powers of two 2^L with
// L ∈ [2,7] (i.e. 4..128) clipped to the crossbar dimension, giving six
// discrete levels per axis on a 128×128 array.
package ou

import (
	"fmt"
	"math"
)

// Size is an OU configuration: R concurrently activated wordlines (rows) by
// C concurrently activated bitlines (columns).
type Size struct {
	R, C int
}

// Product returns R·C, the figure the paper plots layer-wise OU size as.
func (s Size) Product() int { return s.R * s.C }

// String renders the size the way the paper writes it, e.g. "16×8".
func (s Size) String() string { return fmt.Sprintf("%d×%d", s.R, s.C) }

// Valid reports whether both dimensions are positive.
func (s Size) Valid() bool { return s.R >= 1 && s.C >= 1 }

// Grid is the discrete OU search space: power-of-two sizes 2^L for
// L ∈ [MinLevel, MaxLevel] on each axis.
type Grid struct {
	MinLevel int // paper: 2  (OU dimension 4)
	MaxLevel int // paper: 7  (OU dimension 128), reduced for smaller crossbars
}

// DefaultGrid returns the paper's grid for a crossbar of the given size:
// levels 2..min(7, log2(size)). It panics if the crossbar is smaller than
// the minimum OU dimension (4).
func DefaultGrid(crossbarSize int) Grid {
	maxLevel := int(math.Floor(math.Log2(float64(crossbarSize))))
	if maxLevel < 2 {
		panic(fmt.Sprintf("ou: crossbar size %d below minimum OU dimension 4", crossbarSize))
	}
	if maxLevel > 7 {
		maxLevel = 7
	}
	return Grid{MinLevel: 2, MaxLevel: maxLevel}
}

// Levels returns the number of discrete values per axis (paper: 6).
func (g Grid) Levels() int { return g.MaxLevel - g.MinLevel + 1 }

// SizeAt returns the Size for zero-based level indices (rIdx, cIdx).
func (g Grid) SizeAt(rIdx, cIdx int) Size {
	if rIdx < 0 || rIdx >= g.Levels() || cIdx < 0 || cIdx >= g.Levels() {
		panic(fmt.Sprintf("ou: level index (%d,%d) out of range [0,%d)", rIdx, cIdx, g.Levels()))
	}
	return Size{R: 1 << (g.MinLevel + rIdx), C: 1 << (g.MinLevel + cIdx)}
}

// IndexOf returns the level indices for a grid-aligned size, or ok=false if
// either dimension is not a power of two within the grid.
func (g Grid) IndexOf(s Size) (rIdx, cIdx int, ok bool) {
	rIdx, okR := g.levelIndex(s.R)
	cIdx, okC := g.levelIndex(s.C)
	return rIdx, cIdx, okR && okC
}

func (g Grid) levelIndex(dim int) (int, bool) {
	for idx := 0; idx < g.Levels(); idx++ {
		if dim == 1<<(g.MinLevel+idx) {
			return idx, true
		}
	}
	return 0, false
}

// Sizes enumerates every size in the grid, row-major by (rIdx, cIdx).
func (g Grid) Sizes() []Size {
	n := g.Levels()
	out := make([]Size, 0, n*n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			out = append(out, g.SizeAt(r, c))
		}
	}
	return out
}

// NearestIndex returns the level index whose dimension is closest to dim
// (used to snap non-grid baselines such as 9×8 onto the learnable grid when
// needed). The grid is square by construction — a single
// [MinLevel, MaxLevel] range shared by both axes — so NearestIndex is
// axis-agnostic: callers snapping a Size apply it to R and C independently
// (search.ResourceBounded, search.ClampFeasible) and cannot mix up axes.
// If Grid ever grows per-axis level ranges, this must split into
// NearestRowIndex/NearestColIndex and those call sites must be revisited.
func (g Grid) NearestIndex(dim int) int {
	best, bestDist := 0, math.MaxFloat64
	for idx := 0; idx < g.Levels(); idx++ {
		d := math.Abs(float64(dim - 1<<(g.MinLevel+idx)))
		if d < bestDist {
			best, bestDist = idx, d
		}
	}
	return best
}

// SparsityProfile describes how a layer's zero weights are laid out across a
// crossbar from the OU cycle counter's point of view. Implemented by
// internal/sparsity; defined here on the consumer side.
type SparsityProfile interface {
	// SegmentZeroFraction returns the probability that a row segment of the
	// given width (the OU column span) contains only zero weights and can be
	// skipped entirely. Must be in [0,1] and non-increasing in width.
	SegmentZeroFraction(width int) float64
}

// DenseProfile is a SparsityProfile for a layer with no exploitable zeros.
type DenseProfile struct{}

// SegmentZeroFraction always returns 0 for a dense layer.
func (DenseProfile) SegmentZeroFraction(int) float64 { return 0 }

// LayerWork is the per-crossbar workload of one neural layer after mapping
// (produced by internal/pim): how many crossbars hold the layer and how much
// of each is occupied.
type LayerWork struct {
	Xbars    int // number of crossbars the layer maps onto (Xbar_j)
	RowsUsed int // occupied rows per crossbar (averaged over the layer's crossbars)
	ColsUsed int // occupied columns per crossbar
	Sparsity SparsityProfile
}

// Validate reports whether the workload is well-formed.
func (w LayerWork) Validate() error {
	if w.Xbars < 1 {
		return fmt.Errorf("ou: workload needs at least one crossbar, got %d", w.Xbars)
	}
	if w.RowsUsed < 1 || w.ColsUsed < 1 {
		return fmt.Errorf("ou: workload occupancy %dx%d must be positive", w.RowsUsed, w.ColsUsed)
	}
	return nil
}

func (w LayerWork) profile() SparsityProfile {
	if w.Sparsity == nil {
		return DenseProfile{}
	}
	return w.Sparsity
}

// Cycles returns OU_j: the number of OU compute cycles needed to process one
// crossbar of the layer with OU size s. Row segments that are entirely zero
// are skipped (the sparsity exploitation OUs enable); the survivors are
// packed into ceil(activeSegments/R) row steps per column group.
func (w LayerWork) Cycles(s Size) int {
	if !s.Valid() {
		panic(fmt.Sprintf("ou: invalid OU size %v", s))
	}
	if err := w.Validate(); err != nil {
		panic(fmt.Sprintf("ou: %v", err))
	}
	colGroups := ceilDiv(w.ColsUsed, s.C)
	zeroFrac := w.profile().SegmentZeroFraction(min(s.C, w.ColsUsed))
	active := float64(w.RowsUsed) * (1 - zeroFrac)
	activeSegments := int(math.Ceil(active))
	if activeSegments < 1 {
		activeSegments = 1 // at least one cycle: control still touches the crossbar
	}
	rowSteps := ceilDiv(activeSegments, s.R)
	return rowSteps * colGroups
}

// TotalCycles returns the layer's OU cycles summed over all its crossbars.
func (w LayerWork) TotalCycles(s Size) int { return w.Xbars * w.Cycles(s) }

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// CostModel converts OU cycles into latency, energy and EDP following the
// paper's analytical forms:
//
//	Latency ≅ C · log2(R) · OU_j            (Eq. 1)
//	Energy  ≅ Xbar · log2(R) · R · C · OU_j (Eq. 2)
//
// plus a fixed per-OU-cycle overhead (OU controller sequencing, S&H
// settling, input/output register access) that every real pipeline pays.
// Without it the model degenerates: arbitrarily fine OUs become free, which
// neither the paper's figures nor hardware support. LatencyUnit and
// EnergyUnit are the technology constants the paper obtains from NeuroSim;
// see internal/pim for their derivation from Table I.
type CostModel struct {
	LatencyUnit float64 // seconds per (column · ADC-bit) of sensing
	EnergyUnit  float64 // joules per (cell · ADC-bit) of MVM+conversion

	CycleLatency float64 // seconds of fixed control/settle time per OU cycle
	CycleEnergy  float64 // joules of fixed control/buffer energy per OU cycle per crossbar
}

// DefaultCostModel returns constants derived from the Table I tile
// (1.2 GHz, 96 reconfigurable 3–6 bit ADCs): one ADC bit-slice resolves in
// one core cycle, conversion energy per cell-bit is in the tens of
// femtojoules (ISAAC-class), and each OU cycle pays a few clock cycles of
// sequencing plus ~2 pJ of register/control energy.
func DefaultCostModel() CostModel {
	return CostModel{
		LatencyUnit:  1.0 / 1.2e9, // one 1.2 GHz cycle per column-bit
		EnergyUnit:   2e-14,       // 20 fJ per cell-bit
		CycleLatency: 1.0 / 1.2e9, // 1 cycle of control/settle per OU cycle
		CycleEnergy:  5e-13,       // 0.5 pJ control + IR/OR access per OU cycle
	}
}

// adcBits is the Eq. 1/2 precision term log2(R). The physical ADC clamps to
// [3,6] bits (Table I); the analytic model keeps the paper's literal log2
// so that R=4 and R=8 remain distinguishable, as in Fig. 4.
func adcBits(r int) float64 { return math.Log2(float64(r)) }

// Latency returns the layer latency in seconds for OU size s (Eq. 1 plus
// the per-cycle control overhead). Crossbars of a layer operate in
// parallel, so latency does not scale with Xbar_j.
func (m CostModel) Latency(w LayerWork, s Size) float64 {
	cycles := float64(w.Cycles(s))
	return (float64(s.C)*adcBits(s.R)*m.LatencyUnit + m.CycleLatency) * cycles
}

// Energy returns the layer inference energy in joules for OU size s (Eq. 2
// plus the per-cycle control overhead).
func (m CostModel) Energy(w LayerWork, s Size) float64 {
	cycles := float64(w.Cycles(s))
	perCycle := adcBits(s.R)*float64(s.R)*float64(s.C)*m.EnergyUnit + m.CycleEnergy
	return float64(w.Xbars) * perCycle * cycles
}

// EDP returns Energy·Latency for the layer at OU size s.
func (m CostModel) EDP(w LayerWork, s Size) float64 {
	return m.Energy(w, s) * m.Latency(w, s)
}

// Cost bundles the three metrics for one evaluation.
type Cost struct {
	Energy  float64 // J
	Latency float64 // s
	Cycles  int     // OU cycles per crossbar
}

// EDP returns the energy-delay product of the bundled cost.
func (c Cost) EDP() float64 { return c.Energy * c.Latency }

// Evaluate computes all metrics at once (one cycle count shared by both).
func (m CostModel) Evaluate(w LayerWork, s Size) Cost {
	cycles := w.Cycles(s)
	fc := float64(cycles)
	return Cost{
		Energy:  float64(w.Xbars) * (adcBits(s.R)*float64(s.R)*float64(s.C)*m.EnergyUnit + m.CycleEnergy) * fc,
		Latency: (float64(s.C)*adcBits(s.R)*m.LatencyUnit + m.CycleLatency) * fc,
		Cycles:  cycles,
	}
}
