package ou

import (
	"fmt"
	"math"
	"testing"

	"odin/internal/check"
)

// geoProfile is a synthetic sparsity profile: the segment-zero probability
// decays geometrically with width, which satisfies the SparsityProfile
// contract (value in [0,1], non-increasing in width) for any base in [0,1).
type geoProfile struct{ base float64 }

func (p geoProfile) SegmentZeroFraction(width int) float64 {
	return math.Pow(p.base, float64(width))
}

// workCase is one generated cost-model scenario: a workload, a sparsity
// regime, and two level indices per axis so monotonicity properties can
// compare ordered OU sizes on the same workload.
type workCase struct {
	Xbars, Rows, Cols int
	Dense             bool
	Base              float64 // geometric profile base when not dense
	RIdx, CIdx        int     // primary OU level indices on DefaultGrid(128)
	RAlt, CAlt        int     // secondary indices for ordered comparisons
}

func (wc workCase) work() LayerWork {
	w := LayerWork{Xbars: wc.Xbars, RowsUsed: wc.Rows, ColsUsed: wc.Cols}
	if !wc.Dense {
		w.Sparsity = geoProfile{base: wc.Base}
	}
	return w
}

func genWorkCase() check.Gen[workCase] {
	return check.Gen[workCase]{
		Generate: func(t *check.T) workCase {
			return workCase{
				Xbars: 1 + t.Rng.Intn(8),
				Rows:  1 + t.Rng.Intn(128),
				Cols:  1 + t.Rng.Intn(128),
				Dense: t.Rng.Bernoulli(0.4),
				Base:  t.Rng.Float64() * 0.95,
				RIdx:  t.Rng.Intn(6),
				CIdx:  t.Rng.Intn(6),
				RAlt:  t.Rng.Intn(6),
				CAlt:  t.Rng.Intn(6),
			}
		},
		Shrink: func(wc workCase) []workCase {
			var out []workCase
			mutInt := func(v, toward int, set func(*workCase, int)) {
				for _, c := range check.ShrinkInt(v, toward) {
					m := wc
					set(&m, c)
					out = append(out, m)
				}
			}
			mutInt(wc.Xbars, 1, func(m *workCase, v int) { m.Xbars = v })
			mutInt(wc.Rows, 1, func(m *workCase, v int) { m.Rows = v })
			mutInt(wc.Cols, 1, func(m *workCase, v int) { m.Cols = v })
			mutInt(wc.RIdx, 0, func(m *workCase, v int) { m.RIdx = v })
			mutInt(wc.CIdx, 0, func(m *workCase, v int) { m.CIdx = v })
			mutInt(wc.RAlt, 0, func(m *workCase, v int) { m.RAlt = v })
			mutInt(wc.CAlt, 0, func(m *workCase, v int) { m.CAlt = v })
			if !wc.Dense {
				m := wc
				m.Dense = true
				out = append(out, m)
			}
			return out
		},
	}
}

// ordered returns (lo, hi) of two level indices, vacuous=true when equal.
func ordered(a, b int) (lo, hi int, vacuous bool) {
	if a > b {
		a, b = b, a
	}
	return a, b, a == b
}

// TestPropCyclesNonincreasingInR pins the metamorphic invariant that taller
// OUs never need more compute cycles: activating more wordlines per cycle
// covers the occupied rows in fewer row steps, for any sparsity profile.
func TestPropCyclesNonincreasingInR(t *testing.T) {
	t.Parallel()
	grid := DefaultGrid(128)
	check.Run(t, genWorkCase(), func(wc workCase) error {
		lo, hi, vacuous := ordered(wc.RIdx, wc.RAlt)
		if vacuous {
			return nil
		}
		w := wc.work()
		small, big := grid.SizeAt(lo, wc.CIdx), grid.SizeAt(hi, wc.CIdx)
		if cs, cb := w.Cycles(small), w.Cycles(big); cb > cs {
			return fmt.Errorf("cycles increased with R: %v needs %d, %v needs %d (rows=%d cols=%d dense=%v)",
				small, cs, big, cb, wc.Rows, wc.Cols, wc.Dense)
		}
		return nil
	})
}

// TestPropCyclesNonincreasingInCDense pins that on a dense layer, wider OUs
// never need more cycles (fewer column groups). This holds only without
// sparsity: narrow OUs can skip more zero segments, so the general-profile
// version of this property is genuinely false and deliberately not encoded.
func TestPropCyclesNonincreasingInCDense(t *testing.T) {
	t.Parallel()
	grid := DefaultGrid(128)
	check.Run(t, genWorkCase(), func(wc workCase) error {
		lo, hi, vacuous := ordered(wc.CIdx, wc.CAlt)
		if vacuous {
			return nil
		}
		wc.Dense = true
		w := wc.work()
		narrow, wide := grid.SizeAt(wc.RIdx, lo), grid.SizeAt(wc.RIdx, hi)
		if cn, cw := w.Cycles(narrow), w.Cycles(wide); cw > cn {
			return fmt.Errorf("dense cycles increased with C: %v needs %d, %v needs %d (rows=%d cols=%d)",
				narrow, cn, wide, cw, wc.Rows, wc.Cols)
		}
		return nil
	})
}

// TestPropEnergyNondecreasingInR pins Eq. 2's direction: taller OUs raise
// the per-cycle energy (log2(R)·R·C) faster than they cut cycles, so layer
// energy never drops when R grows with C fixed. (Energy in C and latency in
// either axis are non-monotone by design — that trade-off is the paper's
// whole point — so no such properties exist for them.)
func TestPropEnergyNondecreasingInR(t *testing.T) {
	t.Parallel()
	grid := DefaultGrid(128)
	cm := DefaultCostModel()
	check.Run(t, genWorkCase(), func(wc workCase) error {
		lo, hi, vacuous := ordered(wc.RIdx, wc.RAlt)
		if vacuous {
			return nil
		}
		w := wc.work()
		small, big := grid.SizeAt(lo, wc.CIdx), grid.SizeAt(hi, wc.CIdx)
		es, eb := cm.Energy(w, small), cm.Energy(w, big)
		if es > eb*(1+1e-12) {
			return fmt.Errorf("energy dropped with R: %v costs %g J, %v costs %g J (rows=%d cols=%d dense=%v)",
				small, es, big, eb, wc.Rows, wc.Cols, wc.Dense)
		}
		return nil
	})
}

// TestPropCycleAccounting pins the cycle-count bookkeeping: at least one
// cycle per crossbar, exact ceil-division structure on dense layers, and
// TotalCycles = Xbars · Cycles.
func TestPropCycleAccounting(t *testing.T) {
	t.Parallel()
	grid := DefaultGrid(128)
	check.Run(t, genWorkCase(), func(wc workCase) error {
		w := wc.work()
		s := grid.SizeAt(wc.RIdx, wc.CIdx)
		cycles := w.Cycles(s)
		if cycles < 1 {
			return fmt.Errorf("cycle count %d below 1 for %v", cycles, s)
		}
		if got, want := w.TotalCycles(s), wc.Xbars*cycles; got != want {
			return fmt.Errorf("TotalCycles %d != Xbars(%d)·Cycles(%d)", got, wc.Xbars, cycles)
		}
		if wc.Dense {
			want := ceilDiv(wc.Rows, s.R) * ceilDiv(wc.Cols, s.C)
			if cycles != want {
				return fmt.Errorf("dense cycles %d != ceil(%d/%d)·ceil(%d/%d) = %d",
					cycles, wc.Rows, s.R, wc.Cols, s.C, want)
			}
		}
		return nil
	})
}

// TestPropEvaluateConsistent pins that the bundled Evaluate agrees with the
// individual Energy/Latency/EDP entry points and that every component is
// positive — the "component sums equal totals" leg at the Eq. 1/2 level.
func TestPropEvaluateConsistent(t *testing.T) {
	t.Parallel()
	grid := DefaultGrid(128)
	cm := DefaultCostModel()
	relClose := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-12*math.Max(math.Abs(a), math.Abs(b))
	}
	check.Run(t, genWorkCase(), func(wc workCase) error {
		w := wc.work()
		s := grid.SizeAt(wc.RIdx, wc.CIdx)
		c := cm.Evaluate(w, s)
		if !(c.Energy > 0) || !(c.Latency > 0) {
			return fmt.Errorf("non-positive cost %+v for %v", c, s)
		}
		if !relClose(c.Energy, cm.Energy(w, s)) {
			return fmt.Errorf("Evaluate energy %g != Energy %g", c.Energy, cm.Energy(w, s))
		}
		if !relClose(c.Latency, cm.Latency(w, s)) {
			return fmt.Errorf("Evaluate latency %g != Latency %g", c.Latency, cm.Latency(w, s))
		}
		if !relClose(c.EDP(), cm.EDP(w, s)) {
			return fmt.Errorf("Cost.EDP %g != CostModel.EDP %g", c.EDP(), cm.EDP(w, s))
		}
		if c.Cycles != w.Cycles(s) {
			return fmt.Errorf("Evaluate cycles %d != Cycles %d", c.Cycles, w.Cycles(s))
		}
		return nil
	})
}
