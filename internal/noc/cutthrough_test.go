package noc

import (
	"math"
	"testing"
	"testing/quick"

	"odin/internal/rng"
)

func TestCutThroughSinglePacketMatchesWormholeFormula(t *testing.T) {
	t.Parallel()
	m := DefaultMesh()
	// One 4-flit packet over 3 hops: head needs 3 cycles to reach the sink's
	// input link, tail lands flits−1 cycles after the head: (hops−1)+flits.
	sim := m.SimulateCutThrough([]Flow{{Src: 0, Dst: 3, Bits: 4 * 32}})
	if len(sim.Packets) != 1 {
		t.Fatalf("packets = %d", len(sim.Packets))
	}
	p := sim.Packets[0]
	if p.Hops != 3 {
		t.Fatalf("hops = %d", p.Hops)
	}
	want := (3 - 1) + 4 // head pipeline + serialisation
	if p.Latency != want {
		t.Fatalf("latency = %d cycles, want %d", p.Latency, want)
	}
	if sim.MakespanCyc != p.Finish {
		t.Fatal("makespan mismatch")
	}
	if math.Abs(sim.Makespan-float64(p.Finish)*m.HopLatency) > 1e-18 {
		t.Fatal("makespan seconds inconsistent")
	}
}

func TestCutThroughDegenerateFlowsSkipped(t *testing.T) {
	t.Parallel()
	m := DefaultMesh()
	sim := m.SimulateCutThrough([]Flow{
		{Src: 2, Dst: 2, Bits: 64},
		{Src: 0, Dst: 1, Bits: 0},
	})
	if len(sim.Packets) != 0 || sim.MakespanCyc != 0 || sim.Energy != 0 {
		t.Fatalf("degenerate flows produced work: %+v", sim)
	}
}

func TestCutThroughSharedLinkSerialises(t *testing.T) {
	t.Parallel()
	m := DefaultMesh()
	// Two packets over the same links: the second must wait.
	flows := []Flow{
		{Src: 0, Dst: 2, Bits: 8 * 32},
		{Src: 0, Dst: 2, Bits: 8 * 32},
	}
	sim := m.SimulateCutThrough(flows)
	if len(sim.Packets) != 2 {
		t.Fatal("lost a packet")
	}
	first, second := sim.Packets[0], sim.Packets[1]
	if second.Inject < first.Inject+8 {
		t.Fatalf("injection port did not serialise: %d vs %d", second.Inject, first.Inject)
	}
	if second.Finish <= first.Finish {
		t.Fatal("contending packet finished first")
	}
}

func TestCutThroughDisjointFlowsRunInParallel(t *testing.T) {
	t.Parallel()
	m := DefaultMesh()
	single := m.SimulateCutThrough([]Flow{{Src: 0, Dst: 5, Bits: 16 * 32}})
	parallel := m.SimulateCutThrough([]Flow{
		{Src: 0, Dst: 5, Bits: 16 * 32},
		{Src: 6, Dst: 11, Bits: 16 * 32},
		{Src: 12, Dst: 17, Bits: 16 * 32},
	})
	if parallel.MakespanCyc != single.MakespanCyc {
		t.Fatalf("disjoint rows should not interfere: %d vs %d",
			parallel.MakespanCyc, single.MakespanCyc)
	}
}

func TestCutThroughEnergyMatchesAnalytic(t *testing.T) {
	t.Parallel()
	m := DefaultMesh()
	flows := []Flow{
		{Src: 0, Dst: 35, Bits: 320},
		{Src: 7, Dst: 13, Bits: 96},
	}
	sim := m.SimulateCutThrough(flows)
	route := m.Route(flows)
	// Energy is path-length × flits on both models — must agree exactly.
	if sim.TotalFlitHops != route.TotalFlitHops {
		t.Fatalf("flit-hops disagree: sim %d analytic %d", sim.TotalFlitHops, route.TotalFlitHops)
	}
	if math.Abs(sim.Energy-route.Energy) > 1e-21 {
		t.Fatalf("energy disagrees: %v vs %v", sim.Energy, route.Energy)
	}
}

// Property: the simulated makespan is never below either analytic lower
// bound (longest single transfer, bottleneck-link serialisation).
func TestCutThroughLowerBoundsProperty(t *testing.T) {
	t.Parallel()
	m := DefaultMesh()
	f := func(seed uint32, nRaw uint8) bool {
		src := rng.New(uint64(seed))
		n := int(nRaw%12) + 1
		flows := make([]Flow, n)
		for i := range flows {
			flows[i] = Flow{
				Src:  src.Intn(m.Nodes()),
				Dst:  src.Intn(m.Nodes()),
				Bits: (1 + src.Intn(16)) * m.FlitBits,
			}
		}
		sim := m.SimulateCutThrough(flows)
		route := m.Route(flows)
		// Allow exact equality; the sim must not beat the bound.
		return sim.Makespan >= route.Latency-1e-18
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateAgainstAnalytic(t *testing.T) {
	t.Parallel()
	m := DefaultMesh()
	src := rng.New(99)
	var flows []Flow
	for i := 0; i < 30; i++ {
		flows = append(flows, Flow{
			Src:  src.Intn(m.Nodes()),
			Dst:  src.Intn(m.Nodes()),
			Bits: (1 + src.Intn(64)) * m.FlitBits,
		})
	}
	ratio, sim, analytic := m.ValidateAgainstAnalytic(flows)
	if ratio < 1-1e-9 {
		t.Fatalf("simulation beat the analytic lower bound: %v", ratio)
	}
	if ratio > 10 {
		t.Fatalf("analytic model off by %v× — bound too loose", ratio)
	}
	if sim.AvgLatencyCyc <= 0 || analytic.Energy <= 0 {
		t.Fatal("degenerate outputs")
	}
}

func TestValidateAgainstAnalyticEmpty(t *testing.T) {
	t.Parallel()
	m := DefaultMesh()
	ratio, _, _ := m.ValidateAgainstAnalytic(nil)
	if ratio != 1 {
		t.Fatalf("empty traffic ratio = %v, want 1", ratio)
	}
}

func TestWorstPackets(t *testing.T) {
	t.Parallel()
	m := DefaultMesh()
	flows := []Flow{
		{Src: 0, Dst: 1, Bits: 32},       // short
		{Src: 0, Dst: 35, Bits: 32 * 32}, // long and heavy
	}
	sim := m.SimulateCutThrough(flows)
	worst := sim.WorstPackets(1)
	if len(worst) != 1 || worst[0].Flow.Dst != 35 {
		t.Fatalf("worst packet wrong: %+v", worst)
	}
	if len(sim.WorstPackets(10)) != 2 {
		t.Fatal("WorstPackets should clamp to packet count")
	}
}
