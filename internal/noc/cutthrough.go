package noc

import (
	"fmt"
	"math"
	"sort"
)

// This file adds a cycle-level virtual cut-through simulation of the mesh.
// The analytic Route model (noc.go) bounds the transfer phase by the
// bottleneck link's serialisation; the simulation resolves the actual
// pipelined schedule: a packet's head advances one hop per cycle, each link
// carries one packet at a time, and a packet occupies a link for its full
// flit count once transmission starts. Injection and ejection ports
// serialise a node's own traffic. XY routing keeps the schedule
// deadlock-free. The experiment suite uses it to validate the analytic
// model on real layer-to-layer traffic.

// SimPacket is the per-packet outcome of a simulation.
type SimPacket struct {
	Flow    Flow
	Inject  int // cycle the head left the source
	Finish  int // cycle the tail arrived at the destination
	Hops    int
	Latency int // Finish − Inject
}

// SimResult aggregates one cut-through simulation.
type SimResult struct {
	Packets       []SimPacket
	MakespanCyc   int     // cycle the last tail arrived
	Makespan      float64 // seconds
	Energy        float64 // flit-hop energy (identical basis to Route)
	TotalFlitHops int
	AvgLatencyCyc float64
}

// SimulateCutThrough schedules the flows on the mesh cycle-accurately.
// Flows are injected in slice order at cycle 0; a source with several flows
// serialises them through its injection port. Degenerate flows (zero
// payload or self-loops) are skipped, matching Route.
func (m Mesh) SimulateCutThrough(flows []Flow) SimResult {
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("noc: %v", err))
	}
	linkFree := make(map[link]int)
	injectFree := make(map[int]int)
	ejectFree := make(map[int]int)

	var res SimResult
	for _, f := range flows {
		if f.Bits <= 0 || f.Src == f.Dst {
			continue
		}
		flits := m.Flits(f.Bits)
		path := m.XYRoute(f.Src, f.Dst)
		hops := len(path) - 1

		// Injection port: the packet leaves the source when the port frees.
		start := injectFree[f.Src]
		headAt := start // cycle the head starts crossing the next link
		for i := 0; i < hops; i++ {
			l := link{path[i], path[i+1]}
			// The head needs the link free and must have arrived.
			s := max(headAt, linkFree[l])
			linkFree[l] = s + flits // tail releases after all flits pass
			headAt = s + 1          // head reaches the next router a cycle later
		}
		// Ejection port serialises arrivals at the destination.
		tailArrive := headAt - 1 + flits
		if e := ejectFree[f.Dst]; e > tailArrive {
			tailArrive = e
		}
		ejectFree[f.Dst] = tailArrive
		injectFree[f.Src] = start + flits

		res.Packets = append(res.Packets, SimPacket{
			Flow:    f,
			Inject:  start,
			Finish:  tailArrive,
			Hops:    hops,
			Latency: tailArrive - start,
		})
		res.TotalFlitHops += flits * hops
		if tailArrive > res.MakespanCyc {
			res.MakespanCyc = tailArrive
		}
	}
	res.Energy = float64(res.TotalFlitHops) * m.HopEnergy
	res.Makespan = float64(res.MakespanCyc) * m.HopLatency
	var total float64
	for _, p := range res.Packets {
		total += float64(p.Latency)
	}
	if len(res.Packets) > 0 {
		res.AvgLatencyCyc = total / float64(len(res.Packets))
	}
	return res
}

// WorstPackets returns the n packets with the highest latency, most-delayed
// first — handy for traffic debugging.
func (r SimResult) WorstPackets(n int) []SimPacket {
	out := make([]SimPacket, len(r.Packets))
	copy(out, r.Packets)
	sort.Slice(out, func(i, j int) bool { return out[i].Latency > out[j].Latency })
	if n > len(out) {
		n = len(out)
	}
	return out[:n]
}

// ValidateAgainstAnalytic compares the simulated makespan with the analytic
// Route bound and returns the ratio simulated/analytic. The analytic model
// is a lower bound on the transfer phase (it ignores head-path pipelining
// interactions), so the ratio is ≥ ~1 and should stay small on sane
// traffic; experiments assert both.
func (m Mesh) ValidateAgainstAnalytic(flows []Flow) (ratio float64, sim SimResult, analytic TrafficCost) {
	sim = m.SimulateCutThrough(flows)
	analytic = m.Route(flows)
	if analytic.Latency == 0 {
		if sim.Makespan == 0 {
			return 1, sim, analytic
		}
		return math.Inf(1), sim, analytic
	}
	return sim.Makespan / analytic.Latency, sim, analytic
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
