package noc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultMeshValid(t *testing.T) {
	t.Parallel()
	m := DefaultMesh()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Nodes() != 36 {
		t.Fatalf("paper platform has 36 PEs, mesh has %d", m.Nodes())
	}
}

func TestValidateRejections(t *testing.T) {
	t.Parallel()
	mutations := []func(*Mesh){
		func(m *Mesh) { m.W = 0 },
		func(m *Mesh) { m.FlitBits = 0 },
		func(m *Mesh) { m.HopLatency = 0 },
		func(m *Mesh) { m.HopEnergy = -1 },
	}
	for i, mutate := range mutations {
		m := DefaultMesh()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestCoordRoundTrip(t *testing.T) {
	t.Parallel()
	m := DefaultMesh()
	for id := 0; id < m.Nodes(); id++ {
		if got := m.NodeAt(m.CoordOf(id)); got != id {
			t.Fatalf("round trip failed for node %d: got %d", id, got)
		}
	}
}

func TestCoordPanics(t *testing.T) {
	t.Parallel()
	m := DefaultMesh()
	for _, fn := range []func(){
		func() { m.CoordOf(-1) },
		func() { m.CoordOf(36) },
		func() { m.NodeAt(Coord{X: 6, Y: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHopsIsManhattan(t *testing.T) {
	t.Parallel()
	m := DefaultMesh()
	// (0,0) to (5,5): 10 hops.
	if got := m.Hops(0, 35); got != 10 {
		t.Fatalf("corner-to-corner hops = %d, want 10", got)
	}
	if m.Hops(7, 7) != 0 {
		t.Fatal("self distance not 0")
	}
}

// Property: XY route length equals Manhattan distance and every step moves
// to a 1-hop neighbour.
func TestXYRouteProperty(t *testing.T) {
	t.Parallel()
	m := DefaultMesh()
	f := func(aRaw, bRaw uint8) bool {
		a := int(aRaw) % m.Nodes()
		b := int(bRaw) % m.Nodes()
		path := m.XYRoute(a, b)
		if len(path)-1 != m.Hops(a, b) {
			return false
		}
		if path[0] != a || path[len(path)-1] != b {
			return false
		}
		for i := 0; i+1 < len(path); i++ {
			if m.Hops(path[i], path[i+1]) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXYRouteGoesXFirst(t *testing.T) {
	t.Parallel()
	m := DefaultMesh()
	// Node 0 = (0,0) to node 13 = (1,2): route must pass (1,0) before moving in Y.
	path := m.XYRoute(0, 13)
	if path[1] != m.NodeAt(Coord{X: 1, Y: 0}) {
		t.Fatalf("XY routing must resolve X first, got path %v", path)
	}
}

func TestFlits(t *testing.T) {
	t.Parallel()
	m := DefaultMesh() // 32-bit flits
	cases := map[int]int{0: 0, -5: 0, 1: 1, 32: 1, 33: 2, 320: 10}
	for bits, want := range cases {
		if got := m.Flits(bits); got != want {
			t.Errorf("Flits(%d) = %d, want %d", bits, got, want)
		}
	}
}

func TestTransferLatencyWormhole(t *testing.T) {
	t.Parallel()
	m := DefaultMesh()
	// 4 flits over 3 hops: (3 + 4 − 1) cycles.
	want := 6 * m.HopLatency
	if got := m.TransferLatency(4*32, 3); math.Abs(got-want) > 1e-18 {
		t.Fatalf("latency %v, want %v", got, want)
	}
	if m.TransferLatency(0, 5) != 0 || m.TransferLatency(100, 0) != 0 {
		t.Fatal("degenerate transfers must cost nothing")
	}
}

func TestTransferEnergy(t *testing.T) {
	t.Parallel()
	m := DefaultMesh()
	want := 10 * 4 * m.HopEnergy // 10 flits × 4 hops
	if got := m.TransferEnergy(320, 4); math.Abs(got-want) > 1e-24 {
		t.Fatalf("energy %v, want %v", got, want)
	}
}

func TestRouteAggregates(t *testing.T) {
	t.Parallel()
	m := DefaultMesh()
	flows := []Flow{
		{Src: 0, Dst: 5, Bits: 64},  // 2 flits × 5 hops
		{Src: 6, Dst: 11, Bits: 32}, // 1 flit × 5 hops
	}
	cost := m.Route(flows)
	if cost.TotalFlitHops != 2*5+1*5 {
		t.Fatalf("TotalFlitHops = %d", cost.TotalFlitHops)
	}
	if cost.Energy <= 0 || cost.Latency <= 0 {
		t.Fatalf("degenerate cost %+v", cost)
	}
}

func TestRouteContentionRaisesLatency(t *testing.T) {
	t.Parallel()
	m := DefaultMesh()
	// Ten flows all crossing link (0→1) serialise there.
	var flows []Flow
	for i := 0; i < 10; i++ {
		flows = append(flows, Flow{Src: 0, Dst: 2, Bits: 32})
	}
	contended := m.Route(flows)
	single := m.Route(flows[:1])
	if contended.Latency <= single.Latency {
		t.Fatalf("contention did not raise latency: %v vs %v", contended.Latency, single.Latency)
	}
	if contended.BottleneckLoad != 10 {
		t.Fatalf("bottleneck load = %d, want 10", contended.BottleneckLoad)
	}
}

func TestRouteDisjointFlowsDontContend(t *testing.T) {
	t.Parallel()
	m := DefaultMesh()
	// Parallel rows: same length, disjoint links.
	flows := []Flow{
		{Src: 0, Dst: 5, Bits: 32},
		{Src: 6, Dst: 11, Bits: 32},
		{Src: 12, Dst: 17, Bits: 32},
	}
	cost := m.Route(flows)
	single := m.Route(flows[:1])
	if math.Abs(cost.Latency-single.Latency) > 1e-18 {
		t.Fatalf("disjoint flows should not serialise: %v vs %v", cost.Latency, single.Latency)
	}
}

func TestRouteIgnoresDegenerateFlows(t *testing.T) {
	t.Parallel()
	m := DefaultMesh()
	cost := m.Route([]Flow{
		{Src: 3, Dst: 3, Bits: 100}, // self flow
		{Src: 0, Dst: 1, Bits: 0},   // empty payload
	})
	if cost.Energy != 0 || cost.Latency != 0 || cost.TotalFlitHops != 0 {
		t.Fatalf("degenerate flows produced cost %+v", cost)
	}
}

func TestRouteEnergyMatchesFlitHops(t *testing.T) {
	t.Parallel()
	m := DefaultMesh()
	flows := []Flow{{Src: 0, Dst: 35, Bits: 96}}
	cost := m.Route(flows)
	if math.Abs(cost.Energy-float64(cost.TotalFlitHops)*m.HopEnergy) > 1e-24 {
		t.Fatal("energy inconsistent with flit-hop count")
	}
}

func TestYXRouteProperty(t *testing.T) {
	t.Parallel()
	m := DefaultMesh()
	f := func(aRaw, bRaw uint8) bool {
		a := int(aRaw) % m.Nodes()
		b := int(bRaw) % m.Nodes()
		path := m.YXRoute(a, b)
		if len(path)-1 != m.Hops(a, b) {
			return false
		}
		if path[0] != a || path[len(path)-1] != b {
			return false
		}
		for i := 0; i+1 < len(path); i++ {
			if m.Hops(path[i], path[i+1]) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestYXRouteGoesYFirst(t *testing.T) {
	t.Parallel()
	m := DefaultMesh()
	// Node 0 = (0,0) to node 13 = (1,2): YX must pass (0,1) first.
	path := m.YXRoute(0, 13)
	if path[1] != m.NodeAt(Coord{X: 0, Y: 1}) {
		t.Fatalf("YX routing must resolve Y first, got path %v", path)
	}
}

func TestRoutingDiversityChangesBottlenecks(t *testing.T) {
	t.Parallel()
	m := DefaultMesh()
	// All flows into one column from one row: XY funnels them through the
	// destination column's vertical links; YX spreads them over the rows'
	// own columns first — the per-link loads must differ.
	var flows []Flow
	for i := 0; i < 5; i++ {
		flows = append(flows, Flow{Src: i, Dst: 30 + i/2, Bits: 8 * 32})
	}
	xy := m.Route(flows)
	yx := m.RouteYX(flows)
	// Path lengths (hence energy) identical under both orderings.
	if math.Abs(xy.Energy-yx.Energy) > 1e-21 {
		t.Fatalf("dimension ordering changed energy: %v vs %v", xy.Energy, yx.Energy)
	}
	if xy.TotalFlitHops != yx.TotalFlitHops {
		t.Fatalf("flit-hops differ: %d vs %d", xy.TotalFlitHops, yx.TotalFlitHops)
	}
	// But the congestion structure differs for this traffic.
	if xy.BottleneckLoad == yx.BottleneckLoad && xy.Latency == yx.Latency {
		t.Log("note: identical bottlenecks for this pattern; trying an adversarial one")
		var adv []Flow
		for i := 0; i < 6; i++ {
			adv = append(adv, Flow{Src: i, Dst: 35, Bits: 8 * 32})
		}
		xy, yx = m.Route(adv), m.RouteYX(adv)
		if xy.BottleneckLoad == yx.BottleneckLoad {
			t.Fatal("XY and YX produced identical bottlenecks on funnel traffic")
		}
	}
}
