// Package noc models the mesh network-on-chip that connects the platform's
// processing elements (paper §V.A: "36 ReRAM-based processing elements
// connected through a conventional mesh-based NoC").
//
// It provides the 2-D mesh topology, dimension-ordered (XY) wormhole
// routing, per-hop flit energy/latency constants, and a link-load contention
// model: flows are routed, per-link flit counts accumulated, and the
// serialisation delay of the most loaded link bounds the transfer phase.
// This is the standard analytic treatment for accelerator NoCs when a
// cycle-accurate simulation is not required; it feeds the inter-layer
// activation-movement term of the full-system energy/latency accounting.
package noc

import "fmt"

// Mesh is a W×H 2-D mesh with XY routing.
type Mesh struct {
	W, H       int
	FlitBits   int     // paper Table I: 32-bit flits
	HopLatency float64 // s per flit per hop (router + link traversal)
	HopEnergy  float64 // J per flit per hop
}

// DefaultMesh returns the paper's 6×6 mesh with 32-bit flits at 1.2 GHz
// single-cycle hops and a 32 nm-class per-hop flit energy.
func DefaultMesh() Mesh {
	return Mesh{
		W: 6, H: 6,
		FlitBits:   32,
		HopLatency: 1.0 / 1.2e9,
		HopEnergy:  1.5e-13, // 0.15 pJ per flit-hop
	}
}

// Validate reports whether the mesh parameters are usable.
func (m Mesh) Validate() error {
	switch {
	case m.W < 1 || m.H < 1:
		return fmt.Errorf("noc: invalid mesh %dx%d", m.W, m.H)
	case m.FlitBits < 1:
		return fmt.Errorf("noc: invalid flit width %d", m.FlitBits)
	case m.HopLatency <= 0 || m.HopEnergy < 0:
		return fmt.Errorf("noc: invalid hop constants (%g s, %g J)", m.HopLatency, m.HopEnergy)
	}
	return nil
}

// Nodes returns the node count.
func (m Mesh) Nodes() int { return m.W * m.H }

// Coord is a mesh position.
type Coord struct{ X, Y int }

// CoordOf returns the position of node id (row-major). It panics on an
// out-of-range id.
func (m Mesh) CoordOf(id int) Coord {
	if id < 0 || id >= m.Nodes() {
		panic(fmt.Sprintf("noc: node %d out of range [0,%d)", id, m.Nodes()))
	}
	return Coord{X: id % m.W, Y: id / m.W}
}

// NodeAt returns the node id at a position.
func (m Mesh) NodeAt(c Coord) int {
	if c.X < 0 || c.X >= m.W || c.Y < 0 || c.Y >= m.H {
		panic(fmt.Sprintf("noc: coordinate %+v outside %dx%d mesh", c, m.W, m.H))
	}
	return c.Y*m.W + c.X
}

// Hops returns the Manhattan distance between two nodes.
func (m Mesh) Hops(a, b int) int {
	ca, cb := m.CoordOf(a), m.CoordOf(b)
	return abs(ca.X-cb.X) + abs(ca.Y-cb.Y)
}

// XYRoute returns the node sequence of the dimension-ordered route from a
// to b, inclusive of both endpoints: X first, then Y.
func (m Mesh) XYRoute(a, b int) []int {
	ca, cb := m.CoordOf(a), m.CoordOf(b)
	path := []int{a}
	cur := ca
	for cur.X != cb.X {
		cur.X += sign(cb.X - cur.X)
		path = append(path, m.NodeAt(cur))
	}
	for cur.Y != cb.Y {
		cur.Y += sign(cb.Y - cur.Y)
		path = append(path, m.NodeAt(cur))
	}
	return path
}

// YXRoute returns the dimension-ordered route resolving Y first, then X —
// the complementary deadlock-free ordering to XYRoute. Offering both lets
// traffic studies check how sensitive a placement is to the routing
// function (their per-link loads differ even though path lengths match).
func (m Mesh) YXRoute(a, b int) []int {
	ca, cb := m.CoordOf(a), m.CoordOf(b)
	path := []int{a}
	cur := ca
	for cur.Y != cb.Y {
		cur.Y += sign(cb.Y - cur.Y)
		path = append(path, m.NodeAt(cur))
	}
	for cur.X != cb.X {
		cur.X += sign(cb.X - cur.X)
		path = append(path, m.NodeAt(cur))
	}
	return path
}

// RouteYX is Route with YX (Y-first) dimension ordering.
func (m Mesh) RouteYX(flows []Flow) TrafficCost {
	return m.routeWith(flows, m.YXRoute)
}

// Flits returns the flit count for a payload of the given bits.
func (m Mesh) Flits(bits int) int {
	if bits <= 0 {
		return 0
	}
	return (bits + m.FlitBits - 1) / m.FlitBits
}

// TransferLatency returns the uncontended wormhole latency of one payload:
// head-flit path traversal plus body serialisation.
func (m Mesh) TransferLatency(bits, hops int) float64 {
	flits := m.Flits(bits)
	if flits == 0 || hops == 0 {
		return 0
	}
	return float64(hops+flits-1) * m.HopLatency
}

// TransferEnergy returns the flit-hop energy of one payload.
func (m Mesh) TransferEnergy(bits, hops int) float64 {
	return float64(m.Flits(bits)) * float64(hops) * m.HopEnergy
}

// Flow is one unicast payload.
type Flow struct {
	Src, Dst int
	Bits     int
}

// link identifies a directed mesh link by its endpoint node ids.
type link struct{ from, to int }

// TrafficCost summarises the routed cost of a set of concurrent flows.
type TrafficCost struct {
	Energy         float64 // total flit-hop energy (J)
	Latency        float64 // transfer-phase latency bound (s)
	TotalFlitHops  int
	BottleneckLoad int // flits crossing the most loaded link
}

// Route routes all flows with XY routing and returns the aggregate cost.
// Energy sums every flit-hop. Latency is the max of (a) the serialisation
// delay of the most loaded link — flows sharing a link take turns — and
// (b) the longest single uncontended transfer.
func (m Mesh) Route(flows []Flow) TrafficCost {
	return m.routeWith(flows, m.XYRoute)
}

func (m Mesh) routeWith(flows []Flow, route func(a, b int) []int) TrafficCost {
	loads := make(map[link]int)
	var cost TrafficCost
	var longest float64
	for _, f := range flows {
		if f.Bits <= 0 || f.Src == f.Dst {
			continue
		}
		flits := m.Flits(f.Bits)
		path := route(f.Src, f.Dst)
		hops := len(path) - 1
		for i := 0; i < hops; i++ {
			loads[link{path[i], path[i+1]}] += flits
		}
		cost.TotalFlitHops += flits * hops
		if l := m.TransferLatency(f.Bits, hops); l > longest {
			longest = l
		}
	}
	for _, load := range loads {
		if load > cost.BottleneckLoad {
			cost.BottleneckLoad = load
		}
	}
	cost.Energy = float64(cost.TotalFlitHops) * m.HopEnergy
	serial := float64(cost.BottleneckLoad) * m.HopLatency
	if serial > longest {
		cost.Latency = serial
	} else {
		cost.Latency = longest
	}
	return cost
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}
