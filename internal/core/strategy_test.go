package core

import (
	"testing"

	"odin/internal/dnn"
	"odin/internal/obs"
)

// strategyController builds an audited controller for VGG11 running the
// named line-6 strategy.
func strategyController(t *testing.T, strategy string) (*Controller, *obs.AuditLog) {
	t.Helper()
	sys := DefaultSystem()
	wl, err := sys.Prepare(dnn.NewVGG11())
	if err != nil {
		t.Fatal(err)
	}
	log := obs.NewAuditLog(0)
	opts := DefaultControllerOptions()
	opts.Strategy = strategy
	opts.Audit = log
	ctrl, err := NewController(sys, wl, freshPolicy(sys), opts)
	if err != nil {
		t.Fatal(err)
	}
	return ctrl, log
}

// TestControllerStrategyAttribution pins the Name()-driven attribution
// contract: whatever registered optimizer drives line 6, the decision
// audit carries its registry name verbatim, candidates reconcile with the
// budget, and only the multi-objective strategy records a front.
func TestControllerStrategyAttribution(t *testing.T) {
	t.Parallel()
	for _, strategy := range []string{"rb", "ex", "bo", "pareto"} {
		strategy := strategy
		t.Run(strategy, func(t *testing.T) {
			t.Parallel()
			ctrl, log := strategyController(t, strategy)
			if got := ctrl.Strategy(); got != strategy {
				t.Fatalf("Controller.Strategy() = %q, want %q", got, strategy)
			}
			rep := ctrl.RunInference(0)
			runs := log.Runs()
			if len(runs) != 1 {
				t.Fatalf("audit recorded %d runs, want 1", len(runs))
			}
			evals := 0
			for j, d := range runs[0].Layers {
				if d.Strategy != strategy {
					t.Fatalf("layer %d attributed to %q, want %q", j, d.Strategy, strategy)
				}
				if len(d.Candidates) != d.Evaluations {
					t.Fatalf("layer %d recorded %d candidates for %d evaluations",
						j, len(d.Candidates), d.Evaluations)
				}
				if strategy == "pareto" {
					if len(d.Front) == 0 {
						t.Fatalf("layer %d pareto decision carries no front", j)
					}
					chosenTied := false
					for _, s := range d.Front {
						if s == d.Chosen {
							chosenTied = true
						}
					}
					if !chosenTied {
						t.Fatalf("layer %d chosen %v not on the recorded front %v", j, d.Chosen, d.Front)
					}
				} else if len(d.Front) != 0 {
					t.Fatalf("layer %d scalar strategy %q recorded a front", j, strategy)
				}
				evals += d.Evaluations
			}
			if evals != rep.SearchEvaluations {
				t.Fatalf("audit evaluations %d, report says %d", evals, rep.SearchEvaluations)
			}
		})
	}
}

// TestControllerStrategyBudgets pins the per-strategy comparator cost on a
// fresh device: EX and Pareto pay the full grid per layer, BO at most half
// of it, RB the paper's 1+4K.
func TestControllerStrategyBudgets(t *testing.T) {
	t.Parallel()
	evalsFor := func(strategy string) (int, int) {
		ctrl, _ := strategyController(t, strategy)
		rep := ctrl.RunInference(0)
		return rep.SearchEvaluations, len(rep.Sizes)
	}
	grid := DefaultSystem().Grid()
	full := grid.Levels() * grid.Levels()

	ex, layers := evalsFor("ex")
	if ex != full*layers {
		t.Fatalf("ex spent %d evaluations, want %d layers × %d", ex, layers, full)
	}
	pareto, _ := evalsFor("pareto")
	if pareto != ex {
		t.Fatalf("pareto spent %d evaluations, want EX's %d", pareto, ex)
	}
	bo, _ := evalsFor("bo")
	if 2*bo > ex {
		t.Fatalf("bo spent %d evaluations, more than half of EX's %d", bo, ex)
	}
	rb, _ := evalsFor("rb")
	if rb > layers*(1+4*3) {
		t.Fatalf("rb spent %d evaluations, above the 1+4K budget for %d layers", rb, layers)
	}
}

// TestControllerUnknownStrategy pins construction-time validation.
func TestControllerUnknownStrategy(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	wl, err := sys.Prepare(dnn.NewVGG11())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultControllerOptions()
	opts.Strategy = "anneal"
	if _, err := NewController(sys, wl, freshPolicy(sys), opts); err == nil {
		t.Fatal("NewController accepted an unknown strategy")
	}
}

// TestExhaustiveFlagMapsToEXStrategy pins back-compat: the paper-facing
// Exhaustive flag is shorthand for Strategy "ex".
func TestExhaustiveFlagMapsToEXStrategy(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	wl, err := sys.Prepare(dnn.NewVGG11())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultControllerOptions()
	opts.Exhaustive = true
	ctrl, err := NewController(sys, wl, freshPolicy(sys), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := ctrl.Strategy(); got != "ex" {
		t.Fatalf("Exhaustive controller strategy %q, want ex", got)
	}
}
