package core

import (
	"fmt"
	"math"
	"testing"

	"odin/internal/check"
	"odin/internal/dnn"
)

// batchCase is one synthetic BatchReport arithmetic scenario.
type batchCase struct {
	N                 int
	Energy, Latency   float64
	RepEnergy, RepLat float64
	Passes            int
}

func genBatchCase() check.Gen[batchCase] {
	return check.Gen[batchCase]{
		Generate: func(t *check.T) batchCase {
			bc := batchCase{
				N:       1 + t.Rng.Intn(64),
				Energy:  t.Rng.Float64() * 1e-3,
				Latency: t.Rng.Float64() * 1e-3,
			}
			if t.Rng.Bernoulli(0.5) {
				bc.Passes = 1 + t.Rng.Intn(3)
				bc.RepEnergy = t.Rng.Float64() * 1e-1
				bc.RepLat = t.Rng.Float64() * 1e-1
			}
			return bc
		},
		Shrink: func(bc batchCase) []batchCase {
			var out []batchCase
			for _, v := range check.ShrinkInt(bc.N, 1) {
				m := bc
				m.N = v
				out = append(out, m)
			}
			mutF := func(v float64, set func(*batchCase, float64)) {
				for _, s := range check.ShrinkFloat(v, 0) {
					m := bc
					set(&m, s)
					out = append(out, m)
				}
			}
			mutF(bc.Energy, func(m *batchCase, v float64) { m.Energy = v })
			mutF(bc.Latency, func(m *batchCase, v float64) { m.Latency = v })
			mutF(bc.RepEnergy, func(m *batchCase, v float64) { m.RepEnergy = v })
			mutF(bc.RepLat, func(m *batchCase, v float64) { m.RepLat = v })
			return out
		},
	}
}

// TestPropBatchAmortisation pins the request-conservation arithmetic of the
// batch path: batch cost is exactly n·per-inference plus one amortised
// reprogramming pass, and therefore never exceeds n singleton runs that
// each pay the pass themselves (batch-amortised ≤ sum of singletons).
func TestPropBatchAmortisation(t *testing.T) {
	t.Parallel()
	check.Run(t, genBatchCase(), func(bc batchCase) error {
		rep := RunReport{
			Energy:           bc.Energy,
			Latency:          bc.Latency,
			Reprogrammed:     bc.Passes > 0,
			ReprogramPasses:  bc.Passes,
			ReprogramEnergy:  bc.RepEnergy,
			ReprogramLatency: bc.RepLat,
		}
		b := BatchReport{RunReport: rep, Requests: bc.N}
		n := float64(bc.N)
		if d := b.BatchEnergy() - (n*bc.Energy + bc.RepEnergy); d != 0 {
			return fmt.Errorf("BatchEnergy off by %g from n·E + reprogram", d)
		}
		if d := b.BatchLatency() - (n*bc.Latency + bc.RepLat); d != 0 {
			return fmt.Errorf("BatchLatency off by %g from n·L + reprogram", d)
		}
		singletons := n * rep.TotalEnergy()
		if b.BatchEnergy() > singletons*(1+1e-12) {
			return fmt.Errorf("batch energy %g exceeds %d singleton runs %g", b.BatchEnergy(), bc.N, singletons)
		}
		singletonLat := n * rep.TotalLatency()
		if b.BatchLatency() > singletonLat*(1+1e-12) {
			return fmt.Errorf("batch latency %g exceeds %d singleton runs %g", b.BatchLatency(), bc.N, singletonLat)
		}
		if d := rep.TotalEnergy() - (bc.Energy + bc.RepEnergy); d != 0 {
			return fmt.Errorf("TotalEnergy off by %g from component sum", d)
		}
		if d := rep.TotalLatency() - (bc.Latency + bc.RepLat); d != 0 {
			return fmt.Errorf("TotalLatency off by %g from component sum", d)
		}
		if d := rep.EDP() - bc.Energy*bc.Latency; d != 0 {
			return fmt.Errorf("EDP off by %g from Energy·Latency", d)
		}
		return nil
	})
}

// propModel is a 3-layer conv stack small enough that a decision pass costs
// microseconds; controller invariants, not workload scale, are under test.
func propModel() *dnn.Model {
	return &dnn.Model{
		Name:          "prop-tiny",
		Dataset:       dnn.Dataset{Name: "toy", InputH: 8, InputW: 8, Channels: 3, Classes: 10},
		IdealAccuracy: 0.9,
		Layers: []dnn.Layer{
			{Name: "c1", Type: dnn.Conv, KernelH: 3, KernelW: 3, InChannels: 3, OutChannels: 8, InH: 8, InW: 8, Stride: 1},
			{Name: "c2", Type: dnn.Conv, KernelH: 3, KernelW: 3, InChannels: 8, OutChannels: 8, InH: 8, InW: 8, Stride: 1},
			{Name: "c3", Type: dnn.Conv, KernelH: 3, KernelW: 3, InChannels: 8, OutChannels: 4, InH: 8, InW: 8, Stride: 1},
		},
	}
}

// ctrlCase drives one controller decision pass at a generated age/batch.
type ctrlCase struct {
	AgeExp float64 // run time = 10^AgeExp seconds
	N      int
	K      int
}

func genCtrlCase() check.Gen[ctrlCase] {
	return check.Gen[ctrlCase]{
		Generate: func(t *check.T) ctrlCase {
			return ctrlCase{
				AgeExp: t.Rng.Float64() * 8,
				N:      1 + t.Rng.Intn(8),
				K:      1 + t.Rng.Intn(4),
			}
		},
		Shrink: func(c ctrlCase) []ctrlCase {
			var out []ctrlCase
			for _, v := range check.ShrinkInt(c.N, 1) {
				m := c
				m.N = v
				out = append(out, m)
			}
			for _, v := range check.ShrinkInt(c.K, 1) {
				m := c
				m.K = v
				out = append(out, m)
			}
			for _, v := range check.ShrinkFloat(c.AgeExp, 0) {
				m := c
				m.AgeExp = v
				out = append(out, m)
			}
			return out
		},
	}
}

// TestPropControllerBatchInvariants pins Algorithm 1's per-pass contract on
// a fresh controller at arbitrary device ages: every decided size is a
// legal grid point, the RB evaluation budget layers·(1+4K) is respected,
// the learning state advances once per batch regardless of n, and the
// report's totals equal their component sums.
func TestPropControllerBatchInvariants(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	wl, err := sys.Prepare(propModel())
	if err != nil {
		t.Fatal(err)
	}
	grid := sys.Grid()
	check.RunConfig(t, check.Config{Trials: 25}, genCtrlCase(), func(c ctrlCase) error {
		opts := DefaultControllerOptions()
		opts.SearchK = c.K
		ctrl, err := NewController(sys, wl, freshPolicy(sys), opts)
		if err != nil {
			return fmt.Errorf("controller construction: %w", err)
		}
		rep := ctrl.RunBatch(math.Pow(10, c.AgeExp), c.N)
		if rep.Requests != c.N {
			return fmt.Errorf("batch of %d reported %d requests", c.N, rep.Requests)
		}
		if len(rep.Sizes) != wl.Layers() {
			return fmt.Errorf("%d sizes for %d layers", len(rep.Sizes), wl.Layers())
		}
		for j, s := range rep.Sizes {
			if _, _, ok := grid.IndexOf(s); !ok {
				return fmt.Errorf("layer %d decided off-grid size %v", j, s)
			}
		}
		if budget := wl.Layers() * (1 + 4*c.K); rep.SearchEvaluations > budget {
			return fmt.Errorf("search spent %d evaluations, budget %d (K=%d)", rep.SearchEvaluations, budget, c.K)
		}
		if !(rep.Energy > 0) || !(rep.Latency > 0) {
			return fmt.Errorf("degenerate inference cost %g J / %g s", rep.Energy, rep.Latency)
		}
		if rep.Accuracy < 0 || rep.Accuracy > 1 {
			return fmt.Errorf("accuracy %g outside [0,1]", rep.Accuracy)
		}
		if d := rep.TotalEnergy() - (rep.Energy + rep.ReprogramEnergy); d != 0 {
			return fmt.Errorf("TotalEnergy off by %g from component sum", d)
		}
		if d := rep.BatchEnergy() - (float64(c.N)*rep.Energy + rep.ReprogramEnergy); d != 0 {
			return fmt.Errorf("BatchEnergy off by %g from n·E + reprogram", d)
		}
		if rep.Reprogrammed != (rep.ReprogramPasses > 0) {
			return fmt.Errorf("Reprogrammed=%v but %d passes", rep.Reprogrammed, rep.ReprogramPasses)
		}
		return nil
	})
}
