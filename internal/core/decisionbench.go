package core

import "odin/internal/policy"

// DecisionBench returns a closure executing one per-layer line-6 decision
// — policy prediction, feasibility clamp, strategy search, decision-cache
// lookup when opts enable one — exactly as RunInference runs it for layer
// j at device age `age`, but without the learning side effects (no
// disagreement buffering, no policy updates). It exists so `odinsim bench`
// and BenchmarkControllerLayerDecision measure the real controller slice,
// cached and uncached, rather than a reimplementation that could drift.
//
// The returned closure is not safe for concurrent use (it shares the
// controller's scratch buffers).
func DecisionBench(sys System, wl *Workload, pol *policy.Policy, opts ControllerOptions, j int, age float64) (func(), error) {
	ctrl, err := NewController(sys, wl, pol, opts)
	if err != nil {
		return nil, err
	}
	return func() { _ = ctrl.decideLayer(j, age, false) }, nil
}
