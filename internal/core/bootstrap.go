package core

import (
	"fmt"
	"strings"

	"odin/internal/dnn"
	"odin/internal/mlp"
	"odin/internal/par"
	"odin/internal/policy"
	"odin/internal/search"
)

// BootstrapConfig controls offline policy construction (paper §V.A: "the
// offline policy is constructed using up to 500 training examples
// comprising of neural layer features and optimized OU configurations of
// known DNNs").
type BootstrapConfig struct {
	MaxExamples  int       // cap on training examples (paper: 500)
	Times        []float64 // device ages sampled per model
	Epochs       int       // offline training epochs
	LearningRate float64
	Seed         uint64
}

// DefaultBootstrapConfig returns the paper's settings with ages spanning
// the drift sweep of Figs. 4–5.
func DefaultBootstrapConfig() BootstrapConfig {
	return BootstrapConfig{
		MaxExamples: 500,
		Times:       []float64{1, 1e2, 1e3, 1e4, 1e5, 1e6},
		Epochs:      300,
		Seed:        1,
	}
}

func (c BootstrapConfig) withDefaults() BootstrapConfig {
	if c.MaxExamples <= 0 {
		c.MaxExamples = 500
	}
	if len(c.Times) == 0 {
		c.Times = []float64{1, 1e2, 1e3, 1e4, 1e5, 1e6}
	}
	if c.Epochs <= 0 {
		c.Epochs = 300
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// CollectExamples generates supervised examples for the known models by
// exhaustive search over the OU grid at each configured device age. The
// result is capped at cfg.MaxExamples by uniform striding so every model
// and age stays represented.
//
// The model×age grid is evaluated in parallel: workloads are prepared one
// shard per model (each model is a distinct instance, and pruning draws
// come from rng streams labelled by model/layer name, so draws are
// independent of scheduling), then every (model, age) cell collects its
// examples into its own shard. Concatenating the shards in cell order
// reproduces the sequential model-major append order exactly, so the
// example set — and every policy trained from it — is byte-identical at
// any worker count.
func CollectExamples(sys System, models []*dnn.Model, cfg BootstrapConfig) ([]policy.Example, error) {
	cfg = cfg.withDefaults()
	grid := sys.Grid()
	wls := make([]*Workload, len(models))
	if err := par.ForEach(0, len(models), func(i int) error {
		wl, err := sys.Prepare(models[i])
		if err != nil {
			return fmt.Errorf("core: preparing %s: %w", models[i].Name, err)
		}
		wls[i] = wl
		return nil
	}); err != nil {
		return nil, err
	}

	shards := make([][]policy.Example, len(models)*len(cfg.Times))
	par.Each(0, len(shards), func(cell int) {
		wl := wls[cell/len(cfg.Times)]
		age := cfg.Times[cell%len(cfg.Times)]
		for j := 0; j < wl.Layers(); j++ {
			res := search.Exhaustive(grid, sys.objective(wl, j, age))
			if !res.Found {
				continue // no feasible size at this age — nothing to teach
			}
			shards[cell] = append(shards[cell], policy.Example{F: wl.FeaturesAt(j, age), Target: res.Best})
		}
	})
	var all []policy.Example
	for _, shard := range shards {
		all = append(all, shard...)
	}
	if len(all) > cfg.MaxExamples {
		stride := float64(len(all)) / float64(cfg.MaxExamples)
		capped := make([]policy.Example, 0, cfg.MaxExamples)
		for i := 0; i < cfg.MaxExamples; i++ {
			capped = append(capped, all[int(float64(i)*stride)])
		}
		all = capped
	}
	return all, nil
}

// BootstrapPolicy builds and trains the offline OU policy from (N−1) known
// DNNs (paper §V.A's leave-one-out protocol: to evaluate VGG models the
// offline policy is learnt from ResNets, DenseNets, ViT, …). It returns the
// trained policy and the number of examples used.
func BootstrapPolicy(sys System, models []*dnn.Model, cfg BootstrapConfig) (*policy.Policy, int, error) {
	cfg = cfg.withDefaults()
	examples, err := CollectExamples(sys, models, cfg)
	if err != nil {
		return nil, 0, err
	}
	pol := policy.New(policy.Config{Grid: sys.Grid(), Seed: cfg.Seed})
	if len(examples) == 0 {
		return pol, 0, nil
	}
	if _, err := pol.Train(examples, mlp.TrainOptions{
		Epochs:       cfg.Epochs,
		LearningRate: cfg.LearningRate,
		Seed:         cfg.Seed,
	}); err != nil {
		return nil, 0, err
	}
	return pol, len(examples), nil
}

// LeaveOut returns all zoo workloads except those whose name contains the
// excluded family substring — the paper's unseen-DNN protocol (e.g.
// LeaveOut("VGG") trains offline on everything but the VGG family).
func LeaveOut(models []*dnn.Model, family string) []*dnn.Model {
	var out []*dnn.Model
	for _, m := range models {
		if !containsFold(m.Name, family) {
			out = append(out, m)
		}
	}
	return out
}

func containsFold(s, sub string) bool {
	return strings.Contains(strings.ToLower(s), strings.ToLower(sub))
}
