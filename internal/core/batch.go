package core

import "fmt"

// BatchReport is the outcome of one coalesced decision pass amortised over
// a batch of inference requests. The serving layer (internal/serve) groups
// compatible requests queued for the same chip and runs Algorithm 1 once
// per batch: every request in the batch executes with the same per-layer OU
// sizes and is charged the same per-inference energy/latency, while the
// decision-pass overhead (search evaluations, policy updates) and any
// reprogramming pass are paid once. This is the request-path analogue of
// the horizon driver's epoch amortisation (see horizon.go).
type BatchReport struct {
	RunReport
	// Requests is the number of coalesced inference requests (>= 1).
	Requests int
}

// BatchEnergy returns the total energy of serving the batch: per-inference
// energy for every request plus the (at most one) reprogramming pass.
func (b BatchReport) BatchEnergy() float64 {
	return float64(b.Requests)*b.Energy + b.ReprogramEnergy
}

// BatchLatency returns the chip-occupancy time of the batch: requests
// execute back-to-back on the chip's arrays, and a reprogramming pass
// (booked on this batch) stalls the chip for its write time.
func (b BatchReport) BatchLatency() float64 {
	return float64(b.Requests)*b.Latency + b.ReprogramLatency
}

// RunBatch executes one Algorithm 1 decision pass at simulation time t and
// amortises it over n coalesced inference requests. The controller's
// learning state advances exactly once regardless of n — a batch is one
// observation of the device, not n — which keeps replayed decision
// trajectories independent of how arrivals were grouped upstream only when
// the grouping itself is deterministic (the serving layer guarantees this).
func (c *Controller) RunBatch(t float64, n int) BatchReport {
	if n < 1 {
		panic(fmt.Sprintf("core: RunBatch with non-positive batch size %d", n))
	}
	return BatchReport{RunReport: c.RunInference(t), Requests: n}
}
