package core

import (
	"math"
	"testing"

	"odin/internal/dnn"
	"odin/internal/ou"
	"odin/internal/policy"
)

func TestDefaultSystemValid(t *testing.T) {
	t.Parallel()
	if err := DefaultSystem().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWithCrossbarSize(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem().WithCrossbarSize(64)
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	if sys.Grid().Levels() != 5 {
		t.Fatalf("64-crossbar grid levels = %d, want 5", sys.Grid().Levels())
	}
	// The original is unchanged (value semantics).
	if DefaultSystem().Arch.CrossbarSize != 128 {
		t.Fatal("WithCrossbarSize mutated the default")
	}
}

func TestPrepareWorkload(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	m := dnn.NewVGG11()
	wl, err := sys.Prepare(m)
	if err != nil {
		t.Fatal(err)
	}
	if wl.Layers() != 11 {
		t.Fatalf("prepared %d layers, want 11", wl.Layers())
	}
	if m.MeanWeightSparsity() == 0 {
		t.Fatal("Prepare did not prune the model")
	}
	if wl.NoCEnergy <= 0 || wl.NoCLatency <= 0 {
		t.Fatalf("NoC costs not positive: %v / %v", wl.NoCEnergy, wl.NoCLatency)
	}
	if wl.CellsNonZero <= 0 {
		t.Fatal("no non-zero cells recorded")
	}
	var totalCells int
	for _, lm := range wl.Mappings {
		totalCells += lm.CellsTotal
	}
	if wl.CellsNonZero >= totalCells {
		t.Fatalf("non-zero cells %d should be below total %d for a pruned model",
			wl.CellsNonZero, totalCells)
	}
}

func TestPreparePreservesExistingPruning(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	m := dnn.NewVGG11()
	if _, err := sys.Prepare(m); err != nil {
		t.Fatal(err)
	}
	before := m.Layers[3].WeightSparsity
	if _, err := sys.Prepare(m); err != nil {
		t.Fatal(err)
	}
	if m.Layers[3].WeightSparsity != before {
		t.Fatal("second Prepare re-pruned the model")
	}
}

func TestPrepareRejectsInvalidModel(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	bad := &dnn.Model{Name: "bad", IdealAccuracy: 0.9}
	if _, err := sys.Prepare(bad); err == nil {
		t.Fatal("empty model accepted")
	}
}

func TestFeaturesAt(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	wl, err := sys.Prepare(dnn.NewVGG11())
	if err != nil {
		t.Fatal(err)
	}
	f := wl.FeaturesAt(2, 123)
	if f.LayerIndex != 2 || f.LayerCount != 11 || f.Time != 123 {
		t.Fatalf("features wrong: %+v", f)
	}
	if f.KernelSize != 3 {
		t.Fatalf("conv kernel size %d, want 3", f.KernelSize)
	}
	if f.Sparsity != wl.Model.Layers[2].WeightSparsity {
		t.Fatal("sparsity feature mismatch")
	}
}

func freshPolicy(sys System) *policy.Policy {
	return policy.New(policy.Config{Grid: sys.Grid(), Seed: 7})
}

func TestNewControllerValidation(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	wl, _ := sys.Prepare(dnn.NewVGG11())
	if _, err := NewController(sys, nil, freshPolicy(sys), DefaultControllerOptions()); err == nil {
		t.Fatal("nil workload accepted")
	}
	if _, err := NewController(sys, wl, nil, DefaultControllerOptions()); err == nil {
		t.Fatal("nil policy accepted")
	}
	// Grid mismatch: policy built for a 64-crossbar system.
	small := DefaultSystem().WithCrossbarSize(64)
	if _, err := NewController(sys, wl, freshPolicy(small), DefaultControllerOptions()); err == nil {
		t.Fatal("grid-mismatched policy accepted")
	}
}

func TestControllerRunAtT0(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	wl, _ := sys.Prepare(dnn.NewVGG11())
	ctrl, err := NewController(sys, wl, freshPolicy(sys), DefaultControllerOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := ctrl.RunInference(0)
	if len(rep.Sizes) != 11 {
		t.Fatalf("%d sizes, want 11", len(rep.Sizes))
	}
	g := sys.Grid()
	for j, s := range rep.Sizes {
		if _, _, ok := g.IndexOf(s); !ok {
			t.Fatalf("layer %d size %v off grid", j, s)
		}
	}
	if rep.Energy <= 0 || rep.Latency <= 0 {
		t.Fatalf("degenerate cost: %v / %v", rep.Energy, rep.Latency)
	}
	if rep.Reprogrammed {
		t.Fatal("reprogram at t0 makes no sense")
	}
	if rep.Accuracy < wl.Model.IdealAccuracy-0.01 {
		t.Fatalf("t0 accuracy %v far below ideal %v", rep.Accuracy, wl.Model.IdealAccuracy)
	}
	if rep.SearchEvaluations <= 0 {
		t.Fatal("no search evaluations recorded")
	}
}

func TestControllerReprogramsWhenNothingFeasible(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	wl, _ := sys.Prepare(dnn.NewVGG11())
	ctrl, _ := NewController(sys, wl, freshPolicy(sys), DefaultControllerOptions())
	rep := ctrl.RunInference(1e12) // far past every deadline
	if !rep.Reprogrammed {
		t.Fatal("controller did not reprogram at extreme age")
	}
	if rep.ReprogramEnergy <= 0 || rep.ReprogramLatency <= 0 {
		t.Fatal("reprogram cost missing")
	}
	if ctrl.Reprograms() != 1 {
		t.Fatalf("Reprograms = %d, want 1", ctrl.Reprograms())
	}
	// Next run starts from a fresh device: no immediate second reprogram.
	rep2 := ctrl.RunInference(1e12 + 1)
	if rep2.Reprogrammed {
		t.Fatal("device should be fresh right after reprogramming")
	}
	if rep2.Age > sys.Device.T0+2 {
		t.Fatalf("age after reprogram = %v, want ≈ t0", rep2.Age)
	}
}

func TestControllerShrinksOUsWithAge(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	wl, _ := sys.Prepare(dnn.NewVGG11())
	ctrl, _ := NewController(sys, wl, freshPolicy(sys), DefaultControllerOptions())
	fresh := ctrl.RunInference(0)
	aged := ctrl.RunInference(3e7) // deep into drift, before the 4×4 deadline
	sum := func(sizes []ou.Size) int {
		total := 0
		for _, s := range sizes {
			total += s.Product()
		}
		return total
	}
	if sum(aged.Sizes) >= sum(fresh.Sizes) {
		t.Fatalf("OU sizes did not shrink with drift: %v -> %v", sum(fresh.Sizes), sum(aged.Sizes))
	}
}

func TestControllerLearnsFromDisagreements(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	wl, _ := sys.Prepare(dnn.NewVGG11())
	opts := DefaultControllerOptions()
	opts.BufferSize = 5 // tiny buffer so updates happen quickly
	ctrl, _ := NewController(sys, wl, freshPolicy(sys), opts)
	totalDisagreements := 0
	for k := 0; k < 30; k++ {
		rep := ctrl.RunInference(float64(k) * 100)
		totalDisagreements += rep.Disagreements
	}
	if totalDisagreements == 0 {
		t.Fatal("a fresh policy should disagree with the search somewhere")
	}
	if ctrl.PolicyUpdates() == 0 {
		t.Fatal("buffer never filled despite disagreements")
	}
}

func TestControllerExhaustiveMode(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	wl, _ := sys.Prepare(dnn.NewVGG11())
	opts := DefaultControllerOptions()
	opts.Exhaustive = true
	ctrl, _ := NewController(sys, wl, freshPolicy(sys), opts)
	rep := ctrl.RunInference(0)
	// EX evaluates the full 36-config grid per layer.
	if want := 36 * wl.Layers(); rep.SearchEvaluations != want {
		t.Fatalf("EX evaluations = %d, want %d", rep.SearchEvaluations, want)
	}
	rbCtrl, _ := NewController(sys, wl, freshPolicy(sys), DefaultControllerOptions())
	rbRep := rbCtrl.RunInference(0)
	ratio := float64(rep.SearchEvaluations) / float64(rbRep.SearchEvaluations)
	if ratio < 1.5 {
		t.Fatalf("EX/RB overhead ratio %v too low (paper: ≈3×)", ratio)
	}
}

func TestBaselineValidation(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	wl, _ := sys.Prepare(dnn.NewVGG11())
	if _, err := NewBaseline(sys, nil, ou.Size{R: 16, C: 16}); err == nil {
		t.Fatal("nil workload accepted")
	}
	if _, err := NewBaseline(sys, wl, ou.Size{R: 0, C: 16}); err == nil {
		t.Fatal("invalid size accepted")
	}
	if _, err := NewBaseline(sys, wl, ou.Size{R: 256, C: 16}); err == nil {
		t.Fatal("size exceeding crossbar accepted")
	}
	b, err := NewBaseline(sys, wl, ou.Size{R: 9, C: 8}) // off-grid prior-work config
	if err != nil {
		t.Fatal(err)
	}
	if b.Size() != (ou.Size{R: 9, C: 8}) {
		t.Fatal("size not stored")
	}
}

func TestBaselineUsesFixedSize(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	wl, _ := sys.Prepare(dnn.NewVGG11())
	b, _ := NewBaseline(sys, wl, ou.Size{R: 16, C: 4})
	rep := b.RunInference(0)
	for _, s := range rep.Sizes {
		if s != (ou.Size{R: 16, C: 4}) {
			t.Fatalf("baseline varied its size: %v", s)
		}
	}
}

func TestBaselineReprogramsOnViolation(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	wl, _ := sys.Prepare(dnn.NewVGG11())
	b, _ := NewBaseline(sys, wl, ou.Size{R: 16, C: 16})
	if rep := b.RunInference(0); rep.Reprogrammed {
		t.Fatal("16×16 should be fine at t0")
	}
	rep := b.RunInference(1e6) // past the 16×16 deadline
	if !rep.Reprogrammed {
		t.Fatal("16×16 should violate and reprogram by 1e6 s")
	}
	// Accuracy is restored because the device is fresh again.
	if rep.Accuracy < wl.Model.IdealAccuracy-0.02 {
		t.Fatalf("post-reprogram accuracy %v too low", rep.Accuracy)
	}
}

func TestBaselineWithoutReprogrammingDecays(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	wl, _ := sys.Prepare(dnn.NewVGG11())
	b, _ := NewBaseline(sys, wl, ou.Size{R: 16, C: 16})
	b.DisableReprogram = true
	prev := math.Inf(1)
	for _, tt := range []float64{0, 1e6, 1e7, 1e8} {
		rep := b.RunInference(tt)
		if rep.Reprogrammed {
			t.Fatal("reprogramming disabled but happened")
		}
		if rep.Accuracy > prev {
			t.Fatalf("accuracy should decay without reprogramming: %v -> %v", prev, rep.Accuracy)
		}
		prev = rep.Accuracy
	}
	// Fig. 7 headline: a large drop (≈22 points) by the horizon.
	if drop := wl.Model.IdealAccuracy - prev; drop < 0.15 {
		t.Fatalf("16×16 without reprogramming dropped only %v, want ≥ 0.15", drop)
	}
}

func TestHorizonSummaryArithmetic(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	wl, _ := sys.Prepare(dnn.NewVGG11())
	b, _ := NewBaseline(sys, wl, ou.Size{R: 8, C: 4})
	sum := SimulateHorizon(b, HorizonConfig{End: 1e6, Epochs: 50, InferenceRate: 1e-3, RecordEvery: 10})
	if sum.Epochs != 50 {
		t.Fatalf("epochs = %d", sum.Epochs)
	}
	if want := 1e6 * 1e-3; math.Abs(sum.Inferences-want) > 1e-6 {
		t.Fatalf("inferences = %v, want %v", sum.Inferences, want)
	}
	if got := sum.InferenceEDP(); math.Abs(got-sum.MeanInferenceEnergy()*sum.MeanInferenceLatency()) > got*1e-12 {
		t.Fatal("InferenceEDP inconsistent")
	}
	if got := sum.TotalEDP(); math.Abs(got-sum.TotalEnergy()*sum.TotalLatency()) > got*1e-12 {
		t.Fatal("TotalEDP inconsistent")
	}
	if len(sum.Samples) != 5 {
		t.Fatalf("samples = %d, want 5", len(sum.Samples))
	}
	if sum.MinAccuracy > sum.MeanAccuracy || sum.MeanAccuracy > 1 {
		t.Fatalf("accuracy aggregates inconsistent: %+v", sum)
	}
	if sum.String() == "" {
		t.Fatal("String empty")
	}
}

// The headline integration test: over the horizon, Odin beats every
// homogeneous baseline on total EDP, and reprogramming counts order
// coarse ≫ fine ≥ Odin (paper §V.C).
func TestHeadlineOrderings(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	wl, err := sys.Prepare(dnn.NewVGG11())
	if err != nil {
		t.Fatal(err)
	}
	cfg := HorizonConfig{End: 1e8, Epochs: 400}

	known := LeaveOut(dnn.AllWorkloads(), "VGG")
	pol, n, err := BootstrapPolicy(sys, known, DefaultBootstrapConfig())
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("bootstrap produced no examples")
	}
	ctrl, err := NewController(sys, wl, pol, DefaultControllerOptions())
	if err != nil {
		t.Fatal(err)
	}
	odin := SimulateHorizon(ctrl, cfg)

	reprograms := map[string]int{}
	edps := map[string]float64{}
	for _, size := range StandardBaselineSizes() {
		b, err := NewBaseline(sys, wl, size)
		if err != nil {
			t.Fatal(err)
		}
		sum := SimulateHorizon(b, cfg)
		reprograms[size.String()] = sum.Reprograms
		edps[size.String()] = sum.TotalEDP()
	}

	for name, edp := range edps {
		if odin.TotalEDP() >= edp {
			t.Errorf("Odin EDP %.3e not below %s EDP %.3e", odin.TotalEDP(), name, edp)
		}
	}
	if !(reprograms["16×16"] > reprograms["16×4"] &&
		reprograms["16×4"] > reprograms["9×8"] &&
		reprograms["9×8"] > reprograms["8×4"]) {
		t.Errorf("reprogram counts not ordered coarse→fine: %v", reprograms)
	}
	if odin.Reprograms > reprograms["8×4"]+1 {
		t.Errorf("Odin reprograms %d more than finest baseline %d", odin.Reprograms, reprograms["8×4"])
	}
	if odin.Reprograms > 4 {
		t.Errorf("Odin should reprogram only a handful of times, got %d", odin.Reprograms)
	}
	if odin.MeanAccuracy < wl.Model.IdealAccuracy-0.01 {
		t.Errorf("Odin mean accuracy %v sacrificed predictive quality", odin.MeanAccuracy)
	}
}

func TestCollectExamplesCapAndValidity(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	models := []*dnn.Model{dnn.NewResNet18(), dnn.NewViT()}
	cfg := DefaultBootstrapConfig()
	cfg.MaxExamples = 40
	examples, err := CollectExamples(sys, models, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(examples) != 40 {
		t.Fatalf("collected %d examples, want the 40 cap", len(examples))
	}
	g := sys.Grid()
	for i, e := range examples {
		if _, _, ok := g.IndexOf(e.Target); !ok {
			t.Fatalf("example %d target %v off grid", i, e.Target)
		}
		if err := e.F.Validate(); err != nil {
			t.Fatalf("example %d features invalid: %v", i, err)
		}
	}
}

func TestBootstrapImprovesAgreement(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	known := []*dnn.Model{dnn.NewResNet18(), dnn.NewGoogLeNet(), dnn.NewViT()}
	pol, n, err := BootstrapPolicy(sys, known, DefaultBootstrapConfig())
	if err != nil {
		t.Fatal(err)
	}
	if n < 100 {
		t.Fatalf("only %d bootstrap examples", n)
	}
	// Held-out: examples from an unseen family.
	heldOut, err := CollectExamples(sys, []*dnn.Model{dnn.NewVGG11()}, DefaultBootstrapConfig())
	if err != nil {
		t.Fatal(err)
	}
	fresh := freshPolicy(sys)
	if pol.Agreement(heldOut) <= fresh.Agreement(heldOut) {
		t.Fatalf("bootstrap (%v) no better than fresh (%v) on unseen DNN",
			pol.Agreement(heldOut), fresh.Agreement(heldOut))
	}
}

func TestLeaveOut(t *testing.T) {
	t.Parallel()
	all := dnn.AllWorkloads()
	rest := LeaveOut(all, "VGG")
	if len(rest) != 6 {
		t.Fatalf("LeaveOut(VGG) kept %d models, want 6", len(rest))
	}
	for _, m := range rest {
		if m.Name == "VGG11" || m.Name == "VGG16" || m.Name == "VGG19" {
			t.Fatalf("VGG model %s survived LeaveOut", m.Name)
		}
	}
	if len(LeaveOut(all, "resnet")) != 6 {
		t.Fatal("LeaveOut should be case-insensitive")
	}
}

func TestProactiveReprogramOption(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	wl, _ := sys.Prepare(dnn.NewVGG11())
	opts := DefaultControllerOptions()
	opts.ProactiveReprogram = true
	opts.ProactiveFactor = 1.01 // hair trigger
	ctrl, err := NewController(sys, wl, freshPolicy(sys), opts)
	if err != nil {
		t.Fatal(err)
	}
	// At a heavily drifted age the constrained configuration is slower than
	// the fresh optimum, so the trigger must fire even though η is still
	// satisfiable at small sizes.
	rep := ctrl.RunInference(3e7)
	if !rep.Reprogrammed {
		t.Fatal("hair-trigger proactive reprogram did not fire")
	}
	// Default factor kicks in when unset.
	opts2 := DefaultControllerOptions()
	opts2.ProactiveReprogram = true
	ctrl2, err := NewController(sys, wl, freshPolicy(sys), opts2)
	if err != nil {
		t.Fatal(err)
	}
	_ = ctrl2.RunInference(0) // must not panic or trigger at t0
	if ctrl2.Reprograms() != 0 {
		t.Fatal("proactive trigger fired on a fresh device")
	}
}

func TestConfidenceEXOption(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	wl, _ := sys.Prepare(dnn.NewVGG11())
	// A fresh (untrained) policy is maximally unsure: near-uniform heads
	// give confidence ≈ (1/6)² ≪ 0.5, so every layer routes to EX.
	opts := DefaultControllerOptions()
	opts.ConfidenceEX = true
	ctrl, err := NewController(sys, wl, freshPolicy(sys), opts)
	if err != nil {
		t.Fatal(err)
	}
	rep := ctrl.RunInference(0)
	if want := 36 * wl.Layers(); rep.SearchEvaluations != want {
		t.Fatalf("unsure policy should route all layers to EX: %d evals, want %d",
			rep.SearchEvaluations, want)
	}
	// With an impossible threshold nothing routes to EX.
	opts2 := DefaultControllerOptions()
	opts2.ConfidenceEX = true
	opts2.ConfidenceThreshold = 1e-9
	ctrl2, _ := NewController(sys, wl, freshPolicy(sys), opts2)
	rep2 := ctrl2.RunInference(0)
	if rep2.SearchEvaluations >= 36*wl.Layers() {
		t.Fatalf("zero threshold still routed to EX: %d evals", rep2.SearchEvaluations)
	}
}

// TestForcedReprogramAgeMatchesForcedTrigger pins the published deadline
// against the behavior it predicts: runs at ages below ForcedReprogramAge
// never force a reprogram, runs past it always do, and the value equals
// the minimum over layers of the accuracy model's deadline at the smallest
// grid size.
func TestForcedReprogramAgeMatchesForcedTrigger(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	wl, _ := sys.Prepare(dnn.NewVGG11())
	opts := DefaultControllerOptions()
	opts.DisableDecisionCache = true // age bucketing would blur the boundary
	ctrl, err := NewController(sys, wl, freshPolicy(sys), opts)
	if err != nil {
		t.Fatal(err)
	}
	deadline := ctrl.ForcedReprogramAge()
	if math.IsInf(deadline, 1) || deadline <= sys.Device.T0 {
		t.Fatalf("deadline %g, want finite and past T0 %g", deadline, sys.Device.T0)
	}
	smallest := sys.Grid().SizeAt(0, 0)
	want := math.Inf(1)
	for j := 0; j < wl.Layers(); j++ {
		if d := sys.Acc.ReprogramDeadline(j, wl.Layers(), smallest); d < want {
			want = d
		}
	}
	if deadline != want {
		t.Fatalf("ForcedReprogramAge %g, want min-layer smallest-size deadline %g", deadline, want)
	}

	if rep := ctrl.RunInference(0.5*deadline - sys.Device.T0); rep.Reprogrammed {
		t.Fatal("run at half the deadline forced a reprogram")
	}
	fresh, err := NewController(sys, wl, freshPolicy(sys), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep := fresh.RunInference(2*deadline - sys.Device.T0); !rep.Reprogrammed {
		t.Fatal("run past the deadline did not force a reprogram")
	}
}

// TestControllerMaintenanceReprogram pins the off-path write pass: it
// books the same cost as a forced pass, resets drift age, counts in
// Reprograms, and leaves the device fresh enough that the next run does
// not reprogram again.
func TestControllerMaintenanceReprogram(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	wl, _ := sys.Prepare(dnn.NewVGG11())
	ctrl, err := NewController(sys, wl, freshPolicy(sys), DefaultControllerOptions())
	if err != nil {
		t.Fatal(err)
	}
	const at = 1e9
	energy, latency := ctrl.Reprogram(at)
	if energy <= 0 || latency <= 0 {
		t.Fatalf("maintenance pass cost E=%g L=%g, want positive", energy, latency)
	}
	if got := ctrl.Reprograms(); got != 1 {
		t.Fatalf("Reprograms = %d, want 1", got)
	}
	if got, want := ctrl.Age(at), sys.Device.T0; got != want {
		t.Fatalf("age right after maintenance = %g, want fresh T0 %g", got, want)
	}
	if rep := ctrl.RunInference(at + 1); rep.Reprogrammed {
		t.Fatal("run right after maintenance forced another reprogram")
	}

	// Same write pass as the forced (lines 7-8) path, bit for bit.
	forced, err := NewController(sys, wl, freshPolicy(sys), DefaultControllerOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := forced.RunInference(1e12)
	if !rep.Reprogrammed {
		t.Fatal("no forced reprogram at extreme age")
	}
	if rep.ReprogramEnergy != energy || rep.ReprogramLatency != latency {
		t.Fatalf("maintenance cost (%g, %g) differs from forced cost (%g, %g)",
			energy, latency, rep.ReprogramEnergy, rep.ReprogramLatency)
	}
}

// TestControllerProgrammedAtOption pins the back-dating knob fleets use to
// stagger drift phases.
func TestControllerProgrammedAtOption(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	wl, _ := sys.Prepare(dnn.NewVGG11())
	opts := DefaultControllerOptions()
	opts.ProgrammedAt = -10
	ctrl, err := NewController(sys, wl, freshPolicy(sys), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ctrl.Age(0), 10+sys.Device.T0; got != want {
		t.Fatalf("back-dated age at t=0 is %g, want %g", got, want)
	}
	def, err := NewController(sys, wl, freshPolicy(sys), DefaultControllerOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := def.Age(0), sys.Device.T0; got != want {
		t.Fatalf("default age at t=0 is %g, want fresh T0 %g", got, want)
	}
}
