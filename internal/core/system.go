// Package core implements Odin itself (paper Algorithm 1): the online
// learning controller that, on every inference run and for every neural
// layer, predicts an OU size with the current policy, refines it with a
// resource-bounded search over the analytical energy/latency/non-ideality
// models, reprograms the ReRAM arrays when no OU size can meet the
// non-ideality threshold, and learns from every disagreement between policy
// and search.
//
// The package also provides the homogeneous-OU baselines the paper compares
// against (16×16, 16×4, 9×8, 8×4 from prior work), the offline policy
// bootstrap from (N−1) known DNNs, and the time-horizon simulation driver
// that produces the reprogramming counts and energy/latency/EDP totals of
// §V.C–§V.D.
package core

import (
	"fmt"

	"odin/internal/accuracy"
	"odin/internal/dnn"
	"odin/internal/noc"
	"odin/internal/ou"
	"odin/internal/pim"
	"odin/internal/policy"
	"odin/internal/reram"
	"odin/internal/sparsity"
)

// System bundles the full simulated platform: PIM architecture, ReRAM
// device, mesh NoC, pruning configuration and the accuracy surrogate.
type System struct {
	Arch     pim.ArchConfig
	Device   reram.DeviceParams
	Mesh     noc.Mesh
	Sparsity sparsity.Config
	Acc      accuracy.Model
}

// DefaultSystem returns the paper's evaluation platform (Tables I and II).
func DefaultSystem() System {
	device := reram.DefaultDeviceParams()
	return System{
		Arch:     pim.DefaultArch(),
		Device:   device,
		Mesh:     noc.DefaultMesh(),
		Sparsity: sparsity.DefaultConfig(),
		Acc:      accuracy.Default(device),
	}
}

// WithCrossbarSize returns a copy of the system scaled to a different
// crossbar dimension (the Fig. 9 sensitivity study: 128², 64², 32²).
func (s System) WithCrossbarSize(size int) System {
	s.Arch.CrossbarSize = size
	return s
}

// Validate checks every sub-model.
func (s System) Validate() error {
	if err := s.Arch.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := s.Device.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := s.Mesh.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := s.Sparsity.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := s.Acc.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// Grid returns the OU search space of the platform's crossbars.
func (s System) Grid() ou.Grid { return s.Arch.Grid() }

// Workload is a DNN prepared for simulation on a System: pruned, mapped to
// crossbars, with per-layer OU workloads and the (OU-size independent) NoC
// traffic cost of moving activations between consecutive layers' PEs.
type Workload struct {
	Model    *dnn.Model
	Mappings []pim.LayerMapping
	Works    []ou.LayerWork

	// NoCEnergy and NoCLatency are the per-inference-run activation
	// movement costs (constant w.r.t. OU size).
	NoCEnergy  float64
	NoCLatency float64

	// CellsNonZero is the reprogramming cost basis: cells holding non-zero
	// weights across the whole model.
	CellsNonZero int
}

// Prepare prunes (if the model is not yet pruned) and maps a model onto the
// system.
func (s System) Prepare(m *dnn.Model) (*Workload, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.MeanWeightSparsity() == 0 {
		if err := sparsity.Prune(m, s.Sparsity); err != nil {
			return nil, err
		}
	}
	wl := &Workload{Model: m}
	mapping := s.Arch.MapModel(m)
	wl.Mappings = mapping.Layers
	wl.Works = make([]ou.LayerWork, len(m.Layers))
	for j := range m.Layers {
		wl.Works[j] = wl.Mappings[j].Work(sparsity.ProfileFor(m.Layers[j], s.Sparsity))
		wl.CellsNonZero += wl.Mappings[j].CellsNonZero
	}
	cost := s.Mesh.Route(s.layerFlows(m))
	wl.NoCEnergy = cost.Energy
	wl.NoCLatency = cost.Latency
	return wl, nil
}

// LayerTraffic exposes the inter-layer activation flows the NoC carries
// for one inference of the model (used by the NoC validation experiment).
func LayerTraffic(s System, m *dnn.Model) []noc.Flow {
	return s.layerFlows(m)
}

// layerFlows builds the inter-layer activation flows: layer j's output
// feature map travels from its PE to layer j+1's PE (round-robin layer→PE
// placement).
func (s System) layerFlows(m *dnn.Model) []noc.Flow {
	pe := func(layer int) int { return layer % s.Mesh.Nodes() }
	flows := make([]noc.Flow, 0, len(m.Layers)-1)
	for j := 0; j+1 < len(m.Layers); j++ {
		l := m.Layers[j]
		bits := l.OutH() * l.OutW() * l.OutChannels * s.Arch.InputBits
		flows = append(flows, noc.Flow{Src: pe(j), Dst: pe(j + 1), Bits: bits})
	}
	return flows
}

// Layers returns the layer count.
func (w *Workload) Layers() int { return len(w.Works) }

// FeaturesAt returns the policy features Φ of layer j at device age t.
func (w *Workload) FeaturesAt(j int, age float64) policy.Features {
	l := w.Model.Layers[j]
	return policy.Features{
		LayerIndex: j,
		LayerCount: len(w.Model.Layers),
		Sparsity:   l.WeightSparsity,
		KernelSize: l.KernelH,
		Time:       age,
	}
}
