package core

import (
	"odin/internal/ou"
	"odin/internal/search"
)

// RunReport is the outcome of one inference run (one pass over all layers).
type RunReport struct {
	Time float64 // simulation time of the run (s)
	Age  float64 // device age at the run (s since last programming + t₀)

	Sizes []ou.Size // OU size used per layer

	// Inference costs for this run (Eq. 1/2 + peripherals + NoC).
	Energy  float64
	Latency float64

	// Reprogramming triggered by this run (cost booked on this run). A
	// baseline run can carry several passes when multiple violation
	// deadlines elapsed since the previous decision epoch.
	Reprogrammed     bool
	ReprogramPasses  int
	ReprogramEnergy  float64
	ReprogramLatency float64

	// Online-learning bookkeeping (Odin only).
	Disagreements     int // layers where policy ≠ searched best
	PolicyUpdated     bool
	SearchEvaluations int

	// Estimated inference accuracy of this run.
	Accuracy float64
}

// EDP returns this run's inference energy-delay product.
func (r RunReport) EDP() float64 { return r.Energy * r.Latency }

// TotalEnergy returns inference + reprogramming energy of the run.
func (r RunReport) TotalEnergy() float64 { return r.Energy + r.ReprogramEnergy }

// TotalLatency returns inference + reprogramming latency of the run.
func (r RunReport) TotalLatency() float64 { return r.Latency + r.ReprogramLatency }

// Runner is anything that can execute inference runs over simulated time:
// the Odin controller or a homogeneous baseline.
type Runner interface {
	// RunInference executes one inference run at simulation time t (seconds
	// since the workload started; t=0 is the initial programming instant).
	RunInference(t float64) RunReport
	// Reprograms returns the number of reprogramming passes so far
	// (excluding the initial programming).
	Reprograms() int
}

// inferenceCost accumulates the full inference energy/latency of one run
// given per-layer sizes: the Eq. 1/2 analytical models per layer plus
// peripheral energy and the workload's NoC cost. Layers execute in a
// pipeline across PEs, so layer latencies add (one image traverses all
// layers sequentially).
func (s System) inferenceCost(wl *Workload, sizes []ou.Size) (energy, latency float64) {
	cm := s.Arch.CostModel()
	for j, size := range sizes {
		cost := cm.Evaluate(wl.Works[j], size)
		energy += cost.Energy
		energy += s.Arch.PeripheralEnergy(wl.Model.Layers[j], wl.Mappings[j], cost.Cycles)
		latency += cost.Latency
	}
	energy += wl.NoCEnergy
	latency += wl.NoCLatency
	return energy, latency
}

// reprogramCost returns the energy/latency of rewriting the workload's
// non-zero cells. Energy scales with the cell count. Latency is the
// row-sequential write time of one tile's crossbar set: tiles rewrite in
// parallel, but the 96 crossbars of a tile share one program-and-verify
// unit — this is what makes frequent reprogramming the dominant latency
// overhead for coarse OUs (§V.C).
func (s System) reprogramCost(wl *Workload) (energy, latency float64) {
	energy = s.Device.ReprogramEnergy(wl.CellsNonZero)
	cellsPerTile := s.Arch.CrossbarSize * s.Arch.CrossbarSize * s.Arch.CrossbarsPerTile
	latency = s.Device.ReprogramLatency(cellsPerTile, s.Arch.CrossbarSize)
	return energy, latency
}

// LayerObjective builds the search objective scoring OU sizes for layer j
// of the workload at device age `age` — the quantity Algorithm 1's line 6
// optimises. Exported for the experiment drivers and design-space tooling.
func LayerObjective(s System, wl *Workload, j int, age float64) search.Objective {
	return s.objective(wl, j, age)
}

// objective builds the per-layer search objective at device age `age`.
func (s System) objective(wl *Workload, j int, age float64) search.Objective {
	return search.Objective{
		Cost:  s.Arch.CostModel(),
		Work:  wl.Works[j],
		Acc:   s.Acc,
		Layer: j,
		Of:    wl.Layers(),
		Time:  age,
	}
}
