package core

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"odin/internal/clock"
	"odin/internal/dnn"
	"odin/internal/obs"
)

func tracedController(t *testing.T) (*Controller, *obs.Tracer, *obs.AuditLog) {
	t.Helper()
	sys := DefaultSystem()
	wl, err := sys.Prepare(dnn.NewVGG11())
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New(clock.NewVirtual(0))
	log := obs.NewAuditLog(0)
	opts := DefaultControllerOptions()
	opts.Tracer = tr
	opts.Audit = log
	ctrl, err := NewController(sys, wl, freshPolicy(sys), opts)
	if err != nil {
		t.Fatal(err)
	}
	return ctrl, tr, log
}

func TestControllerAuditRecordsDecisions(t *testing.T) {
	t.Parallel()
	ctrl, _, log := tracedController(t)
	rep := ctrl.RunInference(0)

	runs := log.Runs()
	if len(runs) != 1 {
		t.Fatalf("audit recorded %d runs, want 1", len(runs))
	}
	a := runs[0]
	if len(a.Layers) != len(rep.Sizes) {
		t.Fatalf("audited %d layers, want %d", len(a.Layers), len(rep.Sizes))
	}
	if a.Evaluations() != rep.SearchEvaluations {
		t.Fatalf("audit evaluations %d, report says %d",
			a.Evaluations(), rep.SearchEvaluations)
	}
	if a.Disagreements() != rep.Disagreements {
		t.Fatalf("audit disagreements %d, report says %d",
			a.Disagreements(), rep.Disagreements)
	}
	if a.Reprogrammed != rep.Reprogrammed {
		t.Fatal("audit reprogram flag disagrees with the report")
	}
	for j, d := range a.Layers {
		if d.Layer != j || d.Chosen != rep.Sizes[j] {
			t.Fatalf("layer %d decision %+v disagrees with report size %v",
				j, d, rep.Sizes[j])
		}
		if d.Strategy != "rb" { // fresh device, defaults: K-step local walk
			t.Fatalf("layer %d strategy %q, want rb", j, d.Strategy)
		}
		if d.PolicyWon != (d.Predicted == d.Chosen) {
			t.Fatalf("layer %d PolicyWon inconsistent: %+v", j, d)
		}
		if len(d.Candidates) != d.Evaluations {
			t.Fatalf("layer %d recorded %d candidates for %d evaluations",
				j, len(d.Candidates), d.Evaluations)
		}
		chosenSeen := false
		for _, cand := range d.Candidates {
			if cand.Feasible == math.IsNaN(cand.EDP) {
				t.Fatalf("layer %d candidate %v: feasible=%t edp=%g",
					j, cand.Size, cand.Feasible, cand.EDP)
			}
			if cand.Size == d.Chosen {
				chosenSeen = true
				if !cand.Feasible || cand.Energy <= 0 || cand.Latency <= 0 {
					t.Fatalf("layer %d chosen candidate unscored: %+v", j, cand)
				}
			}
		}
		if !chosenSeen {
			t.Fatalf("layer %d chosen size %v never evaluated", j, d.Chosen)
		}
	}

	// Far past every violation deadline the device degrades: the audit must
	// attribute the smallest-OU fallback and the scheduled write pass.
	rep2 := ctrl.RunInference(1e12)
	if !rep2.Reprogrammed {
		t.Fatal("expected a reprogram far past the deadlines")
	}
	a2 := log.Runs()[1]
	if !a2.Reprogrammed {
		t.Fatal("audit missed the reprogram")
	}
	degraded := 0
	for _, d := range a2.Layers {
		if d.Strategy == "degraded" {
			degraded++
			if d.Evaluations != 0 || len(d.Candidates) != 0 {
				t.Fatalf("degraded layer %d claims search work: %+v", d.Layer, d)
			}
		}
	}
	if degraded == 0 {
		t.Fatal("no degraded layer audited at t=1e12")
	}
}

func TestControllerSpansTileRun(t *testing.T) {
	t.Parallel()
	ctrl, tr, _ := tracedController(t)
	rep := ctrl.RunInference(0)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}

	var run struct{ ts, dur float64 }
	var layers []struct{ ts, dur float64 }
	var noc struct{ ts, dur float64 }
	counts := map[string]int{}
	for _, e := range doc.TraceEvents {
		counts[e.Name]++
		switch e.Name {
		case "run":
			run.ts, run.dur = e.Ts, e.Dur
		case "layer":
			layers = append(layers, struct{ ts, dur float64 }{e.Ts, e.Dur})
		case "noc":
			noc.ts, noc.dur = e.Ts, e.Dur
		}
	}
	if counts["run"] != 1 || counts["noc"] != 1 || counts["layer"] != len(rep.Sizes) {
		t.Fatalf("span counts: %d run, %d layer (want %d), %d noc",
			counts["run"], counts["layer"], len(rep.Sizes), counts["noc"])
	}
	// Canonical export sorts by start time, so layer spans arrive in
	// execution order and must tile [run.ts, noc end] contiguously.
	eps := 1e-9 * (run.dur + 1)
	cursor := run.ts
	for j, l := range layers {
		if math.Abs(l.ts-cursor) > eps {
			t.Fatalf("layer %d starts at %g, want %g", j, l.ts, cursor)
		}
		cursor = l.ts + l.dur
	}
	if math.Abs(noc.ts-cursor) > eps || math.Abs(noc.ts+noc.dur-(run.ts+run.dur)) > eps {
		t.Fatalf("noc span [%g,%g] does not close the run [%g,%g]",
			noc.ts, noc.ts+noc.dur, run.ts, run.ts+run.dur)
	}
	if got := run.dur / 1e6; math.Abs(got-rep.Latency) > 1e-9*rep.Latency {
		t.Fatalf("run span duration %g s, report latency %g s", got, rep.Latency)
	}

	// A degraded run appends a reprogram span after the inference window.
	rep2 := ctrl.RunInference(1e12)
	if !rep2.Reprogrammed {
		t.Fatal("expected a reprogram far past the deadlines")
	}
	buf.Reset()
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc2 struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc2); err != nil {
		t.Fatal(err)
	}
	reprograms := 0
	for _, e := range doc2.TraceEvents {
		if e.Name == "reprogram" {
			reprograms++
		}
	}
	if reprograms != 1 {
		t.Fatalf("%d reprogram spans, want 1", reprograms)
	}
}
