package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"odin/internal/decache"
	"odin/internal/mlp"
	"odin/internal/obs"
	"odin/internal/opt"
	"odin/internal/ou"
	"odin/internal/policy"
	"odin/internal/search"
)

// ControllerOptions tune the Odin online-learning loop.
type ControllerOptions struct {
	// SearchK is the resource-bounded search budget (paper: 3).
	SearchK int
	// Exhaustive switches line 6 of Algorithm 1 to the EX search (§V.B's
	// higher-quality, ~3× costlier alternative). Kept for the paper-facing
	// experiments; it is shorthand for Strategy = "ex" and is ignored when
	// Strategy is set explicitly.
	Exhaustive bool
	// Strategy names the registered internal/opt optimizer driving line 6
	// of Algorithm 1: "rb", "ex", "bo" or "pareto" (opt.Names()). Empty
	// selects "rb" — or "ex" when Exhaustive is set. The name is stamped
	// verbatim into decision-audit records and trace spans, so new
	// strategies attribute correctly without controller changes.
	Strategy string
	// SearchBudget is the strategy-specific effort knob handed to the
	// optimizer (rb: ±1 steps K; bo: max candidate evaluations; ex/pareto:
	// ignored). 0 uses SearchK for "rb" (the paper's configuration) and
	// the optimizer's own default otherwise.
	SearchBudget int
	// BufferSize is the training-buffer capacity (paper: 50 examples).
	BufferSize int
	// UpdateEpochs is the supervised-learning epoch count per policy update
	// (paper: 100).
	UpdateEpochs int
	// LearningRate for policy updates; 0 uses the mlp default.
	LearningRate float64
	// TrainSeed makes online updates deterministic.
	TrainSeed uint64

	// ProgrammedAt back-dates the device's initial programming instant
	// (simulation seconds; typically negative — "this chip was last
	// written |ProgrammedAt| seconds before the trace starts"). Fleets use
	// it to stagger drift phases across chips the way real deployments
	// are staggered by their programming history; 0 (the default) keeps
	// the fresh-at-zero device of the paper's single-chip experiments.
	ProgrammedAt float64

	// ConfidenceEX is an extension beyond the paper's Algorithm 1: when the
	// policy's decision confidence (product of its heads' max softmax
	// probabilities) falls below ConfidenceThreshold, the controller runs
	// the exhaustive search for that layer instead of the K-step local
	// walk. The idea follows the uncertainty-aware online learning line
	// the paper builds on: spend comparator budget exactly where the
	// learnt model is unsure.
	ConfidenceEX bool
	// ConfidenceThreshold gates ConfidenceEX (default 0.5 when enabled).
	ConfidenceThreshold float64

	// ProactiveReprogram is an extension beyond the paper's Algorithm 1:
	// instead of reprogramming only when *no* OU size satisfies η, the
	// controller also reprograms when the drift-constrained configuration's
	// inference latency has degraded past ProactiveFactor× the fresh-device
	// latency. Drift pushes Odin toward fine OUs, which trade latency for
	// energy; for latency-SLA deployments a write pass restores throughput.
	// (An EDP-based trigger would never fire: constrained fine OUs *lower*
	// per-run EDP under this platform's cost model.)
	ProactiveReprogram bool
	// ProactiveFactor is the latency degradation ratio that triggers a
	// proactive pass (default 1.5 when ProactiveReprogram is set).
	ProactiveFactor float64

	// Tracer, when non-nil, records observability spans for every run on
	// simulation-time intervals: one "run" span covering the inference
	// latency, child "layer" spans tiling it (each layer's Eq. 1 share,
	// annotated with the chosen OU size, energy, cycles, search strategy
	// and comparator budget), a "noc" span for the activation-movement
	// tail, and a "reprogram" span when the run schedules a write pass.
	// Disabled (nil) tracing costs one pointer test per run.
	Tracer *obs.Tracer
	// TraceTrack is the tracer lane runs are recorded on (the serving
	// layer uses one lane per chip).
	TraceTrack int
	// Audit, when non-nil, receives one obs.RunAudit per run: every
	// candidate OU size the line-6 search scored (energy/latency/EDP/
	// non-ideality), the budget spent, and whether the policy prediction
	// or the search won each layer. Disabled (nil) auditing costs one
	// pointer test per run.
	Audit *obs.AuditLog

	// Cache, when non-nil, memoizes the per-layer line-6 decisions (and
	// policy predictions) in the given decision cache; the serving layer
	// shares one cache across a fleet of same-platform chips. When nil and
	// the process-wide default is on (SetDecisionCacheDefault, the initial
	// state), the controller creates a private cache. Cached decisions are
	// byte-identical to live searches — see internal/decache for the
	// argument and DESIGN.md §13 for the invalidation contract.
	Cache *decache.Cache
	// DisableDecisionCache opts this controller out of decision caching
	// regardless of Cache and the process-wide default (`odinsim
	// -cache=off` uses the global switch instead, so experiment drivers
	// need no plumbing).
	DisableDecisionCache bool
}

// decisionCacheOff is the process-wide decision-cache default: zero value
// (false) means controllers without an explicit Cache memoize into a
// private one. `odinsim -cache=off` flips it to compare cached and
// uncached artefacts byte for byte.
var decisionCacheOff atomic.Bool

// SetDecisionCacheDefault turns the process-wide decision-cache default on
// or off. Controllers constructed with an explicit ControllerOptions.Cache
// are unaffected; DisableDecisionCache still wins per controller.
func SetDecisionCacheDefault(enabled bool) { decisionCacheOff.Store(!enabled) }

// DecisionCacheDefault reports the process-wide decision-cache default.
func DecisionCacheDefault() bool { return !decisionCacheOff.Load() }

// DefaultControllerOptions returns the paper's settings.
func DefaultControllerOptions() ControllerOptions {
	return ControllerOptions{
		SearchK:      3,
		BufferSize:   50,
		UpdateEpochs: 100,
		TrainSeed:    1,
	}
}

func (o ControllerOptions) withDefaults() ControllerOptions {
	if o.SearchK <= 0 {
		o.SearchK = 3
	}
	if o.BufferSize <= 0 {
		o.BufferSize = 50
	}
	if o.UpdateEpochs <= 0 {
		o.UpdateEpochs = 100
	}
	if o.TrainSeed == 0 {
		o.TrainSeed = 1
	}
	if o.Strategy == "" {
		o.Strategy = "rb"
		if o.Exhaustive {
			o.Strategy = "ex"
		}
	}
	if o.SearchBudget == 0 && o.Strategy == "rb" {
		o.SearchBudget = o.SearchK
	}
	if o.ProactiveReprogram && o.ProactiveFactor <= 1 {
		o.ProactiveFactor = 1.5
	}
	if o.ConfidenceEX && o.ConfidenceThreshold <= 0 {
		o.ConfidenceThreshold = 0.5
	}
	return o
}

// Controller runs Algorithm 1 for one workload: per run and per layer it
// predicts an OU size with the policy, searches for the constrained EDP
// optimum, accumulates disagreements as training data, updates the policy
// when the buffer fills, and reprograms the device when no OU size
// satisfies the non-ideality threshold.
type Controller struct {
	sys  System
	wl   *Workload
	pol  *policy.Policy
	buf  *policy.Buffer
	opts ControllerOptions

	// optim is the line-6 strategy resolved from opts.Strategy at
	// construction; its Name() is the single source of the strategy
	// strings in audit records and trace spans.
	optim opt.Optimizer

	// cache memoizes line-6 decisions; nil disables caching. dctx is the
	// interned decision context of the configured strategy, dctxEX the
	// exhaustive-escalation context (non-nil only with ConfidenceEX).
	cache  *decache.Cache
	dctx   *decache.Context
	dctxEX *decache.Context

	// scratch lends the line-6 searches reusable buffers (one per
	// controller: RunInference is serialised by `running`). probeBuf and
	// recordProbe capture candidate evaluations for cache entries and
	// audit records without a fresh closure per layer.
	scratch     *search.Scratch
	probeBuf    []decache.Probe
	recordProbe func(s ou.Size, feasible bool, edp float64)

	programmedAt float64 // simulation time of the last (re)programming
	reprograms   int
	updates      int
	lastSizes    []ou.Size

	// forcedDeadline caches ForcedReprogramAge (0 = not yet computed; the
	// real value is >= T0 > 0).
	forcedDeadline float64

	// freshLatency caches the fresh-device (t₀) constrained-optimal
	// inference latency, the proactive-reprogram reference. Computed lazily.
	freshLatency float64

	// running guards against concurrent RunInference calls. A Controller
	// models one physical chip: its policy, buffer, and drift bookkeeping
	// mutate on every run, so each chip must be driven by one goroutine at
	// a time (the serving layer serialises batches per chip). Concurrent
	// use is a programming error surfaced eagerly rather than as silent
	// state corruption.
	running atomic.Bool
}

// NewController creates an Odin controller. The policy is adapted in place
// (pass a Clone of the offline policy to keep the original).
func NewController(sys System, wl *Workload, pol *policy.Policy, opts ControllerOptions) (*Controller, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if wl == nil || pol == nil {
		return nil, fmt.Errorf("core: controller needs a workload and a policy")
	}
	if pol.Grid() != sys.Grid() {
		return nil, fmt.Errorf("core: policy grid %+v does not match system grid %+v",
			pol.Grid(), sys.Grid())
	}
	resolved := opts.withDefaults()
	optim, err := opt.ByName(resolved.Strategy)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	c := &Controller{
		sys:          sys,
		wl:           wl,
		pol:          pol,
		buf:          policy.NewBuffer(resolved.BufferSize),
		opts:         resolved,
		optim:        optim,
		scratch:      search.NewScratch(),
		programmedAt: resolved.ProgrammedAt,
	}
	c.recordProbe = func(s ou.Size, feasible bool, edp float64) {
		c.probeBuf = append(c.probeBuf, decache.Probe{Size: s, Feasible: feasible, EDP: edp})
	}
	if !resolved.DisableDecisionCache && (resolved.Cache != nil || DecisionCacheDefault()) {
		c.cache = resolved.Cache
		if c.cache == nil {
			c.cache = decache.New()
		}
		cost := sys.Arch.CostModel()
		c.dctx = c.cache.Context(sys.Grid(), cost, sys.Acc, optim.Name(), resolved.SearchBudget)
		if resolved.ConfidenceEX && optim.Name() != (opt.Exhaustive{}).Name() {
			c.dctxEX = c.cache.Context(sys.Grid(), cost, sys.Acc,
				(opt.Exhaustive{}).Name(), resolved.SearchBudget)
		}
	}
	return c, nil
}

// DecisionCache returns the cache memoizing this controller's line-6
// decisions (nil when caching is disabled).
func (c *Controller) DecisionCache() *decache.Cache { return c.cache }

// Strategy returns the name of the line-6 optimizer the controller runs.
func (c *Controller) Strategy() string { return c.optim.Name() }

// Policy returns the (adapting) policy.
func (c *Controller) Policy() *policy.Policy { return c.pol }

// Reprograms returns the reprogramming count so far.
func (c *Controller) Reprograms() int { return c.reprograms }

// PolicyUpdates returns how many buffer-full updates have run.
func (c *Controller) PolicyUpdates() int { return c.updates }

// Age returns the device age at simulation time t.
func (c *Controller) Age(t float64) float64 {
	age := t - c.programmedAt + c.sys.Device.T0
	if age < c.sys.Device.T0 {
		age = c.sys.Device.T0
	}
	return age
}

// ForcedReprogramAge returns the device age at which Algorithm 1's lines
// 7-8 force a reprogram: the earliest age at which some layer's η
// constraint cannot be met by any OU size. NF is monotone in R+C, so the
// smallest grid size decides satisfiability per layer, and the fleet
// deadline is the minimum over layers. +Inf when no layer ever violates
// (ν = 0). The value depends only on the platform and workload shape, so
// it is computed once and cached.
func (c *Controller) ForcedReprogramAge() float64 {
	if c.forcedDeadline == 0 {
		smallest := c.sys.Grid().SizeAt(0, 0)
		total := c.wl.Layers()
		deadline := math.Inf(1)
		for j := 0; j < total; j++ {
			if d := c.sys.Acc.ReprogramDeadline(j, total, smallest); d < deadline {
				deadline = d
			}
		}
		c.forcedDeadline = deadline
	}
	return c.forcedDeadline
}

// Reprogram performs a maintenance write pass at simulation time t without
// running an inference: the device is rewritten, drift age resets, and the
// full reprogram cost is returned so the caller can book the energy and
// occupy the chip for the write latency. The serving layer uses this to
// reprogram *off* the latency path — on an idle chip the router has
// steered arrivals away from — instead of waiting for lines 7-8 to force
// the stall onto a live batch. Calls must not overlap RunInference.
func (c *Controller) Reprogram(t float64) (energy, latency float64) {
	if !c.running.CompareAndSwap(false, true) {
		panic("core: concurrent Reprogram on one Controller; a chip must be driven by one goroutine at a time")
	}
	defer c.running.Store(false)
	energy, latency = c.sys.reprogramCost(c.wl)
	c.programmedAt = t
	c.reprograms++
	if c.opts.Tracer.Enabled() {
		c.opts.Tracer.At("reprogram", c.opts.TraceTrack, t, t+latency, nil,
			obs.Int("passes", 1),
			obs.Float("energy", energy),
			obs.String("cause", "maintenance"))
	}
	return energy, latency
}

// RunInference executes Algorithm 1's per-run body at simulation time t.
// A Controller is single-chip state: calls must not overlap (see running).
func (c *Controller) RunInference(t float64) RunReport {
	if !c.running.CompareAndSwap(false, true) {
		panic("core: concurrent RunInference on one Controller; a chip must be driven by one goroutine at a time")
	}
	defer c.running.Store(false)
	age := c.Age(t)
	rep := RunReport{Time: t, Age: age, Sizes: make([]ou.Size, c.wl.Layers())}
	needReprogram := false

	// Observability is strictly opt-in: with both sinks nil the per-run
	// cost is two pointer tests plus the nil Probe check inside the search.
	var audit *obs.RunAudit
	if c.opts.Audit.Enabled() {
		audit = &obs.RunAudit{Time: t, Age: age,
			Layers: make([]obs.LayerDecision, 0, c.wl.Layers())}
	}
	traced := c.opts.Tracer.Enabled()
	var stratByLayer []string
	var evalsByLayer []int
	if traced {
		stratByLayer = make([]string, c.wl.Layers())
		evalsByLayer = make([]int, c.wl.Layers())
	}

	for j := 0; j < c.wl.Layers(); j++ {
		out := c.decideLayer(j, age, audit != nil)
		rep.Sizes[j] = out.chosen

		// Lines 7–8 precondition: when no OU size can meet η, the layer
		// runs degraded at the smallest OU and the device is reprogrammed
		// before the next run.
		if out.degraded {
			needReprogram = true
			if audit != nil {
				audit.Layers = append(audit.Layers, obs.LayerDecision{
					Layer: j, Predicted: out.predicted, Start: out.chosen,
					Chosen: out.chosen, Strategy: out.strategy,
				})
			}
			if traced {
				stratByLayer[j] = out.strategy
			}
			continue
		}

		rep.SearchEvaluations += out.evaluations
		if audit != nil {
			var cands []obs.Candidate
			if len(out.probes) > 0 {
				// Rebuild the full score breakdown per recorded candidate at
				// the current age. Every component is a pure function of
				// (size, age), so replayed (cached) and live decisions audit
				// byte-identically; the extra comparator work is billed to
				// auditing, not the modelled hardware.
				score := c.sys.objective(c.wl, j, age)
				cands = make([]obs.Candidate, 0, len(out.probes))
				for _, p := range out.probes {
					cost := score.Cost.Evaluate(score.Work, p.Size)
					cands = append(cands, obs.Candidate{
						Size: p.Size, Energy: cost.Energy, Latency: cost.Latency,
						EDP: p.EDP, NF: score.NF(p.Size), Feasible: p.Feasible,
					})
				}
			}
			audit.Layers = append(audit.Layers, obs.LayerDecision{
				Layer: j, Predicted: out.predicted, Start: out.start,
				Chosen: out.chosen, Strategy: out.strategy,
				Evaluations: out.evaluations,
				PolicyWon:   out.predicted == out.chosen, Cached: out.cached,
				Candidates: cands, Front: out.front,
			})
		}
		if traced {
			stratByLayer[j], evalsByLayer[j] = out.strategy, out.evaluations
		}

		if out.predicted != out.chosen { // lines 9–10
			rep.Disagreements++
			if c.buf.Add(policy.Example{F: c.wl.FeaturesAt(j, age), Target: out.chosen}) {
				c.updatePolicy() // line 11
				rep.PolicyUpdated = true
			}
		}
	}

	rep.Energy, rep.Latency = c.sys.inferenceCost(c.wl, rep.Sizes)
	rep.Accuracy = c.sys.Acc.Accuracy(c.wl.Model.IdealAccuracy, rep.Sizes, age)
	c.lastSizes = rep.Sizes

	if c.opts.ProactiveReprogram && !needReprogram {
		if c.freshLatency == 0 {
			c.freshLatency = c.freshDeviceLatency()
		}
		if rep.Latency > c.opts.ProactiveFactor*c.freshLatency {
			needReprogram = true
		}
	}

	if needReprogram {
		rep.Reprogrammed = true
		rep.ReprogramPasses = 1
		rep.ReprogramEnergy, rep.ReprogramLatency = c.sys.reprogramCost(c.wl)
		c.programmedAt = t
		c.reprograms++
	}
	if traced {
		c.recordRunSpans(rep, stratByLayer, evalsByLayer)
	}
	if audit != nil {
		audit.Reprogrammed = rep.Reprogrammed
		c.opts.Audit.Add(*audit)
	}
	return rep
}

// layerOutcome is one per-layer line-6 decision plus the metadata needed
// to fill the run report, audit record and trace spans identically whether
// the decision was computed live or replayed from the cache.
type layerOutcome struct {
	predicted ou.Size
	start     ou.Size
	chosen    ou.Size
	strategy  string

	evaluations int
	cached      bool
	degraded    bool

	// probes lists the candidate evaluations in search order. Populated
	// whenever the controller caches decisions or wantProbes was set; may
	// alias controller scratch, so consume before the next decision.
	probes []decache.Probe
	// front lists the non-dominated sizes of a multi-objective strategy.
	front []ou.Size
}

// decideLayer runs (or replays) Algorithm 1 lines 5–6 for layer j at
// device age `age`: policy prediction, feasibility clamp, and the line-6
// strategy search, memoized through the decision cache when one is
// attached. It touches no learning state — RunInference owns the
// disagreement buffer — so benchmarks replay it in isolation
// (DecisionBench). wantProbes forces candidate recording even when caching
// is off (the audit path).
func (c *Controller) decideLayer(j int, age float64, wantProbes bool) layerOutcome {
	feat := c.wl.FeaturesAt(j, age)
	var predicted ou.Size
	if c.cache != nil {
		var ok bool
		if predicted, ok = c.cache.PredictLookup(c.pol, feat); !ok {
			predicted = c.pol.Predict(feat) // line 5
			c.cache.PredictStore(c.pol, feat, predicted)
		}
	} else {
		predicted = c.pol.Predict(feat) // line 5
	}
	grid := c.sys.Grid()
	total := c.wl.Layers()

	// Resolve the effective strategy first: a ConfidenceEX escalation
	// switches the decision context, so it must precede the cache lookup.
	// Low policy confidence escalates any non-exhaustive strategy to the
	// full grid scan; the strategy string always comes from the optimizer
	// that actually ran, so attribution stays exact.
	optim, dctx := c.optim, c.dctx
	if c.opts.ConfidenceEX && optim.Name() != (opt.Exhaustive{}).Name() &&
		c.pol.Confidence(feat) < c.opts.ConfidenceThreshold {
		optim = opt.Exhaustive{}
		dctx = c.dctxEX
	}

	if c.cache != nil {
		// Degenerate case via the bucket: Bucket == 0 is bit-identical to
		// !AnySatisfiable (the same predicate on the smallest grid size).
		bucket := dctx.Bucket(j, total, age)
		if bucket == 0 {
			smallest := grid.SizeAt(0, 0)
			return layerOutcome{predicted: predicted, start: smallest,
				chosen: smallest, strategy: opt.StrategyDegraded, degraded: true}
		}
		key := decache.Key{Work: c.wl.Works[j], Layer: j, Of: total,
			Predicted: predicted, Bucket: bucket}
		if e, ok := dctx.Lookup(key); ok {
			return layerOutcome{predicted: predicted, start: e.Start,
				chosen: e.Chosen, strategy: optim.Name(),
				evaluations: e.Evaluations, cached: true,
				probes: e.Probes, front: e.Front}
		}
		// Miss: run the live pass, recording every probe so later hits can
		// replay the audit breakdown.
		obj := c.sys.objective(c.wl, j, age)
		obj.Scratch = c.scratch
		c.probeBuf = c.probeBuf[:0]
		obj.Probe = c.recordProbe
		start := search.ClampFeasible(grid, obj, predicted)
		res := optim.Optimize(grid, obj, start, c.opts.SearchBudget)
		found := res.Found
		if !found {
			// The bounded walk can miss a feasible region the clamp already
			// located; fall back to the clamped start.
			res.Best = start
		}
		e := &decache.Entry{Start: start, Chosen: res.Best, BestEDP: res.BestEDP,
			Found: found, Evaluations: res.Evaluations,
			Probes: append([]decache.Probe(nil), c.probeBuf...)}
		if len(res.Front) > 0 {
			e.Front = make([]ou.Size, len(res.Front))
			for i, p := range res.Front {
				e.Front[i] = p.Size
			}
		}
		dctx.Store(key, e)
		return layerOutcome{predicted: predicted, start: start, chosen: res.Best,
			strategy: optim.Name(), evaluations: res.Evaluations,
			probes: e.Probes, front: e.Front}
	}

	// Uncached path: the pre-cache control flow, bit for bit. NF is
	// monotone in R+C, so checking the smallest grid size decides global
	// satisfiability (lines 7–8 precondition).
	if !c.sys.Acc.AnySatisfiable(j, total, grid, age) {
		smallest := grid.SizeAt(0, 0)
		return layerOutcome{predicted: predicted, start: smallest,
			chosen: smallest, strategy: opt.StrategyDegraded, degraded: true}
	}
	// Line 6: shrink the prediction into the feasible region if drift has
	// outrun the policy, then refine with the configured strategy.
	obj := c.sys.objective(c.wl, j, age)
	obj.Scratch = c.scratch
	if wantProbes {
		c.probeBuf = c.probeBuf[:0]
		obj.Probe = c.recordProbe
	}
	start := search.ClampFeasible(grid, obj, predicted)
	res := optim.Optimize(grid, obj, start, c.opts.SearchBudget)
	if !res.Found {
		// The bounded walk can miss a feasible region the clamp already
		// located; fall back to the clamped start.
		res.Best = start
	}
	out := layerOutcome{predicted: predicted, start: start, chosen: res.Best,
		strategy: optim.Name(), evaluations: res.Evaluations}
	if wantProbes {
		out.probes = c.probeBuf
		if len(res.Front) > 0 {
			out.front = make([]ou.Size, len(res.Front))
			for i, p := range res.Front {
				out.front[i] = p.Size
			}
		}
	}
	return out
}

// recordRunSpans writes one run's span tree on simulation-time intervals:
// the run span covers the inference latency; layer spans tile it in
// execution order (each layer's Eq. 1 latency share), the NoC span carries
// the activation-movement tail, and a reprogram span follows the run when
// it scheduled a write pass. Span content is a pure function of the run
// report, so serve-layer replays export byte-identical traces regardless
// of worker count.
func (c *Controller) recordRunSpans(rep RunReport, strat []string, evals []int) {
	tr, track := c.opts.Tracer, c.opts.TraceTrack
	run := tr.At("run", track, rep.Time, rep.Time+rep.Latency, nil,
		obs.String("model", c.wl.Model.Name),
		obs.Float("age", rep.Age),
		obs.Int("evals", rep.SearchEvaluations),
		obs.Float("energy", rep.Energy),
		obs.Float("accuracy", rep.Accuracy))
	cm := c.sys.Arch.CostModel()
	cursor := rep.Time
	for j, s := range rep.Sizes {
		cost := cm.Evaluate(c.wl.Works[j], s)
		end := cursor + cost.Latency
		tr.At("layer", track, cursor, end, run,
			obs.Int("layer", j),
			obs.String("ou", s.String()),
			obs.String("strategy", strat[j]),
			obs.Int("evals", evals[j]),
			obs.Float("energy", cost.Energy),
			obs.Int("cycles", cost.Cycles))
		cursor = end
	}
	tr.At("noc", track, cursor, cursor+c.wl.NoCLatency, run,
		obs.Float("energy", c.wl.NoCEnergy))
	if rep.Reprogrammed {
		tr.At("reprogram", track, rep.Time+rep.Latency,
			rep.Time+rep.Latency+rep.ReprogramLatency, nil,
			obs.Int("passes", rep.ReprogramPasses),
			obs.Float("energy", rep.ReprogramEnergy))
	}
}

func (c *Controller) updatePolicy() {
	examples := c.buf.Drain()
	_, err := c.pol.Train(examples, mlp.TrainOptions{
		Epochs:       c.opts.UpdateEpochs,
		LearningRate: c.opts.LearningRate,
		Seed:         c.opts.TrainSeed,
	})
	if err != nil {
		// Targets come from the grid-constrained search, so this is a
		// programming error, not a runtime condition.
		panic(fmt.Sprintf("core: policy update: %v", err))
	}
	c.updates++
}

// LastSizes returns the OU sizes chosen by the most recent run (nil before
// the first run).
func (c *Controller) LastSizes() []ou.Size { return c.lastSizes }

// freshDeviceLatency computes the inference latency of the exhaustive
// per-layer optima on a just-programmed device — the proactive-reprogram
// reference.
func (c *Controller) freshDeviceLatency() float64 {
	grid := c.sys.Grid()
	sizes := make([]ou.Size, c.wl.Layers())
	for j := range sizes {
		res := search.Exhaustive(grid, c.sys.objective(c.wl, j, c.sys.Device.T0))
		if res.Found {
			sizes[j] = res.Best
		} else {
			sizes[j] = grid.SizeAt(0, 0)
		}
	}
	_, l := c.sys.inferenceCost(c.wl, sizes)
	return l
}
