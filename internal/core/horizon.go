package core

import (
	"fmt"
	"math"
)

// HorizonConfig drives a long-term simulation. The platform serves a
// continuous inference stream (InferenceRate inferences per second) from
// t = 0 to End (the paper's sweep: t₀ → 10⁸ s). Simulating every inference
// is infeasible, so the horizon is split into Epochs decision points: at
// each epoch one representative inference run is executed (OU decisions,
// constraint checks, policy learning, possible reprogramming) and its
// inference energy/latency is charged for every inference served during the
// epoch. Reprogramming cost is charged once per event. This is exactly how
// the paper's totals work: reprogramming passes are rare events amortised
// over an enormous number of inference runs.
type HorizonConfig struct {
	End           float64 // horizon in seconds (default 1e8)
	Epochs        int     // decision points across the horizon (default 2000)
	InferenceRate float64 // served inferences per second (default 1.0)
	RecordEvery   int     // keep every k-th epoch as a sample; 0 disables
}

func (c HorizonConfig) withDefaults() HorizonConfig {
	if c.End <= 0 {
		c.End = 1e8
	}
	if c.Epochs <= 0 {
		c.Epochs = 2000
	}
	if c.InferenceRate <= 0 {
		// Default: a periodic-sensing edge workload (one inference every
		// ~80 minutes). At this cadence reprogramming passes are a material
		// share of the energy budget for coarse OUs, matching the §V.C
		// balance between inference and reprogramming cost.
		c.InferenceRate = 2e-4
	}
	return c
}

// RunSample is a decimated per-epoch record for plotting (Fig. 7 style).
type RunSample struct {
	Epoch        int
	Time         float64
	Accuracy     float64
	EDP          float64 // per-inference EDP at this epoch
	Reprogrammed bool
}

// HorizonSummary aggregates a horizon simulation.
type HorizonSummary struct {
	Epochs     int
	Inferences float64 // inferences served over the horizon

	InferenceEnergy  float64 // Σ energy of all served inferences (J)
	InferenceLatency float64 // Σ latency of all served inferences (s)
	ReprogramEnergy  float64 // Σ reprogramming energy (J)
	ReprogramLatency float64 // Σ reprogramming latency (s)
	Reprograms       int

	MeanAccuracy  float64 // epoch-weighted mean estimated accuracy
	MinAccuracy   float64
	FinalAccuracy float64

	SearchEvaluations int // total candidate evaluations (overhead metric)

	Samples []RunSample
}

// MeanInferenceEnergy returns inference energy per served inference.
func (s HorizonSummary) MeanInferenceEnergy() float64 {
	return s.InferenceEnergy / s.Inferences
}

// MeanInferenceLatency returns inference latency per served inference.
func (s HorizonSummary) MeanInferenceLatency() float64 {
	return s.InferenceLatency / s.Inferences
}

// InferenceEDP returns the per-inference inference-only energy-delay
// product — the normalisation basis of Fig. 6 and Fig. 8 ("normalized with
// respect to inferencing EDP of (16×16)").
func (s HorizonSummary) InferenceEDP() float64 {
	return s.MeanInferenceEnergy() * s.MeanInferenceLatency()
}

// TotalEnergy returns (inference + reprogramming) energy per inference.
func (s HorizonSummary) TotalEnergy() float64 {
	return (s.InferenceEnergy + s.ReprogramEnergy) / s.Inferences
}

// TotalLatency returns (inference + reprogramming) latency per inference.
func (s HorizonSummary) TotalLatency() float64 {
	return (s.InferenceLatency + s.ReprogramLatency) / s.Inferences
}

// TotalEDP returns the per-inference EDP including reprogramming overheads
// — the quantity the Fig. 6/8/9 bars compare.
func (s HorizonSummary) TotalEDP() float64 {
	return s.TotalEnergy() * s.TotalLatency()
}

// SimulateHorizon executes the configured horizon on the runner.
func SimulateHorizon(r Runner, cfg HorizonConfig) HorizonSummary {
	cfg = cfg.withDefaults()
	period := cfg.End / float64(cfg.Epochs)
	perEpoch := cfg.InferenceRate * period
	sum := HorizonSummary{Epochs: cfg.Epochs, MinAccuracy: math.Inf(1)}
	var accTotal float64
	for k := 0; k < cfg.Epochs; k++ {
		t := float64(k) * period
		rep := r.RunInference(t)
		sum.Inferences += perEpoch
		sum.InferenceEnergy += rep.Energy * perEpoch
		sum.InferenceLatency += rep.Latency * perEpoch
		sum.ReprogramEnergy += rep.ReprogramEnergy
		sum.ReprogramLatency += rep.ReprogramLatency
		sum.SearchEvaluations += rep.SearchEvaluations
		sum.Reprograms += rep.ReprogramPasses
		accTotal += rep.Accuracy
		if rep.Accuracy < sum.MinAccuracy {
			sum.MinAccuracy = rep.Accuracy
		}
		sum.FinalAccuracy = rep.Accuracy
		if cfg.RecordEvery > 0 && k%cfg.RecordEvery == 0 {
			sum.Samples = append(sum.Samples, RunSample{
				Epoch: k, Time: t, Accuracy: rep.Accuracy,
				EDP: rep.EDP(), Reprogrammed: rep.Reprogrammed,
			})
		}
	}
	sum.MeanAccuracy = accTotal / float64(cfg.Epochs)
	return sum
}

// String renders a one-line summary for logs.
func (s HorizonSummary) String() string {
	return fmt.Sprintf("epochs=%d reprograms=%d E=%.3e J L=%.3e s EDP=%.3e acc(mean/min)=%.3f/%.3f",
		s.Epochs, s.Reprograms, s.TotalEnergy(), s.TotalLatency(), s.TotalEDP(),
		s.MeanAccuracy, s.MinAccuracy)
}
