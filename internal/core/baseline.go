package core

import (
	"fmt"
	"math"

	"odin/internal/ou"
)

// Baseline runs a workload with a fixed, homogeneous OU size — the
// state-of-the-art configurations the paper compares against (§V.C):
// 16×16 [16], 16×4 [24], 9×8 [34] and 8×4 [16].
type Baseline struct {
	sys  System
	wl   *Workload
	size ou.Size

	// DisableReprogram reproduces the Fig. 7 "without reprogramming"
	// curves: the device is never rewritten and accuracy decays freely.
	DisableReprogram bool

	// deadline is the device age at which the fixed size first violates η
	// for its most sensitive layer (+Inf if never).
	deadline float64

	programmedAt float64
	reprograms   int
}

// StandardBaselineSizes returns the four homogeneous configurations from
// prior work used throughout §V.
func StandardBaselineSizes() []ou.Size {
	return []ou.Size{
		{R: 16, C: 16},
		{R: 16, C: 4},
		{R: 9, C: 8},
		{R: 8, C: 4},
	}
}

// NewBaseline creates a homogeneous-OU runner. The size may be off the
// power-of-two grid (9×8 is) — the analytical models accept any size.
func NewBaseline(sys System, wl *Workload, size ou.Size) (*Baseline, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if wl == nil {
		return nil, fmt.Errorf("core: baseline needs a workload")
	}
	if !size.Valid() || size.R > sys.Arch.CrossbarSize || size.C > sys.Arch.CrossbarSize {
		return nil, fmt.Errorf("core: OU size %v invalid for %d×%d crossbars",
			size, sys.Arch.CrossbarSize, sys.Arch.CrossbarSize)
	}
	deadline := math.Inf(1)
	total := wl.Layers()
	for j := 0; j < total; j++ {
		if d := sys.Acc.ReprogramDeadline(j, total, size); d < deadline {
			deadline = d
		}
	}
	if deadline <= sys.Device.T0 {
		return nil, fmt.Errorf("core: OU size %v violates η even on a fresh device", size)
	}
	return &Baseline{sys: sys, wl: wl, size: size, deadline: deadline}, nil
}

// ReprogramInterval returns the wall time between reprogramming passes the
// fixed configuration needs to keep satisfying η (+Inf if it never
// violates).
func (b *Baseline) ReprogramInterval() float64 {
	if math.IsInf(b.deadline, 1) {
		return b.deadline
	}
	return b.deadline - b.sys.Device.T0
}

// Size returns the fixed OU configuration.
func (b *Baseline) Size() ou.Size { return b.size }

// Reprograms returns the reprogramming count so far.
func (b *Baseline) Reprograms() int { return b.reprograms }

// Age returns the device age at simulation time t.
func (b *Baseline) Age(t float64) float64 {
	age := t - b.programmedAt + b.sys.Device.T0
	if age < b.sys.Device.T0 {
		age = b.sys.Device.T0
	}
	return age
}

// RunInference executes one fixed-configuration inference run at time t.
// A homogeneous platform cannot shrink its OUs, so whenever the
// configuration violates η it must reprogram (unless disabled) — this is
// what makes coarse OUs pay the frequent-reprogramming penalty of §V.C.
// Violation checks happen continuously on real hardware (every inference),
// not just at the simulator's decision epochs, so all reprogramming passes
// that fell due since the previous run are counted and charged here; the
// reprogram count is therefore independent of the epoch cadence.
func (b *Baseline) RunInference(t float64) RunReport {
	age := b.Age(t)
	rep := RunReport{Time: t, Age: age, Sizes: make([]ou.Size, b.wl.Layers())}
	for j := range rep.Sizes {
		rep.Sizes[j] = b.size
	}
	if !b.DisableReprogram && age > b.deadline {
		interval := b.ReprogramInterval()
		// Resets that fell due since the last programming instant.
		passes := int(math.Floor((age - b.sys.Device.T0) / interval))
		energy, latency := b.sys.reprogramCost(b.wl)
		rep.Reprogrammed = true
		rep.ReprogramPasses = passes
		rep.ReprogramEnergy = energy * float64(passes)
		rep.ReprogramLatency = latency * float64(passes)
		b.programmedAt += float64(passes) * interval
		b.reprograms += passes
		age = b.Age(t)
		rep.Age = age
	}
	rep.Energy, rep.Latency = b.sys.inferenceCost(b.wl, rep.Sizes)
	rep.Accuracy = b.sys.Acc.Accuracy(b.wl.Model.IdealAccuracy, rep.Sizes, age)
	return rep
}
