package core

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"odin/internal/check"
	"odin/internal/decache"
	"odin/internal/dnn"
	"odin/internal/obs"
	"odin/internal/ou"
)

// zooWorkloads prepares each zoo model once per test binary: Prepare cost
// (pruning, cost precomputation) dwarfs a decision pass and the property
// trials only need read access to the shared workloads.
var zooWorkloads = struct {
	once sync.Once
	sys  System
	wls  []*Workload
}{}

func preparedZoo(t testing.TB) (System, []*Workload) {
	zooWorkloads.once.Do(func() {
		zooWorkloads.sys = DefaultSystem()
		for _, m := range dnn.AllWorkloads() {
			wl, err := zooWorkloads.sys.Prepare(m)
			if err != nil {
				panic(fmt.Sprintf("prepare %s: %v", m.Name, err))
			}
			zooWorkloads.wls = append(zooWorkloads.wls, wl)
		}
	})
	if len(zooWorkloads.wls) == 0 {
		t.Fatal("no zoo workloads prepared")
	}
	return zooWorkloads.sys, zooWorkloads.wls
}

// cacheCase drives one cached-vs-uncached controller comparison.
type cacheCase struct {
	Model    int     // index into the prepared zoo
	Strategy string  // line-6 optimizer name
	AgeExp   float64 // first run at 10^AgeExp seconds
	Runs     int     // number of run times (each executed twice → cache hits)
}

func genCacheCase(models int) check.Gen[cacheCase] {
	return check.Gen[cacheCase]{
		Generate: func(t *check.T) cacheCase {
			strategies := []string{"rb", "ex", "bo", "pareto"}
			return cacheCase{
				Model:    t.Rng.Intn(models),
				Strategy: strategies[t.Rng.Intn(len(strategies))],
				AgeExp:   t.Rng.Float64() * 8.5,
				Runs:     1 + t.Rng.Intn(3),
			}
		},
		Shrink: func(c cacheCase) []cacheCase {
			var out []cacheCase
			for _, v := range check.ShrinkInt(c.Runs, 1) {
				m := c
				m.Runs = v
				out = append(out, m)
			}
			for _, v := range check.ShrinkInt(c.Model, 0) {
				m := c
				m.Model = v
				out = append(out, m)
			}
			for _, v := range check.ShrinkFloat(c.AgeExp, 0) {
				m := c
				m.AgeExp = v
				out = append(out, m)
			}
			return out
		},
	}
}

// stripCached zeroes the one field that legitimately differs between a
// cached and an uncached audit log: the Cached attribution flag. Everything
// else — predictions, clamps, choices, strategies, evaluation budgets,
// every candidate score, Pareto fronts, reprogram flags — must match
// exactly.
func stripCached(runs []obs.RunAudit) []obs.RunAudit {
	for i := range runs {
		for j := range runs[i].Layers {
			runs[i].Layers[j].Cached = false
		}
	}
	return runs
}

// bitsEq is float equality at the representation level: identical bit
// patterns, including NaN (infeasible candidates carry EDP = NaN, which
// reflect.DeepEqual would reject even when both logs hold the very same
// NaN). This is the byte-identity the cache contract promises.
func bitsEq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// auditEqual compares two audit logs record by record at bit level.
func auditEqual(a, b []obs.RunAudit) error {
	if len(a) != len(b) {
		return fmt.Errorf("audit run counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		ra, rb := a[i], b[i]
		if !bitsEq(ra.Time, rb.Time) || !bitsEq(ra.Age, rb.Age) || ra.Reprogrammed != rb.Reprogrammed {
			return fmt.Errorf("run %d headers differ", i)
		}
		if len(ra.Layers) != len(rb.Layers) {
			return fmt.Errorf("run %d layer counts differ: %d vs %d", i, len(ra.Layers), len(rb.Layers))
		}
		for j := range ra.Layers {
			la, lb := ra.Layers[j], rb.Layers[j]
			if la.Layer != lb.Layer || la.Predicted != lb.Predicted ||
				la.Start != lb.Start || la.Chosen != lb.Chosen ||
				la.Strategy != lb.Strategy || la.Evaluations != lb.Evaluations ||
				la.PolicyWon != lb.PolicyWon || la.Cached != lb.Cached {
				return fmt.Errorf("run %d layer %d decisions differ:\n  %+v\n  %+v", i, j, la, lb)
			}
			if len(la.Candidates) != len(lb.Candidates) {
				return fmt.Errorf("run %d layer %d probe counts differ: %d vs %d",
					i, j, len(la.Candidates), len(lb.Candidates))
			}
			for k := range la.Candidates {
				ca, cb := la.Candidates[k], lb.Candidates[k]
				if ca.Size != cb.Size || ca.Feasible != cb.Feasible ||
					!bitsEq(ca.Energy, cb.Energy) || !bitsEq(ca.Latency, cb.Latency) ||
					!bitsEq(ca.EDP, cb.EDP) || !bitsEq(ca.NF, cb.NF) {
					return fmt.Errorf("run %d layer %d candidate %d differs:\n  %+v\n  %+v",
						i, j, k, ca, cb)
				}
			}
			if len(la.Front) != len(lb.Front) {
				return fmt.Errorf("run %d layer %d front sizes differ: %d vs %d",
					i, j, len(la.Front), len(lb.Front))
			}
			for k := range la.Front {
				if la.Front[k] != lb.Front[k] {
					return fmt.Errorf("run %d layer %d front[%d] differs: %v vs %v",
						i, j, k, la.Front[k], lb.Front[k])
				}
			}
		}
	}
	return nil
}

// TestPropCachedControllerByteIdentical is the decision-cache contract at
// controller level: over randomized zoo models, device ages and every
// registered line-6 strategy, a cached controller and an uncached twin
// (same system, same policy seed, same run sequence) produce identical
// RunReports and identical audit logs (chosen OU sizes, probe sequences,
// candidate scores) modulo the Cached attribution flag. Each run time is
// executed twice so replayed (hit) decisions are actually exercised, not
// just first-visit misses.
//
// Mutation-smoke (2026-08-07): deliberately breaking the replay path —
// collapsing decache.Context.Bucket to min(bucket, 1), so stale aged
// decisions get served at other ages — was caught at trial 0 by the
// decache-level TestPropBucketMatchesSatisfies and at trial 1 by this
// property (candidate 4 flipped Feasible across a replay), each with a
// one-line replay (`ODINCHECK_SEED=<seed> ODINCHECK_TRIALS=1 go test -run
// '^Test...$' .`); the break was then reverted. The exercise pins that the
// suite actually discriminates rather than vacuously passing.
func TestPropCachedControllerByteIdentical(t *testing.T) {
	t.Parallel()
	sys, wls := preparedZoo(t)
	hits := 0
	check.RunConfig(t, check.Config{Trials: 12}, genCacheCase(len(wls)), func(c cacheCase) error {
		wl := wls[c.Model]
		opts := DefaultControllerOptions()
		opts.Strategy = c.Strategy

		cachedOpts := opts
		cachedOpts.Cache = decache.New()
		cachedOpts.Audit = obs.NewAuditLog(0)
		cached, err := NewController(sys, wl, freshPolicy(sys), cachedOpts)
		if err != nil {
			return fmt.Errorf("cached controller: %w", err)
		}

		plainOpts := opts
		plainOpts.DisableDecisionCache = true
		plainOpts.Audit = obs.NewAuditLog(0)
		plain, err := NewController(sys, wl, freshPolicy(sys), plainOpts)
		if err != nil {
			return fmt.Errorf("uncached controller: %w", err)
		}
		if plain.DecisionCache() != nil {
			return fmt.Errorf("DisableDecisionCache left a cache attached")
		}

		base := math.Pow(10, c.AgeExp)
		for k := 0; k < c.Runs; k++ {
			tRun := base * (1 + float64(k))
			for rerun := 0; rerun < 2; rerun++ {
				repC := cached.RunInference(tRun)
				repP := plain.RunInference(tRun)
				if !reflect.DeepEqual(repC, repP) {
					return fmt.Errorf("run t=%g rerun=%d: cached report %+v != uncached %+v",
						tRun, rerun, repC, repP)
				}
			}
		}
		auditC := stripCached(cachedOpts.Audit.Runs())
		auditP := plainOpts.Audit.Runs()
		if err := auditEqual(auditC, auditP); err != nil {
			return fmt.Errorf("audit logs diverge (model %d, strategy %s): %w", c.Model, c.Strategy, err)
		}
		cnt := cached.DecisionCache().Counters()
		hits += int(cnt.DecisionHits)
		return nil
	})
	// The doubled run times must have produced replayed decisions somewhere
	// across the trials, or the property only ever compared live passes.
	if hits == 0 {
		t.Fatal("no decision-cache hits across all trials; property never exercised replay")
	}
}

// TestCachedReprogramIgnoresPoisonedStaleEntries is the metamorphic
// invalidation test: a reprogramming pass resets the device age, so
// decisions recorded at pre-reprogram age buckets must never be served
// afterwards. We adversarially inject poisoned entries — absurd chosen
// sizes keyed exactly as a stale pre-reprogram decision would be (same
// work, layer, prediction, but the old age bucket) — and assert the
// post-reprogram run never returns them and stays byte-identical to an
// uncached twin.
func TestCachedReprogramIgnoresPoisonedStaleEntries(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	wl, err := sys.Prepare(dnn.NewVGG11())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultControllerOptions()
	opts.BufferSize = 1 << 20 // no mid-test policy updates: predictions stay stable
	cache := decache.New()
	cachedOpts := opts
	cachedOpts.Cache = cache
	ctrl, err := NewController(sys, wl, freshPolicy(sys), cachedOpts)
	if err != nil {
		t.Fatal(err)
	}
	plainOpts := opts
	plainOpts.DisableDecisionCache = true
	twin, err := NewController(sys, wl, freshPolicy(sys), plainOpts)
	if err != nil {
		t.Fatal(err)
	}

	// Run 1: deep into drift (reduced but non-empty feasible sets).
	// Run 2: past every deadline — forces a reprogramming pass.
	tAged, tReprogram, tFresh := 3e7, 1e12, 1e12+1
	ageAged := ctrl.Age(tAged)
	for _, tRun := range []float64{tAged, tReprogram} {
		repC, repP := ctrl.RunInference(tRun), twin.RunInference(tRun)
		if !reflect.DeepEqual(repC, repP) {
			t.Fatalf("t=%g: cached and uncached reports diverge before poisoning", tRun)
		}
	}
	if ctrl.Reprograms() != 1 {
		t.Fatalf("Reprograms = %d, want 1", ctrl.Reprograms())
	}

	// Poison: for every layer whose age bucket changed across the
	// reprogram, store a deliberately wrong entry under the stale
	// pre-reprogram bucket with the prediction the controller will make at
	// the fresh age. If bucket invalidation were broken (e.g. keyed on
	// anything but the feasible-set count), the next run would serve these.
	grid := sys.Grid()
	n := grid.Levels()
	marker := grid.SizeAt(n-1, n-1)
	ageFresh := ctrl.Age(tFresh)
	total := wl.Layers()
	poisoned := 0
	for j := 0; j < total; j++ {
		bOld := ctrl.dctx.Bucket(j, total, ageAged)
		bNew := ctrl.dctx.Bucket(j, total, ageFresh)
		if bOld == bNew {
			continue // same bucket would make the injection legitimate
		}
		pred := ctrl.pol.Predict(wl.FeaturesAt(j, ageFresh))
		ctrl.dctx.Store(decache.Key{
			Work: wl.Works[j], Layer: j, Of: total,
			Predicted: pred, Bucket: bOld,
		}, &decache.Entry{Start: marker, Chosen: marker, Found: true, Evaluations: 1})
		poisoned++
	}
	if poisoned == 0 {
		t.Fatal("no layer changed age bucket across the reprogram; test is vacuous")
	}

	repC, repP := ctrl.RunInference(tFresh), twin.RunInference(tFresh)
	if !reflect.DeepEqual(repC, repP) {
		t.Fatalf("post-reprogram cached report diverges from uncached twin:\n%+v\n%+v", repC, repP)
	}
	for j, s := range repC.Sizes {
		if s == marker && repP.Sizes[j] != marker {
			t.Fatalf("layer %d served the poisoned stale entry %v", j, s)
		}
	}
}

// TestCacheSharedAcrossStrategiesNoContamination interleaves two
// controllers with different line-6 strategies on one shared cache (the
// serve-layer deployment shape) and checks each stays byte-identical to
// its own uncached twin: strategy is part of the decision context, so rb
// and ex never read each other's entries, and a budget change gets its own
// context too.
func TestCacheSharedAcrossStrategiesNoContamination(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	wl, err := sys.Prepare(dnn.NewGoogLeNet())
	if err != nil {
		t.Fatal(err)
	}
	shared := decache.New()
	mk := func(strategy string, budget int, cache *decache.Cache) *Controller {
		opts := DefaultControllerOptions()
		opts.Strategy = strategy
		opts.SearchBudget = budget
		if cache != nil {
			opts.Cache = cache
		} else {
			opts.DisableDecisionCache = true
		}
		ctrl, err := NewController(sys, wl, freshPolicy(sys), opts)
		if err != nil {
			t.Fatal(err)
		}
		return ctrl
	}
	pairs := []struct{ cached, plain *Controller }{
		{mk("rb", 0, shared), mk("rb", 0, nil)},
		{mk("ex", 0, shared), mk("ex", 0, nil)},
		{mk("rb", 7, shared), mk("rb", 7, nil)}, // budget change → distinct context
	}
	for _, tRun := range []float64{0, 1e6, 1e6, 3e7, 3e7} {
		for i, p := range pairs {
			repC, repP := p.cached.RunInference(tRun), p.plain.RunInference(tRun)
			if !reflect.DeepEqual(repC, repP) {
				t.Fatalf("pair %d t=%g: shared-cache report diverges from uncached twin", i, tRun)
			}
		}
	}
	if c := shared.Counters(); c.DecisionHits == 0 {
		t.Fatal("shared cache saw no hits; interleaving never exercised replay")
	}
}

// TestPolicyUpdateInvalidatesPredictMemo drives the controller until a
// buffer-full policy update fires and checks the predict memo did not pin
// the stale pre-update predictions: after the update, the controller's
// predictions equal a fresh Predict call on the updated policy (the memo
// keys on the policy version, which Train bumps).
func TestPolicyUpdateInvalidatesPredictMemo(t *testing.T) {
	t.Parallel()
	sys := DefaultSystem()
	wl, err := sys.Prepare(dnn.NewVGG11())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultControllerOptions()
	opts.BufferSize = 5 // update quickly
	opts.Cache = decache.New()
	ctrl, err := NewController(sys, wl, freshPolicy(sys), opts)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; ctrl.PolicyUpdates() == 0 && k < 50; k++ {
		ctrl.RunInference(1e5 * float64(k+1))
	}
	if ctrl.PolicyUpdates() == 0 {
		t.Fatal("no policy update fired; cannot test memo invalidation")
	}
	age := ctrl.Age(5e6)
	for j := 0; j < wl.Layers(); j++ {
		feat := wl.FeaturesAt(j, age)
		want := ctrl.pol.Predict(feat)
		got := ctrl.decideLayer(j, age, false).predicted
		if got != want {
			t.Fatalf("layer %d: memoized prediction %v != live prediction %v after policy update",
				j, got, want)
		}
	}
}

// TestCachedDecisionHitPathAllocFree pins the steady-state allocation
// profile of a replayed decision: once a (layer, age-bucket, prediction)
// decision is cached, re-deciding it allocates nothing.
func TestCachedDecisionHitPathAllocFree(t *testing.T) {
	sys := DefaultSystem()
	wl, err := sys.Prepare(dnn.NewVGG11())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultControllerOptions()
	opts.Cache = decache.New()
	ctrl, err := NewController(sys, wl, freshPolicy(sys), opts)
	if err != nil {
		t.Fatal(err)
	}
	const age = 1e6
	_ = ctrl.decideLayer(0, age, false) // warm: miss populates the entry
	var chosen ou.Size
	if avg := testing.AllocsPerRun(1000, func() {
		chosen = ctrl.decideLayer(0, age, false).chosen
	}); avg != 0 {
		t.Fatalf("cached decision hit path allocates %v per op, want 0", avg)
	}
	if _, _, ok := sys.Grid().IndexOf(chosen); !ok {
		t.Fatalf("cached hit returned off-grid size %v", chosen)
	}
	if c := ctrl.DecisionCache().Counters(); c.DecisionHits == 0 {
		t.Fatal("alloc loop never hit the cache")
	}
}
