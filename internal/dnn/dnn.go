// Package dnn describes DNN workloads at the granularity Odin consumes:
// ordered lists of weight layers with their kernel sizes, channel counts,
// feature-map dimensions and (after pruning, see internal/sparsity) weight
// and activation sparsity. Weight *values* never matter to the analytical
// models, so layers carry shape statistics only; synthetic weight tensors
// for the reference crossbar demos are generated on demand from
// deterministic seeds.
//
// The zoo (zoo.go) provides layer-accurate ResNet18/34/50, VGG11/16/19,
// GoogLeNet, DenseNet121 and a compact ViT — the nine workload/dataset
// pairs of the paper's evaluation (§V.A).
package dnn

import "fmt"

// LayerType distinguishes the structural role of a weight layer.
type LayerType int

const (
	// Conv is a standard 2-D convolution.
	Conv LayerType = iota
	// FC is a fully connected (linear) layer, including transformer
	// projections.
	FC
	// Attention marks the fused QKV projection of a transformer block; it is
	// mapped like an FC layer but tagged for feature extraction.
	Attention
)

// String returns a short human-readable label.
func (t LayerType) String() string {
	switch t {
	case Conv:
		return "conv"
	case FC:
		return "fc"
	case Attention:
		return "attn"
	default:
		return fmt.Sprintf("LayerType(%d)", int(t))
	}
}

// Layer is one weight layer of a DNN.
type Layer struct {
	Name string
	Type LayerType

	KernelH, KernelW int // 1×1 for FC/Attention
	InChannels       int
	OutChannels      int
	InH, InW         int // input feature-map spatial size (1×1 for FC)
	Stride           int

	// Groups splits the convolution into independent channel groups
	// (grouped/depthwise convolutions; 0 or 1 = standard). A depthwise
	// convolution has Groups == InChannels == OutChannels.
	Groups int

	// Skip marks residual-shortcut projection convolutions; they appear in
	// the paper's layer-wise plots (Fig. 3 counts "including skip
	// connections").
	Skip bool

	// WeightSparsity and ActSparsity are filled by internal/sparsity's
	// pruning pass; both are fractions of zeros in [0,1).
	WeightSparsity float64
	ActSparsity    float64
}

// groups returns the effective group count (≥ 1).
func (l Layer) groups() int {
	if l.Groups < 1 {
		return 1
	}
	return l.Groups
}

// GroupCount is the exported effective group count (≥ 1).
func (l Layer) GroupCount() int { return l.groups() }

// Weights returns the number of weight parameters in the layer.
func (l Layer) Weights() int {
	return l.KernelH * l.KernelW * (l.InChannels / l.groups()) * l.OutChannels
}

// OutH returns the output feature-map height ("same" padding for convs).
func (l Layer) OutH() int { return outDim(l.InH, l.Stride) }

// OutW returns the output feature-map width.
func (l Layer) OutW() int { return outDim(l.InW, l.Stride) }

func outDim(in, stride int) int {
	if stride <= 1 {
		return in
	}
	return (in + stride - 1) / stride
}

// MACs returns multiply-accumulate operations for one inference.
func (l Layer) MACs() int {
	return l.Weights() * l.OutH() * l.OutW()
}

// InputVectors returns how many MVM input vectors (im2col patches) one
// inference pushes through the layer — the activation-traffic figure the NoC
// model consumes.
func (l Layer) InputVectors() int { return l.OutH() * l.OutW() }

// RowsRequired returns the crossbar rows an im2col mapping of the layer
// needs per group: one row per weight in a filter.
func (l Layer) RowsRequired() int {
	return l.KernelH * l.KernelW * (l.InChannels / l.groups())
}

// Validate reports structural problems with the layer definition.
func (l Layer) Validate() error {
	switch {
	case l.KernelH < 1 || l.KernelW < 1:
		return fmt.Errorf("dnn: layer %q has invalid kernel %dx%d", l.Name, l.KernelH, l.KernelW)
	case l.InChannels < 1 || l.OutChannels < 1:
		return fmt.Errorf("dnn: layer %q has invalid channels %d->%d", l.Name, l.InChannels, l.OutChannels)
	case l.InH < 1 || l.InW < 1:
		return fmt.Errorf("dnn: layer %q has invalid input map %dx%d", l.Name, l.InH, l.InW)
	case l.Stride < 1:
		return fmt.Errorf("dnn: layer %q has invalid stride %d", l.Name, l.Stride)
	case l.Groups < 0:
		return fmt.Errorf("dnn: layer %q has negative group count %d", l.Name, l.Groups)
	case l.groups() > 1 && (l.InChannels%l.groups() != 0 || l.OutChannels%l.groups() != 0):
		return fmt.Errorf("dnn: layer %q channels %d->%d not divisible into %d groups",
			l.Name, l.InChannels, l.OutChannels, l.groups())
	case l.WeightSparsity < 0 || l.WeightSparsity >= 1:
		return fmt.Errorf("dnn: layer %q weight sparsity %v out of [0,1)", l.Name, l.WeightSparsity)
	case l.ActSparsity < 0 || l.ActSparsity >= 1:
		return fmt.Errorf("dnn: layer %q activation sparsity %v out of [0,1)", l.Name, l.ActSparsity)
	}
	return nil
}

// Model is an ordered stack of weight layers bound to a dataset.
type Model struct {
	Name    string
	Dataset Dataset
	Layers  []Layer

	// IdealAccuracy is the fault-free inference accuracy (fraction in (0,1])
	// of the pruned model, used as the Fig. 7 reference line.
	IdealAccuracy float64
}

// Validate checks the whole model, including inter-layer consistency of
// feature-map shapes where adjacency is meaningful.
func (m *Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("dnn: model has no name")
	}
	if len(m.Layers) == 0 {
		return fmt.Errorf("dnn: model %q has no layers", m.Name)
	}
	if m.IdealAccuracy <= 0 || m.IdealAccuracy > 1 {
		return fmt.Errorf("dnn: model %q ideal accuracy %v out of (0,1]", m.Name, m.IdealAccuracy)
	}
	for i := range m.Layers {
		if err := m.Layers[i].Validate(); err != nil {
			return fmt.Errorf("dnn: model %q layer %d: %w", m.Name, i, err)
		}
	}
	return nil
}

// TotalWeights sums weight parameters over all layers.
func (m *Model) TotalWeights() int {
	total := 0
	for i := range m.Layers {
		total += m.Layers[i].Weights()
	}
	return total
}

// TotalMACs sums MACs over all layers.
func (m *Model) TotalMACs() int {
	total := 0
	for i := range m.Layers {
		total += m.Layers[i].MACs()
	}
	return total
}

// MeanWeightSparsity returns the weight-weighted average sparsity.
func (m *Model) MeanWeightSparsity() float64 {
	var num, den float64
	for i := range m.Layers {
		w := float64(m.Layers[i].Weights())
		num += w * m.Layers[i].WeightSparsity
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Dataset describes an image-classification dataset at the level the
// simulator needs.
type Dataset struct {
	Name     string
	InputH   int
	InputW   int
	Channels int
	Classes  int
}

// The three datasets of the paper's evaluation.
var (
	CIFAR10      = Dataset{Name: "CIFAR-10", InputH: 32, InputW: 32, Channels: 3, Classes: 10}
	CIFAR100     = Dataset{Name: "CIFAR-100", InputH: 32, InputW: 32, Channels: 3, Classes: 100}
	TinyImageNet = Dataset{Name: "TinyImageNet", InputH: 64, InputW: 64, Channels: 3, Classes: 200}
)
