package dnn

import (
	"strings"
	"testing"
)

func TestAllWorkloadsValidate(t *testing.T) {
	t.Parallel()
	models := AllWorkloads()
	if len(models) != 9 {
		t.Fatalf("paper evaluates 9 workloads, zoo has %d", len(models))
	}
	for _, m := range models {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestWorkloadDatasetPairs(t *testing.T) {
	t.Parallel()
	want := map[string]string{
		"ResNet18":    "CIFAR-10",
		"VGG11":       "CIFAR-10",
		"GoogLeNet":   "CIFAR-10",
		"DenseNet121": "CIFAR-10",
		"ViT":         "CIFAR-10",
		"ResNet34":    "CIFAR-100",
		"VGG16":       "CIFAR-100",
		"ResNet50":    "TinyImageNet",
		"VGG19":       "TinyImageNet",
	}
	for _, m := range AllWorkloads() {
		if ds, ok := want[m.Name]; !ok || ds != m.Dataset.Name {
			t.Errorf("%s paired with %s, want %s", m.Name, m.Dataset.Name, want[m.Name])
		}
	}
}

func TestLayerCounts(t *testing.T) {
	t.Parallel()
	counts := map[string]int{
		// ResNet18: conv1 + 16 block convs + 3 downsample + fc = 21.
		"ResNet18": 21,
		// ResNet34: conv1 + 32 block convs + 3 downsample + fc = 37.
		"ResNet34": 37,
		// ResNet50: conv1 + 48 block convs + 4 downsample + fc = 54.
		"ResNet50": 54,
		// VGGn: (n−3) convs + 3 FC.
		"VGG11": 11,
		"VGG16": 16,
		"VGG19": 19,
		// GoogLeNet: stem + 9 inceptions × 6 + fc = 56.
		"GoogLeNet": 56,
		// DenseNet121: conv1 + 58×2 dense convs + 3 transitions + fc = 121.
		"DenseNet121": 121,
		// ViT: patch embed + 6 blocks × 4 + head = 26.
		"ViT": 26,
	}
	for _, m := range AllWorkloads() {
		if want := counts[m.Name]; len(m.Layers) != want {
			t.Errorf("%s has %d layers, want %d", m.Name, len(m.Layers), want)
		}
	}
}

func TestResNet18Structure(t *testing.T) {
	t.Parallel()
	m := NewResNet18()
	first := m.Layers[0]
	if first.Name != "conv1" || first.KernelH != 3 || first.OutChannels != 64 || first.InH != 32 {
		t.Fatalf("unexpected stem: %+v", first)
	}
	last := m.Layers[len(m.Layers)-1]
	if last.Type != FC || last.OutChannels != 10 || last.InChannels != 512 {
		t.Fatalf("unexpected head: %+v", last)
	}
	skips := 0
	for _, l := range m.Layers {
		if l.Skip {
			skips++
			if l.KernelH != 1 {
				t.Errorf("skip projection %s has kernel %d, want 1", l.Name, l.KernelH)
			}
		}
	}
	if skips != 3 {
		t.Fatalf("ResNet18 has %d skip projections, want 3", skips)
	}
}

func TestResNet18ParameterCount(t *testing.T) {
	t.Parallel()
	// CIFAR ResNet18 ≈ 11.2 M weights (conv + fc, no batch-norm params).
	m := NewResNet18()
	w := m.TotalWeights()
	if w < 10_500_000 || w > 11_500_000 {
		t.Fatalf("ResNet18 weights = %d, want ≈ 11.2M", w)
	}
}

func TestVGG16ParameterShape(t *testing.T) {
	t.Parallel()
	m := NewVGG16()
	// 13 convs then 3 FC; the first FC sees the flattened 1×1×512 map.
	fc1 := m.Layers[13]
	if fc1.Type != FC || fc1.InChannels != 512 || fc1.OutChannels != 4096 {
		t.Fatalf("VGG16 fc1 = %+v", fc1)
	}
	if m.Layers[15].OutChannels != 100 {
		t.Fatalf("VGG16 head classes = %d, want 100", m.Layers[15].OutChannels)
	}
}

func TestFeatureMapTracking(t *testing.T) {
	t.Parallel()
	m := NewVGG11()
	// After each pool the next conv must see the halved map.
	wantInH := []int{32, 16, 8, 8, 4, 4, 2, 2}
	convIdx := 0
	for _, l := range m.Layers {
		if l.Type != Conv {
			continue
		}
		if l.InH != wantInH[convIdx] {
			t.Errorf("VGG11 conv%d sees %d×%d map, want %d", convIdx+1, l.InH, l.InW, wantInH[convIdx])
		}
		convIdx++
	}
}

func TestResNet50Downsamples(t *testing.T) {
	t.Parallel()
	m := NewResNet50()
	skips := 0
	for _, l := range m.Layers {
		if l.Skip {
			skips++
		}
	}
	if skips != 4 {
		t.Fatalf("ResNet50 has %d projections, want 4 (every stage re-widens)", skips)
	}
	if m.Layers[0].InH != 64 {
		t.Fatalf("ResNet50 stem input %d, want 64 (TinyImageNet)", m.Layers[0].InH)
	}
}

func TestGoogLeNetInceptionWidths(t *testing.T) {
	t.Parallel()
	m := NewGoogLeNet()
	// Find the 5b 5×5 branch: in 48 out 128 on an 8×8 map.
	var found bool
	for _, l := range m.Layers {
		if l.Name == "5b.b3" {
			found = true
			if l.KernelH != 5 || l.InChannels != 48 || l.OutChannels != 128 {
				t.Fatalf("5b.b3 = %+v", l)
			}
		}
	}
	if !found {
		t.Fatal("5b.b3 not found")
	}
	head := m.Layers[len(m.Layers)-1]
	if head.InChannels != 1024 {
		t.Fatalf("GoogLeNet head in-channels %d, want 1024", head.InChannels)
	}
}

func TestDenseNetChannelGrowth(t *testing.T) {
	t.Parallel()
	m := NewDenseNet121()
	head := m.Layers[len(m.Layers)-1]
	if head.InChannels != 1024 {
		t.Fatalf("DenseNet121 head sees %d channels, want 1024", head.InChannels)
	}
	// First bottleneck of block 2 sees the post-transition width 128.
	for _, l := range m.Layers {
		if l.Name == "block2.0.bottleneck" {
			if l.InChannels != 128 {
				t.Fatalf("block2 entry channels %d, want 128", l.InChannels)
			}
			return
		}
	}
	t.Fatal("block2.0.bottleneck not found")
}

func TestViTShapes(t *testing.T) {
	t.Parallel()
	m := NewViT()
	patch := m.Layers[0]
	if patch.Stride != 4 || patch.OutH() != 8 {
		t.Fatalf("patch embed produces %d×%d grid, want 8×8", patch.OutH(), patch.OutW())
	}
	var qkv *Layer
	for i := range m.Layers {
		if m.Layers[i].Name == "block0.qkv" {
			qkv = &m.Layers[i]
		}
	}
	if qkv == nil || qkv.Type != Attention || qkv.OutChannels != 768 {
		t.Fatalf("qkv layer wrong: %+v", qkv)
	}
	if qkv.InputVectors() != 64 {
		t.Fatalf("qkv token count %d, want 64", qkv.InputVectors())
	}
}

func TestLayerDerivedQuantities(t *testing.T) {
	t.Parallel()
	l := Layer{Name: "x", Type: Conv, KernelH: 3, KernelW: 3,
		InChannels: 64, OutChannels: 128, InH: 16, InW: 16, Stride: 2}
	if l.Weights() != 3*3*64*128 {
		t.Fatalf("Weights = %d", l.Weights())
	}
	if l.OutH() != 8 || l.OutW() != 8 {
		t.Fatalf("OutH/W = %d/%d", l.OutH(), l.OutW())
	}
	if l.MACs() != l.Weights()*64 {
		t.Fatalf("MACs = %d", l.MACs())
	}
	if l.RowsRequired() != 3*3*64 {
		t.Fatalf("RowsRequired = %d", l.RowsRequired())
	}
	if l.InputVectors() != 64 {
		t.Fatalf("InputVectors = %d", l.InputVectors())
	}
}

func TestLayerValidateRejections(t *testing.T) {
	t.Parallel()
	good := Layer{Name: "ok", KernelH: 3, KernelW: 3, InChannels: 4,
		OutChannels: 4, InH: 8, InW: 8, Stride: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("good layer rejected: %v", err)
	}
	mutations := []func(*Layer){
		func(l *Layer) { l.KernelH = 0 },
		func(l *Layer) { l.InChannels = 0 },
		func(l *Layer) { l.InH = 0 },
		func(l *Layer) { l.Stride = 0 },
		func(l *Layer) { l.WeightSparsity = 1 },
		func(l *Layer) { l.ActSparsity = -0.1 },
	}
	for i, mutate := range mutations {
		l := good
		mutate(&l)
		if err := l.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestModelValidateRejections(t *testing.T) {
	t.Parallel()
	m := NewVGG11()
	m.IdealAccuracy = 0
	if err := m.Validate(); err == nil {
		t.Fatal("zero ideal accuracy accepted")
	}
	empty := &Model{Name: "x", IdealAccuracy: 0.5}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty model accepted")
	}
}

func TestByName(t *testing.T) {
	t.Parallel()
	m, err := ByName("VGG11")
	if err != nil || m.Name != "VGG11" {
		t.Fatalf("ByName(VGG11) = %v, %v", m, err)
	}
	if _, err := ByName("AlexNet"); err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Fatalf("ByName(AlexNet) err = %v", err)
	}
}

func TestLayerTypeString(t *testing.T) {
	t.Parallel()
	if Conv.String() != "conv" || FC.String() != "fc" || Attention.String() != "attn" {
		t.Fatal("LayerType strings wrong")
	}
	if LayerType(99).String() != "LayerType(99)" {
		t.Fatal("unknown LayerType string wrong")
	}
}

func TestMeanWeightSparsityZeroForUnpruned(t *testing.T) {
	t.Parallel()
	if s := NewResNet18().MeanWeightSparsity(); s != 0 {
		t.Fatalf("unpruned sparsity = %v", s)
	}
}

func TestTotalMACsPositive(t *testing.T) {
	t.Parallel()
	for _, m := range AllWorkloads() {
		if m.TotalMACs() <= 0 || m.TotalWeights() <= 0 {
			t.Errorf("%s has non-positive totals", m.Name)
		}
	}
}
