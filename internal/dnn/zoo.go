package dnn

import "fmt"

// builder accumulates layers while tracking the running feature-map shape,
// so topology definitions below read like the architectures they describe.
type builder struct {
	m       *Model
	h, w, c int
}

func newBuilder(name string, ds Dataset, idealAccuracy float64) *builder {
	return &builder{
		m: &Model{Name: name, Dataset: ds, IdealAccuracy: idealAccuracy},
		h: ds.InputH, w: ds.InputW, c: ds.Channels,
	}
}

// conv appends a k×k convolution producing out channels and advances the
// tracked shape. It returns the layer index for cross-referencing.
func (b *builder) conv(name string, k, out, stride int) int {
	return b.convFrom(name, k, b.c, out, stride, false)
}

// convFrom appends a convolution with an explicit input-channel count —
// used for residual shortcuts, which branch from the block input.
func (b *builder) convFrom(name string, k, in, out, stride int, skip bool) int {
	l := Layer{
		Name: name, Type: Conv,
		KernelH: k, KernelW: k,
		InChannels: in, OutChannels: out,
		InH: b.h, InW: b.w,
		Stride: stride, Skip: skip,
	}
	b.m.Layers = append(b.m.Layers, l)
	if !skip { // shortcut convs do not advance the main path
		b.h, b.w = l.OutH(), l.OutW()
		b.c = out
	}
	return len(b.m.Layers) - 1
}

// pool downsamples the tracked spatial shape (max/avg pools carry no
// weights, so no layer is appended).
func (b *builder) pool(stride int) {
	b.h = outDim(b.h, stride)
	b.w = outDim(b.w, stride)
}

// globalPool collapses the spatial dimensions to 1×1.
func (b *builder) globalPool() { b.h, b.w = 1, 1 }

// fc appends a fully connected layer over the flattened features.
func (b *builder) fc(name string, out int) {
	in := b.c * b.h * b.w
	b.m.Layers = append(b.m.Layers, Layer{
		Name: name, Type: FC,
		KernelH: 1, KernelW: 1,
		InChannels: in, OutChannels: out,
		InH: 1, InW: 1, Stride: 1,
	})
	b.c, b.h, b.w = out, 1, 1
}

// tokenLayer appends a per-token linear layer (transformer blocks): kernel
// 1×1 applied across the token grid, so InputVectors equals the token count.
func (b *builder) tokenLayer(name string, typ LayerType, in, out int) {
	b.m.Layers = append(b.m.Layers, Layer{
		Name: name, Type: typ,
		KernelH: 1, KernelW: 1,
		InChannels: in, OutChannels: out,
		InH: b.h, InW: b.w, Stride: 1,
	})
	b.c = out
}

func (b *builder) build() *Model {
	if err := b.m.Validate(); err != nil {
		panic(fmt.Sprintf("dnn: zoo bug: %v", err))
	}
	return b.m
}

// basicStage appends a ResNet basic-block stage: blocks×2 3×3 convs, with a
// stride-2 first block and a 1×1 projection shortcut when shape changes.
func (b *builder) basicStage(prefix string, blocks, out, firstStride int) {
	for blk := 0; blk < blocks; blk++ {
		stride := 1
		if blk == 0 {
			stride = firstStride
		}
		in := b.c
		needSkip := stride != 1 || in != out
		b.conv(fmt.Sprintf("%s.%d.conv1", prefix, blk), 3, out, stride)
		b.conv(fmt.Sprintf("%s.%d.conv2", prefix, blk), 3, out, 1)
		if needSkip {
			b.convFrom(fmt.Sprintf("%s.%d.downsample", prefix, blk), 1, in, out, stride, true)
		}
	}
}

// bottleneckStage appends a ResNet bottleneck stage (1×1, 3×3, 1×1 convs
// with 4× expansion).
func (b *builder) bottleneckStage(prefix string, blocks, width, firstStride int) {
	out := width * 4
	for blk := 0; blk < blocks; blk++ {
		stride := 1
		if blk == 0 {
			stride = firstStride
		}
		in := b.c
		needSkip := stride != 1 || in != out
		b.conv(fmt.Sprintf("%s.%d.conv1", prefix, blk), 1, width, 1)
		b.conv(fmt.Sprintf("%s.%d.conv2", prefix, blk), 3, width, stride)
		b.conv(fmt.Sprintf("%s.%d.conv3", prefix, blk), 1, out, 1)
		if needSkip {
			b.convFrom(fmt.Sprintf("%s.%d.downsample", prefix, blk), 1, in, out, stride, true)
		}
	}
}

// NewResNet18 builds the CIFAR-style ResNet18 evaluated on CIFAR-10.
func NewResNet18() *Model {
	b := newBuilder("ResNet18", CIFAR10, 0.945)
	b.conv("conv1", 3, 64, 1)
	b.basicStage("layer1", 2, 64, 1)
	b.basicStage("layer2", 2, 128, 2)
	b.basicStage("layer3", 2, 256, 2)
	b.basicStage("layer4", 2, 512, 2)
	b.globalPool()
	b.fc("fc", b.m.Dataset.Classes)
	return b.build()
}

// NewResNet34 builds the CIFAR-style ResNet34 evaluated on CIFAR-100.
func NewResNet34() *Model {
	b := newBuilder("ResNet34", CIFAR100, 0.773)
	b.conv("conv1", 3, 64, 1)
	b.basicStage("layer1", 3, 64, 1)
	b.basicStage("layer2", 4, 128, 2)
	b.basicStage("layer3", 6, 256, 2)
	b.basicStage("layer4", 3, 512, 2)
	b.globalPool()
	b.fc("fc", b.m.Dataset.Classes)
	return b.build()
}

// NewResNet50 builds the bottleneck ResNet50 evaluated on TinyImageNet.
func NewResNet50() *Model {
	b := newBuilder("ResNet50", TinyImageNet, 0.652)
	b.conv("conv1", 3, 64, 1)
	b.pool(2) // 64→32 stem max-pool for the 64×64 input
	b.bottleneckStage("layer1", 3, 64, 1)
	b.bottleneckStage("layer2", 4, 128, 2)
	b.bottleneckStage("layer3", 6, 256, 2)
	b.bottleneckStage("layer4", 3, 512, 2)
	b.globalPool()
	b.fc("fc", b.m.Dataset.Classes)
	return b.build()
}

// vgg builds a VGG variant from its feature configuration ("M" entries are
// max-pools) followed by the standard three-layer classifier.
func vgg(name string, ds Dataset, idealAccuracy float64, features []int) *Model {
	b := newBuilder(name, ds, idealAccuracy)
	convIdx := 0
	for _, f := range features {
		if f == poolMarker {
			b.pool(2)
			continue
		}
		convIdx++
		b.conv(fmt.Sprintf("conv%d", convIdx), 3, f, 1)
	}
	b.fc("fc1", 4096)
	b.fc("fc2", 4096)
	b.fc("fc3", ds.Classes)
	return b.build()
}

const poolMarker = -1

// NewVGG11 builds VGG11 on CIFAR-10 (8 convs + 3 FC = 11 weight layers).
func NewVGG11() *Model {
	return vgg("VGG11", CIFAR10, 0.921, []int{
		64, poolMarker,
		128, poolMarker,
		256, 256, poolMarker,
		512, 512, poolMarker,
		512, 512, poolMarker,
	})
}

// NewVGG16 builds VGG16 on CIFAR-100 (13 convs + 3 FC).
func NewVGG16() *Model {
	return vgg("VGG16", CIFAR100, 0.741, []int{
		64, 64, poolMarker,
		128, 128, poolMarker,
		256, 256, 256, poolMarker,
		512, 512, 512, poolMarker,
		512, 512, 512, poolMarker,
	})
}

// NewVGG19 builds VGG19 on TinyImageNet (16 convs + 3 FC).
func NewVGG19() *Model {
	return vgg("VGG19", TinyImageNet, 0.621, []int{
		64, 64, poolMarker,
		128, 128, poolMarker,
		256, 256, 256, 256, poolMarker,
		512, 512, 512, 512, poolMarker,
		512, 512, 512, 512, poolMarker,
	})
}

// inception appends one GoogLeNet inception module (six convolutions) and
// fixes the tracked channel count to the concatenated branch output.
func (b *builder) inception(name string, b1, b2red, b2, b3red, b3, b4 int) {
	in := b.c
	b.convFrom(name+".b1", 1, in, b1, 1, false)
	// The main-path bookkeeping above advanced b.c; the remaining branches
	// also read the module input, so they use convFrom with `in` and the
	// skip flag semantics (no main-path advance) except the last, after
	// which we set the concatenated width explicitly.
	b.convFrom(name+".b2red", 1, in, b2red, 1, true)
	b.convFrom(name+".b2", 3, b2red, b2, 1, true)
	b.convFrom(name+".b3red", 1, in, b3red, 1, true)
	b.convFrom(name+".b3", 5, b3red, b3, 1, true)
	b.convFrom(name+".b4proj", 1, in, b4, 1, true)
	b.c = b1 + b2 + b3 + b4
}

// NewGoogLeNet builds the CIFAR-adapted GoogLeNet (stem conv + 9 inception
// modules + classifier; 56 weight layers).
func NewGoogLeNet() *Model {
	b := newBuilder("GoogLeNet", CIFAR10, 0.948)
	b.conv("stem", 3, 192, 1)
	b.inception("3a", 64, 96, 128, 16, 32, 32)
	b.inception("3b", 128, 128, 192, 32, 96, 64)
	b.pool(2)
	b.inception("4a", 192, 96, 208, 16, 48, 64)
	b.inception("4b", 160, 112, 224, 24, 64, 64)
	b.inception("4c", 128, 128, 256, 24, 64, 64)
	b.inception("4d", 112, 144, 288, 32, 64, 64)
	b.inception("4e", 256, 160, 320, 32, 128, 128)
	b.pool(2)
	b.inception("5a", 256, 160, 320, 32, 128, 128)
	b.inception("5b", 384, 192, 384, 48, 128, 128)
	b.globalPool()
	b.fc("fc", b.m.Dataset.Classes)
	return b.build()
}

// denseBlock appends `layers` DenseNet layers (1×1 bottleneck to 4·growth,
// then 3×3 producing `growth` channels, concatenated onto the input).
func (b *builder) denseBlock(prefix string, layers, growth int) {
	for i := 0; i < layers; i++ {
		in := b.c
		b.convFrom(fmt.Sprintf("%s.%d.bottleneck", prefix, i), 1, in, 4*growth, 1, true)
		b.convFrom(fmt.Sprintf("%s.%d.conv", prefix, i), 3, 4*growth, growth, 1, true)
		b.c = in + growth // concatenation
	}
}

// NewDenseNet121 builds DenseNet-121 on CIFAR-10 (121 weight layers).
func NewDenseNet121() *Model {
	const growth = 32
	b := newBuilder("DenseNet121", CIFAR10, 0.951)
	b.conv("conv1", 3, 2*growth, 1)
	for i, layers := range []int{6, 12, 24, 16} {
		b.denseBlock(fmt.Sprintf("block%d", i+1), layers, growth)
		if i < 3 { // transition: 1×1 conv halving channels + 2× avg-pool
			b.conv(fmt.Sprintf("trans%d", i+1), 1, b.c/2, 1)
			b.pool(2)
		}
	}
	b.globalPool()
	b.fc("fc", b.m.Dataset.Classes)
	return b.build()
}

// NewViT builds a compact vision transformer for CIFAR-10: 4×4 patch
// embedding (8×8 = 64 tokens, dim 256), six encoder blocks (fused QKV,
// output projection, and a 2× MLP), and a classification head — 26 weight
// layers.
func NewViT() *Model {
	const (
		dim     = 256
		mlpDim  = 512
		depth   = 6
		patchSz = 4
	)
	b := newBuilder("ViT", CIFAR10, 0.930)
	b.conv("patch_embed", patchSz, dim, patchSz) // 32/4 = 8×8 token grid
	for blk := 0; blk < depth; blk++ {
		b.tokenLayer(fmt.Sprintf("block%d.qkv", blk), Attention, dim, 3*dim)
		b.tokenLayer(fmt.Sprintf("block%d.proj", blk), FC, 3*dim, dim)
		b.tokenLayer(fmt.Sprintf("block%d.mlp1", blk), FC, dim, mlpDim)
		b.tokenLayer(fmt.Sprintf("block%d.mlp2", blk), FC, mlpDim, dim)
	}
	b.globalPool()
	b.fc("head", b.m.Dataset.Classes)
	return b.build()
}

// AllWorkloads returns the nine model/dataset pairs of the paper's
// evaluation (Fig. 8 order): five CIFAR-10 models, two CIFAR-100 models,
// two TinyImageNet models.
func AllWorkloads() []*Model {
	return []*Model{
		NewResNet18(),
		NewVGG11(),
		NewGoogLeNet(),
		NewDenseNet121(),
		NewViT(),
		NewResNet34(),
		NewVGG16(),
		NewResNet50(),
		NewVGG19(),
	}
}

// ByName returns the named zoo model (including extension workloads), or
// an error listing valid names.
func ByName(name string) (*Model, error) {
	for _, m := range ExtendedWorkloads() {
		if m.Name == name {
			return m, nil
		}
	}
	var names []string
	for _, m := range ExtendedWorkloads() {
		names = append(names, m.Name)
	}
	return nil, fmt.Errorf("dnn: unknown model %q (have %v)", name, names)
}
