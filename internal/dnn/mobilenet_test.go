package dnn

import "testing"

func TestMobileNetV2Structure(t *testing.T) {
	t.Parallel()
	m := NewMobileNetV2()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// stem + (2 + 16×3) block layers + head + fc = 53.
	if len(m.Layers) != 53 {
		t.Fatalf("MobileNetV2 has %d layers, want 53", len(m.Layers))
	}
	dw := 0
	for _, l := range m.Layers {
		if l.GroupCount() > 1 {
			dw++
			if l.Groups != l.InChannels || l.Groups != l.OutChannels {
				t.Errorf("%s is grouped but not depthwise: %d groups, %d->%d",
					l.Name, l.Groups, l.InChannels, l.OutChannels)
			}
			if l.RowsRequired() != 9 {
				t.Errorf("%s depthwise rows = %d, want 9", l.Name, l.RowsRequired())
			}
		}
	}
	if dw != 17 {
		t.Fatalf("MobileNetV2 has %d depthwise layers, want 17 (one per block)", dw)
	}
	// ≈2.3 M parameters for the CIFAR variant.
	if w := m.TotalWeights(); w < 2_000_000 || w > 3_000_000 {
		t.Fatalf("MobileNetV2 weights = %d, want ≈ 2.3M", w)
	}
	head := m.Layers[len(m.Layers)-1]
	if head.InChannels != 1280 || head.OutChannels != 10 {
		t.Fatalf("classifier shape wrong: %+v", head)
	}
}

func TestGroupedLayerArithmetic(t *testing.T) {
	t.Parallel()
	l := Layer{Name: "dw", Type: Conv, KernelH: 3, KernelW: 3,
		InChannels: 64, OutChannels: 64, InH: 16, InW: 16, Stride: 1, Groups: 64}
	if l.Weights() != 9*64 {
		t.Fatalf("depthwise weights = %d, want 576", l.Weights())
	}
	if l.RowsRequired() != 9 {
		t.Fatalf("depthwise rows = %d, want 9", l.RowsRequired())
	}
	grouped := Layer{Name: "g", Type: Conv, KernelH: 1, KernelW: 1,
		InChannels: 64, OutChannels: 128, InH: 8, InW: 8, Stride: 1, Groups: 4}
	if grouped.Weights() != 16*128 {
		t.Fatalf("grouped weights = %d, want 2048", grouped.Weights())
	}
}

func TestGroupedLayerValidation(t *testing.T) {
	t.Parallel()
	bad := Layer{Name: "x", KernelH: 3, KernelW: 3, InChannels: 10,
		OutChannels: 10, InH: 8, InW: 8, Stride: 1, Groups: 3} // 10 % 3 != 0
	if err := bad.Validate(); err == nil {
		t.Fatal("indivisible groups accepted")
	}
	neg := bad
	neg.Groups = -1
	if err := neg.Validate(); err == nil {
		t.Fatal("negative groups accepted")
	}
}

func TestExtendedWorkloads(t *testing.T) {
	t.Parallel()
	ext := ExtendedWorkloads()
	if len(ext) != 10 {
		t.Fatalf("extended zoo has %d models, want 10", len(ext))
	}
	if _, err := ByName("MobileNetV2"); err != nil {
		t.Fatalf("MobileNetV2 not resolvable: %v", err)
	}
	// The paper's evaluation set stays exactly nine.
	if len(AllWorkloads()) != 9 {
		t.Fatal("AllWorkloads must remain the paper's nine")
	}
}
