package dnn

import "fmt"

// MobileNetV2 is an extension workload beyond the paper's nine: its
// depthwise-separable blocks exercise the grouped-convolution mapping path
// (tiny 9-row blocks packed block-diagonally into crossbars), a layer shape
// none of the paper's models contain.

// dwConv appends a depthwise 3×3 convolution (groups = channels).
func (b *builder) dwConv(name string, stride int) {
	l := Layer{
		Name: name, Type: Conv,
		KernelH: 3, KernelW: 3,
		InChannels: b.c, OutChannels: b.c,
		InH: b.h, InW: b.w,
		Stride: stride,
		Groups: b.c,
	}
	b.m.Layers = append(b.m.Layers, l)
	b.h, b.w = l.OutH(), l.OutW()
}

// invertedResidual appends one MobileNetV2 block: 1×1 expansion (skipped
// when the ratio is 1), depthwise 3×3, and 1×1 projection.
func (b *builder) invertedResidual(name string, expand, out, stride int) {
	if expand != 1 {
		b.conv(name+".expand", 1, b.c*expand, 1)
	}
	b.dwConv(name+".dw", stride)
	b.conv(name+".project", 1, out, 1)
}

// NewMobileNetV2 builds the CIFAR-10 MobileNetV2 (stem, 17 inverted
// residual blocks, 1×1 head conv, classifier; 52 weight layers).
func NewMobileNetV2() *Model {
	b := newBuilder("MobileNetV2", CIFAR10, 0.936)
	b.conv("stem", 3, 32, 1)
	// (expansion, out channels, repeats, first stride) per stage.
	stages := []struct{ t, c, n, s int }{
		{1, 16, 1, 1},
		{6, 24, 2, 1}, // stride 1 on CIFAR's 32×32 input
		{6, 32, 3, 2},
		{6, 64, 4, 2},
		{6, 96, 3, 1},
		{6, 160, 3, 2},
		{6, 320, 1, 1},
	}
	blk := 0
	for _, st := range stages {
		for i := 0; i < st.n; i++ {
			stride := 1
			if i == 0 {
				stride = st.s
			}
			b.invertedResidual(fmt.Sprintf("block%d", blk), st.t, st.c, stride)
			blk++
		}
	}
	b.conv("head", 1, 1280, 1)
	b.globalPool()
	b.fc("fc", b.m.Dataset.Classes)
	return b.build()
}

// ExtendedWorkloads returns the paper's nine workloads plus the extension
// models this reproduction adds.
func ExtendedWorkloads() []*Model {
	return append(AllWorkloads(), NewMobileNetV2())
}
