package lint

import (
	"strings"
	"testing"
)

// TestModuleIsClean runs the full analyzer registry over the real module
// — the same invocation as `make lint` and the CI gate, including the same
// exemption set (internal/clock/real.go is the single sanctioned wall-clock
// read; live binaries inject it, results never depend on it). Any new
// violation of the determinism / float / unit / panic / error contracts
// fails this test; fix the code or add a justified //lint:allow directive
// at the site.
func TestModuleIsClean(t *testing.T) {
	t.Parallel()
	pkgs, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader is missing module packages", len(pkgs))
	}
	seen := map[string]bool{}
	for _, p := range pkgs {
		seen[p.Path] = true
	}
	for _, want := range []string{"odin", "odin/internal/rng", "odin/internal/lint", "odin/cmd/odinlint", "odin/internal/experiments"} {
		if !seen[want] {
			t.Fatalf("package %s not loaded; got %d packages", want, len(pkgs))
		}
	}
	diags := Run(pkgs, Analyzers(), Config{Exempt: map[string][]string{
		"nondeterminism": {"internal/clock/real.go"},
	}})
	if len(diags) > 0 {
		var b strings.Builder
		for _, d := range diags {
			b.WriteString("\n  ")
			b.WriteString(d.String())
		}
		t.Fatalf("module has %d lint finding(s):%s", len(diags), b.String())
	}
}
