// Package flow upgrades odinlint from per-file pattern matching to
// interprocedural dataflow. It builds a module-wide call graph over the
// go/types-checked ASTs that internal/lint loads, runs a worklist taint
// solver on top of it, and registers four module-level analyzers:
//
//   - detflow: nondeterminism taint — wall-clock reads, map iteration
//     order, select arbitration, goroutine completion order — propagated
//     through the call graph into anything that writes serialized or
//     exported output. Catches the laundered violations the per-file
//     nondeterminism rule provably misses: a helper that returns
//     time.Now-derived data through two call hops, a slice appended in map
//     order and printed by a distant caller.
//   - clockonly: every wall-clock read must be confined to internal/clock.
//     Flags direct time.Now/Since/Sleep/... calls outside that package,
//     clock.NewReal construction outside live binaries (cmd/), and —
//     interprocedurally — calls into module helpers that transitively
//     reach a raw wall-clock read, even when the direct site carries an
//     allow directive (an allow covers one site, not its launderers).
//   - lockflow: a mutex held across a blocking channel operation (send,
//     receive, default-less select, range-over-channel, sync.WaitGroup.Wait,
//     time.Sleep), directly or through a callee that may block. This is the
//     machine check for the PR 2 wake-signaling deadlock shape.
//   - leakcheck: a goroutine launched with no reachable join path — no
//     sync.WaitGroup.Done, no range over a module-closed channel, no
//     receive on a done/quit channel, no completion signal it sends or
//     closes that anyone receives. These are the leak shapes the serve
//     drain contract forbids.
//
// Like the rest of odinlint, the engine is stdlib-only (go/ast, go/types);
// soundness limits are documented in DESIGN.md §11. The analyzers register
// themselves in the odinlint registry on import:
//
//	import _ "odin/internal/lint/flow"
package flow

import (
	"sync"

	"odin/internal/lint"
)

func init() {
	lint.Register(DetflowAnalyzer)
	lint.Register(ClockonlyAnalyzer)
	lint.Register(LockflowAnalyzer)
	lint.Register(LeakcheckAnalyzer)
}

// shared caches one call graph per package set, so the four analyzers run
// against a single graph build instead of four. Keyed on the first package
// pointer: lint.Run hands every module analyzer the identical slice.
var shared struct {
	mu    sync.Mutex
	key   *lint.Package
	graph *Graph
}

// graphFor returns the (possibly cached) call graph for the pass's package
// set.
func graphFor(mp *lint.ModulePass) *Graph {
	shared.mu.Lock()
	defer shared.mu.Unlock()
	if len(mp.Pkgs) == 0 {
		return NewGraph(nil)
	}
	if shared.key == mp.Pkgs[0] && shared.graph != nil {
		return shared.graph
	}
	g := NewGraph(mp.Pkgs)
	shared.key, shared.graph = mp.Pkgs[0], g
	return g
}
