package flow

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"odin/internal/lint"
)

// Node is one analyzable function body: a declared function or method, or
// a goroutine-launched function literal (synthetic node — Fn is nil and
// GoLit is set). Function literals that are not launched with `go` are
// analyzed as part of their enclosing function, so closure-heavy code
// attributes its calls to the function that actually runs them.
type Node struct {
	// Fn is the declared function object; nil for goroutine literals.
	Fn *types.Func
	// Pkg is the package owning the body.
	Pkg *lint.Package
	// Decl is the declaration (nil for goroutine literals).
	Decl *ast.FuncDecl
	// GoLit is the launched literal for synthetic goroutine nodes.
	GoLit *ast.FuncLit
	// Body is the function body (never nil; bodyless declarations get no
	// node).
	Body *ast.BlockStmt

	// Calls lists every synchronous call site in the body, including calls
	// inside non-goroutine function literals and deferred calls.
	Calls []Edge
	// Gos lists every goroutine launch in the body.
	Gos []GoSite
	// Callers is the reverse adjacency: module nodes with a synchronous
	// call edge to this node.
	Callers []*Node
}

// Name renders a human-readable identifier for diagnostics.
func (n *Node) Name() string {
	if n.Fn != nil {
		return n.Fn.Name()
	}
	return "goroutine literal"
}

// InCommandLayer reports whether the node lives under cmd/ or examples/.
func (n *Node) InCommandLayer() bool {
	rel := strings.TrimPrefix(n.Pkg.Path, n.Pkg.ModulePath)
	rel = strings.TrimPrefix(rel, "/")
	return strings.HasPrefix(rel, "cmd/") || strings.HasPrefix(rel, "examples/") ||
		rel == "cmd" || rel == "examples"
}

// Edge is one synchronous call site. Exactly one of Callee (module-internal
// target) and Ext (external target, typically stdlib) is set; interface
// method calls produce one edge per module implementation. Calls through
// function values resolve to neither and produce no edge — a documented
// false-negative shape (DESIGN.md §11).
type Edge struct {
	Site   *ast.CallExpr
	Callee *Node
	Ext    *types.Func
}

// GoSite is one goroutine launch.
type GoSite struct {
	Stmt *ast.GoStmt
	// Lit is the launched node for `go func(){...}()` launches.
	Lit *Node
	// Callees are the launched module functions for named launches
	// (several for interface-method launches).
	Callees []*Node
	// Ext is the launched external function, when the target is not in the
	// module.
	Ext *types.Func
}

// Graph is the module-wide call graph.
type Graph struct {
	// Nodes holds every analyzable body in deterministic order: declared
	// functions first (package path, then source position), goroutine
	// literals interleaved after their enclosing declaration.
	Nodes []*Node

	byFn    map[*types.Func]*Node
	methods map[string][]*Node // method name -> method nodes, for interface resolution
}

// NodeOf returns the node for a declared function, or nil.
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.byFn[fn] }

// NewGraph builds the call graph for the package set: one node per
// function declaration with a body, plus synthetic nodes for goroutine
// literals, with static call edges, interface calls resolved to every
// module implementation, and reverse adjacency.
func NewGraph(pkgs []*lint.Package) *Graph {
	g := &Graph{
		byFn:    make(map[*types.Func]*Node),
		methods: make(map[string][]*Node),
	}
	// Pass 1: declare nodes, so edge resolution sees the full function set.
	var decls []*Node
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := &Node{Fn: fn, Pkg: pkg, Decl: fd, Body: fd.Body}
				g.byFn[fn] = n
				decls = append(decls, n)
				if fd.Recv != nil {
					g.methods[fn.Name()] = append(g.methods[fn.Name()], n)
				}
			}
		}
	}
	sort.SliceStable(decls, func(i, j int) bool {
		if decls[i].Pkg.Path != decls[j].Pkg.Path {
			return decls[i].Pkg.Path < decls[j].Pkg.Path
		}
		return decls[i].Decl.Pos() < decls[j].Decl.Pos()
	})
	// Pass 2: walk bodies, creating edges and goroutine nodes.
	for _, n := range decls {
		g.Nodes = append(g.Nodes, n)
		g.walkBody(n)
	}
	// Pass 3: reverse adjacency.
	for _, n := range g.Nodes {
		for _, e := range n.Calls {
			if e.Callee != nil {
				e.Callee.Callers = append(e.Callee.Callers, n)
			}
		}
	}
	return g
}

// walkBody fills n.Calls and n.Gos, descending into non-goroutine function
// literals (attributed to n) and spinning off synthetic nodes for
// goroutine literals. Appends goroutine nodes to g.Nodes (and walks them,
// recursively).
func (g *Graph) walkBody(n *Node) {
	ast.Inspect(n.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.GoStmt:
			site := GoSite{Stmt: node}
			if lit, ok := ast.Unparen(node.Call.Fun).(*ast.FuncLit); ok {
				ln := &Node{Pkg: n.Pkg, GoLit: lit, Body: lit.Body}
				site.Lit = ln
				g.Nodes = append(g.Nodes, ln)
				g.walkBody(ln)
			} else {
				callees, ext := g.resolve(n.Pkg, node.Call)
				site.Callees, site.Ext = callees, ext
			}
			n.Gos = append(n.Gos, site)
			// Launch arguments evaluate synchronously in the launcher.
			for _, arg := range node.Call.Args {
				g.walkExpr(n, arg)
			}
			return false
		case *ast.CallExpr:
			callees, ext := g.resolve(n.Pkg, node)
			for _, c := range callees {
				n.Calls = append(n.Calls, Edge{Site: node, Callee: c})
			}
			if ext != nil {
				n.Calls = append(n.Calls, Edge{Site: node, Ext: ext})
			}
			return true
		}
		return true
	})
}

// walkExpr records call edges inside an expression subtree (used for
// goroutine launch arguments, which run synchronously).
func (g *Graph) walkExpr(n *Node, e ast.Expr) {
	ast.Inspect(e, func(node ast.Node) bool {
		if call, ok := node.(*ast.CallExpr); ok {
			callees, ext := g.resolve(n.Pkg, call)
			for _, c := range callees {
				n.Calls = append(n.Calls, Edge{Site: call, Callee: c})
			}
			if ext != nil {
				n.Calls = append(n.Calls, Edge{Site: call, Ext: ext})
			}
		}
		return true
	})
}

// resolve maps a call expression to its targets. Interface method calls
// resolve to every module method implementing the interface; static calls
// resolve to one module node or one external function. Builtins,
// conversions, and calls of function-typed values resolve to nothing.
func (g *Graph) resolve(pkg *lint.Package, call *ast.CallExpr) ([]*Node, *types.Func) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil, nil
	}
	fn, _ := pkg.Info.ObjectOf(id).(*types.Func)
	if fn == nil {
		return nil, nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
			return g.implementers(fn.Name(), iface), fn
		}
	}
	if n := g.byFn[fn]; n != nil {
		return []*Node{n}, nil
	}
	return nil, fn
}

// implementers returns the module methods named name whose receiver type
// satisfies iface. The dynamic callee of an interface call is any of them
// (plus unknown external implementations — the returned Ext edge keeps the
// interface method visible to external predicates).
func (g *Graph) implementers(name string, iface *types.Interface) []*Node {
	var out []*Node
	for _, m := range g.methods[name] {
		sig := m.Fn.Type().(*types.Signature)
		recv := sig.Recv().Type()
		if types.Implements(recv, iface) {
			out = append(out, m)
			continue
		}
		// Value receivers implement through the pointer type too; pointer
		// receivers only through it.
		if _, isPtr := recv.Underlying().(*types.Pointer); !isPtr {
			if types.Implements(types.NewPointer(recv), iface) {
				out = append(out, m)
			}
		}
	}
	return out
}

// Reaching computes the set of nodes from which a matching call is
// transitively reachable along synchronous call edges: every node where
// seed is true or that calls an external function matching ext, plus every
// node with a call chain into that set. Nodes where barrier is true
// neither seed nor propagate — they are sanctioned laundering points (the
// internal/clock package for wall-clock analyses). Goroutine launches are
// not followed: what a launched goroutine does is not something its
// launcher waits on. Either predicate may be nil.
func (g *Graph) Reaching(seed func(*Node) bool, ext func(*types.Func) bool, barrier func(*Node) bool) map[*Node]bool {
	reached := make(map[*Node]bool)
	var queue []*Node
	mark := func(n *Node) {
		if reached[n] || (barrier != nil && barrier(n)) {
			return
		}
		reached[n] = true
		queue = append(queue, n)
	}
	for _, n := range g.Nodes {
		if seed != nil && seed(n) {
			mark(n)
			continue
		}
		if ext != nil {
			for _, e := range n.Calls {
				if e.Ext != nil && ext(e.Ext) {
					mark(n)
					break
				}
			}
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, caller := range n.Callers {
			mark(caller)
		}
	}
	return reached
}

// rootObject resolves the variable or field identifying an lvalue-ish
// expression: the selected field for selector chains (s.jobs and t.chip.jobs
// share the jobs field object — channel identity is field-level, not
// instance-level), the variable for plain identifiers, looking through
// parens, indexing, and dereference.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			return info.ObjectOf(x.Sel)
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// extIs reports whether fn is the named function/method of the named
// package (fn.Pkg is nil for error.Error and friends).
func extIs(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}
