package flow

import (
	"go/types"
	"strings"

	"odin/internal/lint"
)

// ClockonlyAnalyzer structurally enforces the PR 2 invariant that every
// wall-clock read in the module is confined to internal/clock (clock.Real
// being the single sanctioned read, injected only by live binaries):
//
//  1. direct time.Now/Since/Until/Sleep/After/... calls outside
//     internal/clock are flagged at the call site;
//  2. clock.NewReal construction outside cmd/ and examples/ is flagged —
//     simulation and library code must accept an injected clock.Clock;
//  3. interprocedurally, a call into any module function that transitively
//     reaches a raw wall-clock read (or constructs Real) is flagged at the
//     call edge. An inline allow on the direct read covers that one site,
//     not the helpers that launder it — each laundering edge needs its own
//     reviewed justification.
//
// internal/clock itself is the sanctioned boundary: reads inside it do not
// propagate (the Virtual/Real split plus the nondeterminism path exemption
// govern that package), so code calling clock.Clock.Now stays clean.
var ClockonlyAnalyzer = &lint.Analyzer{
	Name:      "clockonly",
	Doc:       "wall-clock reads must be confined to internal/clock; core code takes an injected clock.Clock and never constructs clock.Real",
	RunModule: runClockonly,
}

// wallClockFuncs are the time package entry points that observe or depend
// on real time. Unlike the per-file nondeterminism rule this includes the
// sleep/timer family: real-time waits make replay timing-dependent.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
}

func isWallClockExt(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && wallClockFuncs[fn.Name()]
}

func runClockonly(mp *lint.ModulePass) {
	g := graphFor(mp)
	clockPkg := func(n *Node) bool {
		return n.Pkg.Path == n.Pkg.ModulePath+"/internal/clock"
	}
	isNewReal := func(n *Node) bool {
		return n.Fn != nil && n.Fn.Name() == "NewReal" && clockPkg(n)
	}
	// Nodes that transitively reach a raw wall-clock read or construct the
	// Real clock, with internal/clock itself as the barrier (minus NewReal:
	// constructing the wall clock is exactly what core code must not do).
	reaching := g.Reaching(
		func(n *Node) bool {
			if isNewReal(n) {
				return true
			}
			if clockPkg(n) {
				return false
			}
			for _, e := range n.Calls {
				if e.Ext != nil && isWallClockExt(e.Ext) {
					return true
				}
			}
			return false
		},
		nil,
		func(n *Node) bool { return clockPkg(n) && !isNewReal(n) },
	)
	for _, n := range g.Nodes {
		if clockPkg(n) {
			continue
		}
		cmdLayer := n.InCommandLayer()
		for _, e := range n.Calls {
			switch {
			case e.Ext != nil && isWallClockExt(e.Ext):
				mp.Reportf(n.Pkg, e.Site.Pos(),
					"time.%s reads the wall clock outside internal/clock; take an injected clock.Clock instead", e.Ext.Name())
			case e.Callee != nil && !cmdLayer && isNewReal(e.Callee):
				mp.Reportf(n.Pkg, e.Site.Pos(),
					"clock.NewReal constructs the wall clock outside a live binary (cmd/); accept an injected clock.Clock")
			case e.Callee != nil && !cmdLayer && reaching[e.Callee] && !isNewReal(e.Callee):
				mp.Reportf(n.Pkg, e.Site.Pos(),
					"call to %s transitively reads the wall clock (laundered wall-clock dependency); route time through an injected clock.Clock", calleeLabel(e.Callee))
			}
		}
	}
}

// calleeLabel renders a callee for diagnostics, package-qualified for
// cross-package edges.
func calleeLabel(n *Node) string {
	if n.Fn == nil {
		return "goroutine literal"
	}
	rel := strings.TrimPrefix(n.Pkg.Path, n.Pkg.ModulePath+"/")
	if i := strings.LastIndex(rel, "/"); i >= 0 {
		rel = rel[i+1:]
	}
	if sig, ok := n.Fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return rel + "." + recvTypeName(sig) + "." + n.Fn.Name()
	}
	return rel + "." + n.Fn.Name()
}

func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
