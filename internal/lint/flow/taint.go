package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Taint is a small lattice of nondeterminism reasons. A value's taint is
// the union of the sources it (transitively) derives from.
type Taint uint8

const (
	// TaintClock marks values derived from a wall-clock read.
	TaintClock Taint = 1 << iota
	// TaintMapOrder marks values whose content depends on map iteration
	// order (order-sensitive accumulation or sequence construction).
	TaintMapOrder
	// TaintSelect marks values assigned in more than one ready-arbitrated
	// select case (first-responder-wins races).
	TaintSelect
	// TaintGoOrder marks values received from a channel fed by several
	// goroutines, whose completion order is scheduler-chosen.
	TaintGoOrder
)

// String names the reasons, comma-separated, for diagnostics.
func (t Taint) String() string {
	var parts []string
	if t&TaintClock != 0 {
		parts = append(parts, "wall-clock time")
	}
	if t&TaintMapOrder != 0 {
		parts = append(parts, "map iteration order")
	}
	if t&TaintSelect != 0 {
		parts = append(parts, "select arbitration")
	}
	if t&TaintGoOrder != 0 {
		parts = append(parts, "goroutine completion order")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ", ")
}

// val is the abstract value of the taint interpreter: which sources the
// value derives from, which parameters of the enclosing function it
// derives from (a bitset, for building interprocedural summaries), and
// whether it derives from a map-range loop variable (the order-source
// marker that turns accumulation and append into TaintMapOrder).
type val struct {
	t      Taint
	params uint64
	order  bool
}

func (v val) union(w val) val {
	return val{t: v.t | w.t, params: v.params | w.params, order: v.order || w.order}
}

func (v val) eq(w val) bool { return v == w }

// summary is one function's interprocedural contract, computed to a
// fixpoint by the worklist solver.
type summary struct {
	// returns is taint carried by the function's results independent of
	// its arguments (e.g. it returns time.Now-derived data).
	returns Taint
	// paramToRet bit i means argument i flows into a result, so argument
	// taint passes through the call (identity-shaped helpers).
	paramToRet uint64
	// paramSink bit i means argument i flows into a serialized-output sink
	// inside the function (directly or through further calls).
	paramSink uint64
}

func (s summary) eq(o summary) bool { return s == o }

// taintAnalysis runs the module-wide nondeterminism taint solve.
type taintAnalysis struct {
	g    *Graph
	sums map[*Node]summary
	// sanitize marks nodes whose summaries are forced clean: the sanctioned
	// laundering boundary (internal/clock — the Virtual/Real split is
	// enforced separately, by clockonly and the nondeterminism exemption).
	sanitize func(*Node) bool
}

func newTaintAnalysis(g *Graph, sanitize func(*Node) bool) *taintAnalysis {
	return &taintAnalysis{g: g, sums: make(map[*Node]summary), sanitize: sanitize}
}

// solve iterates intraprocedural analysis over the call graph until every
// summary is stable. Summaries only grow, so the fixpoint terminates.
func (a *taintAnalysis) solve() {
	queued := make(map[*Node]bool, len(a.g.Nodes))
	var queue []*Node
	for _, n := range a.g.Nodes {
		queue = append(queue, n)
		queued[n] = true
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		queued[n] = false
		sum := a.analyze(n, nil)
		if a.sanitize != nil && a.sanitize(n) {
			sum = summary{}
		}
		if !sum.eq(a.sums[n]) {
			a.sums[n] = sum
			for _, caller := range n.Callers {
				if !queued[caller] {
					queued[caller] = true
					queue = append(queue, caller)
				}
			}
		}
	}
}

// report re-runs the interpreter over n with converged summaries, emitting
// every sink call whose argument carries taint.
func (a *taintAnalysis) report(n *Node, emit func(site ast.Node, t Taint, sink string)) {
	seen := make(map[token.Pos]bool)
	a.analyze(n, func(site ast.Node, t Taint, sink string) {
		if seen[site.Pos()] {
			return
		}
		seen[site.Pos()] = true
		emit(site, t, sink)
	})
}

// funcEval is one intraprocedural pass: a flow-insensitive fixpoint over
// the function body, with parameters seeded as themselves and callee
// effects taken from the current summaries.
type funcEval struct {
	a   *taintAnalysis
	n   *Node
	env map[types.Object]val
	// results are the named result objects (bare returns read them).
	results []types.Object
	// sorted holds objects passed to an in-place sort anywhere in the
	// function: the collect-then-sort idiom is sanctioned, so MapOrder is
	// masked on every write to them (conservatively keeping monotonicity;
	// a sort *after* the leak also masks — a documented soundness limit).
	sorted map[types.Object]bool
	// goChans holds channel objects fed by two or more goroutines (or one
	// launched in a loop): receives from them yield TaintGoOrder.
	goChans map[types.Object]bool
	sum     summary
	emit    func(site ast.Node, t Taint, sink string)
	changed bool
}

// analyze interprets n's body. With emit nil it computes the summary; with
// emit set it additionally reports tainted sink arguments.
func (a *taintAnalysis) analyze(n *Node, emit func(ast.Node, Taint, string)) summary {
	e := &funcEval{
		a:       a,
		n:       n,
		env:     make(map[types.Object]val),
		sorted:  make(map[types.Object]bool),
		goChans: make(map[types.Object]bool),
		emit:    emit,
	}
	e.prescan()
	e.seedParams()
	for pass := 0; pass < 32; pass++ {
		e.changed = false
		e.block(n.Body, false)
		if !e.changed {
			break
		}
	}
	return e.sum
}

// inPlaceSorts are stdlib functions that sort their argument in place.
var inPlaceSorts = map[string]map[string]bool{
	"sort":   {"Strings": true, "Ints": true, "Float64s": true, "Slice": true, "SliceStable": true, "Sort": true, "Stable": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// sortedCopies are stdlib functions returning a sorted copy: their result
// drops MapOrder.
var sortedCopies = map[string]bool{"Sorted": true, "SortedFunc": true, "SortedStableFunc": true}

// prescan finds (a) objects sorted in place anywhere in the function and
// (b) channels with order-nondeterministic producers: fed by goroutines
// launched in a loop, or by two or more goroutine launch sites.
func (e *funcEval) prescan() {
	ast.Inspect(e.n.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		id := calleeIdent(call)
		if id == nil {
			return true
		}
		fn, _ := e.n.Pkg.Info.ObjectOf(id).(*types.Func)
		if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
			return true
		}
		if byPkg := inPlaceSorts[fn.Pkg().Path()]; byPkg[fn.Name()] {
			if obj := rootObject(e.n.Pkg.Info, call.Args[0]); obj != nil {
				e.sorted[obj] = true
			}
		}
		return true
	})
	weights := make(map[types.Object]int)
	var scanGos func(node ast.Node, loopDepth int)
	scanGos = func(root ast.Node, depth int) {
		ast.Inspect(root, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.ForStmt:
				scanGos(node.Body, depth+1)
				return false
			case *ast.RangeStmt:
				scanGos(node.Body, depth+1)
				return false
			case *ast.GoStmt:
				lit, ok := ast.Unparen(node.Call.Fun).(*ast.FuncLit)
				if !ok {
					return false
				}
				w := 1
				if depth > 0 {
					w = 2 // launched per iteration: at least two producers
				}
				ast.Inspect(lit.Body, func(inner ast.Node) bool {
					if send, ok := inner.(*ast.SendStmt); ok {
						if obj := rootObject(e.n.Pkg.Info, send.Chan); obj != nil {
							weights[obj] += w
						}
					}
					return true
				})
				return false
			}
			return true
		})
	}
	scanGos(e.n.Body, 0)
	for obj, w := range weights {
		if w >= 2 {
			e.goChans[obj] = true
		}
	}
}

func (e *funcEval) seedParams() {
	idx := 0
	seed := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			for _, name := range f.Names {
				if obj := e.n.Pkg.Info.ObjectOf(name); obj != nil {
					e.set(obj, val{params: 1 << uint(idx&63)})
				}
				idx++
			}
			if len(f.Names) == 0 {
				idx++
			}
		}
	}
	var ft *ast.FuncType
	if e.n.Decl != nil {
		if e.n.Decl.Recv != nil {
			// The receiver counts as a leading parameter for summaries.
			seed(e.n.Decl.Recv)
		}
		ft = e.n.Decl.Type
	} else {
		ft = e.n.GoLit.Type
	}
	seed(ft.Params)
	if ft.Results != nil {
		for _, f := range ft.Results.List {
			for _, name := range f.Names {
				e.results = append(e.results, e.n.Pkg.Info.ObjectOf(name))
			}
		}
	}
}

// set joins v into obj's abstract value (weak update; sorted objects mask
// MapOrder).
func (e *funcEval) set(obj types.Object, v val) {
	if obj == nil {
		return
	}
	if e.sorted[obj] {
		v.t &^= TaintMapOrder
		v.order = false
	}
	nv := e.env[obj].union(v)
	if !nv.eq(e.env[obj]) {
		e.env[obj] = nv
		e.changed = true
	}
}

// block interprets a statement list. inLit is true inside non-goroutine
// function literals, whose return statements do not feed the summary.
func (e *funcEval) block(b *ast.BlockStmt, inLit bool) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		e.stmt(s, inLit)
	}
}

func (e *funcEval) stmt(s ast.Stmt, inLit bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		e.assign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				var rhs val
				for _, x := range vs.Values {
					rhs = rhs.union(e.expr(x))
				}
				for _, name := range vs.Names {
					e.set(e.n.Pkg.Info.ObjectOf(name), rhs)
				}
			}
		}
	case *ast.ExprStmt:
		e.expr(s.X)
	case *ast.SendStmt:
		e.expr(s.Chan)
		e.expr(s.Value)
	case *ast.IncDecStmt:
		e.expr(s.X)
	case *ast.ReturnStmt:
		if inLit {
			for _, r := range s.Results {
				e.expr(r)
			}
			return
		}
		if len(s.Results) == 0 {
			for _, obj := range e.results {
				if obj != nil {
					e.ret(e.env[obj])
				}
			}
			return
		}
		for _, r := range s.Results {
			e.ret(e.expr(r))
		}
	case *ast.IfStmt:
		if s.Init != nil {
			e.stmt(s.Init, inLit)
		}
		e.expr(s.Cond)
		e.block(s.Body, inLit)
		if s.Else != nil {
			e.stmt(s.Else, inLit)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			e.stmt(s.Init, inLit)
		}
		if s.Cond != nil {
			e.expr(s.Cond)
		}
		if s.Post != nil {
			e.stmt(s.Post, inLit)
		}
		e.block(s.Body, inLit)
	case *ast.RangeStmt:
		e.rangeStmt(s, inLit)
	case *ast.SelectStmt:
		e.selectStmt(s, inLit)
	case *ast.SwitchStmt:
		if s.Init != nil {
			e.stmt(s.Init, inLit)
		}
		if s.Tag != nil {
			e.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, x := range cc.List {
				e.expr(x)
			}
			for _, bs := range cc.Body {
				e.stmt(bs, inLit)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			e.stmt(s.Init, inLit)
		}
		e.stmt(s.Assign, inLit)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, bs := range cc.Body {
				e.stmt(bs, inLit)
			}
		}
	case *ast.BlockStmt:
		e.block(s, inLit)
	case *ast.DeferStmt:
		e.expr(s.Call)
	case *ast.GoStmt:
		// The launched body is its own node; launch arguments evaluate here.
		for _, arg := range s.Call.Args {
			e.expr(arg)
		}
	case *ast.LabeledStmt:
		e.stmt(s.Stmt, inLit)
	}
}

// ret folds a result value into the summary.
func (e *funcEval) ret(v val) {
	ns := e.sum
	ns.returns |= v.t
	ns.paramToRet |= v.params
	if !ns.eq(e.sum) {
		e.sum = ns
		e.changed = true
	}
}

// markParamSink records that the given parameters flow to a sink.
func (e *funcEval) markParamSink(params uint64) {
	if e.sum.paramSink&params != params {
		e.sum.paramSink |= params
		e.changed = true
	}
}

func (e *funcEval) assign(s *ast.AssignStmt) {
	var rhs []val
	for _, r := range s.Rhs {
		rhs = append(rhs, e.expr(r))
	}
	pick := func(i int) val {
		if len(s.Lhs) == len(s.Rhs) {
			return rhs[i]
		}
		var v val // tuple assignment: every target gets the union
		for _, r := range rhs {
			v = v.union(r)
		}
		return v
	}
	for i, lhs := range s.Lhs {
		v := pick(i)
		obj := rootObject(e.n.Pkg.Info, lhs)
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			// Order-sensitive accumulation: folding map-loop-derived floats
			// is where iteration order changes rounding.
			if v.order && isFloatType(e.n.Pkg.Info, lhs) {
				v.t |= TaintMapOrder
			}
			if obj != nil {
				v = v.union(e.env[obj])
			}
		case token.ASSIGN, token.DEFINE:
		default: // other compound ops (|=, &=, ...): plain join
			if obj != nil {
				v = v.union(e.env[obj])
			}
		}
		e.set(obj, v)
	}
}

func (e *funcEval) rangeStmt(s *ast.RangeStmt, inLit bool) {
	xv := e.expr(s.X)
	t := e.n.Pkg.Info.TypeOf(s.X)
	keyObj := rootObject(e.n.Pkg.Info, s.Key)
	valObj := rootObject(e.n.Pkg.Info, s.Value)
	switch {
	case t != nil && isMap(t):
		// Loop variables carry the order-source marker: deriving a
		// sequence or a float accumulation from them is order-sensitive.
		e.set(keyObj, val{order: true})
		e.set(valObj, val{order: true})
	case t != nil && isChan(t):
		v := val{}
		if obj := rootObject(e.n.Pkg.Info, s.X); obj != nil && e.goChans[obj] {
			v.t |= TaintGoOrder
		}
		e.set(keyObj, v)
	default:
		e.set(keyObj, val{})
		e.set(valObj, xv)
	}
	e.block(s.Body, inLit)
}

// selectStmt marks variables assigned in two or more comm clauses of the
// same select: which clause ran is runtime arbitration, so such a variable
// is a first-responder-wins race.
func (e *funcEval) selectStmt(s *ast.SelectStmt, inLit bool) {
	counts := make(map[types.Object]int)
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		perClause := make(map[types.Object]bool)
		collect := func(n ast.Node) {
			ast.Inspect(n, func(node ast.Node) bool {
				as, ok := node.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for _, lhs := range as.Lhs {
					if obj := rootObject(e.n.Pkg.Info, lhs); obj != nil {
						perClause[obj] = true
					}
				}
				return true
			})
		}
		if cc.Comm != nil {
			collect(cc.Comm)
		}
		for _, bs := range cc.Body {
			collect(bs)
		}
		for obj := range perClause {
			counts[obj]++
		}
	}
	for obj, c := range counts {
		if c >= 2 {
			e.set(obj, val{t: TaintSelect})
		}
	}
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		if cc.Comm != nil {
			e.stmt(cc.Comm, inLit)
		}
		for _, bs := range cc.Body {
			e.stmt(bs, inLit)
		}
	}
}

func (e *funcEval) expr(x ast.Expr) val {
	switch x := x.(type) {
	case nil:
		return val{}
	case *ast.Ident:
		if obj := e.n.Pkg.Info.ObjectOf(x); obj != nil {
			return e.env[obj]
		}
		return val{}
	case *ast.BasicLit:
		return val{}
	case *ast.FuncLit:
		// Non-goroutine literal: its body runs with the enclosing env
		// (captured variables resolve to the same objects); its returns
		// belong to the literal, not the enclosing function.
		e.block(x.Body, true)
		return val{}
	case *ast.ParenExpr:
		return e.expr(x.X)
	case *ast.StarExpr:
		return e.expr(x.X)
	case *ast.TypeAssertExpr:
		return e.expr(x.X)
	case *ast.SliceExpr:
		v := e.expr(x.X)
		e.expr(x.Low)
		e.expr(x.High)
		e.expr(x.Max)
		return v
	case *ast.IndexExpr:
		return e.expr(x.X).union(e.expr(x.Index))
	case *ast.IndexListExpr:
		return e.expr(x.X)
	case *ast.BinaryExpr:
		return e.expr(x.X).union(e.expr(x.Y))
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			if obj := rootObject(e.n.Pkg.Info, x.X); obj != nil && e.goChans[obj] {
				return val{t: TaintGoOrder}
			}
			return val{}
		}
		return e.expr(x.X)
	case *ast.SelectorExpr:
		if obj := e.n.Pkg.Info.ObjectOf(x.Sel); obj != nil {
			if _, isPkg := e.n.Pkg.Info.ObjectOf(baseIdent(x.X)).(*types.PkgName); isPkg {
				return e.env[obj]
			}
		}
		return e.expr(x.X)
	case *ast.CompositeLit:
		var v val
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = v.union(e.expr(kv.Value))
				continue
			}
			v = v.union(e.expr(el))
		}
		return v
	case *ast.KeyValueExpr:
		return e.expr(x.Value)
	case *ast.CallExpr:
		return e.call(x)
	}
	return val{}
}

// baseIdent returns x as an identifier, or nil.
func baseIdent(x ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(x).(*ast.Ident)
	return id
}

func (e *funcEval) call(call *ast.CallExpr) val {
	info := e.n.Pkg.Info
	// Conversions propagate their operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		var v val
		for _, a := range call.Args {
			v = v.union(e.expr(a))
		}
		return v
	}
	// Builtins.
	if id := calleeIdent(call); id != nil {
		if _, ok := info.ObjectOf(id).(*types.Builtin); ok {
			return e.builtin(id.Name, call)
		}
	}
	callees, ext := e.a.g.resolve(e.n.Pkg, call)
	var v val
	var args []val
	for _, a := range call.Args {
		args = append(args, e.expr(a))
	}
	reportSink := func(fn *types.Func) {
		start, ok := sinkArgs(fn)
		if !ok {
			return
		}
		for j := start; j < len(args); j++ {
			if args[j].t != 0 && e.emit != nil {
				e.emit(call.Args[j], args[j].t, sinkName(fn))
			}
			if args[j].params != 0 {
				e.markParamSink(args[j].params)
			}
		}
	}
	for _, c := range callees {
		sum := e.a.sums[c]
		v.t |= sum.returns
		// The receiver of a method occupies summary slot 0; call arguments
		// follow. Align: methods called as x.m(a, b) pass x as param 0.
		shift := 0
		if c.Fn != nil {
			if sig, ok := c.Fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				shift = 1
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					rv := e.expr(sel.X)
					if sum.paramToRet&1 != 0 {
						v = v.union(rv)
					}
					if sum.paramSink&1 != 0 {
						if rv.t != 0 && e.emit != nil {
							e.emit(sel.X, rv.t, c.Fn.Name())
						}
						e.markParamSink(rv.params)
					}
				}
			}
		}
		for i, av := range args {
			bit := uint64(1) << uint((i+shift)&63)
			if sum.paramToRet&bit != 0 {
				v = v.union(av)
			}
			if sum.paramSink&bit != 0 {
				if av.t != 0 && e.emit != nil {
					e.emit(call.Args[i], av.t, c.Name())
				}
				e.markParamSink(av.params)
			}
		}
		if c.Fn != nil {
			reportSink(c.Fn)
		}
	}
	if ext != nil {
		v = v.union(e.extCall(ext, call, args))
		reportSink(ext)
	}
	if callees == nil && ext == nil {
		// Unresolved (function value): propagate arguments conservatively.
		for _, av := range args {
			v = v.union(av)
		}
	}
	return v
}

// extCall models an external (stdlib) callee.
func (e *funcEval) extCall(fn *types.Func, call *ast.CallExpr, args []val) val {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	switch {
	case pkg == "time" && (fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until"):
		return val{t: TaintClock}
	case pkg == "slices" && sortedCopies[fn.Name()]:
		var v val
		for _, av := range args {
			v = v.union(av)
		}
		v.t &^= TaintMapOrder
		v.order = false
		return v
	}
	// Default: external calls propagate their arguments (fmt.Sprintf,
	// strconv, strings.Join, ... all behave this way) and, for methods,
	// their receiver.
	var v val
	for _, av := range args {
		v = v.union(av)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			v = v.union(e.expr(sel.X))
		}
	}
	return v
}

func (e *funcEval) builtin(name string, call *ast.CallExpr) val {
	var args []val
	for _, a := range call.Args {
		args = append(args, e.expr(a))
	}
	switch name {
	case "append":
		v := args[0]
		for _, av := range args[1:] {
			v = v.union(av)
			if av.order {
				// Appending map-loop-derived elements builds a sequence in
				// iteration order.
				v.t |= TaintMapOrder
			}
		}
		return v
	case "len", "cap":
		// Length is order-insensitive.
		var v val
		for _, av := range args {
			v = v.union(av)
		}
		v.t &^= TaintMapOrder
		v.order = false
		return v
	case "copy":
		if len(call.Args) == 2 {
			e.set(rootObject(e.n.Pkg.Info, call.Args[0]), args[1])
		}
		return val{}
	default:
		return val{}
	}
}

func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun
	case *ast.SelectorExpr:
		return fun.Sel
	}
	return nil
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isChan(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func isFloatType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
