package flow

import (
	"go/ast"
	"go/types"

	"odin/internal/lint"
)

// LeakcheckAnalyzer flags goroutine launches with no reachable join or
// termination path. A launch is considered joined when the launched body
// (or a transitive synchronous callee of it) does at least one of:
//
//   - call sync.WaitGroup.Done — the launcher-side Wait is the join;
//   - range over a channel that the module close()s somewhere — the range
//     terminates at drain time;
//   - receive from a done/quit channel the module closes or sends to, or
//     from a context Done() channel;
//   - send to or close a completion channel that the module receives from
//     somewhere — the goroutine signals, a counterpart consumes.
//
// Anything else is a goroutine nothing can wait for: the leak shape the
// serve drain contract ("every worker joined, every request answered
// exactly once") forbids. cmd/ and examples/ are exempt — process-lifetime
// goroutines in live binaries are joined by exit.
//
// Channel identity is field-level (rootObject): s.queue in the worker and
// close(s.queue) in drain match through the shared field object. Launches
// of function values (`go fn()` where fn is a variable) resolve to no node
// and are skipped — a documented false-negative shape (DESIGN.md §11).
var LeakcheckAnalyzer = &lint.Analyzer{
	Name:      "leakcheck",
	Doc:       "every goroutine outside cmd/ must have a reachable join: WaitGroup.Done, range over a closed channel, a done-channel receive, or a consumed completion signal",
	RunModule: runLeakcheck,
}

// chanUse is the module-wide channel usage registry, keyed by the
// field/variable object identifying the channel.
type chanUse struct {
	closed map[types.Object]bool // passed to builtin close()
	sent   map[types.Object]bool // target of a channel send
	recvd  map[types.Object]bool // received from (<-x, range x, select comm)
}

func collectChanUse(g *Graph) *chanUse {
	u := &chanUse{
		closed: make(map[types.Object]bool),
		sent:   make(map[types.Object]bool),
		recvd:  make(map[types.Object]bool),
	}
	for _, n := range g.Nodes {
		info := n.Pkg.Info
		ast.Inspect(n.Body, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.CallExpr:
				if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok && id.Name == "close" {
					if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin && len(node.Args) == 1 {
						if obj := rootObject(info, node.Args[0]); obj != nil {
							u.closed[obj] = true
						}
					}
				}
			case *ast.SendStmt:
				if obj := rootObject(info, node.Chan); obj != nil {
					u.sent[obj] = true
				}
			case *ast.UnaryExpr:
				if node.Op.String() == "<-" {
					if obj := rootObject(info, node.X); obj != nil {
						u.recvd[obj] = true
					}
				}
			case *ast.RangeStmt:
				if isChanExpr(info, node.X) {
					if obj := rootObject(info, node.X); obj != nil {
						u.recvd[obj] = true
					}
				}
			}
			return true
		})
	}
	return u
}

func runLeakcheck(mp *lint.ModulePass) {
	g := graphFor(mp)
	use := collectChanUse(g)
	// joinable: nodes that directly contain a join/termination pattern, or
	// call sync.WaitGroup.Done, closed over transitive synchronous callers —
	// a launched function is joined if anything it synchronously calls joins.
	joinable := g.Reaching(
		func(n *Node) bool { return directlyJoins(n, use) },
		func(fn *types.Func) bool {
			return fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Done"
		},
		nil,
	)
	for _, n := range g.Nodes {
		if n.InCommandLayer() {
			continue
		}
		for _, site := range n.Gos {
			targets := site.Callees
			if site.Lit != nil {
				targets = []*Node{site.Lit}
			}
			if len(targets) == 0 {
				continue // ext or func-value launch: unresolvable, documented false negative
			}
			joined := false
			for _, t := range targets {
				if joinable[t] {
					joined = true
					break
				}
			}
			if !joined {
				mp.Reportf(n.Pkg, site.Stmt.Pos(),
					"goroutine launched without a reachable join: no WaitGroup.Done, no range over a closed channel, no done-channel receive, no consumed completion signal; the drain contract cannot account for it")
			}
		}
	}
}

// directlyJoins reports whether the node's own body (excluding nested
// goroutine literals) contains a join/termination pattern per the module
// channel registry.
func directlyJoins(n *Node, use *chanUse) bool {
	info := n.Pkg.Info
	found := false
	inspectOwn(n.Body, func(node ast.Node) bool {
		if found {
			return false
		}
		switch node := node.(type) {
		case *ast.RangeStmt:
			if isChanExpr(info, node.X) {
				if obj := rootObject(info, node.X); obj != nil && use.closed[obj] {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if node.Op.String() == "<-" {
				// <-ctx.Done() style: receiving from a Done() method result is
				// the context cancellation pattern.
				if call, ok := ast.Unparen(node.X).(*ast.CallExpr); ok {
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
						found = true
						return false
					}
				}
				if obj := rootObject(info, node.X); obj != nil && (use.closed[obj] || use.sent[obj]) {
					found = true
				}
			}
		case *ast.SendStmt:
			if obj := rootObject(info, node.Chan); obj != nil && use.recvd[obj] {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin && len(node.Args) == 1 {
					if obj := rootObject(info, node.Args[0]); obj != nil && use.recvd[obj] {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}
