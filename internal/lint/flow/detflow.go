package flow

import (
	"go/ast"
	"go/types"
	"strings"

	"odin/internal/lint"
)

// DetflowAnalyzer is the interprocedural nondeterminism-taint rule: values
// derived from wall-clock reads, map iteration order, select arbitration,
// or goroutine completion order must not reach serialized or exported
// output (fmt writers, io.Writer.Write, encoding/json, os.WriteFile,
// telemetry samples) — no matter how many function calls launder them on
// the way. The per-file nondeterminism rule catches the direct patterns;
// detflow catches the helpers.
var DetflowAnalyzer = &lint.Analyzer{
	Name:      "detflow",
	Doc:       "nondeterminism taint (wall clock, map order, select races, goroutine order) must not flow into serialized output, across function and package boundaries",
	RunModule: runDetflow,
}

func runDetflow(mp *lint.ModulePass) {
	g := graphFor(mp)
	ta := newTaintAnalysis(g, func(n *Node) bool {
		// internal/clock is the sanctioned laundering boundary: Virtual is
		// deterministic, Real is the single exempted wall-clock read whose
		// confinement clockonly enforces. Taint does not propagate out of
		// it, so injected clocks stay clean by design.
		return n.Pkg.Path == n.Pkg.ModulePath+"/internal/clock"
	})
	ta.solve()
	for _, n := range g.Nodes {
		n := n
		ta.report(n, func(site ast.Node, t Taint, sink string) {
			mp.Reportf(n.Pkg, site.Pos(), "nondeterministic value (%s) flows into %s; serialized output must be a pure function of inputs and internal/rng", t, sink)
		})
	}
}

// sinkArgs reports whether fn is a serialized-output sink and, if so, the
// first argument index that reaches the output stream (that argument and
// everything after it are checked).
func sinkArgs(fn *types.Func) (int, bool) {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	name := fn.Name()
	switch pkg {
	case "fmt":
		if strings.HasPrefix(name, "Fprint") {
			return 1, true
		}
		if strings.HasPrefix(name, "Print") {
			return 0, true
		}
	case "encoding/json":
		if name == "Encode" {
			return 0, true
		}
	case "os":
		if name == "WriteFile" {
			return 1, true
		}
	}
	// Telemetry samples are exported via /metrics and the experiment
	// artefacts; a nondeterministic sample is a nondeterministic artefact.
	if strings.HasSuffix(pkg, "internal/telemetry") {
		switch name {
		case "Set", "Add", "Observe":
			return 0, true
		}
	}
	// Writer-shaped methods: Write([]byte) (int, error) and
	// WriteString(string) (int, error), on any receiver (io.Writer,
	// bytes.Buffer, strings.Builder, os.File, module implementations).
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if (name == "Write" || name == "WriteString") &&
			sig.Params().Len() == 1 && sig.Results().Len() == 2 {
			return 0, true
		}
	}
	return 0, false
}

// sinkName renders the sink for diagnostics ("fmt.Fprintf", "Write").
func sinkName(fn *types.Func) string {
	if fn.Pkg() != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			return fn.Pkg().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}
