package flow

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"odin/internal/lint"
)

const fixGoMod = "module example.com/fix\n\ngo 1.24\n"

// checkFixture lays out a throwaway module, loads and type-checks it, and
// runs the given analyzers over it through the real lint.Run pipeline (so
// allow directives and exemptions behave exactly as in production).
func checkFixture(t *testing.T, analyzers []*lint.Analyzer, files map[string]string) []lint.Diagnostic {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := lint.Load(dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	return lint.Run(pkgs, analyzers, lint.Config{})
}

// wantFinding asserts exactly n diagnostics, each with the given rule, and
// that at least one lands in a file whose path ends in fileSuffix with a
// message containing msgPart.
func wantFinding(t *testing.T, diags []lint.Diagnostic, n int, rule, fileSuffix, msgPart string) {
	t.Helper()
	if len(diags) != n {
		t.Fatalf("got %d diagnostics, want %d: %v", len(diags), n, diags)
	}
	hit := false
	for _, d := range diags {
		if d.Rule != rule {
			t.Errorf("diagnostic rule = %q, want %q: %v", d.Rule, rule, d)
		}
		if strings.HasSuffix(filepath.ToSlash(d.Pos.Filename), fileSuffix) && strings.Contains(d.Message, msgPart) {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("no diagnostic in %s containing %q: %v", fileSuffix, msgPart, diags)
	}
}

// --- detflow ---

// A wall-clock read three hops and one package boundary away from the sink:
// the shape the per-file nondeterminism rule provably cannot see.
func detflowClockFixture(allow string) map[string]string {
	return map[string]string{
		"go.mod": fixGoMod,
		"internal/stamp/stamp.go": `package stamp
import "time"
func nowNanos() int64 { return time.Now().UnixNano() }
func Laundered() int64 { return nowNanos() }
`,
		"report/report.go": `package report
import (
	"fmt"
	"io"
	"example.com/fix/internal/stamp"
)
func indirect() int64 { return stamp.Laundered() }
func Emit(w io.Writer) {
	fmt.Fprintf(w, "t=%d\n", indirect())` + allow + `
}
`,
	}
}

func TestDetflowLaunderedClockInterprocedural(t *testing.T) {
	t.Parallel()
	diags := checkFixture(t, []*lint.Analyzer{DetflowAnalyzer}, detflowClockFixture(""))
	wantFinding(t, diags, 1, "detflow", "report/report.go", "wall-clock time")
}

func TestDetflowAllowSuppresses(t *testing.T) {
	t.Parallel()
	diags := checkFixture(t, []*lint.Analyzer{DetflowAnalyzer},
		detflowClockFixture(" //lint:allow detflow -- replay-stamped in tests"))
	if len(diags) != 0 {
		t.Fatalf("allow directive did not suppress: %v", diags)
	}
}

// Map iteration order reaching encoding/json through an intermediate
// helper; the collect-then-sort sibling must stay clean.
func TestDetflowMapOrderIntoJSON(t *testing.T) {
	t.Parallel()
	files := map[string]string{
		"go.mod": fixGoMod,
		"mapjson/mapjson.go": `package mapjson
import (
	"encoding/json"
	"io"
	"sort"
)
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
func collect(m map[string]int) []string { return keys(m) }
func Dump(w io.Writer, m map[string]int) error {
	return json.NewEncoder(w).Encode(collect(m))
}
func DumpSorted(w io.Writer, m map[string]int) error {
	ks := collect(m)
	sort.Strings(ks)
	return json.NewEncoder(w).Encode(ks)
}
`,
	}
	diags := checkFixture(t, []*lint.Analyzer{DetflowAnalyzer}, files)
	wantFinding(t, diags, 1, "detflow", "mapjson/mapjson.go", "map iteration order")
	for _, d := range diags {
		if strings.Contains(d.Message, "DumpSorted") {
			t.Fatalf("collect-then-sort idiom flagged: %v", d)
		}
	}
}

// A select whose clauses assign the same variable is a first-responder-wins
// race; the taint must survive two call hops to the print.
func TestDetflowSelectRace(t *testing.T) {
	t.Parallel()
	files := map[string]string{
		"go.mod": fixGoMod,
		"selrace/selrace.go": `package selrace
import "fmt"
func pick(a, b chan int) int {
	var v int
	select {
	case v = <-a:
	case v = <-b:
	}
	return v
}
func Pick(a, b chan int) int { return pick(a, b) }
func Show(a, b chan int) { fmt.Println(Pick(a, b)) }
`,
	}
	diags := checkFixture(t, []*lint.Analyzer{DetflowAnalyzer}, files)
	wantFinding(t, diags, 1, "detflow", "selrace/selrace.go", "select arbitration")
}

// Fan-in from loop-launched goroutines: receive order is scheduler-chosen.
func TestDetflowGoroutineOrder(t *testing.T) {
	t.Parallel()
	files := map[string]string{
		"go.mod": fixGoMod,
		"fanin/fanin.go": `package fanin
import (
	"fmt"
	"io"
)
func work() int { return 1 }
func gather(n int) []int {
	ch := make(chan int)
	for i := 0; i < n; i++ {
		go func() { ch <- work() }()
	}
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, <-ch)
	}
	return out
}
func Render(w io.Writer, n int) { fmt.Fprint(w, gather(n)) }
`,
	}
	diags := checkFixture(t, []*lint.Analyzer{DetflowAnalyzer}, files)
	wantFinding(t, diags, 1, "detflow", "fanin/fanin.go", "goroutine completion order")
}

// internal/clock is the sanctioned boundary: taint must not cross it, so
// code consuming an injected clock stays clean.
func TestDetflowClockPackageIsBarrier(t *testing.T) {
	t.Parallel()
	files := map[string]string{
		"go.mod": fixGoMod,
		"internal/clock/clock.go": `package clock
import "time"
type Clock interface{ Now() int64 }
type Real struct{}
func (Real) Now() int64 { return time.Now().UnixNano() }
`,
		"user/user.go": `package user
import (
	"fmt"
	"io"
	"example.com/fix/internal/clock"
)
func Use(w io.Writer, c clock.Clock) { fmt.Fprintf(w, "%d", c.Now()) }
`,
	}
	diags := checkFixture(t, []*lint.Analyzer{DetflowAnalyzer}, files)
	if len(diags) != 0 {
		t.Fatalf("injected clock usage flagged despite barrier: %v", diags)
	}
}

// --- clockonly ---

func clockonlyFixture(allowRaw, allowStamp, allowCore string) map[string]string {
	return map[string]string{
		"go.mod": fixGoMod,
		"tick/tick.go": `package tick
import "time"
func raw() int64 {
	return time.Now().UnixNano()` + allowRaw + `
}
func Stamp() int64 {
	return raw()` + allowStamp + `
}
`,
		"core/core.go": `package core
import "example.com/fix/tick"
func Decide() int64 {
	return tick.Stamp()` + allowCore + `
}
`,
	}
}

// The direct read flags, and so does every laundering call edge — across
// the package boundary, two hops from the time.Now.
func TestClockonlyLaunderedReadInterprocedural(t *testing.T) {
	t.Parallel()
	diags := checkFixture(t, []*lint.Analyzer{ClockonlyAnalyzer}, clockonlyFixture("", "", ""))
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3 (direct read + 2 laundering edges): %v", len(diags), diags)
	}
	wantFinding(t, diags, 3, "clockonly", "core/core.go", "transitively reads the wall clock")
	wantFinding(t, diags, 3, "clockonly", "tick/tick.go", "time.Now reads the wall clock")
}

// An allow on the direct read covers that one site only: the laundering
// edges keep flagging until each carries its own justification.
func TestClockonlyAllowDoesNotCoverLaunderers(t *testing.T) {
	t.Parallel()
	diags := checkFixture(t, []*lint.Analyzer{ClockonlyAnalyzer},
		clockonlyFixture(" //lint:allow clockonly -- sanctioned", "", ""))
	wantFinding(t, diags, 2, "clockonly", "core/core.go", "transitively reads the wall clock")
}

func TestClockonlyAllowEverySiteSuppresses(t *testing.T) {
	t.Parallel()
	a := " //lint:allow clockonly -- sanctioned"
	diags := checkFixture(t, []*lint.Analyzer{ClockonlyAnalyzer}, clockonlyFixture(a, a, a))
	if len(diags) != 0 {
		t.Fatalf("allow directives did not suppress: %v", diags)
	}
}

// Injected clocks are clean; constructing the Real clock outside cmd/ is
// not, and cmd/ itself is exempt.
func TestClockonlyNewRealConfinement(t *testing.T) {
	t.Parallel()
	files := map[string]string{
		"go.mod": fixGoMod,
		"internal/clock/clock.go": `package clock
import "time"
type Clock interface{ Now() int64 }
type Real struct{}
func (Real) Now() int64 { return time.Now().UnixNano() }
func NewReal() Clock { return Real{} }
`,
		"user/user.go": `package user
import "example.com/fix/internal/clock"
func Use(c clock.Clock) int64 { return c.Now() }
func Bad() int64 { return clock.NewReal().Now() }
`,
		"cmd/app/main.go": `package main
import "example.com/fix/internal/clock"
func main() { _ = clock.NewReal().Now() }
`,
	}
	diags := checkFixture(t, []*lint.Analyzer{ClockonlyAnalyzer}, files)
	wantFinding(t, diags, 1, "clockonly", "user/user.go", "clock.NewReal constructs the wall clock")
}

// --- lockflow ---

func lockflowFixture(allow string) map[string]string {
	return map[string]string{
		"go.mod": fixGoMod,
		"locky/locky.go": `package locky
import "sync"
type Q struct {
	mu sync.Mutex
	ch chan int
}
func (q *Q) push(v int) { q.ch <- v }
func (q *Q) indirect(v int) { q.push(v) }
func (q *Q) Bad(v int) {
	q.mu.Lock()
	q.indirect(v)` + allow + `
	q.mu.Unlock()
}
func (q *Q) Good(v int) {
	q.mu.Lock()
	q.mu.Unlock()
	q.indirect(v)
}
`,
	}
}

// The blocking send is two calls below the lock: only the interprocedural
// may-block set can see it. The unlock-first sibling must stay clean.
func TestLockflowBlockingCalleeInterprocedural(t *testing.T) {
	t.Parallel()
	diags := checkFixture(t, []*lint.Analyzer{LockflowAnalyzer}, lockflowFixture(""))
	wantFinding(t, diags, 1, "lockflow", "locky/locky.go", "may block on a channel while holding q.mu")
}

func TestLockflowAllowSuppresses(t *testing.T) {
	t.Parallel()
	diags := checkFixture(t, []*lint.Analyzer{LockflowAnalyzer},
		lockflowFixture(" //lint:allow lockflow -- bounded queue, reviewed"))
	if len(diags) != 0 {
		t.Fatalf("allow directive did not suppress: %v", diags)
	}
}

// Direct shapes: send, receive, default-less select, Sleep under a lock;
// defer mu.Unlock() must not clear the lock for the rest of the body.
func TestLockflowDirectShapes(t *testing.T) {
	t.Parallel()
	files := map[string]string{
		"go.mod": fixGoMod,
		"shapes/shapes.go": `package shapes
import (
	"sync"
	"time"
)
type S struct {
	mu sync.Mutex
	ch chan int
}
func (s *S) Send(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v
}
func (s *S) Recv() int {
	s.mu.Lock()
	v := <-s.ch
	s.mu.Unlock()
	return v
}
func (s *S) Park() {
	s.mu.Lock()
	select {
	case v := <-s.ch:
		_ = v
	}
	s.mu.Unlock()
}
func (s *S) Nap() {
	s.mu.Lock()
	time.Sleep(time.Millisecond)
	s.mu.Unlock()
}
func (s *S) NonBlocking(v int) {
	s.mu.Lock()
	select {
	case s.ch <- v:
	default:
	}
	s.mu.Unlock()
}
`,
	}
	diags := checkFixture(t, []*lint.Analyzer{LockflowAnalyzer}, files)
	if len(diags) != 4 {
		t.Fatalf("got %d diagnostics, want 4 (send, receive, select, sleep): %v", len(diags), diags)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "NonBlocking") {
			t.Fatalf("select-with-default flagged: %v", d)
		}
	}
}

// --- leakcheck ---

func leakcheckFixture(allow string) map[string]string {
	return map[string]string{
		"go.mod": fixGoMod,
		"leaky/leaky.go": `package leaky
type P struct{ jobs chan int }
func (p *P) Start() {
	go p.run()
	go p.tick()` + allow + `
}
func (p *P) run() { p.drain() }
func (p *P) drain() {
	for range p.jobs {
	}
}
func (p *P) tick() {
	for {
		p.step()
	}
}
func (p *P) step() {}
func (p *P) Stop() { close(p.jobs) }
`,
	}
}

// run is joined only through its callee (drain ranges over a channel Stop
// closes); tick has no join path anywhere in its call tree.
func TestLeakcheckJoinThroughCalleeInterprocedural(t *testing.T) {
	t.Parallel()
	diags := checkFixture(t, []*lint.Analyzer{LeakcheckAnalyzer}, leakcheckFixture(""))
	wantFinding(t, diags, 1, "leakcheck", "leaky/leaky.go", "without a reachable join")
}

func TestLeakcheckAllowSuppresses(t *testing.T) {
	t.Parallel()
	diags := checkFixture(t, []*lint.Analyzer{LeakcheckAnalyzer},
		leakcheckFixture(" //lint:allow leakcheck -- process-lifetime ticker, reviewed"))
	if len(diags) != 0 {
		t.Fatalf("allow directive did not suppress: %v", diags)
	}
}

// WaitGroup.Done, done-channel receives, and consumed completion signals
// all count as joins, for literals and named launches alike.
func TestLeakcheckJoinShapes(t *testing.T) {
	t.Parallel()
	files := map[string]string{
		"go.mod": fixGoMod,
		"joins/joins.go": `package joins
import "sync"
type W struct {
	wg   sync.WaitGroup
	quit chan struct{}
	done chan struct{}
}
func (w *W) Start() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
	}()
	go w.watch()
	go w.signal()
}
func (w *W) watch() { <-w.quit }
func (w *W) signal() { close(w.done) }
func (w *W) Stop() {
	close(w.quit)
	<-w.done
	w.wg.Wait()
}
`,
	}
	diags := checkFixture(t, []*lint.Analyzer{LeakcheckAnalyzer}, files)
	if len(diags) != 0 {
		t.Fatalf("joined goroutines flagged: %v", diags)
	}
}

// cmd/ is exempt: process-lifetime goroutines in live binaries are joined
// by exit.
func TestLeakcheckCommandLayerExempt(t *testing.T) {
	t.Parallel()
	files := map[string]string{
		"go.mod": fixGoMod,
		"cmd/app/main.go": `package main
func main() {
	go spin()
	select {}
}
func spin() {
	for {
	}
}
`,
	}
	diags := checkFixture(t, []*lint.Analyzer{LeakcheckAnalyzer}, files)
	if len(diags) != 0 {
		t.Fatalf("cmd-layer goroutine flagged: %v", diags)
	}
}

// --- module integration ---

// The real tree must be clean under the full nine-analyzer suite with the
// production exemption set: every violation is either fixed or carries a
// reviewed //lint:allow.
func TestModuleCleanWithFlowAnalyzers(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := lint.Load("../../..", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	analyzers := lint.Analyzers()
	if len(analyzers) != 9 {
		var names []string
		for _, a := range analyzers {
			names = append(names, a.Name)
		}
		t.Fatalf("registry has %d analyzers, want 9: %v", len(analyzers), names)
	}
	cfg := lint.Config{Exempt: map[string][]string{
		"nondeterminism": {"internal/clock/real.go"},
	}}
	diags := lint.Run(pkgs, analyzers, cfg)
	for _, d := range diags {
		t.Errorf("unexplained finding: %v", d)
	}
}
