package flow

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"odin/internal/lint"
)

// LockflowAnalyzer flags mutex-held-across-blocking-operation shapes: a
// sync.Mutex/RWMutex locked and then, before the matching unlock, a channel
// send/receive, default-less select, range over a channel, WaitGroup.Wait,
// or a call into a module function that may do any of those. This is the
// machine check for the PR 2 wake-signaling deadlock: the dispatcher held a
// lock while parking on a channel the lock holder's counterpart needed the
// lock to feed.
//
// The walk is per-function and path-insensitive in a deliberate direction:
// a lock taken at the top level stays held through branch bodies (branches
// get a copy of the state), and `defer mu.Unlock()` does not clear the lock
// for the remainder of the body — which is exactly the window the deadlock
// needs. Goroutine bodies launched inside the region run on their own
// stack and are walked as their own nodes, lock-free.
var LockflowAnalyzer = &lint.Analyzer{
	Name:      "lockflow",
	Doc:       "no blocking channel operation (send, receive, default-less select, WaitGroup.Wait, Sleep) while holding a mutex, directly or through a callee",
	RunModule: runLockflow,
}

// blockingExt matches external calls that park the goroutine.
func blockingExt(fn *types.Func) bool {
	if extIs(fn, "time", "Sleep") {
		return true
	}
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Wait"
}

func runLockflow(mp *lint.ModulePass) {
	g := graphFor(mp)
	// mayBlock: nodes whose body (or a transitive callee's body) contains a
	// blocking channel operation. Goroutine launches are not followed — the
	// launcher does not park on what its goroutine does.
	mayBlock := g.Reaching(
		func(n *Node) bool { return directlyBlocks(n) },
		blockingExt,
		nil,
	)
	for _, n := range g.Nodes {
		n := n
		w := &lockWalk{
			g:        g,
			n:        n,
			mayBlock: mayBlock,
			seen:     make(map[ast.Node]bool),
			report: func(site ast.Node, format string, args ...any) {
				mp.Reportf(n.Pkg, site.Pos(), format, args...)
			},
		}
		w.stmts(n.Body.List, make(map[string]int))
	}
}

// directlyBlocks reports whether the node's own body (excluding nested
// goroutine literals, which are separate nodes) contains a blocking channel
// operation.
func directlyBlocks(n *Node) bool {
	found := false
	inspectOwn(n.Body, func(node ast.Node) bool {
		if found {
			return false
		}
		switch node := node.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if node.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if isChanExpr(n.Pkg.Info, node.X) {
				found = true
			}
		case *ast.SelectStmt:
			if !selectHasDefault(node) {
				found = true
			}
			// A select with a default is non-blocking as a unit; its clause
			// bodies still run and are scanned below, but the comm operations
			// themselves never park. Descend anyway: clause bodies can block.
		}
		return !found
	})
	return found
}

// inspectOwn walks body like ast.Inspect but does not descend into
// goroutine-launched function literals (they execute on another stack).
func inspectOwn(body *ast.BlockStmt, fn func(ast.Node) bool) {
	var goLits map[*ast.FuncLit]bool
	ast.Inspect(body, func(node ast.Node) bool {
		if gs, ok := node.(*ast.GoStmt); ok {
			if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
				if goLits == nil {
					goLits = make(map[*ast.FuncLit]bool)
				}
				goLits[lit] = true
			}
		}
		if lit, ok := node.(*ast.FuncLit); ok && goLits[lit] {
			return false
		}
		return fn(node)
	})
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func isChanExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// lockWalk threads a held-lock multiset (keyed by the rendered receiver
// expression, e.g. "s.mu") through a function body.
type lockWalk struct {
	g        *Graph
	n        *Node
	mayBlock map[*Node]bool
	seen     map[ast.Node]bool // dedup: one report per site
	report   func(site ast.Node, format string, args ...any)
}

func (w *lockWalk) emit(site ast.Node, format string, args ...any) {
	if w.seen[site] {
		return
	}
	w.seen[site] = true
	w.report(site, format, args...)
}

func heldKeys(held map[string]int) string {
	var keys []string
	for k, c := range held {
		if c > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

func anyHeld(held map[string]int) bool {
	for _, c := range held {
		if c > 0 {
			return true
		}
	}
	return false
}

func cloneHeld(held map[string]int) map[string]int {
	out := make(map[string]int, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// classifyLock recognizes sync mutex lock/unlock calls (including promoted
// methods on embedded mutexes and sync.Locker interface calls) and returns
// the lock key and +1/-1 delta; ok is false for everything else.
func classifyLock(info *types.Info, call *ast.CallExpr) (key string, delta int, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	fn, _ := info.ObjectOf(sel.Sel).(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		delta = 1
	case "Unlock", "RUnlock":
		delta = -1
	default:
		return "", 0, false
	}
	return types.ExprString(sel.X), delta, true
}

// stmts walks a statement list, threading lock state; returns the state at
// the end of the list.
func (w *lockWalk) stmts(list []ast.Stmt, held map[string]int) map[string]int {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

func (w *lockWalk) stmt(s ast.Stmt, held map[string]int) map[string]int {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if key, delta, ok := classifyLock(w.n.Pkg.Info, call); ok {
				held[key] += delta
				if held[key] <= 0 {
					delete(held, key)
				}
				return held
			}
		}
		w.checkExpr(s.X, held)
	case *ast.SendStmt:
		if anyHeld(held) {
			w.emit(s, "channel send while holding %s; a blocked send under a lock is the deadlock shape this module has shipped before", heldKeys(held))
		}
		w.checkExpr(s.Chan, held)
		w.checkExpr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.checkExpr(e, held)
		}
	case *ast.DeclStmt:
		w.checkExpr0(s, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkExpr(e, held)
		}
	case *ast.IncDecStmt:
		w.checkExpr(s.X, held)
	case *ast.DeferStmt:
		// Deferred calls run at return, when the lock may or may not still be
		// held — and `defer mu.Unlock()` must NOT clear the lock for the rest
		// of the body. Argument expressions evaluate now, though.
		for _, arg := range s.Call.Args {
			w.checkExpr(arg, held)
		}
	case *ast.GoStmt:
		// The goroutine body runs on its own stack (walked as its own node);
		// launch arguments evaluate synchronously here.
		for _, arg := range s.Call.Args {
			w.checkExpr(arg, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		w.checkExpr(s.Cond, held)
		w.stmts(s.Body.List, cloneHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, cloneHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, held)
		}
		inner := w.stmts(s.Body.List, cloneHeld(held))
		if s.Post != nil {
			w.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		if isChanExpr(w.n.Pkg.Info, s.X) && anyHeld(held) {
			w.emit(s, "range over a channel while holding %s; receiving under a lock blocks every other path to the lock", heldKeys(held))
		}
		w.checkExpr(s.X, held)
		w.stmts(s.Body.List, cloneHeld(held))
	case *ast.SelectStmt:
		if !selectHasDefault(s) && anyHeld(held) {
			w.emit(s, "select with no default while holding %s; the goroutine parks with the lock held", heldKeys(held))
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			w.stmts(cc.Body, cloneHeld(held))
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			w.stmts(cc.Body, cloneHeld(held))
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			w.stmts(cc.Body, cloneHeld(held))
		}
	case *ast.BlockStmt:
		held = w.stmts(s.List, held)
	case *ast.LabeledStmt:
		held = w.stmt(s.Stmt, held)
	}
	return held
}

// checkExpr0 scans a statement's expressions via inspectOwn (used for decl
// statements, which can embed initializer calls).
func (w *lockWalk) checkExpr0(s ast.Stmt, held map[string]int) {
	if !anyHeld(held) {
		return
	}
	inspectOwn(&ast.BlockStmt{List: []ast.Stmt{s}}, func(node ast.Node) bool {
		if e, ok := node.(ast.Expr); ok {
			w.checkExprShallow(e, held)
		}
		return true
	})
}

// checkExpr reports blocking operations inside an expression evaluated with
// locks held: channel receives, and calls that block or may transitively
// block. Function literals are skipped — they only block when invoked, and
// invocation sites are where the call edge is charged.
func (w *lockWalk) checkExpr(e ast.Expr, held map[string]int) {
	if e == nil || !anyHeld(held) {
		return
	}
	ast.Inspect(e, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		if e, ok := node.(ast.Expr); ok {
			w.checkExprShallow(e, held)
		}
		return true
	})
}

func (w *lockWalk) checkExprShallow(e ast.Expr, held map[string]int) {
	switch e := e.(type) {
	case *ast.UnaryExpr:
		if e.Op.String() == "<-" {
			w.emit(e, "channel receive while holding %s; the goroutine parks with the lock held", heldKeys(held))
		}
	case *ast.CallExpr:
		if _, _, ok := classifyLock(w.n.Pkg.Info, e); ok {
			return // lock/unlock themselves are not blocking channel ops
		}
		callees, ext := w.g.resolve(w.n.Pkg, e)
		if ext != nil && blockingExt(ext) {
			w.emit(e, "%s.%s while holding %s; the goroutine parks with the lock held", ext.Pkg().Name(), ext.Name(), heldKeys(held))
			return
		}
		for _, c := range callees {
			if w.mayBlock[c] {
				w.emit(e, "call to %s may block on a channel while holding %s", calleeLabel(c), heldKeys(held))
				return
			}
		}
	}
}
