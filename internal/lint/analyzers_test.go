package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// checkSource type-checks a single fixture file as the package at
// importPath and runs one analyzer over it, allow directives applied.
// Fixtures deliberately seed violations, which is exactly why the loader
// never feeds test files to the analyzers.
func checkSource(t *testing.T, a *Analyzer, importPath, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	tpkg, err := conf.Check(importPath, fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("type-check fixture: %v", err)
	}
	pkg := &Package{
		ModulePath: "odin",
		Path:       importPath,
		Fset:       fset,
		Files:      []*ast.File{file},
		Types:      tpkg,
		Info:       info,
	}
	return Run([]*Package{pkg}, []*Analyzer{a}, Config{})
}

// wantDiags asserts that got matches the expected "line:rule" set exactly.
func wantDiags(t *testing.T, got []Diagnostic, want ...string) {
	t.Helper()
	var gotKeys []string
	for _, d := range got {
		gotKeys = append(gotKeys, fmt.Sprintf("%d:%s", d.Pos.Line, d.Rule))
	}
	if len(gotKeys) != len(want) {
		t.Fatalf("got %d diagnostics %v, want %d %v\nfull: %v", len(gotKeys), gotKeys, len(want), want, got)
	}
	for i := range want {
		if gotKeys[i] != want[i] {
			t.Fatalf("diagnostic %d = %s, want %s\nfull: %v", i, gotKeys[i], want[i], got)
		}
	}
}

func TestNondeterminism(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		path string
		src  string
		want []string
	}{
		{
			name: "math rand import",
			path: "odin/internal/fixture",
			src: `package fixture
import "math/rand"
func F() int { return rand.Int() }
`,
			want: []string{"2:nondeterminism"},
		},
		{
			name: "time now and since",
			path: "odin/internal/fixture",
			src: `package fixture
import "time"
func F() time.Duration {
	start := time.Now()
	return time.Since(start)
}
`,
			want: []string{"4:nondeterminism", "5:nondeterminism"},
		},
		{
			name: "time now flagged even in cmd layer",
			path: "odin/cmd/fixture",
			src: `package main
import "time"
func F() time.Time { return time.Now() }
`,
			want: []string{"3:nondeterminism"},
		},
		{
			name: "float accumulation over map",
			path: "odin/internal/fixture",
			src: `package fixture
func F(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}
`,
			want: []string{"5:nondeterminism"},
		},
		{
			name: "output inside map range",
			path: "odin/internal/fixture",
			src: `package fixture
import (
	"fmt"
	"io"
)
func F(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}
`,
			want: []string{"8:nondeterminism"},
		},
		{
			name: "sanctioned collect-and-sort pattern is clean",
			path: "odin/internal/fixture",
			src: `package fixture
import "sort"
func F(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += m[k]
	}
	return total
}
`,
			want: nil,
		},
		{
			name: "int accumulation over map is order-insensitive",
			path: "odin/internal/fixture",
			src: `package fixture
func F(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
`,
			want: nil,
		},
		{
			name: "map range heuristics skipped in cmd layer",
			path: "odin/cmd/fixture",
			src: `package main
func F(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}
`,
			want: nil,
		},
		{
			name: "trailing allow directive suppresses",
			path: "odin/internal/fixture",
			src: `package fixture
import "time"
func F() time.Time {
	return time.Now() //lint:allow nondeterminism -- wall-clock report
}
`,
			want: nil,
		},
		{
			name: "preceding-line allow directive suppresses",
			path: "odin/internal/fixture",
			src: `package fixture
import "time"
func F() time.Time {
	//lint:allow nondeterminism
	return time.Now()
}
`,
			want: nil,
		},
		{
			name: "allow directive for a different rule does not suppress",
			path: "odin/internal/fixture",
			src: `package fixture
import "time"
func F() time.Time {
	return time.Now() //lint:allow floateq
}
`,
			want: []string{"4:nondeterminism"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			wantDiags(t, checkSource(t, NondeterminismAnalyzer, tt.path, tt.src), tt.want...)
		})
	}
}

func TestFloateq(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "float equality flagged",
			src: `package fixture
func F(a, b float64) bool { return a == b }
`,
			want: []string{"2:floateq"},
		},
		{
			name: "float inequality flagged",
			src: `package fixture
func F(a float32) bool { return a != 0.5 }
`,
			want: []string{"2:floateq"},
		},
		{
			name: "exact-zero guard allowed",
			src: `package fixture
func F(a float64) bool { return a == 0 }
`,
			want: nil,
		},
		{
			name: "integer equality allowed",
			src: `package fixture
func F(a, b int) bool { return a == b }
`,
			want: nil,
		},
		{
			name: "struct with float field flagged",
			src: `package fixture
type Cost struct {
	Energy  float64
	Cycles  int
}
func F(a, b Cost) bool { return a == b }
`,
			want: []string{"6:floateq"},
		},
		{
			name: "int-only struct allowed",
			src: `package fixture
type Size struct{ R, C int }
func F(a, b Size) bool { return a == b }
`,
			want: nil,
		},
		{
			name: "constant fold allowed",
			src: `package fixture
const x = 1.5
func F() bool { return x == 1.5 }
`,
			want: nil,
		},
		{
			name: "allow directive suppresses",
			src: `package fixture
func F(a, b float64) bool {
	return a == b //lint:allow floateq -- bit-exact replay check
}
`,
			want: nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			wantDiags(t, checkSource(t, FloateqAnalyzer, "odin/internal/fixture", tt.src), tt.want...)
		})
	}
}

func TestUnitmix(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "energy plus latency flagged",
			src: `package fixture
func F(totalEnergyPJ, readLatencyNs float64) float64 {
	return totalEnergyPJ + readLatencyNs
}
`,
			want: []string{"3:unitmix"},
		},
		{
			name: "selector fields flagged",
			src: `package fixture
type Report struct {
	EnergyPJ float64
	AreaMM2  float64
}
func F(r Report) float64 { return r.EnergyPJ - r.AreaMM2 }
`,
			want: []string{"6:unitmix"},
		},
		{
			name: "compound assignment flagged",
			src: `package fixture
func F(latencySeconds, tileAreaMM2 float64) float64 {
	latencySeconds += tileAreaMM2
	return latencySeconds
}
`,
			want: []string{"3:unitmix"},
		},
		{
			name: "same family allowed",
			src: `package fixture
func F(readEnergyPJ, writeEnergyPJ float64) float64 {
	return readEnergyPJ + writeEnergyPJ
}
`,
			want: nil,
		},
		{
			name: "multiplication changes units legitimately",
			src: `package fixture
func F(powerW, latencySeconds, energyJoules float64) float64 {
	return energyJoules / latencySeconds * powerW
}
`,
			want: nil,
		},
		{
			name: "unknown operand not flagged",
			src: `package fixture
func F(energyPJ, x float64) float64 { return energyPJ + x }
`,
			want: nil,
		},
		{
			name: "allow directive suppresses",
			src: `package fixture
func F(energyPJ, latencyNs float64) float64 {
	return energyPJ + latencyNs //lint:allow unitmix -- weighted objective, dimensionless by construction
}
`,
			want: nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			wantDiags(t, checkSource(t, UnitmixAnalyzer, "odin/internal/fixture", tt.src), tt.want...)
		})
	}
}

func TestPanicmsg(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "prefixed literal allowed",
			src: `package fixture
func F() { panic("fixture: boom") }
`,
			want: nil,
		},
		{
			name: "unprefixed literal flagged",
			src: `package fixture
func F() { panic("boom") }
`,
			want: []string{"2:panicmsg"},
		},
		{
			name: "wrong package prefix flagged",
			src: `package fixture
func F() { panic("other: boom") }
`,
			want: []string{"2:panicmsg"},
		},
		{
			name: "prefixed sprintf allowed",
			src: `package fixture
import "fmt"
func F(n int) { panic(fmt.Sprintf("fixture: bad n %d", n)) }
`,
			want: nil,
		},
		{
			name: "unprefixed sprintf flagged",
			src: `package fixture
import "fmt"
func F(n int) { panic(fmt.Sprintf("bad n %d", n)) }
`,
			want: []string{"3:panicmsg"},
		},
		{
			name: "bare error value flagged",
			src: `package fixture
func F(err error) { panic(err) }
`,
			want: []string{"2:panicmsg"},
		},
		{
			name: "allow directive suppresses",
			src: `package fixture
func F(err error) {
	panic(err) //lint:allow panicmsg -- re-panic of recovered value
}
`,
			want: nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			wantDiags(t, checkSource(t, PanicmsgAnalyzer, "odin/internal/fixture", tt.src), tt.want...)
		})
	}
}

func TestErrcheck(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "dropped error statement flagged",
			src: `package fixture
import "os"
func F() { os.Remove("x") }
`,
			want: []string{"3:errcheck"},
		},
		{
			name: "dropped error in defer flagged",
			src: `package fixture
import "os"
func F(f *os.File) { defer f.Close() }
`,
			want: []string{"3:errcheck"},
		},
		{
			name: "explicit blank assignment allowed",
			src: `package fixture
import "os"
func F() { _ = os.Remove("x") }
`,
			want: nil,
		},
		{
			name: "handled error allowed",
			src: `package fixture
import "os"
func F() error { return os.Remove("x") }
`,
			want: nil,
		},
		{
			name: "fmt print family excluded",
			src: `package fixture
import (
	"fmt"
	"io"
)
func F(w io.Writer) {
	fmt.Fprintf(w, "row\n")
	fmt.Println("done")
}
`,
			want: nil,
		},
		{
			name: "bytes buffer excluded",
			src: `package fixture
import "bytes"
func F(b *bytes.Buffer) { b.WriteString("x") }
`,
			want: nil,
		},
		{
			name: "hash write flagged",
			src: `package fixture
import "hash/fnv"
func F() uint64 {
	h := fnv.New64a()
	h.Write([]byte("label"))
	return h.Sum64()
}
`,
			want: []string{"5:errcheck"},
		},
		{
			name: "allow directive suppresses",
			src: `package fixture
import "os"
func F(f *os.File) {
	defer f.Close() //lint:allow errcheck -- read-only handle
}
`,
			want: nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			wantDiags(t, checkSource(t, ErrcheckAnalyzer, "odin/internal/fixture", tt.src), tt.want...)
		})
	}
}
