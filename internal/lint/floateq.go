package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloateqAnalyzer flags == and != between floating-point operands, and
// between composite (struct/array) operands that contain floating-point
// fields, where rounding makes equality meaningless. Two carve-outs, both
// IEEE-754-exact and documented in DESIGN.md:
//
//   - comparison against the exact constant 0 (the zero-weight /
//     division-guard idiom used throughout the analytic models);
//   - comparisons where both sides are constants (evaluated exactly at
//     compile time).
var FloateqAnalyzer = &Analyzer{
	Name: "floateq",
	Doc:  "forbid ==/!= on floating-point values (exact-zero guards excepted); use a tolerance",
	Run:  runFloateq,
}

func runFloateq(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			lt, rt := p.TypeOf(bin.X), p.TypeOf(bin.Y)
			if lt == nil || rt == nil {
				return true
			}
			if !hasFloatComponent(lt, nil) && !hasFloatComponent(rt, nil) {
				return true
			}
			if p.isExactZero(bin.X) || p.isExactZero(bin.Y) {
				return true
			}
			if p.isConst(bin.X) && p.isConst(bin.Y) {
				return true
			}
			what := "floating-point values"
			if !isFloat(lt) && !isFloat(rt) {
				what = "composite values with floating-point fields"
			}
			p.Reportf(bin.Pos(), "%s compared with %s; compare with a tolerance (or an exact-zero guard)", what, bin.Op)
			return true
		})
	}
}

// isExactZero reports whether expr is a constant whose value is exactly
// zero.
func (p *Pass) isExactZero(expr ast.Expr) bool {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

func (p *Pass) isConst(expr ast.Expr) bool {
	tv, ok := p.Info.Types[expr]
	return ok && tv.Value != nil
}

// hasFloatComponent reports whether t is a float or a struct/array
// containing one, following value (not pointer/map/slice) structure.
func hasFloatComponent(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsFloat != 0
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hasFloatComponent(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return hasFloatComponent(u.Elem(), seen)
	}
	return false
}
