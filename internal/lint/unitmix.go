package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// UnitmixAnalyzer is a heuristic unit-safety check for the analytic cost
// models. Energy (J/pJ), latency (s/ns/cycles) and area (mm²/µm²)
// quantities all live in plain float64s; the type system cannot stop
// `energy + latency`. The analyzer classifies identifier names into unit
// families and flags + / - (and += / -=) whose operands belong to
// different families. Multiplication and division are never flagged —
// they legitimately change units (power × time = energy).
var UnitmixAnalyzer = &Analyzer{
	Name: "unitmix",
	Doc:  "forbid adding/subtracting quantities from different unit families (energy vs latency vs area)",
	Run:  runUnitmix,
}

// unitFamily classifies an identifier name by its unit vocabulary.
// Matching is on name fragments, case-sensitively for the exported
// spellings used across the repo (EnergyPJ, LatencyNs, AreaMM2, ...).
type unitFamily int

const (
	unitUnknown unitFamily = iota
	unitEnergy
	unitLatency
	unitArea
)

func (f unitFamily) String() string {
	switch f {
	case unitEnergy:
		return "energy"
	case unitLatency:
		return "latency"
	case unitArea:
		return "area"
	}
	return "unknown"
}

// familyFragments maps name fragments to families. Longer, more specific
// fragments are matched via strings.Contains on the identifier name.
var familyFragments = []struct {
	fragment string
	family   unitFamily
}{
	{"Energy", unitEnergy},
	{"Joule", unitEnergy},
	{"joule", unitEnergy},
	{"energy", unitEnergy},
	{"Latency", unitLatency},
	{"latency", unitLatency},
	{"Seconds", unitLatency},
	{"seconds", unitLatency},
	{"Makespan", unitLatency},
	{"Area", unitArea},
	{"area", unitArea},
	{"MM2", unitArea},
	{"UM2", unitArea},
}

// nameFamily classifies a bare identifier name.
func nameFamily(name string) unitFamily {
	for _, ff := range familyFragments {
		if strings.Contains(name, ff.fragment) {
			return ff.family
		}
	}
	return unitUnknown
}

// exprFamily classifies an expression: identifiers and field selectors by
// name; parentheses and unary +/- transparently; calls by the callee's
// name (EnergyPJ() is still an energy).
func exprFamily(expr ast.Expr) unitFamily {
	switch e := expr.(type) {
	case *ast.Ident:
		return nameFamily(e.Name)
	case *ast.SelectorExpr:
		return nameFamily(e.Sel.Name)
	case *ast.ParenExpr:
		return exprFamily(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			return exprFamily(e.X)
		}
	case *ast.CallExpr:
		return exprFamily(e.Fun)
	case *ast.IndexExpr:
		return exprFamily(e.X)
	}
	return unitUnknown
}

func runUnitmix(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.ADD && n.Op != token.SUB {
					return true
				}
				lf, rf := exprFamily(n.X), exprFamily(n.Y)
				if lf != unitUnknown && rf != unitUnknown && lf != rf {
					p.Reportf(n.Pos(), "%s %s %s mixes unit families (%s vs %s)",
						describe(n.X), n.Op, describe(n.Y), lf, rf)
				}
			case *ast.AssignStmt:
				if n.Tok != token.ADD_ASSIGN && n.Tok != token.SUB_ASSIGN {
					return true
				}
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					lf, rf := exprFamily(lhs), exprFamily(n.Rhs[i])
					if lf != unitUnknown && rf != unitUnknown && lf != rf {
						p.Reportf(n.Pos(), "%s %s %s mixes unit families (%s vs %s)",
							describe(lhs), n.Tok, describe(n.Rhs[i]), lf, rf)
					}
				}
			}
			return true
		})
	}
}

// describe renders a short name for an operand in a diagnostic.
func describe(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return describe(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return describe(e.X)
	case *ast.CallExpr:
		return describe(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return describe(e.X) + "[...]"
	case *ast.UnaryExpr:
		return e.Op.String() + describe(e.X)
	}
	return "expression"
}
