// Package lint is a project-specific static-analysis suite for the Odin
// reproduction. It enforces the invariants the Go compiler cannot see but
// the paper's reproducibility rests on:
//
//   - determinism: every stochastic quantity must flow from internal/rng
//     (SplitMix64, labelled streams) — no math/rand, no wall-clock reads,
//     no order-sensitive work driven by map iteration;
//   - float correctness: no ==/!= between floating-point values (the sole
//     sanctioned exception is comparison against the exact constant 0,
//     which is IEEE-754-exact and used as a guard idiom throughout);
//   - unit safety: identifiers from different unit families (energy,
//     latency, area) must not be added or subtracted;
//   - panic hygiene: panic messages carry the "pkg: " prefix convention;
//   - error hygiene: error returns must not be silently dropped.
//
// The suite is built only on the standard library (go/parser, go/ast,
// go/types, go/importer) — no golang.org/x/tools dependency — so it runs
// anywhere the Go toolchain runs. Diagnostics may be suppressed at a call
// site with a "//lint:allow <rule>[,<rule>...]" comment on the offending
// line or the line directly above it, or globally via Config path prefixes.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the rule that fired, and a
// human-readable message. String renders the canonical
// "file:line:col: rule: message" form.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Analyzer is one named rule. Per-package rules set Run and inspect one
// type-checked package at a time via the Pass; module-level rules set
// RunModule and see every loaded package at once, which is what the
// interprocedural flow analyzers (internal/lint/flow) need to chase taint
// across package boundaries. Exactly one of Run and RunModule is set.
type Analyzer struct {
	// Name is the rule identifier used in diagnostics and allow directives.
	Name string
	// Doc is a one-line description shown by `odinlint -list`.
	Doc string
	// Run executes the rule against one package.
	Run func(*Pass)
	// RunModule executes the rule once over the whole loaded package set.
	RunModule func(*ModulePass)
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// ModulePath is the module's import path (e.g. "odin").
	ModulePath string
	// Path is the package's import path (e.g. "odin/internal/rng").
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic for the running analyzer at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// InCommandLayer reports whether the package is a main-adjacent layer
// (cmd/ or examples/) rather than simulation-core code. Some rules — the
// map-iteration determinism heuristics — only apply to core packages,
// where iteration order leaks into published numbers.
func (p *Pass) InCommandLayer() bool {
	rel := strings.TrimPrefix(p.Path, p.ModulePath)
	rel = strings.TrimPrefix(rel, "/")
	return strings.HasPrefix(rel, "cmd/") || strings.HasPrefix(rel, "examples/") ||
		rel == "cmd" || rel == "examples"
}

// TypeOf returns the type of expr, or nil if untracked.
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	if tv, ok := p.Info.Types[expr]; ok {
		return tv.Type
	}
	if id, ok := expr.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// CalleeFunc resolves the *types.Func called by a call expression, looking
// through selector and plain-identifier callees. It returns nil for
// builtins, conversions, and calls of function-typed values.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.ObjectOf(id).(*types.Func)
	return fn
}

// ModulePass carries the whole loaded package set through one module-level
// analyzer run.
type ModulePass struct {
	Analyzer *Analyzer
	// Pkgs is every loaded package, sorted by import path. All packages
	// share one token.FileSet when produced by Load; fixture harnesses may
	// hand-build sets with per-package FileSets, which is why Reportf takes
	// the owning package explicitly.
	Pkgs []*Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic for the running analyzer at pos, which must
// belong to pkg's FileSet.
func (mp *ModulePass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	*mp.diags = append(*mp.diags, Diagnostic{
		Pos:     pkg.Fset.Position(pos),
		Rule:    mp.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// registered holds analyzers added by Register, beyond the built-in set.
var registered []*Analyzer

// Register adds an analyzer to the registry returned by Analyzers. It is
// how subpackages that depend on this one (internal/lint/flow) plug their
// rules in without an import cycle: importing them for side effects is
// enough. Duplicate names panic — the registry keys allow directives and
// -exempt config, so a collision would silently merge two rules.
func Register(a *Analyzer) {
	for _, b := range append(builtins(), registered...) {
		if b.Name == a.Name {
			panic(fmt.Sprintf("lint: duplicate analyzer name %q", a.Name))
		}
	}
	registered = append(registered, a)
}

func builtins() []*Analyzer {
	return []*Analyzer{
		ErrcheckAnalyzer,
		FloateqAnalyzer,
		NondeterminismAnalyzer,
		PanicmsgAnalyzer,
		UnitmixAnalyzer,
	}
}

// Analyzers returns the full registry — built-ins plus everything added by
// Register — in deterministic (alphabetical) order.
func Analyzers() []*Analyzer {
	all := append(builtins(), registered...)
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// ByName returns the registered analyzer with the given rule name.
func ByName(name string) (*Analyzer, error) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("lint: unknown analyzer %q", name)
}

// Config controls rule-level exemptions that are too broad for inline
// allow directives.
type Config struct {
	// Exempt maps a rule name to slash-separated path prefixes (relative
	// to the module root, e.g. "cmd/") whose files are exempt from that
	// rule. The special rule name "*" exempts a prefix from every rule.
	Exempt map[string][]string
}

// exempts reports whether cfg exempts rule for the file at relPath.
func (cfg Config) exempts(rule, relPath string) bool {
	for _, r := range []string{rule, "*"} {
		for _, prefix := range cfg.Exempt[r] {
			if strings.HasPrefix(relPath, prefix) {
				return true
			}
		}
	}
	return false
}

// Run executes the given analyzers over every package and returns the
// surviving diagnostics (inline allow directives and config exemptions
// applied), sorted by file, line, column, then rule. Per-package analyzers
// run once per package; module-level analyzers (RunModule) run once over
// the whole set, so they can reason about cross-package call chains.
func Run(pkgs []*Package, analyzers []*Analyzer, cfg Config) []Diagnostic {
	var perPkg, module []*Analyzer
	for _, a := range analyzers {
		if a.RunModule != nil {
			module = append(module, a)
		} else {
			perPkg = append(perPkg, a)
		}
	}
	var diags []Diagnostic
	// pkgOf maps a source filename to its owning package, so module-level
	// diagnostics (which may land in any file) resolve relFile for config
	// exemption matching.
	pkgOf := make(map[string]*Package)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			pkgOf[pkg.Fset.Position(f.Pos()).Filename] = pkg
		}
	}
	for _, pkg := range pkgs {
		allow := buildAllowIndex(pkg.Fset, pkg.Files)
		for _, a := range perPkg {
			var raw []Diagnostic
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				ModulePath: pkg.ModulePath,
				Path:       pkg.Path,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				diags:      &raw,
			}
			a.Run(pass)
			for _, d := range raw {
				if allow.allows(d.Pos.Filename, d.Pos.Line, a.Name) {
					continue
				}
				if cfg.exempts(a.Name, pkg.relFile(d.Pos.Filename)) {
					continue
				}
				diags = append(diags, d)
			}
		}
	}
	if len(module) > 0 {
		allow := make(allowIndex)
		for _, pkg := range pkgs {
			mergeAllowIndex(allow, buildAllowIndex(pkg.Fset, pkg.Files))
		}
		for _, a := range module {
			var raw []Diagnostic
			mp := &ModulePass{Analyzer: a, Pkgs: pkgs, diags: &raw}
			a.RunModule(mp)
			for _, d := range raw {
				if allow.allows(d.Pos.Filename, d.Pos.Line, a.Name) {
					continue
				}
				if p := pkgOf[d.Pos.Filename]; p != nil && cfg.exempts(a.Name, p.relFile(d.Pos.Filename)) {
					continue
				}
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}
