package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrcheckAnalyzer flags silently dropped error returns: a call whose
// result list ends in error, used as a bare statement (including go/defer
// statements — the classic unchecked `defer f.Close()`). An explicit
// blank assignment (`_ = f()` / `_, _ = h.Write(b)`) is visible intent
// and is not flagged.
//
// Documented exclusions (see DESIGN.md): the fmt print family
// (fmt.Print*, fmt.Fprint*) — the experiment printers emit thousands of
// rows through an io.Writer and a write error there surfaces at the
// caller — and methods on *bytes.Buffer / *strings.Builder, whose error
// results are documented to always be nil.
var ErrcheckAnalyzer = &Analyzer{
	Name: "errcheck",
	Doc:  "forbid silently dropped error returns (use explicit `_ =` when a drop is intended)",
	Run:  runErrcheck,
}

func runErrcheck(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			var how string
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = ast.Unparen(n.X).(*ast.CallExpr)
				how = "call"
			case *ast.GoStmt:
				call = n.Call
				how = "go statement"
			case *ast.DeferStmt:
				call = n.Call
				how = "defer statement"
			default:
				return true
			}
			if call == nil || !p.returnsError(call) || p.errcheckExcluded(call) {
				return true
			}
			p.Reportf(call.Pos(), "%s drops its error result; handle it or assign explicitly to _", how)
			return true
		})
	}
}

// returnsError reports whether the call's final result is error (or a
// concrete type assignable to it).
func (p *Pass) returnsError(call *ast.CallExpr) bool {
	t := p.TypeOf(call)
	if t == nil {
		return false
	}
	var last types.Type
	switch r := t.(type) {
	case *types.Tuple:
		if r.Len() == 0 {
			return false
		}
		last = r.At(r.Len() - 1).Type()
	default:
		last = r
	}
	errType := types.Universe.Lookup("error").Type()
	return types.AssignableTo(last, errType)
}

// errcheckExcluded applies the documented exclusion list.
func (p *Pass) errcheckExcluded(call *ast.CallExpr) bool {
	fn := p.CalleeFunc(call)
	if fn == nil {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		switch typeString(recv.Type()) {
		case "*bytes.Buffer", "*strings.Builder":
			return true
		}
	}
	return false
}

// typeString renders a receiver type as "*pkg.Name" / "pkg.Name".
func typeString(t types.Type) string {
	ptr := ""
	if pt, ok := t.(*types.Pointer); ok {
		ptr = "*"
		t = pt.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return ptr + named.Obj().Pkg().Path() + "." + named.Obj().Name()
}
