package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis.
type Package struct {
	// ModulePath is the module path from go.mod (e.g. "odin").
	ModulePath string
	// Path is the package import path (e.g. "odin/internal/rng").
	Path string
	// Dir is the absolute directory holding the package sources, and
	// ModuleDir the absolute module root.
	Dir       string
	ModuleDir string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	Info      *types.Info
}

// relFile returns filename relative to the module root, in slash form, for
// Config prefix matching. Filenames outside the module are returned as-is.
func (p *Package) relFile(filename string) string {
	if r, err := filepath.Rel(p.ModuleDir, filename); err == nil && !strings.HasPrefix(r, "..") {
		return filepath.ToSlash(r)
	}
	return filepath.ToSlash(filename)
}

// Load parses and type-checks the module packages selected by patterns,
// resolved relative to moduleDir (the directory containing go.mod).
// Supported patterns: "./..." (every package), "./dir/..." (subtree), and
// "./dir" (single package). Test files are not loaded: the invariants the
// suite enforces guard the simulation outputs, and fixtures under test
// deliberately violate them.
func Load(moduleDir string, patterns []string) ([]*Package, error) {
	moduleDir, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	modulePath, err := readModulePath(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	// Index every package directory in the module up front so imports of
	// unselected packages still resolve.
	allDirs, err := packageDirs(moduleDir)
	if err != nil {
		return nil, err
	}
	dirByPath := make(map[string]string, len(allDirs))
	for _, dir := range allDirs {
		dirByPath[importPathFor(modulePath, moduleDir, dir)] = dir
	}

	selected, err := expandPatterns(moduleDir, allDirs, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	ld := &loader{
		fset:       fset,
		moduleDir:  moduleDir,
		modulePath: modulePath,
		dirByPath:  dirByPath,
		stdlib:     importer.Default(),
		cache:      make(map[string]*Package),
		checking:   make(map[string]bool),
	}
	var pkgs []*Package
	for _, dir := range selected {
		pkg, err := ld.load(importPathFor(modulePath, moduleDir, dir))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// loader type-checks module packages on demand, in import-dependency
// order, caching results. Standard-library imports go through the
// compiler's export data (fast) with a from-source fallback, so the suite
// needs nothing beyond a working toolchain.
type loader struct {
	fset       *token.FileSet
	moduleDir  string
	modulePath string
	dirByPath  map[string]string
	stdlib     types.Importer
	stdlibSrc  types.Importer
	cache      map[string]*Package
	checking   map[string]bool
}

// Import implements types.Importer so the loader can hand itself to
// types.Config and resolve both module-local and stdlib imports.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := ld.dirByPath[path]; ok {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	tp, err := ld.stdlib.Import(path)
	if err == nil {
		return tp, nil
	}
	// Export data missing (e.g. cold build cache): fall back to
	// type-checking the stdlib package from GOROOT source.
	if ld.stdlibSrc == nil {
		ld.stdlibSrc = importer.ForCompiler(ld.fset, "source", nil)
	}
	return ld.stdlibSrc.Import(path)
}

func (ld *loader) load(path string) (*Package, error) {
	if pkg, ok := ld.cache[path]; ok {
		return pkg, nil
	}
	if ld.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	ld.checking[path] = true
	defer delete(ld.checking, path)

	dir, ok := ld.dirByPath[path]
	if !ok {
		return nil, fmt.Errorf("lint: package %q not found in module %s", path, ld.modulePath)
	}
	files, err := parseDir(ld.fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: ld,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, ld.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}
	pkg := &Package{
		ModulePath: ld.modulePath,
		Path:       path,
		Dir:        dir,
		ModuleDir:  ld.moduleDir,
		Fset:       ld.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	ld.cache[path] = pkg
	return pkg, nil
}

// parseDir parses every non-test .go file in dir, sorted by name for
// deterministic diagnostics.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// goFileNames lists the buildable non-test .go files in dir, sorted.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") ||
			strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// packageDirs walks moduleDir and returns every directory containing at
// least one non-test .go file, skipping hidden dirs and testdata.
func packageDirs(moduleDir string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(moduleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != moduleDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		names, err := goFileNames(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// expandPatterns resolves command-line package patterns to directories.
func expandPatterns(moduleDir string, allDirs []string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var out []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			for _, d := range allDirs {
				add(d)
			}
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(moduleDir, strings.TrimSuffix(pat, "/..."))
			matched := false
			for _, d := range allDirs {
				if d == root || strings.HasPrefix(d, root+string(filepath.Separator)) {
					add(d)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("lint: pattern %q matched no packages", pat)
			}
		default:
			dir := filepath.Join(moduleDir, pat)
			names, err := goFileNames(dir)
			if err != nil || len(names) == 0 {
				return nil, fmt.Errorf("lint: pattern %q matched no packages", pat)
			}
			add(dir)
		}
	}
	sort.Strings(out)
	return out, nil
}

// importPathFor maps a package directory to its import path within the
// module.
func importPathFor(modulePath, moduleDir, dir string) string {
	rel, err := filepath.Rel(moduleDir, dir)
	if err != nil || rel == "." {
		return modulePath
	}
	return modulePath + "/" + filepath.ToSlash(rel)
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w (run from the module root?)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			mp := strings.TrimSpace(strings.Trim(strings.TrimSpace(rest), `"`))
			if mp != "" {
				return mp, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module path in %s", gomod)
}
