package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix is the inline suppression directive. The full syntax is
//
//	//lint:allow rule1[,rule2...] [-- reason]
//
// A directive suppresses the named rules on the line it appears on and on
// the line directly below it, so both trailing and preceding placements
// work:
//
//	start := time.Now() //lint:allow nondeterminism -- wall-clock report
//
//	//lint:allow nondeterminism -- wall-clock report
//	start := time.Now()
const allowPrefix = "//lint:allow"

// allowIndex maps filename -> line -> set of allowed rule names.
type allowIndex map[string]map[int]map[string]bool

// allows reports whether rule is suppressed at file:line.
func (idx allowIndex) allows(file string, line int, rule string) bool {
	return idx[file][line][rule]
}

// mergeAllowIndex folds src into dst (module-level runs need one index
// spanning every package's files).
func mergeAllowIndex(dst, src allowIndex) {
	for file, lines := range src {
		if dst[file] == nil {
			dst[file] = lines
			continue
		}
		for line, rules := range lines {
			if dst[file][line] == nil {
				dst[file][line] = rules
				continue
			}
			for r := range rules {
				dst[file][line][r] = true
			}
		}
	}
}

// buildAllowIndex scans every comment in files for allow directives.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) allowIndex {
	idx := make(allowIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rules, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx[pos.Filename] = lines
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					set := lines[line]
					if set == nil {
						set = make(map[string]bool)
						lines[line] = set
					}
					for _, r := range rules {
						set[r] = true
					}
				}
			}
		}
	}
	return idx
}

// parseAllow extracts the rule list from a single comment, if it is an
// allow directive.
func parseAllow(text string) ([]string, bool) {
	rest, ok := strings.CutPrefix(text, allowPrefix)
	if !ok {
		return nil, false
	}
	// Require a space (or end) after the prefix so "//lint:allowx" does
	// not parse.
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false
	}
	// Strip an optional trailing "-- reason".
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	var rules []string
	for _, field := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		if field != "" {
			rules = append(rules, field)
		}
	}
	return rules, len(rules) > 0
}
