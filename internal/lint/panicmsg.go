package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// PanicmsgAnalyzer enforces the repository's panic-message convention:
// every panic carries a "pkg: " prefix naming the package that raised it
// (as in `panic("mat: Dot length mismatch")`), so a stack-less crash
// report still localizes the fault. A panic argument must be either a
// constant string with the prefix, or a fmt.Sprintf / fmt.Errorf call
// whose constant format string has the prefix. Anything else — a bare
// `panic(err)`, a computed string — is flagged.
var PanicmsgAnalyzer = &Analyzer{
	Name: "panicmsg",
	Doc:  "panic messages must carry the \"pkg: \" prefix convention",
	Run:  runPanicmsg,
}

func runPanicmsg(p *Pass) {
	want := p.Pkg.Name() + ": "
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := p.Info.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "panic" {
				return true
			}
			arg := ast.Unparen(call.Args[0])
			if msg, ok := p.constString(arg); ok {
				if !strings.HasPrefix(msg, want) {
					p.Reportf(arg.Pos(), "panic message %q must start with %q", msg, want)
				}
				return true
			}
			if format, ok := p.formatCallString(arg); ok {
				if !strings.HasPrefix(format, want) {
					p.Reportf(arg.Pos(), "panic format %q must start with %q", format, want)
				}
				return true
			}
			p.Reportf(arg.Pos(), "panic argument must be a %q-prefixed string or fmt.Sprintf/fmt.Errorf with a prefixed format (wrap errors: fmt.Sprintf(%q, err))", want, want+"%v")
			return true
		})
	}
}

// constString returns the constant string value of expr, if any.
func (p *Pass) constString(expr ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatCallString returns the constant format string of a
// fmt.Sprintf/fmt.Errorf/fmt.Sprint call used as a panic argument.
func (p *Pass) formatCallString(expr ast.Expr) (string, bool) {
	call, ok := expr.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return "", false
	}
	fn := p.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return "", false
	}
	switch fn.Name() {
	case "Sprintf", "Errorf", "Sprint", "Sprintln":
	default:
		return "", false
	}
	return p.constString(ast.Unparen(call.Args[0]))
}
