package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// NondeterminismAnalyzer enforces the repository's determinism contract:
// all randomness flows from internal/rng, no wall-clock reads influence
// results, and map iteration (randomized per run by the Go runtime) never
// drives order-sensitive computation.
//
// Three checks:
//
//  1. importing math/rand or math/rand/v2 is forbidden everywhere;
//  2. calling time.Now or time.Since is forbidden everywhere (allowlist
//     the rare legitimate wall-clock progress report);
//  3. inside core packages (everything but cmd/ and examples/), ranging
//     over a map is flagged when the body accumulates floating-point
//     values into an outer variable (iteration order changes rounding) or
//     emits output (iteration order changes the artefact byte stream).
//     Collecting keys into a slice and sorting is the sanctioned pattern
//     and is not flagged.
var NondeterminismAnalyzer = &Analyzer{
	Name: "nondeterminism",
	Doc:  "forbid math/rand, time.Now/Since, and order-sensitive map iteration; internal/rng is the only randomness source",
	Run:  runNondeterminism,
}

var forbiddenImports = map[string]string{
	"math/rand":    "use internal/rng (SplitMix64 labelled streams) instead",
	"math/rand/v2": "use internal/rng (SplitMix64 labelled streams) instead",
}

var forbiddenTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runNondeterminism(p *Pass) {
	for _, file := range p.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := forbiddenImports[path]; ok {
				p.Reportf(imp.Pos(), "import of %s is forbidden: %s", path, why)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := p.CalleeFunc(n); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "time" && forbiddenTimeFuncs[fn.Name()] {
					p.Reportf(n.Pos(), "time.%s reads the wall clock; results must not depend on it", fn.Name())
				}
			case *ast.RangeStmt:
				p.checkMapRange(n)
			}
			return true
		})
	}
}

// checkMapRange flags order-sensitive work inside a range over a map.
func (p *Pass) checkMapRange(rng *ast.RangeStmt) {
	if p.InCommandLayer() {
		return
	}
	t := p.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if !isAccumOp(n.Tok) {
				return true
			}
			for _, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.Info.ObjectOf(id)
				if obj == nil || !isFloat(obj.Type()) {
					continue
				}
				// Only accumulation into variables that outlive the loop
				// is order-sensitive.
				if obj.Pos() < rng.Pos() || obj.Pos() > rng.End() {
					p.Reportf(n.Pos(), "floating-point accumulation into %q over map iteration is order-sensitive; iterate a sorted key slice", id.Name)
				}
			}
		case *ast.CallExpr:
			fn := p.CalleeFunc(n)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
				(strings.HasPrefix(fn.Name(), "Fprint") || strings.HasPrefix(fn.Name(), "Print")) {
				p.Reportf(n.Pos(), "output via fmt.%s inside map iteration has per-run ordering; iterate a sorted key slice", fn.Name())
			}
		}
		return true
	})
}

func isAccumOp(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	}
	return false
}

// isFloat reports whether t's underlying type is a floating-point basic
// type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
