package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module on disk and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const testGoMod = "module example.com/tmpmod\n\ngo 1.24\n"

func TestLoadResolvesModuleImports(t *testing.T) {
	t.Parallel()
	dir := writeModule(t, map[string]string{
		"go.mod": testGoMod,
		"root.go": `package tmpmod
import "example.com/tmpmod/internal/sub"
func Root() int { return sub.Value() }
`,
		"internal/sub/sub.go": `package sub
func Value() int { return 42 }
`,
		// Test files must never be analyzed: they may seed violations.
		"internal/sub/sub_test.go": `package sub
import "math/rand"
func helper() int { return rand.Int() }
`,
	})
	pkgs, err := Load(dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	want := []string{"example.com/tmpmod", "example.com/tmpmod/internal/sub"}
	if !reflect.DeepEqual(paths, want) {
		t.Fatalf("loaded %v, want %v", paths, want)
	}
	if diags := Run(pkgs, Analyzers(), Config{}); len(diags) != 0 {
		t.Fatalf("clean module produced diagnostics: %v", diags)
	}
}

func TestLoadPatternSubset(t *testing.T) {
	t.Parallel()
	dir := writeModule(t, map[string]string{
		"go.mod":      testGoMod,
		"a/a.go":      "package a\nfunc A() {}\n",
		"b/b.go":      "package b\nfunc B() {}\n",
		"b/deep/d.go": "package deep\nfunc D() {}\n",
	})
	pkgs, err := Load(dir, []string{"./b/..."})
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	want := []string{"example.com/tmpmod/b", "example.com/tmpmod/b/deep"}
	if !reflect.DeepEqual(paths, want) {
		t.Fatalf("loaded %v, want %v", paths, want)
	}

	if _, err := Load(dir, []string{"./nope"}); err == nil {
		t.Fatal("expected error for pattern matching no packages")
	}

	single, err := Load(dir, []string{"./a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != 1 || single[0].Path != "example.com/tmpmod/a" {
		t.Fatalf("single-dir pattern loaded %v", single)
	}
}

func TestLoadReportsTypeErrors(t *testing.T) {
	t.Parallel()
	dir := writeModule(t, map[string]string{
		"go.mod":      testGoMod,
		"bad/bad.go":  "package bad\nfunc F() int { return \"not an int\" }\n",
		"good/get.go": "package good\nfunc G() {}\n",
	})
	if _, err := Load(dir, []string{"./bad"}); err == nil || !strings.Contains(err.Error(), "type-checking") {
		t.Fatalf("want type-checking error, got %v", err)
	}
}

func TestConfigExemption(t *testing.T) {
	t.Parallel()
	dir := writeModule(t, map[string]string{
		"go.mod": testGoMod,
		"cmd/tool/main.go": `package main
import "time"
func main() { _ = time.Now() }
`,
	})
	pkgs, err := Load(dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run(pkgs, Analyzers(), Config{}); len(diags) != 1 {
		t.Fatalf("want 1 finding without exemption, got %v", diags)
	}
	cfg := Config{Exempt: map[string][]string{"nondeterminism": {"cmd/"}}}
	if diags := Run(pkgs, Analyzers(), cfg); len(diags) != 0 {
		t.Fatalf("want 0 findings with cmd/ exemption, got %v", diags)
	}
	star := Config{Exempt: map[string][]string{"*": {"cmd/"}}}
	if diags := Run(pkgs, Analyzers(), star); len(diags) != 0 {
		t.Fatalf("want 0 findings with wildcard exemption, got %v", diags)
	}
}

func TestParseAllow(t *testing.T) {
	t.Parallel()
	tests := []struct {
		text  string
		rules []string
		ok    bool
	}{
		{"//lint:allow floateq", []string{"floateq"}, true},
		{"//lint:allow floateq,errcheck", []string{"floateq", "errcheck"}, true},
		{"//lint:allow floateq, errcheck -- replay check", []string{"floateq", "errcheck"}, true},
		{"//lint:allow nondeterminism -- wall clock", []string{"nondeterminism"}, true},
		{"//lint:allow", nil, false},
		{"//lint:allowx floateq", nil, false},
		{"// lint:allow floateq", nil, false},
		{"//lint:allow -- reason only", nil, false},
	}
	for _, tt := range tests {
		rules, ok := parseAllow(tt.text)
		if ok != tt.ok || !reflect.DeepEqual(rules, tt.rules) {
			t.Errorf("parseAllow(%q) = %v, %v; want %v, %v", tt.text, rules, ok, tt.rules, tt.ok)
		}
	}
}

func TestByName(t *testing.T) {
	t.Parallel()
	for _, want := range []string{"nondeterminism", "floateq", "unitmix", "panicmsg", "errcheck"} {
		a, err := ByName(want)
		if err != nil || a.Name != want {
			t.Fatalf("ByName(%q) = %v, %v", want, a, err)
		}
	}
	if _, err := ByName("nosuchrule"); err == nil {
		t.Fatal("ByName should reject unknown rules")
	}
	if len(Analyzers()) != 5 {
		t.Fatalf("registry has %d analyzers, want 5", len(Analyzers()))
	}
}

func TestDiagnosticString(t *testing.T) {
	t.Parallel()
	d := Diagnostic{Rule: "floateq", Message: "bad compare"}
	d.Pos.Filename = "x/y.go"
	d.Pos.Line = 7
	d.Pos.Column = 3
	if got, want := d.String(), "x/y.go:7:3: floateq: bad compare"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
