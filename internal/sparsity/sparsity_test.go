package sparsity

import (
	"testing"
	"testing/quick"

	"odin/internal/dnn"
)

func TestDefaultConfigValid(t *testing.T) {
	t.Parallel()
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	t.Parallel()
	mutations := []func(*Config){
		func(c *Config) { c.BaseSparsity = 1 },
		func(c *Config) { c.BaseSparsity = -0.1 },
		func(c *Config) { c.Cluster = 1.5 },
		func(c *Config) { c.Jitter = 0.6 },
		func(c *Config) { c.SizeSlope = -1 },
	}
	for i, mutate := range mutations {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestPruneFillsAllLayers(t *testing.T) {
	t.Parallel()
	m := dnn.NewResNet18()
	if err := Prune(m, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	for _, l := range m.Layers {
		if l.WeightSparsity < 0.05 || l.WeightSparsity > 0.95 {
			t.Errorf("%s weight sparsity %v out of schedule bounds", l.Name, l.WeightSparsity)
		}
		if l.ActSparsity < 0.05 || l.ActSparsity > 0.95 {
			t.Errorf("%s activation sparsity %v out of bounds", l.Name, l.ActSparsity)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("pruned model invalid: %v", err)
	}
}

func TestPruneDeterministic(t *testing.T) {
	t.Parallel()
	a, b := dnn.NewVGG11(), dnn.NewVGG11()
	cfg := DefaultConfig()
	if err := Prune(a, cfg); err != nil {
		t.Fatal(err)
	}
	if err := Prune(b, cfg); err != nil {
		t.Fatal(err)
	}
	for i := range a.Layers {
		if a.Layers[i].WeightSparsity != b.Layers[i].WeightSparsity {
			t.Fatalf("layer %d sparsity differs between identical runs", i)
		}
	}
}

func TestPruneSeedChangesDraws(t *testing.T) {
	t.Parallel()
	a, b := dnn.NewVGG11(), dnn.NewVGG11()
	cfgA, cfgB := DefaultConfig(), DefaultConfig()
	cfgB.Seed = 99
	_ = Prune(a, cfgA)
	_ = Prune(b, cfgB)
	same := true
	for i := range a.Layers {
		if a.Layers[i].WeightSparsity != b.Layers[i].WeightSparsity {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestStemPrunedGently(t *testing.T) {
	t.Parallel()
	m := dnn.NewResNet18()
	_ = Prune(m, DefaultConfig())
	stem := m.Layers[0].WeightSparsity
	// Mid-network 3×3 convs should be markedly sparser than the stem.
	var midSum float64
	var midN int
	for i, l := range m.Layers {
		if i > 4 && i < len(m.Layers)-1 && !l.Skip && l.KernelH == 3 {
			midSum += l.WeightSparsity
			midN++
		}
	}
	if midN == 0 {
		t.Fatal("no mid-network layers found")
	}
	if mid := midSum / float64(midN); stem >= mid {
		t.Fatalf("stem sparsity %v not below mid-network mean %v", stem, mid)
	}
}

func TestPruneRejectsBadConfig(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	cfg.BaseSparsity = 2
	if err := Prune(dnn.NewVGG11(), cfg); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestSegmentZeroFractionBasics(t *testing.T) {
	t.Parallel()
	p := Profile{Weight: 0.6, Cluster: 0.85}
	f := p.SegmentZeroFraction(16)
	if f <= 0 || f >= 1 {
		t.Fatalf("fraction %v out of (0,1)", f)
	}
	// Structured floor: at least Cluster·Weight is always skippable.
	if f < 0.85*0.6 {
		t.Fatalf("fraction %v below structured floor %v", f, 0.85*0.6)
	}
}

func TestSegmentZeroFractionMonotoneInWidth(t *testing.T) {
	t.Parallel()
	p := Profile{Weight: 0.7, Cluster: 0.5}
	prev := 2.0
	for _, w := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		f := p.SegmentZeroFraction(w)
		if f > prev {
			t.Fatalf("fraction increased with width %d: %v > %v", w, f, prev)
		}
		prev = f
	}
}

func TestSegmentZeroFractionQuickProperties(t *testing.T) {
	t.Parallel()
	f := func(wRaw uint8, sRaw, cRaw uint16) bool {
		width := int(wRaw%128) + 1
		p := Profile{
			Weight:  float64(sRaw) / 65536, // [0,1)
			Cluster: float64(cRaw) / 65535, // [0,1]
		}
		v := p.SegmentZeroFraction(width)
		if v < 0 || v >= 1 {
			return false
		}
		// Wider segments can never be easier to skip.
		return p.SegmentZeroFraction(width+1) <= v+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentZeroFractionDenseLayer(t *testing.T) {
	t.Parallel()
	p := Profile{Weight: 0, Cluster: 0.85}
	if p.SegmentZeroFraction(8) != 0 {
		t.Fatal("dense layer should have no skippable segments")
	}
}

func TestSegmentZeroFractionFullSparseClamped(t *testing.T) {
	t.Parallel()
	p := Profile{Weight: 0.999999, Cluster: 1}
	if f := p.SegmentZeroFraction(4); f >= 1 {
		t.Fatalf("fraction %v must stay below 1", f)
	}
}

func TestSegmentZeroFractionPanicsOnBadWidth(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("width 0 did not panic")
		}
	}()
	Profile{Weight: 0.5}.SegmentZeroFraction(0)
}

func TestProfileForUsesLayerSparsity(t *testing.T) {
	t.Parallel()
	m := dnn.NewVGG11()
	cfg := DefaultConfig()
	_ = Prune(m, cfg)
	p := ProfileFor(m.Layers[3], cfg)
	if p.Weight != m.Layers[3].WeightSparsity || p.Cluster != cfg.Cluster {
		t.Fatalf("ProfileFor mismatch: %+v", p)
	}
}

func TestEffectiveRowSkipNarrowBeatsWide(t *testing.T) {
	t.Parallel()
	m := dnn.NewVGG11()
	cfg := DefaultConfig()
	_ = Prune(m, cfg)
	l := m.Layers[5]
	if EffectiveRowSkip(l, cfg, 4) < EffectiveRowSkip(l, cfg, 64) {
		t.Fatal("narrow segments should skip at least as much as wide ones")
	}
}

func TestActivationSparsityTransformerLower(t *testing.T) {
	t.Parallel()
	vit := dnn.NewViT()
	cfg := DefaultConfig()
	_ = Prune(vit, cfg)
	var tokenSum, tokenN float64
	for _, l := range vit.Layers {
		if l.Type == dnn.Attention {
			tokenSum += l.ActSparsity
			tokenN++
		}
	}
	resnet := dnn.NewResNet18()
	_ = Prune(resnet, cfg)
	var convSum, convN float64
	for _, l := range resnet.Layers {
		if l.Type == dnn.Conv {
			convSum += l.ActSparsity
			convN++
		}
	}
	if tokenSum/tokenN >= convSum/convN {
		t.Fatalf("attention activations (%v) should be denser than ReLU convs (%v)",
			tokenSum/tokenN, convSum/convN)
	}
}

func TestAllWorkloadsPrunable(t *testing.T) {
	t.Parallel()
	for _, m := range dnn.AllWorkloads() {
		if err := Prune(m, DefaultConfig()); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		if s := m.MeanWeightSparsity(); s < 0.3 || s > 0.95 {
			t.Errorf("%s mean sparsity %v implausible for 'highly sparse' models", m.Name, s)
		}
	}
}
