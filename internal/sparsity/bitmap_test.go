package sparsity

import (
	"math"
	"testing"
)

func testProfile() Profile {
	return Profile{Weight: 0.6, Cluster: 0.85, ClusterWidth: 16}
}

func TestBitmapBasics(t *testing.T) {
	t.Parallel()
	b := NewBitmap(10, 20)
	if b.Get(3, 7) {
		t.Fatal("fresh bitmap not zero")
	}
	b.Set(3, 7)
	if !b.Get(3, 7) {
		t.Fatal("Set did not stick")
	}
	if b.Get(3, 8) || b.Get(4, 7) {
		t.Fatal("Set leaked to neighbours")
	}
}

func TestBitmapPanics(t *testing.T) {
	t.Parallel()
	for _, fn := range []func(){
		func() { NewBitmap(0, 5) },
		func() { NewBitmap(5, 5).Get(5, 0) },
		func() { NewBitmap(5, 5).Set(0, -1) },
		func() { NewBitmap(5, 5).SegmentZeroFraction(0) },
		func() { NewBitmap(5, 5).OUCycles(0, 4) },
		func() { NewBitmap(5, 5).CompressRowIndices(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSynthesizeMatchesDensity(t *testing.T) {
	t.Parallel()
	p := testProfile()
	b := Synthesize(512, 512, p, "density")
	// Non-zero density ≈ 1 − Weight.
	if got, want := b.Density(), 1-p.Weight; math.Abs(got-want) > 0.03 {
		t.Fatalf("density %v, want ≈ %v", got, want)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	t.Parallel()
	p := testProfile()
	a := Synthesize(64, 64, p, "same")
	b := Synthesize(64, 64, p, "same")
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			if a.Get(i, j) != b.Get(i, j) {
				t.Fatal("synthesis not deterministic")
			}
		}
	}
	c := Synthesize(64, 64, p, "other")
	diff := 0
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			if a.Get(i, j) != c.Get(i, j) {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical bitmaps")
	}
}

// The headline validation: the measured segment-zero fraction of a
// synthesized bitmap tracks the analytic Profile model across OU widths.
func TestMeasuredSkipMatchesAnalyticModel(t *testing.T) {
	t.Parallel()
	p := testProfile()
	b := Synthesize(1024, 512, p, "validate")
	for _, width := range []int{4, 8, 16, 32, 64} {
		analytic := p.SegmentZeroFraction(width)
		measured := b.SegmentZeroFraction(width)
		if math.Abs(analytic-measured) > 0.05 {
			t.Errorf("width %d: analytic %.3f vs measured %.3f", width, analytic, measured)
		}
	}
}

func TestMeasuredSkipMonotoneInWidth(t *testing.T) {
	t.Parallel()
	b := Synthesize(256, 256, testProfile(), "mono")
	prev := 2.0
	for _, w := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		f := b.SegmentZeroFraction(w)
		if f > prev+1e-12 {
			t.Fatalf("measured skip increased with width %d: %v > %v", w, f, prev)
		}
		prev = f
	}
}

func TestOUCyclesExactSmallCase(t *testing.T) {
	t.Parallel()
	// 4×4 bitmap, rows 0 and 2 non-zero in the left pair of columns only.
	b := NewBitmap(4, 4)
	b.Set(0, 0)
	b.Set(2, 1)
	// OU 2×2: left group has rows {0,2} active → ceil(2/2)=1 step;
	// right group empty → 1 control step. Total 2.
	if got := b.OUCycles(2, 2); got != 2 {
		t.Fatalf("cycles = %d, want 2", got)
	}
	// OU 1×2: left group 2 steps, right group 1 → 3.
	if got := b.OUCycles(1, 2); got != 3 {
		t.Fatalf("cycles = %d, want 3", got)
	}
}

func TestOUCyclesMonotoneInR(t *testing.T) {
	t.Parallel()
	b := Synthesize(256, 256, testProfile(), "cycles")
	prev := math.MaxInt
	for _, r := range []int{4, 8, 16, 32, 64, 128} {
		c := b.OUCycles(r, 16)
		if c > prev {
			t.Fatalf("cycles increased with R=%d: %d > %d", r, c, prev)
		}
		prev = c
	}
}

func TestCompressRowIndices(t *testing.T) {
	t.Parallel()
	b := NewBitmap(256, 32)
	b.Set(0, 0)
	b.Set(100, 5)
	b.Set(100, 20)
	// Width 16: group 0 has segments at rows 0 and 100 (2 entries);
	// group 1 has row 100 (1 entry). 3 entries × 8 bits.
	tab := b.CompressRowIndices(16)
	if tab.Entries != 3 {
		t.Fatalf("entries = %d, want 3", tab.Entries)
	}
	if tab.Bits != 3*8 {
		t.Fatalf("bits = %d, want 24", tab.Bits)
	}
	if tab.KB() <= 0 {
		t.Fatal("KB must be positive")
	}
}

func TestIndexStorageGrowsWithNarrowerOUs(t *testing.T) {
	t.Parallel()
	// Narrow OU columns mean more column groups, hence more stored
	// indices — the §II storage-blowup argument.
	b := Synthesize(512, 512, testProfile(), "storage")
	wide := b.CompressRowIndices(64)
	narrow := b.CompressRowIndices(4)
	if narrow.Entries <= wide.Entries {
		t.Fatalf("narrow OU (%d entries) should store more than wide (%d)",
			narrow.Entries, wide.Entries)
	}
}

func TestBitmapConsistencyWithAnalyticCycles(t *testing.T) {
	t.Parallel()
	// The analytic LayerWork cycle model and the measured bitmap cycles
	// agree within discretisation error on matched inputs.
	p := testProfile()
	b := Synthesize(128, 128, p, "analytic-check")
	for _, r := range []int{8, 16, 32} {
		for _, c := range []int{8, 16, 32} {
			measured := b.OUCycles(r, c)
			// Analytic: ceil(rows·(1−skip)/r) per column group.
			skip := p.SegmentZeroFraction(c)
			active := int(math.Ceil(128 * (1 - skip)))
			groups := (128 + c - 1) / c
			analytic := ((active + r - 1) / r) * groups
			ratio := float64(measured) / float64(analytic)
			if ratio < 0.6 || ratio > 1.6 {
				t.Errorf("OU %dx%d: measured %d vs analytic %d (ratio %.2f)",
					r, c, measured, analytic, ratio)
			}
		}
	}
}
