// Package sparsity simulates the crossbar-aware weight/activation pruning
// the paper applies to its workloads (§V.A, citing Ogbogu et al. ISLPED'23)
// and converts the resulting layer sparsity into the row-segment skip
// statistics the OU cycle model consumes.
//
// The paper's pipeline prunes pre-trained models so that zeros cluster into
// crossbar-aligned row segments (that is what makes OU-level row skipping
// effective). We reproduce the *statistics* of that process: each layer
// gets a deterministic weight/activation sparsity drawn from a
// size-and-role-aware schedule, and a Profile describing how those zeros
// cluster.
package sparsity

import (
	"fmt"
	"math"

	"odin/internal/dnn"
	"odin/internal/rng"
)

// Profile describes the zero structure of one pruned layer. It implements
// ou.SparsityProfile.
type Profile struct {
	// Weight is the fraction of zero weights in the layer, in [0, 1).
	Weight float64
	// Cluster is the fraction of the zero weights arranged in
	// crossbar-aligned zero blocks (the structured component produced by
	// crossbar-aware pruning); the remainder is unstructured. In [0, 1].
	Cluster float64
	// ClusterWidth is the granularity (in cells) the pruning pass aligned
	// its zero blocks to. OU widths up to ClusterWidth get the full
	// structured skip rate; wider segments span several blocks and skip
	// only when all of them are zero. Non-positive values default to 16
	// (the granularity of the OU-level compression schemes the paper
	// builds on).
	ClusterWidth int
}

// DefaultClusterWidth is the pruning alignment granularity assumed when a
// profile does not specify one.
const DefaultClusterWidth = 16

// SegmentZeroFraction returns the probability that a row segment of the
// given width is entirely zero and can be skipped by the OU scheduler.
// The structured component contributes its full rate up to ClusterWidth
// and decays geometrically beyond it (a wider segment covers
// width/ClusterWidth independent blocks); the unstructured remainder only
// zeroes a whole segment when all `width` cells happen to be zero.
func (p Profile) SegmentZeroFraction(width int) float64 {
	if width < 1 {
		panic(fmt.Sprintf("sparsity: invalid segment width %d", width))
	}
	s := p.Weight
	if s <= 0 {
		return 0
	}
	w0 := p.ClusterWidth
	if w0 <= 0 {
		w0 = DefaultClusterWidth
	}
	// Blocks covered beyond the first: 0 while width ≤ w0.
	extra := math.Max(0, float64(width-w0)/float64(w0))
	structured := p.Cluster * s * math.Pow(s, extra)
	// Residual unstructured zero rate among the non-clustered weights.
	residual := (1 - p.Cluster) * s
	random := math.Pow(residual, float64(width))
	f := structured + random
	if f >= 1 {
		f = 1 - 1e-9 // a fully skippable layer still needs control cycles
	}
	return f
}

// Config parameterises the pruning simulator.
type Config struct {
	// Seed decorrelates pruning draws between experiments; the layer name
	// and model name are always mixed in, so the same (seed, model) pair is
	// reproducible.
	Seed uint64
	// BaseSparsity is the schedule's centre point (fraction of zeros).
	BaseSparsity float64
	// SizeSlope adds sparsity per decade of weight count above 10^5
	// (bigger layers are more over-parameterised and prune harder).
	SizeSlope float64
	// Cluster is the structured fraction passed through to Profile.
	Cluster float64
	// ClusterWidth is the pruning alignment granularity passed through to
	// Profile; non-positive defaults to DefaultClusterWidth.
	ClusterWidth int
	// Jitter is the half-width of the uniform per-layer perturbation.
	Jitter float64
}

// DefaultConfig matches the paper's "highly sparse pre-trained DNN models"
// obtained via crossbar-aware pruning.
func DefaultConfig() Config {
	return Config{
		Seed:         1,
		BaseSparsity: 0.60,
		SizeSlope:    0.08,
		Cluster:      0.85,
		ClusterWidth: DefaultClusterWidth,
		Jitter:       0.10,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.BaseSparsity < 0 || c.BaseSparsity >= 1:
		return fmt.Errorf("sparsity: base sparsity %v out of [0,1)", c.BaseSparsity)
	case c.Cluster < 0 || c.Cluster > 1:
		return fmt.Errorf("sparsity: cluster fraction %v out of [0,1]", c.Cluster)
	case c.Jitter < 0 || c.Jitter > 0.5:
		return fmt.Errorf("sparsity: jitter %v out of [0,0.5]", c.Jitter)
	case c.SizeSlope < 0:
		return fmt.Errorf("sparsity: negative size slope %v", c.SizeSlope)
	}
	return nil
}

// Prune fills WeightSparsity and ActSparsity for every layer of the model,
// deterministically in (cfg.Seed, model name, layer name). It returns an
// error if the config is invalid; the model is modified in place.
func Prune(m *dnn.Model, cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	for i := range m.Layers {
		l := &m.Layers[i]
		src := rng.New(cfg.Seed).Fork(m.Name + "/" + l.Name)
		l.WeightSparsity = layerSparsity(l, i, len(m.Layers), cfg, src)
		l.ActSparsity = activationSparsity(l, cfg, src)
	}
	return nil
}

// layerSparsity implements the schedule: centre + size term + role
// adjustments + jitter, clamped to [0.05, 0.95].
func layerSparsity(l *dnn.Layer, idx, total int, cfg Config, src *rng.Source) float64 {
	s := cfg.BaseSparsity
	// Bigger layers prune harder (magnitude pruning concentrates survivors).
	s += cfg.SizeSlope * math.Log10(math.Max(float64(l.Weights()), 1)/1e5)
	// Role adjustments mirroring standard sensitivity-aware schedules:
	switch {
	case idx == 0:
		s -= 0.25 // stem: small and accuracy-critical, prune gently
	case idx == total-1:
		s -= 0.15 // classifier head
	case l.Skip:
		s -= 0.10 // 1×1 projections carry no redundancy from kernel space
	case l.Type == dnn.Attention:
		s -= 0.05 // QKV prunes slightly worse than MLP blocks
	}
	if l.KernelH == 1 && l.Type == dnn.Conv && !l.Skip {
		s -= 0.05 // pointwise convs (bottlenecks, transitions)
	}
	s += (2*src.Float64() - 1) * cfg.Jitter
	return clamp(s, 0.05, 0.95)
}

// activationSparsity models post-ReLU zero rates (≈50 % for conv nets) and
// GELU-style transformer activations (lower).
func activationSparsity(l *dnn.Layer, cfg Config, src *rng.Source) float64 {
	base := 0.50
	if l.Type == dnn.Attention || (l.Type == dnn.FC && l.InH > 1) {
		base = 0.30 // transformer token streams are denser
	}
	return clamp(base+(2*src.Float64()-1)*cfg.Jitter/2, 0.05, 0.95)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ProfileFor returns the pruned layer's zero-structure profile under the
// given config. Call Prune first; an unpruned layer yields a dense profile.
func ProfileFor(l dnn.Layer, cfg Config) Profile {
	return Profile{Weight: l.WeightSparsity, Cluster: cfg.Cluster, ClusterWidth: cfg.ClusterWidth}
}

// EffectiveRowSkip reports, for diagnostics, the fraction of row segments an
// OU of the given width can skip in the layer.
func EffectiveRowSkip(l dnn.Layer, cfg Config, width int) float64 {
	return ProfileFor(l, cfg).SegmentZeroFraction(width)
}
