package sparsity

import (
	"fmt"
	"math"

	"odin/internal/rng"
)

// Bitmap is a dense zero/non-zero mask of a weight block mapped onto a
// crossbar. Where Profile describes zero structure *statistically* (for
// the analytic cycle model), a Bitmap realises one concrete instance so
// that row-segment skipping and index-compression storage can be measured
// exactly — the machinery behind the rowskip and indexes experiments.
type Bitmap struct {
	Rows, Cols int
	words      []uint64
}

// NewBitmap allocates an all-zero (fully sparse) bitmap.
func NewBitmap(rows, cols int) *Bitmap {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("sparsity: invalid bitmap %dx%d", rows, cols))
	}
	return &Bitmap{Rows: rows, Cols: cols, words: make([]uint64, (rows*cols+63)/64)}
}

func (b *Bitmap) idx(i, j int) (int, uint64) {
	if i < 0 || i >= b.Rows || j < 0 || j >= b.Cols {
		panic(fmt.Sprintf("sparsity: bitmap index (%d,%d) outside %dx%d", i, j, b.Rows, b.Cols))
	}
	bit := i*b.Cols + j
	return bit / 64, 1 << (uint(bit) % 64)
}

// Set marks cell (i, j) as holding a non-zero weight.
func (b *Bitmap) Set(i, j int) {
	w, mask := b.idx(i, j)
	b.words[w] |= mask
}

// Get reports whether cell (i, j) holds a non-zero weight.
func (b *Bitmap) Get(i, j int) bool {
	w, mask := b.idx(i, j)
	return b.words[w]&mask != 0
}

// Density returns the fraction of non-zero cells.
func (b *Bitmap) Density() float64 {
	n := 0
	for i := 0; i < b.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			if b.Get(i, j) {
				n++
			}
		}
	}
	return float64(n) / float64(b.Rows*b.Cols)
}

// Synthesize realises a bitmap matching a pruning profile: whole
// ClusterWidth-aligned row segments are zeroed with the structured rate
// Cluster·Weight, and the remaining cells carry unstructured zeros at the
// residual rate, so the total zero fraction ≈ Weight and the segment-skip
// statistics match Profile.SegmentZeroFraction.
func Synthesize(rows, cols int, p Profile, seed string) *Bitmap {
	src := rng.NewFromString("bitmap/" + seed)
	b := NewBitmap(rows, cols)
	w0 := p.ClusterWidth
	if w0 <= 0 {
		w0 = DefaultClusterWidth
	}
	structured := p.Cluster * p.Weight
	// In-segment zero rate chosen so the TOTAL zero fraction equals Weight:
	// structured + (1−structured)·residual = Weight.
	residual := 0.0
	if structured < 1 {
		residual = (p.Weight - structured) / (1 - structured)
	}
	for i := 0; i < rows; i++ {
		for j0 := 0; j0 < cols; j0 += w0 {
			blockZero := src.Bernoulli(structured)
			end := j0 + w0
			if end > cols {
				end = cols
			}
			for j := j0; j < end; j++ {
				if blockZero {
					continue // whole segment pruned
				}
				if src.Bernoulli(residual) {
					continue // unstructured zero
				}
				b.Set(i, j)
			}
		}
	}
	return b
}

// SegmentZeroFraction measures the fraction of (row, column-group)
// segments of the given width that contain only zeros — the exact
// counterpart of Profile.SegmentZeroFraction.
func (b *Bitmap) SegmentZeroFraction(width int) float64 {
	if width < 1 {
		panic(fmt.Sprintf("sparsity: invalid segment width %d", width))
	}
	total, zero := 0, 0
	for i := 0; i < b.Rows; i++ {
		for j0 := 0; j0 < b.Cols; j0 += width {
			total++
			allZero := true
			end := j0 + width
			if end > b.Cols {
				end = b.Cols
			}
			for j := j0; j < end; j++ {
				if b.Get(i, j) {
					allZero = false
					break
				}
			}
			if allZero {
				zero++
			}
		}
	}
	return float64(zero) / float64(total)
}

// OUCycles counts the exact OU compute cycles for this bitmap at OU size
// R×C: per column group, zero row segments are skipped and the survivors
// packed into ⌈n/R⌉ row steps (the measured counterpart of
// ou.LayerWork.Cycles).
func (b *Bitmap) OUCycles(r, c int) int {
	if r < 1 || c < 1 {
		panic(fmt.Sprintf("sparsity: invalid OU %dx%d", r, c))
	}
	cycles := 0
	for j0 := 0; j0 < b.Cols; j0 += c {
		end := j0 + c
		if end > b.Cols {
			end = b.Cols
		}
		active := 0
		for i := 0; i < b.Rows; i++ {
			for j := j0; j < end; j++ {
				if b.Get(i, j) {
					active++
					break
				}
			}
		}
		if active == 0 {
			active = 1 // control still touches the group once
		}
		cycles += (active + r - 1) / r
	}
	return cycles
}

// IndexTable is the bookkeeping a compressed-OU scheme must store so the
// controller can fetch the right inputs for skipped rows (paper §II: prior
// work computes these offline and keeps them in a buffer).
type IndexTable struct {
	Entries int // stored row indices (one per surviving segment)
	Bits    int // total storage in bits
}

// KB returns the table size in kilobytes.
func (t IndexTable) KB() float64 { return float64(t.Bits) / 8 / 1024 }

// CompressRowIndices builds the index table for OU width c: for every
// column group, the indices of its non-zero row segments, each stored in
// ⌈log2(rows)⌉ bits.
func (b *Bitmap) CompressRowIndices(c int) IndexTable {
	if c < 1 {
		panic(fmt.Sprintf("sparsity: invalid OU width %d", c))
	}
	bitsPerIndex := int(math.Ceil(math.Log2(float64(b.Rows))))
	if bitsPerIndex < 1 {
		bitsPerIndex = 1
	}
	entries := 0
	for j0 := 0; j0 < b.Cols; j0 += c {
		end := j0 + c
		if end > b.Cols {
			end = b.Cols
		}
		for i := 0; i < b.Rows; i++ {
			for j := j0; j < end; j++ {
				if b.Get(i, j) {
					entries++
					break
				}
			}
		}
	}
	return IndexTable{Entries: entries, Bits: entries * bitsPerIndex}
}
