package mlp

import (
	"math"
	"testing"

	"odin/internal/rng"
)

func TestConfigValidation(t *testing.T) {
	t.Parallel()
	bad := []Config{
		{InputDim: 0, Heads: []int{2}},
		{InputDim: 3},
		{InputDim: 3, Hidden: []int{0}, Heads: []int{2}},
		{InputDim: 3, Heads: []int{0}},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d should have panicked", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestPredictShapesAndNormalisation(t *testing.T) {
	t.Parallel()
	n := New(Config{InputDim: 4, Hidden: []int{8}, Heads: []int{6, 6}, Seed: 1})
	probs := n.Predict([]float64{0.1, 0.5, -0.2, 1})
	if len(probs) != 2 {
		t.Fatalf("want 2 heads, got %d", len(probs))
	}
	for k, p := range probs {
		if len(p) != 6 {
			t.Fatalf("head %d has %d classes, want 6", k, len(p))
		}
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				t.Fatalf("head %d probability out of range: %v", k, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("head %d probabilities sum to %v", k, sum)
		}
	}
}

func TestNumParams(t *testing.T) {
	t.Parallel()
	n := New(Config{InputDim: 4, Hidden: []int{8}, Heads: []int{6, 6}, Seed: 1})
	// trunk: 8*4+8 = 40; each head: 6*8+6 = 54; total 40+108 = 148.
	if got := n.NumParams(); got != 148 {
		t.Fatalf("NumParams = %d, want 148", got)
	}
	if got := len(n.Parameters()); got != 148 {
		t.Fatalf("len(Parameters) = %d, want 148", got)
	}
}

func TestDeterministicInit(t *testing.T) {
	t.Parallel()
	a := New(Config{InputDim: 3, Hidden: []int{5}, Heads: []int{4}, Seed: 42})
	b := New(Config{InputDim: 3, Hidden: []int{5}, Heads: []int{4}, Seed: 42})
	pa, pb := a.Parameters(), b.Parameters()
	for i := range pa {
		if *pa[i] != *pb[i] {
			t.Fatalf("same seed produced different parameter %d", i)
		}
	}
	c := New(Config{InputDim: 3, Hidden: []int{5}, Heads: []int{4}, Seed: 43})
	pc := c.Parameters()
	same := true
	for i := range pa {
		if *pa[i] != *pc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical networks")
	}
}

func TestCloneIndependence(t *testing.T) {
	t.Parallel()
	n := New(Config{InputDim: 2, Hidden: []int{3}, Heads: []int{2}, Seed: 5})
	c := n.Clone()
	*c.Parameters()[0] = 1234
	if *n.Parameters()[0] == 1234 {
		t.Fatal("Clone shares storage with original")
	}
}

// Gradient check: analytic gradients must match central finite differences.
func TestGradientCheck(t *testing.T) {
	t.Parallel()
	n := New(Config{InputDim: 4, Hidden: []int{6, 5}, Heads: []int{3, 4}, Seed: 9})
	src := rng.New(77)
	var examples []Example
	for i := 0; i < 5; i++ {
		in := make([]float64, 4)
		for j := range in {
			in[j] = src.NormFloat64()
		}
		examples = append(examples, Example{
			Input:   in,
			Targets: []int{src.Intn(3), src.Intn(4)},
		})
	}
	analytic := n.Gradients(examples)
	params := n.Parameters()
	if len(analytic) != len(params) {
		t.Fatalf("gradient length %d != param length %d", len(analytic), len(params))
	}
	const h = 1e-6
	maxRel := 0.0
	for i, p := range params {
		orig := *p
		*p = orig + h
		up := n.Loss(examples)
		*p = orig - h
		down := n.Loss(examples)
		*p = orig
		numeric := (up - down) / (2 * h)
		denom := math.Max(1e-6, math.Abs(numeric)+math.Abs(analytic[i]))
		rel := math.Abs(numeric-analytic[i]) / denom
		if rel > maxRel {
			maxRel = rel
		}
		if rel > 1e-4 && math.Abs(numeric-analytic[i]) > 1e-6 {
			t.Fatalf("gradient mismatch at param %d: analytic %v numeric %v (rel %v)", i, analytic[i], numeric, rel)
		}
	}
	t.Logf("max relative gradient error: %v", maxRel)
}

func TestTrainReducesLoss(t *testing.T) {
	t.Parallel()
	n := New(Config{InputDim: 2, Hidden: []int{16}, Heads: []int{2}, Seed: 3})
	// XOR-like problem: class = a XOR b.
	var examples []Example
	for _, in := range [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		cls := 0
		if (in[0] > 0.5) != (in[1] > 0.5) {
			cls = 1
		}
		examples = append(examples, Example{Input: in, Targets: []int{cls}})
	}
	before := n.Loss(examples)
	stats := n.Train(examples, TrainOptions{Epochs: 500, LearningRate: 0.1})
	after := n.Loss(examples)
	if after >= before {
		t.Fatalf("training did not reduce loss: %v -> %v", before, after)
	}
	if stats.FinalLoss > 0.1 {
		t.Fatalf("XOR not learned, final loss %v", stats.FinalLoss)
	}
	for _, e := range examples {
		if got := n.Classify(e.Input)[0]; got != e.Targets[0] {
			t.Fatalf("XOR misclassified %v: got %d want %d", e.Input, got, e.Targets[0])
		}
	}
}

func TestTrainMultiHead(t *testing.T) {
	t.Parallel()
	// Head 0 learns sign of x, head 1 learns sign of y — independent tasks
	// sharing a trunk, like the R/C heads of the OU policy.
	n := New(Config{InputDim: 2, Hidden: []int{12}, Heads: []int{2, 2}, Seed: 8})
	src := rng.New(101)
	var examples []Example
	for i := 0; i < 60; i++ {
		x, y := src.NormFloat64(), src.NormFloat64()
		t0, t1 := 0, 0
		if x > 0 {
			t0 = 1
		}
		if y > 0 {
			t1 = 1
		}
		examples = append(examples, Example{Input: []float64{x, y}, Targets: []int{t0, t1}})
	}
	n.Train(examples, TrainOptions{Epochs: 300, LearningRate: 0.1})
	correct := 0
	for _, e := range examples {
		cls := n.Classify(e.Input)
		if cls[0] == e.Targets[0] && cls[1] == e.Targets[1] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(examples)); acc < 0.9 {
		t.Fatalf("multi-head accuracy %v < 0.9", acc)
	}
}

func TestTrainAdam(t *testing.T) {
	t.Parallel()
	n := New(Config{InputDim: 2, Hidden: []int{16}, Heads: []int{2}, Seed: 3})
	var examples []Example
	for _, in := range [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		cls := 0
		if (in[0] > 0.5) != (in[1] > 0.5) {
			cls = 1
		}
		examples = append(examples, Example{Input: in, Targets: []int{cls}})
	}
	stats := n.Train(examples, TrainOptions{Epochs: 400, Optimizer: Adam})
	if stats.FinalLoss > 0.1 {
		t.Fatalf("Adam did not learn XOR: final loss %v", stats.FinalLoss)
	}
}

func TestTrainDeterministic(t *testing.T) {
	t.Parallel()
	build := func() (*Network, []Example) {
		n := New(Config{InputDim: 3, Hidden: []int{7}, Heads: []int{4}, Seed: 2})
		src := rng.New(55)
		var ex []Example
		for i := 0; i < 20; i++ {
			in := []float64{src.Float64(), src.Float64(), src.Float64()}
			ex = append(ex, Example{Input: in, Targets: []int{src.Intn(4)}})
		}
		return n, ex
	}
	n1, e1 := build()
	n2, e2 := build()
	n1.Train(e1, TrainOptions{Epochs: 50, Seed: 9})
	n2.Train(e2, TrainOptions{Epochs: 50, Seed: 9})
	p1, p2 := n1.Parameters(), n2.Parameters()
	for i := range p1 {
		if *p1[i] != *p2[i] {
			t.Fatalf("training not deterministic: param %d differs", i)
		}
	}
}

func TestTrainEmptyExamplesIsNoop(t *testing.T) {
	t.Parallel()
	n := New(Config{InputDim: 2, Hidden: []int{3}, Heads: []int{2}, Seed: 1})
	before := *n.Parameters()[0]
	stats := n.Train(nil, TrainOptions{})
	if stats.Epochs != 0 && stats.FinalLoss != 0 {
		t.Fatalf("unexpected stats for empty training set: %+v", stats)
	}
	if *n.Parameters()[0] != before {
		t.Fatal("empty training set mutated parameters")
	}
}

func TestLossEmptyIsZero(t *testing.T) {
	t.Parallel()
	n := New(Config{InputDim: 2, Heads: []int{2}, Seed: 1})
	if l := n.Loss(nil); l != 0 {
		t.Fatalf("Loss(nil) = %v", l)
	}
}

func TestBadExamplePanics(t *testing.T) {
	t.Parallel()
	n := New(Config{InputDim: 2, Heads: []int{2}, Seed: 1})
	cases := []Example{
		{Input: []float64{1}, Targets: []int{0}},       // wrong input dim
		{Input: []float64{1, 2}, Targets: []int{}},     // missing target
		{Input: []float64{1, 2}, Targets: []int{5}},    // target out of range
		{Input: []float64{1, 2}, Targets: []int{0, 1}}, // too many targets
	}
	for i, e := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should have panicked", i)
				}
			}()
			n.Loss([]Example{e})
		}()
	}
}

func TestNoHiddenLayerNetwork(t *testing.T) {
	t.Parallel()
	// Linear softmax classifier (no trunk) must work: the paper's policy is
	// tiny and configurations like this must be expressible.
	n := New(Config{InputDim: 4, Heads: []int{6, 6}, Seed: 1})
	probs := n.Predict([]float64{1, 0, 0, 0})
	if len(probs) != 2 || len(probs[0]) != 6 {
		t.Fatalf("unexpected output shape")
	}
	var examples []Example
	src := rng.New(31)
	for i := 0; i < 30; i++ {
		in := make([]float64, 4)
		for j := range in {
			in[j] = src.Float64()
		}
		cls := 0
		if in[0] > 0.5 {
			cls = 3
		}
		examples = append(examples, Example{Input: in, Targets: []int{cls, 0}})
	}
	before := n.Loss(examples)
	n.Train(examples, TrainOptions{Epochs: 200})
	if after := n.Loss(examples); after >= before {
		t.Fatalf("linear model failed to learn: %v -> %v", before, after)
	}
}

func TestGradientCheckNoHidden(t *testing.T) {
	t.Parallel()
	n := New(Config{InputDim: 3, Heads: []int{2}, Seed: 4})
	examples := []Example{{Input: []float64{0.3, -0.2, 0.9}, Targets: []int{1}}}
	analytic := n.Gradients(examples)
	params := n.Parameters()
	const h = 1e-6
	for i, p := range params {
		orig := *p
		*p = orig + h
		up := n.Loss(examples)
		*p = orig - h
		down := n.Loss(examples)
		*p = orig
		numeric := (up - down) / (2 * h)
		if math.Abs(numeric-analytic[i]) > 1e-5*(1+math.Abs(numeric)) {
			t.Fatalf("param %d: analytic %v numeric %v", i, analytic[i], numeric)
		}
	}
}
