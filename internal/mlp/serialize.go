package mlp

import (
	"encoding/json"
	"fmt"

	"odin/internal/rng"
)

// networkJSON is the stable on-disk representation of a Network.
type networkJSON struct {
	Config Config       `json:"config"`
	Trunk  []linearJSON `json:"trunk"`
	Heads  []linearJSON `json:"heads"`
}

type linearJSON struct {
	Rows    int       `json:"rows"`
	Cols    int       `json:"cols"`
	Weights []float64 `json:"weights"`
	Biases  []float64 `json:"biases"`
}

func (l *linear) toJSON() linearJSON {
	weights := make([]float64, len(l.W.Data))
	copy(weights, l.W.Data)
	biases := make([]float64, len(l.B))
	copy(biases, l.B)
	return linearJSON{Rows: l.W.Rows, Cols: l.W.Cols, Weights: weights, Biases: biases}
}

func (lj linearJSON) toLinear() (*linear, error) {
	if lj.Rows < 1 || lj.Cols < 1 {
		return nil, fmt.Errorf("mlp: invalid layer shape %dx%d", lj.Rows, lj.Cols)
	}
	if len(lj.Weights) != lj.Rows*lj.Cols {
		return nil, fmt.Errorf("mlp: layer has %d weights, want %d", len(lj.Weights), lj.Rows*lj.Cols)
	}
	if len(lj.Biases) != lj.Rows {
		return nil, fmt.Errorf("mlp: layer has %d biases, want %d", len(lj.Biases), lj.Rows)
	}
	// Allocate with a throwaway RNG; the parameters are overwritten next.
	l := newLinear(lj.Cols, lj.Rows, rng.New(0))
	copy(l.W.Data, lj.Weights)
	copy(l.B, lj.Biases)
	return l, nil
}

// MarshalJSON encodes the network — configuration and all parameters — as
// JSON. The encoding is stable across versions of this package as long as
// the architecture (trunk widths, head sizes) is representable.
func (n *Network) MarshalJSON() ([]byte, error) {
	out := networkJSON{Config: n.cfg}
	for _, l := range n.trunk {
		out.Trunk = append(out.Trunk, l.toJSON())
	}
	for _, l := range n.heads {
		out.Heads = append(out.Heads, l.toJSON())
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a network previously produced by MarshalJSON,
// validating configuration/parameter consistency.
func (n *Network) UnmarshalJSON(data []byte) error {
	var in networkJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("mlp: decoding network: %w", err)
	}
	if err := in.Config.validate(); err != nil {
		return err
	}
	if len(in.Trunk) != len(in.Config.Hidden) {
		return fmt.Errorf("mlp: %d trunk layers for %d hidden widths", len(in.Trunk), len(in.Config.Hidden))
	}
	if len(in.Heads) != len(in.Config.Heads) {
		return fmt.Errorf("mlp: %d head layers for %d heads", len(in.Heads), len(in.Config.Heads))
	}
	rebuilt := Network{cfg: in.Config}
	prev := in.Config.InputDim
	for i, lj := range in.Trunk {
		if lj.Rows != in.Config.Hidden[i] || lj.Cols != prev {
			return fmt.Errorf("mlp: trunk layer %d shape %dx%d inconsistent with config", i, lj.Rows, lj.Cols)
		}
		l, err := lj.toLinear()
		if err != nil {
			return err
		}
		rebuilt.trunk = append(rebuilt.trunk, l)
		prev = lj.Rows
	}
	for i, lj := range in.Heads {
		if lj.Rows != in.Config.Heads[i] || lj.Cols != prev {
			return fmt.Errorf("mlp: head %d shape %dx%d inconsistent with config", i, lj.Rows, lj.Cols)
		}
		l, err := lj.toLinear()
		if err != nil {
			return err
		}
		rebuilt.heads = append(rebuilt.heads, l)
	}
	*n = rebuilt
	return nil
}
