package mlp

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestNetworkJSONRoundTrip(t *testing.T) {
	t.Parallel()
	n := New(Config{InputDim: 4, Hidden: []int{16, 8}, Heads: []int{6, 6}, Seed: 42})
	// Train a little so the parameters are non-trivial.
	examples := []Example{
		{Input: []float64{0.1, 0.2, 0.3, 0.4}, Targets: []int{2, 3}},
		{Input: []float64{0.9, 0.8, 0.7, 0.6}, Targets: []int{5, 0}},
	}
	n.Train(examples, TrainOptions{Epochs: 20})

	data, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	var back Network
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumParams() != n.NumParams() {
		t.Fatalf("param count changed: %d vs %d", back.NumParams(), n.NumParams())
	}
	pOrig, pBack := n.Parameters(), back.Parameters()
	for i := range pOrig {
		if *pOrig[i] != *pBack[i] {
			t.Fatalf("parameter %d changed across round trip", i)
		}
	}
	// Behaviour identical.
	in := []float64{0.5, -0.25, 1, 0}
	a, b := n.Predict(in), back.Predict(in)
	for h := range a {
		for k := range a[h] {
			if a[h][k] != b[h][k] {
				t.Fatalf("prediction changed at head %d class %d", h, k)
			}
		}
	}
}

func TestNetworkJSONNoHidden(t *testing.T) {
	t.Parallel()
	n := New(Config{InputDim: 3, Heads: []int{4}, Seed: 7})
	data, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	var back Network
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Classify([]float64{1, 2, 3})[0] != n.Classify([]float64{1, 2, 3})[0] {
		t.Fatal("linear network round trip changed behaviour")
	}
}

func TestNetworkUnmarshalRejectsCorruption(t *testing.T) {
	t.Parallel()
	n := New(Config{InputDim: 4, Hidden: []int{8}, Heads: []int{6, 6}, Seed: 1})
	good, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	corruptions := []struct {
		name string
		mod  func(string) string
	}{
		{"truncated weights", func(s string) string {
			return strings.Replace(s, `"weights":[`, `"weights":[1e9,`, 1) // length mismatch
		}},
		{"bad config", func(s string) string {
			return strings.Replace(s, `"InputDim":4`, `"InputDim":0`, 1)
		}},
		{"not json", func(string) string { return "{" }},
	}
	for _, c := range corruptions {
		var back Network
		if err := json.Unmarshal([]byte(c.mod(string(good))), &back); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestNetworkUnmarshalShapeMismatch(t *testing.T) {
	t.Parallel()
	// A head whose rows disagree with the config must be rejected.
	a := New(Config{InputDim: 4, Hidden: []int{8}, Heads: []int{6, 6}, Seed: 1})
	data, _ := json.Marshal(a)
	tampered := strings.Replace(string(data), `"Heads":[6,6]`, `"Heads":[6,5]`, 1)
	var back Network
	if err := json.Unmarshal([]byte(tampered), &back); err == nil {
		t.Fatal("head-count mismatch accepted")
	}
}
