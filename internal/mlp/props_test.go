package mlp

import (
	"fmt"
	"math"
	"testing"

	"odin/internal/check"
)

// trainCase is one generated permutation-invariance scenario: a tiny
// dataset plus a permutation of it.
type trainCase struct {
	Inputs  [][]float64
	Targets [][]int
	Perm    []int
	Epochs  int
}

const (
	propInputDim = 3
	propClasses  = 3
)

func genTrainCase() check.Gen[trainCase] {
	return check.Gen[trainCase]{
		Generate: func(t *check.T) trainCase {
			n := 2 + t.Rng.Intn(10)
			tc := trainCase{
				Inputs:  make([][]float64, n),
				Targets: make([][]int, n),
				Perm:    t.Rng.Perm(n),
				Epochs:  1 + t.Rng.Intn(5),
			}
			for i := range tc.Inputs {
				in := make([]float64, propInputDim)
				for d := range in {
					in[d] = t.Rng.Float64()*2 - 1
				}
				tc.Inputs[i] = in
				tc.Targets[i] = []int{t.Rng.Intn(propClasses)}
			}
			return tc
		},
		// Dropping examples would invalidate Perm; shrink only the epoch
		// count, which is what controls divergence amplification.
		Shrink: func(tc trainCase) []trainCase {
			var out []trainCase
			for _, v := range check.ShrinkInt(tc.Epochs, 1) {
				m := tc
				m.Epochs = v
				out = append(out, m)
			}
			return out
		},
	}
}

func (tc trainCase) examples(order []int) []Example {
	out := make([]Example, len(tc.Inputs))
	for i, src := range order {
		out[i] = Example{Input: tc.Inputs[src], Targets: tc.Targets[src]}
	}
	return out
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// maxParamRelDiff returns the largest relative parameter difference between
// two identically shaped networks.
func maxParamRelDiff(a, b *Network) float64 {
	pa, pb := a.Parameters(), b.Parameters()
	worst := 0.0
	for i := range pa {
		va, vb := *pa[i], *pb[i]
		scale := math.Max(math.Max(math.Abs(va), math.Abs(vb)), 1e-12)
		if d := math.Abs(va-vb) / scale; d > worst {
			worst = d
		}
	}
	return worst
}

// TestPropTrainPermutationInvariant pins that full-batch training on a
// fixed dataset is invariant under seeded dataset shuffles: the gradient is
// a sum over examples, so reordering them changes only float summation
// order. Divergence beyond accumulation noise would mean training secretly
// depends on example order (e.g. an unseeded shuffle or per-example
// updates leaking into the full-batch path).
func TestPropTrainPermutationInvariant(t *testing.T) {
	t.Parallel()
	cfg := Config{InputDim: propInputDim, Hidden: []int{4}, Heads: []int{propClasses}, Seed: 11}
	opts := func(n, epochs int) TrainOptions {
		return TrainOptions{Epochs: epochs, BatchSize: n, Seed: 5}
	}
	check.RunConfig(t, check.Config{Trials: 40}, genTrainCase(), func(tc trainCase) error {
		n := len(tc.Inputs)
		straight := tc.examples(identity(n))
		permuted := tc.examples(tc.Perm)

		na, nb := New(cfg), New(cfg)
		if d := maxParamRelDiff(na, nb); d > 0 {
			return fmt.Errorf("identical configs initialised differently (max rel diff %g)", d)
		}
		lossA, lossB := na.Loss(straight), nb.Loss(permuted)
		if math.Abs(lossA-lossB) > 1e-12*math.Max(lossA, 1) {
			return fmt.Errorf("loss not permutation-invariant before training: %g vs %g", lossA, lossB)
		}
		na.Train(straight, opts(n, tc.Epochs))
		nb.Train(permuted, opts(n, tc.Epochs))
		if d := maxParamRelDiff(na, nb); d > 1e-8 {
			return fmt.Errorf("full-batch training diverged under a dataset permutation: max rel param diff %g (n=%d, epochs=%d)",
				d, n, tc.Epochs)
		}
		return nil
	})
}

// TestPropLossNonnegativeAndFiniteAfterTraining pins basic sanity of the
// training loop on arbitrary tiny datasets: cross-entropy stays
// non-negative and finite, and parameters stay finite.
func TestPropLossNonnegativeAndFiniteAfterTraining(t *testing.T) {
	t.Parallel()
	cfg := Config{InputDim: propInputDim, Hidden: []int{4}, Heads: []int{propClasses}, Seed: 3}
	check.RunConfig(t, check.Config{Trials: 40}, genTrainCase(), func(tc trainCase) error {
		ex := tc.examples(identity(len(tc.Inputs)))
		n := New(cfg)
		stats := n.Train(ex, TrainOptions{Epochs: tc.Epochs, Seed: 2})
		if stats.FinalLoss < 0 || math.IsNaN(stats.FinalLoss) || math.IsInf(stats.FinalLoss, 0) {
			return fmt.Errorf("final loss %g not a finite non-negative value", stats.FinalLoss)
		}
		for i, p := range n.Parameters() {
			if math.IsNaN(*p) || math.IsInf(*p, 0) {
				return fmt.Errorf("parameter %d diverged to %g", i, *p)
			}
		}
		return nil
	})
}
