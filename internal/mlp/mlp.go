// Package mlp implements a small, dependency-free multi-layer perceptron
// with an arbitrary number of independent softmax output heads.
//
// The Odin OU-configuration policy (paper §III.A) is "a multi-output MLP
// classifier ... one input layer (4 neurons) with the ReLU activation and two
// separate output layers (6 neurons each) with the softmax activation": a
// shared ReLU trunk feeding two 6-way heads that independently classify the
// OU height level (R) and width level (C). Go has no ML ecosystem to lean
// on, so the full stack — forward pass, backprop, cross-entropy over multiple
// heads, SGD with momentum, and Adam — is implemented here from scratch and
// verified against numerical gradients in the tests.
package mlp

import (
	"fmt"
	"math"

	"odin/internal/mat"
	"odin/internal/rng"
)

// Config describes a network: InputDim inputs, a ReLU hidden trunk with the
// given widths, and one linear+softmax head per entry of Heads.
type Config struct {
	InputDim int
	Hidden   []int // hidden layer widths; may be empty (linear heads on input)
	Heads    []int // output class counts, one per head; must be non-empty
	Seed     uint64
}

func (c Config) validate() error {
	if c.InputDim <= 0 {
		return fmt.Errorf("mlp: InputDim must be positive, got %d", c.InputDim)
	}
	if len(c.Heads) == 0 {
		return fmt.Errorf("mlp: at least one output head required")
	}
	for i, h := range c.Hidden {
		if h <= 0 {
			return fmt.Errorf("mlp: hidden layer %d has non-positive width %d", i, h)
		}
	}
	for i, h := range c.Heads {
		if h <= 0 {
			return fmt.Errorf("mlp: head %d has non-positive class count %d", i, h)
		}
	}
	return nil
}

// linear is a fully connected layer y = W·x + b.
type linear struct {
	W *mat.Dense
	B []float64
}

func newLinear(in, out int, src *rng.Source) *linear {
	l := &linear{W: mat.NewDense(out, in), B: make([]float64, out)}
	// He initialisation, appropriate for ReLU trunks.
	scale := math.Sqrt(2.0 / float64(in))
	for i := range l.W.Data {
		l.W.Data[i] = src.NormFloat64() * scale
	}
	return l
}

func (l *linear) clone() *linear {
	c := &linear{W: l.W.Clone(), B: make([]float64, len(l.B))}
	copy(c.B, l.B)
	return c
}

func (l *linear) zeroLike() *linear {
	return &linear{W: mat.NewDense(l.W.Rows, l.W.Cols), B: make([]float64, len(l.B))}
}

// Network is a trained or trainable MLP. Create one with New; the zero value
// is not usable.
type Network struct {
	cfg   Config
	trunk []*linear
	heads []*linear
}

// New builds a network with He-initialised weights drawn from the config
// seed. It panics if the config is invalid (a construction-time programming
// error, not a runtime condition).
func New(cfg Config) *Network {
	if err := cfg.validate(); err != nil {
		panic(fmt.Sprintf("mlp: %v", err))
	}
	src := rng.New(cfg.Seed ^ 0x6f64696e6d6c70) // decorrelate from other subsystems
	n := &Network{cfg: cfg}
	in := cfg.InputDim
	for _, h := range cfg.Hidden {
		n.trunk = append(n.trunk, newLinear(in, h, src))
		in = h
	}
	for _, h := range cfg.Heads {
		n.heads = append(n.heads, newLinear(in, h, src))
	}
	return n
}

// Config returns the configuration the network was built with.
func (n *Network) Config() Config { return n.cfg }

// Clone returns an independent deep copy of the network.
func (n *Network) Clone() *Network {
	c := &Network{cfg: n.cfg}
	for _, l := range n.trunk {
		c.trunk = append(c.trunk, l.clone())
	}
	for _, l := range n.heads {
		c.heads = append(c.heads, l.clone())
	}
	return c
}

// NumParams returns the total number of trainable scalars.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range append(append([]*linear{}, n.trunk...), n.heads...) {
		total += len(l.W.Data) + len(l.B)
	}
	return total
}

// forward runs the trunk and returns every post-activation (index 0 is the
// input itself) plus the raw logits per head.
func (n *Network) forward(input []float64) (acts [][]float64, logits [][]float64) {
	if len(input) != n.cfg.InputDim {
		panic(fmt.Sprintf("mlp: input length %d, want %d", len(input), n.cfg.InputDim))
	}
	acts = make([][]float64, len(n.trunk)+1)
	acts[0] = input
	h := input
	for i, l := range n.trunk {
		z := l.W.MulVec(h, nil)
		for j := range z {
			z[j] += l.B[j]
			if z[j] < 0 { // ReLU
				z[j] = 0
			}
		}
		acts[i+1] = z
		h = z
	}
	logits = make([][]float64, len(n.heads))
	for k, l := range n.heads {
		z := l.W.MulVec(h, nil)
		for j := range z {
			z[j] += l.B[j]
		}
		logits[k] = z
	}
	return acts, logits
}

// Predict returns per-head softmax probability vectors for the input.
func (n *Network) Predict(input []float64) [][]float64 {
	_, logits := n.forward(input)
	probs := make([][]float64, len(logits))
	for k, z := range logits {
		probs[k] = mat.Softmax(z, nil)
	}
	return probs
}

// Classify returns the arg-max class per head.
func (n *Network) Classify(input []float64) []int {
	_, logits := n.forward(input)
	out := make([]int, len(logits))
	for k, z := range logits {
		out[k] = mat.ArgMax(z)
	}
	return out
}

// Example is one supervised training pair: an input vector and one target
// class index per head.
type Example struct {
	Input   []float64
	Targets []int
}

func (n *Network) checkExample(e Example) error {
	if len(e.Input) != n.cfg.InputDim {
		return fmt.Errorf("mlp: example input length %d, want %d", len(e.Input), n.cfg.InputDim)
	}
	if len(e.Targets) != len(n.cfg.Heads) {
		return fmt.Errorf("mlp: example has %d targets, want %d", len(e.Targets), len(n.cfg.Heads))
	}
	for k, tgt := range e.Targets {
		if tgt < 0 || tgt >= n.cfg.Heads[k] {
			return fmt.Errorf("mlp: head %d target %d out of range [0,%d)", k, tgt, n.cfg.Heads[k])
		}
	}
	return nil
}

// Loss returns the mean (over examples) summed (over heads) cross-entropy.
func (n *Network) Loss(examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	var total float64
	for _, e := range examples {
		if err := n.checkExample(e); err != nil {
			panic(fmt.Sprintf("mlp: %v", err))
		}
		_, logits := n.forward(e.Input)
		for k, z := range logits {
			p := mat.Softmax(z, nil)
			total += -math.Log(math.Max(p[e.Targets[k]], 1e-300))
		}
	}
	return total / float64(len(examples))
}

// grads mirrors the network's parameter shapes.
type grads struct {
	trunk []*linear
	heads []*linear
}

func (n *Network) newGrads() *grads {
	g := &grads{}
	for _, l := range n.trunk {
		g.trunk = append(g.trunk, l.zeroLike())
	}
	for _, l := range n.heads {
		g.heads = append(g.heads, l.zeroLike())
	}
	return g
}

func (g *grads) zero() {
	for _, l := range append(append([]*linear{}, g.trunk...), g.heads...) {
		l.W.Zero()
		for i := range l.B {
			l.B[i] = 0
		}
	}
}

// accumulate adds ∂loss/∂θ for a single example into g and returns that
// example's loss.
func (n *Network) accumulate(e Example, g *grads) float64 {
	acts, logits := n.forward(e.Input)
	top := acts[len(acts)-1] // trunk output (or raw input when no hidden layers)

	var loss float64
	// dTop accumulates the gradient flowing back into the trunk output from
	// every head.
	dTop := make([]float64, len(top))
	for k, z := range logits {
		p := mat.Softmax(z, nil)
		loss += -math.Log(math.Max(p[e.Targets[k]], 1e-300))
		// dLogits = p - onehot(target)
		dz := p // reuse; p is a fresh slice from Softmax
		dz[e.Targets[k]] -= 1
		g.heads[k].W.AddOuterScaled(1, dz, top)
		for j := range dz {
			g.heads[k].B[j] += dz[j]
		}
		back := n.heads[k].W.MulVecT(dz, nil)
		for j := range dTop {
			dTop[j] += back[j]
		}
	}

	// Backprop through the ReLU trunk.
	d := dTop
	for i := len(n.trunk) - 1; i >= 0; i-- {
		out := acts[i+1]
		for j := range d {
			if out[j] <= 0 { // ReLU derivative
				d[j] = 0
			}
		}
		g.trunk[i].W.AddOuterScaled(1, d, acts[i])
		for j := range d {
			g.trunk[i].B[j] += d[j]
		}
		if i > 0 {
			d = n.trunk[i].W.MulVecT(d, nil)
		}
	}
	return loss
}

// Optimizer selects the parameter-update rule used by Train.
type Optimizer int

const (
	// SGD is stochastic gradient descent with momentum.
	SGD Optimizer = iota
	// Adam is the Adam rule (Kingma & Ba) with the usual defaults.
	Adam
)

// TrainOptions configures Train. Zero values get sensible defaults.
type TrainOptions struct {
	Epochs       int       // default 100 (the paper trains the policy 100 epochs per update)
	LearningRate float64   // default 0.05 for SGD, 0.01 for Adam
	Momentum     float64   // SGD momentum, default 0.9
	BatchSize    int       // default: full batch
	L2           float64   // weight decay coefficient, default 0
	Optimizer    Optimizer // default SGD
	Seed         uint64    // shuffling seed, default 1
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.Epochs == 0 {
		o.Epochs = 100
	}
	if o.LearningRate == 0 {
		if o.Optimizer == Adam {
			o.LearningRate = 0.01
		} else {
			o.LearningRate = 0.05
		}
	}
	if o.Momentum == 0 && o.Optimizer == SGD {
		o.Momentum = 0.9
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// TrainStats summarises a Train call.
type TrainStats struct {
	Epochs    int
	FinalLoss float64
	FirstLoss float64
}

// Train fits the network to the examples and reports first/final epoch mean
// loss. Training is deterministic given the options' seed.
func (n *Network) Train(examples []Example, opts TrainOptions) TrainStats {
	if len(examples) == 0 {
		return TrainStats{}
	}
	for _, e := range examples {
		if err := n.checkExample(e); err != nil {
			panic(fmt.Sprintf("mlp: %v", err))
		}
	}
	opts = opts.withDefaults()
	batch := opts.BatchSize
	if batch <= 0 || batch > len(examples) {
		batch = len(examples)
	}
	g := n.newGrads()
	var vel, m1, m2 *grads
	switch opts.Optimizer {
	case SGD:
		vel = n.newGrads()
	case Adam:
		m1, m2 = n.newGrads(), n.newGrads()
	}
	src := rng.New(opts.Seed)
	stats := TrainStats{Epochs: opts.Epochs}
	adamStep := 0
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		order := src.Perm(len(examples))
		var epochLoss float64
		for start := 0; start < len(order); start += batch {
			end := start + batch
			if end > len(order) {
				end = len(order)
			}
			g.zero()
			for _, idx := range order[start:end] {
				epochLoss += n.accumulate(examples[idx], g)
			}
			scale := 1.0 / float64(end-start)
			switch opts.Optimizer {
			case SGD:
				n.applySGD(g, vel, scale, opts)
			case Adam:
				adamStep++
				n.applyAdam(g, m1, m2, scale, adamStep, opts)
			}
		}
		meanLoss := epochLoss / float64(len(examples))
		if epoch == 0 {
			stats.FirstLoss = meanLoss
		}
		stats.FinalLoss = meanLoss
	}
	return stats
}

func (n *Network) layersWithGrads(g *grads) [][2]*linear {
	var out [][2]*linear
	for i, l := range n.trunk {
		out = append(out, [2]*linear{l, g.trunk[i]})
	}
	for i, l := range n.heads {
		out = append(out, [2]*linear{l, g.heads[i]})
	}
	return out
}

func (n *Network) applySGD(g, vel *grads, scale float64, opts TrainOptions) {
	velLayers := append(append([]*linear{}, vel.trunk...), vel.heads...)
	for i, pair := range n.layersWithGrads(g) {
		param, grad := pair[0], pair[1]
		v := velLayers[i]
		for k := range param.W.Data {
			dw := grad.W.Data[k]*scale + opts.L2*param.W.Data[k]
			v.W.Data[k] = opts.Momentum*v.W.Data[k] - opts.LearningRate*dw
			param.W.Data[k] += v.W.Data[k]
		}
		for k := range param.B {
			db := grad.B[k] * scale
			v.B[k] = opts.Momentum*v.B[k] - opts.LearningRate*db
			param.B[k] += v.B[k]
		}
	}
}

func (n *Network) applyAdam(g, m1, m2 *grads, scale float64, step int, opts TrainOptions) {
	const (
		beta1 = 0.9
		beta2 = 0.999
		eps   = 1e-8
	)
	bc1 := 1 - math.Pow(beta1, float64(step))
	bc2 := 1 - math.Pow(beta2, float64(step))
	m1Layers := append(append([]*linear{}, m1.trunk...), m1.heads...)
	m2Layers := append(append([]*linear{}, m2.trunk...), m2.heads...)
	for i, pair := range n.layersWithGrads(g) {
		param, grad := pair[0], pair[1]
		a, b := m1Layers[i], m2Layers[i]
		for k := range param.W.Data {
			dw := grad.W.Data[k]*scale + opts.L2*param.W.Data[k]
			a.W.Data[k] = beta1*a.W.Data[k] + (1-beta1)*dw
			b.W.Data[k] = beta2*b.W.Data[k] + (1-beta2)*dw*dw
			param.W.Data[k] -= opts.LearningRate * (a.W.Data[k] / bc1) / (math.Sqrt(b.W.Data[k]/bc2) + eps)
		}
		for k := range param.B {
			db := grad.B[k] * scale
			a.B[k] = beta1*a.B[k] + (1-beta1)*db
			b.B[k] = beta2*b.B[k] + (1-beta2)*db*db
			param.B[k] -= opts.LearningRate * (a.B[k] / bc1) / (math.Sqrt(b.B[k]/bc2) + eps)
		}
	}
}

// Gradients computes the mean analytic gradient over the examples and
// exposes it as flat slices aligned with Parameters(). It exists for
// gradient-check tests and introspection tooling.
func (n *Network) Gradients(examples []Example) []float64 {
	g := n.newGrads()
	for _, e := range examples {
		n.accumulate(e, g)
	}
	scale := 1.0 / float64(len(examples))
	var flat []float64
	for _, l := range append(append([]*linear{}, g.trunk...), g.heads...) {
		for _, v := range l.W.Data {
			flat = append(flat, v*scale)
		}
		for _, v := range l.B {
			flat = append(flat, v*scale)
		}
	}
	return flat
}

// Parameters returns pointers to every trainable scalar, in a stable order
// matching Gradients. Mutating the pointed-to values changes the network.
func (n *Network) Parameters() []*float64 {
	var out []*float64
	for _, l := range append(append([]*linear{}, n.trunk...), n.heads...) {
		for i := range l.W.Data {
			out = append(out, &l.W.Data[i])
		}
		for i := range l.B {
			out = append(out, &l.B[i])
		}
	}
	return out
}
