package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	t.Parallel()
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 100
		counts := make([]atomic.Int64, n)
		if err := ForEach(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachShardedResultsMatchSequential(t *testing.T) {
	t.Parallel()
	const n = 64
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 2, 5} {
		out := make([]int, n)
		if err := ForEach(workers, n, func(i int) error {
			out[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, out[i], want[i])
			}
		}
	}
}

func TestForEachReturnsSmallestIndexError(t *testing.T) {
	t.Parallel()
	fail := map[int]bool{3: true, 7: true, 11: true}
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(workers, 16, func(i int) error {
			if fail[i] {
				return fmt.Errorf("item %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 3 failed" {
			t.Fatalf("workers=%d: err = %v, want the index-3 failure", workers, err)
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	t.Parallel()
	if err := ForEach(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
	ran := 0
	if err := ForEach(4, 1, func(i int) error { ran++; return nil }); err != nil || ran != 1 {
		t.Fatalf("n=1: ran=%d err=%v", ran, err)
	}
}
