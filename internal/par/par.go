// Package par provides the repository's bounded, determinism-preserving
// fan-out primitive. Every parallel sweep in the experiment engine — the
// per-experiment worker pool, the heavy drivers' age/size/parameter sweeps,
// and core's bootstrap example collection — runs through ForEach so the
// concurrency discipline lives in one place:
//
//   - index-sharded writes: the caller's fn(i) must write only its own
//     shard out[i] of any pre-sized result slice, never shared accumulators,
//     so results are identical for every worker count (including 1) and the
//     whole sweep is race-clean by construction;
//   - no shared RNG: any randomness inside fn must come from a fresh
//     internal/rng stream labelled by the item (rng.NewFromString / Fork),
//     never from a Source captured across items — stream decorrelation is
//     what makes draws independent of scheduling;
//   - deterministic errors: ForEach always reports the failure with the
//     smallest index, which is exactly the error the sequential loop would
//     have stopped on (every smaller index succeeded), so the surfaced
//     error does not depend on goroutine interleaving.
//
// Reductions (sums, maxima, map merges) are performed by the caller after
// ForEach returns, iterating shards in index order, so floating-point
// rounding matches the sequential loop bit for bit.
package par

import (
	"runtime"
	"sync"
)

// Workers resolves a requested worker count: n if positive, otherwise
// GOMAXPROCS (the engine's default pool size).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 means GOMAXPROCS). It returns only after every fn call has
// finished. If any calls fail, the error of the smallest failing index is
// returned; because the items at smaller indexes all succeeded, this is the
// same error a sequential in-order loop would surface. With more than one
// worker every item runs even after a failure (the caller discards the
// shards on error anyway); the single-worker path keeps the sequential
// loop's early exit, which returns the identical error.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		mu       sync.Mutex
		next     int
		firstIdx = n
		firstErr error
	)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if err := fn(i); err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Each is ForEach for infallible bodies: fn(i) runs for every i in [0, n)
// on at most workers goroutines, with the same sharding discipline.
func Each(workers, n int, fn func(i int)) {
	_ = ForEach(workers, n, func(i int) error { // body cannot fail
		fn(i)
		return nil
	})
}
