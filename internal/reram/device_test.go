package reram

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultParamsValid(t *testing.T) {
	t.Parallel()
	if err := DefaultDeviceParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	t.Parallel()
	base := DefaultDeviceParams()
	mutate := []func(*DeviceParams){
		func(p *DeviceParams) { p.GOn = 0 },
		func(p *DeviceParams) { p.GOff = -1 },
		func(p *DeviceParams) { p.GOff = p.GOn },
		func(p *DeviceParams) { p.RWire = -1 },
		func(p *DeviceParams) { p.Nu = -0.1 },
		func(p *DeviceParams) { p.T0 = 0 },
		func(p *DeviceParams) { p.BitsPerCell = 0 },
		func(p *DeviceParams) { p.BitsPerCell = 9 },
	}
	for i, m := range mutate {
		p := base
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestGDriftAtT0IsGOn(t *testing.T) {
	t.Parallel()
	p := DefaultDeviceParams()
	if g := p.GDrift(p.T0); math.Abs(g-p.GOn) > 1e-18 {
		t.Fatalf("GDrift(t0) = %v, want GOn = %v", g, p.GOn)
	}
}

func TestGDriftClampsBelowT0(t *testing.T) {
	t.Parallel()
	p := DefaultDeviceParams()
	if g := p.GDrift(p.T0 / 10); g != p.GOn {
		t.Fatalf("GDrift before t0 = %v, want GOn", g)
	}
}

func TestGDriftMonotoneDecreasing(t *testing.T) {
	t.Parallel()
	p := DefaultDeviceParams()
	prev := p.GDrift(1)
	for _, tt := range []float64{10, 100, 1e4, 1e6, 1e8} {
		g := p.GDrift(tt)
		if g >= prev {
			t.Fatalf("GDrift not decreasing at t=%v: %v >= %v", tt, g, prev)
		}
		prev = g
	}
}

func TestGDriftPowerLaw(t *testing.T) {
	t.Parallel()
	p := DefaultDeviceParams()
	// (1e5)^-0.2 = 10^-1 = 0.1
	want := p.GOn * 0.1
	if g := p.GDrift(1e5); math.Abs(g-want)/want > 1e-12 {
		t.Fatalf("GDrift(1e5) = %v, want %v", g, want)
	}
}

func TestDeltaGAtT0MatchesHandComputation(t *testing.T) {
	t.Parallel()
	p := DefaultDeviceParams()
	// ΔG(16,16,t0) = |GOn − 1/(1/GOn + 32)| with GOn = 333 µS.
	inv := 1.0/p.GOn + 32.0
	want := p.GOn - 1.0/inv
	if got := p.DeltaG(16, 16, p.T0); math.Abs(got-want) > 1e-18 {
		t.Fatalf("DeltaG = %v, want %v", got, want)
	}
	// Sanity: roughly 1% of GOn for a 16×16 OU at t0.
	nf := p.NonIdealityFraction(16, 16, p.T0)
	if nf < 0.008 || nf > 0.013 {
		t.Fatalf("NF(16x16,t0) = %v, expected ≈ 0.0105", nf)
	}
}

func TestDeltaGMonotoneInOUSize(t *testing.T) {
	t.Parallel()
	p := DefaultDeviceParams()
	for _, tt := range []float64{1, 100, 1e4} {
		prev := -1.0
		for _, s := range []int{4, 8, 16, 32, 64, 128} {
			d := p.DeltaG(s, s, tt)
			if d <= prev {
				t.Fatalf("DeltaG not increasing with OU size at t=%v size=%d", tt, s)
			}
			prev = d
		}
	}
}

func TestDeltaGMonotoneInTime(t *testing.T) {
	t.Parallel()
	p := DefaultDeviceParams()
	prev := -1.0
	for _, tt := range []float64{1, 10, 100, 1e4, 1e6, 1e8} {
		d := p.DeltaG(16, 16, tt)
		if d <= prev {
			t.Fatalf("DeltaG not increasing with time at t=%v", tt)
		}
		prev = d
	}
}

func TestDeltaGPropertyQuick(t *testing.T) {
	t.Parallel()
	p := DefaultDeviceParams()
	f := func(rRaw, cRaw uint8, tRaw uint32) bool {
		r := int(rRaw%128) + 1
		c := int(cRaw%128) + 1
		tt := 1 + float64(tRaw)
		d := p.DeltaG(r, c, tt)
		// ΔG is non-negative and bounded by GOn.
		if d < 0 || d > p.GOn {
			return false
		}
		// Adding a row can never reduce ΔG.
		return p.DeltaG(r+1, c, tt) >= d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaGPanicsOnBadOU(t *testing.T) {
	t.Parallel()
	p := DefaultDeviceParams()
	defer func() {
		if recover() == nil {
			t.Fatal("DeltaG(0,4) did not panic")
		}
	}()
	p.DeltaG(0, 4, 1)
}

func TestEffectiveConductanceBounds(t *testing.T) {
	t.Parallel()
	p := DefaultDeviceParams()
	for _, g := range []float64{p.GOff, p.GOn / 2, p.GOn} {
		eff := p.EffectiveConductance(g, 16, 16, p.T0)
		if eff <= 0 || eff >= g {
			t.Fatalf("EffectiveConductance(%v) = %v, want in (0, g)", g, eff)
		}
	}
	if p.EffectiveConductance(0, 16, 16, 1) != 0 {
		t.Fatal("zero conductance should stay zero")
	}
}

func TestReprogramCosts(t *testing.T) {
	t.Parallel()
	p := DefaultDeviceParams()
	e := p.ReprogramEnergy(1000)
	want := 1000 * p.WriteEnergyPerCell * float64(p.WritePulses)
	if math.Abs(e-want) > 1e-18 {
		t.Fatalf("ReprogramEnergy = %v, want %v", e, want)
	}
	// 1000 cells at 128-wide row parallelism = ceil(1000/128) = 8 steps.
	l := p.ReprogramLatency(1000, 128)
	wantL := 8 * p.WriteLatencyPerCell * float64(p.WritePulses)
	if math.Abs(l-wantL) > 1e-18 {
		t.Fatalf("ReprogramLatency = %v, want %v", l, wantL)
	}
	// Serial fallback.
	if p.ReprogramLatency(10, 0) != 10*p.WriteLatencyPerCell*float64(p.WritePulses) {
		t.Fatal("serial reprogram latency wrong")
	}
}

func TestQuantizeToLevel(t *testing.T) {
	t.Parallel()
	p := DefaultDeviceParams() // 2 bits → 4 levels
	if got := p.CellLevels(); got != 4 {
		t.Fatalf("CellLevels = %d, want 4", got)
	}
	if g := p.QuantizeToLevel(0); g != p.GOff {
		t.Fatalf("Quantize(0) = %v, want GOff", g)
	}
	if g := p.QuantizeToLevel(1); g != p.GOn {
		t.Fatalf("Quantize(1) = %v, want GOn", g)
	}
	// Out-of-range inputs clamp.
	if p.QuantizeToLevel(-0.5) != p.GOff || p.QuantizeToLevel(2) != p.GOn {
		t.Fatal("clamping failed")
	}
	// Mid value snaps to one of 4 levels.
	mid := p.QuantizeToLevel(0.4)
	step := (p.GOn - p.GOff) / 3
	snapped := false
	for lvl := 0; lvl < 4; lvl++ {
		if math.Abs(mid-(p.GOff+float64(lvl)*step)) < 1e-15 {
			snapped = true
		}
	}
	if !snapped {
		t.Fatalf("Quantize(0.4) = %v not on a level grid", mid)
	}
}

func TestQuantizeMonotoneProperty(t *testing.T) {
	t.Parallel()
	p := DefaultDeviceParams()
	f := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw) / 65535
		b := float64(bRaw) / 65535
		if a > b {
			a, b = b, a
		}
		return p.QuantizeToLevel(a) <= p.QuantizeToLevel(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
