package reram

import (
	"math"
	"testing"
)

func TestDefaultEnduranceValid(t *testing.T) {
	t.Parallel()
	if err := DefaultEndurance().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Endurance{WriteLimit: 0}).Validate(); err == nil {
		t.Fatal("zero write limit accepted")
	}
}

func TestWearFraction(t *testing.T) {
	t.Parallel()
	e := Endurance{WriteLimit: 1e6}
	p := DefaultDeviceParams() // 1 pulse per write
	if got := e.WearFraction(1000, p); math.Abs(got-1e-3) > 1e-12 {
		t.Fatalf("wear = %v, want 1e-3", got)
	}
	p.WritePulses = 3
	if got := e.WearFraction(1000, p); math.Abs(got-3e-3) > 1e-12 {
		t.Fatalf("wear with 3 pulses = %v, want 3e-3", got)
	}
}

func TestLifetimeExtrapolation(t *testing.T) {
	t.Parallel()
	e := Endurance{WriteLimit: 1e6}
	p := DefaultDeviceParams()
	// 100 passes over 1e8 s → 1e-6 writes/s → life = 1e12 s.
	if got := e.Lifetime(100, 1e8, p); math.Abs(got-1e12)/1e12 > 1e-9 {
		t.Fatalf("lifetime = %v, want 1e12", got)
	}
	if !math.IsInf(e.Lifetime(0, 1e8, p), 1) {
		t.Fatal("zero passes should be retention-bound (infinite endurance life)")
	}
	years := e.LifetimeYears(100, 1e8, p)
	want := 1e12 / (365.25 * 24 * 3600)
	if math.Abs(years-want)/want > 1e-9 {
		t.Fatalf("lifetime years = %v, want %v", years, want)
	}
}

func TestLifetimeOrdering(t *testing.T) {
	t.Parallel()
	// Fewer reprograms → strictly longer life at the same horizon.
	e := DefaultEndurance()
	p := DefaultDeviceParams()
	if !(e.Lifetime(2, 1e8, p) > e.Lifetime(200, 1e8, p)) {
		t.Fatal("lifetime not monotone in reprogram count")
	}
}
