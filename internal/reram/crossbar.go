package reram

import (
	"fmt"
	"math"

	"odin/internal/mat"
	"odin/internal/rng"
)

// Crossbar is a programmable c×c ReRAM array holding quantised conductances.
// It supports a reference (dense) non-ideal MVM that includes conductance
// drift, IR-drop attenuation for the active OU, and optional read noise.
// The analytic models in internal/ou never instantiate Crossbars — they work
// from DeviceParams statistics — but the accuracy surrogate calibration and
// the examples use this type to demonstrate end-to-end behaviour.
type Crossbar struct {
	size         int
	params       DeviceParams
	g            *mat.Dense // programmed conductances (S)
	nu           *mat.Dense // per-cell drift coefficients (device variation)
	weightScale  float64    // |w| represented by GOn
	signs        *mat.Dense // +1/−1 per cell (differential sign encoding)
	programmedAt float64    // simulation time of last (re)programming
	writes       int        // number of programming passes performed

	// SeedLabel decorrelates drift-variation draws between crossbars; set
	// it before Program for reproducible multi-crossbar systems.
	SeedLabel string
}

// NewCrossbar allocates an unprogrammed crossbar. Size must be positive.
func NewCrossbar(size int, params DeviceParams) *Crossbar {
	if size <= 0 {
		panic(fmt.Sprintf("reram: invalid crossbar size %d", size))
	}
	if err := params.Validate(); err != nil {
		panic(fmt.Sprintf("reram: %v", err))
	}
	return &Crossbar{
		size:   size,
		params: params,
		g:      mat.NewDense(size, size),
		nu:     mat.NewDense(size, size),
		signs:  mat.NewDense(size, size),
	}
}

// Size returns the crossbar dimension c (the array is c×c).
func (x *Crossbar) Size() int { return x.size }

// Params returns the device parameters.
func (x *Crossbar) Params() DeviceParams { return x.params }

// Writes returns how many programming passes (initial + reprogrammings)
// the crossbar has seen.
func (x *Crossbar) Writes() int { return x.writes }

// Program writes the weight block w (rows×cols ≤ size×size) into the array
// at simulation time simTime. Weights are normalised by the block's max
// magnitude, quantised to the cell's level count, and stored with a sign
// plane (modelling the usual differential/positive-negative array pair).
func (x *Crossbar) Program(w *mat.Dense, simTime float64) {
	if w.Rows > x.size || w.Cols > x.size {
		panic(fmt.Sprintf("reram: weight block %dx%d exceeds crossbar %dx%d",
			w.Rows, w.Cols, x.size, x.size))
	}
	x.weightScale = w.MaxAbs()
	if x.weightScale == 0 {
		x.weightScale = 1
	}
	x.g.Zero()
	x.signs.Zero()
	for i := 0; i < w.Rows; i++ {
		for j := 0; j < w.Cols; j++ {
			v := w.At(i, j)
			sign := 1.0
			if v < 0 {
				sign = -1
			}
			x.signs.Set(i, j, sign)
			x.g.Set(i, j, x.params.QuantizeToLevel(math.Abs(v)/x.weightScale))
		}
	}
	x.sampleDrift()
	x.programmedAt = simTime
	x.writes++
}

// sampleDrift draws each cell's drift coefficient ν·(1+σ·z). Every
// programming pass resamples (the filament re-forms), deterministically in
// (SeedLabel, write count).
func (x *Crossbar) sampleDrift() {
	if x.params.DriftSigma == 0 {
		for i := range x.nu.Data {
			x.nu.Data[i] = x.params.Nu
		}
		return
	}
	src := rng.NewFromString(fmt.Sprintf("xbar-drift/%s/%d", x.SeedLabel, x.writes))
	for i := range x.nu.Data {
		x.nu.Data[i] = x.params.Nu * (1 + x.params.DriftSigma*src.NormFloat64())
	}
}

// Reprogram rewrites the stored pattern, resetting the drift clock, and
// returns the energy and latency of the pass.
func (x *Crossbar) Reprogram(simTime float64) (energy, latency float64) {
	cells := x.programmedCells()
	x.programmedAt = simTime
	x.writes++
	return x.params.ReprogramEnergy(cells), x.params.ReprogramLatency(cells, x.size)
}

func (x *Crossbar) programmedCells() int {
	n := 0
	for _, v := range x.g.Data {
		if v > 0 {
			n++
		}
	}
	return n
}

// Age returns the drift age of the array at simulation time simTime.
func (x *Crossbar) Age(simTime float64) float64 {
	age := simTime - x.programmedAt + x.params.T0
	if age < x.params.T0 {
		age = x.params.T0
	}
	return age
}

// MVMOptions controls the reference non-ideal MVM.
type MVMOptions struct {
	OURows, OUCols int     // active OU size; 0 means full array
	SimTime        float64 // current simulation time (drives drift)
	NoiseSigma     float64 // relative Gaussian read-noise std-dev (0 = none)
	Noise          *rng.Source
}

// MVM computes y = Wᵀ·v-style bitline currents under non-idealities: each
// stored conductance drifts with its own coefficient (device variation),
// IR-drop attenuates each cell by its wire distance within the active OU
// (cells far from the drivers see more series resistance), and optional
// multiplicative Gaussian read noise is applied per cell. The result is
// de-quantised back to weight units so that it is directly comparable with
// IdealMVM.
func (x *Crossbar) MVM(input []float64, opts MVMOptions) []float64 {
	if len(input) != x.size {
		panic(fmt.Sprintf("reram: input length %d, want %d", len(input), x.size))
	}
	r, c := opts.OURows, opts.OUCols
	if r <= 0 {
		r = x.size
	}
	if c <= 0 {
		c = x.size
	}
	age := x.Age(opts.SimTime)
	logAge := math.Log(age / x.params.T0)
	gRange := x.params.GOn - x.params.GOff
	out := make([]float64, x.size)
	for j := 0; j < x.size; j++ {
		var acc float64
		for i := 0; i < x.size; i++ {
			g := x.g.At(i, j)
			if g == 0 || input[i] == 0 {
				continue
			}
			// Per-cell drift: g·(age/t0)^(−ν_ij).
			gd := g * math.Exp(-x.nu.At(i, j)*logAge)
			// Position-dependent IR-drop: series resistance grows with the
			// cell's distance from the word/bit-line drivers within its OU.
			dist := float64(i%r+j%c) + 2
			eff := 1.0 / (1.0/gd + x.params.RWire*dist)
			if opts.NoiseSigma > 0 && opts.Noise != nil {
				eff *= 1 + opts.NoiseSigma*opts.Noise.NormFloat64()
			}
			// De-quantise: conductance back to normalised weight magnitude.
			wmag := (eff - x.params.GOff) / gRange
			if wmag < 0 {
				wmag = 0
			}
			acc += x.signs.At(i, j) * wmag * x.weightScale * input[i]
		}
		out[j] = acc
	}
	return out
}

// IdealMVM computes the same product from the quantised weights with no
// drift, IR-drop, or noise — the "as programmed" reference.
func (x *Crossbar) IdealMVM(input []float64) []float64 {
	if len(input) != x.size {
		panic(fmt.Sprintf("reram: input length %d, want %d", len(input), x.size))
	}
	gRange := x.params.GOn - x.params.GOff
	out := make([]float64, x.size)
	for j := 0; j < x.size; j++ {
		var acc float64
		for i := 0; i < x.size; i++ {
			g := x.g.At(i, j)
			if g == 0 || input[i] == 0 {
				continue
			}
			wmag := (g - x.params.GOff) / gRange
			acc += x.signs.At(i, j) * wmag * x.weightScale * input[i]
		}
		out[j] = acc
	}
	return out
}

// RelativeMVMError returns ‖MVM−IdealMVM‖₂ / ‖IdealMVM‖₂ for a given input
// and options — a convenient scalar for drift/IR-drop studies.
func (x *Crossbar) RelativeMVMError(input []float64, opts MVMOptions) float64 {
	ideal := x.IdealMVM(input)
	noisy := x.MVM(input, opts)
	var num, den float64
	for i := range ideal {
		d := noisy[i] - ideal[i]
		num += d * d
		den += ideal[i] * ideal[i]
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}
