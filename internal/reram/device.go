// Package reram models the ReRAM device and crossbar physics that Odin's
// analytical models are built on: conductance drift (paper Eq. 3), IR-drop
// induced conductance error for an R×C Operation Unit (paper Eq. 4),
// weight→conductance programming with per-cell quantisation, reprogramming
// cost, and a reference non-ideal matrix-vector-multiply used by the
// accuracy surrogate and the examples.
//
// All conductances are in siemens, resistances in ohms, times in seconds,
// energies in joules.
package reram

import (
	"fmt"
	"math"
)

// DeviceParams collects the ReRAM cell and crossbar electrical parameters
// (paper Table II) plus programming-cost constants.
type DeviceParams struct {
	GOn   float64 // on-state conductance (S); Table II: 333 µS
	GOff  float64 // off-state conductance (S); Table II: 0.33 µS
	RWire float64 // crossbar wire resistance per activated line (Ω); Table II: 1 Ω
	Nu    float64 // conductance drift coefficient v; Table II: 0.2 s⁻¹
	T0    float64 // initial device programming time t₀ (s)

	// DriftSigma is the relative device-to-device variation of the drift
	// coefficient: each cell drifts with ν·(1+σ·z), z ~ N(0,1), resampled at
	// every programming pass. Uniform drift rescales an MVM harmlessly; it
	// is this variation that corrupts *relative* weights and flips
	// classifications — the physical mechanism behind the accuracy
	// surrogate's drift term. 0 disables it.
	DriftSigma float64

	BitsPerCell int // weight bits stored per cell; Table I: 2

	// Programming (write) cost model. A reprogramming pass rewrites every
	// programmed cell with WritePulses pulses. Per-pulse values follow
	// published low-energy ReRAM write characteristics (single-digit pJ,
	// ≈ 100 ns) — the paper does not disclose its constants, only that
	// reprogramming energy is "high"; at these values a full-model rewrite
	// costs ~10⁴–10⁵ inferences' worth of energy, which makes frequent
	// reprogramming dominate coarse-OU energy budgets exactly as §V.C
	// reports.
	WriteEnergyPerCell  float64 // J per write pulse per cell
	WriteLatencyPerCell float64 // s per write pulse per cell (row-parallel writes divide this)
	WritePulses         int     // program-and-verify pulses per cell
}

// DefaultDeviceParams returns the paper's Table II parameters with the
// programming-cost constants described above.
func DefaultDeviceParams() DeviceParams {
	return DeviceParams{
		GOn:                 333e-6,
		GOff:                0.33e-6,
		RWire:               1.0,
		Nu:                  0.2,
		T0:                  1.0,
		DriftSigma:          0.10,
		BitsPerCell:         2,
		WriteEnergyPerCell:  2e-12, // 2 pJ per pulse
		WriteLatencyPerCell: 40e-9, // 40 ns per pulse
		WritePulses:         1,
	}
}

// Validate reports whether the parameters are physically sensible.
func (p DeviceParams) Validate() error {
	switch {
	case p.GOn <= 0 || p.GOff <= 0:
		return fmt.Errorf("reram: conductances must be positive (GOn=%g, GOff=%g)", p.GOn, p.GOff)
	case p.GOff >= p.GOn:
		return fmt.Errorf("reram: GOff (%g) must be below GOn (%g)", p.GOff, p.GOn)
	case p.RWire < 0:
		return fmt.Errorf("reram: negative wire resistance %g", p.RWire)
	case p.Nu < 0:
		return fmt.Errorf("reram: negative drift coefficient %g", p.Nu)
	case p.DriftSigma < 0 || p.DriftSigma >= 0.5:
		return fmt.Errorf("reram: drift variation %g out of [0,0.5)", p.DriftSigma)
	case p.T0 <= 0:
		return fmt.Errorf("reram: non-positive reference time %g", p.T0)
	case p.BitsPerCell < 1 || p.BitsPerCell > 8:
		return fmt.Errorf("reram: BitsPerCell %d out of [1,8]", p.BitsPerCell)
	}
	return nil
}

// GDrift returns the drifted on-state conductance at age t since programming
// (paper Eq. 3): G_drift(t) = G_ON · (t/t₀)^(−v). Ages below t₀ are clamped
// to t₀ (the device cannot be "younger" than its programming time).
func (p DeviceParams) GDrift(t float64) float64 {
	if t < p.T0 {
		t = p.T0
	}
	return p.GOn * math.Pow(t/p.T0, -p.Nu)
}

// DeltaG returns the absolute conductance error ΔG for an OU of size R×C at
// device age t (paper Eq. 4):
//
//	ΔG = | G_ON − 1 / ( 1/G_drift(t) + R_wire·(R+C) ) |
//
// The R+C term captures the IR-drop along the activated wordlines and
// bitlines; the drift term captures retention loss. Larger OUs and older
// devices both increase ΔG.
func (p DeviceParams) DeltaG(r, c int, t float64) float64 {
	if r < 1 || c < 1 {
		panic(fmt.Sprintf("reram: invalid OU size %dx%d", r, c))
	}
	gd := p.GDrift(t)
	eff := 1.0 / (1.0/gd + p.RWire*float64(r+c))
	return math.Abs(p.GOn - eff)
}

// NonIdealityFraction returns ΔG normalised by G_ON, the dimensionless
// non-ideality factor (NF) that Odin's η threshold is tested against.
func (p DeviceParams) NonIdealityFraction(r, c int, t float64) float64 {
	return p.DeltaG(r, c, t) / p.GOn
}

// EffectiveConductance returns the conductance actually sensed for a cell
// programmed to g, at device age t, inside an R×C OU. It generalises Eq. (4)
// to an arbitrary programmed level by drifting g with the same power law and
// adding the wire series resistance.
func (p DeviceParams) EffectiveConductance(g float64, r, c int, t float64) float64 {
	if g <= 0 {
		return g
	}
	if t < p.T0 {
		t = p.T0
	}
	gd := g * math.Pow(t/p.T0, -p.Nu)
	return 1.0 / (1.0/gd + p.RWire*float64(r+c))
}

// ReprogramEnergy returns the energy to rewrite `cells` programmed cells.
func (p DeviceParams) ReprogramEnergy(cells int) float64 {
	return float64(cells) * p.WriteEnergyPerCell * float64(p.WritePulses)
}

// ReprogramLatency returns the time to rewrite `cells` cells with
// rowParallel cells written concurrently (one crossbar row per write step is
// typical; pass 0 or negative for fully serial writes).
func (p DeviceParams) ReprogramLatency(cells, rowParallel int) float64 {
	if rowParallel < 1 {
		rowParallel = 1
	}
	steps := (cells + rowParallel - 1) / rowParallel
	return float64(steps) * p.WriteLatencyPerCell * float64(p.WritePulses)
}

// CellLevels returns the number of distinct programmable conductance levels.
func (p DeviceParams) CellLevels() int { return 1 << p.BitsPerCell }

// QuantizeToLevel maps a normalised weight magnitude w ∈ [0,1] to the
// nearest programmable conductance in [GOff, GOn].
func (p DeviceParams) QuantizeToLevel(w float64) float64 {
	if w < 0 {
		w = 0
	}
	if w > 1 {
		w = 1
	}
	levels := p.CellLevels()
	step := 1.0 / float64(levels-1)
	lvl := math.Round(w / step)
	frac := lvl * step
	return p.GOff + frac*(p.GOn-p.GOff)
}
