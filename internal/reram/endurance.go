package reram

import (
	"fmt"
	"math"
)

// Endurance models ReRAM write wear-out: each cell survives a bounded
// number of SET/RESET cycles before it can no longer be programmed
// reliably. Reprogramming passes rewrite every programmed cell, so a
// configuration's reprogramming cadence directly sets the accelerator's
// service life — an effect the paper motivates ("device reprogramming ...
// can introduce high energy overhead") but does not quantify. This
// extension does.
type Endurance struct {
	// WriteLimit is the number of write pulses a cell tolerates. Published
	// HfO₂ ReRAM endurance ranges 10⁶–10¹⁰; the default is a conservative
	// embedded-grade 10⁶.
	WriteLimit float64
}

// DefaultEndurance returns the conservative default.
func DefaultEndurance() Endurance { return Endurance{WriteLimit: 1e6} }

// Validate reports whether the spec is usable.
func (e Endurance) Validate() error {
	if e.WriteLimit < 1 {
		return fmt.Errorf("reram: write limit %v must be at least 1", e.WriteLimit)
	}
	return nil
}

// WearFraction returns the fraction of cell endurance consumed by the
// given number of whole-array reprogramming passes with the device's pulse
// count.
func (e Endurance) WearFraction(passes int, p DeviceParams) float64 {
	return float64(passes) * float64(p.WritePulses) / e.WriteLimit
}

// Lifetime extrapolates the service life (seconds) of a device that was
// reprogrammed `passes` times over `horizon` seconds of operation: the time
// until the write limit is exhausted at the same cadence. A device that
// never reprograms returns +Inf (retention, not endurance, would bound it).
func (e Endurance) Lifetime(passes int, horizon float64, p DeviceParams) float64 {
	if passes <= 0 {
		return math.Inf(1)
	}
	writesPerSecond := float64(passes) * float64(p.WritePulses) / horizon
	return e.WriteLimit / writesPerSecond
}

// LifetimeYears is Lifetime converted to years.
func (e Endurance) LifetimeYears(passes int, horizon float64, p DeviceParams) float64 {
	const secondsPerYear = 365.25 * 24 * 3600
	return e.Lifetime(passes, horizon, p) / secondsPerYear
}
