package reram

import (
	"math"
	"testing"

	"odin/internal/mat"
	"odin/internal/rng"
)

func randomBlock(rows, cols int, seed uint64) *mat.Dense {
	src := rng.New(seed)
	w := mat.NewDense(rows, cols)
	for i := range w.Data {
		w.Data[i] = src.NormFloat64()
	}
	return w
}

func randomInput(n int, seed uint64) []float64 {
	src := rng.New(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = src.Float64()
	}
	return v
}

func TestNewCrossbarPanicsOnBadSize(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("size 0 did not panic")
		}
	}()
	NewCrossbar(0, DefaultDeviceParams())
}

func TestProgramRejectsOversizedBlock(t *testing.T) {
	t.Parallel()
	x := NewCrossbar(8, DefaultDeviceParams())
	defer func() {
		if recover() == nil {
			t.Fatal("oversized block did not panic")
		}
	}()
	x.Program(randomBlock(9, 8, 1), 0)
}

func TestIdealMVMMatchesQuantisedWeights(t *testing.T) {
	t.Parallel()
	p := DefaultDeviceParams()
	p.BitsPerCell = 8 // fine quantisation so the ideal MVM ≈ float MVM
	x := NewCrossbar(16, p)
	w := randomBlock(16, 16, 2)
	x.Program(w, 0)
	in := randomInput(16, 3)
	got := x.IdealMVM(in)
	// Reference: wᵀ·in column-wise.
	for j := 0; j < 16; j++ {
		var want float64
		for i := 0; i < 16; i++ {
			want += w.At(i, j) * in[i]
		}
		if math.Abs(got[j]-want) > 0.02*(1+math.Abs(want)) {
			t.Fatalf("col %d: ideal MVM %v, float reference %v", j, got[j], want)
		}
	}
}

func TestMVMErrorGrowsWithOUSize(t *testing.T) {
	t.Parallel()
	x := NewCrossbar(128, DefaultDeviceParams())
	x.Program(randomBlock(128, 128, 4), 0)
	in := randomInput(128, 5)
	prev := -1.0
	for _, s := range []int{4, 16, 64, 128} {
		err := x.RelativeMVMError(in, MVMOptions{OURows: s, OUCols: s, SimTime: 0})
		if err <= prev {
			t.Fatalf("MVM error not increasing with OU size: size %d err %v prev %v", s, err, prev)
		}
		prev = err
	}
}

func TestMVMErrorGrowsWithTime(t *testing.T) {
	t.Parallel()
	x := NewCrossbar(64, DefaultDeviceParams())
	x.Program(randomBlock(64, 64, 6), 0)
	in := randomInput(64, 7)
	prev := -1.0
	for _, tt := range []float64{0, 100, 1e4, 1e6} {
		err := x.RelativeMVMError(in, MVMOptions{OURows: 16, OUCols: 16, SimTime: tt})
		if err <= prev {
			t.Fatalf("MVM error not increasing with time %v: %v <= %v", tt, err, prev)
		}
		prev = err
	}
}

func TestReprogramResetsDrift(t *testing.T) {
	t.Parallel()
	x := NewCrossbar(32, DefaultDeviceParams())
	x.Program(randomBlock(32, 32, 8), 0)
	in := randomInput(32, 9)
	aged := x.RelativeMVMError(in, MVMOptions{OURows: 16, OUCols: 16, SimTime: 1e6})
	energy, latency := x.Reprogram(1e6)
	if energy <= 0 || latency <= 0 {
		t.Fatalf("reprogram cost not positive: E=%v L=%v", energy, latency)
	}
	fresh := x.RelativeMVMError(in, MVMOptions{OURows: 16, OUCols: 16, SimTime: 1e6})
	if fresh >= aged {
		t.Fatalf("reprogramming did not reduce error: %v -> %v", aged, fresh)
	}
	if x.Writes() != 2 {
		t.Fatalf("Writes = %d, want 2", x.Writes())
	}
}

func TestAgeClamping(t *testing.T) {
	t.Parallel()
	p := DefaultDeviceParams()
	x := NewCrossbar(8, p)
	x.Program(randomBlock(8, 8, 10), 100)
	if age := x.Age(50); age != p.T0 {
		t.Fatalf("age before programming = %v, want t0", age)
	}
	if age := x.Age(100 + 500); math.Abs(age-(500+p.T0)) > 1e-12 {
		t.Fatalf("age = %v, want %v", age, 500+p.T0)
	}
}

func TestMVMNoiseIsZeroMeanish(t *testing.T) {
	t.Parallel()
	x := NewCrossbar(32, DefaultDeviceParams())
	x.Program(randomBlock(32, 32, 11), 0)
	in := randomInput(32, 12)
	base := x.MVM(in, MVMOptions{OURows: 8, OUCols: 8})
	noise := rng.New(13)
	var bias float64
	const trials = 200
	for k := 0; k < trials; k++ {
		noisy := x.MVM(in, MVMOptions{OURows: 8, OUCols: 8, NoiseSigma: 0.02, Noise: noise})
		for j := range noisy {
			bias += noisy[j] - base[j]
		}
	}
	bias /= trials * 32
	if math.Abs(bias) > 0.01 {
		t.Fatalf("read noise bias %v too large", bias)
	}
}

func TestMVMInputLengthPanics(t *testing.T) {
	t.Parallel()
	x := NewCrossbar(8, DefaultDeviceParams())
	x.Program(randomBlock(8, 8, 14), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("short input did not panic")
		}
	}()
	x.MVM(make([]float64, 7), MVMOptions{})
}

func TestZeroWeightBlock(t *testing.T) {
	t.Parallel()
	x := NewCrossbar(8, DefaultDeviceParams())
	x.Program(mat.NewDense(8, 8), 0) // all zeros must not divide by zero
	out := x.IdealMVM(randomInput(8, 15))
	for j, v := range out {
		// All-zero weights quantise to GOff (> 0), so outputs are small but
		// finite; NaN/Inf would indicate a normalisation bug.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("output %d is not finite: %v", j, v)
		}
	}
}

func TestRelativeErrorZeroDenominator(t *testing.T) {
	t.Parallel()
	x := NewCrossbar(4, DefaultDeviceParams())
	x.Program(randomBlock(4, 4, 16), 0)
	// Zero input → zero ideal output → error defined as 0.
	if e := x.RelativeMVMError(make([]float64, 4), MVMOptions{}); e != 0 {
		t.Fatalf("relative error on zero input = %v, want 0", e)
	}
}

func TestPartialBlockProgramming(t *testing.T) {
	t.Parallel()
	// A 5×3 block in a 16×16 crossbar: unprogrammed cells must not
	// contribute to MVM outputs.
	x := NewCrossbar(16, DefaultDeviceParams())
	w := randomBlock(5, 3, 17)
	x.Program(w, 0)
	in := make([]float64, 16)
	in[10] = 1 // row outside the programmed block
	out := x.IdealMVM(in)
	for j, v := range out {
		if v != 0 {
			t.Fatalf("unprogrammed row leaked into column %d: %v", j, v)
		}
	}
}
