package experiments

import (
	"fmt"
	"io"

	"odin/internal/core"
	"odin/internal/dnn"
	"odin/internal/ou"
	"odin/internal/search"
)

// Fig5Snapshot is the layer-wise comparison at one device age.
type Fig5Snapshot struct {
	Age float64
	// Per-layer R×C products, in layer order.
	Offline []int // true optimum (exhaustive search with full knowledge)
	RB      []int // online policy + resource-bounded search
	EX      []int // online policy + exhaustive search
	// Agreement of each online method with the offline optimum.
	RBAgreement float64
	EXAgreement float64
}

// Fig5Result compares offline-optimal vs online-learnt layer-wise OU
// configurations for the unseen VGG11, at t ∈ {t₀, 10², 10⁴} s, and
// reports the §V.B search-overhead ratio.
type Fig5Result struct {
	Model         string
	Snapshots     []Fig5Snapshot
	RBEvaluations int     // per-layer-decision evaluations by RB
	EXEvaluations int     // per-layer-decision evaluations by EX (grid size)
	OverheadRatio float64 // EX / RB comparator work (paper: ≈3×)
}

// Fig5 reproduces the online-adaptation study. Two controllers (RB and EX)
// bootstrapped from the non-VGG families run the horizon; at each snapshot
// age their decisions are compared with the exhaustive offline optimum.
func Fig5(sys core.System) (Fig5Result, error) {
	model := dnn.NewVGG11()
	ages := []float64{1, 1e2, 1e4}

	mkController := func(exhaustive bool) (*core.Controller, *core.Workload, error) {
		target := dnn.NewVGG11()
		known := core.LeaveOut(dnn.AllWorkloads(), "VGG")
		pol, _, err := core.BootstrapPolicy(sys, known, core.DefaultBootstrapConfig())
		if err != nil {
			return nil, nil, err
		}
		wl, err := sys.Prepare(target)
		if err != nil {
			return nil, nil, err
		}
		opts := core.DefaultControllerOptions()
		opts.Exhaustive = exhaustive
		ctrl, err := core.NewController(sys, wl, pol, opts)
		return ctrl, wl, err
	}

	rbCtrl, rbWl, err := mkController(false)
	if err != nil {
		return Fig5Result{}, err
	}
	exCtrl, _, err := mkController(true)
	if err != nil {
		return Fig5Result{}, err
	}

	res := Fig5Result{Model: model.Name}
	products := func(sizes []ou.Size) []int {
		out := make([]int, len(sizes))
		for i, s := range sizes {
			out[i] = s.Product()
		}
		return out
	}
	agreement := func(a, b []ou.Size) float64 {
		hits := 0
		for i := range a {
			if a[i] == b[i] {
				hits++
			}
		}
		return float64(hits) / float64(len(a))
	}

	// Warm the online loops with a few runs before each snapshot so the
	// policies see disagreements and adapt, as in the paper's timeline.
	var lastRB, lastEX core.RunReport
	warmups := []float64{0, 10, 30, 1e2, 3e2, 1e3, 3e3, 1e4}
	idx := 0
	for _, age := range ages {
		for idx < len(warmups) && warmups[idx] <= age {
			lastRB = rbCtrl.RunInference(warmups[idx])
			lastEX = exCtrl.RunInference(warmups[idx])
			idx++
		}
		offline := bestSizes(sys, rbWl, age)
		snap := Fig5Snapshot{
			Age:         age,
			Offline:     products(offline),
			RB:          products(lastRB.Sizes),
			EX:          products(lastEX.Sizes),
			RBAgreement: agreement(lastRB.Sizes, offline),
			EXAgreement: agreement(lastEX.Sizes, offline),
		}
		res.Snapshots = append(res.Snapshots, snap)
	}

	// Search overhead: evaluations per layer decision.
	grid := sys.Grid()
	obj := core.LayerObjective(sys, rbWl, 4, 1)
	rb := search.ResourceBounded(grid, obj, grid.SizeAt(2, 2), core.DefaultControllerOptions().SearchK)
	ex := search.Exhaustive(grid, obj)
	res.RBEvaluations = rb.Evaluations
	res.EXEvaluations = ex.Evaluations
	res.OverheadRatio = float64(ex.Evaluations) / float64(rb.Evaluations)
	return res, nil
}

// Render prints the per-age layer series and the overhead ratio.
func (r Fig5Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 5: offline vs online (RB/EX) layer-wise OU configurations, %s (CIFAR-10)\n", r.Model)
	for _, s := range r.Snapshots {
		fmt.Fprintf(w, "t = %.2E s  (agreement with offline: RB %.0f%%, EX %.0f%%)\n",
			s.Age, s.RBAgreement*100, s.EXAgreement*100)
		fmt.Fprintf(w, "  %-8s", "layer")
		for i := range s.Offline {
			fmt.Fprintf(w, "%6d", i+1)
		}
		fmt.Fprintln(w)
		row := func(name string, vals []int) {
			fmt.Fprintf(w, "  %-8s", name)
			for _, v := range vals {
				fmt.Fprintf(w, "%6d", v)
			}
			fmt.Fprintln(w)
		}
		row("offline", s.Offline)
		row("RB", s.RB)
		row("EX", s.EX)
	}
	fmt.Fprintf(w, "Search overhead per layer decision: EX %d evals vs RB %d evals (%.1f× higher for EX)\n",
		r.EXEvaluations, r.RBEvaluations, r.OverheadRatio)
}

func runFig5(w io.Writer) error {
	res, err := Fig5(core.DefaultSystem())
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}
