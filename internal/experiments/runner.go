package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"odin/internal/clock"
	"odin/internal/par"
	"odin/internal/telemetry"
)

// RunOptions configures the parallel experiment engine.
type RunOptions struct {
	// Workers is the worker-pool size; <= 0 means GOMAXPROCS.
	Workers int
	// IDs selects a subset of experiments and fixes the output order.
	// Empty means every experiment in paper order (All()).
	IDs []string
	// Clock is the timing source for the per-experiment progress lines
	// and the Report. nil means a virtual clock pinned at 0, so all
	// timings render as 0.000s (what the determinism tests inject).
	Clock clock.Clock
	// Registry, when non-nil, receives per-experiment wall time and the
	// engine's aggregate speedup as telemetry gauges.
	Registry *telemetry.Registry
}

// Timing is one experiment's measured wall time.
type Timing struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

// Report summarises an engine run: per-experiment wall times in flush
// order, the engine's total wall time, and the pool size used.
type Report struct {
	Workers     int      `json:"workers"`
	Timings     []Timing `json:"timings"`
	WallSeconds float64  `json:"wall_seconds"`
}

// SumSeconds returns the total per-experiment compute time — what a
// sequential run would cost on an otherwise idle machine.
func (r Report) SumSeconds() float64 {
	var s float64
	for _, t := range r.Timings {
		s += t.Seconds
	}
	return s
}

// Speedup returns SumSeconds / WallSeconds (1.0 when wall time is zero,
// e.g. under a virtual clock).
func (r Report) Speedup() float64 {
	if r.WallSeconds <= 0 {
		return 1
	}
	return r.SumSeconds() / r.WallSeconds
}

// selectExperiments resolves ids (empty = all, paper order) preserving the
// requested order.
func selectExperiments(ids []string) ([]Experiment, error) {
	if len(ids) == 0 {
		return All(), nil
	}
	out := make([]Experiment, 0, len(ids))
	for _, id := range ids {
		e, err := ByID(id)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// runCell is one experiment's private output shard: the worker that runs
// experiment i writes only cells[i] and then closes done; the flusher reads
// the cell only after <-done, so the pool is race-clean by construction and
// the flushed byte stream is identical for every worker count.
type runCell struct {
	buf     bytes.Buffer
	err     error
	seconds float64
	done    chan struct{}
}

// RunAll executes the selected experiments on a bounded worker pool and
// writes their rendered output to w in selection order, byte-identical to
// the sequential loop: each experiment renders into its own buffer
// (progress header, artefact body, timing footer) and buffers are flushed
// strictly in order as they complete. On an experiment failure the flush
// stops after that experiment's partial output — again exactly the
// sequential byte stream — the pool is drained, and the failure is
// returned. All timing flows through opts.Clock; no wall clock is read
// here.
func RunAll(w io.Writer, opts RunOptions) (Report, error) {
	exps, err := selectExperiments(opts.IDs)
	if err != nil {
		return Report{}, err
	}
	return runSelected(w, exps, opts)
}

// runSelected is RunAll after id resolution; tests drive it directly with
// synthetic experiments to pin the engine's failure semantics.
func runSelected(w io.Writer, exps []Experiment, opts RunOptions) (Report, error) {
	clk := opts.Clock
	if clk == nil {
		clk = clock.NewVirtual(0)
	}
	workers := par.Workers(opts.Workers)
	report := Report{Workers: workers}
	begin := clk.Now()

	cells := make([]runCell, len(exps))
	for i := range cells {
		cells[i].done = make(chan struct{})
	}
	poolDone := make(chan struct{})
	go func() {
		defer close(poolDone)
		par.Each(workers, len(exps), func(i int) {
			defer close(cells[i].done)
			c, e := &cells[i], exps[i]
			start := clk.Now()
			fmt.Fprintf(&c.buf, "==> %s (%s)\n", e.Title, e.ID)
			if err := e.Run(&c.buf); err != nil {
				c.err = fmt.Errorf("%s: %w", e.ID, err)
				c.seconds = clk.Now() - start
				return
			}
			c.seconds = clk.Now() - start
			fmt.Fprintf(&c.buf, "<== %s done in %.3fs\n\n", e.ID, c.seconds)
		})
	}()

	var failed error
	for i := range cells {
		<-cells[i].done
		if _, werr := w.Write(cells[i].buf.Bytes()); werr != nil && failed == nil {
			failed = werr
		}
		report.Timings = append(report.Timings, Timing{ID: exps[i].ID, Seconds: cells[i].seconds})
		if cells[i].err != nil {
			failed = cells[i].err
			break
		}
		if failed != nil {
			break
		}
	}
	<-poolDone
	report.WallSeconds = clk.Now() - begin
	if opts.Registry != nil {
		recordTelemetry(opts.Registry, report)
	}
	return report, failed
}

// recordTelemetry mirrors a Report into the registry: per-experiment wall
// time, engine wall time, pool size, and the aggregate speedup.
func recordTelemetry(reg *telemetry.Registry, r Report) {
	perExp := reg.GaugeVec("odinsim_experiment_seconds",
		"wall time of one experiment driver", "experiment")
	for _, t := range r.Timings {
		perExp.With(t.ID).Set(t.Seconds)
	}
	reg.Gauge("odinsim_wall_seconds", "wall time of the whole engine run").Set(r.WallSeconds)
	reg.Gauge("odinsim_workers", "worker-pool size of the engine run").Set(float64(r.Workers))
	reg.Gauge("odinsim_speedup", "sum of experiment times over engine wall time").Set(r.Speedup())
}

// jsonCell is one experiment's marshalled Data() payload.
type jsonCell struct {
	payload []byte
	err     error
}

// RunAllJSON computes Data() for the selected experiments on the worker
// pool and writes a single JSON object whose keys appear in selection
// order — NOT alphabetically. encoding/json sorts map keys, which would
// silently discard the paper ordering All() establishes, so the object is
// hand-assembled from per-experiment marshalled payloads. Output is
// byte-identical for every worker count.
func RunAllJSON(w io.Writer, opts RunOptions) error {
	exps, err := selectExperiments(opts.IDs)
	if err != nil {
		return err
	}
	cells := make([]jsonCell, len(exps))
	if err := par.ForEach(opts.Workers, len(exps), func(i int) error {
		data, err := exps[i].Data()
		if err != nil {
			cells[i].err = fmt.Errorf("%s: %w", exps[i].ID, err)
			return cells[i].err
		}
		b, err := json.MarshalIndent(data, "  ", "  ")
		if err != nil {
			cells[i].err = fmt.Errorf("%s: %w", exps[i].ID, err)
			return cells[i].err
		}
		cells[i].payload = b
		return nil
	}); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "{\n"); err != nil {
		return err
	}
	for i, e := range exps {
		key, err := json.Marshal(e.ID)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(exps)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "  %s: %s%s", key, cells[i].payload, sep); err != nil {
			return err
		}
	}
	_, err = io.WriteString(w, "}\n")
	return err
}
