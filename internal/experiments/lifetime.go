package experiments

import (
	"fmt"
	"io"
	"math"

	"odin/internal/core"
	"odin/internal/dnn"
	"odin/internal/reram"
)

// LifetimeRow is one configuration's endurance outcome.
type LifetimeRow struct {
	Name          string
	Reprograms    int     // passes over the 10⁸ s horizon
	WearFraction  float64 // endurance consumed over the horizon
	LifetimeYears float64 // projected service life at this cadence
}

// LifetimeResult is the endurance extension study: how each OU strategy's
// reprogramming cadence translates into device service life.
type LifetimeResult struct {
	Model      string
	Endurance  reram.Endurance
	HorizonSec float64
	Rows       []LifetimeRow
}

// Lifetime runs the VGG11 horizon for every configuration and extrapolates
// wear. This is an extension beyond the paper's evaluation: the paper
// motivates minimising reprogramming by its energy cost; endurance makes
// the same cadence a *lifetime* limit.
func Lifetime(sys core.System) (LifetimeResult, error) {
	cfg := defaultHorizon()
	endurance := reram.DefaultEndurance()
	res := LifetimeResult{Model: "VGG11", Endurance: endurance, HorizonSec: cfg.End}

	add := func(name string, reprograms int) {
		res.Rows = append(res.Rows, LifetimeRow{
			Name:          name,
			Reprograms:    reprograms,
			WearFraction:  endurance.WearFraction(reprograms, sys.Device),
			LifetimeYears: endurance.LifetimeYears(reprograms, cfg.End, sys.Device),
		})
	}

	for _, size := range core.StandardBaselineSizes() {
		wl, err := sys.Prepare(dnn.NewVGG11())
		if err != nil {
			return res, err
		}
		b, err := core.NewBaseline(sys, wl, size)
		if err != nil {
			return res, err
		}
		sum := core.SimulateHorizon(b, cfg)
		add(size.String(), sum.Reprograms)
	}

	ctrl, _, err := bootstrapFor(sys, dnn.NewVGG11())
	if err != nil {
		return res, err
	}
	sum := core.SimulateHorizon(ctrl, cfg)
	add("Odin", sum.Reprograms)
	return res, nil
}

// Render prints the endurance table.
func (r LifetimeResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Extension: device endurance and service life (%s, %.0e-write cells, horizon %.0e s)\n",
		r.Model, r.Endurance.WriteLimit, r.HorizonSec)
	fmt.Fprintf(w, "%-8s %12s %16s %16s\n", "Config", "reprograms", "wear/horizon", "lifetime (yr)")
	for _, row := range r.Rows {
		life := fmt.Sprintf("%.1f", row.LifetimeYears)
		if math.IsInf(row.LifetimeYears, 1) {
			life = "retention-bound"
		}
		fmt.Fprintf(w, "%-8s %12d %15.3f%% %16s\n",
			row.Name, row.Reprograms, row.WearFraction*100, life)
	}
}

func runLifetime(w io.Writer) error {
	res, err := Lifetime(core.DefaultSystem())
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}
