package experiments

import (
	"fmt"
	"io"
	"strings"

	"odin/internal/clock"
	"odin/internal/core"
	"odin/internal/dnn"
	"odin/internal/obs"
	"odin/internal/policy"
)

// TraceOptions parameterise RunTrace (the `odinsim trace` subcommand).
type TraceOptions struct {
	// Model names the zoo workload to trace (case-insensitive).
	Model string
	// Runs is the number of decision epochs traced (default 8).
	Runs int
	// Horizon is the simulated ageing span the runs spread over, in
	// seconds (default 1e8, the paper's sweep end). The k-th run executes
	// at t = k·Horizon/Runs, so later runs see a drifted device and the
	// trace captures the policy's migration toward finer OUs — and, late
	// enough, degraded layers and reprogramming passes.
	Horizon float64
	// Seed initialises the policy (default 1).
	Seed uint64
}

func (o TraceOptions) withDefaults() TraceOptions {
	if o.Runs <= 0 {
		o.Runs = 8
	}
	if o.Horizon <= 0 {
		o.Horizon = 1e8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// TraceResult bundles the artefacts of one traced simulation: the span
// tree (Chrome trace JSON / flame summary) and the per-layer decision
// audit of every run.
type TraceResult struct {
	Model   string
	Runs    int
	Horizon float64
	Tracer  *obs.Tracer
	Audit   *obs.AuditLog
	Reports []core.RunReport
}

// RunTrace executes a fully-observed ageing sweep of one workload: a fresh
// controller runs TraceOptions.Runs inference passes spread over the
// horizon with span tracing and decision auditing enabled. Deterministic:
// everything derives from the seed and the virtual timeline.
func RunTrace(opts TraceOptions) (*TraceResult, error) {
	opts = opts.withDefaults()
	model, err := modelByNameFold(opts.Model)
	if err != nil {
		return nil, err
	}
	sys := core.DefaultSystem()
	wl, err := sys.Prepare(model)
	if err != nil {
		return nil, err
	}
	tr := obs.New(clock.NewVirtual(0))
	audit := obs.NewAuditLog(0)
	copts := core.DefaultControllerOptions()
	copts.Tracer = tr
	copts.Audit = audit
	copts.TrainSeed = opts.Seed
	pol := policy.New(policy.Config{Grid: sys.Grid(), Seed: opts.Seed})
	ctrl, err := core.NewController(sys, wl, pol, copts)
	if err != nil {
		return nil, err
	}

	// Crossbar-mapping attribution, one zero-width span per layer on the
	// setup track (-1): how the pim layer placed the workload the runs
	// execute against.
	for j, lm := range wl.Mappings {
		tr.At("mapping", -1, 0, 0, nil,
			obs.Int("layer", j),
			obs.String("name", model.Layers[j].Name),
			obs.Int("xbars", lm.Xbars),
			obs.Int("rows", lm.RowsUsed),
			obs.Int("cols", lm.ColsUsed),
			obs.Int("cells", lm.CellsNonZero))
	}

	res := &TraceResult{
		Model: model.Name, Runs: opts.Runs, Horizon: opts.Horizon,
		Tracer: tr, Audit: audit,
	}
	for k := 0; k < opts.Runs; k++ {
		t := float64(k) * opts.Horizon / float64(opts.Runs)
		res.Reports = append(res.Reports, ctrl.RunInference(t))
	}
	return res, nil
}

// Render prints the human-readable artefacts: the per-layer decision-audit
// attribution table of every run, then the flame summary of the span tree.
func (r *TraceResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "trace: model %s, %d runs over %g s\n\n",
		r.Model, r.Runs, r.Horizon); err != nil {
		return err
	}
	if err := r.Audit.WriteTable(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return r.Tracer.WriteFlame(w)
}

// modelByNameFold resolves a zoo model case-insensitively — the CLI accepts
// `-model resnet18` for the zoo's "ResNet18". Exact matches win.
func modelByNameFold(name string) (*dnn.Model, error) {
	if name == "" {
		return nil, fmt.Errorf("experiments: trace needs a model name")
	}
	if m, err := dnn.ByName(name); err == nil {
		return m, nil
	}
	for _, m := range dnn.ExtendedWorkloads() {
		if strings.EqualFold(m.Name, name) {
			return m, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown model %q (run `odinsim trace` with one of the zoo names, case-insensitive)", name)
}
