package experiments

import (
	"fmt"
	"io"

	"odin/internal/core"
	"odin/internal/dnn"
	"odin/internal/mlp"
	"odin/internal/par"
	"odin/internal/policy"
)

// The sweeps below are embarrassingly parallel: every grid point runs a
// freshly bootstrapped controller (or a fresh workload) against its own
// copy of the system, so each par.ForEach body writes only its rows[i]
// shard and the rendered tables are byte-identical at any worker count.

// The ablations quantify the design choices DESIGN.md §4 calls out. They are
// not paper artefacts; they answer "was this knob set sensibly" questions a
// reviewer (or a user porting the system) would ask.

// ablationHorizon is shorter than the artefact horizon: ablations compare
// configurations against each other, so a coarser sweep suffices.
func ablationHorizon() core.HorizonConfig {
	return core.HorizonConfig{End: 1e8, Epochs: 400}
}

// odinSummaryFor runs a freshly bootstrapped Odin controller on the model
// with the given options and horizon.
func odinSummaryFor(sys core.System, modelName string, opts core.ControllerOptions,
	cfg core.HorizonConfig) (core.HorizonSummary, *core.Controller, error) {
	model, err := dnn.ByName(modelName)
	if err != nil {
		return core.HorizonSummary{}, nil, err
	}
	known := core.LeaveOut(dnn.AllWorkloads(), familyOf(model.Name))
	pol, _, err := core.BootstrapPolicy(sys, known, core.DefaultBootstrapConfig())
	if err != nil {
		return core.HorizonSummary{}, nil, err
	}
	wl, err := sys.Prepare(model)
	if err != nil {
		return core.HorizonSummary{}, nil, err
	}
	ctrl, err := core.NewController(sys, wl, pol, opts)
	if err != nil {
		return core.HorizonSummary{}, nil, err
	}
	sum := core.SimulateHorizon(ctrl, cfg)
	return sum, ctrl, nil
}

// --- Search budget K ------------------------------------------------------

// AblSearchKRow is one K setting's outcome.
type AblSearchKRow struct {
	K               int
	EvalsPerLayer   float64 // mean candidate evaluations per layer decision
	EDPvsExhaustive float64 // TotalEDP relative to the EX-search controller
	Reprograms      int
}

// AblSearchKResult sweeps the RB search budget K (paper: 3) and compares
// against the exhaustive controller.
type AblSearchKResult struct {
	Model string
	Rows  []AblSearchKRow
}

// AblSearchK runs the K sweep on VGG11.
func AblSearchK(sys core.System, ks []int) (AblSearchKResult, error) {
	if len(ks) == 0 {
		ks = []int{1, 2, 3, 5, 8}
	}
	cfg := ablationHorizon()
	res := AblSearchKResult{Model: "VGG11"}

	exOpts := core.DefaultControllerOptions()
	exOpts.Exhaustive = true
	exSum, _, err := odinSummaryFor(sys, res.Model, exOpts, cfg)
	if err != nil {
		return res, err
	}

	layers := len(dnn.NewVGG11().Layers)
	res.Rows = make([]AblSearchKRow, len(ks))
	if err := par.ForEach(0, len(ks), func(i int) error {
		opts := core.DefaultControllerOptions()
		opts.SearchK = ks[i]
		sum, _, err := odinSummaryFor(sys, res.Model, opts, cfg)
		if err != nil {
			return err
		}
		res.Rows[i] = AblSearchKRow{
			K:               ks[i],
			EvalsPerLayer:   float64(sum.SearchEvaluations) / float64(cfg.Epochs*layers),
			EDPvsExhaustive: sum.TotalEDP() / exSum.TotalEDP(),
			Reprograms:      sum.Reprograms,
		}
		return nil
	}); err != nil {
		return AblSearchKResult{Model: res.Model}, err
	}
	return res, nil
}

// Render prints the K sweep.
func (r AblSearchKResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation: RB search budget K (%s); EDP relative to the exhaustive-search controller\n", r.Model)
	fmt.Fprintf(w, "%-4s %16s %16s %12s\n", "K", "evals/decision", "EDP vs EX", "reprograms")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-4d %16.1f %16.3f %12d\n", row.K, row.EvalsPerLayer, row.EDPvsExhaustive, row.Reprograms)
	}
}

func runAblSearchK(w io.Writer) error {
	res, err := AblSearchK(core.DefaultSystem(), nil)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}

// --- Training buffer size -------------------------------------------------

// AblBufferRow is one buffer-capacity outcome.
type AblBufferRow struct {
	Capacity      int
	PolicyUpdates int
	EDP           float64 // absolute per-inference total EDP
	StorageKB     float64
}

// AblBufferResult sweeps the training-buffer capacity (paper: 50 examples /
// 0.35 KB).
type AblBufferResult struct {
	Model string
	Rows  []AblBufferRow
}

// AblBuffer runs the buffer sweep on VGG16.
func AblBuffer(sys core.System, capacities []int) (AblBufferResult, error) {
	if len(capacities) == 0 {
		capacities = []int{10, 25, 50, 100, 200}
	}
	cfg := ablationHorizon()
	res := AblBufferResult{Model: "VGG16", Rows: make([]AblBufferRow, len(capacities))}
	arch := sys.Arch
	if err := par.ForEach(0, len(capacities), func(i int) error {
		capacity := capacities[i]
		opts := core.DefaultControllerOptions()
		opts.BufferSize = capacity
		sum, ctrl, err := odinSummaryFor(sys, res.Model, opts, cfg)
		if err != nil {
			return err
		}
		o := arch.OverheadModel(0, capacity, opts.UpdateEpochs)
		res.Rows[i] = AblBufferRow{
			Capacity:      capacity,
			PolicyUpdates: ctrl.PolicyUpdates(),
			EDP:           sum.TotalEDP(),
			StorageKB:     o.TrainingBufferKB,
		}
		return nil
	}); err != nil {
		return AblBufferResult{Model: res.Model}, err
	}
	return res, nil
}

// Render prints the buffer sweep.
func (r AblBufferResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation: training-buffer capacity (%s)\n", r.Model)
	fmt.Fprintf(w, "%-10s %14s %14s %12s\n", "capacity", "policy updates", "EDP", "storage KB")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10d %14d %14.3e %12.2f\n", row.Capacity, row.PolicyUpdates, row.EDP, row.StorageKB)
	}
}

func runAblBuffer(w io.Writer) error {
	res, err := AblBuffer(core.DefaultSystem(), nil)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}

// --- Non-ideality threshold η ----------------------------------------------

// AblEtaRow is one η outcome.
type AblEtaRow struct {
	Eta        float64
	EDP        float64
	MinAcc     float64
	Reprograms int
}

// AblEtaResult sweeps η (paper: 0.5 %): looser thresholds buy EDP at the
// cost of accuracy; tighter ones force earlier reprogramming.
type AblEtaResult struct {
	Model string
	Rows  []AblEtaRow
}

// AblEta runs the η sweep on ResNet18.
func AblEta(base core.System, etas []float64) (AblEtaResult, error) {
	if len(etas) == 0 {
		etas = []float64{0.0025, 0.005, 0.01, 0.02}
	}
	cfg := ablationHorizon()
	res := AblEtaResult{Model: "ResNet18", Rows: make([]AblEtaRow, len(etas))}
	if err := par.ForEach(0, len(etas), func(i int) error {
		sys := base
		sys.Acc.Eta = etas[i]
		sum, _, err := odinSummaryFor(sys, res.Model, core.DefaultControllerOptions(), cfg)
		if err != nil {
			return err
		}
		res.Rows[i] = AblEtaRow{
			Eta:        etas[i],
			EDP:        sum.TotalEDP(),
			MinAcc:     sum.MinAccuracy,
			Reprograms: sum.Reprograms,
		}
		return nil
	}); err != nil {
		return AblEtaResult{Model: res.Model}, err
	}
	return res, nil
}

// Render prints the η sweep.
func (r AblEtaResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation: non-ideality threshold η (%s)\n", r.Model)
	fmt.Fprintf(w, "%-8s %14s %12s %12s\n", "η", "EDP", "min acc", "reprograms")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8.4f %14.3e %11.1f%% %12d\n", row.Eta, row.EDP, row.MinAcc*100, row.Reprograms)
	}
}

func runAblEta(w io.Writer) error {
	res, err := AblEta(core.DefaultSystem(), nil)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}

// --- Inference rate (reprogramming amortisation crossover) -----------------

// AblRateRow is one inference-rate outcome.
type AblRateRow struct {
	Rate        float64 // inferences per second
	EDPRatio    float64 // 16×16 TotalEDP / Odin TotalEDP
	EnergyRatio float64
}

// AblRateResult sweeps the served inference rate. At high rates inference
// energy amortises reprogramming and the homogeneous 16×16 closes the gap;
// at low (edge-sensing) rates reprogramming dominates and Odin's advantage
// peaks — the crossover behind the horizon model's default.
type AblRateResult struct {
	Model string
	Rows  []AblRateRow
}

// AblRate runs the rate sweep on VGG11.
func AblRate(sys core.System, rates []float64) (AblRateResult, error) {
	if len(rates) == 0 {
		rates = []float64{1e-5, 1e-4, 2e-4, 1e-3, 1e-2}
	}
	res := AblRateResult{Model: "VGG11", Rows: make([]AblRateRow, len(rates))}
	if err := par.ForEach(0, len(rates), func(i int) error {
		cfg := ablationHorizon()
		cfg.InferenceRate = rates[i]

		odinSum, _, err := odinSummaryFor(sys, res.Model, core.DefaultControllerOptions(), cfg)
		if err != nil {
			return err
		}
		wl, err := sys.Prepare(dnn.NewVGG11())
		if err != nil {
			return err
		}
		b, err := core.NewBaseline(sys, wl, core.StandardBaselineSizes()[0])
		if err != nil {
			return err
		}
		baseSum := core.SimulateHorizon(b, cfg)
		res.Rows[i] = AblRateRow{
			Rate:        rates[i],
			EDPRatio:    baseSum.TotalEDP() / odinSum.TotalEDP(),
			EnergyRatio: baseSum.TotalEnergy() / odinSum.TotalEnergy(),
		}
		return nil
	}); err != nil {
		return AblRateResult{Model: res.Model}, err
	}
	return res, nil
}

// Render prints the rate sweep.
func (r AblRateResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation: served inference rate (%s); 16×16 relative to Odin\n", r.Model)
	fmt.Fprintf(w, "%-12s %14s %14s\n", "rate (inf/s)", "EDP ratio", "energy ratio")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12.0e %14.2f %14.2f\n", row.Rate, row.EDPRatio, row.EnergyRatio)
	}
}

func runAblRate(w io.Writer) error {
	res, err := AblRate(core.DefaultSystem(), nil)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}

// --- Pruning cluster width --------------------------------------------------

// AblClusterRow is one cluster-width outcome.
type AblClusterRow struct {
	Width        int
	MeanOUWidth  float64 // layer-mean optimal C at t0
	MeanEDP      float64 // mean per-layer optimal EDP at t0 (J·s)
	MeanOUHeight float64
}

// AblClusterResult sweeps the pruning alignment granularity: the OU width
// optimum tracks the cluster width, validating the row-skip model.
type AblClusterResult struct {
	Model string
	Rows  []AblClusterRow
}

// AblCluster runs the cluster-width sweep on VGG11 at t₀.
func AblCluster(base core.System, widths []int) (AblClusterResult, error) {
	if len(widths) == 0 {
		widths = []int{4, 8, 16, 32, 64}
	}
	res := AblClusterResult{Model: "VGG11", Rows: make([]AblClusterRow, len(widths))}
	if err := par.ForEach(0, len(widths), func(i int) error {
		width := widths[i]
		sys := base
		sys.Sparsity.ClusterWidth = width
		wl, err := sys.Prepare(dnn.NewVGG11())
		if err != nil {
			return err
		}
		sizes := bestSizes(sys, wl, sys.Device.T0)
		var sumC, sumR, sumEDP float64
		for j, s := range sizes {
			sumC += float64(s.C)
			sumR += float64(s.R)
			obj := core.LayerObjective(sys, wl, j, sys.Device.T0)
			sumEDP += obj.EDP(s)
		}
		n := float64(len(sizes))
		res.Rows[i] = AblClusterRow{
			Width:        width,
			MeanOUWidth:  sumC / n,
			MeanOUHeight: sumR / n,
			MeanEDP:      sumEDP / n,
		}
		return nil
	}); err != nil {
		return AblClusterResult{Model: res.Model}, err
	}
	return res, nil
}

// Render prints the cluster-width sweep.
func (r AblClusterResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation: pruning cluster width (%s, t = t0)\n", r.Model)
	fmt.Fprintf(w, "%-8s %12s %12s %14s\n", "width", "mean opt C", "mean opt R", "mean EDP")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8d %12.1f %12.1f %14.3e\n", row.Width, row.MeanOUWidth, row.MeanOUHeight, row.MeanEDP)
	}
}

func runAblCluster(w io.Writer) error {
	res, err := AblCluster(core.DefaultSystem(), nil)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}

// --- Policy architecture ----------------------------------------------------

// AblPolicyRow is one policy-architecture outcome.
type AblPolicyRow struct {
	Name      string
	Params    int
	Agreement float64 // held-out agreement with the searched optimum
	PowerMW   float64 // §V.E prediction-power estimate
}

// AblPolicyResult sweeps the policy trunk: the paper's layer ("4 neurons,
// ReLU" feeding two 6-way heads) vs wider trunks.
type AblPolicyResult struct {
	HeldOutModel string
	Rows         []AblPolicyRow
}

// AblPolicy trains each architecture on the non-VGG families and evaluates
// agreement on VGG11's searched optima.
func AblPolicy(sys core.System, hiddens [][]int) (AblPolicyResult, error) {
	if hiddens == nil {
		hiddens = [][]int{{}, {4}, {8}, {16}, {32}}
	}
	res := AblPolicyResult{HeldOutModel: "VGG11"}
	known := core.LeaveOut(dnn.AllWorkloads(), "VGG")
	examples, err := core.CollectExamples(sys, known, core.DefaultBootstrapConfig())
	if err != nil {
		return res, err
	}
	heldOut, err := core.CollectExamples(sys, []*dnn.Model{dnn.NewVGG11()}, core.DefaultBootstrapConfig())
	if err != nil {
		return res, err
	}
	// Each trunk trains its own fresh policy; the shared example slices are
	// read-only (mlp.Train visits them through a private permutation).
	res.Rows = make([]AblPolicyRow, len(hiddens))
	if err := par.ForEach(0, len(hiddens), func(i int) error {
		hidden := hiddens[i]
		cfg := policy.Config{Grid: sys.Grid(), Seed: 1}
		name := "linear"
		if len(hidden) > 0 {
			cfg.Hidden = hidden
			name = fmt.Sprintf("trunk-%d", hidden[0])
		} else {
			cfg.Hidden = []int{} // non-nil empty: no trunk
		}
		pol := policy.New(cfg)
		if _, err := pol.Train(examples, mlp.TrainOptions{Epochs: 300, Seed: 1}); err != nil {
			return err
		}
		o := sys.Arch.OverheadModel(pol.NumParams(), 50, 100)
		res.Rows[i] = AblPolicyRow{
			Name:      name,
			Params:    pol.NumParams(),
			Agreement: pol.Agreement(heldOut),
			PowerMW:   o.PredictPower * 1e3,
		}
		return nil
	}); err != nil {
		return AblPolicyResult{HeldOutModel: res.HeldOutModel}, err
	}
	return res, nil
}

// Render prints the policy-architecture sweep.
func (r AblPolicyResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation: policy architecture (held out: %s)\n", r.HeldOutModel)
	fmt.Fprintf(w, "%-10s %10s %14s %12s\n", "trunk", "params", "agreement", "power (mW)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %10d %13.0f%% %12.2f\n", row.Name, row.Params, row.Agreement*100, row.PowerMW)
	}
}

func runAblPolicy(w io.Writer) error {
	res, err := AblPolicy(core.DefaultSystem(), nil)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}
