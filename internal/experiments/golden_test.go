package experiments

import (
	"bytes"
	"path/filepath"
	"testing"

	"odin/internal/check"
)

// TestGoldenArtifacts freezes the rendered output of a representative slice
// of the paper's tables and figures: the two static platform tables, one
// layer-wise placement figure (fig3), the headline energy/latency
// comparison (fig6, the full horizon driver), the §V-E overhead
// analysis, the line-6 optimizer head-to-head (opt-compare, which
// freezes all four registered strategies including the TPE sampler's
// draws), and the fleet-scale routing comparison (fleet, which freezes
// the serve layer's routing, admission, drift steering, and churned-replay
// checksums at 1024 chips). Every numeric path in the repository —
// mapping, cost models, drift, search, policy bootstrap, horizon
// amortisation, serving — feeds at least one of these byte streams, so
// any unintended change to the physics or the controller shows up as a
// golden diff. Accept intended changes with:
//
//	go test ./internal/experiments -run TestGoldenArtifacts -update
//
// The remaining experiments are deliberately not frozen: they re-measure
// the same code paths at much higher horizon cost, and tier-1 runtime
// matters.
func TestGoldenArtifacts(t *testing.T) {
	t.Parallel()
	for _, id := range []string{"tab1", "tab2", "fig3", "fig6", "overhead", "opt-compare", "fleet"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("experiment %s: %v", id, err)
			}
			check.Golden(t, filepath.Join("testdata", id+".golden"), buf.Bytes())
		})
	}
}
